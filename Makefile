GO ?= go

.PHONY: all build test race vet bench bench-short simcheck experiments

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates BENCH_sweep.json: the parallel-sweep speedup and the
# DES hot-path micro-benchmarks, measured on THIS machine. Run it on the
# hardware you are quoting numbers for — the JSON records num_cpu, and a
# 1-core box can only show ~1x sweep speedup. Commit the refreshed file
# together with any change that moves the numbers.
bench:
	$(GO) run ./cmd/benchsweep -o BENCH_sweep.json

# bench-short is the CI smoke variant: one pass over a small grid plus
# the package micro-benchmarks at -benchtime=1x, just to prove the
# benchmarks still compile and run.
bench-short:
	$(GO) run ./cmd/benchsweep -short -o /dev/null
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./internal/sim/ ./internal/mesh/ ./internal/sweep/

simcheck:
	$(GO) run ./cmd/simcheck -seeds 100

experiments:
	$(GO) run ./cmd/experiments -quick
