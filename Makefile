GO ?= go

.PHONY: all build test race vet fmt lint bench bench-short simcheck chaos crash qos-smoke scale-smoke detgate golden ci experiments

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates BENCH_sweep.json (parallel-sweep speedup + DES
# hot-path micros), BENCH_run.json (end-to-end golden-scenario
# throughput + quickstart shard matrix), and BENCH_run.scale.json (the
# 1024x256 scale scenario across shards 1,2,4,8), measured on THIS
# machine. Run it on the hardware you are
# quoting numbers for — both JSONs record num_cpu/gomaxprocs, and a
# 1-core box can only show ~1x sweep speedup. Commit the refreshed files
# together with any change that moves the numbers.
bench:
	$(GO) run ./cmd/benchsweep -o BENCH_sweep.json
	$(GO) run ./cmd/runbench -shards 1,2,4,8 -o BENCH_run.json
	$(GO) run ./cmd/runbench -scenario scale -shards 1,2,4,8 -o BENCH_run.scale.json

# bench-short is the CI smoke variant: one pass over a small grid plus
# the package micro-benchmarks at -benchtime=1x, just to prove the
# benchmarks still compile and run.
bench-short:
	$(GO) run ./cmd/benchsweep -short -o /dev/null
	$(GO) run ./cmd/runbench -short -shards 1,4 -o /dev/null
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./internal/sim/ ./internal/mesh/ ./internal/sweep/ ./internal/stats/ ./internal/pfs/ ./internal/ionode/

# Every simcheck sweep also arms the ladder-queue differential twin
# (-queue ladder): each seed re-executes under the amortized-O(1)
# ladder event queue and must match fingerprint + trace digest.
simcheck:
	$(GO) run ./cmd/simcheck -seeds 100 -queue ladder

# chaos force-arms transient disk faults with the retry layer on every
# seed: all must recover, and at least one must be shown fatal without
# the retries.
chaos:
	$(GO) run ./cmd/simcheck -chaos -seeds 25 -queue ladder

# crash force-arms whole-I/O-node outages (and sometimes a permanent
# RAID member loss with an online rebuild) under restart-aware failover
# on every seed: every requested byte must be delivered, counted late,
# or counted unavailable, and at least one seed must be shown fatal with
# the failover and parity stripped.
crash:
	$(GO) run ./cmd/simcheck -crash -seeds 25 -queue ladder

# fmt fails (listing the files) if anything is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs staticcheck and govulncheck when they are installed and
# skips them (loudly) when not — local boxes need not have them; CI
# installs pinned versions.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed, skipping"; fi

# detgate pins the simulation's determinism (golden fingerprint + trace
# digests: healthy, chaos, and crash runs, under both the heap and the
# ladder event queue on both engines) and the zero-allocation hot paths.
detgate:
	$(GO) run ./cmd/detgate -allocs

# golden regenerates the committed determinism digests
# (cmd/detgate/golden.digest) from this build. Run it after any
# deliberate change to the simulation's event history or to the result
# fingerprint's field set, review the printed digests, and commit the
# refreshed file together with the change — detgate fails CI until the
# two agree again.
golden:
	$(GO) run ./cmd/detgate -update

# qos-smoke is the multi-tenant overload gate: the open-loop QoS oracle
# battery (fair queueing, admission, starvation-freedom, FIFO-twin
# unfairness) under the race detector on the sharded engine, plus a
# quick ext-qos tail-latency sweep.
qos-smoke:
	$(GO) run -race ./cmd/simcheck -qos -seeds 25 -parallel 4 -shards 4 -queue ladder
	$(GO) run ./cmd/experiments -quick -run ext-qos -parallel 4

# scale-smoke is the large-machine gate: the random-scenario oracle
# battery on the 256x64 platform, the 1024x256 shard differential, and
# a quick ext-scale coordination-cost sweep.
scale-smoke:
	$(GO) run -race ./cmd/simcheck -scale -seeds 12 -parallel 4 -shards 4 -queue ladder
	$(GO) test -race -run TestScaleShardDifferential ./internal/runbench/
	$(GO) run ./cmd/experiments -quick -run ext-scale -parallel 4

# ci reproduces the GitHub Actions pipeline locally: lint, build, race
# tests, the simcheck/chaos/crash/scale smoke sweeps, the
# determinism/alloc gate, the benchmark smoke, and the benchmark
# regression gate against the committed baseline (self-skipping when
# this host's CPU count differs from the baseline's).
ci: fmt vet lint build race
	$(GO) run -race ./cmd/simcheck -seeds 25 -parallel 4 -queue ladder
	$(GO) run -race ./cmd/simcheck -chaos -seeds 25 -parallel 4 -queue ladder
	$(GO) run -race ./cmd/simcheck -crash -seeds 25 -parallel 4 -queue ladder
	$(GO) run -race ./cmd/simcheck -scale -seeds 12 -parallel 4 -shards 4 -queue ladder
	$(GO) run -race ./cmd/simcheck -qos -seeds 25 -parallel 4 -shards 4 -queue ladder
	$(GO) run ./cmd/experiments -quick -run ext-tournament -parallel 4
	$(GO) run ./cmd/experiments -quick -run ext-qos -parallel 4
	$(GO) run ./cmd/experiments -quick -run ext-scale -parallel 4
	$(GO) run ./cmd/detgate -allocs
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./internal/sim/ ./internal/mesh/ ./internal/sweep/ ./internal/stats/ ./internal/pfs/ ./internal/ionode/
	$(GO) run ./cmd/benchsweep -short -o /dev/null
	$(GO) run ./cmd/runbench -short -o /dev/null
	$(GO) run ./cmd/runbench -iterations 5 -baseline BENCH_run.json -tolerance 0.85 -o /dev/null
	$(GO) run ./cmd/runbench -queue ladder -iterations 5 -baseline BENCH_run.json -tolerance 0.85 -o /dev/null
	@echo "ci: all gates passed"

experiments:
	$(GO) run ./cmd/experiments -quick
