// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4), plus ablation studies over the design choices
// DESIGN.md calls out. Each generator returns a stats.Table whose rows
// mirror what the paper reports; cmd/experiments prints them and the
// repository-root benchmarks time them.
//
// Every generator is a grid of independent simulations — one cell per
// (request size, delay, mode, ...) combination — evaluated through the
// internal/sweep worker pool at the width Scale.Parallel selects. Cells
// are pure (workload.Run builds a private machine per call) and results
// are collected in grid order, so the tables are bit-identical at any
// parallelism; only wall-clock time changes.
package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Scale sets the size of the runs. PaperScale matches the evaluation
// platform; QuickScale shrinks everything for tests.
type Scale struct {
	Compute int
	IO      int
	// FileBytes is the balanced-workload file size (the paper uses
	// 128 MB).
	FileBytes int64
	// Rounds is the number of read rounds per node in the sized
	// experiments (tables 1, 3, 4).
	Rounds int64
	// Delays are the computation times injected between reads in the
	// balanced experiments. The paper's range runs from no overlap to
	// full overlap for the small request sizes; see DESIGN.md for the
	// OCR reconstruction.
	Delays []sim.Time
	// Parallel is the worker-pool width for evaluating a generator's
	// independent grid cells (0 or 1 = serial). Tables are identical at
	// any width; see runCells.
	Parallel int

	// Ladder lists the compute-node counts of the ext-scale machine-size
	// sweep (each size pairs with compute/4 I/O nodes, minimum 2). The
	// paper ladder tops out at the 1024×256 scale platform.
	Ladder []int
}

// workers resolves the grid-cell pool width for this scale.
func (s Scale) workers() int {
	if s.Parallel > 0 {
		return s.Parallel
	}
	return 1
}

// runCells evaluates fn over n independent simulation cells on the
// scale's worker pool and returns the results in cell order — never
// completion order — so every generator's table is bit-identical to a
// serial run at any Parallel width.
func runCells[T any](s Scale, n int, fn func(i int) (T, error)) ([]T, error) {
	return sweep.MapErr(s.workers(), n, fn)
}

// PaperScale reproduces the paper's platform: 8 compute nodes, 8 I/O
// nodes, 128 MB files.
func PaperScale() Scale {
	return Scale{
		Compute:   8,
		IO:        8,
		FileBytes: 128 << 20,
		Rounds:    16,
		Delays:    []sim.Time{0, 50 * sim.Millisecond, 100 * sim.Millisecond, 200 * sim.Millisecond},
		Ladder:    []int{8, 32, 128, 512, 1024},
	}
}

// QuickScale is a scaled-down configuration for fast test runs. The
// shapes (who wins, where prefetching helps) are preserved; absolute
// numbers are not meaningful.
func QuickScale() Scale {
	return Scale{
		Compute:   4,
		IO:        4,
		FileBytes: 8 << 20,
		Rounds:    4,
		Delays:    []sim.Time{0, 50 * sim.Millisecond},
		Ladder:    []int{4, 16, 64},
	}
}

// requestSizes are the per-node request sizes of the paper's tables.
var requestSizes = []int64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1024 << 10}

// machineConfig builds the machine configuration for a scale.
func (s Scale) machineConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = s.Compute
	cfg.IONodes = s.IO
	return cfg
}

// Experiment ties an identifier to its generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (*stats.Table, error)
}

// All returns every experiment in paper order, followed by the ablations.
func All() []Experiment {
	return []Experiment{
		{"fig2", "Figure 2: read performance of the PFS I/O modes", Figure2},
		{"table1", "Table 1: read performance with and without prefetching (I/O bound)", Table1},
		{"table2", "Table 2: read access times for various request sizes", Table2},
		{"fig4", "Figure 4: balanced workloads, 64/128/256 KB requests", Figure4},
		{"fig5", "Figure 5: balanced workloads, 512/1024 KB requests", Figure5},
		{"table3", "Table 3: prefetching for various stripe units", Table3},
		{"table4", "Table 4: prefetching for different stripe groups", Table4},
		{"ext-modes", "Extension: prefetching in other I/O modes (paper future work)", ExtModes},
		{"ext-scale", "Extension: larger systems (paper future work)", ExtScale},
		{"ext-twophase", "Extension: two-phase collective read vs direct vs prefetching", ExtTwoPhase},
		{"ext-writebehind", "Extension: write-behind staging for writes", ExtWriteBehind},
		{"ext-interference", "Extension: prefetching under multi-application interference", ExtInterference},
		{"ext-adaptive", "Extension: adaptive prefetch throttling", ExtAdaptive},
		{"ext-sensitivity", "Extension: sensitivity of headline claims to calibration", ExtSensitivity},
		{"ext-ratio", "Extension: compute-to-I/O-node ratio", ExtRatio},
		{"ext-degraded", "Extension: degraded-mode reads under transient disk faults", ExtDegraded},
		{"ext-crash", "Extension: I/O-node crashes, degraded reads, and online rebuild", ExtCrash},
		{"ext-tournament", "Extension: prefetcher-policy tournament with online controller", ExtTournament},
		{"ext-qos", "Extension: open-loop multi-tenant overload with fair queueing and admission", ExtQoS},
		{"ablation-blocksize", "Ablation: file system block size", AblationBlockSize},
		{"ablation-depth", "Ablation: prefetch depth", AblationDepth},
		{"ablation-copy", "Ablation: hit-path copy cost", AblationCopy},
		{"ablation-placement", "Ablation: compute-node vs I/O-node prefetch placement", AblationPlacement},
		{"ablation-pattern", "Ablation: access patterns vs sequential prediction", AblationPattern},
		{"ablation-predictor", "Ablation: prediction policies (Kotz-Ellis style) across patterns", AblationPredictor},
		{"ablation-sched", "Ablation: disk scheduling policy", AblationSched},
		{"ablation-frag", "Ablation: UFS fragmentation vs block coalescing", AblationFrag},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Figure2 sweeps request size across the I/O modes on a shared file (plus
// the separate-files baseline), reporting aggregate read bandwidth.
func Figure2(s Scale) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("File System Read Performance (%d Compute Nodes, %d I/O Nodes), 64K blocks", s.Compute, s.IO),
		"Request (KB)", "M_UNIX", "M_LOG", "M_SYNC", "M_RECORD", "M_ASYNC", "Separate Files")
	sizes := []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1024 << 10, 2048 << 10}
	modes := []pfs.Mode{pfs.MUnix, pfs.MLog, pfs.MSync, pfs.MRecord, pfs.MAsync}
	cols := len(modes) + 1 // + the separate-files baseline
	bws, err := runCells(s, len(sizes)*cols, func(i int) (float64, error) {
		req := sizes[i/cols]
		c := i % cols
		spec := workload.Spec{
			FileSize:    req * int64(s.Compute) * s.Rounds,
			RequestSize: req,
			Mode:        pfs.MAsync,
		}
		if c < len(modes) {
			spec.Mode = modes[c]
		} else {
			spec.SeparateFiles = true
		}
		res, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			if spec.SeparateFiles {
				return 0, fmt.Errorf("fig2 separate/%d: %w", req, err)
			}
			return 0, fmt.Errorf("fig2 %v/%d: %w", spec.Mode, req, err)
		}
		return res.Bandwidth, nil
	})
	if err != nil {
		return nil, err
	}
	for r, req := range sizes {
		row := []any{req >> 10}
		for c := 0; c < cols; c++ {
			row = append(row, bws[r*cols+c])
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table1 is the I/O-bound comparison: no computation between reads,
// stripe unit 64 KB, stripe group = all I/O nodes.
func Table1(s Scale) (*stats.Table, error) {
	t := stats.NewTable(
		"PFS Read Performance with and without Prefetching: stripeunit=64KB stripegroup="+fmt.Sprint(s.IO),
		"Request (KB)", "File (MB)", "Read B/W (MB/s) no prefetching", "Read B/W (MB/s) prefetching")
	bws, err := runCells(s, len(requestSizes)*2, func(i int) (float64, error) {
		req := requestSizes[i/2]
		spec := workload.Spec{
			FileSize:    req * int64(s.Compute) * s.Rounds,
			RequestSize: req,
			Mode:        pfs.MRecord,
		}
		variant := "plain"
		if i%2 == 1 {
			pcfg := prefetch.DefaultConfig()
			spec.Prefetch = &pcfg
			variant = "prefetch"
		}
		res, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return 0, fmt.Errorf("table1 %s/%d: %w", variant, req, err)
		}
		return res.Bandwidth, nil
	})
	if err != nil {
		return nil, err
	}
	for r, req := range requestSizes {
		fileSize := req * int64(s.Compute) * s.Rounds
		t.AddRow(req>>10, fileSize>>20, bws[2*r], bws[2*r+1])
	}
	return t, nil
}

// Table2 measures the minimum read access time per request size: the
// floor that determines how much computation a prefetch can hide behind.
func Table2(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Read Access Times for Various Request Sizes",
		"Request (KB)", "Read Access Time (sec)", "Mean (sec)", "p90 (sec)")
	results, err := runCells(s, len(requestSizes), func(i int) (*workload.Result, error) {
		req := requestSizes[i]
		res, err := workload.Run(s.machineConfig(), workload.Spec{
			FileSize:    req * int64(s.Compute) * s.Rounds,
			RequestSize: req,
			Mode:        pfs.MRecord,
		})
		if err != nil {
			return nil, fmt.Errorf("table2 %d: %w", req, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for r, req := range requestSizes {
		res := results[r]
		// The paper reports a single representative access time per size;
		// free-running nodes make the raw minimum unrepresentative (an
		// occasional read catches an idle disk), so the median stands in.
		t.AddRow(req>>10, res.ReadTime.Quantile(0.5), res.ReadTime.Mean(), res.ReadTime.Quantile(0.9))
	}
	return t, nil
}

// balancedFigure runs the Figures 4/5 sweeps: for each request size and
// compute delay, bandwidth with and without prefetching on a fixed-size
// file.
func balancedFigure(s Scale, sizes []int64, title string) (*stats.Table, error) {
	t := stats.NewTable(title,
		"Request (KB)", "Delay (s)", "No prefetching (MB/s)", "Prefetching (MB/s)", "Speedup")
	rows := len(sizes) * len(s.Delays)
	bws, err := runCells(s, rows*2, func(i int) (float64, error) {
		cell := i / 2
		req := sizes[cell/len(s.Delays)]
		delay := s.Delays[cell%len(s.Delays)]
		spec := workload.Spec{
			FileSize:     s.FileBytes,
			RequestSize:  req,
			Mode:         pfs.MRecord,
			ComputeDelay: delay,
		}
		variant := "plain"
		if i%2 == 1 {
			pcfg := prefetch.DefaultConfig()
			spec.Prefetch = &pcfg
			variant = "prefetch"
		}
		res, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return 0, fmt.Errorf("%s %s %d/%v: %w", title, variant, req, delay, err)
		}
		return res.Bandwidth, nil
	})
	if err != nil {
		return nil, err
	}
	for r := 0; r < rows; r++ {
		req := sizes[r/len(s.Delays)]
		delay := s.Delays[r%len(s.Delays)]
		plain, fetched := bws[2*r], bws[2*r+1]
		t.AddRow(req>>10, delay.Seconds(), plain, fetched, fetched/plain)
	}
	return t, nil
}

// Figure4 covers the request sizes where overlap is attainable within the
// tested delays: 64, 128 and 256 KB.
func Figure4(s Scale) (*stats.Table, error) {
	return balancedFigure(s, []int64{64 << 10, 128 << 10, 256 << 10},
		fmt.Sprintf("PFS Read Performance for Balanced Workloads, File Size %d MB (64/128/256 KB requests)", s.FileBytes>>20))
}

// Figure5 covers 512 KB and 1024 KB requests, whose read time exceeds the
// tested delays: little or no gain, as the paper reports.
func Figure5(s Scale) (*stats.Table, error) {
	return balancedFigure(s, []int64{512 << 10, 1024 << 10},
		fmt.Sprintf("PFS Read Performance for Balanced Workloads, File Size %d MB (512/1024 KB requests)", s.FileBytes>>20))
}

// Table3 sweeps the stripe unit size with prefetching enabled and no
// compute delay.
func Table3(s Scale) (*stats.Table, error) {
	t := stats.NewTable("PFS Read Performance with prefetching for different Stripe unit sizes",
		"Request (KB)", "File (MB)", "B/W su=64KB", "B/W su=256KB", "B/W su=1024KB")
	stripeUnits := []int64{64 << 10, 256 << 10, 1024 << 10}
	bws, err := runCells(s, len(requestSizes)*len(stripeUnits), func(i int) (float64, error) {
		req := requestSizes[i/len(stripeUnits)]
		su := stripeUnits[i%len(stripeUnits)]
		pcfg := prefetch.DefaultConfig()
		res, err := workload.Run(s.machineConfig(), workload.Spec{
			FileSize:    req * int64(s.Compute) * s.Rounds,
			RequestSize: req,
			Mode:        pfs.MRecord,
			StripeUnit:  su,
			Prefetch:    &pcfg,
		})
		if err != nil {
			return 0, fmt.Errorf("table3 %d/%d: %w", req, su, err)
		}
		return res.Bandwidth, nil
	})
	if err != nil {
		return nil, err
	}
	for r, req := range requestSizes {
		fileSize := req * int64(s.Compute) * s.Rounds
		row := []any{req >> 10, fileSize >> 20}
		for c := range stripeUnits {
			row = append(row, bws[r*len(stripeUnits)+c])
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table4 compares striping across all I/O nodes with striping across a
// single one, with prefetching and no compute delay.
func Table4(s Scale) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("PFS Read Performance with Prefetching for different Stripe groups, Number of Nodes = %d", s.Compute),
		"Request (KB)", "File (MB)", "B/W sgroup=1 (MB/s)", fmt.Sprintf("B/W sgroup=%d (MB/s)", s.IO), "Speedup")
	groups := []int{1, s.IO}
	bws, err := runCells(s, len(requestSizes)*len(groups), func(i int) (float64, error) {
		req := requestSizes[i/len(groups)]
		sg := groups[i%len(groups)]
		pcfg := prefetch.DefaultConfig()
		res, err := workload.Run(s.machineConfig(), workload.Spec{
			FileSize:    req * int64(s.Compute) * s.Rounds,
			RequestSize: req,
			Mode:        pfs.MRecord,
			StripeGroup: sg,
			Prefetch:    &pcfg,
		})
		if err != nil {
			return 0, fmt.Errorf("table4 %d/sg%d: %w", req, sg, err)
		}
		return res.Bandwidth, nil
	})
	if err != nil {
		return nil, err
	}
	for r, req := range requestSizes {
		fileSize := req * int64(s.Compute) * s.Rounds
		t.AddRow(req>>10, fileSize>>20, bws[2*r], bws[2*r+1], bws[2*r+1]/bws[2*r])
	}
	return t, nil
}
