package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
)

// runCSV executes an experiment and returns its table as parsed CSV
// cells (tables are the experiments' only output, so the shape tests
// read them back through CSV).
func runCSV(t *testing.T, e Experiment, s Scale) [][]string {
	t.Helper()
	table, err := e.Run(s)
	if err != nil {
		t.Fatalf("%s: %v", e.ID, err)
	}
	var sb strings.Builder
	if err := table.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	var rows [][]string
	for _, line := range lines[1:] { // skip header
		rows = append(rows, strings.Split(line, ","))
	}
	return rows
}

func cellF(t *testing.T, rows [][]string, r, c int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(rows[r][c], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a float: %v", r, c, rows[r][c], err)
	}
	return v
}

func mustFind(t *testing.T, id string) Experiment {
	t.Helper()
	e, err := Find(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFindUnknown(t *testing.T) {
	if _, err := Find("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if len(All()) < 12 {
		t.Fatalf("expected ≥12 experiments, got %d", len(All()))
	}
}

func TestFigure2Shape(t *testing.T) {
	rows := runCSV(t, mustFind(t, "fig2"), QuickScale())
	// Columns: req, M_UNIX, M_LOG, M_SYNC, M_RECORD, M_ASYNC, separate.
	for r := range rows {
		munix, mrec, masync := cellF(t, rows, r, 1), cellF(t, rows, r, 4), cellF(t, rows, r, 5)
		if !(munix < mrec) {
			t.Errorf("row %d: M_UNIX %.2f not below M_RECORD %.2f", r, munix, mrec)
		}
		if !(mrec <= masync*1.01) {
			t.Errorf("row %d: M_RECORD %.2f above M_ASYNC %.2f", r, mrec, masync)
		}
	}
	// Bandwidth grows with request size for the fast modes.
	first, last := cellF(t, rows, 0, 4), cellF(t, rows, len(rows)-1, 4)
	if last <= first {
		t.Errorf("M_RECORD bandwidth flat: %.2f -> %.2f", first, last)
	}
}

func TestTable1Shape(t *testing.T) {
	rows := runCSV(t, mustFind(t, "table1"), QuickScale())
	// With no computation to overlap, prefetching must not win by more
	// than noise, and must not lose catastrophically.
	for r := range rows {
		plain, fetched := cellF(t, rows, r, 2), cellF(t, rows, r, 3)
		if fetched > plain*1.05 {
			t.Errorf("row %d: prefetch %.2f beats plain %.2f at zero delay", r, fetched, plain)
		}
		if fetched < plain*0.80 {
			t.Errorf("row %d: prefetch %.2f collapses vs plain %.2f", r, fetched, plain)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows := runCSV(t, mustFind(t, "table2"), QuickScale())
	// Access time grows monotonically with request size.
	prev := 0.0
	for r := range rows {
		v := cellF(t, rows, r, 1)
		if v < prev {
			t.Errorf("row %d: access time %.4f below previous %.4f", r, v, prev)
		}
		prev = v
	}
}

func TestFigure4Shape(t *testing.T) {
	rows := runCSV(t, mustFind(t, "fig4"), QuickScale())
	// Columns: req, delay, plain, prefetch, speedup. With a 50 ms delay,
	// 64 KB requests (quick scale: read time « 50 ms) must show a real
	// speedup.
	sawGain := false
	for r := range rows {
		req, delay := cellF(t, rows, r, 0), cellF(t, rows, r, 1)
		speedup := cellF(t, rows, r, 4)
		if delay == 0 && speedup > 1.05 {
			t.Errorf("req %v: speedup %.2f at zero delay", req, speedup)
		}
		if req == 64 && delay > 0 && speedup > 1.2 {
			sawGain = true
		}
	}
	if !sawGain {
		t.Error("no overlap gain for 64 KB requests at any delay")
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 at paper request sizes")
	}
	rows := runCSV(t, mustFind(t, "fig5"), QuickScale())
	// Large requests: read time exceeds the delays, so speedups stay
	// small (the paper's "no significant overlap" result).
	for r := range rows {
		if s := cellF(t, rows, r, 4); s > 1.35 {
			t.Errorf("row %d: speedup %.2f for a large request; expected little overlap", r, s)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	rows := runCSV(t, mustFind(t, "table3"), QuickScale())
	// At 64 KB requests, a 1 MB stripe unit directs each request to one
	// I/O node: clearly below the 64 KB stripe unit.
	su64, su1024 := cellF(t, rows, 0, 2), cellF(t, rows, 0, 4)
	if su1024 >= su64 {
		t.Errorf("64KB requests: su=1MB (%.2f) not below su=64KB (%.2f)", su1024, su64)
	}
}

func TestTable4Shape(t *testing.T) {
	rows := runCSV(t, mustFind(t, "table4"), QuickScale())
	for r := range rows {
		if s := cellF(t, rows, r, 4); s <= 1 {
			t.Errorf("row %d: striping across all I/O nodes not faster (speedup %.2f)", r, s)
		}
	}
	// The paper's qualitative claim: the 64 KB speedup is the lowest
	// (prefetch overhead is most visible there).
	first := cellF(t, rows, 0, 4)
	for r := 1; r < len(rows); r++ {
		if cellF(t, rows, r, 4) < first*0.9 {
			t.Errorf("row %d speedup %.2f markedly below the 64KB row %.2f", r, cellF(t, rows, r, 4), first)
		}
	}
}

// TestEveryExperimentRuns smokes the full catalogue at quick scale: all
// generators must produce rows without error, so a refactor cannot
// silently break an artifact that only cmd/experiments exercises.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalogue is slow")
	}
	s := QuickScale()
	s.Delays = []sim.Time{0, 50 * sim.Millisecond}
	for _, e := range All() {
		rows := runCSV(t, e, s)
		if len(rows) == 0 {
			t.Errorf("%s produced no rows", e.ID)
		}
	}
}

func TestChartsForFigures(t *testing.T) {
	s := QuickScale()
	s.Delays = []sim.Time{0, 50 * sim.Millisecond}
	for _, id := range []string{"fig2", "fig4", "fig5"} {
		e := mustFind(t, id)
		table, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		chart, ok := Chart(id, table)
		if !ok {
			t.Fatalf("%s has no chart form", id)
		}
		var sb strings.Builder
		if err := chart.Render(&sb); err != nil {
			t.Fatal(err)
		}
		if len(sb.String()) == 0 {
			t.Fatalf("%s chart empty", id)
		}
	}
	if _, ok := Chart("table1", nil); ok {
		t.Fatal("table1 should not chart")
	}
}

func TestAblationFragMonotone(t *testing.T) {
	rows := runCSV(t, mustFind(t, "ablation-frag"), QuickScale())
	// More fragmentation, more disk ops, less bandwidth (ends vs ends).
	bwFirst, bwLast := cellF(t, rows, 0, 1), cellF(t, rows, len(rows)-1, 1)
	opsFirst, opsLast := cellF(t, rows, 0, 2), cellF(t, rows, len(rows)-1, 2)
	if bwLast >= bwFirst {
		t.Errorf("full fragmentation bandwidth %.2f not below contiguous %.2f", bwLast, bwFirst)
	}
	if opsLast <= opsFirst {
		t.Errorf("full fragmentation disk ops %.0f not above contiguous %.0f", opsLast, opsFirst)
	}
}
