package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ExtSensitivity perturbs the hardware calibration and re-checks the
// paper's three headline claims. A reproduction whose conclusions only
// hold at one magic parameter setting hasn't reproduced anything; this
// table shows the claims are properties of the design, not of the
// calibration:
//
//	C1  zero-overlap: prefetching does not beat plain Fast Path
//	    (Table 1; ratio ≤ ~1).
//	C2  full overlap: prefetching wins clearly for small requests
//	    (Figure 4; speedup at 64 KB, 50 ms delay > 1.2).
//	C3  oversized reads: no delay in range hides a 1 MB request
//	    (Figure 5; speedup at 1 MB, 0.2 s delay ≈ 1).
func ExtSensitivity(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: sensitivity of the headline claims to calibration",
		"Perturbation", "C1 zero-overlap ratio", "C2 overlap speedup", "C3 1MB speedup")
	type variant struct {
		name  string
		tweak func(*machine.Config)
	}
	variants := []variant{
		{"baseline", func(*machine.Config) {}},
		{"disks 2x faster", func(c *machine.Config) {
			c.DiskGeometry.SectorsPerTrack *= 2
		}},
		{"disks 2x slower", func(c *machine.Config) {
			c.DiskGeometry.SectorsPerTrack /= 2
		}},
		{"seeks 2x longer", func(c *machine.Config) {
			c.DiskGeometry.SeekMin *= 2
			c.DiskGeometry.SeekMax *= 2
		}},
		{"software 2x slower", func(c *machine.Config) {
			c.PFS.ClientCall *= 2
			c.Dispatch *= 2
			c.PFS.ARTSetup *= 2
		}},
		{"memcpy 2x slower", func(c *machine.Config) {
			c.UFS.MemBandwidth /= 2
		}},
		{"half the array members", func(c *machine.Config) {
			c.ArrayMembers /= 2
		}},
	}
	// One cell per (variant, claim): each claim is an independent
	// plain-vs-prefetch ratio on the perturbed machine.
	claims := []struct {
		req   int64
		delay sim.Time
	}{
		{64 << 10, 0},                       // C1
		{64 << 10, 50 * sim.Millisecond},    // C2
		{1024 << 10, 200 * sim.Millisecond}, // C3
	}
	ratios, err := runCells(s, len(variants)*len(claims), func(i int) (float64, error) {
		v := variants[i/len(claims)]
		cl := claims[i%len(claims)]
		cfg := s.machineConfig()
		v.tweak(&cfg)
		r, err := claimRatio(cfg, s, cl.req, cl.delay)
		if err != nil {
			return 0, fmt.Errorf("ext-sensitivity %q: %w", v.name, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for r, v := range variants {
		t.AddRow(v.name, ratios[3*r], ratios[3*r+1], ratios[3*r+2])
	}
	return t, nil
}

// claimRatio measures one headline-claim metric — prefetching bandwidth
// over plain bandwidth at a request size and compute delay — on one
// machine configuration.
func claimRatio(cfg machine.Config, s Scale, req int64, delay sim.Time) (float64, error) {
	spec := workload.Spec{
		FileSize:     req * int64(s.Compute) * s.Rounds,
		RequestSize:  req,
		Mode:         pfs.MRecord,
		ComputeDelay: delay,
	}
	plain, err := workload.Run(cfg, spec)
	if err != nil {
		return 0, err
	}
	pcfg := prefetch.DefaultConfig()
	spec.Prefetch = &pcfg
	fetched, err := workload.Run(cfg, spec)
	if err != nil {
		return 0, err
	}
	return fetched.Bandwidth / plain.Bandwidth, nil
}

// AblationBlockSize varies the file system block size the paper fixes at
// 64 KB, with the stripe unit tracking it.
func AblationBlockSize(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: file system block size (M_RECORD, request = 4 blocks, delay 0)",
		"Block (KB)", "Bandwidth (MB/s)", "Disk ops")
	blockSizes := []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
	type cell struct {
		bw  float64
		ops int64
	}
	cells, err := runCells(s, len(blockSizes), func(i int) (cell, error) {
		bs := blockSizes[i]
		cfg := s.machineConfig()
		cfg.UFS.BlockSize = bs
		cfg.PFS.StripeUnit = bs
		res, err := workload.Run(cfg, workload.Spec{
			FileSize:    4 * bs * int64(s.Compute) * s.Rounds,
			RequestSize: 4 * bs,
			Mode:        pfs.MRecord,
		})
		if err != nil {
			return cell{}, fmt.Errorf("ablation-blocksize %d: %w", bs, err)
		}
		var ops int64
		for _, srv := range res.Machine.Servers {
			ops += srv.FS().DiskOps
		}
		return cell{res.Bandwidth, ops}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.AddRow(blockSizes[i]>>10, c.bw, c.ops)
	}
	return t, nil
}

// ExtRatio holds the compute partition at the paper's size and varies
// the number of I/O nodes: where does the I/O system saturate the
// application, and what does prefetching add at each ratio?
func ExtRatio(s Scale) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("Extension: I/O node count for %d compute nodes (64KB requests, 50ms compute)", s.Compute),
		"I/O nodes", "No prefetching (MB/s)", "Prefetching (MB/s)", "Speedup", "Mean disk util")
	ios := []int{1, 2, 4, 8, 16}
	results, err := runCells(s, len(ios)*2, func(i int) (*workload.Result, error) {
		io := ios[i/2]
		cfg := s.machineConfig()
		cfg.IONodes = io
		spec := workload.Spec{
			FileSize:     s.FileBytes / 4,
			RequestSize:  64 << 10,
			Mode:         pfs.MRecord,
			ComputeDelay: 50 * sim.Millisecond,
		}
		variant := "plain"
		if i%2 == 1 {
			pcfg := prefetch.DefaultConfig()
			spec.Prefetch = &pcfg
			variant = "prefetch"
		}
		res, err := workload.Run(cfg, spec)
		if err != nil {
			return nil, fmt.Errorf("ext-ratio %s/%d: %w", variant, io, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for r, io := range ios {
		plain, fetched := results[2*r], results[2*r+1]
		t.AddRow(io, plain.Bandwidth, fetched.Bandwidth,
			fetched.Bandwidth/plain.Bandwidth, fetched.Machine.DiskUtilization())
	}
	return t, nil
}
