package experiments

// ExtQoS is the open-loop multi-tenant overload experiment: a grid of
// tenant-population sizes × offered loads × schedulers, reporting the
// tail latency (p50/p99/p999), admission and completion fractions, and
// the worst normalized-service lag each cell produced. The scheduler
// axis compares pure FIFO dispatch (the pre-QoS server), weighted fair
// queueing with per-tenant admission, and WFQ with the client prefetcher
// attached to every fourth tenant — the interference arm: does one
// tenant's readahead help its own tail by hurting everyone else's?

import (
	"fmt"

	"repro/internal/ionode"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// qosSchedulers are the scheduler-axis variants of the ext-qos grid.
var qosSchedulers = []string{"fifo", "wfq", "wfq+pf"}

// ExtQoS sweeps open-loop overload across tenants × load × scheduler.
func ExtQoS(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: open-loop multi-tenant overload (weights 4:2:1, slots 2)",
		"Tenants", "Gap (ms)", "Scheduler", "Arrivals", "Done %", "Throttled %",
		"p50 (ms)", "p99 (ms)", "p999 (ms)", "SLO %", "Max lag (costs)")

	tenantGrid := []int{s.Compute * 24, s.Compute * 192}
	gaps := []sim.Time{4 * sim.Millisecond, 1 * sim.Millisecond}

	type cell struct {
		arrivals         int64
		donePct, shedPct float64
		p50, p99, p999   float64
		sloPct, lagCosts float64
	}
	n := len(tenantGrid) * len(gaps) * len(qosSchedulers)
	cells, err := runCells(s, n, func(i int) (cell, error) {
		sched := qosSchedulers[i%len(qosSchedulers)]
		gap := gaps[(i/len(qosSchedulers))%len(gaps)]
		tenants := tenantGrid[i/(len(qosSchedulers)*len(gaps))]

		cfg := s.machineConfig()
		cfg.Fair = ionode.FairPolicy{
			Weights:       []int{4, 2, 1},
			Slots:         2,
			RatePerWeight: 64 << 10,
			BurstBytes:    32 << 10,
			FIFO:          sched == "fifo",
		}
		spec := workload.QoSSpec{
			Tenants:     tenants,
			Files:       s.IO * 2,
			FileSize:    1 << 20,
			RequestSize: 16 << 10,
			Requests:    4,
			MeanGap:     gap,
			Seed:        int64(7 + i),
			SLO:         100 * sim.Millisecond,
		}
		if sched == "wfq+pf" {
			pcfg := prefetch.DefaultConfig()
			spec.Prefetch = &pcfg
			spec.PrefetchEvery = 4
		}
		res, err := workload.RunQoS(cfg, spec)
		if err != nil {
			return cell{}, fmt.Errorf("ext-qos %d/%v/%s: %w", tenants, gap, sched, err)
		}
		q := res.QoS
		var done int64
		for i := range q.Tenants {
			done += q.Tenants[i].Done
		}
		var lag float64
		for _, srv := range res.Machine.Servers {
			if snap := srv.FairSnapshot(); snap != nil && snap.MaxWeightedCost > 0 {
				if r := float64(snap.MaxLag) / float64(snap.MaxWeightedCost); r > lag {
					lag = r
				}
			}
		}
		c := cell{
			arrivals: q.Arrivals,
			donePct:  100 * float64(done) / float64(q.Arrivals),
			shedPct:  100 * float64(q.Throttled) / float64(q.Arrivals),
			p50:      1e3 * q.Latency.Quantile(0.50),
			p99:      1e3 * q.Latency.Quantile(0.99),
			p999:     1e3 * q.Latency.Quantile(0.999),
			lagCosts: lag,
		}
		if done > 0 {
			c.sloPct = 100 * float64(q.SLOMet) / float64(done)
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	i := 0
	for _, tenants := range tenantGrid {
		for _, gap := range gaps {
			for _, sched := range qosSchedulers {
				c := cells[i]
				i++
				t.AddRow(tenants, float64(gap)/float64(sim.Millisecond), sched,
					c.arrivals, c.donePct, c.shedPct, c.p50, c.p99, c.p999, c.sloPct, c.lagCosts)
			}
		}
	}
	return t, nil
}
