package experiments

import (
	"fmt"
	"io"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/twophase"
	"repro/internal/workload"
)

// ExtModes evaluates prefetching under every I/O mode — the paper's
// stated future work ("we plan to implement prefetching in other file I/O
// modes"). Shared unordered pointers (M_UNIX, M_LOG) admit no per-node
// prediction, so the prototype stays idle there; M_SYNC uses the
// round-total heuristic and M_GLOBAL reads ahead for the broadcast root.
func ExtModes(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: prefetching across I/O modes (64KB requests, 50ms compute)",
		"Mode", "No prefetching (MB/s)", "Prefetching (MB/s)", "Speedup", "Hit rate", "Issued")
	for _, mode := range []pfs.Mode{pfs.MUnix, pfs.MLog, pfs.MSync, pfs.MRecord, pfs.MGlobal, pfs.MAsync} {
		spec := workload.Spec{
			FileSize:     s.FileBytes / 4,
			RequestSize:  64 << 10,
			Mode:         mode,
			ComputeDelay: 50 * sim.Millisecond,
		}
		plain, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ext-modes plain/%v: %w", mode, err)
		}
		pcfg := prefetch.DefaultConfig()
		spec.Prefetch = &pcfg
		fetched, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ext-modes prefetch/%v: %w", mode, err)
		}
		t.AddRow(mode.String(), plain.Bandwidth, fetched.Bandwidth,
			fetched.Bandwidth/plain.Bandwidth, fetched.Prefetch.HitRate(), fetched.Prefetch.Issued)
	}
	return t, nil
}

// ExtTwoPhase compares three ways to deliver an interleaved record
// distribution: the direct M_RECORD read, the same read under the
// prefetching prototype, and the two-phase strategy of the paper's
// reference [1] (large conforming reads + mesh redistribution). Small
// records are where the strategies diverge.
func ExtTwoPhase(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: direct vs prefetching vs two-phase collective read",
		"Record (KB)", "Direct (MB/s)", "Prefetching (MB/s)", "Two-phase (MB/s)")
	fileSize := s.FileBytes / 4
	for _, rec := range []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10} {
		spec := workload.Spec{FileSize: fileSize, RequestSize: rec, Mode: pfs.MRecord}
		direct, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ext-twophase direct/%d: %w", rec, err)
		}
		pcfg := prefetch.DefaultConfig()
		spec.Prefetch = &pcfg
		fetched, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ext-twophase prefetch/%d: %w", rec, err)
		}
		m := machine.Build(s.machineConfig())
		if err := m.FS.Create("f", fileSize); err != nil {
			return nil, err
		}
		tp, err := twophase.Read(m, "f", rec, s.Compute, twophase.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("ext-twophase twophase/%d: %w", rec, err)
		}
		t.AddRow(rec>>10, direct.Bandwidth, fetched.Bandwidth,
			stats.MBps(tp.TotalBytes, tp.Elapsed))
	}
	return t, nil
}

// ExtWriteBehind evaluates the write-side mirror of the prototype:
// synchronous writes vs staged write-behind, across compute delays.
func ExtWriteBehind(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: write-behind (64KB records, partitioned writers)",
		"Delay (s)", "Synchronous (MB/s)", "Write-behind (MB/s)", "Speedup", "Stalls")
	fileSize := s.FileBytes / 4
	for _, delay := range s.Delays {
		var bws [2]float64
		var stalls int64
		for i, behind := range []bool{false, true} {
			elapsed, st, err := writeRun(s, fileSize, 64<<10, delay, behind)
			if err != nil {
				return nil, fmt.Errorf("ext-writebehind %v/%v: %w", delay, behind, err)
			}
			bws[i] = stats.MBps(fileSize, elapsed)
			if behind {
				stalls = st
			}
		}
		t.AddRow(delay.Seconds(), bws[0], bws[1], bws[1]/bws[0], stalls)
	}
	return t, nil
}

// writeRun has every node write its contiguous partition of a shared
// file in 64 KB records, optionally through write-behind staging.
func writeRun(s Scale, fileSize, rec int64, delay sim.Time, behind bool) (sim.Time, int64, error) {
	m := machine.Build(s.machineConfig())
	if err := m.FS.Create("f", fileSize); err != nil {
		return 0, 0, err
	}
	var wb *prefetch.WriteBehind
	if behind {
		wb = prefetch.NewWriteBehind(m.K, prefetch.DefaultWriteBehindConfig())
	}
	parties := s.Compute
	share := fileSize / int64(parties)
	errs := make([]error, parties)
	for i := 0; i < parties; i++ {
		i := i
		m.K.Go(fmt.Sprintf("writer%d", i), func(p *sim.Proc) {
			errs[i] = func() error {
				f, err := m.FS.Open("f", m.Compute[i], pfs.MAsync, nil)
				if err != nil {
					return err
				}
				defer f.Close()
				start := int64(i) * share
				for off := start; off < start+share; off += rec {
					if behind {
						if err := wb.Write(p, f, off, rec); err != nil {
							return err
						}
					} else if err := f.Write(p, off, rec); err != nil {
						return err
					}
					if delay > 0 {
						p.Sleep(delay)
					}
				}
				if behind {
					return wb.Flush(p, f)
				}
				return nil
			}()
		})
	}
	if err := m.K.Run(); err != nil {
		return 0, 0, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	var stalls int64
	if wb != nil {
		stalls = wb.Stalls
	}
	return m.K.Now(), stalls, nil
}

// ExtAdaptive evaluates the adaptive throttle: the prototype issues
// read-ahead only when the application's observed compute gap gives it a
// head start. It should match plain Fast Path at zero delay (no
// overhead) and the standard prototype once overlap exists.
func ExtAdaptive(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: adaptive prefetch throttling (M_RECORD, 64KB requests)",
		"Delay (s)", "Plain (MB/s)", "Prefetch (MB/s)", "Adaptive (MB/s)", "Throttled")
	for _, delay := range s.Delays {
		spec := workload.Spec{
			FileSize:     s.FileBytes / 4,
			RequestSize:  64 << 10,
			Mode:         pfs.MRecord,
			ComputeDelay: delay,
		}
		plain, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ext-adaptive plain/%v: %w", delay, err)
		}
		pcfg := prefetch.DefaultConfig()
		spec.Prefetch = &pcfg
		std, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ext-adaptive std/%v: %w", delay, err)
		}
		acfg := prefetch.DefaultConfig()
		acfg.Adaptive = true
		spec.Prefetch = &acfg
		adapt, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ext-adaptive adaptive/%v: %w", delay, err)
		}
		t.AddRow(delay.Seconds(), plain.Bandwidth, std.Bandwidth, adapt.Bandwidth,
			adapt.Prefetch.Throttled)
	}
	return t, nil
}

// ExtInterference runs two independent applications on disjoint halves of
// the compute partition, sharing the I/O nodes: a balanced reader (the
// "victim") and an I/O-bound scanner (the "aggressor"). It measures how
// much of the victim's prefetching benefit survives a noisy neighbour.
func ExtInterference(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: prefetching under multi-application interference (64KB, 50ms compute victim)",
		"Scenario", "Victim B/W (MB/s)", "Victim hit rate")
	type scenario struct {
		name      string
		prefetch  bool
		aggressor bool
	}
	for _, sc := range []scenario{
		{"alone, no prefetch", false, false},
		{"alone, prefetch", true, false},
		{"shared I/O nodes, no prefetch", false, true},
		{"shared I/O nodes, prefetch", true, true},
	} {
		bw, hit, err := interferenceRun(s, sc.prefetch, sc.aggressor)
		if err != nil {
			return nil, fmt.Errorf("ext-interference %q: %w", sc.name, err)
		}
		t.AddRow(sc.name, bw, hit)
	}
	return t, nil
}

// interferenceRun drives the victim on the first half of the compute
// nodes and, optionally, the aggressor on the second half, both against
// the same I/O nodes. Returns the victim's bandwidth and hit rate.
func interferenceRun(s Scale, withPrefetch, withAggressor bool) (float64, float64, error) {
	m := machine.Build(s.machineConfig())
	half := s.Compute / 2
	if half == 0 {
		half = 1
	}
	victimBytes := int64(half) * (64 << 10) * s.Rounds * 2
	if err := m.FS.Create("victim", victimBytes); err != nil {
		return 0, 0, err
	}
	var pf *prefetch.Prefetcher
	if withPrefetch {
		pf = prefetch.New(m.K, prefetch.DefaultConfig())
	}
	group := pfs.NewOpenGroup(m.K, half)
	errs := make([]error, s.Compute)
	var victimEnd sim.Time
	var victimRead int64
	for i := 0; i < half; i++ {
		i := i
		m.K.Go(fmt.Sprintf("victim%d", i), func(p *sim.Proc) {
			errs[i] = func() error {
				f, err := m.FS.Open("victim", m.Compute[i], pfs.MRecord, group)
				if err != nil {
					return err
				}
				defer f.Close()
				if pf != nil {
					pf.Attach(f)
				}
				for {
					n, err := f.Read(p, 64<<10)
					if err == io.EOF {
						return nil
					}
					if err != nil {
						return err
					}
					victimRead += n
					p.Sleep(50 * sim.Millisecond)
				}
			}()
			if p.Now() > victimEnd {
				victimEnd = p.Now()
			}
		})
	}
	if withAggressor {
		aggBytes := int64(s.Compute-half) * (64 << 10) * s.Rounds * 4
		if err := m.FS.Create("aggressor", aggBytes); err != nil {
			return 0, 0, err
		}
		aggGroup := pfs.NewOpenGroup(m.K, s.Compute-half)
		for i := half; i < s.Compute; i++ {
			i := i
			m.K.Go(fmt.Sprintf("aggressor%d", i), func(p *sim.Proc) {
				errs[i] = func() error {
					f, err := m.FS.Open("aggressor", m.Compute[i], pfs.MRecord, aggGroup)
					if err != nil {
						return err
					}
					defer f.Close()
					for {
						if _, err := f.Read(p, 64<<10); err == io.EOF {
							return nil
						} else if err != nil {
							return err
						}
					}
				}()
			})
		}
	}
	if err := m.K.Run(); err != nil {
		return 0, 0, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	bw := stats.MBps(victimRead, victimEnd)
	hit := 0.0
	if pf != nil {
		hit = pf.HitRate()
	}
	return bw, hit, nil
}

// ExtScale grows the machine — the paper's other stated future work
// ("evaluate the performance of prefetching on much larger systems").
// Compute and I/O nodes scale together; per-node work is held constant.
func ExtScale(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: scaling compute and I/O nodes together (64KB requests, 50ms compute)",
		"Nodes (C+IO)", "No prefetching (MB/s)", "Prefetching (MB/s)", "Speedup", "BW per node")
	for _, n := range []int{2, 4, 8, 16, 32} {
		cfg := s.machineConfig()
		cfg.ComputeNodes = n
		cfg.IONodes = n
		spec := workload.Spec{
			FileSize:     int64(n) * (64 << 10) * s.Rounds * 4,
			RequestSize:  64 << 10,
			Mode:         pfs.MRecord,
			ComputeDelay: 50 * sim.Millisecond,
		}
		plain, err := workload.Run(cfg, spec)
		if err != nil {
			return nil, fmt.Errorf("ext-scale plain/%d: %w", n, err)
		}
		pcfg := prefetch.DefaultConfig()
		spec.Prefetch = &pcfg
		fetched, err := workload.Run(cfg, spec)
		if err != nil {
			return nil, fmt.Errorf("ext-scale prefetch/%d: %w", n, err)
		}
		t.AddRow(fmt.Sprintf("%d+%d", n, n), plain.Bandwidth, fetched.Bandwidth,
			fetched.Bandwidth/plain.Bandwidth, fetched.Bandwidth/float64(n))
	}
	return t, nil
}
