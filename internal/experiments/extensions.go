package experiments

import (
	"fmt"
	"io"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/twophase"
	"repro/internal/workload"
)

// ExtModes evaluates prefetching under every I/O mode — the paper's
// stated future work ("we plan to implement prefetching in other file I/O
// modes"). Shared unordered pointers (M_UNIX, M_LOG) admit no per-node
// prediction, so the prototype stays idle there; M_SYNC uses the
// round-total heuristic and M_GLOBAL reads ahead for the broadcast root.
func ExtModes(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: prefetching across I/O modes (64KB requests, 50ms compute)",
		"Mode", "No prefetching (MB/s)", "Prefetching (MB/s)", "Speedup", "Hit rate", "Issued")
	modes := []pfs.Mode{pfs.MUnix, pfs.MLog, pfs.MSync, pfs.MRecord, pfs.MGlobal, pfs.MAsync}
	results, err := runCells(s, len(modes)*2, func(i int) (*workload.Result, error) {
		mode := modes[i/2]
		spec := workload.Spec{
			FileSize:     s.FileBytes / 4,
			RequestSize:  64 << 10,
			Mode:         mode,
			ComputeDelay: 50 * sim.Millisecond,
		}
		variant := "plain"
		if i%2 == 1 {
			pcfg := prefetch.DefaultConfig()
			spec.Prefetch = &pcfg
			variant = "prefetch"
		}
		res, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ext-modes %s/%v: %w", variant, mode, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for r, mode := range modes {
		plain, fetched := results[2*r], results[2*r+1]
		t.AddRow(mode.String(), plain.Bandwidth, fetched.Bandwidth,
			fetched.Bandwidth/plain.Bandwidth, fetched.Prefetch.HitRate(), fetched.Prefetch.Issued)
	}
	return t, nil
}

// ExtTwoPhase compares three ways to deliver an interleaved record
// distribution: the direct M_RECORD read, the same read under the
// prefetching prototype, and the two-phase strategy of the paper's
// reference [1] (large conforming reads + mesh redistribution). Small
// records are where the strategies diverge.
func ExtTwoPhase(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: direct vs prefetching vs two-phase collective read",
		"Record (KB)", "Direct (MB/s)", "Prefetching (MB/s)", "Two-phase (MB/s)")
	fileSize := s.FileBytes / 4
	recs := []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10}
	bws, err := runCells(s, len(recs)*3, func(i int) (float64, error) {
		rec := recs[i/3]
		switch i % 3 {
		case 0:
			direct, err := workload.Run(s.machineConfig(), workload.Spec{FileSize: fileSize, RequestSize: rec, Mode: pfs.MRecord})
			if err != nil {
				return 0, fmt.Errorf("ext-twophase direct/%d: %w", rec, err)
			}
			return direct.Bandwidth, nil
		case 1:
			pcfg := prefetch.DefaultConfig()
			fetched, err := workload.Run(s.machineConfig(), workload.Spec{FileSize: fileSize, RequestSize: rec, Mode: pfs.MRecord, Prefetch: &pcfg})
			if err != nil {
				return 0, fmt.Errorf("ext-twophase prefetch/%d: %w", rec, err)
			}
			return fetched.Bandwidth, nil
		default:
			m := machine.Build(s.machineConfig())
			if err := m.FS.Create("f", fileSize); err != nil {
				return 0, err
			}
			tp, err := twophase.Read(m, "f", rec, s.Compute, twophase.DefaultConfig())
			if err != nil {
				return 0, fmt.Errorf("ext-twophase twophase/%d: %w", rec, err)
			}
			return stats.MBps(tp.TotalBytes, tp.Elapsed), nil
		}
	})
	if err != nil {
		return nil, err
	}
	for r, rec := range recs {
		t.AddRow(rec>>10, bws[3*r], bws[3*r+1], bws[3*r+2])
	}
	return t, nil
}

// ExtWriteBehind evaluates the write-side mirror of the prototype:
// synchronous writes vs staged write-behind, across compute delays.
func ExtWriteBehind(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: write-behind (64KB records, partitioned writers)",
		"Delay (s)", "Synchronous (MB/s)", "Write-behind (MB/s)", "Speedup", "Stalls")
	fileSize := s.FileBytes / 4
	type cell struct {
		bw     float64
		stalls int64
	}
	cells, err := runCells(s, len(s.Delays)*2, func(i int) (cell, error) {
		delay := s.Delays[i/2]
		behind := i%2 == 1
		elapsed, st, err := writeRun(s, fileSize, 64<<10, delay, behind)
		if err != nil {
			return cell{}, fmt.Errorf("ext-writebehind %v/%v: %w", delay, behind, err)
		}
		return cell{stats.MBps(fileSize, elapsed), st}, nil
	})
	if err != nil {
		return nil, err
	}
	for r, delay := range s.Delays {
		sync, behind := cells[2*r], cells[2*r+1]
		t.AddRow(delay.Seconds(), sync.bw, behind.bw, behind.bw/sync.bw, behind.stalls)
	}
	return t, nil
}

// writeRun has every node write its contiguous partition of a shared
// file in 64 KB records, optionally through write-behind staging.
func writeRun(s Scale, fileSize, rec int64, delay sim.Time, behind bool) (sim.Time, int64, error) {
	m := machine.Build(s.machineConfig())
	if err := m.FS.Create("f", fileSize); err != nil {
		return 0, 0, err
	}
	var wb *prefetch.WriteBehind
	if behind {
		wb = prefetch.NewWriteBehind(m.K, prefetch.DefaultWriteBehindConfig())
	}
	parties := s.Compute
	share := fileSize / int64(parties)
	errs := make([]error, parties)
	for i := 0; i < parties; i++ {
		i := i
		m.K.Go(fmt.Sprintf("writer%d", i), func(p *sim.Proc) {
			errs[i] = func() error {
				f, err := m.FS.Open("f", m.Compute[i], pfs.MAsync, nil)
				if err != nil {
					return err
				}
				defer f.Close()
				start := int64(i) * share
				for off := start; off < start+share; off += rec {
					if behind {
						if err := wb.Write(p, f, off, rec); err != nil {
							return err
						}
					} else if err := f.Write(p, off, rec); err != nil {
						return err
					}
					if delay > 0 {
						p.Sleep(delay)
					}
				}
				if behind {
					return wb.Flush(p, f)
				}
				return nil
			}()
		})
	}
	if err := m.K.Run(); err != nil {
		return 0, 0, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	var stalls int64
	if wb != nil {
		stalls = wb.Stalls
	}
	return m.K.Now(), stalls, nil
}

// ExtAdaptive evaluates the adaptive throttle: the prototype issues
// read-ahead only when the application's observed compute gap gives it a
// head start. It should match plain Fast Path at zero delay (no
// overhead) and the standard prototype once overlap exists.
func ExtAdaptive(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: adaptive prefetch throttling (M_RECORD, 64KB requests)",
		"Delay (s)", "Plain (MB/s)", "Prefetch (MB/s)", "Adaptive (MB/s)", "Throttled")
	variants := []string{"plain", "std", "adaptive"}
	results, err := runCells(s, len(s.Delays)*len(variants), func(i int) (*workload.Result, error) {
		delay := s.Delays[i/len(variants)]
		variant := variants[i%len(variants)]
		spec := workload.Spec{
			FileSize:     s.FileBytes / 4,
			RequestSize:  64 << 10,
			Mode:         pfs.MRecord,
			ComputeDelay: delay,
		}
		switch variant {
		case "std":
			pcfg := prefetch.DefaultConfig()
			spec.Prefetch = &pcfg
		case "adaptive":
			acfg := prefetch.DefaultConfig()
			acfg.Adaptive = true
			spec.Prefetch = &acfg
		}
		res, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ext-adaptive %s/%v: %w", variant, delay, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for r, delay := range s.Delays {
		plain, std, adapt := results[3*r], results[3*r+1], results[3*r+2]
		t.AddRow(delay.Seconds(), plain.Bandwidth, std.Bandwidth, adapt.Bandwidth,
			adapt.Prefetch.Throttled)
	}
	return t, nil
}

// ExtInterference runs two independent applications on disjoint halves of
// the compute partition, sharing the I/O nodes: a balanced reader (the
// "victim") and an I/O-bound scanner (the "aggressor"). It measures how
// much of the victim's prefetching benefit survives a noisy neighbour.
func ExtInterference(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: prefetching under multi-application interference (64KB, 50ms compute victim)",
		"Scenario", "Victim B/W (MB/s)", "Victim hit rate")
	type scenario struct {
		name      string
		prefetch  bool
		aggressor bool
	}
	scenarios := []scenario{
		{"alone, no prefetch", false, false},
		{"alone, prefetch", true, false},
		{"shared I/O nodes, no prefetch", false, true},
		{"shared I/O nodes, prefetch", true, true},
	}
	type cell struct {
		bw, hit float64
	}
	cells, err := runCells(s, len(scenarios), func(i int) (cell, error) {
		sc := scenarios[i]
		bw, hit, err := interferenceRun(s, sc.prefetch, sc.aggressor)
		if err != nil {
			return cell{}, fmt.Errorf("ext-interference %q: %w", sc.name, err)
		}
		return cell{bw, hit}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, sc := range scenarios {
		t.AddRow(sc.name, cells[i].bw, cells[i].hit)
	}
	return t, nil
}

// interferenceRun drives the victim on the first half of the compute
// nodes and, optionally, the aggressor on the second half, both against
// the same I/O nodes. Returns the victim's bandwidth and hit rate.
func interferenceRun(s Scale, withPrefetch, withAggressor bool) (float64, float64, error) {
	m := machine.Build(s.machineConfig())
	half := s.Compute / 2
	if half == 0 {
		half = 1
	}
	victimBytes := int64(half) * (64 << 10) * s.Rounds * 2
	if err := m.FS.Create("victim", victimBytes); err != nil {
		return 0, 0, err
	}
	var pf *prefetch.Prefetcher
	if withPrefetch {
		pf = prefetch.New(m.K, prefetch.DefaultConfig())
	}
	group := pfs.NewOpenGroup(m.K, half)
	errs := make([]error, s.Compute)
	var victimEnd sim.Time
	var victimRead int64
	for i := 0; i < half; i++ {
		i := i
		m.K.Go(fmt.Sprintf("victim%d", i), func(p *sim.Proc) {
			errs[i] = func() error {
				f, err := m.FS.Open("victim", m.Compute[i], pfs.MRecord, group)
				if err != nil {
					return err
				}
				defer f.Close()
				if pf != nil {
					pf.Attach(f)
				}
				for {
					n, err := f.Read(p, 64<<10)
					if err == io.EOF {
						return nil
					}
					if err != nil {
						return err
					}
					victimRead += n
					p.Sleep(50 * sim.Millisecond)
				}
			}()
			if p.Now() > victimEnd {
				victimEnd = p.Now()
			}
		})
	}
	if withAggressor {
		aggBytes := int64(s.Compute-half) * (64 << 10) * s.Rounds * 4
		if err := m.FS.Create("aggressor", aggBytes); err != nil {
			return 0, 0, err
		}
		aggGroup := pfs.NewOpenGroup(m.K, s.Compute-half)
		for i := half; i < s.Compute; i++ {
			i := i
			m.K.Go(fmt.Sprintf("aggressor%d", i), func(p *sim.Proc) {
				errs[i] = func() error {
					f, err := m.FS.Open("aggressor", m.Compute[i], pfs.MRecord, aggGroup)
					if err != nil {
						return err
					}
					defer f.Close()
					for {
						if _, err := f.Read(p, 64<<10); err == io.EOF {
							return nil
						} else if err != nil {
							return err
						}
					}
				}()
			})
		}
	}
	if err := m.K.Run(); err != nil {
		return 0, 0, err
	}
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	bw := stats.MBps(victimRead, victimEnd)
	hit := 0.0
	if pf != nil {
		hit = pf.HitRate()
	}
	return bw, hit, nil
}

// ExtScale grows the machine — the paper's other stated future work
// ("evaluate the performance of prefetching on much larger systems") —
// and sweeps I/O mode × machine size up the Scale.Ladder to find where
// each mode's coordination cost breaks. The modes order by how much
// they serialize: M_UNIX holds the shared-pointer token across the
// whole I/O, M_LOG only across the claim, M_RECORD coordinates rounds
// without a token, M_ASYNC coordinates nothing. The token columns
// record the collapse: waits per acquisition and queued time per
// acquisition grow with the client count for M_UNIX while per-node
// bandwidth falls away, which is the serialization wall the stripe-group
// tiling and bounded I/O-group partition exist to avoid. Files stripe
// over a ≤16-node group so declustering cost stays fixed as the machine
// grows and the sweep isolates coordination, not stripe width.
func ExtScale(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Extension: I/O-mode coordination cost vs machine size (64KB requests, stripe group <=16)",
		"Nodes (C+IO)", "Mode", "Aggregate (MB/s)", "Per node (MB/s)",
		"Token waits/op", "Token wait (ms/op)", "Events")
	modes := []pfs.Mode{pfs.MUnix, pfs.MLog, pfs.MRecord, pfs.MAsync}
	type cell struct {
		bw, waitsPerOp, waitMsPerOp float64
		events                      uint64
	}
	cells, err := runCells(s, len(s.Ladder)*len(modes), func(i int) (cell, error) {
		c := s.Ladder[i/len(modes)]
		mode := modes[i%len(modes)]
		io := c / 4
		if io < 2 {
			io = 2
		}
		cfg := s.machineConfig()
		cfg.ComputeNodes = c
		cfg.IONodes = io
		sg := io
		if sg > 16 {
			sg = 16
		}
		spec := workload.Spec{
			FileSize:    int64(c) * (64 << 10) * s.Rounds,
			RequestSize: 64 << 10,
			Mode:        mode,
			StripeGroup: sg,
		}
		res, err := workload.Run(cfg, spec)
		if err != nil {
			return cell{}, fmt.Errorf("ext-scale %v/%d: %w", mode, c, err)
		}
		out := cell{bw: res.Bandwidth, events: res.Machine.Executed()}
		if res.TokenOps > 0 {
			out.waitsPerOp = float64(res.TokenWaits) / float64(res.TokenOps)
			out.waitMsPerOp = res.TokenWaitTime.Seconds() * 1e3 / float64(res.TokenOps)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for r, c := range s.Ladder {
		io := c / 4
		if io < 2 {
			io = 2
		}
		for m, mode := range modes {
			cl := cells[r*len(modes)+m]
			t.AddRow(fmt.Sprintf("%d+%d", c, io), mode.String(), cl.bw,
				cl.bw/float64(c), cl.waitsPerOp, cl.waitMsPerOp, cl.events)
		}
	}
	return t, nil
}
