package experiments

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/simcheck"
	"repro/internal/stats"
	"repro/internal/workload"
)

// tournamentFamily is one workload environment the policies race in.
// The degraded and crash families are where aggressive prefetch is
// actively harmful: speculative reads add load exactly where the I/O
// path is already retrying, shedding, or reconstructing from parity.
type tournamentFamily struct {
	label       string
	config      func(s Scale) machine.Config
	recoverable bool // chaos contract: transient faults + retries, must recover
	crashy      bool // crash contract: outages + failover, unavailable tolerated
}

func tournamentFamilies() []tournamentFamily {
	return []tournamentFamily{
		{label: "healthy", config: func(s Scale) machine.Config { return s.machineConfig() }},
		{label: "degraded", recoverable: true,
			config: func(s Scale) machine.Config { return degradedMachineConfig(s, 0.02) }},
		{label: "crash", crashy: true,
			config: func(s Scale) machine.Config {
				return crashMachineConfig(s, crashCase{downtime: 400 * sim.Millisecond, member: true, gap: 2 * sim.Millisecond})
			}},
	}
}

// tournamentSpec builds one cell's workload: the balanced M_RECORD scan
// with the given predictor policy and, optionally, the online controller
// retuning Depth/MaxBuffers every 4 reads.
func tournamentSpec(s Scale, fam tournamentFamily, policy string, controlled bool) workload.Spec {
	pcfg := prefetch.DefaultConfig()
	pcfg.Policy = policy
	if controlled {
		pcfg.Controller = prefetch.ControllerConfig{Interval: 4}
	}
	return workload.Spec{
		File:         "tournament",
		FileSize:     s.FileBytes / 4,
		RequestSize:  64 << 10,
		Mode:         pfs.MRecord,
		ComputeDelay: 50 * sim.Millisecond,
		Prefetch:     &pcfg,
		// Crash cells tolerate deterministically-unavailable reads, like
		// every crash-family workload in the repository.
		ContinueOnUnavailable: fam.crashy,
	}
}

// ExtTournament races every registered prefetch policy, with and without
// the online controller, across the healthy, degraded, and crash
// families. Beyond the table it enforces two promises in-line: the
// controller must demonstrably move Depth mid-run on at least one cell,
// and a simcheck twin of the hybrid+controller cell in every family must
// pass its full oracle set (determinism, conservation with the registry
// attribution cross-foot, data correctness against the prefetch-off twin
// for the healthy/degraded families, the crash oracle for the crash
// family) — the proof that adaptive speculation never bends the
// simulation's invariants.
func ExtTournament(s Scale) (*stats.Table, error) {
	t := stats.NewTable(
		"Extension: prefetcher tournament — policy x controller across workload families (64KB requests, 50ms compute)",
		"Family", "Policy", "Ctl", "MB/s", "Hit rate", "Issued", "Wasted", "Unread",
		"Retunes", "Depth", "Bufs")

	fams := tournamentFamilies()
	policies := prefetch.Policies()
	cells := len(fams) * len(policies) * 2
	results, err := runCells(s, cells, func(i int) (*workload.Result, error) {
		fam := fams[i/(len(policies)*2)]
		policy := policies[(i/2)%len(policies)]
		controlled := i%2 == 1
		res, err := workload.Run(fam.config(s), tournamentSpec(s, fam, policy, controlled))
		if err != nil {
			return nil, fmt.Errorf("ext-tournament %s/%s/ctl=%v: %w", fam.label, policy, controlled, err)
		}
		if res.Fault.GiveUps != 0 {
			return nil, fmt.Errorf("ext-tournament %s/%s/ctl=%v: %d retry budget(s) exhausted",
				fam.label, policy, controlled, res.Fault.GiveUps)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	var depthMoved bool
	for i, res := range results {
		fam := fams[i/(len(policies)*2)]
		policy := policies[(i/2)%len(policies)]
		controlled := i%2 == 1
		p := res.Prefetch
		depth, bufs, _ := p.Tuning()
		dm, _ := p.ControllerMoves()
		if dm > 0 {
			depthMoved = true
		}
		ctl := "off"
		if controlled {
			ctl = "on"
		}
		t.AddRow(fam.label, policy, ctl, res.Bandwidth, p.HitRate(),
			p.Issued, p.Wasted, p.UnreadAtClose, p.Retunes, depth, bufs)
	}
	if !depthMoved {
		return nil, fmt.Errorf("ext-tournament: no controller-armed cell moved Depth mid-run; the controller is inert")
	}

	// Simcheck twin: the hybrid+controller cell of every family, under
	// the full oracle set for its fault class.
	for _, fam := range fams {
		spec := tournamentSpec(s, fam, "hybrid", true)
		spec.RecordDeliveries = true
		sc := simcheck.Scenario{
			Seed:        1,
			Cfg:         fam.config(s),
			Spec:        spec,
			Recoverable: fam.recoverable,
			Crashy:      fam.crashy,
		}
		var rep simcheck.Report
		if fam.crashy {
			rep = simcheck.CheckCrashScenario(sc)
		} else {
			rep = simcheck.CheckScenario(sc)
		}
		if !rep.OK() {
			var details []string
			for _, f := range rep.Failures {
				details = append(details, fmt.Sprintf("%s: %s", f.Oracle, f.Detail))
			}
			return nil, fmt.Errorf("ext-tournament: simcheck twin failed for %s family:\n  %s",
				fam.label, strings.Join(details, "\n  "))
		}
	}
	return t, nil
}
