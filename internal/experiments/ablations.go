package experiments

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationDepth varies how far ahead the prototype prefetches. The paper
// prefetches exactly one record and flags deeper policies as future work;
// this measures what depth buys under partial overlap.
func AblationDepth(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: prefetch depth (M_RECORD, 64KB requests)",
		"Depth", "Delay (s)", "Bandwidth (MB/s)", "Hit rate", "Waited hits")
	for _, depth := range []int{1, 2, 4, 8} {
		for _, delay := range s.Delays {
			pcfg := prefetch.DefaultConfig()
			pcfg.Depth = depth
			pcfg.MaxBuffers = 2 * depth
			res, err := workload.Run(s.machineConfig(), workload.Spec{
				FileSize:     s.FileBytes,
				RequestSize:  64 << 10,
				Mode:         pfs.MRecord,
				ComputeDelay: delay,
				Prefetch:     &pcfg,
			})
			if err != nil {
				return nil, fmt.Errorf("ablation-depth %d/%v: %w", depth, delay, err)
			}
			t.AddRow(depth, delay.Seconds(), res.Bandwidth, res.Prefetch.HitRate(), res.Prefetch.HitsInWait)
		}
	}
	return t, nil
}

// AblationCopy isolates the prefetch-buffer-to-user-buffer copy that the
// paper blames for the zero-overlap overhead, by making it free.
func AblationCopy(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: hit-path copy cost (M_RECORD, delay 0)",
		"Request (KB)", "No prefetching (MB/s)", "Prefetching (MB/s)", "Prefetching, free copy (MB/s)")
	for _, req := range requestSizes {
		fileSize := req * int64(s.Compute) * s.Rounds
		spec := workload.Spec{FileSize: fileSize, RequestSize: req, Mode: pfs.MRecord}
		plain, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ablation-copy plain/%d: %w", req, err)
		}
		pcfg := prefetch.DefaultConfig()
		spec.Prefetch = &pcfg
		copying, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ablation-copy copy/%d: %w", req, err)
		}
		free := prefetch.DefaultConfig()
		free.FreeCopy = true
		spec.Prefetch = &free
		freed, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ablation-copy free/%d: %w", req, err)
		}
		t.AddRow(req>>10, plain.Bandwidth, copying.Bandwidth, freed.Bandwidth)
	}
	return t, nil
}

// AblationPlacement compares where prefetched data lands: the paper's
// compute-node buffer (Fast Path mount) against server-side cache
// warming on a buffered mount, with the matching no-prefetch baselines.
func AblationPlacement(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: prefetch placement (M_RECORD, 64KB requests)",
		"Delay (s)", "FastPath plain", "FastPath + client prefetch",
		"Buffered plain", "Buffered + server hints")
	for _, delay := range s.Delays {
		base := workload.Spec{
			FileSize:     s.FileBytes / 4,
			RequestSize:  64 << 10,
			Mode:         pfs.MRecord,
			ComputeDelay: delay,
		}
		row := []any{delay.Seconds()}

		fpPlain, err := workload.Run(s.machineConfig(), base)
		if err != nil {
			return nil, fmt.Errorf("ablation-placement fp-plain/%v: %w", delay, err)
		}
		row = append(row, fpPlain.Bandwidth)

		client := base
		pcfg := prefetch.DefaultConfig()
		client.Prefetch = &pcfg
		fpClient, err := workload.Run(s.machineConfig(), client)
		if err != nil {
			return nil, fmt.Errorf("ablation-placement fp-client/%v: %w", delay, err)
		}
		row = append(row, fpClient.Bandwidth)

		buf := base
		buf.Buffered = true
		bufPlain, err := workload.Run(s.machineConfig(), buf)
		if err != nil {
			return nil, fmt.Errorf("ablation-placement buf-plain/%v: %w", delay, err)
		}
		row = append(row, bufPlain.Bandwidth)

		server := buf
		scfg := prefetch.DefaultServerSideConfig()
		server.ServerSide = &scfg
		bufServer, err := workload.Run(s.machineConfig(), server)
		if err != nil {
			return nil, fmt.Errorf("ablation-placement buf-server/%v: %w", delay, err)
		}
		row = append(row, bufServer.Bandwidth)

		t.AddRow(row...)
	}
	return t, nil
}

// AblationPattern runs the prototype against access patterns it cannot
// predict, quantifying how pattern-dependent the gains are.
func AblationPattern(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: access pattern vs next-record prediction (M_ASYNC, 64KB requests)",
		"Pattern", "No prefetching (MB/s)", "Prefetching (MB/s)", "Hit rate", "Wasted buffers")
	patterns := []struct {
		p      workload.Pattern
		stride int
	}{
		{workload.Interleaved, 0},
		{workload.Partitioned, 0},
		{workload.Strided, 4},
		{workload.Random, 0},
	}
	for _, pat := range patterns {
		spec := workload.Spec{
			FileSize:     s.FileBytes,
			RequestSize:  64 << 10,
			Mode:         pfs.MAsync,
			Pattern:      pat.p,
			Stride:       pat.stride,
			Seed:         17,
			ComputeDelay: 50 * sim.Millisecond,
		}
		plain, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ablation-pattern plain/%v: %w", pat.p, err)
		}
		pcfg := prefetch.DefaultConfig()
		spec.Prefetch = &pcfg
		fetched, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ablation-pattern prefetch/%v: %w", pat.p, err)
		}
		t.AddRow(pat.p.String(), plain.Bandwidth, fetched.Bandwidth,
			fetched.Prefetch.HitRate(), fetched.Prefetch.Wasted)
	}
	return t, nil
}

// AblationPredictor crosses access patterns with prediction policies:
// the prototype's mode-derived policy against the history-based
// predictors of Kotz & Ellis (the paper's references [4][5]).
func AblationPredictor(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: prediction policy x access pattern (M_ASYNC, 64KB, 50ms compute)",
		"Pattern", "Mode policy (MB/s)", "hit", "Sequential (MB/s)", "hit", "Stride detect (MB/s)", "hit")
	patterns := []struct {
		p      workload.Pattern
		stride int
	}{
		{workload.Partitioned, 0},
		{workload.Interleaved, 0},
		{workload.Strided, 4},
		{workload.Random, 0},
	}
	predictors := []func() prefetch.Predictor{
		func() prefetch.Predictor { return prefetch.ModePredictor{} },
		func() prefetch.Predictor { return prefetch.SequentialPredictor{} },
		func() prefetch.Predictor { return prefetch.NewStridePredictor(2) },
	}
	for _, pat := range patterns {
		row := []any{pat.p.String()}
		for _, mk := range predictors {
			pcfg := prefetch.DefaultConfig()
			pcfg.Predictor = mk()
			res, err := workload.Run(s.machineConfig(), workload.Spec{
				FileSize:     s.FileBytes / 4,
				RequestSize:  64 << 10,
				Mode:         pfs.MAsync,
				Pattern:      pat.p,
				Stride:       pat.stride,
				Seed:         17,
				ComputeDelay: 50 * sim.Millisecond,
				Prefetch:     &pcfg,
			})
			if err != nil {
				return nil, fmt.Errorf("ablation-predictor %v: %w", pat.p, err)
			}
			row = append(row, res.Bandwidth, res.Prefetch.HitRate())
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationSched compares FIFO and SCAN disk scheduling. The record scan
// is too sequential to care, so the comparison runs the random-access
// workload, where per-disk queues fill with scattered offsets and the
// elevator earns its keep.
func AblationSched(s Scale) (*stats.Table, error) {
	policies := []disk.Sched{disk.FIFO, disk.SCAN, disk.CSCAN, disk.SSTF}
	t := stats.NewTable("Ablation: disk scheduling policy (M_ASYNC random access, delay 0)",
		"Request (KB)", "FIFO (MB/s)", "SCAN (MB/s)", "C-SCAN (MB/s)", "SSTF (MB/s)")
	for _, req := range requestSizes {
		fileSize := req * int64(s.Compute) * s.Rounds
		row := []any{req >> 10}
		for _, sched := range policies {
			cfg := s.machineConfig()
			cfg.DiskSched = sched
			res, err := workload.Run(cfg, workload.Spec{
				FileSize:    fileSize,
				RequestSize: req,
				Mode:        pfs.MAsync,
				Pattern:     workload.Random,
				Seed:        23,
			})
			if err != nil {
				return nil, fmt.Errorf("ablation-sched %d/%v: %w", req, sched, err)
			}
			row = append(row, res.Bandwidth)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationFrag shows what UFS fragmentation costs once block coalescing
// can no longer merge disk runs.
func AblationFrag(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: UFS fragmentation vs block coalescing (M_RECORD, 256KB requests)",
		"Fragmentation", "Bandwidth (MB/s)", "Disk ops")
	for _, frag := range []float64{0, 0.05, 0.2, 0.5, 1} {
		cfg := s.machineConfig()
		cfg.UFS.Fragmentation = frag
		// A 256 KB stripe unit makes each I/O node piece span four file
		// system blocks, giving coalescing something to merge (or not,
		// once fragmentation splits the extents).
		res, err := workload.Run(cfg, workload.Spec{
			FileSize:    s.FileBytes / 4,
			RequestSize: 256 << 10,
			StripeUnit:  256 << 10,
			Mode:        pfs.MRecord,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation-frag %v: %w", frag, err)
		}
		var ops int64
		for _, srv := range res.Machine.Servers {
			ops += srv.FS().DiskOps
		}
		t.AddRow(frag, res.Bandwidth, ops)
	}
	return t, nil
}
