package experiments

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationDepth varies how far ahead the prototype prefetches. The paper
// prefetches exactly one record and flags deeper policies as future work;
// this measures what depth buys under partial overlap.
func AblationDepth(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: prefetch depth (M_RECORD, 64KB requests)",
		"Depth", "Delay (s)", "Bandwidth (MB/s)", "Hit rate", "Waited hits")
	depths := []int{1, 2, 4, 8}
	results, err := runCells(s, len(depths)*len(s.Delays), func(i int) (*workload.Result, error) {
		depth := depths[i/len(s.Delays)]
		delay := s.Delays[i%len(s.Delays)]
		pcfg := prefetch.DefaultConfig()
		pcfg.Depth = depth
		pcfg.MaxBuffers = 2 * depth
		res, err := workload.Run(s.machineConfig(), workload.Spec{
			FileSize:     s.FileBytes,
			RequestSize:  64 << 10,
			Mode:         pfs.MRecord,
			ComputeDelay: delay,
			Prefetch:     &pcfg,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation-depth %d/%v: %w", depth, delay, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		depth := depths[i/len(s.Delays)]
		delay := s.Delays[i%len(s.Delays)]
		t.AddRow(depth, delay.Seconds(), res.Bandwidth, res.Prefetch.HitRate(), res.Prefetch.HitsInWait)
	}
	return t, nil
}

// AblationCopy isolates the prefetch-buffer-to-user-buffer copy that the
// paper blames for the zero-overlap overhead, by making it free.
func AblationCopy(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: hit-path copy cost (M_RECORD, delay 0)",
		"Request (KB)", "No prefetching (MB/s)", "Prefetching (MB/s)", "Prefetching, free copy (MB/s)")
	variants := []string{"plain", "copy", "free"}
	bws, err := runCells(s, len(requestSizes)*len(variants), func(i int) (float64, error) {
		req := requestSizes[i/len(variants)]
		variant := variants[i%len(variants)]
		spec := workload.Spec{
			FileSize:    req * int64(s.Compute) * s.Rounds,
			RequestSize: req,
			Mode:        pfs.MRecord,
		}
		switch variant {
		case "copy":
			pcfg := prefetch.DefaultConfig()
			spec.Prefetch = &pcfg
		case "free":
			pcfg := prefetch.DefaultConfig()
			pcfg.FreeCopy = true
			spec.Prefetch = &pcfg
		}
		res, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return 0, fmt.Errorf("ablation-copy %s/%d: %w", variant, req, err)
		}
		return res.Bandwidth, nil
	})
	if err != nil {
		return nil, err
	}
	for r, req := range requestSizes {
		t.AddRow(req>>10, bws[3*r], bws[3*r+1], bws[3*r+2])
	}
	return t, nil
}

// AblationPlacement compares where prefetched data lands: the paper's
// compute-node buffer (Fast Path mount) against server-side cache
// warming on a buffered mount, with the matching no-prefetch baselines.
func AblationPlacement(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: prefetch placement (M_RECORD, 64KB requests)",
		"Delay (s)", "FastPath plain", "FastPath + client prefetch",
		"Buffered plain", "Buffered + server hints")
	variants := []string{"fp-plain", "fp-client", "buf-plain", "buf-server"}
	bws, err := runCells(s, len(s.Delays)*len(variants), func(i int) (float64, error) {
		delay := s.Delays[i/len(variants)]
		variant := variants[i%len(variants)]
		spec := workload.Spec{
			FileSize:     s.FileBytes / 4,
			RequestSize:  64 << 10,
			Mode:         pfs.MRecord,
			ComputeDelay: delay,
		}
		switch variant {
		case "fp-client":
			pcfg := prefetch.DefaultConfig()
			spec.Prefetch = &pcfg
		case "buf-plain":
			spec.Buffered = true
		case "buf-server":
			spec.Buffered = true
			scfg := prefetch.DefaultServerSideConfig()
			spec.ServerSide = &scfg
		}
		res, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return 0, fmt.Errorf("ablation-placement %s/%v: %w", variant, delay, err)
		}
		return res.Bandwidth, nil
	})
	if err != nil {
		return nil, err
	}
	for r, delay := range s.Delays {
		t.AddRow(delay.Seconds(), bws[4*r], bws[4*r+1], bws[4*r+2], bws[4*r+3])
	}
	return t, nil
}

// AblationPattern runs the prototype against access patterns it cannot
// predict, quantifying how pattern-dependent the gains are.
func AblationPattern(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: access pattern vs next-record prediction (M_ASYNC, 64KB requests)",
		"Pattern", "No prefetching (MB/s)", "Prefetching (MB/s)", "Hit rate", "Wasted buffers")
	patterns := []struct {
		p      workload.Pattern
		stride int
	}{
		{workload.Interleaved, 0},
		{workload.Partitioned, 0},
		{workload.Strided, 4},
		{workload.Random, 0},
	}
	results, err := runCells(s, len(patterns)*2, func(i int) (*workload.Result, error) {
		pat := patterns[i/2]
		spec := workload.Spec{
			FileSize:     s.FileBytes,
			RequestSize:  64 << 10,
			Mode:         pfs.MAsync,
			Pattern:      pat.p,
			Stride:       pat.stride,
			Seed:         17,
			ComputeDelay: 50 * sim.Millisecond,
		}
		variant := "plain"
		if i%2 == 1 {
			pcfg := prefetch.DefaultConfig()
			spec.Prefetch = &pcfg
			variant = "prefetch"
		}
		res, err := workload.Run(s.machineConfig(), spec)
		if err != nil {
			return nil, fmt.Errorf("ablation-pattern %s/%v: %w", variant, pat.p, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for r, pat := range patterns {
		plain, fetched := results[2*r], results[2*r+1]
		t.AddRow(pat.p.String(), plain.Bandwidth, fetched.Bandwidth,
			fetched.Prefetch.HitRate(), fetched.Prefetch.Wasted)
	}
	return t, nil
}

// AblationPredictor crosses access patterns with prediction policies:
// the prototype's mode-derived policy against the history-based
// predictors of Kotz & Ellis (the paper's references [4][5]).
func AblationPredictor(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: prediction policy x access pattern (M_ASYNC, 64KB, 50ms compute)",
		"Pattern", "Mode policy (MB/s)", "hit", "Sequential (MB/s)", "hit", "Stride detect (MB/s)", "hit")
	patterns := []struct {
		p      workload.Pattern
		stride int
	}{
		{workload.Partitioned, 0},
		{workload.Interleaved, 0},
		{workload.Strided, 4},
		{workload.Random, 0},
	}
	predictors := []func() prefetch.Predictor{
		func() prefetch.Predictor { return prefetch.ModePredictor{} },
		func() prefetch.Predictor { return prefetch.SequentialPredictor{} },
		func() prefetch.Predictor { return prefetch.NewStridePredictor(2) },
	}
	results, err := runCells(s, len(patterns)*len(predictors), func(i int) (*workload.Result, error) {
		pat := patterns[i/len(predictors)]
		mk := predictors[i%len(predictors)]
		pcfg := prefetch.DefaultConfig()
		pcfg.Predictor = mk()
		res, err := workload.Run(s.machineConfig(), workload.Spec{
			FileSize:     s.FileBytes / 4,
			RequestSize:  64 << 10,
			Mode:         pfs.MAsync,
			Pattern:      pat.p,
			Stride:       pat.stride,
			Seed:         17,
			ComputeDelay: 50 * sim.Millisecond,
			Prefetch:     &pcfg,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation-predictor %v: %w", pat.p, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for r, pat := range patterns {
		row := []any{pat.p.String()}
		for c := range predictors {
			res := results[r*len(predictors)+c]
			row = append(row, res.Bandwidth, res.Prefetch.HitRate())
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationSched compares FIFO and SCAN disk scheduling. The record scan
// is too sequential to care, so the comparison runs the random-access
// workload, where per-disk queues fill with scattered offsets and the
// elevator earns its keep.
func AblationSched(s Scale) (*stats.Table, error) {
	policies := []disk.Sched{disk.FIFO, disk.SCAN, disk.CSCAN, disk.SSTF}
	t := stats.NewTable("Ablation: disk scheduling policy (M_ASYNC random access, delay 0)",
		"Request (KB)", "FIFO (MB/s)", "SCAN (MB/s)", "C-SCAN (MB/s)", "SSTF (MB/s)")
	bws, err := runCells(s, len(requestSizes)*len(policies), func(i int) (float64, error) {
		req := requestSizes[i/len(policies)]
		sched := policies[i%len(policies)]
		cfg := s.machineConfig()
		cfg.DiskSched = sched
		res, err := workload.Run(cfg, workload.Spec{
			FileSize:    req * int64(s.Compute) * s.Rounds,
			RequestSize: req,
			Mode:        pfs.MAsync,
			Pattern:     workload.Random,
			Seed:        23,
		})
		if err != nil {
			return 0, fmt.Errorf("ablation-sched %d/%v: %w", req, sched, err)
		}
		return res.Bandwidth, nil
	})
	if err != nil {
		return nil, err
	}
	for r, req := range requestSizes {
		row := []any{req >> 10}
		for c := range policies {
			row = append(row, bws[r*len(policies)+c])
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationFrag shows what UFS fragmentation costs once block coalescing
// can no longer merge disk runs.
func AblationFrag(s Scale) (*stats.Table, error) {
	t := stats.NewTable("Ablation: UFS fragmentation vs block coalescing (M_RECORD, 256KB requests)",
		"Fragmentation", "Bandwidth (MB/s)", "Disk ops")
	frags := []float64{0, 0.05, 0.2, 0.5, 1}
	type cell struct {
		bw  float64
		ops int64
	}
	cells, err := runCells(s, len(frags), func(i int) (cell, error) {
		cfg := s.machineConfig()
		cfg.UFS.Fragmentation = frags[i]
		// A 256 KB stripe unit makes each I/O node piece span four file
		// system blocks, giving coalescing something to merge (or not,
		// once fragmentation splits the extents).
		res, err := workload.Run(cfg, workload.Spec{
			FileSize:    s.FileBytes / 4,
			RequestSize: 256 << 10,
			StripeUnit:  256 << 10,
			Mode:        pfs.MRecord,
		})
		if err != nil {
			return cell{}, fmt.Errorf("ablation-frag %v: %w", frags[i], err)
		}
		var ops int64
		for _, srv := range res.Machine.Servers {
			ops += srv.FS().DiskOps
		}
		return cell{res.Bandwidth, ops}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.AddRow(frags[i], c.bw, c.ops)
	}
	return t, nil
}
