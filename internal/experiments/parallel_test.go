package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// TestParallelTablesMatchSerial: every experiment's rendered table must
// be byte-identical at any worker-pool width. The catalogue's grid cells
// are independent simulations collected in index order, so -parallel may
// only change wall-clock time, never a digit of output. A divergence
// here means either a generator's index arithmetic mis-assembled rows or
// a simulation read shared mutable state across cells.
func TestParallelTablesMatchSerial(t *testing.T) {
	scale := QuickScale()
	widths := []int{2, 4, runtime.NumCPU()}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			render := func(parallel int) string {
				s := scale
				s.Parallel = parallel
				table, err := e.Run(s)
				if err != nil {
					t.Fatalf("parallel=%d: %v", parallel, err)
				}
				var b strings.Builder
				if err := table.RenderCSV(&b); err != nil {
					t.Fatalf("parallel=%d: render: %v", parallel, err)
				}
				return b.String()
			}
			serial := render(1)
			for _, w := range widths {
				if got := render(w); got != serial {
					t.Errorf("parallel=%d table differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
						w, serial, got)
				}
			}
		})
	}
}
