package experiments

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// crashCase is one row of the ExtCrash sweep: either a whole-node outage
// schedule of the given downtime, or a permanent RAID member loss with
// the online rebuild throttled by the given inter-pass gap. The zero
// case is the healthy baseline.
type crashCase struct {
	label    string
	downtime sim.Time // whole-node outage length (0 = no crashes)
	member   bool     // lose a RAID member for good
	gap      sim.Time // rebuild throttle (member cases only)
}

// crashCases sweeps the outage length across the failover deadline —
// short outages are waited out, long ones turn into unavailable reads —
// and then the rebuild throttle, which trades time-to-heal against
// foreground bandwidth.
var crashCases = []crashCase{
	{label: "healthy"},
	{label: "down 200ms", downtime: 200 * sim.Millisecond},
	{label: "down 1s", downtime: sim.Second},
	{label: "down 3s", downtime: 3 * sim.Second},
	{label: "member, rebuild gap 0", member: true, gap: 0},
	{label: "member, rebuild gap 5ms", member: true, gap: 5 * sim.Millisecond},
	{label: "member, rebuild gap 20ms", member: true, gap: 20 * sim.Millisecond},
}

// crashMachineConfig arms the restart-aware failover stack and the
// case's fault plan on the scale's machine. The per-attempt deadline is
// far above every healthy service time, so timeouts only ever mean a
// request vanished into a dead node; the down deadline sits between the
// swept downtimes, so short outages are ridden out and long ones fail
// fast as unavailable.
func crashMachineConfig(s Scale, c crashCase) machine.Config {
	cfg := s.machineConfig()
	cfg.PFS.Retry = pfs.RetryPolicy{
		MaxRetries:   8,
		Timeout:      2 * sim.Second,
		Backoff:      2 * sim.Millisecond,
		BackoffMax:   100 * sim.Millisecond,
		Seed:         1,
		DownPoll:     50 * sim.Millisecond,
		DownDeadline: 2500 * sim.Millisecond,
	}
	if c.downtime > 0 {
		cfg.Crash = machine.CrashPlan{
			Count:    2,
			Seed:     1,
			Start:    50 * sim.Millisecond,
			Window:   500 * sim.Millisecond,
			Downtime: c.downtime,
		}
	}
	if c.member {
		cfg.MemberFail = machine.MemberFailPlan{At: 100 * sim.Millisecond, Array: 0, Member: 1}
		cfg.Rebuild = disk.RebuildPolicy{Chunk: 128 << 10, Gap: c.gap}
	}
	return cfg
}

// ExtCrash measures what surviving I/O-node crashes costs: the balanced
// M_RECORD workload under whole-node crash–restart outages and under a
// permanent RAID member loss with an online rebuild, with and without
// prefetching. Every cell must complete — short outages are waited out,
// long ones surface as deterministically counted unavailable reads, and
// degraded reads reconstruct from parity — so the table reports how
// bandwidth sits between the healthy baseline and a fully-down node,
// how many reads were parked or lost, and how fast the rebuild healed
// the array at each throttle setting. This is the repository's
// extension beyond the paper, whose evaluation assumed crash-free
// I/O nodes.
func ExtCrash(s Scale) (*stats.Table, error) {
	t := stats.NewTable(
		"Extension: read performance across I/O-node crashes and RAID rebuild (64KB requests, 50ms compute)",
		"Scenario", "No prefetch (MB/s)", "Prefetch (MB/s)", "Speedup",
		"Down waits", "Unavailable", "Degraded reads", "Rebuild done (s)")
	fileSize := s.FileBytes / 4
	results, err := runCells(s, len(crashCases)*2, func(i int) (*workload.Result, error) {
		c := crashCases[i/2]
		spec := workload.Spec{
			FileSize:              fileSize,
			RequestSize:           64 << 10,
			Mode:                  pfs.MRecord,
			ComputeDelay:          50 * sim.Millisecond,
			ContinueOnUnavailable: true,
		}
		variant := "plain"
		if i%2 == 1 {
			pcfg := prefetch.DefaultConfig()
			spec.Prefetch = &pcfg
			variant = "prefetch"
		}
		res, err := workload.Run(crashMachineConfig(s, c), spec)
		if err != nil {
			return nil, fmt.Errorf("ext-crash %s/%s: %w", variant, c.label, err)
		}
		if res.Fault.GiveUps != 0 {
			return nil, fmt.Errorf("ext-crash %s/%s: %d retry budget(s) exhausted under failover",
				variant, c.label, res.Fault.GiveUps)
		}
		if c.member && (res.Machine.Arrays[0].Degraded() || res.Machine.Arrays[0].Rebuilding()) {
			return nil, fmt.Errorf("ext-crash %s/%s: rebuild did not heal the array", variant, c.label)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for r, c := range crashCases {
		plain, fetched := results[2*r], results[2*r+1]
		rebuilt := 0.0
		if c.member {
			rebuilt = plain.Machine.Arrays[0].RebuildDoneAt.Seconds()
		}
		t.AddRow(c.label, plain.Bandwidth, fetched.Bandwidth,
			fetched.Bandwidth/plain.Bandwidth,
			plain.Fault.DownWaits+fetched.Fault.DownWaits,
			plain.UnavailableReads+fetched.UnavailableReads,
			plain.Fault.ArrayDegraded+fetched.Fault.ArrayDegraded,
			rebuilt)
	}
	return t, nil
}
