package experiments

import (
	"strconv"

	"repro/internal/stats"
)

// Chart converts an experiment's table into the figure the paper drew,
// when the experiment corresponds to one (fig2, fig4, fig5); ok reports
// whether the id has a chart form. Tables (table1..4) stay tables.
func Chart(id string, t *stats.Table) (*stats.Chart, bool) {
	switch id {
	case "fig2":
		// Columns: request KB, then one bandwidth column per mode.
		c := stats.NewChart(t.Title, "request size (KB)", "MB/s")
		headers := t.Headers()
		for col := 1; col < len(headers); col++ {
			var s stats.Series
			s.Name = headers[col]
			for _, row := range t.Rows() {
				x, xok := parseF(row[0])
				y, yok := parseF(row[col])
				if xok && yok {
					s.X = append(s.X, x)
					s.Y = append(s.Y, y)
				}
			}
			c.Add(s)
		}
		return c, true

	case "fig4", "fig5":
		// Columns: request KB, delay s, plain MB/s, prefetch MB/s,
		// speedup. One pair of series per request size, over delay.
		c := stats.NewChart(t.Title, "compute delay (s)", "MB/s")
		series := map[string]*stats.Series{}
		var order []string
		add := func(name string, x, y float64) {
			s, ok := series[name]
			if !ok {
				s = &stats.Series{Name: name}
				series[name] = s
				order = append(order, name)
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		for _, row := range t.Rows() {
			req := row[0]
			delay, dok := parseF(row[1])
			plain, pok := parseF(row[2])
			fetched, fok := parseF(row[3])
			if !dok || !pok || !fok {
				continue
			}
			add(req+"KB", delay, plain)
			add(req+"KB+pf", delay, fetched)
		}
		for _, name := range order {
			c.Add(*series[name])
		}
		return c, true
	}
	return nil, false
}

func parseF(s string) (float64, bool) {
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}
