package experiments

import (
	"fmt"

	"repro/internal/ionode"
	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// degradedFaultRates are the transient per-request disk fault
// probabilities swept by ExtDegraded. 0 is the healthy baseline; 0.05 is
// the chaos checker's ceiling.
var degradedFaultRates = []float64{0, 0.01, 0.02, 0.05}

// degradedMachineConfig arms the full fault-tolerance stack on the
// scale's machine: purely transient faults at the given rate, mild
// fault-stress service jitter, the I/O-node breaker, and the default
// client retry policy.
func degradedMachineConfig(s Scale, rate float64) machine.Config {
	cfg := s.machineConfig()
	cfg.DiskFaultRate = rate
	cfg.DiskFaultTransientFrac = 1
	cfg.DiskFaultJitter = 0.2
	cfg.FaultSeed = 1
	cfg.Shed = ionode.ShedPolicy{Threshold: 3, Cooldown: 20 * sim.Millisecond}
	cfg.PFS.Retry = pfs.DefaultRetryPolicy()
	return cfg
}

// ExtDegraded measures what fault tolerance costs and what it preserves:
// the balanced M_RECORD workload under rising transient disk fault
// rates, with and without prefetching. Every cell must complete — the
// retry layer absorbs all faults — so the table reports how bandwidth,
// the prefetch hit rate, and read latency degrade, and how much retry
// and shedding traffic the recovery generated. This is the repository's
// extension beyond the paper, whose evaluation assumed fault-free
// hardware.
func ExtDegraded(s Scale) (*stats.Table, error) {
	t := stats.NewTable(
		"Extension: degraded-mode reads under transient disk faults (64KB requests, 50ms compute)",
		"Fault rate", "No prefetch (MB/s)", "Prefetch (MB/s)", "Speedup", "Hit rate",
		"Retries", "Shed", "Degraded reads", "Read p50 (s)", "Read p90 (s)")
	fileSize := s.FileBytes / 4
	results, err := runCells(s, len(degradedFaultRates)*2, func(i int) (*workload.Result, error) {
		rate := degradedFaultRates[i/2]
		spec := workload.Spec{
			FileSize:     fileSize,
			RequestSize:  64 << 10,
			Mode:         pfs.MRecord,
			ComputeDelay: 50 * sim.Millisecond,
		}
		variant := "plain"
		if i%2 == 1 {
			pcfg := prefetch.DefaultConfig()
			spec.Prefetch = &pcfg
			variant = "prefetch"
		}
		res, err := workload.Run(degradedMachineConfig(s, rate), spec)
		if err != nil {
			return nil, fmt.Errorf("ext-degraded %s/rate=%.3f: %w", variant, rate, err)
		}
		if res.Fault.GiveUps != 0 {
			return nil, fmt.Errorf("ext-degraded %s/rate=%.3f: %d retry budget(s) exhausted under transient faults",
				variant, rate, res.Fault.GiveUps)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for r, rate := range degradedFaultRates {
		plain, fetched := results[2*r], results[2*r+1]
		t.AddRow(rate, plain.Bandwidth, fetched.Bandwidth,
			fetched.Bandwidth/plain.Bandwidth, fetched.Prefetch.HitRate(),
			plain.Fault.Retries+fetched.Fault.Retries,
			plain.Fault.Shed+fetched.Fault.Shed,
			plain.Fault.DegradedReads+fetched.Fault.DegradedReads,
			fetched.ReadTime.Quantile(0.5), fetched.ReadTime.Quantile(0.9))
	}
	return t, nil
}
