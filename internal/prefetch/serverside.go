package prefetch

import (
	"repro/internal/pfs"
	"repro/internal/sim"
)

// ServerSide is the alternative prefetch placement: instead of pulling
// the anticipated record all the way into compute-node memory (the
// paper's prototype), it sends cache-warming hints so the I/O nodes
// stage the data in their buffer caches. The user read still crosses the
// mesh, but finds warm caches instead of cold disks. Requires a mount
// with buffering enabled (pfs.Config.FastPath = false); under Fast Path
// the hints are wasted work, since reads bypass the caches.
type ServerSide struct {
	cfg ServerSideConfig

	// Measurements.
	Hints int64 // hint batches issued (one per predicted record)
	Reads int64 // user reads served
}

// ServerSideConfig tunes the hinting policy.
type ServerSideConfig struct {
	Depth         int      // records hinted ahead
	IssueOverhead sim.Time // user-thread CPU per hint batch
}

// DefaultServerSideConfig hints one record ahead, like the prototype.
func DefaultServerSideConfig() ServerSideConfig {
	return ServerSideConfig{Depth: 1, IssueOverhead: 150 * sim.Microsecond}
}

var _ pfs.PrefetchService = (*ServerSide)(nil)

// NewServerSide returns a server-side placement service.
func NewServerSide(cfg ServerSideConfig) *ServerSide {
	if cfg.Depth <= 0 {
		panic("prefetch: server-side depth must be positive")
	}
	return &ServerSide{cfg: cfg}
}

// Attach installs the service on an open file.
func (ss *ServerSide) Attach(f *pfs.File) { f.SetPrefetcher(ss) }

// ServeRead performs the read normally (warm caches make it fast) and
// hints the predicted next record(s).
func (ss *ServerSide) ServeRead(p *sim.Proc, f *pfs.File, off, n int64) error {
	ss.Reads++
	if err := f.BlockingIO(p, off, n); err != nil {
		return err
	}
	f.RecordDelivery(off, n)
	next := f.NextRecordOffset(off, n)
	for d := 0; d < ss.cfg.Depth; d++ {
		if next < 0 || next >= f.Size() {
			return nil
		}
		take := n
		if next+take > f.Size() {
			take = f.Size() - next
		}
		p.Sleep(ss.cfg.IssueOverhead)
		if err := f.HintAt(next, take); err != nil {
			return err
		}
		ss.Hints++
		next = f.NextRecordOffset(next, take)
	}
	return nil
}

// OnClose has nothing to free: the state lives in the I/O node caches.
func (ss *ServerSide) OnClose(*pfs.File) {}
