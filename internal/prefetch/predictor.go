package prefetch

import "repro/internal/pfs"

// Span is one predicted future read.
type Span struct {
	Off, N int64
}

// Predictor guesses where a file's next reads will land. The prototype's
// policy (mode-derived next record) is the default; the alternatives
// below follow the practical predictors of Kotz & Ellis (the paper's
// references [4] and [5]), which infer the pattern from the observed
// access stream instead of trusting the I/O mode.
type Predictor interface {
	// Observe is called after each user read completes.
	Observe(f *pfs.File, off, n int64)
	// Predict appends up to depth spans expected to be read next, given
	// the read at [off, off+n) just completed, and returns the extended
	// slice. Fewer (or none) is fine. Appending into the caller's scratch
	// keeps the issue path — and the registry's shadow predictions, which
	// run every predictor on every read — allocation-free in steady
	// state.
	Predict(f *pfs.File, off, n int64, depth int, dst []Span) []Span
	// Forget drops any per-file state (called at close).
	Forget(f *pfs.File)
}

// ModePredictor is the prototype's policy: derive the next record from
// the I/O mode, rank and party count. Exact for the coordinated modes,
// blind for access the mode does not describe.
type ModePredictor struct{}

// Observe is a no-op: the mode carries all the state.
func (ModePredictor) Observe(*pfs.File, int64, int64) {}

// Predict chains NextRecordOffset depth times.
func (ModePredictor) Predict(f *pfs.File, off, n int64, depth int, dst []Span) []Span {
	next := f.NextRecordOffset(off, n)
	for d := 0; d < depth; d++ {
		if next < 0 || next >= f.Size() {
			break
		}
		take := n
		if next+take > f.Size() {
			take = f.Size() - next
		}
		dst = append(dst, Span{Off: next, N: take})
		next = f.NextRecordOffset(next, take)
	}
	return dst
}

// Forget is a no-op.
func (ModePredictor) Forget(*pfs.File) {}

// SequentialPredictor always guesses the bytes immediately following the
// current read — Kotz & Ellis's one-block lookahead generalized to
// request-sized blocks.
type SequentialPredictor struct{}

// Observe is a no-op.
func (SequentialPredictor) Observe(*pfs.File, int64, int64) {}

// Predict appends the next depth request-sized extents.
func (SequentialPredictor) Predict(f *pfs.File, off, n int64, depth int, dst []Span) []Span {
	next := off + n
	for d := 0; d < depth; d++ {
		if next >= f.Size() {
			break
		}
		take := n
		if next+take > f.Size() {
			take = f.Size() - next
		}
		dst = append(dst, Span{Off: next, N: take})
		next += take
	}
	return dst
}

// Forget is a no-op.
func (SequentialPredictor) Forget(*pfs.File) {}

// StridePredictor infers a constant stride from the last few reads (the
// "portion recognition" idea): after confirm consecutive equal strides it
// predicts the arithmetic sequence, adapting when the pattern breaks.
// Detects sequential access (stride n), strided column walks, and
// application-managed interleaving alike.
type StridePredictor struct {
	// Confirm is how many identical strides must be seen before
	// predicting; 2 by default.
	Confirm int

	state map[*pfs.File]*strideState
}

type strideState struct {
	lastOff  int64
	lastN    int64
	stride   int64
	seen     int // identical strides observed in a row
	haveLast bool
}

// NewStridePredictor returns a detector requiring confirm identical
// strides (minimum 1).
func NewStridePredictor(confirm int) *StridePredictor {
	if confirm < 1 {
		confirm = 1
	}
	return &StridePredictor{Confirm: confirm, state: make(map[*pfs.File]*strideState)}
}

// Observe folds one read into the stride estimate. A repeat of the
// current stride extends the confirmation count only when the stride is
// at least as long as the previous read — a shorter stride means the
// reads overlap, and extrapolating an overlapping sequence would prefetch
// bytes the reader largely already has.
func (sp *StridePredictor) Observe(f *pfs.File, off, n int64) {
	st, ok := sp.state[f]
	if !ok {
		st = &strideState{}
		sp.state[f] = st
	}
	if st.haveLast {
		s := off - st.lastOff
		switch {
		case s == st.stride && s != 0 && abs64(s) >= st.lastN:
			st.seen++
		case s == st.stride && s != 0:
			// Same stride, but overlapping the previous read: keep the
			// estimate without confirming it further.
		default:
			st.stride = s
			st.seen = 1
		}
	}
	st.lastOff, st.lastN, st.haveLast = off, n, true
}

// abs64 is the absolute value of a stride.
func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Predict extrapolates the confirmed stride.
func (sp *StridePredictor) Predict(f *pfs.File, off, n int64, depth int, dst []Span) []Span {
	st, ok := sp.state[f]
	if !ok || st.seen < sp.Confirm || st.stride == 0 {
		return dst
	}
	next := off + st.stride
	for d := 0; d < depth; d++ {
		if next < 0 || next >= f.Size() {
			break
		}
		take := n
		if next+take > f.Size() {
			take = f.Size() - next
		}
		dst = append(dst, Span{Off: next, N: take})
		next += st.stride
	}
	return dst
}

// Forget drops the file's history.
func (sp *StridePredictor) Forget(f *pfs.File) { delete(sp.state, f) }
