package prefetch_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// smallMachine returns a 1-compute / 4-I/O-node machine config.
func smallMachine() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 1
	cfg.IONodes = 4
	cfg.UFS.Fragmentation = 0
	return cfg
}

// seqRun drives a single M_ASYNC reader through the whole file with a
// compute delay between reads, optionally under a prefetcher.
func seqRun(t *testing.T, mcfg machine.Config, fileSize, req int64, delay sim.Time,
	pcfg *prefetch.Config) (elapsed sim.Time, pf *prefetch.Prefetcher, f *pfs.File) {
	t.Helper()
	m := machine.Build(mcfg)
	if err := m.FS.Create("f", fileSize); err != nil {
		t.Fatal(err)
	}
	if pcfg != nil {
		pf = prefetch.New(m.K, *pcfg)
	}
	m.K.Go("reader", func(p *sim.Proc) {
		var err error
		f, err = m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if pf != nil {
			pf.Attach(f)
		}
		first := true
		for {
			if !first && delay > 0 {
				p.Sleep(delay)
			}
			first = false
			if _, err := f.Read(p, req); err == io.EOF {
				break
			} else if err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	return m.K.Now(), pf, f
}

func TestSequentialHits(t *testing.T) {
	pcfg := prefetch.DefaultConfig()
	// Generous delay: every prefetch completes before the next read.
	_, pf, f := seqRun(t, smallMachine(), 1<<20, 64<<10, 200*sim.Millisecond, &pcfg)
	if f.BytesRead != 1<<20 {
		t.Fatalf("read %d bytes, want full file", f.BytesRead)
	}
	// 16 reads: the first must miss, the remaining 15 hit completed
	// buffers.
	if pf.Misses != 1 {
		t.Fatalf("Misses = %d, want 1 (first read only)", pf.Misses)
	}
	if pf.Hits != 15 {
		t.Fatalf("Hits = %d, want 15", pf.Hits)
	}
	if pf.HitsInWait != 0 {
		t.Fatalf("HitsInWait = %d, want 0 with a generous delay", pf.HitsInWait)
	}
	if got := pf.HitRate(); got < 0.93 || got > 0.94 {
		t.Fatalf("HitRate = %v, want 15/16", got)
	}
}

func TestNoDelayWaitsOnInFlight(t *testing.T) {
	pcfg := prefetch.DefaultConfig()
	_, pf, _ := seqRun(t, smallMachine(), 1<<20, 64<<10, 0, &pcfg)
	if pf.HitsInWait == 0 {
		t.Fatal("back-to-back reads never caught a prefetch in flight")
	}
	if pf.WaitTime.N() != int(pf.HitsInWait) {
		t.Fatalf("WaitTime samples %d != HitsInWait %d", pf.WaitTime.N(), pf.HitsInWait)
	}
	if pf.WaitTime.Mean() <= 0 {
		t.Fatal("waiting on an in-flight prefetch took no time")
	}
}

func TestOverlapShrinksReadLatency(t *testing.T) {
	const fileSize, req = 2 << 20, 64 << 10
	delay := 150 * sim.Millisecond
	_, _, plain := seqRun(t, smallMachine(), fileSize, req, delay, nil)
	pcfg := prefetch.DefaultConfig()
	_, _, fetched := seqRun(t, smallMachine(), fileSize, req, delay, &pcfg)
	// With full overlap a hit read costs client call + copy, far below a
	// disk read.
	if fetched.ReadTime.Quantile(0.5) >= plain.ReadTime.Quantile(0.5)/2 {
		t.Fatalf("median read with prefetch %v, without %v: want at least 2x better",
			fetched.ReadTime.Quantile(0.5), plain.ReadTime.Quantile(0.5))
	}
}

func TestOverlapImprovesElapsed(t *testing.T) {
	const fileSize, req = 2 << 20, 64 << 10
	delay := 150 * sim.Millisecond
	without, _, _ := seqRun(t, smallMachine(), fileSize, req, delay, nil)
	pcfg := prefetch.DefaultConfig()
	with, _, _ := seqRun(t, smallMachine(), fileSize, req, delay, &pcfg)
	if with >= without {
		t.Fatalf("prefetch elapsed %v not below plain %v with full overlap", with, without)
	}
}

func TestZeroDelayOverheadVisible(t *testing.T) {
	// The paper's Table 1 result: with no computation to overlap,
	// prefetching is at best comparable and slightly worse for small
	// requests (buffer copy + issue overhead).
	const fileSize, req = 2 << 20, 64 << 10
	without, _, _ := seqRun(t, smallMachine(), fileSize, req, 0, nil)
	pcfg := prefetch.DefaultConfig()
	with, _, _ := seqRun(t, smallMachine(), fileSize, req, 0, &pcfg)
	ratio := with.Seconds() / without.Seconds()
	if ratio < 0.9 {
		t.Fatalf("prefetch at zero delay %.3f of plain time: should not be a big win", ratio)
	}
	if ratio > 1.5 {
		t.Fatalf("prefetch overhead ratio %.3f implausibly large", ratio)
	}
}

func TestNoPredictionModesNeverIssue(t *testing.T) {
	mcfg := smallMachine()
	m := machine.Build(mcfg)
	if err := m.FS.Create("f", 512<<10); err != nil {
		t.Fatal(err)
	}
	pf := prefetch.New(m.K, prefetch.DefaultConfig())
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MUnix, nil)
		if err != nil {
			t.Error(err)
			return
		}
		pf.Attach(f)
		for {
			if _, err := f.Read(p, 64<<10); err == io.EOF {
				return
			} else if err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if pf.Issued != 0 {
		t.Fatalf("M_UNIX issued %d prefetches; shared unordered pointer has no prediction", pf.Issued)
	}
	if pf.Hits+pf.HitsInWait != 0 {
		t.Fatal("hits without prefetches")
	}
}

func TestBuffersFreedAtClose(t *testing.T) {
	mcfg := smallMachine()
	m := machine.Build(mcfg)
	if err := m.FS.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	pf := prefetch.New(m.K, prefetch.DefaultConfig())
	m.K.Go("reader", func(p *sim.Proc) {
		f, _ := m.FS.Open("f", 0, pfs.MAsync, nil)
		pf.Attach(f)
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Error(err)
		}
		p.Sleep(sim.Second) // let the prefetch complete, then abandon it
		if pf.Outstanding(f) != 1 {
			t.Errorf("Outstanding = %d before close, want 1", pf.Outstanding(f))
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		if pf.Outstanding(f) != 0 {
			t.Errorf("Outstanding = %d after close", pf.Outstanding(f))
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if pf.Wasted != 1 {
		t.Fatalf("Wasted = %d, want 1 (unconsumed buffer freed at close)", pf.Wasted)
	}
}

func TestDepthAndCap(t *testing.T) {
	pcfg := prefetch.DefaultConfig()
	pcfg.Depth = 8
	pcfg.MaxBuffers = 2
	_, pf, _ := seqRun(t, smallMachine(), 2<<20, 64<<10, 10*sim.Millisecond, &pcfg)
	if pf.Skipped == 0 {
		t.Fatal("depth 8 under a 2-buffer cap never skipped")
	}
	// Every record is still prefetched exactly once — the cap defers
	// issues to later reads rather than dropping coverage.
	if pf.Issued != 31 {
		t.Fatalf("capped run issued %d, want 31 (records 2..32)", pf.Issued)
	}
	pcfg.MaxBuffers = 16
	_, pfBig, _ := seqRun(t, smallMachine(), 2<<20, 64<<10, 10*sim.Millisecond, &pcfg)
	if pfBig.Skipped != 0 {
		t.Fatalf("16-buffer cap skipped %d issues with depth 8", pfBig.Skipped)
	}
}

func TestNoPrefetchPastEOF(t *testing.T) {
	pcfg := prefetch.DefaultConfig()
	_, pf, _ := seqRun(t, smallMachine(), 256<<10, 64<<10, sim.Millisecond, &pcfg)
	// 4 records: prefetches for records 2,3,4 = 3 issues; never past EOF.
	if pf.Issued != 3 {
		t.Fatalf("Issued = %d, want 3", pf.Issued)
	}
	if pf.Wasted != 0 {
		t.Fatalf("Wasted = %d, want 0 for a clean sequential scan", pf.Wasted)
	}
}

func TestFreeCopyAblation(t *testing.T) {
	const fileSize, req = 2 << 20, 256 << 10
	delay := 300 * sim.Millisecond
	pcfg := prefetch.DefaultConfig()
	withCopy, _, fc := seqRun(t, smallMachine(), fileSize, req, delay, &pcfg)
	pcfg.FreeCopy = true
	withoutCopy, _, ff := seqRun(t, smallMachine(), fileSize, req, delay, &pcfg)
	if withoutCopy >= withCopy {
		t.Fatalf("free-copy run %v not faster than copying run %v", withoutCopy, withCopy)
	}
	if fc.BytesRead != ff.BytesRead {
		t.Fatal("ablation changed bytes read")
	}
}

func TestCollectiveRecordPrefetch(t *testing.T) {
	mcfg := machine.DefaultConfig()
	mcfg.ComputeNodes = 4
	mcfg.IONodes = 4
	mcfg.UFS.Fragmentation = 0
	m := machine.Build(mcfg)
	const fileSize, req = 4 << 20, 64 << 10
	if err := m.FS.Create("f", fileSize); err != nil {
		t.Fatal(err)
	}
	pf := prefetch.New(m.K, prefetch.DefaultConfig())
	group := pfs.NewOpenGroup(m.K, 4)
	var total int64
	for i := 0; i < 4; i++ {
		node := i
		m.K.Go(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			f, err := m.FS.Open("f", node, pfs.MRecord, group)
			if err != nil {
				t.Error(err)
				return
			}
			pf.Attach(f)
			defer f.Close()
			for {
				n, err := f.Read(p, req)
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				total += n
				p.Sleep(100 * sim.Millisecond)
			}
		})
	}
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if total != fileSize {
		t.Fatalf("collective read %d bytes, want %d: prefetching broke coverage", total, fileSize)
	}
	if pf.HitRate() < 0.8 {
		t.Fatalf("hit rate %.2f, want ≥ 0.8 for a record scan with overlap", pf.HitRate())
	}
	// Every node's first read misses; everything else should hit.
	if pf.Misses != 4 {
		t.Fatalf("Misses = %d, want 4 (one per node)", pf.Misses)
	}
}

// Property: prefetching must never change WHAT is read — only when. For
// random request sizes and delays, bytes read and coverage match the
// plain run.
func TestPrefetchPreservesSemantics(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		req := int64(1+rng.Intn(8)) * 64 << 10
		nrec := int64(2 + rng.Intn(12))
		fileSize := req * nrec
		delay := sim.Time(rng.Intn(50)) * sim.Millisecond
		_, _, plain := seqRun(t, smallMachine(), fileSize, req, delay, nil)
		pcfg := prefetch.DefaultConfig()
		pcfg.Depth = 1 + rng.Intn(3)
		_, _, fetched := seqRun(t, smallMachine(), fileSize, req, delay, &pcfg)
		return plain.BytesRead == fetched.BytesRead &&
			plain.ReadCalls == fetched.ReadCalls &&
			plain.BytesRead == fileSize
	}, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
