package prefetch

import "repro/internal/pfs"

// This file implements the prefetcher zoo: a registry of competing
// predictors with per-stream accuracy bookkeeping, and a HybridPredictor
// that forwards each stream's read-ahead to whichever registered source
// is currently predicting that stream best. The design follows the
// multi-prefetcher zoos of hardware L2 prefetchers: every source makes a
// shadow prediction on every read (cheap, no I/O), reality grades the
// shadows, and only the best-graded source gets to spend real prefetch
// bandwidth.
//
// Determinism: all state is integer counters and fixed-size rings keyed
// by registration index; selection is a pure function of those counters
// with index-order tie-breaking, and nothing ever iterates a map. Two
// runs at the same seed therefore select identically at every read.

// SourceStats tallies one predictor's record, per stream or in total.
// Predicted/Correct grade the source's shadow predictions (its guess of
// the next read, made on every read whether or not it was selected);
// Issued/Consumed/Wasted/Unread account the real buffers spent on its
// advice while it was the selected source.
type SourceStats struct {
	Predicted int64 // shadow predictions scored against later reads
	Correct   int64 // shadow predictions a later read landed on
	Issued    int64 // prefetch buffers issued on this source's advice
	Consumed  int64 // issued buffers a read consumed (hit or waited hit)
	Wasted    int64 // issued buffers freed unused at close
	Unread    int64 // issued buffers still in flight at close
}

// Accuracy is Correct over Predicted (0 with no history).
func (s SourceStats) Accuracy() float64 {
	if s.Predicted == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Predicted)
}

// add folds o into s.
func (s *SourceStats) add(o SourceStats) {
	s.Predicted += o.Predicted
	s.Correct += o.Correct
	s.Issued += o.Issued
	s.Consumed += o.Consumed
	s.Wasted += o.Wasted
	s.Unread += o.Unread
}

// shadowCap bounds how many outstanding shadow predictions per source per
// stream are held for grading. One prediction is made per read, and a
// correct one is normally confirmed by the very next read, so a small
// ring suffices; an overwritten unconfirmed slot simply stays counted in
// Predicted and not in Correct — exactly the miss it was.
const shadowCap = 4

// shadowRing holds one source's recent predicted offsets for one stream.
type shadowRing struct {
	off  [shadowCap]int64
	live [shadowCap]bool
	next int
}

func (r *shadowRing) insert(off int64) {
	r.off[r.next] = off
	r.live[r.next] = true
	r.next = (r.next + 1) % shadowCap
}

// take reports whether off matches a live prediction, consuming it.
func (r *shadowRing) take(off int64) bool {
	for i := range r.off {
		if r.live[i] && r.off[i] == off {
			r.live[i] = false
			return true
		}
	}
	return false
}

// regStream is the registry's per-open-file state.
type regStream struct {
	stats []SourceStats // indexed by registration order
	rings []shadowRing
}

// Registry tracks a fixed set of predictors and their per-stream
// accuracy. Register every source before the first read; the zero-value
// Registry is unusable (use NewRegistry).
type Registry struct {
	names   []string
	srcs    []Predictor
	streams map[*pfs.File]*regStream
	totals  []SourceStats // folded from streams as they close
	scratch []Span        // reused for shadow predictions
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{streams: make(map[*pfs.File]*regStream)}
}

// Register adds a named source. Registration order is significant: it is
// the selection tie-breaker and the index space of Stats and Totals.
func (r *Registry) Register(name string, p Predictor) {
	if name == "" || p == nil {
		panic("prefetch: registry source needs a name and a predictor")
	}
	r.names = append(r.names, name)
	r.srcs = append(r.srcs, p)
	r.totals = append(r.totals, SourceStats{})
}

// Names returns the registered source names in registration order.
func (r *Registry) Names() []string { return r.names }

// Stats returns a snapshot of f's per-source tallies (nil if the stream
// has no state yet), indexed like Names.
func (r *Registry) Stats(f *pfs.File) []SourceStats {
	st, ok := r.streams[f]
	if !ok {
		return nil
	}
	out := make([]SourceStats, len(st.stats))
	copy(out, st.stats)
	return out
}

// Totals returns the per-source tallies folded from closed streams,
// indexed like Names. Call after the streams have closed; live streams
// are not included (summing them would mean iterating a map, and the
// fold at close already covers every stream a finished run had).
func (r *Registry) Totals() []SourceStats {
	out := make([]SourceStats, len(r.totals))
	copy(out, r.totals)
	return out
}

// stream returns f's state, creating it on first touch.
func (r *Registry) stream(f *pfs.File) *regStream {
	st, ok := r.streams[f]
	if !ok {
		st = &regStream{
			stats: make([]SourceStats, len(r.srcs)),
			rings: make([]shadowRing, len(r.srcs)),
		}
		r.streams[f] = st
	}
	return st
}

// observe grades every source's outstanding shadow predictions against
// the read that actually happened, trains the sources, and has each lay
// down its next shadow prediction (depth 1: the accuracy race is over
// "what will the very next read be").
func (r *Registry) observe(f *pfs.File, off, n int64) {
	st := r.stream(f)
	for i := range r.srcs {
		if st.rings[i].take(off) {
			st.stats[i].Correct++
		}
	}
	for _, src := range r.srcs {
		src.Observe(f, off, n)
	}
	for i, src := range r.srcs {
		r.scratch = src.Predict(f, off, n, 1, r.scratch[:0])
		if len(r.scratch) > 0 {
			st.stats[i].Predicted++
			st.rings[i].insert(r.scratch[0].Off)
		}
	}
}

// selected returns the index of the stream's current best source: the
// highest shadow accuracy among sources with at least minSamples graded
// predictions, ties broken by lowest registration index. With no
// eligible source yet (cold stream) it returns 0, so the first
// registered source is the warm-up default.
func (r *Registry) selected(f *pfs.File, minSamples int64) int {
	st, ok := r.streams[f]
	if !ok {
		return 0
	}
	best, bestAcc := -1, -1.0
	for i := range st.stats {
		if st.stats[i].Predicted < minSamples {
			continue
		}
		if acc := st.stats[i].Accuracy(); acc > bestAcc {
			best, bestAcc = i, acc
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// forget folds f's tallies into the totals and drops all per-stream
// state, the registry's and every source's.
func (r *Registry) forget(f *pfs.File) {
	if st, ok := r.streams[f]; ok {
		for i := range st.stats {
			r.totals[i].add(st.stats[i])
		}
		delete(r.streams, f)
	}
	for _, src := range r.srcs {
		src.Forget(f)
	}
}

// note records a real-buffer outcome against source src of stream f.
// Outcomes arriving for an already-closed stream (close-time accounting
// runs before forget, so only a stale caller could do this) fold straight
// into the totals.
func (r *Registry) note(f *pfs.File, src int, fn func(*SourceStats)) {
	if src < 0 || src >= len(r.totals) {
		return
	}
	if st, ok := r.streams[f]; ok {
		fn(&st.stats[src])
		return
	}
	fn(&r.totals[src])
}

// HybridPredictor serves each stream with its currently most-accurate
// registered source. It implements Predictor, so it drops into
// Config.Predictor like any fixed policy, and the selection feedback loop
// (shadow grading in Observe, argmax in Predict) costs no extra I/O.
type HybridPredictor struct {
	// MinSamples is how many graded shadow predictions a source needs
	// before its accuracy can win the stream; below it the first
	// registered source serves. NewHybrid defaults it to 4.
	MinSamples int64

	reg *Registry
}

// NewHybrid wraps a registry (which must have at least one source).
func NewHybrid(reg *Registry) *HybridPredictor {
	if len(reg.srcs) == 0 {
		panic("prefetch: hybrid needs at least one registered source")
	}
	return &HybridPredictor{MinSamples: 4, reg: reg}
}

// NewDefaultHybrid builds the standard zoo: the prototype's mode policy
// as the warm-up default, plus sequential and stride detectors racing it.
func NewDefaultHybrid() *HybridPredictor {
	reg := NewRegistry()
	reg.Register("mode", ModePredictor{})
	reg.Register("sequential", SequentialPredictor{})
	reg.Register("stride", NewStridePredictor(2))
	return NewHybrid(reg)
}

// Registry exposes the zoo's accuracy book.
func (h *HybridPredictor) Registry() *Registry { return h.reg }

// Observe grades and trains every source.
func (h *HybridPredictor) Observe(f *pfs.File, off, n int64) { h.reg.observe(f, off, n) }

// Predict forwards to the stream's selected source.
func (h *HybridPredictor) Predict(f *pfs.File, off, n int64, depth int, dst []Span) []Span {
	return h.reg.srcs[h.reg.selected(f, h.MinSamples)].Predict(f, off, n, depth, dst)
}

// Forget drops the stream everywhere.
func (h *HybridPredictor) Forget(f *pfs.File) { h.reg.forget(f) }

// The tracker hooks below let the Prefetcher attribute real buffer
// outcomes to the source whose advice issued them.

func (h *HybridPredictor) selectedSource(f *pfs.File) int {
	return h.reg.selected(f, h.MinSamples)
}
func (h *HybridPredictor) noteIssued(f *pfs.File, src int) {
	h.reg.note(f, src, func(s *SourceStats) { s.Issued++ })
}
func (h *HybridPredictor) noteConsumed(f *pfs.File, src int) {
	h.reg.note(f, src, func(s *SourceStats) { s.Consumed++ })
}
func (h *HybridPredictor) noteWasted(f *pfs.File, src int) {
	h.reg.note(f, src, func(s *SourceStats) { s.Wasted++ })
}
func (h *HybridPredictor) noteUnread(f *pfs.File, src int) {
	h.reg.note(f, src, func(s *SourceStats) { s.Unread++ })
}

// tracker is what a Predictor additionally implements to receive
// buffer-outcome attribution from the Prefetcher. HybridPredictor is the
// in-tree implementation; the assertion is checked once in New.
type tracker interface {
	selectedSource(f *pfs.File) int
	noteIssued(f *pfs.File, src int)
	noteConsumed(f *pfs.File, src int)
	noteWasted(f *pfs.File, src int)
	noteUnread(f *pfs.File, src int)
}

var _ tracker = (*HybridPredictor)(nil)
var _ Predictor = (*HybridPredictor)(nil)

// NewPolicy resolves a policy name to a predictor. The empty name is the
// prototype's default (mode). Policies lists the valid names.
func NewPolicy(name string) (Predictor, error) {
	switch name {
	case "", "mode":
		return ModePredictor{}, nil
	case "sequential":
		return SequentialPredictor{}, nil
	case "stride":
		return NewStridePredictor(2), nil
	case "hybrid":
		return NewDefaultHybrid(), nil
	}
	return nil, errUnknownPolicy(name)
}

// Policies returns every selectable policy name, in tournament order.
func Policies() []string { return []string{"mode", "sequential", "stride", "hybrid"} }

type errUnknownPolicy string

func (e errUnknownPolicy) Error() string {
	return "prefetch: unknown policy " + string(e) + ` (valid: "mode", "sequential", "stride", "hybrid")`
}
