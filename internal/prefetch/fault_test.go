package prefetch_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// TestFailedPrefetchFallsBack arms fault injection exactly while a
// prefetch is in flight: the speculative read fails, but the user read it
// was meant to serve must succeed via the direct Fast Path.
func TestFailedPrefetchFallsBack(t *testing.T) {
	mcfg := smallMachine()
	m := machine.Build(mcfg)
	if err := m.FS.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	pf := prefetch.New(m.K, prefetch.DefaultConfig())
	setFaults := func(rate float64) {
		for _, a := range m.Arrays {
			for i, d := range a.Members() {
				d.InjectFaults(rate, int64(i))
			}
		}
	}
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		pf.Attach(f)
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Errorf("first read: %v", err)
			return
		}
		// The prefetch for the second record is now queued; make every
		// disk request fail while it runs, then heal the disks.
		setFaults(1)
		p.Sleep(sim.Second)
		setFaults(0)
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Errorf("read after failed prefetch: %v", err)
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if pf.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", pf.Fallbacks)
	}
	// The fallback consumed the buffer; it must not count as a hit.
	if pf.Hits != 0 {
		t.Fatalf("Hits = %d; a failed prefetch is not a hit", pf.Hits)
	}
}
