package prefetch_test

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// TestFailedPrefetchRetires arms fault injection exactly while a
// prefetch is in flight: the speculative read fails, its buffer slot is
// reclaimed immediately (not parked until a read happens to match it),
// and the user read it was meant to serve succeeds as a plain miss via
// the direct Fast Path.
func TestFailedPrefetchRetires(t *testing.T) {
	mcfg := smallMachine()
	m := machine.Build(mcfg)
	if err := m.FS.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	pf := prefetch.New(m.K, prefetch.DefaultConfig())
	setFaults := func(rate float64) {
		for _, a := range m.Arrays {
			for i, d := range a.Members() {
				d.InjectFaults(rate, int64(i))
			}
		}
	}
	var outstandingAfterFail int
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		pf.Attach(f)
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Errorf("first read: %v", err)
			return
		}
		// The prefetch for the second record is now queued; make every
		// disk request fail while it runs, then heal the disks.
		setFaults(1)
		p.Sleep(sim.Second)
		outstandingAfterFail = pf.Outstanding(f)
		setFaults(0)
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Errorf("read after failed prefetch: %v", err)
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if outstandingAfterFail != 0 {
		t.Fatalf("failed prefetch still holds %d buffer slot(s)", outstandingAfterFail)
	}
	if pf.Retired != 1 {
		t.Fatalf("Retired = %d, want 1", pf.Retired)
	}
	// The slot was reclaimed before the read arrived, so the read is an
	// ordinary miss — and certainly not a hit.
	if pf.Misses != 2 || pf.Hits != 0 || pf.Fallbacks != 0 {
		t.Fatalf("Misses/Hits/Fallbacks = %d/%d/%d, want 2/0/0", pf.Misses, pf.Hits, pf.Fallbacks)
	}
}

// TestInFlightPrefetchFailureFallsBack covers the race the retirement
// path cannot shortcut: the reader is already waiting on an in-flight
// prefetch when its stripe requests fail. The reader must fall back to a
// direct read — which succeeds, because the faults are transient and the
// re-read of a transiently faulted sector recovers by construction.
func TestInFlightPrefetchFailureFallsBack(t *testing.T) {
	mcfg := smallMachine()
	m := machine.Build(mcfg)
	if err := m.FS.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	pf := prefetch.New(m.K, prefetch.DefaultConfig())
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		pf.Attach(f)
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Errorf("first read: %v", err)
			return
		}
		// Every fresh disk request now soft-fails; re-reads succeed. The
		// just-issued prefetch will fail mid-flight while the next read
		// waits on it.
		for _, a := range m.Arrays {
			for i, d := range a.Members() {
				d.InjectFaultProfile(disk.FaultProfile{Rate: 1, TransientFrac: 1, Seed: int64(i)})
			}
		}
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Errorf("read over failed in-flight prefetch: %v", err)
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if pf.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", pf.Fallbacks)
	}
	if pf.Hits != 0 {
		t.Fatalf("Hits = %d; a failed prefetch is not a hit", pf.Hits)
	}
	if pf.BytesDirect != 2*(64<<10) {
		t.Fatalf("BytesDirect = %d, want both reads delivered directly", pf.BytesDirect)
	}
}

// TestPrefetchRetryBudgetExhaustedLeaksNoSlot: a prefetch whose stripe
// requests exhaust the retry budget (permanent faults never heal) must
// give up, retire its buffer slot, and leave the file readable once the
// disks recover.
func TestPrefetchRetryBudgetExhaustedLeaksNoSlot(t *testing.T) {
	mcfg := smallMachine()
	mcfg.PFS.Retry = pfs.RetryPolicy{MaxRetries: 1, Backoff: sim.Millisecond, Seed: 1}
	m := machine.Build(mcfg)
	if err := m.FS.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	pf := prefetch.New(m.K, prefetch.DefaultConfig())
	setProfile := func(p disk.FaultProfile) {
		for _, a := range m.Arrays {
			for i, d := range a.Members() {
				p.Seed = int64(i)
				d.InjectFaultProfile(p)
			}
		}
	}
	var outstandingAfterFail int
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		pf.Attach(f)
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Errorf("first read: %v", err)
			return
		}
		// The queued prefetch hits disks that fail every request the same
		// way forever; its one retry cannot help.
		setProfile(disk.FaultProfile{Rate: 1, PermanentFrac: 1})
		p.Sleep(sim.Second)
		outstandingAfterFail = pf.Outstanding(f)
		setProfile(disk.FaultProfile{})
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Errorf("read after exhausted prefetch: %v", err)
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if outstandingAfterFail != 0 {
		t.Fatalf("exhausted prefetch still holds %d buffer slot(s)", outstandingAfterFail)
	}
	if m.FS.GiveUps == 0 {
		t.Error("prefetch failure did not consume the retry budget")
	}
	if pf.Retired != 1 {
		t.Errorf("Retired = %d, want 1", pf.Retired)
	}
	if pf.Fallbacks != 0 || pf.Hits != 0 {
		t.Errorf("Fallbacks/Hits = %d/%d, want 0/0 (slot reclaimed before the read)", pf.Fallbacks, pf.Hits)
	}
}

// TestPrefetchIntoCrashRetiresSlot: an in-flight prefetch aimed at an I/O
// node that crashes before replying must fail deterministically
// (ErrUnavailable once the node's restart is past the down deadline) and
// retire its buffer slot; the demand read for the same record succeeds
// once the node is back.
func TestPrefetchIntoCrashRetiresSlot(t *testing.T) {
	mcfg := smallMachine()
	mcfg.PFS.Retry = pfs.RetryPolicy{
		MaxRetries:   4,
		Timeout:      100 * sim.Millisecond,
		Backoff:      sim.Millisecond,
		BackoffMax:   10 * sim.Millisecond,
		Seed:         1,
		DownPoll:     5 * sim.Millisecond,
		DownDeadline: 60 * sim.Millisecond,
	}
	m := machine.Build(mcfg)
	if err := m.FS.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	pf := prefetch.New(m.K, prefetch.DefaultConfig())
	var outstandingAfterCrash int
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		pf.Attach(f)
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Errorf("first read: %v", err)
			return
		}
		// The prefetch for record 2 targets the second stripe-group member
		// (64 KB stripe unit, one record per server). Kill that node for
		// 200 ms — far past the 60 ms down deadline, so the prefetch cannot
		// wait it out.
		srv := m.Servers[1]
		m.Mesh.SetDown(srv.Node(), true)
		srv.Crash(p.Now() + 200*sim.Millisecond)
		m.K.After(200*sim.Millisecond, func() {
			m.Mesh.SetDown(srv.Node(), false)
			srv.Restart()
		})
		p.Sleep(300 * sim.Millisecond)
		outstandingAfterCrash = pf.Outstanding(f)
		// The node is back: the demand read for the lost record succeeds.
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Errorf("read after crash: %v", err)
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if outstandingAfterCrash != 0 {
		t.Fatalf("crashed prefetch still holds %d buffer slot(s)", outstandingAfterCrash)
	}
	if pf.Retired != 1 {
		t.Fatalf("Retired = %d, want 1", pf.Retired)
	}
	if m.FS.Unavailable == 0 {
		t.Fatal("crash did not surface as ErrUnavailable on the retry layer")
	}
	if m.FS.GiveUps != 0 {
		t.Fatalf("GiveUps = %d; unavailability must not count as budget exhaustion", m.FS.GiveUps)
	}
}
