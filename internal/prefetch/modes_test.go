package prefetch_test

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// collectiveRun drives parties nodes through a shared file in a
// collective mode with a compute delay, prefetching enabled.
func collectiveRun(t *testing.T, mode pfs.Mode, parties int, fileSize, req int64,
	delay sim.Time) (*prefetch.Prefetcher, int64) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = parties
	cfg.IONodes = parties
	cfg.UFS.Fragmentation = 0
	m := machine.Build(cfg)
	if err := m.FS.Create("f", fileSize); err != nil {
		t.Fatal(err)
	}
	pf := prefetch.New(m.K, prefetch.DefaultConfig())
	group := pfs.NewOpenGroup(m.K, parties)
	var total int64
	for i := 0; i < parties; i++ {
		node := i
		m.K.Go(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			f, err := m.FS.Open("f", node, mode, group)
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			pf.Attach(f)
			for {
				n, err := f.Read(p, req)
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				total += n
				p.Sleep(delay)
			}
		})
	}
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	return pf, total
}

func TestSyncModePrefetchHits(t *testing.T) {
	// The round-total heuristic: uniform sizes round after round make
	// every prediction after the first land.
	pf, total := collectiveRun(t, pfs.MSync, 4, 4<<20, 64<<10, 80*sim.Millisecond)
	if total != 4<<20 {
		t.Fatalf("read %d, want full file", total)
	}
	if pf.HitRate() < 0.8 {
		t.Fatalf("M_SYNC hit rate %.2f, want ≥ 0.8", pf.HitRate())
	}
}

func TestGlobalModePrefetchAtRoot(t *testing.T) {
	pf, total := collectiveRun(t, pfs.MGlobal, 4, 1<<20, 64<<10, 80*sim.Millisecond)
	// Every party sees the whole file.
	if total != 4<<20 {
		t.Fatalf("delivered %d, want 4x file size", total)
	}
	// Only the broadcast root performs I/O, so only it prefetches: 16
	// records, first misses, 15 hit.
	if pf.Misses != 1 {
		t.Fatalf("Misses = %d, want 1 (root's first record)", pf.Misses)
	}
	if pf.Hits+pf.HitsInWait != 15 {
		t.Fatalf("hits = %d, want 15", pf.Hits+pf.HitsInWait)
	}
}

func TestSharedPointerModesStayIdle(t *testing.T) {
	for _, mode := range []pfs.Mode{pfs.MUnix, pfs.MLog} {
		mcfg := smallMachine()
		m := machine.Build(mcfg)
		if err := m.FS.Create("f", 512<<10); err != nil {
			t.Fatal(err)
		}
		pf := prefetch.New(m.K, prefetch.DefaultConfig())
		m.K.Go("reader", func(p *sim.Proc) {
			f, err := m.FS.Open("f", 0, mode, nil)
			if err != nil {
				t.Error(err)
				return
			}
			pf.Attach(f)
			for {
				if _, err := f.Read(p, 64<<10); err == io.EOF {
					return
				} else if err != nil {
					t.Error(err)
					return
				}
			}
		})
		if err := m.K.Run(); err != nil {
			t.Fatal(err)
		}
		if pf.Issued != 0 {
			t.Fatalf("%v issued %d prefetches; unordered shared pointer has no prediction", mode, pf.Issued)
		}
	}
}

func TestSyncPredictionNeedsARound(t *testing.T) {
	// Before any collective round completes there is no round total, so
	// the first read must not predict from stale state.
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 2
	cfg.IONodes = 2
	m := machine.Build(cfg)
	if err := m.FS.Create("f", 256<<10); err != nil {
		t.Fatal(err)
	}
	group := pfs.NewOpenGroup(m.K, 2)
	pf := prefetch.New(m.K, prefetch.DefaultConfig())
	for i := 0; i < 2; i++ {
		node := i
		m.K.Go(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			f, _ := m.FS.Open("f", node, pfs.MSync, group)
			pf.Attach(f)
			if _, err := f.Read(p, 64<<10); err != nil {
				t.Error(err)
			}
		})
	}
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	// One round of two 64 KB reads: each node can predict its next-round
	// region from the just-computed total.
	if pf.Issued != 2 {
		t.Fatalf("Issued = %d, want 2 (one per node after the round)", pf.Issued)
	}
}
