// Package prefetch implements the paper's prefetching prototype: the
// client-side modification to the PFS that issues an asynchronous
// read-ahead after every user read.
//
// Mechanics, following Section 3 of the paper:
//
//   - prefetches ride the existing asynchronous-read machinery (the ART
//     and its FIFO active list) rather than a new I/O path;
//   - a prefetch is issued by the user thread after each read, for the
//     block the same thread is anticipated to read next (one block ahead
//     in the prototype; Depth generalizes this for ablation);
//   - completed prefetches land in a per-file prefetch buffer list in
//     compute-node memory, tagged with file offset and size;
//   - a later read that matches a buffer is a hit: it pays a memory copy
//     from the prefetch buffer to the user buffer (Fast Path would have
//     landed the data in the user buffer directly — this copy is the
//     overhead the paper measures at zero compute delay);
//   - a read that matches a still-in-flight prefetch waits for it: the
//     paper's "even if most of the read is already done, the benefits can
//     be tremendous";
//   - the file pointer is never moved by prefetching, and all buffers are
//     freed when the file is closed.
//
// Beyond the prototype, the package carries the prefetcher zoo (a
// registry of competing predictors with per-stream accuracy grading and
// a hybrid that races them; see registry.go) and an online controller
// that retunes Depth and MaxBuffers mid-run from the observed hit rate
// and direct-read service time (controller.go).
package prefetch

import (
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config tunes the prototype. The paper's configuration is the default;
// the extra knobs exist for the ablation benchmarks.
type Config struct {
	Depth         int        // records prefetched ahead (paper: 1)
	IssueOverhead sim.Time   // user-thread CPU to set up one prefetch request
	MemBandwidth  float64    // compute-node copy bandwidth for the hit path
	MaxBuffers    int        // retained + in-flight buffers per open file
	FreeCopy      bool       // ablation: make the hit-path copy free
	Trace         *trace.Log // optional timeline of prefetch decisions
	// Predictor chooses what to read ahead; nil selects the predictor
	// Policy names — and with Policy also empty, the prototype's
	// mode-derived next-record policy (ModePredictor).
	Predictor Predictor `json:"-"`
	// Policy selects a predictor by name when Predictor is nil: "mode",
	// "sequential", "stride", or "hybrid" (see NewPolicy). A name
	// survives a JSON round-trip, which an interface value cannot.
	Policy string
	// Controller, when its Interval is non-zero, arms the online
	// parameter controller that retunes Depth and MaxBuffers mid-run.
	Controller ControllerConfig
	// Adaptive throttles the prototype: read-ahead is issued only when
	// the application's observed compute window (the gap between its
	// reads) is long enough for a prefetch to make headway. Removes the
	// paper's zero-overlap overhead at the cost of the first few gaps'
	// worth of training.
	Adaptive bool
}

// DefaultConfig returns the paper's prototype parameters on i860-class
// hardware.
func DefaultConfig() Config {
	return Config{
		Depth:         1,
		IssueOverhead: 250 * sim.Microsecond,
		MemBandwidth:  45e6,
		MaxBuffers:    16,
	}
}

// entry is one prefetch buffer structure on a file's prefetch list.
// Entries are pooled: a consumed or retired entry returns to the free
// list with its Async request attached, so the steady prefetch stream
// reuses one entry + request + signal per buffer slot instead of
// allocating three objects per issue.
type entry struct {
	off, n int64
	req    *pfs.Async
	pf     *Prefetcher
	f      *pfs.File
	src    int // registry source whose advice issued this buffer; -1 untracked
}

// entryFillDone runs at the firing instant of an entry's prefetch
// request: a failure reclaims the buffer slot (see retire). The success
// path is a no-op — and must stay one, because a consumed entry may
// already be back in the pool when a successful fill's callback runs.
func entryFillDone(v any, err error) {
	e := v.(*entry)
	if err != nil {
		e.pf.retire(e.f, e)
	}
}

// Prefetcher implements pfs.PrefetchService. One Prefetcher can serve many
// open files; state is per open instance, as in the prototype (the list
// hangs off the file's internal structure).
type Prefetcher struct {
	k     *sim.Kernel
	cfg   Config
	lists map[*pfs.File][]*entry
	adapt map[*pfs.File]*adaptState
	free  []*entry // entry pool; each keeps its Async for reuse
	spans []Span   // prediction scratch, reused across issues
	track tracker  // non-nil when the predictor wants outcome attribution
	ctl   *controller

	// Measurements.
	Issued        int64           // prefetch requests queued on the ART
	Hits          int64           // reads served entirely from a completed buffer
	HitsInWait    int64           // reads that waited on an in-flight prefetch
	Misses        int64           // reads with no matching buffer
	Wasted        int64           // completed buffers freed unused at close
	UnreadAtClose int64           // buffers still in flight when their file closed
	Skipped       int64           // prefetches suppressed by the buffer cap
	Retired       int64           // failed prefetches whose buffer slot was reclaimed
	Fallbacks     int64           // failed prefetches retried as direct reads
	Throttled     int64           // issues suppressed by the adaptive policy
	Retunes       int64           // controller decisions that moved Depth or MaxBuffers
	BytesCopied   int64           // bytes delivered from prefetch buffers (hit-path copies)
	BytesDirect   int64           // bytes delivered by direct reads (misses + fallbacks)
	WaitTime      stats.Histogram // time spent waiting on in-flight prefetches, seconds
}

// adaptState is the adaptive policy's per-file picture of the
// application: exponential averages of the compute gap between reads and
// of the direct read service time. The two averages sample at different
// rates (every read has a gap, only misses have a direct service time),
// so each keeps its own count; seen distinguishes "no read has finished
// yet" from a read that finished at time zero.
type adaptState struct {
	seen           bool     // a read has completed; lastEnd is meaningful
	lastEnd        sim.Time // completion time of the previous read
	gapEWMA        float64  // seconds
	serviceEWMA    float64  // seconds
	gapSamples     int
	serviceSamples int
}

const adaptAlpha = 0.3 // EWMA weight for new observations

var _ pfs.PrefetchService = (*Prefetcher)(nil)

// New returns a Prefetcher on kernel k. Depth and MaxBuffers must be
// positive; MemBandwidth must be positive unless FreeCopy is set; Policy,
// if set, must name a known predictor.
func New(k *sim.Kernel, cfg Config) *Prefetcher {
	if cfg.Depth <= 0 {
		panic("prefetch: depth must be positive")
	}
	if cfg.MaxBuffers <= 0 {
		panic("prefetch: buffer cap must be positive")
	}
	if !cfg.FreeCopy && cfg.MemBandwidth <= 0 {
		panic("prefetch: memory bandwidth must be positive")
	}
	if cfg.Predictor == nil {
		pred, err := NewPolicy(cfg.Policy)
		if err != nil {
			panic(err.Error())
		}
		cfg.Predictor = pred
	}
	pf := &Prefetcher{
		k:     k,
		cfg:   cfg,
		lists: make(map[*pfs.File][]*entry),
		adapt: make(map[*pfs.File]*adaptState),
	}
	pf.track, _ = cfg.Predictor.(tracker)
	if cfg.Controller.Enabled() {
		pf.ctl = &controller{cfg: cfg.Controller.withDefaults()}
	}
	return pf
}

// Attach installs the prefetcher on an open file. Shorthand for
// f.SetPrefetcher(pf).
func (pf *Prefetcher) Attach(f *pfs.File) { f.SetPrefetcher(pf) }

// ServeRead satisfies the user read at [off, off+n) per the prototype's
// policy, then issues read-ahead for the anticipated next record(s).
func (pf *Prefetcher) ServeRead(p *sim.Proc, f *pfs.File, off, n int64) error {
	var st *adaptState
	if pf.cfg.Adaptive {
		var ok bool
		if st, ok = pf.adapt[f]; !ok {
			st = &adaptState{}
			pf.adapt[f] = st
		}
		if st.seen {
			st.gapEWMA = ewma(st.gapEWMA, (p.Now() - st.lastEnd).Seconds(), st.gapSamples)
			st.gapSamples++
		}
	}
	var (
		err       error
		hitServed bool     // bytes came out of a prefetch buffer
		direct    bool     // bytes came from a measured direct read
		service   sim.Time // the direct read's service time
	)
	if e, _ := pf.lookup(f, off, n); e != nil {
		waited := false
		if !e.req.Done.Fired() {
			// Miss-when-presented but mostly done: wait out the remainder.
			waited = true
			waitFrom := p.Now()
			e.req.Done.Wait(p)
			pf.WaitTime.ObserveTime(p.Now() - waitFrom)
		}
		err = e.req.Done.Err()
		pf.removeEntry(f, e)
		switch {
		case err != nil:
			// The prefetch failed at the disk; the user read must not
			// inherit a speculative request's error. Fall back to the
			// normal Fast Path read.
			pf.Fallbacks++
			ioStart := p.Now()
			err = f.BlockingIO(p, off, n)
			if err == nil {
				f.RecordDelivery(off, n)
				pf.BytesDirect += n
				direct, service = true, p.Now()-ioStart
			}
		case waited:
			pf.HitsInWait++
			pf.emit(p, trace.PrefetchWait, f, off, n)
		default:
			pf.Hits++
			pf.emit(p, trace.PrefetchHit, f, off, n)
		}
		if err == nil && e.req.Done.Err() == nil {
			// The user's bytes come out of the consumed buffer, from its
			// start — the range recorded is the buffer's, not the
			// request's, so a lookup that matched the wrong buffer is
			// visible to the data-correctness oracle.
			f.RecordDelivery(e.off, n)
			pf.BytesCopied += n
			hitServed = true
			if pf.track != nil {
				pf.track.noteConsumed(f, e.src)
			}
			if !pf.cfg.FreeCopy {
				// Prefetch buffer -> user buffer copy; Fast Path avoids this.
				p.Sleep(sim.Time(float64(n) / pf.cfg.MemBandwidth * float64(sim.Second)))
			}
		}
		// The entry is consumed: off the list, outcome read. A failed
		// fill's retirement callback has necessarily run by now (it was
		// scheduled at the firing instant), so recycling cannot race it.
		pf.putEntry(e)
	} else {
		pf.Misses++
		pf.emit(p, trace.PrefetchMiss, f, off, n)
		ioStart := p.Now()
		err = f.BlockingIO(p, off, n)
		if err == nil {
			f.RecordDelivery(off, n)
			pf.BytesDirect += n
			direct, service = true, p.Now()-ioStart
			if st != nil {
				st.serviceEWMA = ewma(st.serviceEWMA, service.Seconds(), st.serviceSamples)
				st.serviceSamples++
			}
		}
	}
	if err != nil {
		return err
	}
	pf.cfg.Predictor.Observe(f, off, n)
	if st == nil || st.allowIssue() {
		pf.issue(p, f, off, n)
	} else {
		pf.Throttled++
	}
	if st != nil {
		st.lastEnd = p.Now()
		st.seen = true
	}
	if pf.ctl != nil {
		pf.ctl.observe(hitServed, direct, service)
		if nd, nb, changed := pf.ctl.window(pf.cfg.Depth, pf.cfg.MaxBuffers); changed {
			// The retuned knobs take effect at the next read's issue; the
			// timeline records the decision (Off = new depth, N = new cap).
			pf.cfg.Depth, pf.cfg.MaxBuffers = nd, nb
			pf.Retunes++
			pf.emit(p, trace.PrefetchRetune, f, int64(nd), int64(nb))
		}
	}
	return nil
}

// allowIssue decides whether read-ahead is worth it: optimistic until the
// state has settled, then only when the compute gap gives the prefetch a
// real head start.
func (st *adaptState) allowIssue() bool {
	if st.gapSamples < 2 || st.serviceSamples == 0 {
		return true
	}
	return st.gapEWMA >= 0.25*st.serviceEWMA
}

// ewma folds a new observation into an exponential average (the first
// observation seeds it). Seeding is decided by the sample count alone: a
// legitimately observed zero (back-to-back reads have a zero compute
// gap) is an average like any other, not an unseeded state.
func ewma(cur, obs float64, samples int) float64 {
	if samples == 0 {
		return obs
	}
	return (1-adaptAlpha)*cur + adaptAlpha*obs
}

// OnClose frees the file's prefetch buffers. A completed buffer still on
// the list is an unconsumed successful fill (a failed fill was retired —
// removed and recycled — at its firing instant), so its outcome is fully
// determined and the entry recycles into the pool as Wasted. An in-flight
// buffer must NOT be recycled: its Async has not fired, and the pool
// could hand the entry to a new issue while the old request still owns
// its signal. Those entries are counted as UnreadAtClose and left to the
// garbage collector; their pending entryFillDone no-ops either way once
// the list is gone (retire's removeEntry finds nothing).
func (pf *Prefetcher) OnClose(f *pfs.File) {
	for _, e := range pf.lists[f] {
		if e.req.Done.Fired() {
			pf.Wasted++
			if pf.track != nil {
				pf.track.noteWasted(f, e.src)
			}
			pf.putEntry(e)
		} else {
			pf.UnreadAtClose++
			if pf.track != nil {
				pf.track.noteUnread(f, e.src)
			}
		}
	}
	delete(pf.lists, f)
	delete(pf.adapt, f)
	pf.cfg.Predictor.Forget(f)
}

func (pf *Prefetcher) getEntry() *entry {
	if n := len(pf.free); n > 0 {
		e := pf.free[n-1]
		pf.free[n-1] = nil
		pf.free = pf.free[:n-1]
		return e
	}
	return &entry{pf: pf}
}

// putEntry recycles a consumed or retired entry. Safe only once the
// entry is off its file's list and its request's outcome has been fully
// read; the request (and its signal) stay attached for IReadAtReusing.
func (pf *Prefetcher) putEntry(e *entry) {
	e.f = nil
	pf.free = append(pf.free, e)
}

// lookup finds a buffer whose region covers [off, off+n) starting exactly
// at off, the match rule of the prototype (buffers are tagged with the
// PFS file offset and size).
func (pf *Prefetcher) lookup(f *pfs.File, off, n int64) (*entry, int) {
	for i, e := range pf.lists[f] {
		if e.off == off && e.n >= n {
			return e, i
		}
	}
	return nil, -1
}

// removeEntry drops e from f's list by identity. A no-op when the entry
// is already gone — a failure retirement can race a reader that was
// waiting on the same entry, and whichever runs second must not disturb
// the list.
func (pf *Prefetcher) removeEntry(f *pfs.File, e *entry) bool {
	for i, cur := range pf.lists[f] {
		if cur == e {
			l := pf.lists[f]
			pf.lists[f] = append(l[:i], l[i+1:]...)
			return true
		}
	}
	return false
}

// retire reclaims the buffer slot of a prefetch whose stripe requests
// failed. Without this, a failed speculative read would pin a MaxBuffers
// slot until a read happened to match it (or close), quietly disabling
// read-ahead exactly when the I/O path is struggling.
func (pf *Prefetcher) retire(f *pfs.File, e *entry) {
	if pf.removeEntry(f, e) {
		pf.Retired++
		// Removal succeeded, so no reader holds this entry (a reader
		// removes it before doing anything that yields): recycle now.
		pf.putEntry(e)
	}
}

// issue queues read-ahead for the Depth spans the predictor expects this
// node to read next after [off, off+n). With the default ModePredictor
// the prediction is derived from the read request itself (offset, size,
// mode, rank), as in the prototype.
func (pf *Prefetcher) issue(p *sim.Proc, f *pfs.File, off, n int64) {
	src := -1
	if pf.track != nil {
		// The selection is a pure function of the registry's counters, so
		// this is the same source Predict forwards to below.
		src = pf.track.selectedSource(f)
	}
	pf.spans = pf.cfg.Predictor.Predict(f, off, n, pf.cfg.Depth, pf.spans[:0])
	for _, span := range pf.spans {
		if pf.covered(f, span.Off) {
			continue
		}
		if len(pf.lists[f]) >= pf.cfg.MaxBuffers {
			// The cap suppresses this span and every later one; count each
			// suppressed span so Skipped tallies lost read-ahead, not cap
			// encounters. Spans already covered are not losses and are
			// screened out above.
			pf.Skipped++
			continue
		}
		// The user thread pays the setup cost of posting the
		// asynchronous request.
		p.Sleep(pf.cfg.IssueOverhead)
		e := pf.getEntry()
		e.off, e.n, e.f, e.src = span.Off, span.N, f, src
		e.req = f.IReadAtReusing(e.req, span.Off, span.N)
		pf.lists[f] = append(pf.lists[f], e)
		e.req.Done.OnFireCall(entryFillDone, e)
		pf.Issued++
		if pf.track != nil {
			pf.track.noteIssued(f, src)
		}
		pf.emit(p, trace.PrefetchIssue, f, span.Off, span.N)
	}
}

// emit records a prefetch decision on the configured timeline.
func (pf *Prefetcher) emit(p *sim.Proc, kind trace.Kind, f *pfs.File, off, n int64) {
	if pf.cfg.Trace != nil {
		pf.cfg.Trace.Add(trace.Event{T: p.Now(), Kind: kind, Node: f.Node(), File: f.Name(), Off: off, N: n})
	}
}

// covered reports whether some buffer already starts at off.
func (pf *Prefetcher) covered(f *pfs.File, off int64) bool {
	for _, e := range pf.lists[f] {
		if e.off == off {
			return true
		}
	}
	return false
}

// Outstanding reports the number of buffers currently held for f.
func (pf *Prefetcher) Outstanding(f *pfs.File) int { return len(pf.lists[f]) }

// Zoo returns the predictor registry when the configured policy carries
// one (the hybrid), nil otherwise.
func (pf *Prefetcher) Zoo() *Registry {
	if h, ok := pf.cfg.Predictor.(interface{ Registry() *Registry }); ok {
		return h.Registry()
	}
	return nil
}

// Tuning reports the live Depth and MaxBuffers (the controller mutates
// them mid-run) and whether the controller is armed.
func (pf *Prefetcher) Tuning() (depth, bufs int, controlled bool) {
	return pf.cfg.Depth, pf.cfg.MaxBuffers, pf.ctl != nil
}

// ControllerMoves reports how many controller decisions moved Depth and
// how many moved MaxBuffers (both zero without the controller).
func (pf *Prefetcher) ControllerMoves() (depthMoves, bufMoves int64) {
	if pf.ctl == nil {
		return 0, 0
	}
	return pf.ctl.depthMoves, pf.ctl.bufMoves
}

// HitRate reports hits (including waited hits) over all served reads.
// Fallbacks are reads too: a read that matched a failed prefetch and was
// served by a direct re-read was not a hit, and omitting it would
// overstate the hit rate exactly when the I/O path is struggling.
func (pf *Prefetcher) HitRate() float64 {
	total := pf.Hits + pf.HitsInWait + pf.Misses + pf.Fallbacks
	if total == 0 {
		return 0
	}
	return float64(pf.Hits+pf.HitsInWait) / float64(total)
}
