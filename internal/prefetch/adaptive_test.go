package prefetch_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

func TestAdaptiveThrottlesAtZeroDelay(t *testing.T) {
	pcfg := prefetch.DefaultConfig()
	pcfg.Adaptive = true
	elapsed, pf, f := seqRun(t, smallMachine(), 2<<20, 64<<10, 0, &pcfg)
	if pf.Throttled == 0 {
		t.Fatal("adaptive policy never throttled on back-to-back reads")
	}
	if f.BytesRead != 2<<20 {
		t.Fatalf("throttling changed bytes read: %d", f.BytesRead)
	}
	// Throttled prefetching must track the plain run closely (within 3%).
	plain, _, _ := seqRun(t, smallMachine(), 2<<20, 64<<10, 0, nil)
	if ratio := elapsed.Seconds() / plain.Seconds(); ratio > 1.03 {
		t.Fatalf("adaptive run %.3fx of plain at zero delay, want ≤ 1.03x", ratio)
	}
}

func TestAdaptiveKeepsOverlapGains(t *testing.T) {
	delay := 150 * sim.Millisecond
	pcfg := prefetch.DefaultConfig()
	pcfg.Adaptive = true
	adaptive, pf, _ := seqRun(t, smallMachine(), 2<<20, 64<<10, delay, &pcfg)
	plain, _, _ := seqRun(t, smallMachine(), 2<<20, 64<<10, delay, nil)
	if adaptive >= plain {
		t.Fatalf("adaptive (%v) lost the overlap gain vs plain (%v)", adaptive, plain)
	}
	if pf.HitRate() < 0.8 {
		t.Fatalf("adaptive hit rate %.2f with a generous delay", pf.HitRate())
	}
	if pf.Throttled > 2 {
		t.Fatalf("adaptive throttled %d times despite a generous delay", pf.Throttled)
	}
}

func TestAdaptiveAdaptsToPhaseChange(t *testing.T) {
	// A program that computes for a while, then goes I/O-bound: the
	// policy should prefetch during the first phase and throttle in the
	// second.
	m := machine.Build(smallMachine())
	if err := m.FS.Create("f", 2<<21); err != nil {
		t.Fatal(err)
	}
	pcfg := prefetch.DefaultConfig()
	pcfg.Adaptive = true
	pf := prefetch.New(m.K, pcfg)
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		pf.Attach(f)
		const rec = 64 << 10
		for i := 0; i < 16; i++ { // balanced phase
			if _, err := f.Read(p, rec); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(100 * sim.Millisecond)
		}
		for i := 0; i < 16; i++ { // I/O-bound phase
			if _, err := f.Read(p, rec); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if pf.Hits+pf.HitsInWait < 12 {
		t.Fatalf("balanced phase earned only %d hits", pf.Hits+pf.HitsInWait)
	}
	if pf.Throttled < 8 {
		t.Fatalf("I/O-bound phase throttled only %d times", pf.Throttled)
	}
}
