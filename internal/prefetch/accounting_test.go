package prefetch

// White-box regression tests for five accounting bugs:
//
//  1. issue() charged Skipped once per cap encounter instead of once per
//     suppressed span, so the counter undercounted lost read-ahead
//     whenever Depth left more than one span beyond the cap;
//  2. ewma() treated a zero current average as unseeded and reseeded
//     from the observation, losing history for any quantity whose
//     legitimate average is zero (the compute gap of back-to-back
//     reads);
//  3. the adaptive state used lastEnd > 0 as "a read has completed" and
//     one shared sample counter for both averages, so the service EWMA's
//     weighting was driven by the gap count;
//  4. HitRate() omitted Fallbacks from the denominator, so a run that
//     fell back often reported a rosier rate than its reads saw;
//  5. OnClose() never recycled the entries still on a closed file's
//     list, leaking every close-time buffer from the pool — and it
//     counted an entry whose fill was still in flight as Wasted, the
//     same bucket as a completed-but-unread buffer.

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/sim"
)

func TestEwmaSeedsOnSampleCountOnly(t *testing.T) {
	if got := ewma(0, 0.4, 0); got != 0.4 {
		t.Fatalf("ewma(0, 0.4, 0) = %v, want seed 0.4", got)
	}
	// A zero average with history is a real average, not an unseeded
	// state: the next observation must blend, not reseed.
	if got, want := ewma(0, 0.4, 3), adaptAlpha*0.4; got != want {
		t.Fatalf("ewma(0, 0.4, 3) = %v, want blended %v", got, want)
	}
	// A zero observation must pull an established average down.
	if got, want := ewma(0.5, 0, 1), (1-adaptAlpha)*0.5; got != want {
		t.Fatalf("ewma(0.5, 0, 1) = %v, want %v", got, want)
	}
}

func TestAllowIssueGatesOnSplitCounters(t *testing.T) {
	// Optimistic until both averages have settled: two gaps and at least
	// one direct service observation.
	cases := []struct {
		st   adaptState
		want bool
	}{
		{adaptState{}, true},
		{adaptState{gapSamples: 1, serviceSamples: 1}, true},                                 // gap not settled
		{adaptState{gapSamples: 5, serviceSamples: 0, gapEWMA: 0.001, serviceEWMA: 1}, true}, // no service sample
		{adaptState{gapSamples: 2, serviceSamples: 1, gapEWMA: 0.001, serviceEWMA: 1}, false},
		{adaptState{gapSamples: 2, serviceSamples: 1, gapEWMA: 1, serviceEWMA: 1}, true},
	}
	for i, tc := range cases {
		if got := tc.st.allowIssue(); got != tc.want {
			t.Errorf("case %d: allowIssue() = %v, want %v (%+v)", i, got, tc.want, tc.st)
		}
	}
}

// TestAdaptSamplingDiscipline drives a real sequential run and checks the
// per-file state keeps the two averages' sample counts apart: every read
// after the first contributes one gap sample, and only direct (miss)
// reads contribute service samples.
func TestAdaptSamplingDiscipline(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 1
	cfg.IONodes = 4
	cfg.UFS.Fragmentation = 0
	m := machine.Build(cfg)
	const fileSize, rec = 1 << 20, 64 << 10 // 16 records
	if err := m.FS.Create("f", fileSize); err != nil {
		t.Fatal(err)
	}
	pcfg := DefaultConfig()
	pcfg.Adaptive = true
	pf := New(m.K, pcfg)
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		pf.Attach(f)
		for i := 0; i < fileSize/rec; i++ {
			if _, err := f.Read(p, rec); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(50 * sim.Millisecond)
		}
		st := pf.adapt[f]
		if st == nil {
			t.Error("no adaptive state for the open file")
			return
		}
		if !st.seen {
			t.Error("seen not set after sixteen completed reads")
		}
		if want := fileSize/rec - 1; st.gapSamples != want {
			t.Errorf("gapSamples = %d, want %d (one per read after the first)", st.gapSamples, want)
		}
		if st.serviceSamples != int(pf.Misses) {
			t.Errorf("serviceSamples = %d, want one per miss (%d)", st.serviceSamples, pf.Misses)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if pf.Misses == 0 {
		t.Fatal("run recorded no misses; the service-sample check proved nothing")
	}
}

// TestSkippedCountsEverySuppressedSpan: one read under Depth 8 and a
// 2-buffer cap predicts eight spans, issues two, and must charge Skipped
// for each of the six spans the cap suppressed — not once for the whole
// encounter.
func TestSkippedCountsEverySuppressedSpan(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 1
	cfg.IONodes = 4
	cfg.UFS.Fragmentation = 0
	m := machine.Build(cfg)
	if err := m.FS.Create("f", 1<<20); err != nil { // 16 records: EOF never clips the prediction
		t.Fatal(err)
	}
	pcfg := DefaultConfig()
	pcfg.Depth = 8
	pcfg.MaxBuffers = 2
	pf := New(m.K, pcfg)
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		pf.Attach(f)
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(sim.Second) // drain the in-flight prefetches before close
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if pf.Issued != 2 {
		t.Fatalf("Issued = %d, want 2 (the cap)", pf.Issued)
	}
	if pf.Skipped != 6 {
		t.Fatalf("Skipped = %d, want 6 (every span the cap suppressed)", pf.Skipped)
	}
}

// TestHitRateIncludesFallbacks: a fallback is a read the buffers did not
// serve, so it belongs in the denominator with the misses.
func TestHitRateIncludesFallbacks(t *testing.T) {
	pf := &Prefetcher{Hits: 2, HitsInWait: 1, Misses: 1, Fallbacks: 4}
	if got, want := pf.HitRate(), 3.0/8.0; got != want {
		t.Fatalf("HitRate() = %v, want %v (fallbacks in the denominator)", got, want)
	}
	if (&Prefetcher{}).HitRate() != 0 {
		t.Fatal("HitRate() with no reads should be 0")
	}
}

// closeAfter runs one read against a Depth-1 prefetcher and closes the
// file after the given settle time, returning the prefetcher for
// close-time accounting checks.
func closeAfter(t *testing.T, settle sim.Time) *Prefetcher {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 1
	cfg.IONodes = 4
	cfg.UFS.Fragmentation = 0
	m := machine.Build(cfg)
	if err := m.FS.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	pf := New(m.K, DefaultConfig())
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		pf.Attach(f)
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Error(err)
			return
		}
		if settle > 0 {
			p.Sleep(settle)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if pf.Issued != 1 {
		t.Fatalf("Issued = %d, want 1 (Depth-1 read-ahead)", pf.Issued)
	}
	return pf
}

// TestOnCloseRecyclesCompletedEntries: a buffer whose fill completed but
// was never consumed is Wasted at close, and its entry must return to
// the pool instead of leaking.
func TestOnCloseRecyclesCompletedEntries(t *testing.T) {
	pf := closeAfter(t, sim.Second) // fill long since complete
	if pf.Wasted != 1 || pf.UnreadAtClose != 0 {
		t.Fatalf("Wasted/UnreadAtClose = %d/%d, want 1/0", pf.Wasted, pf.UnreadAtClose)
	}
	if len(pf.free) != 1 {
		t.Fatalf("entry pool holds %d after close, want 1 (closed entry recycled)", len(pf.free))
	}
}

// TestOnCloseCountsInFlightAsUnread: closing while the fill is still in
// flight is a different outcome — the buffer never became usable. It
// must be counted as UnreadAtClose, not Wasted, and its entry must NOT
// be pooled (its Async has not fired; reusing it would tear the wing off
// a flying request).
func TestOnCloseCountsInFlightAsUnread(t *testing.T) {
	pf := closeAfter(t, 0) // close immediately: the fill is airborne
	if pf.Wasted != 0 || pf.UnreadAtClose != 1 {
		t.Fatalf("Wasted/UnreadAtClose = %d/%d, want 0/1", pf.Wasted, pf.UnreadAtClose)
	}
	if len(pf.free) != 0 {
		t.Fatalf("entry pool holds %d after close, want 0 (in-flight entry must not recycle)", len(pf.free))
	}
}
