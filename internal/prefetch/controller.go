package prefetch

import "repro/internal/sim"

// ControllerConfig arms the online parameter controller: every Interval
// served reads the controller looks at the window's hit rate and average
// direct-read service time and may step Depth and MaxBuffers, bounded by
// the Min/Max fields and by Step per decision. The zero value disables
// the controller entirely.
//
// Every decision is a pure function of integer window counters
// accumulated in simulated-event order (decideTune), so controlled runs
// stay bit-identical at a fixed seed — on the legacy engine and at every
// shard count, where all reads execute on the compute shard.
type ControllerConfig struct {
	// Interval is the window length in served reads (0 disables).
	Interval int64
	// MinDepth/MaxDepth bound the tuned prefetch depth.
	// Defaults (applied by New): 1 and 8.
	MinDepth int
	MaxDepth int
	// MinBuffers/MaxBuffers bound the tuned per-file buffer cap.
	// Defaults: 2 and 32.
	MinBuffers int
	MaxBuffers int
	// Step bounds how far one decision may move each knob. Default: 1.
	Step int
	// LowHit/HighHit are the window hit-rate thresholds: at or below
	// LowHit the controller backs off, at or above HighHit it deepens.
	// Defaults: 0.3 and 0.7.
	LowHit  float64
	HighHit float64
	// ServiceSlack backs the controller off regardless of hit rate when
	// the window's average direct-read service time exceeds ServiceSlack
	// times the first window's — the signature of a degraded I/O path,
	// where speculative load only adds queueing. 0 disables the check.
	// Default: 2.5.
	ServiceSlack float64
}

// Enabled reports whether the controller is armed.
func (c ControllerConfig) Enabled() bool { return c.Interval > 0 }

// withDefaults fills unset fields.
func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.MinDepth <= 0 {
		c.MinDepth = 1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinBuffers <= 0 {
		c.MinBuffers = 2
	}
	if c.MaxBuffers <= 0 {
		c.MaxBuffers = 32
	}
	if c.Step <= 0 {
		c.Step = 1
	}
	if c.LowHit <= 0 {
		c.LowHit = 0.3
	}
	if c.HighHit <= 0 {
		c.HighHit = 0.7
	}
	if c.ServiceSlack <= 0 {
		c.ServiceSlack = 2.5
	}
	return c
}

// controller is the per-Prefetcher tuning state. The knobs it moves live
// in the Prefetcher's Config (Depth, MaxBuffers), which the issue path
// reads on every call, so a retune takes effect at the very next read.
type controller struct {
	cfg ControllerConfig

	reads      int64    // reads in the current window
	hits       int64    // of which were served from a buffer
	directN    int64    // direct reads with a measured service time
	directTime sim.Time // their summed service time

	base     float64 // first window's average direct service, seconds
	haveBase bool

	depthMoves int64 // decisions that changed Depth
	bufMoves   int64 // decisions that changed MaxBuffers
}

// observe folds one served read into the window. Fallback reads count as
// misses here (the buffer did not serve them), matching HitRate.
func (ct *controller) observe(hit bool, direct bool, service sim.Time) {
	ct.reads++
	if hit {
		ct.hits++
	}
	if direct {
		ct.directN++
		ct.directTime += service
	}
}

// window closes the current window if due and returns the retuned
// (depth, bufs) plus whether a decision was taken.
func (ct *controller) window(depth, bufs int) (int, int, bool) {
	if ct.reads < ct.cfg.Interval {
		return depth, bufs, false
	}
	hitRate := float64(ct.hits) / float64(ct.reads)
	service := 0.0
	if ct.directN > 0 {
		service = (ct.directTime / sim.Time(ct.directN)).Seconds()
		if !ct.haveBase {
			// The first measured window calibrates "normal" service time;
			// later windows are judged against it.
			ct.base, ct.haveBase = service, true
		}
	}
	ct.reads, ct.hits, ct.directN, ct.directTime = 0, 0, 0, 0
	nd, nb := decideTune(depth, bufs, hitRate, service, ct.base, ct.cfg)
	if nd != depth {
		ct.depthMoves++
	}
	if nb != bufs {
		ct.bufMoves++
	}
	return nd, nb, nd != depth || nb != bufs
}

// decideTune is the controller's whole policy, as a pure function so the
// determinism argument is an inspection: same counters in, same knobs
// out.
//
//   - hit rate at or above HighHit: the stream is predictable — deepen,
//     up to MaxDepth, by at most Step;
//   - hit rate at or below LowHit: speculation is not paying — back off
//     toward MinDepth;
//   - direct service time beyond ServiceSlack × the calibration window:
//     the I/O path is degraded — back off regardless of hit rate (a
//     prefetch-fed hit rate can stay high while the misses behind it
//     queue ever longer);
//   - MaxBuffers tracks depth with one slot of slack so issue depth is
//     never strangled by the cap, stepping and clamping like depth.
func decideTune(depth, bufs int, hitRate, service, baseService float64, c ControllerConfig) (int, int) {
	grow := hitRate >= c.HighHit
	shrink := hitRate <= c.LowHit
	if c.ServiceSlack > 0 && baseService > 0 && service > c.ServiceSlack*baseService {
		grow, shrink = false, true
	}
	switch {
	case grow:
		depth = clamp(depth+c.Step, c.MinDepth, c.MaxDepth)
	case shrink:
		depth = clamp(depth-c.Step, c.MinDepth, c.MaxDepth)
	}
	target := clamp(depth+1, c.MinBuffers, c.MaxBuffers)
	switch {
	case bufs < target:
		bufs = min(bufs+c.Step, target)
	case bufs > target:
		bufs = max(bufs-c.Step, target)
	}
	return depth, bufs
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
