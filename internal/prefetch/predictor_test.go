package prefetch_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// openOne opens a file on a tiny machine just to have a *pfs.File to feed
// predictors.
func openOne(t *testing.T, size int64) *pfs.File {
	t.Helper()
	m := machine.Build(smallMachine())
	if err := m.FS.Create("f", size); err != nil {
		t.Fatal(err)
	}
	f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSequentialPredictor(t *testing.T) {
	f := openOne(t, 256<<10)
	var p prefetch.SequentialPredictor
	spans := p.Predict(f, 0, 64<<10, 3, nil)
	want := []prefetch.Span{{64 << 10, 64 << 10}, {128 << 10, 64 << 10}, {192 << 10, 64 << 10}}
	if len(spans) != len(want) {
		t.Fatalf("spans = %v", spans)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("span %d = %v, want %v", i, spans[i], want[i])
		}
	}
	// Clipped at EOF.
	spans = p.Predict(f, 192<<10, 64<<10, 3, nil)
	if len(spans) != 0 {
		t.Fatalf("prediction past EOF: %v", spans)
	}
	// Partial final span.
	spans = p.Predict(f, 128<<10, 96<<10, 3, nil)
	if len(spans) != 1 || spans[0] != (prefetch.Span{224 << 10, 32 << 10}) {
		t.Fatalf("partial tail span = %v", spans)
	}
}

func TestStridePredictorDetectsAndAdapts(t *testing.T) {
	f := openOne(t, 4<<20)
	sp := prefetch.NewStridePredictor(2)
	const rec = 64 << 10
	// No history: silent.
	if spans := sp.Predict(f, 0, rec, 2, nil); spans != nil {
		t.Fatalf("prediction with no history: %v", spans)
	}
	// Stride of 4 records: 0, 256K, 512K — two equal strides confirm.
	sp.Observe(f, 0, rec)
	sp.Observe(f, 4*rec, rec)
	if spans := sp.Predict(f, 4*rec, rec, 1, nil); spans != nil {
		t.Fatalf("prediction after one stride: %v", spans)
	}
	sp.Observe(f, 8*rec, rec)
	spans := sp.Predict(f, 8*rec, rec, 2, nil)
	if len(spans) != 2 || spans[0].Off != 12*rec || spans[1].Off != 16*rec {
		t.Fatalf("stride prediction = %v", spans)
	}
	// Pattern break: confidence resets.
	sp.Observe(f, 5*rec, rec)
	if spans := sp.Predict(f, 5*rec, rec, 1, nil); spans != nil {
		t.Fatalf("prediction after break: %v", spans)
	}
	// Forget drops state entirely.
	sp.Observe(f, 6*rec, rec)
	sp.Observe(f, 7*rec, rec)
	sp.Forget(f)
	if spans := sp.Predict(f, 7*rec, rec, 1, nil); spans != nil {
		t.Fatalf("prediction after Forget: %v", spans)
	}
}

func TestStridePredictorNegativeStride(t *testing.T) {
	f := openOne(t, 4<<20)
	sp := prefetch.NewStridePredictor(2)
	const rec = 64 << 10
	sp.Observe(f, 20*rec, rec)
	sp.Observe(f, 16*rec, rec)
	sp.Observe(f, 12*rec, rec)
	spans := sp.Predict(f, 12*rec, rec, 2, nil)
	if len(spans) != 2 || spans[0].Off != 8*rec || spans[1].Off != 4*rec {
		t.Fatalf("backward stride prediction = %v", spans)
	}
}

// TestStridePredictorRescuesStridedWorkload is the payoff: the mode
// predictor is blind to a strided M_ASYNC column walk, the stride
// detector is not.
func TestStridePredictorRescuesStridedWorkload(t *testing.T) {
	run := func(pred prefetch.Predictor) (*workload.Result, error) {
		cfg := machine.DefaultConfig()
		cfg.ComputeNodes = 4
		cfg.IONodes = 4
		pcfg := prefetch.DefaultConfig()
		pcfg.Predictor = pred
		return workload.Run(cfg, workload.Spec{
			FileSize:     8 << 20,
			RequestSize:  64 << 10,
			Mode:         pfs.MAsync,
			Pattern:      workload.Strided,
			Stride:       2,
			ComputeDelay: 50 * sim.Millisecond,
			Prefetch:     &pcfg,
		})
	}
	modeRes, err := run(prefetch.ModePredictor{})
	if err != nil {
		t.Fatal(err)
	}
	strideRes, err := run(prefetch.NewStridePredictor(2))
	if err != nil {
		t.Fatal(err)
	}
	if hr := modeRes.Prefetch.HitRate(); hr > 0.1 {
		t.Fatalf("mode predictor hit rate %.2f on strided access, want ≈ 0", hr)
	}
	if hr := strideRes.Prefetch.HitRate(); hr < 0.8 {
		t.Fatalf("stride predictor hit rate %.2f, want ≥ 0.8", hr)
	}
	if strideRes.Bandwidth <= modeRes.Bandwidth {
		t.Fatalf("stride predictor BW %.2f not above mode predictor %.2f",
			strideRes.Bandwidth, modeRes.Bandwidth)
	}
}

// TestStrideConfirmFloorIsOne: the documented minimum confirmation count
// is 1, but the constructor used to floor at 2, so the most eager
// configuration was silently unreachable.
func TestStrideConfirmFloorIsOne(t *testing.T) {
	sp := prefetch.NewStridePredictor(0)
	if sp.Confirm != 1 {
		t.Fatalf("NewStridePredictor(0).Confirm = %d, want the documented minimum 1", sp.Confirm)
	}
	// Behaviourally: with Confirm 1, a single observed stride predicts.
	f := openOne(t, 4<<20)
	const rec = 64 << 10
	sp.Observe(f, 0, rec)
	sp.Observe(f, 4*rec, rec)
	spans := sp.Predict(f, 4*rec, rec, 1, nil)
	if len(spans) != 1 || spans[0].Off != 8*rec {
		t.Fatalf("Confirm=1 prediction after one stride = %v, want [{%d %d}]", spans, 8*rec, rec)
	}
}

// TestStrideOverlapDoesNotConfirm: a repeated stride shorter than the
// previous read means the reads overlap — extrapolating would prefetch
// bytes the reader mostly has. The detector used to confirm on the raw
// stride repeat alone.
func TestStrideOverlapDoesNotConfirm(t *testing.T) {
	f := openOne(t, 4<<20)
	sp := prefetch.NewStridePredictor(2)
	const rec = 64 << 10
	// 64K reads advancing 32K at a time: stride repeats, but every read
	// overlaps half the previous one.
	sp.Observe(f, 0, rec)
	sp.Observe(f, rec/2, rec)
	sp.Observe(f, rec, rec)
	sp.Observe(f, 3*rec/2, rec)
	if spans := sp.Predict(f, 3*rec/2, rec, 1, nil); spans != nil {
		t.Fatalf("overlapping stride confirmed: predicted %v", spans)
	}
	// Non-overlapping reads at the same spacing confirm as before.
	sp2 := prefetch.NewStridePredictor(2)
	sp2.Observe(f, 0, rec/2)
	sp2.Observe(f, rec/2, rec/2)
	sp2.Observe(f, rec, rec/2)
	if spans := sp2.Predict(f, rec, rec/2, 1, nil); len(spans) != 1 || spans[0].Off != 3*rec/2 {
		t.Fatalf("back-to-back stride did not confirm: %v", spans)
	}
}

func TestModePredictorMatchesLegacyBehaviour(t *testing.T) {
	// The default predictor must reproduce the prototype's counters on
	// the canonical sequential scan.
	pcfg := prefetch.DefaultConfig()
	pcfg.Predictor = prefetch.ModePredictor{}
	_, pf, _ := seqRun(t, smallMachine(), 1<<20, 64<<10, 200*sim.Millisecond, &pcfg)
	if pf.Misses != 1 || pf.Hits != 15 {
		t.Fatalf("Misses=%d Hits=%d, want 1/15", pf.Misses, pf.Hits)
	}
}
