package prefetch_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// writeRun writes the whole file in 64 KB records with a compute delay
// between writes, either synchronously or under write-behind.
func writeRun(t *testing.T, behind bool, delay sim.Time) sim.Time {
	t.Helper()
	m := machine.Build(smallMachine())
	const fileSize, rec = 1 << 20, 64 << 10
	if err := m.FS.Create("f", fileSize); err != nil {
		t.Fatal(err)
	}
	var wb *prefetch.WriteBehind
	if behind {
		wb = prefetch.NewWriteBehind(m.K, prefetch.DefaultWriteBehindConfig())
	}
	m.K.Go("writer", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		defer f.Close()
		for off := int64(0); off < fileSize; off += rec {
			if behind {
				if err := wb.Write(p, f, off, rec); err != nil {
					t.Error(err)
					return
				}
			} else {
				if err := f.Write(p, off, rec); err != nil {
					t.Error(err)
					return
				}
			}
			p.Sleep(delay)
		}
		if behind {
			if err := wb.Flush(p, f); err != nil {
				t.Error(err)
			}
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	return m.K.Now()
}

func TestWriteBehindOverlapsComputation(t *testing.T) {
	delay := 40 * sim.Millisecond
	sync := writeRun(t, false, delay)
	behind := writeRun(t, true, delay)
	if behind >= sync {
		t.Fatalf("write-behind (%v) not faster than synchronous (%v) with compute to hide behind", behind, sync)
	}
	// With full overlap the run approaches pure compute time (16 writes
	// x 40 ms) plus the final flush.
	if behind > sync*9/10 {
		t.Fatalf("write-behind %v saved <10%% vs %v", behind, sync)
	}
}

func TestWriteBehindBackpressure(t *testing.T) {
	m := machine.Build(smallMachine())
	if err := m.FS.Create("f", 4<<20); err != nil {
		t.Fatal(err)
	}
	cfg := prefetch.DefaultWriteBehindConfig()
	cfg.MaxBuffers = 2
	wb := prefetch.NewWriteBehind(m.K, cfg)
	m.K.Go("writer", func(p *sim.Proc) {
		f, _ := m.FS.Open("f", 0, pfs.MAsync, nil)
		defer f.Close()
		for off := int64(0); off < 4<<20; off += 64 << 10 {
			if err := wb.Write(p, f, off, 64<<10); err != nil {
				t.Error(err)
				return
			}
		}
		if err := wb.Flush(p, f); err != nil {
			t.Error(err)
		}
		if wb.Pending(f) != 0 {
			t.Errorf("Pending = %d after flush", wb.Pending(f))
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if wb.Stalls == 0 {
		t.Fatal("back-to-back writes through a 2-buffer pool never stalled")
	}
	if wb.StallTime.Mean() <= 0 {
		t.Fatal("stalls recorded no waiting time")
	}
	if wb.Writes != 64 {
		t.Fatalf("Writes = %d, want 64", wb.Writes)
	}
}

func TestWriteBehindValidation(t *testing.T) {
	m := machine.Build(smallMachine())
	if err := m.FS.Create("f", 128<<10); err != nil {
		t.Fatal(err)
	}
	wb := prefetch.NewWriteBehind(m.K, prefetch.DefaultWriteBehindConfig())
	m.K.Go("writer", func(p *sim.Proc) {
		f, _ := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err := wb.Write(p, f, 128<<10, 1); err == nil {
			t.Error("out-of-range staged write accepted")
		}
		if err := wb.Write(p, f, 0, 0); err == nil {
			t.Error("zero-length staged write accepted")
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBehindSurfacesDiskErrors(t *testing.T) {
	m := machine.Build(smallMachine())
	if err := m.FS.Create("f", 512<<10); err != nil {
		t.Fatal(err)
	}
	for _, a := range m.Arrays {
		for i, d := range a.Members() {
			d.InjectFaults(1, int64(i))
		}
	}
	wb := prefetch.NewWriteBehind(m.K, prefetch.DefaultWriteBehindConfig())
	m.K.Go("writer", func(p *sim.Proc) {
		f, _ := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err := wb.Write(p, f, 0, 64<<10); err != nil {
			t.Errorf("staging should not fail: %v", err)
		}
		if err := wb.Flush(p, f); err == nil {
			t.Error("flush swallowed the disk error")
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
}
