package prefetch

// White-box tests for the prefetcher zoo: shadow-prediction grading,
// deterministic selection (argmax accuracy, registration-index
// tie-break), and the attribution plumbing the conservation oracle
// cross-foots.

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/pfs"
)

// openZooFile opens a file on a tiny machine just to have a *pfs.File
// for the registry's map keys and the predictors' mode queries.
func openZooFile(t *testing.T, size int64) *pfs.File {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 1
	cfg.IONodes = 4
	cfg.UFS.Fragmentation = 0
	m := machine.Build(cfg)
	if err := m.FS.Create("f", size); err != nil {
		t.Fatal(err)
	}
	f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSourceStatsAccuracy(t *testing.T) {
	cases := []struct {
		s    SourceStats
		want float64
	}{
		{SourceStats{}, 0},
		{SourceStats{Predicted: 4}, 0},
		{SourceStats{Predicted: 4, Correct: 4}, 1},
		{SourceStats{Predicted: 8, Correct: 6}, 0.75},
		{SourceStats{Predicted: 3, Correct: 1}, 1.0 / 3.0},
	}
	for i, tc := range cases {
		if got := tc.s.Accuracy(); got != tc.want {
			t.Errorf("case %d: Accuracy(%+v) = %v, want %v", i, tc.s, got, tc.want)
		}
	}
}

// TestRegistryGradesShadows feeds a pure sequential stream and checks the
// exact Predicted/Correct ledgers of a sequential source and a stride
// source. The numbers are fully determined: sequential predicts from the
// first read (graded from the second), the stride detector needs two
// confirmed strides before its first shadow.
func TestRegistryGradesShadows(t *testing.T) {
	const rec = 64 << 10
	f := openZooFile(t, 16*rec)
	reg := NewRegistry()
	reg.Register("sequential", SequentialPredictor{})
	reg.Register("stride", NewStridePredictor(2))

	for i := int64(0); i < 8; i++ {
		reg.observe(f, i*rec, rec)
	}
	st := reg.Stats(f)
	if st == nil {
		t.Fatal("no stream stats after eight reads")
	}
	// Sequential: one shadow per read (8), each confirmed by the next
	// read except the last's (7).
	if st[0].Predicted != 8 || st[0].Correct != 7 {
		t.Errorf("sequential Predicted/Correct = %d/%d, want 8/7", st[0].Predicted, st[0].Correct)
	}
	// Stride: first shadow only once two equal strides are confirmed
	// (read index 2), so 6 predictions, 5 of them graded.
	if st[1].Predicted != 6 || st[1].Correct != 5 {
		t.Errorf("stride Predicted/Correct = %d/%d, want 6/5", st[1].Predicted, st[1].Correct)
	}
}

// TestRegistrySelectionPrefersAccurate walks a stride-2 stream: the
// sequential source shadows every read and is always wrong, the stride
// source locks on. Selection must move to the stride source as soon as
// it has MinSamples graded shadows, and stay there.
func TestRegistrySelectionPrefersAccurate(t *testing.T) {
	const rec = 64 << 10
	f := openZooFile(t, 64*rec)
	reg := NewRegistry()
	reg.Register("sequential", SequentialPredictor{})
	reg.Register("stride", NewStridePredictor(2))

	if got := reg.selected(f, 4); got != 0 {
		t.Fatalf("cold-stream selection = %d, want 0 (first registered source)", got)
	}
	for i := int64(0); i < 8; i++ {
		reg.observe(f, 2*i*rec, rec)
	}
	if got := reg.selected(f, 4); got != 1 {
		st := reg.Stats(f)
		t.Fatalf("selection = %d, want 1 (stride); stats %+v", got, st)
	}
	// An out-of-reach sample floor makes every source ineligible again.
	if got := reg.selected(f, 100); got != 0 {
		t.Fatalf("selection with unmet MinSamples = %d, want warm-up default 0", got)
	}
}

// TestRegistryTieBreakIsRegistrationOrder registers the same predictor
// type twice: their accuracies are identical at every read, so selection
// must always return the lower registration index, on every call and on
// an identically-fed fresh registry.
func TestRegistryTieBreakIsRegistrationOrder(t *testing.T) {
	const rec = 64 << 10
	build := func(f *pfs.File) *Registry {
		reg := NewRegistry()
		reg.Register("a", SequentialPredictor{})
		reg.Register("b", SequentialPredictor{})
		for i := int64(0); i < 8; i++ {
			reg.observe(f, i*rec, rec)
		}
		return reg
	}
	f := openZooFile(t, 16*rec)
	reg := build(f)
	st := reg.Stats(f)
	if st[0].Accuracy() != st[1].Accuracy() {
		t.Fatalf("accuracies differ (%v vs %v); tie-break not exercised",
			st[0].Accuracy(), st[1].Accuracy())
	}
	for call := 0; call < 3; call++ {
		if got := reg.selected(f, 4); got != 0 {
			t.Fatalf("call %d: tie selection = %d, want lowest index 0", call, got)
		}
	}
	f2 := openZooFile(t, 16*rec)
	if got := build(f2).selected(f2, 4); got != 0 {
		t.Fatalf("fresh identically-fed registry selected %d, want 0", got)
	}
}

// TestRegistryAttributionAndTotals drives the note hooks the Prefetcher
// uses and checks the ledgers land on the right source, survive the
// close-time fold into Totals, and absorb post-close stragglers.
func TestRegistryAttributionAndTotals(t *testing.T) {
	const rec = 64 << 10
	f := openZooFile(t, 16*rec)
	reg := NewRegistry()
	reg.Register("mode", ModePredictor{})
	reg.Register("sequential", SequentialPredictor{})
	reg.observe(f, 0, rec)

	reg.note(f, 1, func(s *SourceStats) { s.Issued++ })
	reg.note(f, 1, func(s *SourceStats) { s.Consumed++ })
	reg.note(f, 0, func(s *SourceStats) { s.Wasted++ })
	reg.note(f, -1, func(s *SourceStats) { s.Issued++ }) // out of range: dropped
	reg.note(f, 2, func(s *SourceStats) { s.Issued++ })  // out of range: dropped

	st := reg.Stats(f)
	if st[1].Issued != 1 || st[1].Consumed != 1 || st[0].Wasted != 1 {
		t.Fatalf("live-stream attribution wrong: %+v", st)
	}
	if tot := reg.Totals(); tot[0] != (SourceStats{}) || tot[1] != (SourceStats{}) {
		t.Fatalf("totals non-zero before any stream closed: %+v", tot)
	}

	reg.forget(f)
	tot := reg.Totals()
	if tot[1].Issued != 1 || tot[1].Consumed != 1 || tot[0].Wasted != 1 {
		t.Fatalf("totals after fold: %+v", tot)
	}
	if reg.Stats(f) != nil {
		t.Fatal("stream stats survived forget")
	}
	// A straggler outcome for a closed stream folds into the totals.
	reg.note(f, 1, func(s *SourceStats) { s.Unread++ })
	if tot := reg.Totals(); tot[1].Unread != 1 {
		t.Fatalf("post-close note lost: %+v", tot[1])
	}
}
