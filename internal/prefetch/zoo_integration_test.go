package prefetch_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestHybridControllerEndToEnd drives the full zoo through workload.Run:
// the hybrid policy with the online controller armed must retune Depth
// mid-run, keep the registry's per-source ledgers cross-footing with the
// prefetcher's counters, and produce a bit-identical fingerprint and
// trace digest on a repeat run.
func TestHybridControllerEndToEnd(t *testing.T) {
	run := func() (*workload.Result, *trace.Log) {
		cfg := machine.DefaultConfig()
		cfg.ComputeNodes = 4
		cfg.IONodes = 4
		cfg.UFS.Fragmentation = 0
		pcfg := prefetch.DefaultConfig()
		pcfg.Policy = "hybrid"
		pcfg.Controller = prefetch.ControllerConfig{Interval: 4}
		tl := trace.NewLog(1 << 18)
		res, err := workload.Run(cfg, workload.Spec{
			File:         "zoo",
			FileSize:     2 << 20,
			RequestSize:  64 << 10,
			Mode:         pfs.MRecord,
			ComputeDelay: 50 * sim.Millisecond,
			Prefetch:     &pcfg,
			Trace:        tl,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, tl
	}

	res, tl := run()
	pf := res.Prefetch
	if pf.Retunes == 0 {
		t.Fatal("controller never retuned over a full MRecord scan")
	}
	depth, bufs, on := pf.Tuning()
	if !on {
		t.Fatal("Tuning() reports no controller on a controller-armed run")
	}
	if base := prefetch.DefaultConfig(); depth == base.Depth && bufs == base.MaxBuffers {
		t.Fatalf("knobs unchanged from defaults (%d, %d) despite %d retunes", depth, bufs, pf.Retunes)
	}
	if dm, _ := pf.ControllerMoves(); dm == 0 {
		t.Fatal("no depth moves recorded")
	}

	zoo := pf.Zoo()
	if zoo == nil {
		t.Fatal("hybrid run exposes no registry")
	}
	var issued, consumed, wasted, unread int64
	for _, s := range zoo.Totals() {
		issued += s.Issued
		consumed += s.Consumed
		wasted += s.Wasted
		unread += s.Unread
	}
	if issued != pf.Issued || consumed != pf.Hits+pf.HitsInWait ||
		wasted != pf.Wasted || unread != pf.UnreadAtClose {
		t.Fatalf("zoo attribution does not cross-foot: issued %d/%d consumed %d/%d wasted %d/%d unread %d/%d",
			issued, pf.Issued, consumed, pf.Hits+pf.HitsInWait, wasted, pf.Wasted, unread, pf.UnreadAtClose)
	}

	res2, tl2 := run()
	if res.Fingerprint() != res2.Fingerprint() || tl.Digest() != tl2.Digest() {
		t.Fatalf("controlled run not deterministic: fingerprint %016x vs %016x, trace %016x vs %016x",
			res.Fingerprint(), res2.Fingerprint(), tl.Digest(), tl2.Digest())
	}
}
