package prefetch

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// WriteBehind is the write-side mirror of the prefetching prototype: a
// user write copies into a compute-node staging buffer and returns, and
// the asynchronous request thread pushes the data to the I/O nodes while
// the application computes. A bounded buffer pool provides backpressure,
// and Flush drains everything before close. The paper leaves writes to
// future work; this extension quantifies them.
type WriteBehind struct {
	k   *sim.Kernel
	cfg WriteBehindConfig

	inflight map[*pfs.File][]*pfs.Async

	// Measurements.
	Writes    int64           // writes accepted into staging
	Stalls    int64           // writes that blocked on the buffer cap
	Flushes   int64           // explicit flushes
	StallTime stats.Histogram // time spent waiting for a free buffer, seconds
}

// WriteBehindConfig tunes the staging pool.
type WriteBehindConfig struct {
	MaxBuffers   int     // staged-but-unwritten buffers per file
	MemBandwidth float64 // user-buffer to staging-buffer copy rate
}

// DefaultWriteBehindConfig mirrors the prefetcher's parameters.
func DefaultWriteBehindConfig() WriteBehindConfig {
	return WriteBehindConfig{MaxBuffers: 16, MemBandwidth: 45e6}
}

// NewWriteBehind returns a write-behind engine on kernel k.
func NewWriteBehind(k *sim.Kernel, cfg WriteBehindConfig) *WriteBehind {
	if cfg.MaxBuffers <= 0 {
		panic("prefetch: write-behind buffer cap must be positive")
	}
	if cfg.MemBandwidth <= 0 {
		panic("prefetch: write-behind memory bandwidth must be positive")
	}
	return &WriteBehind{k: k, cfg: cfg, inflight: make(map[*pfs.File][]*pfs.Async)}
}

// Write stages a write of [off, off+n) on f and returns once the data is
// copied out of the user's buffer (blocking first on a free staging slot
// if the pool is full). The durable write completes asynchronously;
// its error surfaces at the next Flush.
func (wb *WriteBehind) Write(p *sim.Proc, f *pfs.File, off, n int64) error {
	if n <= 0 || off < 0 || off+n > f.Size() {
		return fmt.Errorf("prefetch: write-behind [%d,+%d) outside %s (%d bytes)", off, n, f.Name(), f.Size())
	}
	// Backpressure: wait for the oldest in-flight write to retire.
	for len(wb.inflight[f]) >= wb.cfg.MaxBuffers {
		wb.Stalls++
		from := p.Now()
		oldest := wb.inflight[f][0]
		if err := oldest.Done.Wait(p); err != nil {
			wb.reap(f)
			return err
		}
		wb.StallTime.ObserveTime(p.Now() - from)
		wb.reap(f)
	}
	// Copy user buffer -> staging buffer, then hand off to the ART.
	p.Sleep(sim.Time(float64(n) / wb.cfg.MemBandwidth * float64(sim.Second)))
	wb.inflight[f] = append(wb.inflight[f], f.IWriteAt(off, n))
	wb.Writes++
	return nil
}

// Flush blocks until every staged write on f is durable and returns the
// first error among them.
func (wb *WriteBehind) Flush(p *sim.Proc, f *pfs.File) error {
	wb.Flushes++
	var first error
	for _, req := range wb.inflight[f] {
		if err := req.Done.Wait(p); err != nil && first == nil {
			first = err
		}
	}
	delete(wb.inflight, f)
	return first
}

// Pending reports the staged writes not yet known durable for f.
func (wb *WriteBehind) Pending(f *pfs.File) int {
	wb.reap(f)
	return len(wb.inflight[f])
}

// reap drops completed requests from the front of f's in-flight list.
func (wb *WriteBehind) reap(f *pfs.File) {
	l := wb.inflight[f]
	for len(l) > 0 && l[0].Done.Fired() && l[0].Done.Err() == nil {
		l = l[1:]
	}
	wb.inflight[f] = l
}
