package prefetch

// White-box tests for the online parameter controller: decideTune's
// bounds (the knobs never leave [Min, Max] and never move more than Step
// per decision) and the window bookkeeping that feeds it.

import (
	"testing"

	"repro/internal/sim"
)

func TestDecideTuneBounds(t *testing.T) {
	c := ControllerConfig{Interval: 4}.withDefaults() // 1..8 depth, 2..32 bufs, step 1
	cases := []struct {
		name          string
		depth, bufs   int
		hit, svc, bas float64
		wantD, wantB  int
	}{
		{"high hit grows", 3, 4, 0.9, 0, 0, 4, 5},
		{"low hit shrinks", 3, 4, 0.1, 0, 0, 2, 3},
		{"mid hit holds depth", 3, 4, 0.5, 0, 0, 3, 4},
		{"grow clamps at MaxDepth", 8, 9, 1.0, 0, 0, 8, 9},
		{"shrink clamps at MinDepth", 1, 2, 0.0, 0, 0, 1, 2},
		{"bufs step toward target from below", 4, 2, 0.5, 0, 0, 4, 3},
		{"bufs step toward target from above", 2, 16, 0.5, 0, 0, 2, 15},
		{"slow service overrides high hit", 3, 4, 0.9, 1.0, 0.1, 2, 3},
		{"service within slack defers to hit", 3, 4, 0.9, 0.2, 0.1, 4, 5},
	}
	for _, tc := range cases {
		d, b := decideTune(tc.depth, tc.bufs, tc.hit, tc.svc, tc.bas, c)
		if d != tc.wantD || b != tc.wantB {
			t.Errorf("%s: decideTune(%d, %d, %v, %v, %v) = (%d, %d), want (%d, %d)",
				tc.name, tc.depth, tc.bufs, tc.hit, tc.svc, tc.bas, d, b, tc.wantD, tc.wantB)
		}
		if d < c.MinDepth || d > c.MaxDepth {
			t.Errorf("%s: depth %d left [%d, %d]", tc.name, d, c.MinDepth, c.MaxDepth)
		}
		if b < c.MinBuffers || b > c.MaxBuffers {
			t.Errorf("%s: bufs %d left [%d, %d]", tc.name, b, c.MinBuffers, c.MaxBuffers)
		}
		if dd := d - tc.depth; dd > c.Step || dd < -c.Step {
			t.Errorf("%s: depth moved %d, more than Step %d", tc.name, dd, c.Step)
		}
		if db := b - tc.bufs; db > c.Step || db < -c.Step {
			t.Errorf("%s: bufs moved %d, more than Step %d", tc.name, db, c.Step)
		}
	}
}

// TestDecideTuneNeverEscapesBounds sweeps every in-range state against
// every decision direction: the knobs must stay inside their boxes no
// matter what the window measured.
func TestDecideTuneNeverEscapesBounds(t *testing.T) {
	c := ControllerConfig{Interval: 1, MinDepth: 2, MaxDepth: 5, MinBuffers: 3, MaxBuffers: 6, Step: 2}.withDefaults()
	for depth := c.MinDepth; depth <= c.MaxDepth; depth++ {
		for bufs := c.MinBuffers; bufs <= c.MaxBuffers; bufs++ {
			for _, hit := range []float64{0, 0.5, 1} {
				for _, svc := range []float64{0, 0.1, 10} {
					d, b := decideTune(depth, bufs, hit, svc, 0.1, c)
					if d < c.MinDepth || d > c.MaxDepth || b < c.MinBuffers || b > c.MaxBuffers {
						t.Fatalf("decideTune(%d, %d, %v, %v) escaped to (%d, %d)", depth, bufs, hit, svc, d, b)
					}
					if dd, db := d-depth, b-bufs; dd > c.Step || dd < -c.Step || db > c.Step || db < -c.Step {
						t.Fatalf("decideTune(%d, %d, %v, %v) jumped to (%d, %d), more than Step %d",
							depth, bufs, hit, svc, d, b, c.Step)
					}
				}
			}
		}
	}
}

// TestControllerWindowDiscipline checks the window plumbing: no decision
// before Interval reads, counter reset at the boundary, first-window
// service calibration, and the move counters.
func TestControllerWindowDiscipline(t *testing.T) {
	ct := &controller{cfg: ControllerConfig{Interval: 4}.withDefaults()}
	for i := 0; i < 3; i++ {
		ct.observe(true, false, 0)
		if _, _, changed := ct.window(1, 2); changed {
			t.Fatalf("decision after only %d reads (interval 4)", i+1)
		}
	}
	// Fourth read closes the window: all hits, so depth grows 1 -> 2 and
	// bufs follow toward depth+1.
	ct.observe(true, false, 0)
	d, b, changed := ct.window(1, 2)
	if !changed || d != 2 || b != 3 {
		t.Fatalf("first window: (%d, %d, %v), want (2, 3, true)", d, b, changed)
	}
	if ct.reads != 0 || ct.hits != 0 || ct.directN != 0 || ct.directTime != 0 {
		t.Fatalf("window counters not reset: %+v", ct)
	}
	if ct.depthMoves != 1 || ct.bufMoves != 1 {
		t.Fatalf("move counters = %d/%d, want 1/1", ct.depthMoves, ct.bufMoves)
	}
	if ct.haveBase {
		t.Fatal("base calibrated from a window with no direct reads")
	}
	// A window with direct reads calibrates the base exactly once.
	for i := 0; i < 4; i++ {
		ct.observe(false, true, 100)
	}
	ct.window(2, 3)
	if !ct.haveBase || ct.base != sim.Time(100).Seconds() {
		t.Fatalf("base = %v (haveBase %v), want first window's average", ct.base, ct.haveBase)
	}
	first := ct.base
	for i := 0; i < 4; i++ {
		ct.observe(false, true, 500)
	}
	ct.window(2, 3)
	if ct.base != first {
		t.Fatalf("base recalibrated: %v -> %v", first, ct.base)
	}
}
