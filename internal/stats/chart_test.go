package stats

import (
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := NewChart("Demo", "x", "y")
	c.Add(Series{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 5, 10}})
	c.Add(Series{Name: "b", X: []float64{0, 1, 2}, Y: []float64{10, 5, 0}})
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "* a", "o b", "(y vs x)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers not plotted")
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("Empty", "x", "y")
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartMismatchedSeriesPanics(t *testing.T) {
	c := NewChart("", "x", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series accepted")
		}
	}()
	c.Add(Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}})
}

func TestChartSinglePoint(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	c := NewChart("One", "x", "y")
	c.Add(Series{Name: "p", X: []float64{3}, Y: []float64{7}})
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Fatal("single point not plotted")
	}
}

func TestChartAnchorsAtZero(t *testing.T) {
	// Bandwidth charts: a series living in [5,10] still shows a zero
	// baseline.
	c := NewChart("", "x", "y")
	c.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{5, 10}})
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.0 |") {
		t.Fatalf("no zero baseline:\n%s", sb.String())
	}
}
