// Package stats provides the measurement plumbing shared by the simulator
// and the benchmark harness: sample histograms, time-weighted utilization
// tracking, throughput conversions, and fixed-width table rendering that
// mimics the layout of the paper's tables.
package stats

import (
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/sim"
)

// MBps converts a byte count moved over a simulated duration to the
// megabytes-per-second figure the paper reports (1 MB = 2^20 bytes, the
// convention of the era). A non-positive duration yields 0.
func MBps(bytes int64, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / d.Seconds()
}

// Histogram accumulates float64 samples and answers summary questions.
// It stores every sample; simulations in this repository record at most a
// few hundred thousand, which is cheap, and exact quantiles beat sketches
// for reproducibility.
type Histogram struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h.samples == nil {
		h.samples = make([]float64, 0, 64)
	}
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// Reserve grows the sample storage to hold at least n samples without
// further allocation. Call it once when the expected sample count is
// known; observing past the reservation still works (append grows).
func (h *Histogram) Reserve(n int) {
	if cap(h.samples) >= n {
		return
	}
	s := make([]float64, len(h.samples), n)
	copy(s, h.samples)
	h.samples = s
}

// Reset forgets all samples but keeps the storage, so a histogram can be
// reused across runs without reallocating.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = false
}

// ObserveTime records a simulated duration, in seconds.
func (h *Histogram) ObserveTime(d sim.Time) { h.Observe(d.Seconds()) }

// N reports the number of samples.
func (h *Histogram) N() int { return len(h.samples) }

// Sum reports the total of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean reports the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	h.sort()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	h.sort()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Quantile reports the q-quantile (0 ≤ q ≤ 1) by nearest-rank, or 0 with
// no samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.sort()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return h.samples[i]
}

// Stddev reports the population standard deviation, or 0 with fewer than
// two samples.
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Fingerprint digests the sample multiset (FNV-64a over the sorted raw
// bit patterns). Two histograms fed the same samples — in any order —
// fingerprint equal; any numeric difference, however small, does not.
// Sorting makes the digest independent of observation order, which the
// workload layer does not guarantee across runs (per-node histograms are
// merged in node order, but samples within a node interleave by time).
func (h *Histogram) Fingerprint() uint64 {
	h.sort()
	d := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		d.Write(buf[:])
	}
	put(uint64(len(h.samples)))
	for _, v := range h.samples {
		put(math.Float64bits(v))
	}
	return d.Sum64()
}

// Each calls fn for every recorded sample (in unspecified order).
func (h *Histogram) Each(fn func(v float64)) {
	for _, v := range h.samples {
		fn(v)
	}
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Utilization tracks the fraction of simulated time a device spends busy.
// Overlapping busy intervals from one device are a modeling bug, so Begin
// while already busy panics.
type Utilization struct {
	busy     sim.Time
	busyFrom sim.Time
	active   bool
}

// Begin marks the device busy starting at now.
func (u *Utilization) Begin(now sim.Time) {
	if u.active {
		panic("stats: Utilization.Begin while already busy")
	}
	u.active = true
	u.busyFrom = now
}

// End marks the device idle at now.
func (u *Utilization) End(now sim.Time) {
	if !u.active {
		panic("stats: Utilization.End while idle")
	}
	u.active = false
	u.busy += now - u.busyFrom
}

// Busy reports accumulated busy time, counting a still-open interval up to
// now.
func (u *Utilization) Busy(now sim.Time) sim.Time {
	b := u.busy
	if u.active {
		b += now - u.busyFrom
	}
	return b
}

// Fraction reports busy time as a fraction of the total elapsed time.
func (u *Utilization) Fraction(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	return u.Busy(now).Seconds() / now.Seconds()
}
