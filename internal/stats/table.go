package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table renders rows of mixed values as an aligned fixed-width text table,
// or as CSV for machine consumption. It is how cmd/experiments prints the
// paper's tables.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, float64 with %.2f.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case float32:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Headers returns the column headers.
func (t *Table) Headers() []string { return t.headers }

// Rows returns the formatted cells, row-major.
func (t *Table) Rows() [][]string { return t.rows }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.headers); err != nil {
		return err
	}
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (header row first). Cells are escaped
// only for commas and quotes, which is all this repository produces.
func (t *Table) RenderCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
