package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one line on a Chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders numeric series as an ASCII scatter/line chart — enough to
// eyeball the shape of the paper's figures straight from the terminal.
type Chart struct {
	Title          string
	XLabel, YLabel string
	Width, Height  int // plot area in characters; defaults 64x20
	series         []Series
}

// markers distinguish series on the grid.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// NewChart returns an empty chart.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 64, Height: 20}
}

// Add appends a series. X and Y must have equal length.
func (c *Chart) Add(s Series) {
	if len(s.X) != len(s.Y) {
		panic(fmt.Sprintf("stats: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y)))
	}
	c.series = append(c.series, s)
}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
			points++
		}
	}
	if points == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return err
	}
	if ymin > 0 {
		ymin = 0 // anchor bandwidth-style charts at zero
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, mark byte) {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		row := height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(height-1)))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = mark
		}
	}
	for si, s := range c.series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			plot(s.X[i], s.Y[i], mark)
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	// Legend.
	var leg []string
	for si, s := range c.series {
		leg = append(leg, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	if _, err := fmt.Fprintf(w, "  [%s]\n", strings.Join(leg, "   ")); err != nil {
		return err
	}
	// Rows with y tick labels every 5 rows.
	for r, row := range grid {
		y := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		label := "        "
		if r%5 == 0 || r == height-1 {
			label = fmt.Sprintf("%7.1f ", y)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "         %-*.4g%*.4g   (%s vs %s)\n",
		width/2, xmin, width/2-1, xmax, c.YLabel, c.XLabel)
	return err
}
