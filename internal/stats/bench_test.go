package stats

import "testing"

// BenchmarkHistogramObserve measures the per-sample recording cost paid
// on every simulated read.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 997))
	}
}

// BenchmarkHistogramQuantile measures query cost including the lazy sort.
func BenchmarkHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := 0; i < 100000; i++ {
		h.Observe(float64((i * 2654435761) % 99991))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i)) // dirty the sort
		_ = h.Quantile(0.5)
	}
}

// BenchmarkHistogramQuantileClean proves quantile queries on a clean
// (already-sorted) histogram are O(1): the dirty flag means the sort runs
// at most once per batch of observations, so repeated summary queries —
// Min, Max, and every quantile of a report table — cost an index lookup,
// not a re-sort of 100k samples.
func BenchmarkHistogramQuantileClean(b *testing.B) {
	var h Histogram
	h.Reserve(100000)
	for i := 0; i < 100000; i++ {
		h.Observe(float64((i * 2654435761) % 99991))
	}
	_ = h.Quantile(0.5) // sort once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(float64(i%100) / 100)
		_ = h.Min()
		_ = h.Max()
	}
}

// BenchmarkTableRender measures formatting a paper-sized table.
func BenchmarkTableRender(b *testing.B) {
	t := NewTable("bench", "a", "b", "c", "d")
	for i := 0; i < 12; i++ {
		t.AddRow(i, float64(i)*1.5, "cell", i*i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sink discard
		if err := t.Render(&sink); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
