package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestMBps(t *testing.T) {
	if got := MBps(1<<20, sim.Second); got != 1 {
		t.Fatalf("1MiB/1s = %v MB/s, want 1", got)
	}
	if got := MBps(8<<20, 2*sim.Second); got != 4 {
		t.Fatalf("8MiB/2s = %v MB/s, want 4", got)
	}
	if got := MBps(100, 0); got != 0 {
		t.Fatalf("zero duration = %v, want 0", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []float64{4, 1, 3, 2, 5} {
		h.Observe(v)
	}
	if h.N() != 5 || h.Sum() != 15 || h.Mean() != 3 {
		t.Fatalf("N=%d Sum=%v Mean=%v", h.N(), h.Sum(), h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min=%v Max=%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := h.Quantile(1); q != 5 {
		t.Fatalf("q1.0 = %v", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	want := math.Sqrt(2)
	if s := h.Stddev(); math.Abs(s-want) > 1e-12 {
		t.Fatalf("Stddev = %v, want %v", s, want)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.9) != 0 || h.Stddev() != 0 {
		t.Fatal("empty histogram should answer zeros")
	}
}

func TestHistogramObserveAfterQuery(t *testing.T) {
	var h Histogram
	h.Observe(5)
	_ = h.Min() // forces a sort
	h.Observe(1)
	if h.Min() != 1 {
		t.Fatalf("Min after late Observe = %v, want 1", h.Min())
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestHistogramQuantileMonotone(t *testing.T) {
	if err := quick.Check(func(raw []float64, qa, qb float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		norm := func(q float64) float64 {
			q = math.Abs(q)
			return q - math.Floor(q) // into [0,1)
		}
		qa, qb = norm(qa), norm(qb)
		if qa > qb {
			qa, qb = qb, qa
		}
		var h Histogram
		for _, v := range vals {
			h.Observe(v)
		}
		lo, hi := h.Quantile(qa), h.Quantile(qb)
		return lo <= hi && h.Min() <= lo && hi <= h.Max()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestHistogramMeanBounded(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		var h Histogram
		n := 0
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				h.Observe(v)
				n++
			}
		}
		if n == 0 {
			return true
		}
		m := h.Mean()
		return h.Min() <= m+1e-6 && m-1e-6 <= h.Max()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: N-quantile sweep reproduces the sorted sample set.
func TestHistogramQuantileRanks(t *testing.T) {
	vals := []float64{9, 7, 5, 3, 1}
	var h Histogram
	for _, v := range vals {
		h.Observe(v)
	}
	sort.Float64s(vals)
	n := len(vals)
	for i, want := range vals {
		q := float64(i+1) / float64(n)
		if got := h.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestUtilization(t *testing.T) {
	var u Utilization
	u.Begin(sim.Second)
	u.End(3 * sim.Second)
	u.Begin(5 * sim.Second)
	if b := u.Busy(6 * sim.Second); b != 3*sim.Second {
		t.Fatalf("Busy = %v, want 3s", b)
	}
	u.End(7 * sim.Second)
	if f := u.Fraction(8 * sim.Second); f != 0.5 {
		t.Fatalf("Fraction = %v, want 0.5", f)
	}
}

func TestUtilizationMisusePanics(t *testing.T) {
	var u Utilization
	func() {
		defer func() {
			if recover() == nil {
				t.Error("End while idle did not panic")
			}
		}()
		u.End(0)
	}()
	u.Begin(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Begin while busy did not panic")
			}
		}()
		u.Begin(1)
	}()
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "Request", "BW (MB/s)")
	tb.AddRow(64, 12.345)
	tb.AddRow(1024, 3.0)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "Request", "BW (MB/s)", "12.35", "1024", "3.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `q"q`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"q\"\"q\"\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "col", "x")
	tb.AddRow("longvalue", 1)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (header, rule, row)", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("header and rule widths differ:\n%q\n%q", lines[0], lines[1])
	}
}

func TestHistogramReserveReset(t *testing.T) {
	var h Histogram
	h.Reserve(100)
	if cap(h.samples) < 100 {
		t.Fatalf("Reserve(100) left cap %d", cap(h.samples))
	}
	base := &h.samples[:1][0]
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	if &h.samples[0] != base {
		t.Fatal("observing within the reservation reallocated storage")
	}
	if h.N() != 100 || h.Sum() != 4950 {
		t.Fatalf("N=%d Sum=%v after 100 observes", h.N(), h.Sum())
	}
	h.Reset()
	if h.N() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("Reset did not clear the histogram")
	}
	if cap(h.samples) < 100 {
		t.Fatal("Reset dropped the reserved storage")
	}
	h.Observe(7)
	if h.Min() != 7 || h.Max() != 7 || h.N() != 1 {
		t.Fatal("histogram unusable after Reset")
	}
}

func TestHistogramReserveKeepsSamples(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Observe(1)
	h.Reserve(1000)
	if h.N() != 2 || h.Min() != 1 || h.Max() != 3 {
		t.Fatal("Reserve lost existing samples")
	}
}
