package sim

import (
	"fmt"
	"hash/fnv"
	"time"
)

// This file implements the sharded execution engine: a conservative
// (lookahead-window) parallel discrete-event scheduler over a fixed
// partition of the simulated machine into node groups, each owning a
// private Kernel. The engine advances all groups in synchronized rounds
// and is deterministic by construction — the same model produces
// bit-identical kernel fingerprints, counters, and trace digests at any
// worker count, because nothing observable ever depends on which OS
// thread ran what.
//
// # Protocol
//
// Every round the coordinator computes M, the earliest pending event
// time across all groups, and opens the window [M, M+L) where L is the
// lookahead: a lower bound on the latency of any cross-group message
// (for a mesh interconnect, the minimum link/delivery latency — see
// mesh.MinLookahead). Each group then executes its own events with
// t < M+L in parallel, with no communication: a message sent at time
// t ≥ M inside the window cannot arrive before t+L ≥ M+L, so no group
// can receive anything that would have to run inside the current
// window. Cross-group sends are not resolved inline; they are appended
// to the sending group's outbox as pooled Posts. At the round barrier a
// single-threaded merge drains all outboxes in one canonical total
// order and schedules the deliveries, and the next round begins.
//
// # The (time, shard, seq) total order
//
// Simultaneous events must execute in the same order at every worker
// count, so ties are broken by an explicit documented total order
// rather than by heap insertion accidents:
//
//   - within one group, the kernel's (time, seq) order applies — seq is
//     the group-local scheduling sequence, which is deterministic
//     because each group's execution is single-threaded;
//   - across groups, outboxes are merged in (time, shard, seq) order:
//     send timestamp first, then the sending group's index, then the
//     group-local post sequence.
//
// Both components are pure functions of the simulation's data, never of
// thread scheduling. The merge itself mutates shared model state (mesh
// link clocks, latency histograms) on one thread in that canonical
// order, so even globally-shared analytic resources stay deterministic.
//
// # Why this is safe
//
// The lookahead argument needs L to be a true lower bound: if any
// message could arrive in less than L, a group might run past the
// moment a neighbor's message should have influenced it. The drain loop
// enforces the contract at runtime — a resolver returning an arrival
// earlier than send+L panics rather than silently corrupting causality.

// Post is one cross-group message, pooled per source group. The
// scheduler fills T, Seq, and SrcGroup; the model (the mesh) fills the
// routing fields and the delivery callback. Src, Dst, Size, and
// NoSendOverhead are opaque to the scheduler: they are carried to the
// model's Resolver, which turns them into a target group and arrival
// time at the round barrier.
type Post struct {
	T        Time   // send time (sending group's clock)
	Seq      uint64 // send order within the source group
	SrcGroup int

	Src, Dst       int   // model addresses (mesh nodes)
	Size           int64 // message payload size
	NoSendOverhead bool  // sender software overhead already paid (mesh.Transfer)

	Fn  func()    // delivery closure, or
	CFn func(any) // pooled-args delivery callback
	Arg any
}

// Resolver turns a drained Post into a delivery: the target group, the
// arrival time, and whether to deliver at all (a message to a dead node
// is dropped). Resolve is called on one thread, in canonical
// (time, shard, seq) order, and is the only place cross-group model
// state (link occupancy clocks, message counters) may be mutated.
type Resolver interface {
	Resolve(p *Post) (group int, at Time, deliver bool)
}

// ShardSet runs a fixed partition of the simulation — one Kernel per
// node group — under the conservative-lookahead protocol above. The
// partition is part of the model (it never changes with the worker
// count); Run's workers parameter only sets how many OS threads advance
// the groups inside each window.
type ShardSet struct {
	kernels   []*Kernel
	lookahead Time
	resolver  Resolver

	outbox  [][]*Post // per source group, appended in send order during rounds
	head    []int     // drain cursor per outbox
	postSeq []uint64  // per-group send sequence (the "seq" of the total order)
	free    [][]*Post // per-group Post pools; filled by drain, drained by Post
	errs    []error   // per-group RunUntil results for the current round

	merge     []int32    // reused drain merge heap over source groups with pending posts
	batch     [][]*event // reused per-destination-group delivery batches (booked, not yet queued)
	drainWall time.Duration
}

// NewShardSet builds groups empty kernels coupled by lookahead, using
// the default event queue (heap). The lookahead must be positive: a
// zero bound would admit same-instant cross-group delivery, which the
// windowed protocol cannot order.
func NewShardSet(groups int, lookahead Time) *ShardSet {
	return NewShardSetQueue(groups, lookahead, QueueHeap)
}

// NewShardSetQueue is NewShardSet with every group's kernel on the
// named event queue implementation (see NewKernelQueue).
func NewShardSetQueue(groups int, lookahead Time, queue string) *ShardSet {
	if groups < 1 {
		panic(fmt.Sprintf("sim: shard set needs at least one group, got %d", groups))
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("sim: shard lookahead must be positive, got %v", lookahead))
	}
	ss := &ShardSet{
		kernels:   make([]*Kernel, groups),
		lookahead: lookahead,
		outbox:    make([][]*Post, groups),
		head:      make([]int, groups),
		postSeq:   make([]uint64, groups),
		free:      make([][]*Post, groups),
		errs:      make([]error, groups),
		merge:     make([]int32, 0, groups),
		batch:     make([][]*event, groups),
	}
	for g := range ss.kernels {
		ss.kernels[g] = NewKernelQueue(queue)
	}
	return ss
}

// QueueName reports which event queue implementation the group kernels
// run on.
func (ss *ShardSet) QueueName() string { return ss.kernels[0].QueueName() }

// Groups reports the number of node groups in the partition.
func (ss *ShardSet) Groups() int { return len(ss.kernels) }

// Kernel returns group g's kernel. Model components are built on the
// kernel of the group that owns them and never touch another group's.
func (ss *ShardSet) Kernel(g int) *Kernel { return ss.kernels[g] }

// Lookahead reports the cross-group delivery lower bound.
func (ss *ShardSet) Lookahead() Time { return ss.lookahead }

// SetResolver installs the model's post resolver (the mesh).
func (ss *ShardSet) SetResolver(r Resolver) { ss.resolver = r }

// Post books a cross-group message sent now by group src and returns
// the pooled Post for the caller to fill in. Must be called from model
// code executing on group src (its worker owns the outbox during the
// round). The post is timestamped with the group's current clock and
// the group's next send sequence number, which together with src form
// its position in the canonical drain order.
func (ss *ShardSet) Post(src int) *Post {
	var p *Post
	if fl := ss.free[src]; len(fl) > 0 {
		p = fl[len(fl)-1]
		fl[len(fl)-1] = nil
		ss.free[src] = fl[:len(fl)-1]
	} else {
		p = &Post{}
	}
	ss.postSeq[src]++
	p.T = ss.kernels[src].now
	p.Seq = ss.postSeq[src]
	p.SrcGroup = src
	ss.outbox[src] = append(ss.outbox[src], p)
	return p
}

// Run executes the whole simulation with the given number of parallel
// workers and returns the first process failure or a deadlock error,
// like Kernel.Run. Results are bit-identical for any workers ≥ 1:
// groups are assigned to workers statically (group g to worker g mod
// workers) and each group's execution is single-threaded either way.
// workers is clamped to [1, Groups()]; workers == 1 runs inline with no
// goroutines at all.
func (ss *ShardSet) Run(workers int) error {
	G := len(ss.kernels)
	if workers < 1 {
		workers = 1
	}
	if workers > G {
		workers = G
	}

	var start []chan Time
	var done chan struct{}
	if workers > 1 {
		start = make([]chan Time, workers)
		done = make(chan struct{})
		for w := 0; w < workers; w++ {
			c := make(chan Time)
			start[w] = c
			go func(w int) {
				for horizon := range c {
					for g := w; g < G; g += workers {
						ss.errs[g] = ss.kernels[g].RunUntil(horizon - 1)
					}
					done <- struct{}{}
				}
			}(w)
		}
		defer func() {
			for _, c := range start {
				close(c)
			}
		}()
	}

	for {
		// M: earliest pending event anywhere. Outboxes are empty here (the
		// previous round drained them), so an empty M means quiescence.
		var m Time
		any := false
		for _, k := range ss.kernels {
			if t, ok := k.peek(); ok && (!any || t < m) {
				m, any = t, true
			}
		}
		if !any {
			break
		}
		horizon := m + ss.lookahead // exclusive: the round runs events with t < horizon

		if workers == 1 {
			for g := 0; g < G; g++ {
				ss.errs[g] = ss.kernels[g].RunUntil(horizon - 1)
			}
		} else {
			for _, c := range start {
				c <- horizon
			}
			for range start {
				<-done
			}
		}
		// A process panic anywhere ends the run. With simultaneous failures
		// the lowest group's error is reported — a canonical choice, so even
		// failure output is identical at every worker count.
		for g := 0; g < G; g++ {
			if ss.errs[g] != nil {
				return ss.errs[g]
			}
		}
		ss.drain()
	}

	live, daemons := 0, 0
	for _, k := range ss.kernels {
		live += k.live
		daemons += k.daemons
	}
	if live > daemons {
		return fmt.Errorf("sim: deadlock: %d process(es) blocked with no pending events across %d shards",
			live-daemons, G)
	}
	return nil
}

// srcLess orders two source groups by their head posts: earliest send
// time wins, lowest group breaks ties. Each outbox is sorted by
// construction (clocks only move forward within a group, and Seq
// increments per send), so comparing heads is comparing the groups'
// next posts in the canonical (time, shard, seq) order.
func (ss *ShardSet) srcLess(a, b int32) bool {
	ta := ss.outbox[a][ss.head[a]].T
	tb := ss.outbox[b][ss.head[b]].T
	if ta != tb {
		return ta < tb
	}
	return a < b
}

// mergeFix restores the merge-heap property at index i by sifting down.
func (ss *ShardSet) mergeFix(i int) {
	h := ss.merge
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && ss.srcLess(h[l], h[min]) {
			min = l
		}
		if r < n && ss.srcLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// drain resolves every outboxed post of the finished round in the
// canonical (time, shard, seq) total order. Single-threaded: this is
// the only code that runs between rounds, so the resolver may safely
// touch shared model state.
//
// The merge runs over per-source FIFO runs (posts are already bucketed
// per group at send time) through a small index heap keyed on each
// source's head post — O(P log A) for P posts over A active sources,
// instead of scanning every group per post. Deliveries are booked on
// their target kernel in merge order — fixing each event's seq, and
// hence the documented total order — but the queue insertions are
// batched per destination group and flushed after the merge: insertion
// order cannot affect the (t, seq) priority, so the batching is
// invisible to the schedule while keeping the queue work sequential
// per kernel. All merge and batch storage is reused across rounds.
func (ss *ShardSet) drain() {
	G := len(ss.outbox)
	h := ss.merge[:0]
	for g := 0; g < G; g++ {
		if len(ss.outbox[g]) > 0 {
			h = append(h, int32(g))
		}
	}
	if len(h) == 0 {
		ss.merge = h
		return
	}
	start := time.Now()
	if ss.resolver == nil {
		panic("sim: shard set has posts but no resolver")
	}
	// Heapify (sources arrive in ascending group order, which is not
	// necessarily head-time order).
	ss.merge = h
	for i := len(h)/2 - 1; i >= 0; i-- {
		ss.mergeFix(i)
	}
	for len(ss.merge) > 0 {
		g := ss.merge[0]
		p := ss.outbox[g][ss.head[g]]
		ss.outbox[g][ss.head[g]] = nil
		ss.head[g]++
		if ss.head[g] < len(ss.outbox[g]) {
			ss.mergeFix(0)
		} else {
			n := len(ss.merge) - 1
			ss.merge[0] = ss.merge[n]
			ss.merge = ss.merge[:n]
			ss.mergeFix(0)
		}

		grp, at, deliver := ss.resolver.Resolve(p)
		if deliver {
			if at < p.T+ss.lookahead {
				panic(fmt.Sprintf(
					"sim: lookahead violation: post sent at %v resolves to arrival %v, below the %v bound",
					p.T, at, ss.lookahead))
			}
			if p.CFn != nil || p.Fn != nil {
				e := ss.kernels[grp].book(at)
				if p.CFn != nil {
					e.cfn, e.arg = p.CFn, p.Arg
				} else {
					e.fn = p.Fn
				}
				ss.batch[grp] = append(ss.batch[grp], e)
			}
		}
		p.Fn, p.CFn, p.Arg = nil, nil, nil
		ss.free[p.SrcGroup] = append(ss.free[p.SrcGroup], p)
	}
	for grp, evs := range ss.batch {
		if len(evs) == 0 {
			continue
		}
		k := ss.kernels[grp]
		for i, e := range evs {
			k.qpush(e)
			evs[i] = nil
		}
		ss.batch[grp] = evs[:0]
	}
	for g := 0; g < G; g++ {
		ss.outbox[g] = ss.outbox[g][:0]
		ss.head[g] = 0
	}
	ss.drainWall += time.Since(start)
}

// DrainWall reports the cumulative wall-clock time spent inside the
// single-threaded barrier drain — the serial fraction that bounds
// parallel speedup (runbench records it as barrier_drain_sec). It is
// measurement, not model state: the simulation cannot observe it.
func (ss *ShardSet) DrainWall() time.Duration { return ss.drainWall }

// MaxPending reports the deepest any group's event queue ever got.
func (ss *ShardSet) MaxPending() int {
	max := 0
	for _, k := range ss.kernels {
		if n := k.MaxPending(); n > max {
			max = n
		}
	}
	return max
}

// Executed reports the total events retired across all groups.
func (ss *ShardSet) Executed() uint64 {
	var n uint64
	for _, k := range ss.kernels {
		n += k.Executed()
	}
	return n
}

// PerGroupExecuted reports each group's retired event count, in group
// order — the load-balance evidence behind any parallel speedup claim.
func (ss *ShardSet) PerGroupExecuted() []uint64 {
	out := make([]uint64, len(ss.kernels))
	for g, k := range ss.kernels {
		out[g] = k.Executed()
	}
	return out
}

// Fingerprint digests the terminal state of every group's kernel plus
// the cross-group send sequences, in group order. Like
// Kernel.Fingerprint it is the run-twice (and run-at-any-width)
// determinism oracle for sharded executions.
func (ss *ShardSet) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for g, k := range ss.kernels {
		put(k.Fingerprint())
		put(ss.postSeq[g])
	}
	return h.Sum64()
}
