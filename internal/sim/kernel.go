package sim

import (
	"fmt"
	"hash/fnv"
)

// event is a scheduled callback. Events are pooled on the kernel's free
// list: every simulated event crosses Schedule (At/After) and the run
// loop, so reusing the structs removes one heap allocation per event —
// the dominant allocation of a simulation.
//
// An event carries either a plain closure (fn) or a pooled-args callback
// (cfn/ecfn with arg, and err for ecfn). The callback forms exist so hot
// paths can schedule without constructing a closure: a func(any) is a
// shared top-level function and arg is a pointer to pooled state, so the
// whole At/dispatch round trip allocates nothing.
type event struct {
	t    Time
	seq  uint64 // tie-breaker: see the (time, seq) total order below
	fn   func()
	cfn  func(any)
	ecfn func(any, error)
	arg  any
	err  error
}

// eventHeap is a min-heap ordered by (t, seq), with the sift operations
// written out directly rather than through container/heap to keep the
// per-event interface boxing and indirect calls off the hot path. The
// ordering is identical to the container/heap formulation it replaces.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

// push adds e and restores the heap by sifting it up.
func (h *eventHeap) push(e *event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() *event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.less(l, min) {
			min = l
		}
		if r < n && q.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// Kernel is a discrete-event simulation scheduler. It is not safe for
// concurrent use from multiple OS threads; all concurrency in a simulation
// is expressed through processes, which the kernel interleaves
// deterministically one at a time.
//
// Simultaneous events execute in an explicit documented total order,
// never by heap insertion accident: (time, seq), where seq is the
// kernel's scheduling sequence number — events booked earlier run
// earlier at the same instant. In a sharded execution (ShardSet) each
// group's kernel keeps its own seq counter, and cross-group deliveries
// extend this to the global (time, shard, seq) order documented in
// shard.go: a delivery is booked on its target kernel at the round
// barrier, in canonical merge order, so the seq it receives — and hence
// its rank among same-instant events — is a pure function of the
// simulation's data, identical at every worker count.
type Kernel struct {
	now        Time
	seq        uint64
	events     eventHeap
	ladder     *ladderQueue  // non-nil when the ladder queue is selected; events is unused then
	yield      chan struct{} // hand-off channel shared by all procs
	live       int           // procs started and not yet finished
	daemons    int           // live procs marked as daemons (service loops)
	executed   uint64        // events run so far
	failed     error         // first process panic, if any
	free       []*event      // recycled event structs (see event)
	maxPending int           // high-water mark of the pending-event count
}

// Event queue implementations selectable by NewKernelQueue and, through
// machine.Config.Queue, by every scenario. Both order events by the
// identical (time, seq) total order — the choice changes per-event cost,
// never the schedule — so fingerprints and trace digests are
// bit-identical across queues and detgate pins that equivalence.
const (
	QueueHeap   = "heap"   // binary min-heap, O(log n) per operation (the default)
	QueueLadder = "ladder" // ladder queue, amortized O(1) per operation (see ladder.go)
)

// NewKernel returns an empty kernel with the clock at zero, using the
// default binary-heap event queue.
func NewKernel() *Kernel {
	return NewKernelQueue(QueueHeap)
}

// NewKernelQueue returns an empty kernel using the named event queue
// implementation: QueueHeap, QueueLadder, or "" for the default (heap).
// Unknown names panic — a typo in a config must not silently fall back.
func NewKernelQueue(queue string) *Kernel {
	k := &Kernel{yield: make(chan struct{})}
	switch queue {
	case "", QueueHeap:
	case QueueLadder:
		k.ladder = newLadderQueue()
	default:
		panic(fmt.Sprintf("sim: unknown event queue implementation %q", queue))
	}
	return k
}

// QueueName reports which event queue implementation the kernel runs on.
func (k *Kernel) QueueName() string {
	if k.ladder != nil {
		return QueueLadder
	}
	return QueueHeap
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// peek returns the time of the earliest pending event, if any. The
// sharded scheduler uses it to compute each round's lookahead window.
func (k *Kernel) peek() (Time, bool) {
	if k.ladder != nil {
		return k.ladder.peek()
	}
	if len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].t, true
}

// qpush inserts a booked event into whichever queue the kernel runs on
// and tracks the pending-count high-water mark.
func (k *Kernel) qpush(e *event) {
	if k.ladder != nil {
		k.ladder.push(e)
		if k.ladder.n > k.maxPending {
			k.maxPending = k.ladder.n
		}
		return
	}
	k.events.push(e)
	if n := len(k.events); n > k.maxPending {
		k.maxPending = n
	}
}

// qpop removes and returns the earliest pending event. Both queues pop
// in the identical (time, seq) order; callers must know the queue is
// non-empty.
func (k *Kernel) qpop() *event {
	if k.ladder != nil {
		return k.ladder.pop()
	}
	return k.events.pop()
}

// Pending reports the number of events waiting to run.
func (k *Kernel) Pending() int {
	if k.ladder != nil {
		return k.ladder.n
	}
	return len(k.events)
}

// MaxPending reports the high-water mark of the pending-event count —
// the deepest the event queue ever got. It is a deterministic property
// of the schedule (runbench records it as max_queue_depth).
func (k *Kernel) MaxPending() int { return k.maxPending }

// Live reports the number of processes that have been created and have not
// yet returned. After Run, a nonzero value means some processes are blocked
// forever (a modeling deadlock).
func (k *Kernel) Live() int { return k.live }

// Daemons reports how many of the live processes are daemons (service
// loops that legitimately outlive the workload). A quiescent simulation
// has Live() == Daemons().
func (k *Kernel) Daemons() int { return k.daemons }

// Executed reports the number of events the kernel has run. Together with
// the clock and the sequence counter it summarizes the whole schedule: two
// runs of the same model that disagree anywhere disagree here.
func (k *Kernel) Executed() uint64 { return k.executed }

// Fingerprint digests the kernel's terminal state — clock, total events
// scheduled, events executed, and residual process census — for run-twice
// determinism checks. It is not a hash of the event history itself; the
// per-event record lives in the trace log, which has its own digest.
func (k *Kernel) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{uint64(k.now), k.seq, k.executed, uint64(k.live), uint64(k.daemons)} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// book assigns the next sequence number to a pooled event at absolute
// time t without inserting it into the queue. Booking in the past
// (t < Now) panics: it would silently reorder causality. The split from
// queue insertion exists for the shard barrier drain, which books
// deliveries in canonical merge order (fixing their seq, and hence
// their rank among same-instant events) but batches the queue inserts
// per destination group — insertion order cannot affect the (t, seq)
// priority, so the batching is invisible to the schedule.
func (k *Kernel) book(t Time) *event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = &event{}
	}
	e.t, e.seq = t, k.seq
	return e
}

// schedule books a pooled event at absolute time t, inserts it, and
// returns it for the caller to attach a callback. The queue orders
// events by (t, seq) only, so pushing before the callback fields are
// set is safe.
func (k *Kernel) schedule(t Time) *event {
	e := k.book(t)
	k.qpush(e)
	return e
}

// At schedules fn to run at absolute time t.
func (k *Kernel) At(t Time, fn func()) {
	k.schedule(t).fn = fn
}

// After schedules fn to run d after the current time. Negative d panics.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// AtCall schedules fn(arg) to run at absolute time t. It is At without
// the closure: fn is typically a shared top-level function and arg a
// pointer to pooled state, so the call allocates nothing. Scheduling
// order, timing, and fingerprint accounting are identical to At.
func (k *Kernel) AtCall(t Time, fn func(any), arg any) {
	e := k.schedule(t)
	e.cfn, e.arg = fn, arg
}

// AfterCall is AtCall relative to the current time. Negative d panics.
func (k *Kernel) AfterCall(d Time, fn func(any), arg any) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.AtCall(k.now+d, fn, arg)
}

// AfterCallErr schedules fn(arg, err) d after the current time, carrying
// an error value in the event itself. It exists for completion paths
// (signal callbacks, device done notifications) that deliver an error to
// pooled state without closing over it. Negative d panics.
func (k *Kernel) AfterCallErr(d Time, fn func(any, error), arg any, err error) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e := k.schedule(k.now + d)
	e.ecfn, e.arg, e.err = fn, arg, err
}

// Run executes events until none remain, then returns the first process
// failure (panic) if any occurred. Processes still blocked when the event
// queue drains are reported as a deadlock error.
func (k *Kernel) Run() error {
	return k.RunUntil(Time(1)<<62 - 1)
}

// RunUntil executes events with time ≤ deadline. The clock stops at the
// last executed event (or the deadline if nothing ran past it). Unlike Run,
// a drained queue with live processes is not an error when the deadline
// cut the run short.
func (k *Kernel) RunUntil(deadline Time) error {
	for {
		t, ok := k.peek()
		if !ok {
			break
		}
		if t > deadline {
			k.now = deadline
			return k.failed
		}
		e := k.qpop()
		k.now = e.t
		k.executed++
		fn, cfn, ecfn, arg, err := e.fn, e.cfn, e.ecfn, e.arg, e.err
		// Recycle before dispatch: the callback's own Schedule calls can
		// reuse the struct immediately. Clearing the callback fields drops
		// closure and arg references so pooled events do not pin dead state.
		e.fn, e.cfn, e.ecfn, e.arg, e.err = nil, nil, nil, nil, nil
		k.free = append(k.free, e)
		switch {
		case fn != nil:
			fn()
		case ecfn != nil:
			ecfn(arg, err)
		default:
			cfn(arg)
		}
		if k.failed != nil {
			return k.failed
		}
	}
	if k.live > k.daemons && deadline >= Time(1)<<62-1 {
		return fmt.Errorf("sim: deadlock: %d process(es) blocked with no pending events at %v",
			k.live-k.daemons, k.now)
	}
	return k.failed
}
