package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
)

// event is a scheduled callback.
type event struct {
	t   Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func()
}

// eventHeap is a min-heap ordered by (t, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation scheduler. It is not safe for
// concurrent use from multiple OS threads; all concurrency in a simulation
// is expressed through processes, which the kernel interleaves
// deterministically one at a time.
type Kernel struct {
	now      Time
	seq      uint64
	events   eventHeap
	yield    chan struct{} // hand-off channel shared by all procs
	live     int           // procs started and not yet finished
	daemons  int           // live procs marked as daemons (service loops)
	executed uint64        // events run so far
	failed   error         // first process panic, if any
}

// NewKernel returns an empty kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of events waiting to run.
func (k *Kernel) Pending() int { return len(k.events) }

// Live reports the number of processes that have been created and have not
// yet returned. After Run, a nonzero value means some processes are blocked
// forever (a modeling deadlock).
func (k *Kernel) Live() int { return k.live }

// Daemons reports how many of the live processes are daemons (service
// loops that legitimately outlive the workload). A quiescent simulation
// has Live() == Daemons().
func (k *Kernel) Daemons() int { return k.daemons }

// Executed reports the number of events the kernel has run. Together with
// the clock and the sequence counter it summarizes the whole schedule: two
// runs of the same model that disagree anywhere disagree here.
func (k *Kernel) Executed() uint64 { return k.executed }

// Fingerprint digests the kernel's terminal state — clock, total events
// scheduled, events executed, and residual process census — for run-twice
// determinism checks. It is not a hash of the event history itself; the
// per-event record lives in the trace log, which has its own digest.
func (k *Kernel) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{uint64(k.now), k.seq, k.executed, uint64(k.live), uint64(k.daemons)} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it would silently reorder causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{t: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d panics.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// Run executes events until none remain, then returns the first process
// failure (panic) if any occurred. Processes still blocked when the event
// queue drains are reported as a deadlock error.
func (k *Kernel) Run() error {
	return k.RunUntil(Time(1)<<62 - 1)
}

// RunUntil executes events with time ≤ deadline. The clock stops at the
// last executed event (or the deadline if nothing ran past it). Unlike Run,
// a drained queue with live processes is not an error when the deadline
// cut the run short.
func (k *Kernel) RunUntil(deadline Time) error {
	for len(k.events) > 0 {
		e := k.events[0]
		if e.t > deadline {
			k.now = deadline
			return k.failed
		}
		heap.Pop(&k.events)
		k.now = e.t
		k.executed++
		e.fn()
		if k.failed != nil {
			return k.failed
		}
	}
	if k.live > k.daemons && deadline >= Time(1)<<62-1 {
		return fmt.Errorf("sim: deadlock: %d process(es) blocked with no pending events at %v",
			k.live-k.daemons, k.now)
	}
	return k.failed
}
