package sim

import (
	"fmt"
	"runtime/debug"
)

// Proc is a simulated process: a goroutine that the kernel runs with
// strict hand-off, so at most one process (or event callback) executes at
// any real instant. Blocking methods (Sleep, Signal.Wait, Queue.Get, ...)
// must only be called from the process's own goroutine.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	daemon bool
}

// Go creates a process named name and schedules it to start at the current
// simulated time. fn runs on its own goroutine under kernel hand-off; when
// fn returns the process ends. A panic in fn aborts the whole simulation
// and is reported by Run.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	return k.start(name, false, fn)
}

// GoDaemon is Go for service loops that never return (device servers,
// request threads). A simulation whose only remaining blocked processes
// are daemons has simply gone quiet, not deadlocked, so Run does not
// report it as an error.
func (k *Kernel) GoDaemon(name string, fn func(p *Proc)) *Proc {
	return k.start(name, true, fn)
}

func (k *Kernel) start(name string, daemon bool, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{}), daemon: daemon}
	k.live++
	if daemon {
		k.daemons++
	}
	k.After(0, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil && k.failed == nil {
					k.failed = fmt.Errorf("sim: process %q panicked at %v: %v\n%s",
						p.name, k.now, r, debug.Stack())
				}
				k.live--
				if p.daemon {
					k.daemons--
				}
				k.yield <- struct{}{}
			}()
			fn(p)
		}()
		<-k.yield // run the process until it blocks or finishes
	})
	return p
}

// Name returns the process's name.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel the process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// block suspends the process, returning control to the kernel, until some
// event calls wake.
func (p *Proc) block() {
	p.k.yield <- struct{}{}
	<-p.resume
}

// wake resumes a blocked process and waits for it to block again or
// finish. It must be called from kernel context (an event callback).
func (k *Kernel) wake(p *Proc) {
	p.resume <- struct{}{}
	<-k.yield
}

// wakeProc is the shared pooled-args callback that resumes a blocked
// process; scheduling it with AfterCall(d, wakeProc, p) is the
// allocation-free form of After(d, func() { k.wake(p) }).
func wakeProc(a any) {
	p := a.(*Proc)
	p.k.wake(p)
}

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q sleeping negative duration %v", p.name, d))
	}
	p.k.AfterCall(d, wakeProc, p)
	p.block()
}

// Yield suspends the process until all other work scheduled at the current
// instant has run.
func (p *Proc) Yield() { p.Sleep(0) }
