package sim

import (
	"fmt"
	"testing"
)

// xorshift is the deterministic pseudo-random source the queue tests
// share; no math/rand so the streams are pinned byte-for-byte.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// queueUnderTest abstracts the two implementations for differential
// tests. Both must pop the identical (t, seq) order.
type queueUnderTest interface {
	push(*event)
	pop() *event
}

// TestQueueDifferentialDistributions drives the ladder queue and the
// heap with identical (t, seq) streams across the time distributions
// that exercise every ladder path — uniform narrow and wide spans,
// heavy same-instant ties, bimodal near+far (the DownDeadline shape) —
// first push-all/pop-all, then a hold-model interleaving, asserting the
// pop sequences match exactly.
func TestQueueDifferentialDistributions(t *testing.T) {
	dists := []struct {
		name string
		gen  func(r *xorshift) Time
	}{
		{"narrow", func(r *xorshift) Time { return Time(r.next() % 1000) }},
		{"wide", func(r *xorshift) Time { return Time(r.next() % (1 << 40)) }},
		{"ties", func(r *xorshift) Time { return Time(r.next()%16) * 1000 }},
		{"constant", func(r *xorshift) Time { return 42 }},
		{"bimodal", func(r *xorshift) Time {
			if r.next()%8 == 0 {
				return Time(1<<40 + r.next()%1000)
			}
			return Time(r.next() % 1000)
		}},
	}
	sizes := []int{1, 10, 1000, 30000}
	for _, d := range dists {
		for _, n := range sizes {
			t.Run(fmt.Sprintf("%s/n=%d", d.name, n), func(t *testing.T) {
				hp := &eventHeap{}
				lq := newLadderQueue()
				r := xorshift(0xdeadbeef ^ uint64(n))
				var seq uint64
				push := func(tm Time) {
					seq++
					hp.push(&event{t: tm, seq: seq})
					lq.push(&event{t: tm, seq: seq})
				}
				popBoth := func() Time {
					a, b := hp.pop(), lq.pop()
					if a.t != b.t || a.seq != b.seq {
						t.Fatalf("pop mismatch: heap (%v, %d) vs ladder (%v, %d)", a.t, a.seq, b.t, b.seq)
					}
					return a.t
				}

				for i := 0; i < n; i++ {
					push(d.gen(&r))
				}
				// Hold-model interleaving: pop the earliest, push a
				// replacement later than it.
				for i := 0; i < 2*n; i++ {
					tm := popBoth()
					push(tm + d.gen(&r)%1000 + 1)
				}
				for i := 0; i < n; i++ {
					popBoth()
				}
				if tm, ok := lq.peek(); ok {
					t.Fatalf("ladder not empty after drain: peek %v", tm)
				}
				if lq.n != 0 || len(*hp) != 0 {
					t.Fatalf("residual events: ladder %d, heap %d", lq.n, len(*hp))
				}
			})
		}
	}
}

// TestLadderFarFutureTimer pins the epoch/overflow story: one resident
// far-future timer (the DownDeadline shape) must not break ordering —
// and must not make near-time churn grow the bottom array without
// bound.
func TestLadderFarFutureTimer(t *testing.T) {
	lq := newLadderQueue()
	var seq uint64
	push := func(tm Time) {
		seq++
		lq.push(&event{t: tm, seq: seq})
	}
	const far = Time(1) << 40
	push(far)
	for i := 0; i < 10000; i++ {
		push(Time(i))
		e := lq.pop()
		if e.t != Time(i) {
			t.Fatalf("near churn pop %d: got t=%v", i, e.t)
		}
	}
	if e := lq.pop(); e.t != far {
		t.Fatalf("far timer popped at t=%v, want %v", e.t, far)
	}
	if got := len(lq.bottom); got > 64 {
		t.Fatalf("bottom grew to %d slots under near-time churn; dead-prefix reclamation is broken", got)
	}
}

// TestNewKernelQueueNames: "" and "heap" select the heap, "ladder" the
// ladder, anything else is a loud config error.
func TestNewKernelQueueNames(t *testing.T) {
	if got := NewKernelQueue("").QueueName(); got != QueueHeap {
		t.Fatalf("default queue = %q, want %q", got, QueueHeap)
	}
	if got := NewKernelQueue(QueueHeap).QueueName(); got != QueueHeap {
		t.Fatalf("heap queue = %q", got)
	}
	if got := NewKernelQueue(QueueLadder).QueueName(); got != QueueLadder {
		t.Fatalf("ladder queue = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unknown queue name")
		}
	}()
	NewKernelQueue("splay")
}

// TestKernelQueueEquivalence runs the same self-rescheduling workload on
// a heap kernel and a ladder kernel and requires identical execution
// records and fingerprints — the kernel-level differential the detgate
// golden matrix extends to full scenarios.
func TestKernelQueueEquivalence(t *testing.T) {
	type rec struct {
		t  Time
		id int
	}
	run := func(queue string) ([]rec, uint64) {
		k := NewKernelQueue(queue)
		var out []rec
		r := xorshift(0x12345)
		id := 0
		var spawn func(depth int)
		spawn = func(depth int) {
			me := id
			id++
			k.After(Time(r.next()%5000), func() {
				out = append(out, rec{k.Now(), me})
				if depth < 4 && r.next()%3 == 0 {
					spawn(depth + 1)
					spawn(depth + 1)
				}
			})
		}
		for i := 0; i < 200; i++ {
			spawn(0)
		}
		// A far-future daemon-style timer amid the churn.
		k.After(10*Second, func() { out = append(out, rec{k.Now(), -1}) })
		if err := k.Run(); err != nil {
			t.Fatalf("%s run: %v", queue, err)
		}
		return out, k.Fingerprint()
	}
	h, hfp := run(QueueHeap)
	l, lfp := run(QueueLadder)
	if hfp != lfp {
		t.Fatalf("fingerprint mismatch: heap %016x, ladder %016x", hfp, lfp)
	}
	if len(h) != len(l) {
		t.Fatalf("executed %d events on heap, %d on ladder", len(h), len(l))
	}
	for i := range h {
		if h[i] != l[i] {
			t.Fatalf("execution %d: heap %+v, ladder %+v", i, h[i], l[i])
		}
	}
}

// TestKernelMaxPending: the high-water mark counts the deepest the
// queue got, on both implementations.
func TestKernelMaxPending(t *testing.T) {
	for _, queue := range []string{QueueHeap, QueueLadder} {
		k := NewKernelQueue(queue)
		for i := 0; i < 37; i++ {
			k.At(Time(i), func() {})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if got := k.MaxPending(); got != 37 {
			t.Fatalf("%s MaxPending = %d, want 37", queue, got)
		}
		if got := k.Pending(); got != 0 {
			t.Fatalf("%s Pending after drain = %d", queue, got)
		}
	}
}

// TestShardSetQueueEquivalence: a sharded ping-pong on ladder kernels
// matches the heap fingerprint, and the drain-wall/max-depth telemetry
// is populated.
func TestShardSetQueueEquivalence(t *testing.T) {
	const L = Time(10)
	run := func(queue string) (*ShardSet, uint64) {
		ss := NewShardSetQueue(4, L, queue)
		if got := ss.QueueName(); got != queue {
			t.Fatalf("QueueName = %q, want %q", got, queue)
		}
		ss.SetResolver(echoResolver{l: L})
		n := 0
		var bounce func(g int) func()
		bounce = func(g int) func() {
			return func() {
				n++
				if n < 200 {
					p := ss.Post(g)
					p.Dst = (g + 1) % 4
					p.Fn = bounce((g + 1) % 4)
				}
			}
		}
		ss.Kernel(0).At(0, bounce(0))
		if err := ss.Run(2); err != nil {
			t.Fatal(err)
		}
		return ss, ss.Fingerprint()
	}
	hss, hfp := run(QueueHeap)
	lss, lfp := run(QueueLadder)
	if hfp != lfp {
		t.Fatalf("sharded fingerprint mismatch: heap %016x, ladder %016x", hfp, lfp)
	}
	for _, ss := range []*ShardSet{hss, lss} {
		if ss.MaxPending() < 1 {
			t.Fatalf("MaxPending = %d, want >= 1", ss.MaxPending())
		}
		if ss.DrainWall() <= 0 {
			t.Fatalf("DrainWall = %v, want > 0", ss.DrainWall())
		}
	}
}
