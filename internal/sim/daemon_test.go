package sim

import "testing"

func TestDaemonDoesNotDeadlockRun(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	// A service loop that would wait forever.
	k.GoDaemon("server", func(p *Proc) {
		for {
			q.Get(p)
		}
	})
	done := false
	k.Go("client", func(p *Proc) {
		q.Put(1)
		p.Sleep(Millisecond)
		done = true
	})
	if err := k.Run(); err != nil {
		t.Fatalf("daemon counted as deadlock: %v", err)
	}
	if !done {
		t.Fatal("client never ran")
	}
}

func TestWorkerBlockedIsStillDeadlock(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	k.GoDaemon("server", func(p *Proc) {
		for {
			q.Get(p)
		}
	})
	other := NewQueue[int](k)
	k.Go("stuck-worker", func(p *Proc) {
		other.Get(p) // nobody ever puts
	})
	if err := k.Run(); err == nil {
		t.Fatal("blocked non-daemon next to a daemon not reported as deadlock")
	}
}

func TestDaemonPanicStillReported(t *testing.T) {
	k := NewKernel()
	k.GoDaemon("bad", func(p *Proc) {
		p.Sleep(Second)
		panic("daemon crashed")
	})
	if err := k.Run(); err == nil {
		t.Fatal("daemon panic swallowed")
	}
}

func TestRunUntilLeavesDaemonsQuiet(t *testing.T) {
	k := NewKernel()
	ticks := 0
	k.GoDaemon("ticker", func(p *Proc) {
		for {
			p.Sleep(Second)
			ticks++
		}
	})
	if err := k.RunUntil(3 * Second); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Fatalf("ticks = %d", ticks)
	}
}
