package sim

import "testing"

// BenchmarkSchedule measures the Schedule (At) + dispatch cycle in the
// steady state, where every event struct comes off the kernel free list:
// allocs/op is the number to watch (0 once the pool is warm).
func BenchmarkSchedule(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.At(k.Now(), fn)
		if k.Pending() >= 1024 {
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventThroughput measures raw scheduler throughput: how many
// events per second the kernel retires.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			k.After(1, fire)
		}
	}
	b.ResetTimer()
	k.After(1, fire)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueuePushPop compares the two event-queue implementations
// head to head on the classic hold model — pop the earliest event,
// reschedule it a pseudo-random increment later — at three resident
// depths. The heap pays an O(log n) sift per operation; the ladder is
// amortized O(1), and its steady state must allocate nothing (the
// 1k/100k variants are gated at 0 allocs/op by detgate -allocs).
func BenchmarkQueuePushPop(b *testing.B) {
	depths := []struct {
		name string
		n    int
	}{{"1k", 1 << 10}, {"100k", 100_000}, {"1M", 1 << 20}}
	for _, impl := range []string{QueueHeap, QueueLadder} {
		for _, d := range depths {
			b.Run(impl+"/depth="+d.name, func(b *testing.B) {
				benchQueuePushPop(b, impl, d.n)
			})
		}
	}
}

func benchQueuePushPop(b *testing.B, impl string, depth int) {
	var q interface {
		push(*event)
		pop() *event
	}
	switch impl {
	case QueueHeap:
		h := make(eventHeap, 0, depth+1)
		q = &h
	case QueueLadder:
		q = newLadderQueue()
	}
	// Deterministic xorshift increments; no wall clock or math/rand so
	// the run is pinned and alloc-gateable.
	rnd := uint64(0x9e3779b97f4a7c15)
	next := func() Time {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return Time(rnd%100_003 + 1)
	}
	var seq uint64
	var now Time
	for i := 0; i < depth; i++ {
		seq++
		q.push(&event{t: now + next(), seq: seq})
	}
	hold := func() {
		e := q.pop()
		now = e.t
		seq++
		e.t, e.seq = now+next(), seq
		q.push(e)
	}
	// One full cycle over the resident set warms every bucket, the
	// bottom run, and the sort scratch to steady-state capacity.
	for i := 0; i < depth; i++ {
		hold()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hold()
	}
}

// BenchmarkHeapChurn exercises the event heap with a wide pending set.
func BenchmarkHeapChurn(b *testing.B) {
	k := NewKernel()
	for i := 0; i < 1024; i++ {
		i := i
		var refire func()
		count := 0
		refire = func() {
			count++
			if count*1024 < b.N {
				k.After(Time(1+i%7), refire)
			}
		}
		k.After(Time(i), refire)
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSwitch measures a full block/wake round trip through the
// goroutine hand-off.
func BenchmarkProcSwitch(b *testing.B) {
	k := NewKernel()
	k.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueHandoff measures producer/consumer throughput across two
// processes.
func BenchmarkQueueHandoff(b *testing.B) {
	k := NewKernel()
	q := NewQueue[int](k)
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSemaphore measures contended acquire/release cycles.
func BenchmarkSemaphore(b *testing.B) {
	k := NewKernel()
	sem := NewSemaphore(k, 2)
	for g := 0; g < 4; g++ {
		k.Go("worker", func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				sem.Acquire(p, 1)
				p.Sleep(1)
				sem.Release(1)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
