package sim

import "testing"

// BenchmarkSchedule measures the Schedule (At) + dispatch cycle in the
// steady state, where every event struct comes off the kernel free list:
// allocs/op is the number to watch (0 once the pool is warm).
func BenchmarkSchedule(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.At(k.Now(), fn)
		if k.Pending() >= 1024 {
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventThroughput measures raw scheduler throughput: how many
// events per second the kernel retires.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			k.After(1, fire)
		}
	}
	b.ResetTimer()
	k.After(1, fire)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHeapChurn exercises the event heap with a wide pending set.
func BenchmarkHeapChurn(b *testing.B) {
	k := NewKernel()
	for i := 0; i < 1024; i++ {
		i := i
		var refire func()
		count := 0
		refire = func() {
			count++
			if count*1024 < b.N {
				k.After(Time(1+i%7), refire)
			}
		}
		k.After(Time(i), refire)
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSwitch measures a full block/wake round trip through the
// goroutine hand-off.
func BenchmarkProcSwitch(b *testing.B) {
	k := NewKernel()
	k.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueHandoff measures producer/consumer throughput across two
// processes.
func BenchmarkQueueHandoff(b *testing.B) {
	k := NewKernel()
	q := NewQueue[int](k)
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Get(p)
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSemaphore measures contended acquire/release cycles.
func BenchmarkSemaphore(b *testing.B) {
	k := NewKernel()
	sem := NewSemaphore(k, 2)
	for g := 0; g < 4; g++ {
		k.Go("worker", func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				sem.Acquire(p, 1)
				p.Sleep(1)
				sem.Release(1)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
