package sim

import (
	"strings"
	"testing"
)

// echoResolver delivers every post to the group named by its Dst field
// exactly lookahead later — the minimal legal resolver.
type echoResolver struct{ l Time }

func (r echoResolver) Resolve(p *Post) (group int, at Time, deliver bool) {
	return p.Dst, p.T + r.l, true
}

// recordingResolver additionally logs the canonical drain order.
type recordingResolver struct {
	l     Time
	order []*Post
	seen  []struct {
		group int
		seq   uint64
		t     Time
	}
}

func (r *recordingResolver) Resolve(p *Post) (group int, at Time, deliver bool) {
	r.seen = append(r.seen, struct {
		group int
		seq   uint64
		t     Time
	}{p.SrcGroup, p.Seq, p.T})
	return p.Dst, p.T + r.l, true
}

// TestCrossShardTieBreak is the regression test for the tie-break
// hazard: posts carrying the same send timestamp from different groups
// must drain in the documented (time, shard, seq) total order — not in
// outbox-scan or thread-completion order — and the order must be
// identical at every worker count. Three groups send at the same
// instant, one of them twice, plus one earlier-time send from the
// highest group that must beat them all.
func TestCrossShardTieBreak(t *testing.T) {
	const L = 100
	build := func() (*ShardSet, *recordingResolver, *[]int) {
		ss := NewShardSet(4, L)
		r := &recordingResolver{l: L}
		ss.SetResolver(r)
		delivered := &[]int{}
		post := func(src, tag int) {
			p := ss.Post(src)
			p.Dst = 0
			p.Fn = func() { *delivered = append(*delivered, tag) }
		}
		// Group 3 sends at t=40: earliest time, must drain first even
		// though its shard index is the highest.
		ss.Kernel(3).At(40, func() { post(3, 30) })
		// Groups 1..3 all send at t=50; group 2 twice (seq order).
		ss.Kernel(1).At(50, func() { post(1, 10) })
		ss.Kernel(2).At(50, func() { post(2, 20); post(2, 21) })
		ss.Kernel(3).At(50, func() { post(3, 31) })
		return ss, r, delivered
	}

	wantDrain := []struct {
		group int
		seq   uint64
		t     Time
	}{
		{3, 1, 40},
		{1, 1, 50},
		{2, 1, 50},
		{2, 2, 50},
		{3, 2, 50},
	}
	wantDelivered := []int{30, 10, 20, 21, 31}

	var baseFP uint64
	for _, workers := range []int{1, 2, 4} {
		ss, r, delivered := build()
		if err := ss.Run(workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(r.seen) != len(wantDrain) {
			t.Fatalf("workers=%d: drained %d posts, want %d", workers, len(r.seen), len(wantDrain))
		}
		for i, got := range r.seen {
			if got != wantDrain[i] {
				t.Errorf("workers=%d: drain[%d] = group %d seq %d t %v, want group %d seq %d t %v",
					workers, i, got.group, got.seq, got.t, wantDrain[i].group, wantDrain[i].seq, wantDrain[i].t)
			}
		}
		for i, got := range *delivered {
			if got != wantDelivered[i] {
				t.Errorf("workers=%d: delivery[%d] = %d, want %d", workers, i, got, wantDelivered[i])
			}
		}
		if workers == 1 {
			baseFP = ss.Fingerprint()
		} else if fp := ss.Fingerprint(); fp != baseFP {
			t.Errorf("workers=%d: fingerprint %016x != serial %016x", workers, fp, baseFP)
		}
	}
}

// TestShardWorkerInvariance runs a multi-round ping-pong mesh of chained
// messages and checks that fingerprints and executed counts match at
// every worker count, including workers beyond the group count (which
// Run clamps).
func TestShardWorkerInvariance(t *testing.T) {
	const G, L = 5, 7
	run := func(workers int) (uint64, uint64) {
		ss := NewShardSet(G, L)
		ss.SetResolver(echoResolver{l: L})
		var hop func(src, hops int)
		hop = func(src, hops int) {
			if hops == 0 {
				return
			}
			dst := (src + 3) % G
			p := ss.Post(src)
			p.Dst = dst
			p.Fn = func() { hop(dst, hops-1) }
		}
		for g := 0; g < G; g++ {
			g := g
			ss.Kernel(g).At(Time(1+g), func() { hop(g, 20+g) })
		}
		if err := ss.Run(workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ss.Fingerprint(), ss.Executed()
	}
	fp1, ev1 := run(1)
	for _, w := range []int{2, 3, G, G + 3} {
		if fp, ev := run(w); fp != fp1 || ev != ev1 {
			t.Errorf("workers=%d: fingerprint/executed %016x/%d, want %016x/%d", w, fp, ev, fp1, ev1)
		}
	}
}

// badResolver violates the lookahead contract: arrival == send time.
type badResolver struct{}

func (badResolver) Resolve(p *Post) (group int, at Time, deliver bool) {
	return p.Dst, p.T, true
}

// TestShardLookaheadViolationPanics proves the drain enforces the
// lookahead lower bound at runtime instead of silently corrupting
// causality.
func TestShardLookaheadViolationPanics(t *testing.T) {
	ss := NewShardSet(2, 10)
	ss.SetResolver(badResolver{})
	ss.Kernel(0).At(5, func() {
		p := ss.Post(0)
		p.Dst = 1
		p.Fn = func() {}
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on lookahead violation")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "lookahead violation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	ss.Run(1) //nolint:errcheck
}

// TestShardMissingResolverPanics: posting without a resolver is a wiring
// bug and must fail loudly at the first drain.
func TestShardMissingResolverPanics(t *testing.T) {
	ss := NewShardSet(2, 10)
	ss.Kernel(0).At(5, func() {
		p := ss.Post(0)
		p.Dst = 1
		p.Fn = func() {}
	})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on missing resolver")
		}
	}()
	ss.Run(1) //nolint:errcheck
}

// TestShardDeadlock: a non-daemon process blocked with no pending events
// anywhere must surface the same deadlock diagnosis Kernel.Run gives.
func TestShardDeadlock(t *testing.T) {
	ss := NewShardSet(2, 5)
	k := ss.Kernel(1)
	q := NewQueue[int](k)
	k.Go("stuck", func(p *Proc) { q.Get(p) })
	err := ss.Run(2)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

// TestNewShardSetValidation pins the constructor's contract checks.
func TestNewShardSetValidation(t *testing.T) {
	for _, tc := range []struct{ groups, lookahead int }{{0, 10}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewShardSet(%d, %d): no panic", tc.groups, tc.lookahead)
				}
			}()
			NewShardSet(tc.groups, Time(tc.lookahead))
		}()
	}
}

// BenchmarkShardPostDrain measures the cross-shard post/drain hot path:
// one message bounced between two groups, each bounce being one round
// (post, barrier, resolve, deliver). Steady state must be allocation
// free — posts, kernel events, and the boxed group argument all come
// from pools — and detgate -allocs pins that at 0 allocs/op.
func BenchmarkShardPostDrain(b *testing.B) {
	const L = 10
	ss := NewShardSet(2, L)
	ss.SetResolver(echoResolver{l: L})
	n, target := 0, 0
	var hop func(any)
	hop = func(g any) {
		if n >= target {
			return
		}
		n++
		src := g.(int)
		p := ss.Post(src)
		p.Dst = 1 - src
		p.CFn = hop
		p.Arg = 1 - src // ints 0/1 box without allocating
	}
	run := func(bounces int) {
		n, target = 0, bounces
		ss.Kernel(0).AfterCall(1, hop, 0)
		if err := ss.Run(1); err != nil {
			b.Fatal(err)
		}
	}
	run(64) // warm the post and event pools
	b.ReportAllocs()
	b.ResetTimer()
	run(b.N)
}
