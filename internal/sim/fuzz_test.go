package sim

import "testing"

// FuzzKernelOrdering feeds the scheduler arbitrary shapes of At/After
// schedules — including events that schedule further events while
// running — and asserts the kernel's core contract: every scheduled
// event executes exactly once, execution time never goes backwards, and
// events at the same instant run in FIFO scheduling order (the (t, seq)
// heap discipline every higher layer's determinism rests on).
func FuzzKernelOrdering(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{7, 7, 7, 7})
	f.Add([]byte{0x3f, 0x10, 0x20, 0xff, 0})
	f.Add([]byte{13, 0x31, 0x31, 0x31, 200, 100, 50})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 48 {
			data = data[:48]
		}
		k := NewKernel()
		type rec struct {
			t     Time
			issue int
		}
		var execd []rec
		issued := 0

		// spawn schedules one event issue-numbered in At-call order; bits
		// of b decide whether the event spawns children when it runs.
		var spawn func(b byte, depth int)
		spawn = func(b byte, depth int) {
			me := issued
			issued++
			delay := Time(b%13) * Millisecond
			k.After(delay, func() {
				execd = append(execd, rec{k.Now(), me})
				if depth < 3 && b&0x10 != 0 {
					spawn(b>>1, depth+1)
				}
				if depth < 3 && b&0x20 != 0 {
					spawn(b>>2, depth+1)
				}
			})
		}
		for _, b := range data {
			spawn(b, 0)
		}

		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if len(execd) != issued {
			t.Fatalf("executed %d of %d scheduled events", len(execd), issued)
		}
		if k.Executed() != uint64(issued) {
			t.Fatalf("kernel counted %d executions, harness %d", k.Executed(), issued)
		}
		if k.Pending() != 0 || k.Live() != 0 {
			t.Fatalf("residual state: %d pending events, %d live procs", k.Pending(), k.Live())
		}
		seen := make(map[int]bool, len(execd))
		for i, r := range execd {
			if seen[r.issue] {
				t.Fatalf("event %d executed twice", r.issue)
			}
			seen[r.issue] = true
			if i == 0 {
				continue
			}
			prev := execd[i-1]
			if r.t < prev.t {
				t.Fatalf("time went backwards: event %d at %v after event %d at %v",
					r.issue, r.t, prev.issue, prev.t)
			}
			if r.t == prev.t && r.issue < prev.issue {
				t.Fatalf("FIFO violated at %v: event %d ran after event %d", r.t, r.issue, prev.issue)
			}
		}
	})
}
