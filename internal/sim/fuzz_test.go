package sim

import "testing"

// FuzzQueueOrder feeds both event-queue implementations arbitrary
// interleavings of pushes (times at four magnitudes, from adjacent
// ticks to far-future DownDeadline-scale timers, including exact ties)
// and pops, and asserts the ladder queue's pop sequence equals the
// heap's exactly — the (time, seq) total order both must realize.
func FuzzQueueOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 3, 3})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{0x0c, 0xff, 0x1c, 0xff, 0x2c, 0x01, 3, 3, 3})
	f.Add([]byte{0x40, 0x10, 0x20, 3, 0x44, 0xff, 0xff, 3, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		hp := &eventHeap{}
		lq := newLadderQueue()
		var seq uint64
		size := 0
		popBoth := func() {
			a, b := hp.pop(), lq.pop()
			if a.t != b.t || a.seq != b.seq {
				t.Fatalf("pop mismatch: heap (%v, %d) vs ladder (%v, %d)", a.t, a.seq, b.t, b.seq)
			}
			size--
		}
		i := 0
		next := func() byte {
			if i < len(data) {
				b := data[i]
				i++
				return b
			}
			return 0
		}
		for i < len(data) {
			op := next()
			if op&3 == 3 {
				if size > 0 {
					popBoth()
				}
				continue
			}
			// Times span the kernel's whole legal domain [0, 1<<62) —
			// masked, not clamped, so far-future magnitudes stay
			// covered without overflowing Time (see ladder.go).
			scale := []uint64{1, 1 << 10, 1 << 30, 1 << 50}[(op>>2)&3]
			v := uint64(next())
			if op&0x40 != 0 {
				v = v*256 + uint64(next())
			}
			tm := Time(v * scale & (1<<62 - 1))
			seq++
			hp.push(&event{t: tm, seq: seq})
			lq.push(&event{t: tm, seq: seq})
			size++
		}
		for size > 0 {
			popBoth()
		}
		if tm, ok := lq.peek(); ok {
			t.Fatalf("ladder not empty after drain: peek %v", tm)
		}
	})
}

// FuzzKernelOrdering feeds the scheduler arbitrary shapes of At/After
// schedules — including events that schedule further events while
// running — and asserts the kernel's core contract: every scheduled
// event executes exactly once, execution time never goes backwards, and
// events at the same instant run in FIFO scheduling order (the (t, seq)
// heap discipline every higher layer's determinism rests on).
func FuzzKernelOrdering(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{7, 7, 7, 7})
	f.Add([]byte{0x3f, 0x10, 0x20, 0xff, 0})
	f.Add([]byte{13, 0x31, 0x31, 0x31, 200, 100, 50})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 48 {
			data = data[:48]
		}
		k := NewKernel()
		type rec struct {
			t     Time
			issue int
		}
		var execd []rec
		issued := 0

		// spawn schedules one event issue-numbered in At-call order; bits
		// of b decide whether the event spawns children when it runs.
		var spawn func(b byte, depth int)
		spawn = func(b byte, depth int) {
			me := issued
			issued++
			delay := Time(b%13) * Millisecond
			k.After(delay, func() {
				execd = append(execd, rec{k.Now(), me})
				if depth < 3 && b&0x10 != 0 {
					spawn(b>>1, depth+1)
				}
				if depth < 3 && b&0x20 != 0 {
					spawn(b>>2, depth+1)
				}
			})
		}
		for _, b := range data {
			spawn(b, 0)
		}

		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if len(execd) != issued {
			t.Fatalf("executed %d of %d scheduled events", len(execd), issued)
		}
		if k.Executed() != uint64(issued) {
			t.Fatalf("kernel counted %d executions, harness %d", k.Executed(), issued)
		}
		if k.Pending() != 0 || k.Live() != 0 {
			t.Fatalf("residual state: %d pending events, %d live procs", k.Pending(), k.Live())
		}
		seen := make(map[int]bool, len(execd))
		for i, r := range execd {
			if seen[r.issue] {
				t.Fatalf("event %d executed twice", r.issue)
			}
			seen[r.issue] = true
			if i == 0 {
				continue
			}
			prev := execd[i-1]
			if r.t < prev.t {
				t.Fatalf("time went backwards: event %d at %v after event %d at %v",
					r.issue, r.t, prev.issue, prev.t)
			}
			if r.t == prev.t && r.issue < prev.issue {
				t.Fatalf("FIFO violated at %v: event %d ran after event %d", r.t, r.issue, prev.issue)
			}
		}
	})
}
