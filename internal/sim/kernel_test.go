package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(20, func() { got = append(got, 2) })
	k.At(10, func() { got = append(got, 1) })
	k.At(30, func() { got = append(got, 3) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("Now = %v, want 30", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	var fired Time
	k.At(10, func() {
		k.After(5, func() { fired = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 15 {
		t.Fatalf("nested event fired at %v, want 15", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var wakes []Time
	k.Go("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(7 * Millisecond)
			wakes = append(wakes, p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{7 * Millisecond, 14 * Millisecond, 21 * Millisecond}
	for i := range want {
		if wakes[i] != want[i] {
			t.Fatalf("wakes = %v, want %v", wakes, want)
		}
	}
	if k.Live() != 0 {
		t.Fatalf("Live = %d after completion", k.Live())
	}
}

func TestProcPanicReported(t *testing.T) {
	k := NewKernel()
	k.Go("boom", func(p *Proc) {
		p.Sleep(Second)
		panic("kaboom")
	})
	err := k.Run()
	if err == nil {
		t.Fatal("Run returned nil for panicking process")
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	k.Go("stuck", func(p *Proc) { q.Get(p) })
	err := k.Run()
	if err == nil {
		t.Fatal("Run returned nil for deadlocked process")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	count := 0
	k.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(Second)
			count++
		}
	})
	if err := k.RunUntil(5 * Second); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	if k.Now() != 5*Second {
		t.Fatalf("Now = %v, want 5s", k.Now())
	}
	// Resume where we left off.
	if err := k.RunUntil(7 * Second); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Fatalf("ticks = %d after resume, want 7", count)
	}
}

func TestSignal(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	var waited []Time
	for i := 0; i < 3; i++ {
		k.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			if err := s.Wait(p); err != nil {
				t.Errorf("Wait: %v", err)
			}
			waited = append(waited, p.Now())
		})
	}
	k.Go("firer", func(p *Proc) {
		p.Sleep(9 * Millisecond)
		s.Fire(nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(waited) != 3 {
		t.Fatalf("%d waiters released, want 3", len(waited))
	}
	for _, w := range waited {
		if w != 9*Millisecond {
			t.Fatalf("waiter released at %v, want 9ms", w)
		}
	}
	if !s.Fired() || s.FiredAt() != 9*Millisecond {
		t.Fatalf("Fired=%v FiredAt=%v", s.Fired(), s.FiredAt())
	}
}

func TestSignalErrorAndLateWait(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	sentinel := errors.New("io failed")
	k.Go("firer", func(p *Proc) { s.Fire(sentinel) })
	k.Go("late", func(p *Proc) {
		p.Sleep(Second)
		if err := s.Wait(p); !errors.Is(err, sentinel) {
			t.Errorf("late Wait err = %v, want sentinel", err)
		}
		if p.Now() != Second {
			t.Errorf("late Wait blocked until %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSignalDoubleFirePanics(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k)
	k.At(0, func() {
		s.Fire(nil)
		defer func() {
			if recover() == nil {
				t.Error("double Fire did not panic")
			}
		}()
		s.Fire(nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFO(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	var got []int
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Millisecond)
			q.Put(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("queue order %v", got)
		}
	}
}

func TestQueueManyConsumers(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	total := 0
	for i := 0; i < 4; i++ {
		k.Go(fmt.Sprintf("c%d", i), func(p *Proc) {
			for j := 0; j < 25; j++ {
				total += q.Get(p)
			}
		})
	}
	k.Go("producer", func(p *Proc) {
		for i := 0; i < 100; i++ {
			q.Put(1)
			if i%10 == 0 {
				p.Sleep(Microsecond)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 100 {
		t.Fatalf("consumed %d, want 100", total)
	}
}

func TestQueueTryGet(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string](k)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	q.Put("a")
	q.Put("b")
	if v, ok := q.TryGet(); !ok || v != "a" {
		t.Fatalf("TryGet = %q,%v", v, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, 2)
	inside, peak := 0, 0
	for i := 0; i < 6; i++ {
		k.Go(fmt.Sprintf("g%d", i), func(p *Proc) {
			sem.Acquire(p, 1)
			inside++
			if inside > peak {
				peak = inside
			}
			p.Sleep(Millisecond)
			inside--
			sem.Release(1)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency %d, want 2", peak)
	}
	if sem.Available() != 2 {
		t.Fatalf("Available = %d at end", sem.Available())
	}
}

func TestSemaphoreFIFONoStarvation(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, 4)
	var order []string
	k.Go("big", func(p *Proc) {
		p.Sleep(Microsecond)
		sem.Acquire(p, 4) // arrives first among the blocked
		order = append(order, "big")
		sem.Release(4)
	})
	k.Go("holder", func(p *Proc) {
		sem.Acquire(p, 3)
		p.Sleep(Millisecond)
		sem.Release(3)
	})
	k.Go("small", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		sem.Acquire(p, 1) // would fit, but big is ahead in line
		order = append(order, "small")
		sem.Release(1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" {
		t.Fatalf("grant order %v, want big first", order)
	}
}

func TestMutexExcludes(t *testing.T) {
	k := NewKernel()
	mu := NewMutex(k)
	holders := 0
	for i := 0; i < 5; i++ {
		k.Go(fmt.Sprintf("g%d", i), func(p *Proc) {
			mu.Lock(p)
			holders++
			if holders != 1 {
				t.Errorf("mutex held by %d", holders)
			}
			p.Sleep(Millisecond)
			holders--
			mu.Unlock()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierRounds(t *testing.T) {
	k := NewKernel()
	const n = 4
	b := NewBarrier(k, n)
	released := make([][]Time, 2)
	for i := 0; i < n; i++ {
		i := i
		k.Go(fmt.Sprintf("g%d", i), func(p *Proc) {
			for round := 0; round < 2; round++ {
				p.Sleep(Time(i+1) * Millisecond)
				b.Wait(p)
				released[round] = append(released[round], p.Now())
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for round, rel := range released {
		if len(rel) != n {
			t.Fatalf("round %d released %d, want %d", round, len(rel), n)
		}
		for _, ti := range rel {
			if ti != rel[0] {
				t.Fatalf("round %d released at differing times %v", round, rel)
			}
		}
	}
}

func TestWaitAll(t *testing.T) {
	k := NewKernel()
	a, b := NewSignal(k), NewSignal(k)
	sentinel := errors.New("b failed")
	k.Go("fa", func(p *Proc) { p.Sleep(Millisecond); a.Fire(nil) })
	k.Go("fb", func(p *Proc) { p.Sleep(2 * Millisecond); b.Fire(sentinel) })
	k.Go("waiter", func(p *Proc) {
		if err := WaitAll(p, a, b); !errors.Is(err, sentinel) {
			t.Errorf("WaitAll err = %v", err)
		}
		if p.Now() != 2*Millisecond {
			t.Errorf("WaitAll returned at %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// runSchedule executes a randomized mix of sleeps on several processes and
// returns the observed wake ordering. Used to check determinism.
func runSchedule(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	k := NewKernel()
	var log []string
	for i := 0; i < 8; i++ {
		i := i
		delays := make([]Time, 20)
		for j := range delays {
			delays[j] = Time(rng.Intn(1000)) * Microsecond
		}
		k.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for _, d := range delays {
				p.Sleep(d)
				log = append(log, fmt.Sprintf("%d@%d", i, p.Now()))
			}
		})
	}
	if err := k.Run(); err != nil {
		panic(err)
	}
	return log
}

func TestDeterminism(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		a := runSchedule(seed)
		b := runSchedule(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: time never goes backwards inside a run, whatever mix of events
// is scheduled.
func TestMonotonicClock(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		last := Time(-1)
		ok := true
		var schedule func(depth int)
		schedule = func(depth int) {
			if k.Now() < last {
				ok = false
			}
			last = k.Now()
			if depth > 4 {
				return
			}
			for i := 0; i < rng.Intn(3); i++ {
				k.After(Time(rng.Intn(100)), func() { schedule(depth + 1) })
			}
		}
		for i := 0; i < 10; i++ {
			k.At(Time(rng.Intn(1000)), func() { schedule(0) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{500, "500ns"},
		{1500, "1.500us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if err := quick.Check(func(ms uint16) bool {
		s := float64(ms) / 1000
		diff := Seconds(s).Seconds() - s
		return diff < 2e-9 && diff > -2e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventPoolRecyclesAllocations(t *testing.T) {
	// Warm the free list, then verify a steady-state schedule+run cycle
	// allocates nothing per event: the pool absorbs every Schedule call.
	k := NewKernel()
	fn := func() {}
	for i := 0; i < 64; i++ {
		k.At(k.Now(), fn)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			k.At(k.Now(), fn)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.5 {
		t.Fatalf("steady-state schedule/run allocates %.1f objects per cycle, want 0", avg)
	}
}

func TestEventPoolPreservesOrdering(t *testing.T) {
	// Interleave scheduling and running so recycled structs carry many
	// different (t, seq) pairs; the observed order must stay (time, FIFO).
	k := NewKernel()
	var got []int
	for round := 0; round < 3; round++ {
		r := round
		k.At(k.Now()+Time(10-r), func() { got = append(got, 100+r) })
		k.At(k.Now()+Time(10-r), func() { got = append(got, 200+r) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{100, 200, 101, 201, 102, 202}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}
