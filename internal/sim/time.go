// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock by executing events in (time,
// sequence) order. Model code can be written either as plain event
// callbacks or as blocking processes (Proc): goroutines that the kernel
// runs one at a time with strict hand-off, so simulations are fully
// deterministic and free of data races by construction.
package sim

import "fmt"

// Time is a point on (or a span of) the simulated clock, in nanoseconds.
// The zero Time is the instant the simulation starts.
type Time int64

// Convenient durations, mirroring time.Duration's constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Microseconds converts a floating-point number of microseconds to a Time.
func Microseconds(us float64) Time { return Time(us * float64(Microsecond)) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t < Microsecond && t > -Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond && t > -Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second && t > -Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}
