package sim

import (
	"reflect"
	"testing"
)

// fuzzResolver delivers to the Dst group after lookahead plus a small
// payload-dependent extra, dropping every seventh-sized message — the
// shapes a real interconnect resolver produces (variable latency,
// dead-node drops), all as pure functions of the post's data.
type fuzzResolver struct{ l Time }

func (r fuzzResolver) Resolve(p *Post) (group int, at Time, deliver bool) {
	if p.Size > 0 && p.Size%7 == 0 {
		return p.Dst, 0, false
	}
	return p.Dst, p.T + r.l + Time(p.Size%5), true
}

// FuzzShardSync feeds the sharded engine arbitrary cross-group message
// schedules — fan-out, chains, simultaneous sends, dropped deliveries —
// and asserts the engine's core contract: per-group execution histories
// (what ran where and when), kernel fingerprints, and executed counts
// are bit-identical at 1, 2, and 4 workers.
func FuzzShardSync(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 1, 2})
	f.Add([]byte{1, 5, 3, 1, 2, 5, 0, 2, 3, 5, 2, 0})
	f.Add([]byte{0, 1, 1, 9, 1, 1, 2, 9, 2, 1, 3, 9, 3, 1, 0, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		const G, L = 4, 7
		run := func(workers int) (uint64, uint64, [][]uint64) {
			ss := NewShardSet(G, L)
			ss.SetResolver(fuzzResolver{l: L})
			// Per-group logs: each appended only by its own group's
			// deliveries, so logging is race-free during parallel rounds.
			logs := make([][]uint64, G)
			var chain func(g, hops, size int)
			chain = func(g, hops, size int) {
				logs[g] = append(logs[g], uint64(ss.Kernel(g).Now())<<8|uint64(hops))
				if hops == 0 {
					return
				}
				dst := (g + 1) % G
				p := ss.Post(g)
				p.Dst = dst
				p.Size = int64(size)
				p.Fn = func() { chain(dst, hops-1, size+1) }
			}
			// Each 4-byte op seeds one chain: source group, start time,
			// first destination, and chain length/payload from the bytes.
			for i := 0; i+3 < len(data); i += 4 {
				src := int(data[i]) % G
				at := Time(1 + int(data[i+1])%32)
				dst := int(data[i+2]) % G
				hops := int(data[i+3]) % 6
				size := int(data[i+3]) % 9
				ss.Kernel(src).At(at, func() {
					logs[src] = append(logs[src], uint64(ss.Kernel(src).Now())<<8|0xff)
					p := ss.Post(src)
					p.Dst = dst
					p.Size = int64(size)
					p.Fn = func() { chain(dst, hops, size+1) }
				})
			}
			if err := ss.Run(workers); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			return ss.Fingerprint(), ss.Executed(), logs
		}

		fp1, ev1, logs1 := run(1)
		for _, w := range []int{2, 4} {
			fp, ev, logs := run(w)
			if fp != fp1 || ev != ev1 {
				t.Errorf("workers=%d: fingerprint/executed %016x/%d, want %016x/%d", w, fp, ev, fp1, ev1)
			}
			if !reflect.DeepEqual(logs, logs1) {
				t.Errorf("workers=%d: per-group execution logs diverge from serial", w)
			}
		}
	})
}
