package sim

// This file implements a ladder queue (Tang, Goh & Thng's refinement of
// the calendar queue): a priority queue over events with amortized O(1)
// push and pop, replacing the binary heap's O(log n) sifts on the
// kernel's hottest path. See DESIGN.md §12 for the invariants and the
// ordering proof sketch; the short version:
//
//   - The queue is a hierarchy of "rungs", each an array of equal-width
//     time buckets covering a half-open interval. Rung 0 is the
//     coarsest; each deeper rung refines one overloaded bucket of its
//     parent. Above the rungs sits "top", an unsorted spill list for
//     events at or beyond topStart — far-future timers (an I/O node's
//     DownDeadline, a tournament's end-of-run report) land there and
//     are not touched again until the clock approaches them. Below the
//     rungs sits "bottom", a small sorted array consumed by a cursor:
//     the only place events are ever compared pairwise.
//
//   - Exactness, not approximation: pop order is the kernel's (time,
//     seq) total order, bit-identical to the heap's. Bucketing by time
//     can never split a (t, seq) tie across buckets, and within one
//     bucket events are appended in ascending seq order (pushes book
//     seq monotonically; redistribution preserves relative order), so
//     sorting a bucket by (t, seq) with a stable comparison reproduces
//     the global order exactly. detgate pins this equivalence on the
//     golden scenarios and FuzzQueueOrder hammers it on arbitrary
//     interleavings.
//
//   - All storage (bucket arrays, bottom, top, sort scratch) is
//     retained and reused across operations, so the steady state
//     allocates nothing — gated by `detgate -allocs` via
//     BenchmarkQueuePushPop.
//
// Domain: event times in [0, 1<<62), the kernel's legal range (booking
// in the past panics, Run's deadline is 1<<62 - 1). Within it the rung
// arithmetic (start + width*buckets ≤ end + span) cannot overflow;
// FuzzQueueOrder exercises the full range.
const (
	// ladderThresh is the bucket occupancy above which a consuming pop
	// spawns a refining rung instead of sorting the bucket directly.
	// Below it, an insertion sort of the bucket is cheaper than another
	// level of bucketing.
	ladderThresh = 48

	// ladderMaxRungs caps refinement depth. A bucket that is still
	// overloaded at the deepest rung is merge-sorted — correct at any
	// size, just not O(1) — so pathological distributions degrade
	// gracefully instead of recursing without bound.
	ladderMaxRungs = 10

	// ladderMaxBuckets caps one rung's bucket count, bounding resident
	// memory for huge spawns; the width is re-widened to keep the rung
	// covering its whole interval.
	ladderMaxBuckets = 1 << 15

	// ladderMinTime is below every legal event time (kernels never
	// schedule before time 0, but Time is signed; this leaves headroom
	// either way). An empty queue resets topStart here so the first
	// push always lands in top.
	ladderMinTime = Time(-1) << 62
)

// ladderRung is one refinement level: count events spread over
// len(buckets) buckets of width ticks each, starting at start. cur
// indexes the lowest bucket not yet consumed; events with
// t < start+width*cur no longer belong to this rung.
type ladderRung struct {
	start   Time
	width   Time // ≥ 1 tick
	cur     int
	count   int
	buckets [][]*event
}

// curStart is the left edge of the rung's current bucket — the rung's
// admission threshold: pushes with t ≥ curStart (and below the rung
// above's threshold) belong here.
func (r *ladderRung) curStart() Time { return r.start + r.width*Time(r.cur) }

// ladderQueue is the queue proper. Invariants between operations:
//
//   - bottom[bot:] is sorted ascending by (t, seq) and holds the
//     globally earliest events: everything in the rungs is ≥ the
//     consumed bucket's right edge, everything in top is ≥ topStart.
//   - Admission thresholds are monotone: topStart ≥ rung 0's curStart ≥
//     rung 1's curStart ≥ … — each deeper rung refines an interval that
//     ends at (or below) its parent's threshold, and thresholds only
//     move right. A push scans top, then rungs coarsest-first, and the
//     first interval that admits t is the correct one.
//   - Every bucket (and top) holds its events in ascending seq order.
type ladderQueue struct {
	n int // total resident events

	bottom []*event // sorted run being consumed
	bot    int      // consumption cursor into bottom

	top      []*event // unsorted far-future spill: every t ≥ topStart
	topMin   Time     // min/max event time in top (valid when top is non-empty)
	topMax   Time
	topStart Time // admission threshold for top

	nr    int // rungs in use: rungs[0..nr-1], rungs[nr-1] is the deepest
	rungs [ladderMaxRungs]ladderRung

	scratch []*event // reused merge-sort buffer
}

func newLadderQueue() *ladderQueue {
	return &ladderQueue{topStart: ladderMinTime}
}

// push inserts a booked event. Amortized O(1): almost every push is one
// threshold comparison and an append; only events earlier than the
// deepest rung's current bucket pay a binary-search insert into bottom.
func (q *ladderQueue) push(e *event) {
	q.n++
	if e.t >= q.topStart {
		if len(q.top) == 0 {
			q.topMin, q.topMax = e.t, e.t
		} else if e.t < q.topMin {
			q.topMin = e.t
		} else if e.t > q.topMax {
			q.topMax = e.t
		}
		q.top = append(q.top, e)
		return
	}
	for k := 0; k < q.nr; k++ {
		r := &q.rungs[k]
		if e.t >= r.curStart() {
			idx := int((e.t - r.start) / r.width)
			r.buckets[idx] = append(r.buckets[idx], e)
			r.count++
			return
		}
	}
	q.insertBottom(e)
}

// insertBottom places an event into the sorted live run. New events
// always carry a fresh (larger) seq, so on a time tie they sort after
// every resident event with the same t — the binary search below
// therefore only compares times.
func (q *ladderQueue) insertBottom(e *event) {
	lo, hi := q.bot, len(q.bottom)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.bottom[mid].t <= e.t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == q.bot && q.bot > 0 {
		// Reuse the dead slot just before the cursor — the common shape
		// of below-threshold churn (the new event becomes the head), so
		// repeated push/pop at the cursor is O(1) and grows nothing.
		q.bot--
		q.bottom[q.bot] = e
		return
	}
	if q.bot > 0 {
		// Compact the dead prefix before growing the array: with a
		// resident far-future event keeping the queue non-empty, near-
		// time churn would otherwise append one slot per push forever.
		live := copy(q.bottom, q.bottom[q.bot:])
		for i := live; i < len(q.bottom); i++ {
			q.bottom[i] = nil
		}
		q.bottom = q.bottom[:live]
		lo -= q.bot
		q.bot = 0
	}
	q.bottom = append(q.bottom, nil)
	copy(q.bottom[lo+1:], q.bottom[lo:])
	q.bottom[lo] = e
}

// peek reports the earliest pending event time.
func (q *ladderQueue) peek() (Time, bool) {
	if !q.ensure() {
		return 0, false
	}
	return q.bottom[q.bot].t, true
}

// pop removes and returns the earliest event in (t, seq) order.
func (q *ladderQueue) pop() *event {
	if !q.ensure() {
		panic("sim: pop from empty ladder queue")
	}
	e := q.bottom[q.bot]
	q.bottom[q.bot] = nil
	q.bot++
	q.n--
	if q.n == 0 {
		// Fully drained: recycle the whole structure so the next burst
		// of pushes re-seeds top from scratch with a fresh epoch. This
		// is the overflow/epoch story — thresholds only ever move
		// right within one occupancy, and reset only at emptiness.
		q.bottom = q.bottom[:0]
		q.bot = 0
		q.nr = 0
		q.topStart = ladderMinTime
	}
	return e
}

// ensure refills bottom when the cursor has exhausted it, pulling the
// next batch of events from the deepest rung (or seeding the first rung
// from top). Returns false when the queue is empty.
func (q *ladderQueue) ensure() bool {
	if q.bot < len(q.bottom) {
		return true
	}
	if q.n == 0 {
		return false
	}
	q.bottom = q.bottom[:0]
	q.bot = 0
	for {
		if q.nr > 0 {
			r := &q.rungs[q.nr-1]
			if r.count == 0 {
				// Deepest rung exhausted; retire it and resume its parent.
				q.nr--
				continue
			}
			for len(r.buckets[r.cur]) == 0 {
				r.cur++
			}
			b := r.buckets[r.cur]
			bMin, bMax := b[0].t, b[0].t
			for _, e := range b[1:] {
				if e.t < bMin {
					bMin = e.t
				} else if e.t > bMax {
					bMax = e.t
				}
			}
			if len(b) > ladderThresh && bMax > bMin && q.nr < ladderMaxRungs {
				// Overloaded bucket: refine it into a child rung. The
				// child's interval runs to the bucket's nominal right
				// edge (not bMax+1) so later pushes that fall below
				// the parent's advanced threshold are always admitted
				// by the child. Consuming the bucket advances cur
				// first, keeping the threshold chain monotone.
				end := r.start + r.width*Time(r.cur+1)
				r.count -= len(b)
				r.cur++
				q.spawn(b, bMin, end)
				r.buckets[r.cur-1] = b[:0]
				continue
			}
			// Small (or same-instant: bMax == bMin cannot be refined)
			// bucket: sort it straight into bottom.
			q.sortInto(b)
			r.count -= len(b)
			r.buckets[r.cur] = b[:0]
			r.cur++
			return true
		}
		if len(q.top) > 0 {
			if len(q.top) > ladderThresh && q.topMax > q.topMin {
				q.spawn(q.top, q.topMin, q.topMax+1)
				q.top = q.top[:0]
				q.topStart = q.topMax + 1
				continue
			}
			q.sortInto(q.top)
			q.top = q.top[:0]
			q.topStart = q.topMax + 1
			return true
		}
		panic("sim: ladder queue lost events")
	}
}

// spawn builds the next rung over the half-open interval [min, end) and
// distributes evs into it, preserving their relative (seq) order within
// each bucket. The bucket width targets ~1 event per bucket; the count
// cap re-widens for very large spawns. Storage from the rung's previous
// occupancy is reused.
func (q *ladderQueue) spawn(evs []*event, min, end Time) {
	r := &q.rungs[q.nr]
	q.nr++
	span := end - min
	w := span / Time(len(evs))
	if w < 1 {
		w = 1
	}
	nb := int((span + w - 1) / w)
	if nb > ladderMaxBuckets {
		nb = ladderMaxBuckets
		w = (span + Time(nb) - 1) / Time(nb)
	}
	if cap(r.buckets) >= nb {
		r.buckets = r.buckets[:nb]
	} else {
		grown := make([][]*event, nb)
		copy(grown, r.buckets[:cap(r.buckets)])
		r.buckets = grown
	}
	for i := range r.buckets {
		r.buckets[i] = r.buckets[i][:0]
	}
	r.start, r.width, r.cur, r.count = min, w, 0, len(evs)
	for _, e := range evs {
		idx := int((e.t - min) / w)
		r.buckets[idx] = append(r.buckets[idx], e)
	}
}

// sortInto copies b into bottom and sorts it ascending by (t, seq). b
// already holds same-time runs in ascending seq order, so a stable sort
// keyed on time alone would suffice; the comparison includes seq anyway
// so the invariant is enforced, not assumed.
func (q *ladderQueue) sortInto(b []*event) {
	q.bottom = append(q.bottom[:0], b...)
	q.bot = 0
	sortEvents(q.bottom, &q.scratch)
}

func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// sortEvents sorts a ascending by (t, seq): insertion sort for short
// runs, bottom-up merge sort (stable, no per-call allocation beyond the
// reusable scratch buffer) above that. sort.Slice is avoided — its
// closure and interface header allocate on every call, and this runs on
// the zero-alloc pop path.
func sortEvents(a []*event, scratch *[]*event) {
	const runLen = 32
	n := len(a)
	if n <= 1 {
		return
	}
	for lo := 0; lo < n; lo += runLen {
		hi := lo + runLen
		if hi > n {
			hi = n
		}
		insertionSortEvents(a[lo:hi])
	}
	if n <= runLen {
		return
	}
	s := *scratch
	if cap(s) < n {
		s = make([]*event, n)
		*scratch = s
	}
	s = s[:n]
	src, dst := a, s
	for width := runLen; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mergeEvents(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

func insertionSortEvents(a []*event) {
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && eventLess(e, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}

// mergeEvents merges two sorted runs into out (len(out) == len(x)+len(y)).
func mergeEvents(out, x, y []*event) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if eventLess(y[j], x[i]) {
			out[k] = y[j]
			j++
		} else {
			out[k] = x[i]
			i++
		}
		k++
	}
	for i < len(x) {
		out[k] = x[i]
		i++
		k++
	}
	for j < len(y) {
		out[k] = y[j]
		j++
		k++
	}
}
