package sim

// sigCallback is one registered completion callback. The legacy OnFire
// form is stored through the same pooled-args shape as OnFireCall —
// callFireFn unwraps the func(error) from arg — so Fire schedules every
// callback without constructing a closure.
type sigCallback struct {
	cfn func(any, error)
	arg any
}

// callFireFn adapts a legacy OnFire func(error) (carried as arg) to the
// pooled-args callback shape.
func callFireFn(a any, err error) { a.(func(error))(err) }

// Signal is a one-shot completion event. Processes wait on it; once fired
// (at most once), all current and future waiters proceed immediately.
// A Signal carries an optional error so that asynchronous operations can
// report failure to their waiters.
type Signal struct {
	k         *Kernel
	fired     bool
	firedAt   Time
	err       error
	waiters   []*Proc
	callbacks []sigCallback
}

// NewSignal returns an unfired signal on kernel k.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// Reset returns the signal to the unfired state, keeping the waiter and
// callback storage for reuse. It exists so pooled operation structs can
// embed a Signal by value and recycle it across operations; resetting a
// signal that still has waiters or callbacks panics, because they would
// be silently dropped.
func (s *Signal) Reset(k *Kernel) {
	if len(s.waiters) != 0 || len(s.callbacks) != 0 {
		panic("sim: Reset on a Signal with pending waiters or callbacks")
	}
	s.k = k
	s.fired = false
	s.firedAt = 0
	s.err = nil
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// FiredAt returns the time the signal fired; meaningless before Fired.
func (s *Signal) FiredAt() Time { return s.firedAt }

// Err returns the error the signal fired with (nil for success or unfired).
func (s *Signal) Err() error { return s.err }

// Fire marks the signal complete with err and wakes all waiters at the
// current instant. Firing twice panics: a completion happens once.
func (s *Signal) Fire(err error) {
	if s.fired {
		panic("sim: Signal fired twice")
	}
	s.fired = true
	s.firedAt = s.k.now
	s.err = err
	for i, p := range s.waiters {
		s.k.AfterCall(0, wakeProc, p)
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
	for i, cb := range s.callbacks {
		s.k.AfterCallErr(0, cb.cfn, cb.arg, err)
		s.callbacks[i] = sigCallback{}
	}
	s.callbacks = s.callbacks[:0]
}

// OnFire registers fn to run (in event context, at the firing instant)
// when the signal fires; if it already fired, fn is scheduled immediately.
func (s *Signal) OnFire(fn func(error)) {
	if s.fired {
		s.k.AfterCallErr(0, callFireFn, fn, s.err)
		return
	}
	s.callbacks = append(s.callbacks, sigCallback{cfn: callFireFn, arg: fn})
}

// OnFireCall is OnFire without the closure: fn(arg, err) runs at the
// firing instant. Like the kernel's AfterCallErr it exists for hot paths
// that keep their state in pooled structs.
func (s *Signal) OnFireCall(fn func(any, error), arg any) {
	if s.fired {
		s.k.AfterCallErr(0, fn, arg, s.err)
		return
	}
	s.callbacks = append(s.callbacks, sigCallback{cfn: fn, arg: arg})
}

// Wait blocks p until the signal fires (returning immediately if it
// already has) and returns the signal's error.
func (s *Signal) Wait(p *Proc) error {
	if !s.fired {
		s.waiters = append(s.waiters, p)
		p.block()
	}
	return s.err
}

// Queue is an unbounded FIFO channel between processes. Put never blocks;
// Get blocks until an item is available. Items are delivered in insertion
// order and waiters are served in arrival order. Both item and waiter
// storage are head-indexed rings over a reused backing slice, so a
// steady-state producer/consumer pair allocates nothing.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	head    int
	waiters []*Proc
	whead   int
}

// NewQueue returns an empty queue on kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] { return &Queue[T]{k: k} }

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Put appends v and wakes the longest-waiting getter, if any. It may be
// called from process or event context.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	if q.whead < len(q.waiters) {
		p := q.waiters[q.whead]
		q.waiters[q.whead] = nil
		q.whead++
		if q.whead == len(q.waiters) {
			q.waiters = q.waiters[:0]
			q.whead = 0
		}
		q.k.AfterCall(0, wakeProc, p)
	}
}

func (q *Queue[T]) pop() T {
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

// Get removes and returns the head item, blocking while the queue is
// empty.
func (q *Queue[T]) Get(p *Proc) T {
	for q.head == len(q.items) {
		q.waiters = append(q.waiters, p)
		p.block()
	}
	return q.pop()
}

// TryGet removes and returns the head item without blocking. ok is false
// if the queue is empty.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if q.head == len(q.items) {
		return v, false
	}
	return q.pop(), true
}

// semWaiter is a pending Acquire.
type semWaiter struct {
	p       *Proc
	n       int64
	granted bool
}

// Semaphore is a counting semaphore with FIFO granting: a large request at
// the head of the line is not starved by smaller requests behind it.
type Semaphore struct {
	k       *Kernel
	avail   int64
	waiters []*semWaiter
	whead   int
}

// NewSemaphore returns a semaphore holding n units.
func NewSemaphore(k *Kernel, n int64) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore capacity")
	}
	return &Semaphore{k: k, avail: n}
}

// Available reports the units currently free.
func (s *Semaphore) Available() int64 { return s.avail }

// Acquire blocks p until n units are available, then takes them.
func (s *Semaphore) Acquire(p *Proc, n int64) {
	if n < 0 {
		panic("sim: negative semaphore acquire")
	}
	if s.whead == len(s.waiters) && s.avail >= n {
		s.avail -= n
		return
	}
	w := &semWaiter{p: p, n: n}
	s.waiters = append(s.waiters, w)
	for !w.granted {
		p.block()
	}
}

// Release returns n units and grants as many head-of-line waiters as now
// fit.
func (s *Semaphore) Release(n int64) {
	if n < 0 {
		panic("sim: negative semaphore release")
	}
	s.avail += n
	for s.whead < len(s.waiters) && s.avail >= s.waiters[s.whead].n {
		w := s.waiters[s.whead]
		s.waiters[s.whead] = nil
		s.whead++
		if s.whead == len(s.waiters) {
			s.waiters = s.waiters[:0]
			s.whead = 0
		}
		s.avail -= w.n
		w.granted = true
		s.k.AfterCall(0, wakeProc, w.p)
	}
}

// Mutex is a mutual-exclusion lock with FIFO hand-off.
type Mutex struct{ s *Semaphore }

// NewMutex returns an unlocked mutex.
func NewMutex(k *Kernel) *Mutex { return &Mutex{s: NewSemaphore(k, 1)} }

// Lock blocks p until the mutex is held.
func (m *Mutex) Lock(p *Proc) { m.s.Acquire(p, 1) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.s.Release(1) }

// Barrier synchronizes a fixed party of n processes: each Wait blocks
// until all n have arrived, then all are released and the barrier resets
// for the next round.
type Barrier struct {
	k       *Kernel
	n       int
	arrived int
	waiters []*Proc
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(k *Kernel, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier needs at least one party")
	}
	return &Barrier{k: k, n: n}
}

// Wait blocks p until all parties of the current round have arrived.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		for i, w := range b.waiters {
			b.k.AfterCall(0, wakeProc, w)
			b.waiters[i] = nil
		}
		b.waiters = b.waiters[:0]
		return
	}
	b.waiters = append(b.waiters, p)
	p.block()
}

// WaitAll blocks p until every signal has fired, returning the first
// non-nil error among them (in argument order).
func WaitAll(p *Proc, signals ...*Signal) error {
	var first error
	for _, s := range signals {
		if err := s.Wait(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}
