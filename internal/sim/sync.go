package sim

// Signal is a one-shot completion event. Processes wait on it; once fired
// (at most once), all current and future waiters proceed immediately.
// A Signal carries an optional error so that asynchronous operations can
// report failure to their waiters.
type Signal struct {
	k         *Kernel
	fired     bool
	firedAt   Time
	err       error
	waiters   []*Proc
	callbacks []func(error)
}

// NewSignal returns an unfired signal on kernel k.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// FiredAt returns the time the signal fired; meaningless before Fired.
func (s *Signal) FiredAt() Time { return s.firedAt }

// Err returns the error the signal fired with (nil for success or unfired).
func (s *Signal) Err() error { return s.err }

// Fire marks the signal complete with err and wakes all waiters at the
// current instant. Firing twice panics: a completion happens once.
func (s *Signal) Fire(err error) {
	if s.fired {
		panic("sim: Signal fired twice")
	}
	s.fired = true
	s.firedAt = s.k.now
	s.err = err
	for _, p := range s.waiters {
		p := p
		s.k.After(0, func() { s.k.wake(p) })
	}
	s.waiters = nil
	for _, fn := range s.callbacks {
		fn := fn
		s.k.After(0, func() { fn(err) })
	}
	s.callbacks = nil
}

// OnFire registers fn to run (in event context, at the firing instant)
// when the signal fires; if it already fired, fn is scheduled immediately.
func (s *Signal) OnFire(fn func(error)) {
	if s.fired {
		err := s.err
		s.k.After(0, func() { fn(err) })
		return
	}
	s.callbacks = append(s.callbacks, fn)
}

// Wait blocks p until the signal fires (returning immediately if it
// already has) and returns the signal's error.
func (s *Signal) Wait(p *Proc) error {
	if !s.fired {
		s.waiters = append(s.waiters, p)
		p.block()
	}
	return s.err
}

// Queue is an unbounded FIFO channel between processes. Put never blocks;
// Get blocks until an item is available. Items are delivered in insertion
// order and waiters are served in arrival order.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []*Proc
}

// NewQueue returns an empty queue on kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] { return &Queue[T]{k: k} }

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes the longest-waiting getter, if any. It may be
// called from process or event context.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		p := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.After(0, func() { q.k.wake(p) })
	}
}

// Get removes and returns the head item, blocking while the queue is
// empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.block()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryGet removes and returns the head item without blocking. ok is false
// if the queue is empty.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// semWaiter is a pending Acquire.
type semWaiter struct {
	p       *Proc
	n       int64
	granted bool
}

// Semaphore is a counting semaphore with FIFO granting: a large request at
// the head of the line is not starved by smaller requests behind it.
type Semaphore struct {
	k       *Kernel
	avail   int64
	waiters []*semWaiter
}

// NewSemaphore returns a semaphore holding n units.
func NewSemaphore(k *Kernel, n int64) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore capacity")
	}
	return &Semaphore{k: k, avail: n}
}

// Available reports the units currently free.
func (s *Semaphore) Available() int64 { return s.avail }

// Acquire blocks p until n units are available, then takes them.
func (s *Semaphore) Acquire(p *Proc, n int64) {
	if n < 0 {
		panic("sim: negative semaphore acquire")
	}
	if len(s.waiters) == 0 && s.avail >= n {
		s.avail -= n
		return
	}
	w := &semWaiter{p: p, n: n}
	s.waiters = append(s.waiters, w)
	for !w.granted {
		p.block()
	}
}

// Release returns n units and grants as many head-of-line waiters as now
// fit.
func (s *Semaphore) Release(n int64) {
	if n < 0 {
		panic("sim: negative semaphore release")
	}
	s.avail += n
	for len(s.waiters) > 0 && s.avail >= s.waiters[0].n {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.avail -= w.n
		w.granted = true
		s.k.After(0, func() { s.k.wake(w.p) })
	}
}

// Mutex is a mutual-exclusion lock with FIFO hand-off.
type Mutex struct{ s *Semaphore }

// NewMutex returns an unlocked mutex.
func NewMutex(k *Kernel) *Mutex { return &Mutex{s: NewSemaphore(k, 1)} }

// Lock blocks p until the mutex is held.
func (m *Mutex) Lock(p *Proc) { m.s.Acquire(p, 1) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.s.Release(1) }

// Barrier synchronizes a fixed party of n processes: each Wait blocks
// until all n have arrived, then all are released and the barrier resets
// for the next round.
type Barrier struct {
	k       *Kernel
	n       int
	arrived int
	waiters []*Proc
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(k *Kernel, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier needs at least one party")
	}
	return &Barrier{k: k, n: n}
}

// Wait blocks p until all parties of the current round have arrived.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		for _, w := range b.waiters {
			w := w
			b.k.After(0, func() { b.k.wake(w) })
		}
		b.waiters = nil
		return
	}
	b.waiters = append(b.waiters, p)
	p.block()
}

// WaitAll blocks p until every signal has fired, returning the first
// non-nil error among them (in argument order).
func WaitAll(p *Proc, signals ...*Signal) error {
	var first error
	for _, s := range signals {
		if err := s.Wait(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}
