package disk

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestKillFailsQueuedAndFutureRequests(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	first := d.Read(0, 8)     // enters service at t=0
	queued := d.Read(4096, 8) // still queued when the drive dies
	var late *sim.Signal
	k.At(sim.Millisecond, func() { // mid-service of the first request
		d.Kill()
		if !queued.Fired() {
			t.Error("queued request not failed synchronously by Kill")
		}
		var de *Error
		if err := queued.Err(); !errors.As(err, &de) {
			t.Errorf("queued request error = %v, want *disk.Error", err)
		}
		late = d.Read(0, 8)
		if late.Err() == nil {
			t.Error("submit to a dead disk did not fail")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The request already in service at Kill time completes normally: the
	// platters kept spinning until the transfer ended.
	if first.Err() != nil {
		t.Fatalf("in-service request failed: %v", first.Err())
	}
	if !d.Dead() {
		t.Fatal("Dead() = false after Kill")
	}
}

func TestDegradedReadReconstructsFromParity(t *testing.T) {
	g := testGeo()
	elapsed := func(degraded bool) (sim.Time, *Array) {
		k := sim.NewKernel()
		a := NewArray(k, "raid", 4, g, FIFO, 0)
		if degraded {
			a.FailMember(2)
		}
		done := a.Read(0, 64<<10)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if err := done.Err(); err != nil {
			t.Fatalf("read failed (degraded=%v): %v", degraded, err)
		}
		return done.FiredAt(), a
	}
	healthy, _ := elapsed(false)
	slow, a := elapsed(true)
	if !a.Degraded() {
		t.Fatal("array not degraded after FailMember")
	}
	if a.DegradedReads != 1 {
		t.Fatalf("DegradedReads = %d, want 1", a.DegradedReads)
	}
	if slow <= healthy {
		t.Fatalf("degraded read (%v) not slower than healthy (%v)", slow, healthy)
	}
	// The penalty is the modeled reconstruction time, not a cliff.
	if slow > 2*healthy {
		t.Fatalf("degraded read %v more than doubled healthy %v", slow, healthy)
	}
}

func TestDegradedWriteSkipsDeadMember(t *testing.T) {
	k := sim.NewKernel()
	a := NewArray(k, "raid", 4, testGeo(), FIFO, 0)
	a.FailMember(0)
	done := a.Write(0, 64<<10)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := done.Err(); err != nil {
		t.Fatalf("degraded write failed: %v", err)
	}
	if a.DegradedReads != 0 {
		t.Fatal("a write counted as a degraded read")
	}
}

func TestNoParityMakesMemberLossFatal(t *testing.T) {
	k := sim.NewKernel()
	a := NewArray(k, "raid", 4, testGeo(), FIFO, 0)
	a.SetParity(false)
	a.FailMember(1)
	done := a.Read(0, 64<<10)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done.Err() == nil {
		t.Fatal("read off a parity-less degraded array succeeded")
	}
}

func TestRebuildPromotesSpare(t *testing.T) {
	k := sim.NewKernel()
	g := testGeo()
	a := NewArray(k, "raid", 4, g, FIFO, 0)
	// Touch some data so the rebuild has a high-water mark to copy to.
	a.Write(0, 256<<10)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	a.FailMember(3)
	a.StartRebuild(RebuildPolicy{Chunk: 64 << 10})
	if !a.Rebuilding() {
		t.Fatal("Rebuilding() = false after StartRebuild")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Rebuilding() || a.Degraded() {
		t.Fatalf("array still rebuilding=%v degraded=%v after rebuild drained",
			a.Rebuilding(), a.Degraded())
	}
	if a.RebuildDoneAt == 0 {
		t.Fatal("RebuildDoneAt not stamped")
	}
	if a.RebuildIOs == 0 || a.RebuildBytes == 0 {
		t.Fatalf("rebuild did no work: IOs=%d Bytes=%d", a.RebuildIOs, a.RebuildBytes)
	}
	// The promoted spare serves reads: the array is healthy again.
	done := a.Read(0, 64<<10)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := done.Err(); err != nil {
		t.Fatalf("post-rebuild read failed: %v", err)
	}
	if a.DegradedReads != 0 {
		t.Fatal("post-rebuild read ran degraded")
	}
}

func TestRebuildGapTradesTimeForBandwidth(t *testing.T) {
	g := testGeo()
	doneAt := func(gap sim.Time) sim.Time {
		k := sim.NewKernel()
		a := NewArray(k, "raid", 4, g, FIFO, 0)
		a.Write(0, 1<<20)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		a.FailMember(0)
		a.StartRebuild(RebuildPolicy{Chunk: 64 << 10, Gap: gap})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return a.RebuildDoneAt
	}
	fast := doneAt(0)
	slow := doneAt(50 * sim.Millisecond)
	if slow <= fast {
		t.Fatalf("throttled rebuild (%v) not slower than unthrottled (%v)", slow, fast)
	}
}

func TestRebuildGuards(t *testing.T) {
	k := sim.NewKernel()
	a := NewArray(k, "raid", 2, testGeo(), FIFO, 0)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("rebuild while healthy", func() { a.StartRebuild(RebuildPolicy{Chunk: 4096}) })
	mustPanic("fail out-of-range member", func() { a.FailMember(5) })
	a.FailMember(0)
	mustPanic("double member failure", func() { a.FailMember(1) })
	mustPanic("sub-sector chunk", func() { a.StartRebuild(RebuildPolicy{Chunk: 1}) })
	mustPanic("negative gap", func() { a.StartRebuild(RebuildPolicy{Chunk: 4096, Gap: -1}) })
}
