// Package disk models mid-1990s SCSI disks and the RAID-3 arrays that sat
// behind each Intel Paragon I/O node.
//
// A Disk owns a FIFO- or SCAN-scheduled request queue served by one
// simulated process. Service time for a request is
//
//	controller overhead + seek(distance) + rotational latency + transfer
//
// with the seek and rotation skipped when the request continues exactly
// where the previous one ended (the disk is already on-track and
// on-sector), which is what makes the file system's block coalescing and
// contiguous allocation pay off.
//
// An Array byte-stripes every request across its members (RAID-3 style):
// a read of n bytes keeps all members busy with n/members bytes each and
// completes when the slowest member finishes.
package disk

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Error is a media or transport failure reported by a drive. The zero
// probability default means errors never occur unless a test or
// experiment arms fault injection. Transient distinguishes a soft error
// (a re-read of the same sector is guaranteed to succeed) from a hard
// media error the retry layer above cannot recover.
type Error struct {
	Disk      string
	Sector    int64
	Transient bool
}

// Error formats the failure with the drive and sector involved.
func (e *Error) Error() string {
	kind := "unrecoverable"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("disk %s: %s read error at sector %d", e.Disk, kind, e.Sector)
}

// IsTransient reports whether err is (or wraps) a transient disk error —
// one that a retry of the same request will not reproduce.
func IsTransient(err error) bool {
	var de *Error
	return errors.As(err, &de) && de.Transient
}

// Geometry describes one disk's mechanics.
type Geometry struct {
	SectorSize      int64    // bytes per sector
	SectorsPerTrack int64    // sectors on one track
	Heads           int64    // tracks per cylinder
	Cylinders       int64    // seek positions
	RPM             float64  // spindle speed
	SeekMin         sim.Time // single-cylinder seek
	SeekMax         sim.Time // full-stroke seek
	Overhead        sim.Time // controller/command overhead per request
}

// Seagate94601 returns parameters shaped after a ~0.5 GB early-90s SCSI
// drive (Wren class): 4200 RPM, ~0.86 MB/s sustained media rate, ~12 ms
// average seek. Calibrated so that an 8-compute/8-I/O-node machine
// reproduces the read access times of the paper's Table 2 (≈0.4 s for a
// 1 MB collective request).
func Seagate94601() Geometry {
	return Geometry{
		SectorSize:      512,
		SectorsPerTrack: 24,
		Heads:           15,
		Cylinders:       2500,
		RPM:             4200,
		SeekMin:         2 * sim.Millisecond,
		SeekMax:         22 * sim.Millisecond,
		Overhead:        1500 * sim.Microsecond,
	}
}

// Capacity reports the disk's capacity in bytes.
func (g Geometry) Capacity() int64 {
	return g.SectorSize * g.SectorsPerTrack * g.Heads * g.Cylinders
}

// sectorTime is the time the media takes to pass one sector under a head.
func (g Geometry) sectorTime() sim.Time {
	rev := sim.Seconds(60 / g.RPM)
	return rev / sim.Time(g.SectorsPerTrack)
}

// halfRotation is the expected rotational latency after a seek.
func (g Geometry) halfRotation() sim.Time {
	return sim.Seconds(60/g.RPM) / 2
}

// seekTime models the classic sub-linear seek curve between cylinders a
// and b: SeekMin for one cylinder, growing with the square root of the
// distance up to SeekMax.
func (g Geometry) seekTime(a, b int64) sim.Time {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	frac := sqrtFrac(float64(d) / float64(g.Cylinders-1))
	return g.SeekMin + sim.Time(float64(g.SeekMax-g.SeekMin)*frac)
}

func sqrtFrac(x float64) float64 {
	// Newton's method; x ∈ [0,1] so this converges in a few steps. Avoids
	// importing math for one call site... but clarity beats cleverness:
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Sched selects the order requests are served in.
type Sched int

const (
	// FIFO serves requests in arrival order.
	FIFO Sched = iota
	// SCAN serves the nearest request in the current sweep direction
	// (elevator), reversing at the ends.
	SCAN
	// CSCAN sweeps in one direction only, jumping back to the lowest
	// pending cylinder at the end: fairer tail latency than SCAN.
	CSCAN
	// SSTF serves the request with the shortest seek from the current
	// cylinder; best mean latency, can starve the edges.
	SSTF
)

// String names the policy.
func (s Sched) String() string {
	switch s {
	case FIFO:
		return "FIFO"
	case SCAN:
		return "SCAN"
	case CSCAN:
		return "C-SCAN"
	case SSTF:
		return "SSTF"
	default:
		return fmt.Sprintf("Sched(%d)", int(s))
	}
}

// Request is one disk I/O. Reads and writes cost the same in this model.
// Completion is reported one of two ways: through the Done signal, or —
// for hot paths that keep their state in pooled structs — through OnDone,
// which is scheduled as a pooled-args event (see sim.Kernel.AfterCallErr)
// so the whole submit/complete round trip allocates nothing. When OnDone
// is set, Done is left nil and never allocated.
type Request struct {
	Sector int64 // starting logical sector
	Count  int64 // sectors to transfer
	Write  bool
	Done   *sim.Signal // fired when the transfer completes (nil with OnDone)

	// OnDone, if non-nil, is scheduled as OnDone(DoneArg, err) at the
	// completion instant instead of firing Done. The timing and event
	// accounting are identical to a Done signal with one registered
	// callback.
	OnDone  func(any, error)
	DoneArg any

	cylinder int64 // cached decode of Sector
}

// Disk is a single simulated drive.
type Disk struct {
	k     *sim.Kernel
	name  string
	geo   Geometry
	sched Sched

	fault     FaultProfile
	faultRng  *rand.Rand
	jitterRng *rand.Rand
	transient map[int64]bool // sectors whose last read soft-failed; re-read succeeds
	permBad   map[int64]bool // sectors gone for good

	queue   []*Request
	server  *sim.Proc
	idle    bool
	dead    bool // drive failed for good: every request errors instantly
	wake    *sim.Queue[struct{}]
	cur     int64 // current cylinder
	nextLBA int64 // sector following the last transfer, -1 initially
	dir     int64 // SCAN sweep direction: +1 or -1

	// Measurements.
	Requests        int64
	Sectors         int64
	Errors          int64
	TransientErrors int64 // subset of Errors that re-reads recover
	PermanentErrors int64 // subset of Errors pinned to dead sectors
	Busy            stats.Utilization
	SeekDist        stats.Histogram // cylinders traveled per positioned request
	QueueLen        stats.Histogram // queue length observed at arrival
}

// New creates a disk on kernel k and starts its service process.
func New(k *sim.Kernel, name string, geo Geometry, sched Sched) *Disk {
	if geo.SectorSize <= 0 || geo.SectorsPerTrack <= 0 || geo.Heads <= 0 ||
		geo.Cylinders <= 1 || geo.RPM <= 0 {
		panic(fmt.Sprintf("disk %s: invalid geometry %+v", name, geo))
	}
	d := &Disk{
		k:       k,
		name:    name,
		geo:     geo,
		sched:   sched,
		wake:    sim.NewQueue[struct{}](k),
		nextLBA: -1,
		dir:     1,
	}
	d.server = k.GoDaemon("disk/"+name, d.serve)
	return d
}

// Geometry returns the disk's geometry.
func (d *Disk) Geometry() Geometry { return d.geo }

// FaultProfile describes how a disk misbehaves under fault injection.
// All draws come from a generator seeded by Seed, so two runs of the
// same simulation fault identically.
type FaultProfile struct {
	// Rate is the per-request fault probability. Zero disables
	// injection entirely.
	Rate float64
	// TransientFrac is the fraction of faults that are soft: the request
	// fails, but the faulted sector is remembered and the next read of it
	// is guaranteed to succeed — the contract the PFS retry layer's
	// recovery proof rests on.
	TransientFrac float64
	// PermanentFrac is the fraction of faults that kill the sector: every
	// later request starting there fails without a new draw. Faults that
	// are neither transient nor permanent are independent one-shots (the
	// legacy InjectFaults behaviour): the re-read is a fresh draw.
	PermanentFrac float64
	// Jitter inflates each request's service time by a uniform factor in
	// [0, Jitter] while injection is armed, modelling the retry storms
	// and recalibration stalls of a drive under fault stress.
	Jitter float64
	Seed   int64
}

// valid panics on out-of-range probabilities.
func (fp FaultProfile) validate() {
	if fp.Rate < 0 || fp.Rate > 1 {
		panic(fmt.Sprintf("disk: fault rate %v outside [0,1]", fp.Rate))
	}
	if fp.TransientFrac < 0 || fp.PermanentFrac < 0 || fp.TransientFrac+fp.PermanentFrac > 1 {
		panic(fmt.Sprintf("disk: fault fractions %v+%v outside [0,1]", fp.TransientFrac, fp.PermanentFrac))
	}
	if fp.Jitter < 0 {
		panic(fmt.Sprintf("disk: jitter %v negative", fp.Jitter))
	}
}

// InjectFaults arms legacy fault injection: each request independently
// fails with probability rate (deterministically, from seed). The
// request still consumes its full service time — the error surfaces at
// completion, as a real unrecoverable read does. Shorthand for
// InjectFaultProfile with one-shot faults only.
func (d *Disk) InjectFaults(rate float64, seed int64) {
	d.InjectFaultProfile(FaultProfile{Rate: rate, Seed: seed})
}

// InjectFaultProfile arms (or with a zero-rate profile disarms) the full
// fault model. Sector state (transient marks, dead sectors) is reset.
func (d *Disk) InjectFaultProfile(fp FaultProfile) {
	fp.validate()
	d.fault = fp
	d.faultRng = rand.New(rand.NewSource(fp.Seed))
	d.jitterRng = rand.New(rand.NewSource(fp.Seed ^ 0x6a69747465726a69)) // decouple jitter draws from fault draws
	d.transient = make(map[int64]bool)
	d.permBad = make(map[int64]bool)
}

// injectFault decides whether the request that just finished service
// fails, honouring sector state: dead sectors always fail, transiently
// marked sectors always succeed on their re-read (clearing the mark),
// anything else is a fresh draw classified by the profile's fractions.
func (d *Disk) injectFault(req *Request) error {
	if d.fault.Rate <= 0 {
		return nil
	}
	if d.permBad[req.Sector] {
		d.Errors++
		d.PermanentErrors++
		return &Error{Disk: d.name, Sector: req.Sector}
	}
	if d.transient[req.Sector] {
		delete(d.transient, req.Sector)
		return nil
	}
	if d.faultRng.Float64() >= d.fault.Rate {
		return nil
	}
	d.Errors++
	if d.fault.TransientFrac == 0 && d.fault.PermanentFrac == 0 {
		// Legacy one-shot profile: no classification draw, so the fault
		// stream of pre-profile callers is reproduced exactly.
		return &Error{Disk: d.name, Sector: req.Sector}
	}
	switch c := d.faultRng.Float64(); {
	case c < d.fault.TransientFrac:
		d.TransientErrors++
		d.transient[req.Sector] = true
		return &Error{Disk: d.name, Sector: req.Sector, Transient: true}
	case c < d.fault.TransientFrac+d.fault.PermanentFrac:
		d.PermanentErrors++
		d.permBad[req.Sector] = true
		return &Error{Disk: d.name, Sector: req.Sector}
	default:
		return &Error{Disk: d.name, Sector: req.Sector}
	}
}

// faultJitter returns the extra service time fault stress adds to a
// request that would nominally take t.
func (d *Disk) faultJitter(t sim.Time) sim.Time {
	if d.fault.Rate <= 0 || d.fault.Jitter <= 0 {
		return 0
	}
	return sim.Time(float64(t) * d.fault.Jitter * d.jitterRng.Float64())
}

// Kill fails the drive permanently: every queued and future request
// errors immediately, as a controller reports a drive that stopped
// answering selection. A request already in service completes (its
// transfer was in flight when the electronics died is not modeled).
func (d *Disk) Kill() {
	if d.dead {
		return
	}
	d.dead = true
	for _, req := range d.queue {
		d.Errors++
		d.PermanentErrors++
		d.complete(req, &Error{Disk: d.name, Sector: req.Sector})
	}
	d.queue = d.queue[:0]
}

// complete reports a request's completion through whichever channel it
// carries. The OnDone form schedules exactly one zero-delay event, the
// same schedule a Done signal with one callback produces, so the two
// forms are interchangeable without perturbing the event fingerprint.
func (d *Disk) complete(req *Request, err error) {
	if req.OnDone != nil {
		d.k.AfterCallErr(0, req.OnDone, req.DoneArg, err)
		return
	}
	req.Done.Fire(err)
}

// Dead reports whether the drive has been killed.
func (d *Disk) Dead() bool { return d.dead }

// Submit enqueues a request; req.Done fires when it completes. A request
// extending past the end of the disk panics: the layer above sized the
// volume wrong.
func (d *Disk) Submit(req *Request) {
	if req.Sector < 0 || req.Count <= 0 ||
		(req.Sector+req.Count)*d.geo.SectorSize > d.geo.Capacity() {
		panic(fmt.Sprintf("disk: request [%d,+%d) outside disk", req.Sector, req.Count))
	}
	if req.Done == nil && req.OnDone == nil {
		req.Done = sim.NewSignal(d.k)
	}
	if d.dead {
		d.Errors++
		d.PermanentErrors++
		d.complete(req, &Error{Disk: d.name, Sector: req.Sector})
		return
	}
	req.cylinder = req.Sector / (d.geo.SectorsPerTrack * d.geo.Heads)
	d.QueueLen.Observe(float64(len(d.queue)))
	d.queue = append(d.queue, req)
	d.wake.Put(struct{}{})
}

// Read is a convenience wrapper: submit a read of count sectors at sector
// and return its completion signal.
func (d *Disk) Read(sector, count int64) *sim.Signal {
	req := &Request{Sector: sector, Count: count, Done: sim.NewSignal(d.k)}
	d.Submit(req)
	return req.Done
}

// Write is the write-side convenience wrapper.
func (d *Disk) Write(sector, count int64) *sim.Signal {
	req := &Request{Sector: sector, Count: count, Write: true, Done: sim.NewSignal(d.k)}
	d.Submit(req)
	return req.Done
}

// serve is the drive's service loop. A request that arrives while the
// drive is idle pays rotational latency even when logically sequential:
// by the time the command reaches the drive the target sector has passed
// under the head (these drives had no read-ahead track buffer). Requests
// served back-to-back from a non-empty queue keep streaming.
func (d *Disk) serve(p *sim.Proc) {
	idleGap := true // spin-up counts as a gap
	for {
		if len(d.queue) == 0 {
			idleGap = true
			for len(d.queue) == 0 {
				d.wake.Get(p)
			}
		}
		// Drain stale wake tokens so the emptiness check stays accurate.
		for {
			if _, ok := d.wake.TryGet(); !ok {
				break
			}
		}
		req := d.pick()
		d.Busy.Begin(p.Now())
		t := d.serviceTime(req, idleGap)
		p.Sleep(t + d.faultJitter(t))
		d.Busy.End(p.Now())
		idleGap = false
		d.Requests++
		d.Sectors += req.Count
		d.cur = (req.Sector + req.Count - 1) / (d.geo.SectorsPerTrack * d.geo.Heads)
		d.nextLBA = req.Sector + req.Count
		d.complete(req, d.injectFault(req))
	}
}

// pick removes and returns the next request per the scheduling policy.
func (d *Disk) pick() *Request {
	best := 0
	if len(d.queue) > 1 {
		switch d.sched {
		case SCAN:
			best = d.pickSCAN()
		case CSCAN:
			best = d.pickCSCAN()
		case SSTF:
			best = d.pickSSTF()
		}
	}
	req := d.queue[best]
	d.queue = append(d.queue[:best], d.queue[best+1:]...)
	return req
}

// pickCSCAN returns the nearest request at-or-beyond the current cylinder
// in the upward direction, wrapping to the lowest pending cylinder.
func (d *Disk) pickCSCAN() int {
	bestIdx, bestCyl := -1, int64(1)<<62
	lowIdx, lowCyl := -1, int64(1)<<62
	for i, r := range d.queue {
		if r.cylinder < lowCyl {
			lowIdx, lowCyl = i, r.cylinder
		}
		if r.cylinder >= d.cur && r.cylinder < bestCyl {
			bestIdx, bestCyl = i, r.cylinder
		}
	}
	if bestIdx >= 0 {
		return bestIdx
	}
	return lowIdx
}

// pickSSTF returns the request with the shortest seek distance.
func (d *Disk) pickSSTF() int {
	bestIdx, bestDist := 0, int64(1)<<62
	for i, r := range d.queue {
		dist := abs64(r.cylinder - d.cur)
		if dist < bestDist {
			bestIdx, bestDist = i, dist
		}
	}
	return bestIdx
}

// pickSCAN returns the index of the nearest request at-or-beyond the
// current cylinder in the sweep direction, reversing if none remain.
func (d *Disk) pickSCAN() int {
	bestIdx, bestDist := -1, int64(1)<<62
	for i, r := range d.queue {
		delta := (r.cylinder - d.cur) * d.dir
		if delta >= 0 && delta < bestDist {
			bestIdx, bestDist = i, delta
		}
	}
	if bestIdx < 0 {
		d.dir = -d.dir
		return d.pickSCAN()
	}
	return bestIdx
}

// serviceTime computes one request's cost given current head state.
// Sequential continuation skips all positioning only while streaming; an
// idle gap costs the rotation back to the target sector even on-track.
func (d *Disk) serviceTime(req *Request, idleGap bool) sim.Time {
	t := d.geo.Overhead
	switch {
	case req.Sector != d.nextLBA:
		seek := d.geo.seekTime(d.cur, req.cylinder)
		d.SeekDist.Observe(float64(abs64(req.cylinder - d.cur)))
		t += seek + d.geo.halfRotation()
	case idleGap:
		d.SeekDist.Observe(0)
		t += d.geo.halfRotation()
	default:
		d.SeekDist.Observe(0)
	}
	return t + sim.Time(req.Count)*d.geo.sectorTime()
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
