package disk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSchedNames(t *testing.T) {
	for s, want := range map[Sched]string{FIFO: "FIFO", SCAN: "SCAN", CSCAN: "C-SCAN", SSTF: "SSTF"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if Sched(9).String() != "Sched(9)" {
		t.Fatal("unknown policy formatting wrong")
	}
}

// schedOrder queues requests at known cylinders while the head is busy,
// then reports the order of completion by cylinder.
func schedOrder(t *testing.T, sched Sched, cylinders []int64) []int64 {
	t.Helper()
	k := sim.NewKernel()
	g := testGeo()
	d := New(k, "d0", g, sched)
	sectorsPerCyl := g.SectorsPerTrack * g.Heads
	var order []int64
	// Pin the head with a first request at cylinder 500, then queue the
	// rest while it is in service so the policy chooses from cur=500.
	d.Read(500*sectorsPerCyl, 4)
	k.After(sim.Millisecond, func() {
		for _, c := range cylinders {
			c := c
			sig := d.Read(c*sectorsPerCyl, 4)
			sig.OnFire(func(error) { order = append(order, c) })
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return order
}

func TestSSTFPicksNearest(t *testing.T) {
	// From cylinder 500: nearest first, then onward.
	got := schedOrder(t, SSTF, []int64{900, 510, 100, 520})
	want := []int64{510, 520, 900, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SSTF order %v, want %v", got, want)
		}
	}
}

func TestCSCANWraps(t *testing.T) {
	// From 500 sweeping upward: 510, 900, then wrap to the bottom.
	got := schedOrder(t, CSCAN, []int64{100, 900, 510, 200})
	want := []int64{510, 900, 100, 200}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C-SCAN order %v, want %v", got, want)
		}
	}
}

// Property: every policy serves every request exactly once, whatever the
// arrival pattern.
func TestAllPoliciesComplete(t *testing.T) {
	if err := quick.Check(func(seed int64, policyRaw uint8) bool {
		policy := Sched(policyRaw % 4)
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel()
		g := testGeo()
		d := New(k, "d0", g, policy)
		n := 1 + rng.Intn(30)
		served := 0
		max := g.Capacity()/g.SectorSize - 8
		for i := 0; i < n; i++ {
			sig := d.Read(rng.Int63n(max), 4)
			sig.OnFire(func(error) { served++ })
		}
		if err := k.Run(); err != nil {
			return false
		}
		return served == n && d.Requests == int64(n)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: on a saturated random workload, SSTF's total seek distance
// never exceeds FIFO's.
func TestSSTFSeeksLessThanFIFO(t *testing.T) {
	totalSeek := func(sched Sched, seed int64) float64 {
		k := sim.NewKernel()
		g := testGeo()
		d := New(k, "d0", g, sched)
		rng := rand.New(rand.NewSource(seed))
		max := g.Capacity()/g.SectorSize - 8
		for i := 0; i < 60; i++ {
			d.Read(rng.Int63n(max), 4)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return d.SeekDist.Sum()
	}
	for seed := int64(1); seed <= 5; seed++ {
		fifo, sstf := totalSeek(FIFO, seed), totalSeek(SSTF, seed)
		if sstf > fifo {
			t.Fatalf("seed %d: SSTF seeks %v > FIFO %v", seed, sstf, fifo)
		}
	}
}
