package disk

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// BenchmarkSequentialStream measures simulating a sequential read stream
// through one disk.
func BenchmarkSequentialStream(b *testing.B) {
	k := sim.NewKernel()
	g := testGeo()
	d := New(k, "d0", g, FIFO)
	max := g.Capacity() / g.SectorSize
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read((int64(i)*64)%max, 8)
		if i%1024 == 1023 {
			b.StopTimer()
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSCANQueue measures elevator picking with a deep random queue.
func BenchmarkSCANQueue(b *testing.B) {
	k := sim.NewKernel()
	g := testGeo()
	d := New(k, "d0", g, SCAN)
	rng := rand.New(rand.NewSource(1))
	max := g.Capacity()/g.SectorSize - 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(rng.Int63n(max), 4)
		if i%512 == 511 {
			b.StopTimer()
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkArrayRead measures a striped array request end to end.
func BenchmarkArrayRead(b *testing.B) {
	k := sim.NewKernel()
	a := NewArray(k, "raid", 4, testGeo(), FIFO, sim.Millisecond)
	max := a.Capacity() - 64<<10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Read((int64(i)*64<<10)%max, 64<<10)
		if i%256 == 255 {
			b.StopTimer()
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
