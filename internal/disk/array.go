package disk

import (
	"fmt"

	"repro/internal/sim"
)

// Array is a RAID-3-style byte-striped disk array: every request is split
// evenly across all data members, so the members seek in lockstep and the
// array behaves like one disk with N× the transfer rate. This matches the
// SCSI RAID hardware on Paragon I/O nodes, whose arrays presented a
// single fast logical volume.
type Array struct {
	k        *sim.Kernel
	members  []*Disk
	overhead sim.Time // array controller overhead per request

	// Measurements.
	Requests int64
	Bytes    int64
}

// NewArray builds an array of n data members with the given geometry and
// scheduling policy on each member.
func NewArray(k *sim.Kernel, name string, n int, geo Geometry, sched Sched, overhead sim.Time) *Array {
	if n <= 0 {
		panic("disk: array needs at least one member")
	}
	a := &Array{k: k, overhead: overhead}
	for i := 0; i < n; i++ {
		a.members = append(a.members, New(k, fmt.Sprintf("%s.%d", name, i), geo, sched))
	}
	return a
}

// Members returns the array's member disks (for inspection in tests and
// stats reporting).
func (a *Array) Members() []*Disk { return a.members }

// Capacity reports the usable capacity in bytes.
func (a *Array) Capacity() int64 {
	return a.members[0].Geometry().Capacity() * int64(len(a.members))
}

// SectorSize reports the logical sector size of the array: one stripe of
// member sectors, the minimum I/O granularity.
func (a *Array) SectorSize() int64 {
	return a.members[0].Geometry().SectorSize * int64(len(a.members))
}

// do splits [off, off+n) bytes across the members and returns a signal
// that fires when the slowest member completes.
func (a *Array) do(off, n int64, write bool) *sim.Signal {
	if off < 0 || n <= 0 || off+n > a.Capacity() {
		panic(fmt.Sprintf("disk: array request [%d,+%d) outside %d-byte array", off, n, a.Capacity()))
	}
	a.Requests++
	a.Bytes += n

	ss := a.members[0].Geometry().SectorSize
	nm := int64(len(a.members))
	// Byte-striping: member i holds bytes i, i+nm, i+2nm, ... so a range
	// of the logical volume maps to the same sector range on every
	// member.
	memberOff := off / nm
	memberLen := (n + nm - 1) / nm
	sector := memberOff / ss
	count := (memberOff+memberLen+ss-1)/ss - sector
	if count == 0 {
		count = 1
	}

	done := sim.NewSignal(a.k)
	remaining := len(a.members)
	var firstErr error
	at := a.k.Now() + a.overhead
	a.k.At(at, func() {
		for _, d := range a.members {
			req := &Request{Sector: sector, Count: count, Write: write, Done: sim.NewSignal(a.k)}
			req.Done.OnFire(func(err error) {
				if err != nil && firstErr == nil {
					firstErr = err
				}
				remaining--
				if remaining == 0 {
					done.Fire(firstErr)
				}
			})
			d.Submit(req)
		}
	})
	return done
}

// Read starts a read of n bytes at byte offset off and returns its
// completion signal.
func (a *Array) Read(off, n int64) *sim.Signal { return a.do(off, n, false) }

// Write starts a write of n bytes at byte offset off and returns its
// completion signal.
func (a *Array) Write(off, n int64) *sim.Signal { return a.do(off, n, true) }
