package disk

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultReconstructBW is the modeled XOR reconstruction bandwidth of the
// array controller: how fast it can recompute a dead member's bytes from
// the surviving members plus parity. Early-90s RAID controllers did this
// in firmware at tens of MB/s — far faster than the spindles, so the
// degraded penalty is a tax, not a cliff.
const DefaultReconstructBW = 30e6 // bytes per second

// RebuildPolicy throttles the online rebuild of a failed member onto the
// hot spare. Chunk is how many bytes of the logical volume one rebuild
// pass copies (bigger chunks finish sooner but hold the spindles longer);
// Gap is the idle time inserted between passes to yield the members to
// foreground requests. A zero Chunk disables rebuild pacing sanity and is
// rejected by StartRebuild.
type RebuildPolicy struct {
	Chunk int64    // bytes copied per rebuild pass
	Gap   sim.Time // pause between passes, ceded to foreground I/O
}

// Array is a RAID-3-style byte-striped disk array: every request is split
// evenly across all data members, so the members seek in lockstep and the
// array behaves like one disk with N× the transfer rate. This matches the
// SCSI RAID hardware on Paragon I/O nodes, whose arrays presented a
// single fast logical volume.
//
// One member may fail permanently (FailMember). With parity support on —
// the RAID-3 default — reads continue in degraded mode: the survivors
// supply their bytes and the controller reconstructs the dead member's
// share from parity at ReconstructBW. StartRebuild then copies the lost
// member's contents onto a hot spare in the background, competing with
// foreground traffic under a RebuildPolicy throttle, and promotes the
// spare when the copy completes.
type Array struct {
	k        *sim.Kernel
	name     string
	geo      Geometry
	sched    Sched
	members  []*Disk
	overhead sim.Time // array controller overhead per request

	failed     int     // index of the dead member, -1 while healthy
	spare      *Disk   // hot spare under rebuild, nil otherwise
	parity     bool    // degraded operation supported (RAID-3 parity present)
	reconBW    float64 // parity reconstruction bandwidth, bytes/s
	highSector int64   // highest member sector ever touched; rebuild bound
	rebuilding bool

	tr     *trace.Log
	trNode int

	opFree []*arrayOp // recycled ReadCall/WriteCall bookkeeping

	// Measurements.
	Requests      int64
	Bytes         int64
	DegradedReads int64 // requests served by parity reconstruction
	RebuildIOs    int64 // background rebuild passes completed
	RebuildBytes  int64 // bytes written onto the hot spare
	MemberFails   int64
	RebuildDoneAt sim.Time // when the spare was promoted (0 if never)
}

// NewArray builds an array of n data members with the given geometry and
// scheduling policy on each member. Parity support (degraded reads) is on
// by default, as RAID-3 implies.
func NewArray(k *sim.Kernel, name string, n int, geo Geometry, sched Sched, overhead sim.Time) *Array {
	if n <= 0 {
		panic("disk: array needs at least one member")
	}
	a := &Array{
		k:        k,
		name:     name,
		geo:      geo,
		sched:    sched,
		overhead: overhead,
		failed:   -1,
		parity:   true,
		reconBW:  DefaultReconstructBW,
	}
	for i := 0; i < n; i++ {
		a.members = append(a.members, New(k, fmt.Sprintf("%s.%d", name, i), geo, sched))
	}
	return a
}

// Members returns the array's member disks (for inspection in tests and
// stats reporting).
func (a *Array) Members() []*Disk { return a.members }

// SetParity enables or disables degraded operation. With parity off a
// member failure is fatal to every request touching the array — the
// failover-off twin simcheck runs to prove the parity path matters.
func (a *Array) SetParity(ok bool) { a.parity = ok }

// SetReconstructBW overrides the modeled parity reconstruction bandwidth.
func (a *Array) SetReconstructBW(bw float64) {
	if bw <= 0 {
		panic("disk: reconstruction bandwidth must be positive")
	}
	a.reconBW = bw
}

// SetTrace attaches a trace log; node is stamped on emitted events so the
// timeline shows which I/O node's array degraded or rebuilt.
func (a *Array) SetTrace(tl *trace.Log, node int) { a.tr, a.trNode = tl, node }

// Degraded reports whether the array is currently missing a member.
func (a *Array) Degraded() bool { return a.failed >= 0 }

// Rebuilding reports whether a background rebuild is in progress.
func (a *Array) Rebuilding() bool { return a.rebuilding }

func (a *Array) emit(kind trace.Kind, off, n int64) {
	if a.tr != nil {
		a.tr.Add(trace.Event{T: a.k.Now(), Kind: kind, Node: a.trNode, File: a.name, Off: off, N: n})
	}
}

// FailMember kills member i permanently. Requests queued on the drive
// fail immediately; subsequent array requests run degraded (parity on) or
// fail (parity off). Only one member may be down at a time — RAID-3
// survives exactly one loss.
func (a *Array) FailMember(i int) {
	if i < 0 || i >= len(a.members) {
		panic(fmt.Sprintf("disk: array %s has no member %d", a.name, i))
	}
	if a.failed >= 0 {
		panic(fmt.Sprintf("disk: array %s already degraded (member %d down)", a.name, a.failed))
	}
	a.failed = i
	a.MemberFails++
	a.members[i].Kill()
}

// Capacity reports the usable capacity in bytes.
func (a *Array) Capacity() int64 {
	return a.members[0].Geometry().Capacity() * int64(len(a.members))
}

// SectorSize reports the logical sector size of the array: one stripe of
// member sectors, the minimum I/O granularity.
func (a *Array) SectorSize() int64 {
	return a.members[0].Geometry().SectorSize * int64(len(a.members))
}

// do splits [off, off+n) bytes across the members and returns a signal
// that fires when the slowest member completes. In degraded mode the dead
// member is skipped and (for reads) the completion is delayed by the
// parity reconstruction of its share.
func (a *Array) do(off, n int64, write bool) *sim.Signal {
	if off < 0 || n <= 0 || off+n > a.Capacity() {
		panic(fmt.Sprintf("disk: array request [%d,+%d) outside %d-byte array", off, n, a.Capacity()))
	}
	a.Requests++
	a.Bytes += n

	ss := a.members[0].Geometry().SectorSize
	nm := int64(len(a.members))
	// Byte-striping: member i holds bytes i, i+nm, i+2nm, ... so a range
	// of the logical volume maps to the same sector range on every
	// member.
	memberOff := off / nm
	memberLen := (n + nm - 1) / nm
	sector := memberOff / ss
	count := (memberOff+memberLen+ss-1)/ss - sector
	if count == 0 {
		count = 1
	}
	if end := sector + count; end > a.highSector {
		a.highSector = end
	}

	degraded := a.failed >= 0 && a.parity
	var recon sim.Time
	if degraded && !write {
		a.DegradedReads++
		a.emit(trace.DegradedRead, off, n)
		// The controller XORs the survivors' data with parity to
		// resynthesize the dead member's share.
		recon = sim.Seconds(float64(count*ss) / a.reconBW)
	}

	done := sim.NewSignal(a.k)
	remaining := len(a.members)
	if degraded {
		remaining--
	}
	var firstErr error
	at := a.k.Now() + a.overhead
	a.k.At(at, func() {
		for i, d := range a.members {
			if degraded && i == a.failed {
				continue
			}
			req := &Request{Sector: sector, Count: count, Write: write, Done: sim.NewSignal(a.k)}
			req.Done.OnFire(func(err error) {
				if err != nil && firstErr == nil {
					firstErr = err
				}
				remaining--
				if remaining == 0 {
					if recon > 0 && firstErr == nil {
						a.k.After(recon, func() { done.Fire(nil) })
					} else {
						done.Fire(firstErr)
					}
				}
			})
			d.Submit(req)
		}
	})
	return done
}

// Read starts a read of n bytes at byte offset off and returns its
// completion signal.
func (a *Array) Read(off, n int64) *sim.Signal { return a.do(off, n, false) }

// Write starts a write of n bytes at byte offset off and returns its
// completion signal.
func (a *Array) Write(off, n int64) *sim.Signal { return a.do(off, n, true) }

// arrayOp is the pooled bookkeeping of one in-flight ReadCall/WriteCall:
// the member Request structs, the completion countdown, and the caller's
// callback. Ops and their request storage are recycled on the array's
// free list, so the callback form of an array I/O allocates nothing in
// steady state.
type arrayOp struct {
	a         *Array
	sector    int64
	count     int64
	write     bool
	skip      int // member skipped in degraded mode, -1 while healthy
	remaining int
	firstErr  error
	recon     sim.Time
	fn        func(any, error)
	arg       any
	reqs      []Request // member request structs, reused across ops
}

// issueArrayOp is the controller-overhead event of a callback-form array
// request: it fans the op out to the member disks.
func issueArrayOp(v any) {
	op := v.(*arrayOp)
	a := op.a
	if cap(op.reqs) < len(a.members) {
		op.reqs = make([]Request, len(a.members))
	}
	op.reqs = op.reqs[:len(a.members)]
	for i, d := range a.members {
		if i == op.skip {
			continue
		}
		req := &op.reqs[i]
		*req = Request{Sector: op.sector, Count: op.count, Write: op.write,
			OnDone: arrayMemberDone, DoneArg: op}
		d.Submit(req)
	}
}

// arrayMemberDone is one member's completion. The last member schedules
// the caller's callback — directly, or after the parity reconstruction
// delay on a degraded read — reproducing the legacy do() event schedule
// exactly (see finishArrayOp).
func arrayMemberDone(v any, err error) {
	op := v.(*arrayOp)
	if err != nil && op.firstErr == nil {
		op.firstErr = err
	}
	op.remaining--
	if op.remaining > 0 {
		return
	}
	a := op.a
	if op.recon > 0 && op.firstErr == nil {
		a.k.AfterCallErr(op.recon, finishArrayOp, op, nil)
		return
	}
	a.k.AfterCallErr(0, op.fn, op.arg, op.firstErr)
	a.putOp(op)
}

// finishArrayOp ends a degraded read after reconstruction: a separate
// zero-delay hop delivers the callback, matching the legacy path's
// After(recon) + Signal.Fire two-event shape.
func finishArrayOp(v any, _ error) {
	op := v.(*arrayOp)
	op.a.k.AfterCallErr(0, op.fn, op.arg, nil)
	op.a.putOp(op)
}

func (a *Array) getOp() *arrayOp {
	if n := len(a.opFree); n > 0 {
		op := a.opFree[n-1]
		a.opFree[n-1] = nil
		a.opFree = a.opFree[:n-1]
		return op
	}
	return &arrayOp{a: a}
}

func (a *Array) putOp(op *arrayOp) {
	op.fn, op.arg, op.firstErr = nil, nil, nil
	a.opFree = append(a.opFree, op)
}

// ReadCall is the callback form of Read: fn(arg, err) is scheduled at the
// instant the read completes, with no signal or closure constructed.
// Timing, accounting, degraded behavior, and event scheduling are
// identical to Read observed through a signal with one callback.
func (a *Array) ReadCall(off, n int64, fn func(any, error), arg any) {
	a.doCall(off, n, false, fn, arg)
}

// WriteCall is the callback form of Write.
func (a *Array) WriteCall(off, n int64, fn func(any, error), arg any) {
	a.doCall(off, n, true, fn, arg)
}

// doCall is do() with pooled bookkeeping instead of per-request signals.
// The two paths must stay event-for-event identical; do() is the
// reference.
func (a *Array) doCall(off, n int64, write bool, fn func(any, error), arg any) {
	if off < 0 || n <= 0 || off+n > a.Capacity() {
		panic(fmt.Sprintf("disk: array request [%d,+%d) outside %d-byte array", off, n, a.Capacity()))
	}
	a.Requests++
	a.Bytes += n

	ss := a.members[0].Geometry().SectorSize
	nm := int64(len(a.members))
	memberOff := off / nm
	memberLen := (n + nm - 1) / nm
	sector := memberOff / ss
	count := (memberOff+memberLen+ss-1)/ss - sector
	if count == 0 {
		count = 1
	}
	if end := sector + count; end > a.highSector {
		a.highSector = end
	}

	degraded := a.failed >= 0 && a.parity
	var recon sim.Time
	if degraded && !write {
		a.DegradedReads++
		a.emit(trace.DegradedRead, off, n)
		recon = sim.Seconds(float64(count*ss) / a.reconBW)
	}

	op := a.getOp()
	op.sector, op.count, op.write = sector, count, write
	op.skip = -1
	op.remaining = len(a.members)
	if degraded {
		op.skip = a.failed
		op.remaining--
	}
	op.recon = recon
	op.fn, op.arg = fn, arg
	a.k.AtCall(a.k.Now()+a.overhead, issueArrayOp, op)
}

// rebuildPass counts down one rebuild chunk's member reads plus the spare
// write; the signal wakes the rebuild process. The struct and its signal
// are reused across passes.
type rebuildPass struct {
	remaining int
	pass      *sim.Signal
}

// rebuildMemberDone is one rebuild request's completion. Rebuild retries
// media hiccups internally; the pass completes regardless of err.
func rebuildMemberDone(v any, _ error) {
	rp := v.(*rebuildPass)
	rp.remaining--
	if rp.remaining == 0 {
		rp.pass.Fire(nil)
	}
}

// StartRebuild spawns the background rebuild: a hot spare is spun up and
// the dead member's contents — every sector the array has ever touched —
// are reconstructed chunk by chunk from the survivors and written onto
// it. Rebuild reads share the survivors' queues with foreground requests,
// so the policy's Chunk/Gap trade rebuild time against foreground
// bandwidth. When the copy completes the spare silently takes the dead
// member's slot and the array is healthy again.
func (a *Array) StartRebuild(pol RebuildPolicy) {
	if a.failed < 0 {
		panic(fmt.Sprintf("disk: array %s is healthy; nothing to rebuild", a.name))
	}
	if !a.parity {
		panic(fmt.Sprintf("disk: array %s has no parity; cannot rebuild", a.name))
	}
	if a.rebuilding {
		panic(fmt.Sprintf("disk: array %s is already rebuilding", a.name))
	}
	ss := a.geo.SectorSize
	if pol.Chunk < ss {
		panic(fmt.Sprintf("disk: rebuild chunk %d smaller than a %d-byte sector", pol.Chunk, ss))
	}
	if pol.Gap < 0 {
		panic("disk: rebuild gap must be non-negative")
	}
	a.rebuilding = true
	a.spare = New(a.k, a.name+".spare", a.geo, a.sched)
	chunkSectors := pol.Chunk / ss
	end := a.highSector // sectors beyond the high-water mark were never written

	a.k.Go("rebuild/"+a.name, func(p *sim.Proc) {
		rp := &rebuildPass{pass: sim.NewSignal(a.k)}
		reqs := make([]Request, len(a.members)+1)
		for sector := int64(0); sector < end; sector += chunkSectors {
			count := min(chunkSectors, end-sector)
			rp.pass.Reset(a.k)
			rp.remaining = len(a.members) // survivors + the spare write
			for i, d := range a.members {
				if i == a.failed {
					continue
				}
				req := &reqs[i]
				*req = Request{Sector: sector, Count: count,
					OnDone: rebuildMemberDone, DoneArg: rp}
				d.Submit(req)
			}
			w := &reqs[len(a.members)]
			*w = Request{Sector: sector, Count: count, Write: true,
				OnDone: rebuildMemberDone, DoneArg: rp}
			a.spare.Submit(w)
			rp.pass.Wait(p) //nolint:errcheck // pass always fires nil
			a.RebuildIOs++
			a.RebuildBytes += count * ss
			a.emit(trace.RebuildIO, sector*ss, count*ss)
			if pol.Gap > 0 {
				p.Sleep(pol.Gap)
			}
		}
		a.members[a.failed] = a.spare
		a.failed = -1
		a.spare = nil
		a.rebuilding = false
		a.RebuildDoneAt = p.Now()
		a.emit(trace.RebuildDone, 0, end*ss)
	})
}
