package disk

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestFaultInjectionAlwaysFails(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	d.InjectFaults(1, 1)
	done := d.Read(0, 8)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var de *Error
	if !errors.As(done.Err(), &de) {
		t.Fatalf("err = %v, want *disk.Error", done.Err())
	}
	if de.Disk != "d0" || de.Sector != 0 {
		t.Fatalf("error fields %+v", de)
	}
	if d.Errors != 1 {
		t.Fatalf("Errors = %d", d.Errors)
	}
}

func TestFaultInjectionDisabledByDefault(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	var sigs []*sim.Signal
	for i := int64(0); i < 50; i++ {
		sigs = append(sigs, d.Read(i*8, 8))
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range sigs {
		if s.Err() != nil {
			t.Fatalf("unexpected fault with injection disarmed: %v", s.Err())
		}
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	run := func() []bool {
		k := sim.NewKernel()
		d := New(k, "d0", testGeo(), FIFO)
		d.InjectFaults(0.3, 99)
		var sigs []*sim.Signal
		for i := int64(0); i < 40; i++ {
			sigs = append(sigs, d.Read(i*8, 8))
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, len(sigs))
		for i, s := range sigs {
			out[i] = s.Err() != nil
		}
		return out
	}
	a, b := run(), run()
	anyFault := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fault pattern not deterministic")
		}
		anyFault = anyFault || a[i]
	}
	if !anyFault {
		t.Fatal("0.3 fault rate produced no faults in 40 requests")
	}
}

func TestFaultRateValidation(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	defer func() {
		if recover() == nil {
			t.Fatal("fault rate 2 accepted")
		}
	}()
	d.InjectFaults(2, 0)
}

func TestArrayPropagatesMemberFault(t *testing.T) {
	k := sim.NewKernel()
	a := NewArray(k, "raid", 4, testGeo(), FIFO, 0)
	a.Members()[2].InjectFaults(1, 7)
	done := a.Read(0, 64<<10)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var de *Error
	if !errors.As(done.Err(), &de) {
		t.Fatalf("array err = %v, want member *disk.Error", done.Err())
	}
	if de.Disk != "raid.2" {
		t.Fatalf("fault attributed to %s, want raid.2", de.Disk)
	}
}
