package disk

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestFaultInjectionAlwaysFails(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	d.InjectFaults(1, 1)
	done := d.Read(0, 8)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var de *Error
	if !errors.As(done.Err(), &de) {
		t.Fatalf("err = %v, want *disk.Error", done.Err())
	}
	if de.Disk != "d0" || de.Sector != 0 {
		t.Fatalf("error fields %+v", de)
	}
	if d.Errors != 1 {
		t.Fatalf("Errors = %d", d.Errors)
	}
}

func TestFaultInjectionDisabledByDefault(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	var sigs []*sim.Signal
	for i := int64(0); i < 50; i++ {
		sigs = append(sigs, d.Read(i*8, 8))
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range sigs {
		if s.Err() != nil {
			t.Fatalf("unexpected fault with injection disarmed: %v", s.Err())
		}
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	run := func() []bool {
		k := sim.NewKernel()
		d := New(k, "d0", testGeo(), FIFO)
		d.InjectFaults(0.3, 99)
		var sigs []*sim.Signal
		for i := int64(0); i < 40; i++ {
			sigs = append(sigs, d.Read(i*8, 8))
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, len(sigs))
		for i, s := range sigs {
			out[i] = s.Err() != nil
		}
		return out
	}
	a, b := run(), run()
	anyFault := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fault pattern not deterministic")
		}
		anyFault = anyFault || a[i]
	}
	if !anyFault {
		t.Fatal("0.3 fault rate produced no faults in 40 requests")
	}
}

func TestFaultRateValidation(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	defer func() {
		if recover() == nil {
			t.Fatal("fault rate 2 accepted")
		}
	}()
	d.InjectFaults(2, 0)
}

func TestTransientFaultRecoversOnReread(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	d.InjectFaultProfile(FaultProfile{Rate: 1, TransientFrac: 1, Seed: 3})
	first := d.Read(0, 8)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !IsTransient(first.Err()) {
		t.Fatalf("first read err = %v, want transient *disk.Error", first.Err())
	}
	// The re-read of the faulted sector must succeed even at rate 1.
	second := d.Read(0, 8)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if second.Err() != nil {
		t.Fatalf("re-read of transiently faulted sector failed: %v", second.Err())
	}
	// A third read is a fresh draw again: at rate 1 it faults.
	third := d.Read(0, 8)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if third.Err() == nil {
		t.Fatal("fresh read after recovery should draw a new fault at rate 1")
	}
	if d.TransientErrors != 2 {
		t.Fatalf("TransientErrors = %d, want 2", d.TransientErrors)
	}
}

func TestPermanentFaultPinsSector(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	d.InjectFaultProfile(FaultProfile{Rate: 1, PermanentFrac: 1, Seed: 3})
	for i := 0; i < 3; i++ {
		done := d.Read(0, 8)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if done.Err() == nil {
			t.Fatalf("read %d of a dead sector succeeded", i)
		}
		if IsTransient(done.Err()) {
			t.Fatalf("read %d: permanent fault reported transient", i)
		}
	}
	// Only the first failure draws; the rest are the pinned sector.
	if d.PermanentErrors != 3 || d.Errors != 3 {
		t.Fatalf("PermanentErrors = %d, Errors = %d, want 3, 3", d.PermanentErrors, d.Errors)
	}
	// A different sector is a fresh draw, classified permanent at rate 1.
	other := d.Read(512, 8)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if other.Err() == nil {
		t.Fatal("fresh sector read should fault at rate 1")
	}
}

func TestFaultJitterSlowsAndStaysDeterministic(t *testing.T) {
	elapsed := func(fp FaultProfile) sim.Time {
		k := sim.NewKernel()
		d := New(k, "d0", testGeo(), FIFO)
		d.InjectFaultProfile(fp)
		var last *sim.Signal
		for i := int64(0); i < 20; i++ {
			last = d.Read(i*8, 8)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return last.FiredAt()
	}
	base := elapsed(FaultProfile{Rate: 0.5, TransientFrac: 1, Seed: 11})
	jit := elapsed(FaultProfile{Rate: 0.5, TransientFrac: 1, Jitter: 0.5, Seed: 11})
	if jit <= base {
		t.Fatalf("jittered run finished at %v, base at %v; jitter should cost time", jit, base)
	}
	if again := elapsed(FaultProfile{Rate: 0.5, TransientFrac: 1, Jitter: 0.5, Seed: 11}); again != jit {
		t.Fatalf("jitter not deterministic: %v vs %v", again, jit)
	}
	// Jitter draws must not perturb the fault stream: same seed, same
	// faults with and without jitter (checked via the error counter).
	kA, kB := sim.NewKernel(), sim.NewKernel()
	dA, dB := New(kA, "a", testGeo(), FIFO), New(kB, "b", testGeo(), FIFO)
	dA.InjectFaultProfile(FaultProfile{Rate: 0.5, TransientFrac: 1, Seed: 11})
	dB.InjectFaultProfile(FaultProfile{Rate: 0.5, TransientFrac: 1, Jitter: 0.5, Seed: 11})
	for i := int64(0); i < 20; i++ {
		dA.Read(i*8, 8)
		dB.Read(i*8, 8)
	}
	if err := kA.Run(); err != nil {
		t.Fatal(err)
	}
	if err := kB.Run(); err != nil {
		t.Fatal(err)
	}
	if dA.Errors != dB.Errors {
		t.Fatalf("jitter changed the fault stream: %d vs %d errors", dA.Errors, dB.Errors)
	}
}

func TestFaultProfileValidation(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	defer func() {
		if recover() == nil {
			t.Fatal("fractions summing past 1 accepted")
		}
	}()
	d.InjectFaultProfile(FaultProfile{Rate: 0.5, TransientFrac: 0.8, PermanentFrac: 0.8})
}

func TestArrayPropagatesMemberFault(t *testing.T) {
	k := sim.NewKernel()
	a := NewArray(k, "raid", 4, testGeo(), FIFO, 0)
	a.Members()[2].InjectFaults(1, 7)
	done := a.Read(0, 64<<10)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var de *Error
	if !errors.As(done.Err(), &de) {
		t.Fatalf("array err = %v, want member *disk.Error", done.Err())
	}
	if de.Disk != "raid.2" {
		t.Fatalf("fault attributed to %s, want raid.2", de.Disk)
	}
}
