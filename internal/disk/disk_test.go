package disk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testGeo() Geometry {
	return Geometry{
		SectorSize:      512,
		SectorsPerTrack: 64,
		Heads:           8,
		Cylinders:       1000,
		RPM:             4500,
		SeekMin:         2 * sim.Millisecond,
		SeekMax:         20 * sim.Millisecond,
		Overhead:        500 * sim.Microsecond,
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := testGeo()
	want := int64(512 * 64 * 8 * 1000)
	if g.Capacity() != want {
		t.Fatalf("Capacity = %d, want %d", g.Capacity(), want)
	}
}

func TestSeekCurve(t *testing.T) {
	g := testGeo()
	if g.seekTime(5, 5) != 0 {
		t.Fatal("zero-distance seek should cost 0")
	}
	one := g.seekTime(0, 1)
	if one < g.SeekMin {
		t.Fatalf("1-cyl seek %v below SeekMin %v", one, g.SeekMin)
	}
	full := g.seekTime(0, g.Cylinders-1)
	if full != g.SeekMax {
		t.Fatalf("full-stroke seek %v, want SeekMax %v", full, g.SeekMax)
	}
	mid := g.seekTime(0, g.Cylinders/2)
	if !(one < mid && mid < full) {
		t.Fatalf("seek curve not monotone: 1cyl=%v mid=%v full=%v", one, mid, full)
	}
	// Sub-linear: half the distance should cost more than half the span.
	if frac := float64(mid-g.SeekMin) / float64(full-g.SeekMin); frac < 0.5 {
		t.Fatalf("seek curve not sub-linear: mid fraction %v", frac)
	}
}

func TestSingleRead(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	done := d.Read(0, 64)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done.Fired() {
		t.Fatal("read never completed")
	}
	g := testGeo()
	// First request pays overhead + seek(0 cylinders)=0 + half rotation +
	// one full track of transfer.
	want := g.Overhead + g.halfRotation() + 64*g.sectorTime()
	if got := done.FiredAt(); got != want {
		t.Fatalf("completion at %v, want %v", got, want)
	}
}

func TestSequentialSkipsPositioning(t *testing.T) {
	k := sim.NewKernel()
	g := testGeo()
	d := New(k, "d0", g, FIFO)
	first := d.Read(0, 64)
	second := d.Read(64, 64)  // exactly where the first ended
	third := d.Read(1000, 64) // elsewhere: must re-position
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	seq := second.FiredAt() - first.FiredAt()
	pos := third.FiredAt() - second.FiredAt()
	wantSeq := g.Overhead + 64*g.sectorTime()
	if seq != wantSeq {
		t.Fatalf("sequential service = %v, want %v (no seek/rotation)", seq, wantSeq)
	}
	if pos <= seq {
		t.Fatalf("positioned read (%v) not slower than sequential (%v)", pos, seq)
	}
}

func TestFIFOOrder(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	far := d.Read(400000, 8) // far cylinder, submitted first
	near := d.Read(8, 8)     // near cylinder, submitted second
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !(far.FiredAt() < near.FiredAt()) {
		t.Fatal("FIFO did not serve in arrival order")
	}
}

func TestSCANReorders(t *testing.T) {
	k := sim.NewKernel()
	g := testGeo()
	d := New(k, "d0", g, SCAN)
	sectorsPerCyl := g.SectorsPerTrack * g.Heads
	// While the first request is in service, queue one far and one near;
	// SCAN should serve the near one first despite arrival order.
	_ = d.Read(0, 8)
	far := d.Read(900*sectorsPerCyl, 8)
	near := d.Read(10*sectorsPerCyl, 8)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !(near.FiredAt() < far.FiredAt()) {
		t.Fatal("SCAN served far request before near one")
	}
}

func TestSCANServesEverything(t *testing.T) {
	k := sim.NewKernel()
	g := testGeo()
	d := New(k, "d0", g, SCAN)
	rng := rand.New(rand.NewSource(42))
	var sigs []*sim.Signal
	max := g.Capacity()/g.SectorSize - 16
	for i := 0; i < 50; i++ {
		sigs = append(sigs, d.Read(rng.Int63n(max), 8))
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, s := range sigs {
		if !s.Fired() {
			t.Fatalf("request %d starved under SCAN", i)
		}
	}
	if d.Requests != 50 {
		t.Fatalf("Requests = %d, want 50", d.Requests)
	}
}

func TestUtilizationTracked(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	d.Read(0, 64)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if b := d.Busy.Busy(k.Now()); b != k.Now() {
		t.Fatalf("busy %v of %v: single request should keep disk busy to completion", b, k.Now())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, "d0", testGeo(), FIFO)
	cases := []*Request{
		{Sector: -1, Count: 1},
		{Sector: 0, Count: 0},
		{Sector: d.Geometry().Capacity() / 512, Count: 1},
	}
	for _, req := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Submit(%+v) did not panic", req)
				}
			}()
			d.Submit(req)
		}()
	}
}

// Property: total transfer time is at least count*sectorTime for any
// request mix, and all requests complete.
func TestServiceLowerBound(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel()
		g := testGeo()
		d := New(k, "d0", g, FIFO)
		var total int64
		n := 1 + rng.Intn(20)
		var sigs []*sim.Signal
		for i := 0; i < n; i++ {
			count := int64(1 + rng.Intn(256))
			sector := rng.Int63n(g.Capacity()/g.SectorSize - count)
			total += count
			sigs = append(sigs, d.Read(sector, count))
		}
		if err := k.Run(); err != nil {
			return false
		}
		for _, s := range sigs {
			if !s.Fired() {
				return false
			}
		}
		return k.Now() >= sim.Time(total)*g.sectorTime()
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayStripesAcrossMembers(t *testing.T) {
	k := sim.NewKernel()
	g := testGeo()
	a := NewArray(k, "raid", 4, g, FIFO, sim.Millisecond)
	done := a.Read(0, 256<<10) // 256 KiB
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done.Fired() {
		t.Fatal("array read never completed")
	}
	perMember := int64(256<<10) / 4 / g.SectorSize
	for i, d := range a.Members() {
		if d.Sectors != perMember {
			t.Fatalf("member %d transferred %d sectors, want %d", i, d.Sectors, perMember)
		}
	}
}

func TestArrayFasterThanSingleDisk(t *testing.T) {
	g := testGeo()
	timeFor := func(members int) sim.Time {
		k := sim.NewKernel()
		a := NewArray(k, "raid", members, g, FIFO, 0)
		done := a.Read(0, 1<<20)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return done.FiredAt()
	}
	one, four := timeFor(1), timeFor(4)
	if four >= one {
		t.Fatalf("4-member array (%v) not faster than 1 member (%v)", four, one)
	}
	// Transfer-dominated workload should approach 4x.
	if ratio := one.Seconds() / four.Seconds(); ratio < 2 {
		t.Fatalf("speedup %.2f, want ≥ 2 for a 1 MiB transfer", ratio)
	}
}

func TestArraySequentialStreamsAtMediaRate(t *testing.T) {
	k := sim.NewKernel()
	g := testGeo()
	a := NewArray(k, "raid", 4, g, FIFO, 500*sim.Microsecond)
	const chunk = 64 << 10
	var last *sim.Signal
	k.Go("reader", func(p *sim.Proc) {
		for i := int64(0); i < 32; i++ {
			last = a.Read(i*chunk, chunk)
			last.Wait(p)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 2 MiB over 4 members at ~1.17 MB/s each -> roughly 0.45 s plus
	// per-request overheads; just sanity-check the order of magnitude.
	if got := last.FiredAt(); got > 2*sim.Second || got < 200*sim.Millisecond {
		t.Fatalf("2 MiB sequential stream took %v, outside sane range", got)
	}
}

func TestArrayBadRequestPanics(t *testing.T) {
	k := sim.NewKernel()
	a := NewArray(k, "raid", 2, testGeo(), FIFO, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversized array read did not panic")
			}
		}()
		a.Read(a.Capacity()-10, 100)
	}()
}
