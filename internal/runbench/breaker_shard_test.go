package runbench

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/scenarios"
)

// breakerCounters is one server's breaker-visible ledger.
type breakerCounters struct {
	Probes, Shed, Faults int64
}

// TestBreakerProbesAcrossEngines pins the ShedPolicy breaker's half-open
// probe path to the legacy engine's semantics on every shard width: the
// chaos platform with the fault rate raised until breakers genuinely
// trip must produce bit-identical per-server Probes/Shed/Faults counters
// on the legacy engine and at shards 1, 2, 4, and 8 — and at least one
// probe must actually fire, or the test proves nothing about the
// half-open transition.
func TestBreakerProbesAcrossEngines(t *testing.T) {
	base := scenarios.Scenario{
		Name: "breaker-probe",
		Config: func() machine.Config {
			cfg := scenarios.ChaosMachine()
			// Hot enough that servers accumulate Threshold faults in a
			// window, open their breakers, and later grant half-open
			// probes; still transient-only, so retries ride everything out.
			cfg.DiskFaultRate = 0.30
			// A rate this hot can exhaust the default retry budget by bad
			// luck; the test is about breaker counters, not give-ups.
			cfg.PFS.Retry.MaxRetries = 64
			return cfg
		},
	}
	collect := func(sc scenarios.Scenario) []breakerCounters {
		t.Helper()
		res, _, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		var out []breakerCounters
		for _, s := range res.Machine.Servers {
			out = append(out, breakerCounters{Probes: s.Probes, Shed: s.Shed, Faults: s.Faults})
		}
		return out
	}

	legacy := collect(base)
	var probes int64
	for _, c := range legacy {
		probes += c.Probes
	}
	if probes == 0 {
		t.Fatalf("no half-open probe fired on the legacy engine; counters %+v", legacy)
	}

	for _, n := range []int{1, 2, 4, 8} {
		got := collect(scenarios.WithShards(base, n))
		for i := range legacy {
			if got[i] != legacy[i] {
				t.Errorf("shards=%d server %d: %+v, legacy %+v", n, i, got[i], legacy[i])
			}
		}
	}
}
