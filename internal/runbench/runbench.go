// Package runbench measures end-to-end simulation throughput on the
// golden scenarios: wall-clock per run, kernel events retired per
// wall-second, simulated seconds advanced per wall-second, and heap
// allocations per simulated read. cmd/runbench is the CLI wrapper that
// writes BENCH_run.json; the measurement core lives here so tests can
// prove that measuring a run does not perturb it (identical result
// fingerprint and trace digest with measurement on or off).
package runbench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/scenarios"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TraceCap is the trace-log capacity runbench attaches, matching
// cmd/detgate: the measured run is byte-for-byte the gated run.
const TraceCap = 1 << 18

// Options tunes a measurement.
type Options struct {
	// Iterations is how many timed passes to make; the fastest pass is
	// reported (minimum strips scheduler noise, the convention
	// testing.Benchmark-style harnesses use).
	Iterations int

	// MinWall is the minimum wall time one pass must accumulate; the
	// scenario is re-run back to back until it is reached and per-run
	// figures are the pass average. A single golden run finishes in well
	// under a millisecond — far below clock-and-scheduler noise — so
	// passes must amortize over many runs. Zero means 500 ms.
	MinWall time.Duration
}

// Measurement is one scenario's result.
type Measurement struct {
	Scenario      string  `json:"scenario"`
	Shards        int     `json:"shards,omitempty"` // worker count; 0 = legacy single-kernel engine
	ComputeNodes  int     `json:"compute_nodes"`    // machine shape the number was measured on
	IONodes       int     `json:"io_nodes"`
	WallSec       float64 `json:"wall_sec"`        // per run, averaged over the fastest pass
	RunsPerPass   int     `json:"runs_per_pass"`   // back-to-back runs amortized per timed pass
	SimSec        float64 `json:"sim_sec"`         // simulated time one run covers
	SimPerWall    float64 `json:"sim_per_wall"`    // simulated seconds per wall second
	Events        uint64  `json:"events"`          // kernel events executed in one run
	EventsPerSec  float64 `json:"events_per_sec"`  // events retired per wall second
	Reads         int64   `json:"reads"`           // simulated read calls in one run
	AllocsPerRead float64 `json:"allocs_per_read"` // heap allocations per simulated read
	BytesPerRead  float64 `json:"bytes_per_read"`  // heap bytes per simulated read
	Fingerprint   string  `json:"fingerprint"`     // workload.Result.Fingerprint, %016x
	TraceDigest   string  `json:"trace_digest"`    // trace.Log.Digest, %016x

	// Queue is the event-queue implementation the kernels ran on (heap
	// or ladder); MaxQueueDepth is the deepest any kernel's queue got —
	// a deterministic property of the schedule, and the depth at which
	// the queue implementations' costs diverge. BarrierDrainSec is the
	// wall-clock total of the sharded engine's single-threaded barrier
	// drain during the instrumented run (sharded only): the serial
	// fraction that bounds parallel speedup.
	Queue           string  `json:"queue"`
	MaxQueueDepth   int     `json:"max_queue_depth"`
	BarrierDrainSec float64 `json:"barrier_drain_sec,omitempty"`

	// PerGroupEvents is the per-shard-group event split (sharded engine
	// only): the load-balance evidence behind any parallel speedup claim.
	PerGroupEvents []uint64 `json:"per_group_events,omitempty"`

	// Flow-control token accounting (zero unless the scenario arms the
	// PFS token bucket): operations that consulted the bucket, how many
	// of them had to wait, and the total simulated time spent waiting.
	TokenOps     int64   `json:"token_ops,omitempty"`
	TokenWaits   int64   `json:"token_waits,omitempty"`
	TokenWaitSec float64 `json:"token_wait_sec,omitempty"`
}

// Run executes the scenario once with the standard golden trace attached
// and returns the result and trace log. This is the exact run detgate
// digests; Measure wraps it with clocks and allocation counters.
func Run(sc scenarios.Scenario) (*workload.Result, *trace.Log, error) {
	tl := trace.NewLog(TraceCap)
	spec := scenarios.QuickstartSpec(tl)
	if sc.Tweak != nil {
		sc.Tweak(&spec)
	}
	res, err := workload.Run(sc.Config(), spec)
	if err != nil {
		return nil, nil, fmt.Errorf("runbench: %s run failed: %w", sc.Name, err)
	}
	return res, tl, nil
}

// Measure runs the scenario through opt.Iterations timed passes and
// reports the fastest. The run itself is untouched: measurement is wall
// clocks around Run plus runtime.MemStats deltas, none of which the
// simulation can observe (nothing in the simulator reads wall time or
// allocator state).
func Measure(sc scenarios.Scenario, opt Options) (Measurement, error) {
	iters := opt.Iterations
	if iters <= 0 {
		iters = 1
	}
	minWall := opt.MinWall
	if minWall <= 0 {
		minWall = 500 * time.Millisecond
	}

	var m Measurement
	m.Scenario = sc.Name

	// One instrumented run for the deterministic quantities. Allocation
	// counts are per-run identical on a deterministic simulation, so a
	// single MemStats delta is exact (other goroutines are quiescent in
	// both the CLI and the tests that call this).
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	res, tl, err := Run(sc)
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return m, err
	}
	m.SimSec = res.Elapsed.Seconds()
	mcfg := res.Machine.Config()
	m.Shards = mcfg.Shards
	m.ComputeNodes = mcfg.ComputeNodes
	m.IONodes = mcfg.IONodes
	m.Events = res.Machine.Executed()
	m.PerGroupEvents = res.Machine.PerGroupExecuted()
	m.Reads = res.ReadCalls
	if res.ReadCalls > 0 {
		m.AllocsPerRead = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.ReadCalls)
		m.BytesPerRead = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(res.ReadCalls)
	}
	m.Queue = res.Machine.QueueName()
	m.MaxQueueDepth = res.Machine.MaxQueueDepth()
	m.BarrierDrainSec = res.Machine.BarrierDrainWall().Seconds()
	m.Fingerprint = fmt.Sprintf("%016x", res.Fingerprint())
	m.TraceDigest = fmt.Sprintf("%016x", tl.Digest())
	m.TokenOps = res.TokenOps
	m.TokenWaits = res.TokenWaits
	m.TokenWaitSec = res.TokenWaitTime.Seconds()

	// Timed passes: repeat the run back to back until the pass has
	// accumulated minWall, then average. GC triggered by the runs is
	// deliberately inside the timed region — allocation cost is part of
	// what end-to-end throughput means here.
	for i := 0; i < iters; i++ {
		runs := 0
		start := time.Now()
		for time.Since(start) < minWall {
			if _, _, err := Run(sc); err != nil {
				return m, err
			}
			runs++
		}
		wall := time.Since(start).Seconds() / float64(runs)
		if i == 0 || wall < m.WallSec {
			m.WallSec = wall
			m.RunsPerPass = runs
		}
	}
	if m.WallSec > 0 {
		m.SimPerWall = m.SimSec / m.WallSec
		m.EventsPerSec = float64(m.Events) / m.WallSec
	}
	return m, nil
}
