package runbench

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/scenarios"
)

// TestMeasureDoesNotPerturb proves the benchmark harness observes the
// simulation without changing it: for every golden scenario, the result
// fingerprint and trace digest of a plain Run equal the ones Measure
// reports from its instrumented run. Wall clocks and MemStats deltas are
// the only instrumentation, and nothing in the simulator can see either.
func TestMeasureDoesNotPerturb(t *testing.T) {
	for _, sc := range scenarios.Golden() {
		res, tl, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: plain run: %v", sc.Name, err)
		}
		plainFP := res.Fingerprint()
		plainTD := tl.Digest()

		m, err := Measure(sc, Options{Iterations: 1, MinWall: time.Millisecond})
		if err != nil {
			t.Fatalf("%s: measured run: %v", sc.Name, err)
		}
		if got, want := m.Fingerprint, hex16(plainFP); got != want {
			t.Errorf("%s: measured fingerprint %s != plain %s", sc.Name, got, want)
		}
		if got, want := m.TraceDigest, hex16(plainTD); got != want {
			t.Errorf("%s: measured trace digest %s != plain %s", sc.Name, got, want)
		}
	}
}

// TestRunRepeatable pins that back-to-back plain runs are bit-identical —
// the property Measure's amortized timing passes rely on.
func TestRunRepeatable(t *testing.T) {
	sc, ok := scenarios.ByName("quickstart")
	if !ok {
		t.Fatal("quickstart scenario missing")
	}
	r1, t1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, t2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Error("back-to-back runs produced different fingerprints")
	}
	if t1.Digest() != t2.Digest() {
		t.Error("back-to-back runs produced different trace digests")
	}
}

func hex16(v uint64) string { return fmt.Sprintf("%016x", v) }
