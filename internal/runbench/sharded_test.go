package runbench

import (
	"testing"

	"repro/internal/scenarios"
)

// TestShardDifferential is the shard-differential harness: every golden
// scenario (healthy, chaos, crash) must produce bit-identical results —
// workload fingerprint, trace digest, kernel fingerprint, event count —
// at shard worker counts 1, 2, 4, and 8. Shards=1 is the serial
// execution of the sharded engine; equality across counts proves the
// conservative-lookahead protocol delivers the same event history no
// matter how the groups are scheduled onto workers. Run under -race
// this also exercises the engine's synchronization (CI's test job runs
// the suite with -race).
func TestShardDifferential(t *testing.T) {
	counts := []int{1, 2, 4, 8}
	for _, sc := range scenarios.Golden() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			type digest struct {
				fp, tr, kfp uint64
				events      uint64
			}
			var base digest
			for i, n := range counts {
				res, tl, err := Run(scenarios.WithShards(sc, n))
				if err != nil {
					t.Fatalf("shards=%d: %v", n, err)
				}
				d := digest{
					fp:     res.Fingerprint(),
					tr:     tl.Digest(),
					kfp:    res.Machine.KernelFingerprint(),
					events: res.Machine.Executed(),
				}
				if i == 0 {
					base = d
					continue
				}
				if d != base {
					t.Errorf("shards=%d diverged from shards=1:\n  fingerprint %016x vs %016x\n  trace       %016x vs %016x\n  kernel      %016x vs %016x\n  events      %d vs %d",
						n, d.fp, base.fp, d.tr, base.tr, d.kfp, base.kfp, d.events, base.events)
				}
			}
		})
	}
}

// TestScaleShardDifferential is the shard-differential twin for the
// 1024×256 scale scenario (which is deliberately not in Golden(), so
// the loop above never sees it): the bounded I/O-group partition and
// the tiled stripe layout must deliver bit-identical results at shard
// worker counts 1, 2, 4, and 8, same as the small platforms.
func TestScaleShardDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("1024×256 runs are not short-mode material")
	}
	sc, ok := scenarios.ByName("scale")
	if !ok {
		t.Fatal("scale scenario not registered")
	}
	type digest struct {
		fp, tr, kfp uint64
		events      uint64
	}
	var base digest
	for i, n := range []int{1, 2, 4, 8} {
		res, tl, err := Run(scenarios.WithShards(sc, n))
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		d := digest{
			fp:     res.Fingerprint(),
			tr:     tl.Digest(),
			kfp:    res.Machine.KernelFingerprint(),
			events: res.Machine.Executed(),
		}
		if i == 0 {
			base = d
			continue
		}
		if d != base {
			t.Errorf("shards=%d diverged from shards=1:\n  fingerprint %016x vs %016x\n  trace       %016x vs %016x\n  kernel      %016x vs %016x\n  events      %d vs %d",
				n, d.fp, base.fp, d.tr, base.tr, d.kfp, base.kfp, d.events, base.events)
		}
	}
}

// TestShardedMatchesLegacySemantics compares the sharded engine against
// the legacy single-kernel engine on every golden scenario. The two
// engines hash their kernels differently (one kernel vs a per-group
// set), so whole-result fingerprints legitimately differ — but every
// observable quantity of the simulation must agree: the trace timeline,
// elapsed simulated time, bytes delivered, per-node delivery digests,
// and the full fault-counter block. This pins the sharded engine to the
// legacy semantics, not merely to itself.
func TestShardedMatchesLegacySemantics(t *testing.T) {
	for _, sc := range scenarios.Golden() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			legacy, ltl, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			sharded, stl, err := Run(scenarios.WithShards(sc, 4))
			if err != nil {
				t.Fatal(err)
			}
			if ltl.Digest() != stl.Digest() {
				t.Errorf("trace digest: legacy %016x, sharded %016x", ltl.Digest(), stl.Digest())
			}
			if legacy.Elapsed != sharded.Elapsed {
				t.Errorf("elapsed: legacy %v, sharded %v", legacy.Elapsed, sharded.Elapsed)
			}
			if legacy.TotalBytes != sharded.TotalBytes || legacy.ReadCalls != sharded.ReadCalls {
				t.Errorf("delivery: legacy %d bytes/%d reads, sharded %d bytes/%d reads",
					legacy.TotalBytes, legacy.ReadCalls, sharded.TotalBytes, sharded.ReadCalls)
			}
			if legacy.UnavailableBytes != sharded.UnavailableBytes {
				t.Errorf("unavailable bytes: legacy %d, sharded %d", legacy.UnavailableBytes, sharded.UnavailableBytes)
			}
			if legacy.Fault != sharded.Fault {
				t.Errorf("fault counters: legacy %+v, sharded %+v", legacy.Fault, sharded.Fault)
			}
			for i, d := range legacy.DeliveryDigests {
				if sharded.DeliveryDigests[i] != d {
					t.Errorf("node %d delivery digest: legacy %016x, sharded %016x", i, d, sharded.DeliveryDigests[i])
				}
			}
			if legacy.Machine.Executed() != sharded.Machine.Executed() {
				t.Errorf("executed events: legacy %d, sharded %d",
					legacy.Machine.Executed(), sharded.Machine.Executed())
			}
		})
	}
}

// TestShardDifferentialRepeat proves one sharded configuration is
// deterministic run-to-run, not merely consistent across worker counts
// in a single pass.
func TestShardDifferentialRepeat(t *testing.T) {
	sc := scenarios.WithShards(scenarios.Golden()[0], 4)
	res1, tl1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	res2, tl2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Fingerprint() != res2.Fingerprint() || tl1.Digest() != tl2.Digest() {
		t.Errorf("repeat run diverged: fingerprint %016x vs %016x, trace %016x vs %016x",
			res1.Fingerprint(), res2.Fingerprint(), tl1.Digest(), tl2.Digest())
	}
}
