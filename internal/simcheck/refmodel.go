package simcheck

import (
	"repro/internal/pfs"
	"repro/internal/workload"
)

// The reference model: an in-memory stand-in for the PFS file, computed
// from the Spec alone with none of the simulator's machinery. The
// simulation carries no real payload bytes, so file content is defined by
// position — refByte(i) is the value of byte i — and "what the node read"
// is the content stream over its delivered ranges. For the access
// patterns whose per-node read sequence is a pure function of the Spec
// (every mode except the unordered shared-pointer pair M_UNIX/M_LOG),
// expectedDeliveries reproduces that sequence analytically; hashing the
// reference content over those ranges and over the ranges a run actually
// delivered must agree byte-for-byte.

// refByte is the reference file's content at offset i: cheap, aperiodic
// over every block size in use, and sensitive to both position bits.
func refByte(i int64) byte { return byte(i ^ (i >> 7) ^ 251*i>>13) }

// contentDigest hashes the reference content over the given ranges, in
// order — the digest of the bytes a node would hold after these reads.
func contentDigest(ranges []pfs.Delivery) uint64 {
	const prime = 1099511628211
	h := pfs.DeliveryHashSeed
	for _, r := range ranges {
		for i := r.Off; i < r.Off+r.N; i++ {
			h ^= uint64(refByte(i))
			h *= prime
		}
	}
	return h
}

// staticAssignment reports whether the spec's per-node read sequence is a
// pure function of the spec (offsets independent of run timing). Only the
// unordered shared-pointer modes fail this: their region claims depend on
// token arrival order.
func staticAssignment(spec workload.Spec) bool {
	if spec.SeparateFiles {
		return true
	}
	switch spec.Mode {
	case pfs.MUnix, pfs.MLog:
		return false
	default:
		return true
	}
}

// expectedDeliveries computes the reference read sequence for one node
// under a statically-assigned spec: exactly the (offset, length) ranges
// the PFS must deliver, in order. Returns nil for specs that are not
// statically assigned.
func expectedDeliveries(spec workload.Spec, parties int, rank int) []pfs.Delivery {
	if !staticAssignment(spec) {
		return nil
	}
	req := spec.RequestSize
	size := spec.FileSize
	var out []pfs.Delivery
	emit := func(off int64) bool {
		if off >= size {
			return false
		}
		n := req
		if off+n > size {
			n = size - off
		}
		out = append(out, pfs.Delivery{Off: off, N: n})
		return true
	}

	switch {
	case spec.SeparateFiles:
		// Each node scans its own share-sized file from the start.
		share := size / int64(parties)
		for off := int64(0); off < share; off += req {
			n := req
			if off+n > share {
				n = share - off
			}
			out = append(out, pfs.Delivery{Off: off, N: n})
		}

	case spec.Mode == pfs.MRecord:
		for r := int64(0); emit((r*int64(parties) + int64(rank)) * req); r++ {
		}

	case spec.Mode == pfs.MSync:
		// Rank prefix-sum with uniform sizes: rank's slice of each round.
		for r := int64(0); emit(r*int64(parties)*req + int64(rank)*req); r++ {
		}

	case spec.Mode == pfs.MGlobal:
		// Every party reads every record (rank 0 reads, the rest receive
		// the broadcast) — the shared pointer advances one record a round.
		for off := int64(0); emit(off); off += req {
		}

	default: // M_ASYNC patterns
		switch spec.Pattern {
		case workload.Interleaved:
			for r := int64(0); emit((r*int64(parties) + int64(rank)) * req); r++ {
			}
		case workload.Partitioned:
			share := size / int64(parties)
			start := int64(rank) * share
			for off := start; off < start+share; off += req {
				emit(off)
			}
		case workload.Random:
			rng := workload.PatternRNG(spec, rank)
			records := size / req / int64(parties)
			maxRec := size / req
			for i := int64(0); i < records; i++ {
				off := rng.Int63n(maxRec) * req
				if off+req > size {
					off = size - req
				}
				emit(off)
			}
		case workload.Strided:
			stride := int64(spec.Stride)
			if stride < 1 {
				stride = 1
			}
			for r := int64(0); emit((r*int64(parties)*stride + int64(rank)*stride) * req); r++ {
			}
		}
	}
	return out
}
