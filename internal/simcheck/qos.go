package simcheck

// This file is the QoS oracle set: open-loop multi-tenant overload
// scenarios checked for determinism, cross-engine agreement, per-tenant
// conservation, starvation-freedom, and weighted fairness — plus the
// deliberately unfair FIFO twin, which must violate the fairness bound
// on some seeds or the sweep is declared too tame to prove anything.

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"

	"repro/internal/ionode"
	"repro/internal/machine"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fairLagSlack is the fairness bound in units of the largest normalized
// single-request cost: a backlogged tenant's normalized-service lag under
// SCFQ never exceeds (Slots + fairLagSlack) of them. Slots requests can
// be in flight past the virtual time and self-clocked tagging adds at
// most two more costs of skew; the FIFO twin, which serves whichever
// tenant burst arrived first, blows through this on heavy-tailed seeds.
const fairLagSlack = 2

// GenerateQoS expands a seed into an open-loop multi-tenant overload
// scenario: a modest machine, a weighted fair-queueing policy with
// per-tenant admission, and a heavy-tailed tenant population whose
// offered load deliberately exceeds the machine's service rate. Pure
// function of the seed, like Generate.
func GenerateQoS(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed*2862933555777941757 + 1442695040888963407))

	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = pick(rng, 2, 4, 4, 8)
	cfg.IONodes = pick(rng, 2, 2, 4)
	cfg.ArrayMembers = pick(rng, 1, 2, 4)
	cfg.UFS.Seed = seed
	cfg.Fair = ionode.FairPolicy{
		Weights:       pick(rng, []int{1}, []int{4, 2, 1}, []int{8, 1}, []int{3, 2, 1, 1}),
		Slots:         pick(rng, 1, 2, 2, 4),
		RatePerWeight: pick64(rng, 32<<10, 64<<10, 128<<10),
		BurstBytes:    pick64(rng, 16<<10, 32<<10, 64<<10),
	}

	spec := &workload.QoSSpec{
		Tenants:     pick(rng, 16, 32, 32, 64, 128),
		Files:       pick(rng, 4, 8, 16),
		FileSize:    1 << 20,
		RequestSize: pick64(rng, 8<<10, 16<<10, 32<<10),
		Requests:    3 + rng.Intn(6),
		MeanGap:     pick(rng, sim.Time(1*sim.Millisecond), 2*sim.Millisecond, 5*sim.Millisecond),
		Seed:        seed,
		SLO:         50 * sim.Millisecond,
	}
	// The interference arm: every PrefetchEvery-th tenant runs the client
	// prefetcher, so readahead competes with everyone else's foreground
	// reads inside the fair queue.
	if rng.Intn(3) == 0 {
		pcfg := prefetch.DefaultConfig()
		pcfg.Depth = 1 + rng.Intn(3)
		spec.Prefetch = &pcfg
		spec.PrefetchEvery = pick(rng, 3, 4, 8)
	}
	return Scenario{Seed: seed, Cfg: cfg, QoS: spec}
}

// executeQoSAt drives one open-loop run at an explicit shard count
// (bypassing the package-level Shards override used by executeQoS).
func executeQoSAt(cfg machine.Config, spec workload.QoSSpec, shards int) run {
	cfg.Shards = shards
	tl := trace.NewLog(traceCap)
	spec.Trace = tl
	res, err := workload.RunQoS(cfg, spec)
	return run{res: res, tl: tl, err: err}
}

func executeQoS(cfg machine.Config, spec workload.QoSSpec) run {
	return executeQoSAt(cfg, spec, Shards)
}

// QoSReport extends a QoS seed's Report with the FIFO twin's fate.
type QoSReport struct {
	Report

	// Throttles is the base run's admission-shed count: a sweep where no
	// seed ever throttles never exercised overload.
	Throttles int64

	// TwinUnfair reports whether the FIFO/no-admission twin violated the
	// fairness bound the real scheduler is held to. A sweep asserts that
	// at least one seed's twin is unfair, proving the scenarios genuinely
	// need the fair scheduler (and that the oracle can detect unfairness
	// at all).
	TwinUnfair bool
}

// CheckQoS expands the seed into an open-loop overload scenario and runs
// the QoS oracle set: determinism (two identical runs), the engine
// differential (legacy vs sharded observables must agree), per-tenant
// request and byte conservation, starvation-freedom, the SCFQ fairness
// bound — and the FIFO twin, which shares every oracle except fairness.
func CheckQoS(seed int64) QoSReport {
	return CheckQoSScenario(GenerateQoS(seed))
}

// CheckQoSScenario runs the QoS oracle set over an explicitly-built
// scenario (sc.QoS must be non-nil).
func CheckQoSScenario(sc Scenario) QoSReport {
	seed := sc.Seed
	rep := QoSReport{Report: Report{Seed: seed, Scenario: sc}}

	base := executeQoS(sc.Cfg, *sc.QoS)
	again := executeQoS(sc.Cfg, *sc.QoS)
	rep.Failures = append(rep.Failures, checkDeterminism(seed, base, again)...)

	// The queue twin mirrors checkQueueTwin for the QoS driver: the
	// same overload scenario under the twin event queue must agree bit
	// for bit with the base run.
	if QueueTwin != "" && sc.Cfg.Queue != QueueTwin {
		qcfg := sc.Cfg
		qcfg.Queue = QueueTwin
		qrun := executeQoS(qcfg, *sc.QoS)
		fail := func(format string, args ...any) {
			rep.Failures = append(rep.Failures,
				Failure{Seed: seed, Oracle: "queue", Detail: fmt.Sprintf(format, args...)})
		}
		switch {
		case (base.err == nil) != (qrun.err == nil):
			fail("base error %v, %s-queue twin error %v", base.err, QueueTwin, qrun.err)
		case base.err != nil:
			if base.err.Error() != qrun.err.Error() {
				fail("error text differs under the %s queue:\n  base: %v\n  twin: %v",
					QueueTwin, base.err, qrun.err)
			}
		default:
			if fa, fb := base.res.Fingerprint(), qrun.res.Fingerprint(); fa != fb {
				fail("result fingerprint differs under the %s queue: %016x vs %016x", QueueTwin, fa, fb)
			}
			if da, db := base.tl.Digest(), qrun.tl.Digest(); da != db {
				fail("trace digest differs under the %s queue: %016x vs %016x", QueueTwin, da, db)
			}
		}
	}

	if base.err != nil {
		rep.RunErr = base.err
		rep.Failures = append(rep.Failures, Failure{Seed: seed, Oracle: "qos",
			Detail: fmt.Sprintf("open-loop run failed: %v", base.err)})
		return rep
	}
	rep.Elapsed = base.res.Elapsed
	rep.Bandwidth = base.res.Bandwidth
	rep.ReadCalls = base.res.ReadCalls
	rep.Fingerprint = base.res.Fingerprint()
	rep.TraceDigest = base.tl.Digest()
	rep.Throttles = base.res.QoS.Throttled

	rep.Failures = append(rep.Failures, checkQoSLedger(seed, sc, base, false)...)
	rep.Failures = append(rep.Failures, checkQoSEngines(seed, sc, base)...)

	// The FIFO twin: same arrival schedule, same instrumentation, no
	// fairness. It must still satisfy determinism-by-construction oracles
	// (conservation, starvation drain) — only the fairness bound is
	// waived, and its violations are what the sweep-level guard counts.
	twin := sc
	twin.Cfg.Fair.FIFO = true
	trun := executeQoS(twin.Cfg, *twin.QoS)
	if trun.err != nil {
		rep.Failures = append(rep.Failures, Failure{Seed: seed, Oracle: "qos",
			Detail: fmt.Sprintf("FIFO twin run failed: %v", trun.err)})
		return rep
	}
	rep.Failures = append(rep.Failures, checkQoSLedger(seed, twin, trun, true)...)
	rep.TwinUnfair = qosUnfair(trun.res)
	return rep
}

// checkQoSLedger is the single-run QoS oracle set: sanity, per-tenant
// request and byte conservation, starvation-freedom, trace agreement,
// and (for the real scheduler, not the FIFO twin) the fairness bound.
func checkQoSLedger(seed int64, sc Scenario, r run, fifo bool) []Failure {
	var fs []Failure
	fail := func(format string, args ...any) {
		fs = append(fs, Failure{Seed: seed, Oracle: "qos", Detail: fmt.Sprintf(format, args...)})
	}
	res := r.res
	q := res.QoS
	if q == nil {
		fail("run carries no QoS ledger")
		return fs
	}
	if res.Elapsed <= 0 {
		fail("elapsed %v not positive", res.Elapsed)
	}
	if q.Arrivals == 0 {
		fail("no arrivals were spawned")
	}
	if k := res.Machine.K; k.Live() != k.Daemons() {
		fail("%d non-daemon process(es) still live after run", k.Live()-k.Daemons())
	}
	if r.tl.Dropped() > 0 {
		fail("trace log dropped %d events", r.tl.Dropped())
	}

	// Every arrival is classified exactly once; delivered bytes are whole
	// requests; the ledgers on the two sides of the wire agree.
	var done, throttled, overloaded, failed, slomet int64
	for ti := range q.Tenants {
		ts := &q.Tenants[ti]
		if got := ts.Done + ts.Throttled + ts.Overloaded + ts.Failed; got != ts.Requests {
			fail("tenant %d: %d of %d arrivals classified (starvation or lost reply)", ti, got, ts.Requests)
		}
		if got := ts.SrvServed + ts.SrvShed + ts.SrvFaulted + ts.SrvDropped; got != ts.SrvArrived {
			fail("tenant %d: server ledger served+shed+faulted+dropped=%d != arrived=%d",
				ti, ts.SrvServed+ts.SrvShed+ts.SrvFaulted+ts.SrvDropped, ts.SrvArrived)
		}
		if got := ts.IOBytes + ts.LateBytes + ts.AbandonedBytes; got != ts.SrvBytes {
			fail("tenant %d: bytes leaked across the wire: client io+late+abandoned=%d, servers=%d",
				ti, got, ts.SrvBytes)
		}
		if ts.Bytes != ts.Done*sc.QoS.RequestSize {
			fail("tenant %d: %d completions delivered %d bytes, want %d",
				ti, ts.Done, ts.Bytes, ts.Done*sc.QoS.RequestSize)
		}
		done += ts.Done
		throttled += ts.Throttled
		overloaded += ts.Overloaded
		failed += ts.Failed
		slomet += ts.SLOMet
	}
	if throttled != q.Throttled || overloaded != q.Overloaded || failed != q.Failed || slomet != q.SLOMet {
		fail("aggregate counters disagree with per-tenant sums")
	}
	if int64(q.Latency.N()) != done {
		fail("latency histogram has %d samples for %d completions", q.Latency.N(), done)
	}
	if fifo && q.Throttled != 0 {
		fail("FIFO twin throttled %d requests; admission must be off", q.Throttled)
	}

	// Trace agreement: one QoSArrival per spawned request, one QoSShed
	// per server-side admission shed.
	if got := int64(r.tl.Count(trace.QoSArrival)); got != q.Arrivals {
		fail("trace recorded %d qos-arrival events, ledger says %d", got, q.Arrivals)
	}
	var srvThrottled int64
	for _, s := range res.Machine.Servers {
		srvThrottled += s.Throttled
	}
	if got := int64(r.tl.Count(trace.QoSShed)); got != srvThrottled {
		fail("trace recorded %d qos-shed events, servers throttled %d", got, srvThrottled)
	}

	// Starvation-freedom and the scheduler invariants, per server: the
	// queue drained, nothing was left in service, no dispatch ever went
	// backwards in virtual time — and, for the real scheduler, no
	// backlogged tenant ever lagged the front-runner by more than the
	// SCFQ bound.
	for i, s := range res.Machine.Servers {
		snap := s.FairSnapshot()
		if snap == nil {
			fail("server %d has no fair scheduler armed", i)
			continue
		}
		if snap.QueueLen != 0 || snap.InService != 0 {
			fail("server %d: %d request(s) still queued, %d in service after drain (starvation)",
				i, snap.QueueLen, snap.InService)
		}
		if snap.MinTagViolations != 0 {
			fail("server %d: %d dispatch(es) below virtual time", i, snap.MinTagViolations)
		}
		if !fifo {
			if bound := uint64(snap.Slots+fairLagSlack) * snap.MaxWeightedCost; snap.MaxLag > bound {
				fail("server %d: fairness violated: max normalized lag %d > (slots %d + %d) x max cost %d = %d",
					i, snap.MaxLag, snap.Slots, fairLagSlack, snap.MaxWeightedCost, bound)
			}
		}
	}
	return fs
}

// qosUnfair scores a run by the exact fairness metric the real scheduler
// is held to, and reports whether any server violated it.
func qosUnfair(res *workload.Result) bool {
	for _, s := range res.Machine.Servers {
		snap := s.FairSnapshot()
		if snap == nil {
			continue
		}
		if snap.MaxLag > uint64(snap.Slots+fairLagSlack)*snap.MaxWeightedCost {
			return true
		}
	}
	return false
}

// checkQoSEngines is the cross-engine differential: the identical
// scenario on the other engine (legacy base → 4-way sharded, sharded
// base → 1-way sharded) must reproduce every observable — the whole
// per-tenant ledger, elapsed time, delivered bytes, delivery digests,
// and the trace timeline. Whole-result fingerprints additionally match
// whenever both runs are on the sharded engine (the kernel-history fold
// legitimately differs between engines, never between shard widths).
func checkQoSEngines(seed int64, sc Scenario, base run) []Failure {
	var fs []Failure
	fail := func(format string, args ...any) {
		fs = append(fs, Failure{Seed: seed, Oracle: "engine-differential", Detail: fmt.Sprintf(format, args...)})
	}
	other := 4
	if Shards > 1 {
		other = 1
	}
	alt := executeQoSAt(sc.Cfg, *sc.QoS, other)
	if alt.err != nil {
		fail("shards=%d run failed: %v", other, alt.err)
		return fs
	}
	if a, b := base.tl.Digest(), alt.tl.Digest(); a != b {
		fail("trace digests differ: %016x (shards=%d) vs %016x (shards=%d)", a, Shards, b, other)
	}
	if base.res.Elapsed != alt.res.Elapsed {
		fail("elapsed differs: %v vs %v", base.res.Elapsed, alt.res.Elapsed)
	}
	if base.res.TotalBytes != alt.res.TotalBytes {
		fail("delivered bytes differ: %d vs %d", base.res.TotalBytes, alt.res.TotalBytes)
	}
	if !reflect.DeepEqual(base.res.DeliveryDigests, alt.res.DeliveryDigests) {
		fail("per-tenant delivery digests differ")
	}
	qa, qb := base.res.QoS, alt.res.QoS
	if !reflect.DeepEqual(qa.Tenants, qb.Tenants) {
		fail("per-tenant QoS ledgers differ between engines")
	}
	// The histogram is compared by digest, not DeepEqual: its lazy sort
	// flag flips when anything fingerprints the base run, which is a
	// representation detail, not an observable.
	if a, b := qa.Latency.Fingerprint(), qb.Latency.Fingerprint(); a != b {
		fail("latency histograms differ: %016x vs %016x", a, b)
	}
	if qa.Arrivals != qb.Arrivals || qa.Throttled != qb.Throttled ||
		qa.Overloaded != qb.Overloaded || qa.Failed != qb.Failed || qa.SLOMet != qb.SLOMet {
		fail("aggregate QoS counters differ: %+v vs %+v",
			[]int64{qa.Arrivals, qa.Throttled, qa.Overloaded, qa.Failed, qa.SLOMet},
			[]int64{qb.Arrivals, qb.Throttled, qb.Overloaded, qb.Failed, qb.SLOMet})
	}
	if Shards >= 1 {
		if a, b := base.res.Fingerprint(), alt.res.Fingerprint(); a != b {
			fail("sharded fingerprints differ across widths: %016x (shards=%d) vs %016x (shards=%d)",
				a, Shards, b, other)
		}
	}
	return fs
}

// CheckQoSRange is CheckRange over CheckQoS: seeds [start, start+n) on a
// worker pool, reports delivered in seed order at every width. It
// returns the failing reports, how many seeds' FIFO twins violated the
// fairness bound, and how many seeds' base runs actually throttled.
func CheckQoSRange(start int64, n, workers int, stopFirst bool, onReport func(QoSReport)) (failed []QoSReport, unfair, throttled int) {
	sweep.Stream(workers, n, func(i int) QoSReport {
		return CheckQoS(start + int64(i))
	}, func(_ int, rep QoSReport) bool {
		if onReport != nil {
			onReport(rep)
		}
		if rep.TwinUnfair {
			unfair++
		}
		if rep.Throttles > 0 {
			throttled++
		}
		if !rep.OK() {
			failed = append(failed, rep)
			if stopFirst {
				return false
			}
		}
		return true
	})
	return failed, unfair, throttled
}

// Describe writes the QoS report: the base run's account plus the FIFO
// twin's fairness verdict.
func (r QoSReport) Describe(w io.Writer) {
	r.Report.Describe(w)
	if r.RunErr == nil {
		fmt.Fprintf(w, "  throttled=%d; fifo twin unfair: %v\n", r.Throttles, r.TwinUnfair)
	}
	if len(r.Failures) > 0 {
		fmt.Fprintf(w, "  replay: go run ./cmd/simcheck -qos -seed %d -v\n", r.Seed)
	}
}
