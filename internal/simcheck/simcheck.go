package simcheck

import (
	"fmt"
	"io"

	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Report is the outcome of checking one seed.
type Report struct {
	Seed     int64
	Scenario Scenario
	Failures []Failure

	// Replay evidence for -v output (zero when the base run errored).
	Elapsed     sim.Time
	Bandwidth   float64
	ReadCalls   int64
	Fingerprint uint64
	TraceDigest uint64
	RunErr      error // base run's error (expected only on Faulty scenarios)
}

// OK reports whether every oracle passed.
func (r Report) OK() bool { return len(r.Failures) == 0 }

// monotoneDelayBump is added to the compute delay for the monotonicity
// rerun. It is large relative to every per-request service time in the
// model so that genuine slowdown dominates any phase effect (a slightly
// shifted arrival pattern can change disk contention either way; +50 ms
// per read cannot make a run faster unless time accounting is broken).
const monotoneDelayBump = 50 * sim.Millisecond

// CheckScenario runs every applicable oracle over an explicitly-built
// scenario — the hook for callers outside the seeded population (the
// prefetcher tournament uses it to prove its hybrid+controller cells
// hold the same determinism, conservation, and data-correctness
// invariants as the generated scenarios).
func CheckScenario(sc Scenario) Report { return checkScenario(sc) }

// Check expands the seed into a scenario and runs every applicable
// oracle over it. It simulates the scenario up to four times: twice
// identically (determinism), once without prefetching (data
// correctness), and once with a longer compute delay (monotonicity).
func Check(seed int64) Report {
	return checkScenario(Generate(seed))
}

// checkScenario runs every oracle applicable to the scenario's fault
// class. Recoverable (chaos) scenarios get the full set minus
// monotonicity, plus the recovery oracle: the run must succeed outright
// and never exhaust a retry budget.
func checkScenario(sc Scenario) Report {
	seed := sc.Seed
	rep := Report{Seed: seed, Scenario: sc}

	base := execute(sc.Cfg, sc.Spec)
	again := execute(sc.Cfg, sc.Spec)
	rep.Failures = append(rep.Failures, checkDeterminism(seed, base, again)...)
	rep.Failures = append(rep.Failures, checkQueueTwin(seed, sc.Cfg, sc.Spec, base)...)

	if base.err != nil {
		rep.RunErr = base.err
		switch {
		case sc.Recoverable:
			rep.Failures = append(rep.Failures, Failure{Seed: seed, Oracle: "recovery",
				Detail: fmt.Sprintf("transient faults with retries armed must always recover, run failed: %v", base.err)})
		case !sc.Faulty:
			rep.Failures = append(rep.Failures, Failure{Seed: seed, Oracle: "sanity",
				Detail: fmt.Sprintf("fault-free scenario failed: %v", base.err)})
		}
		return rep
	}
	rep.Elapsed = base.res.Elapsed
	rep.Bandwidth = base.res.Bandwidth
	rep.ReadCalls = base.res.ReadCalls
	rep.Fingerprint = base.res.Fingerprint()
	rep.TraceDigest = base.tl.Digest()

	rep.Failures = append(rep.Failures, checkSanity(seed, sc, base)...)
	if sc.Recoverable {
		rep.Failures = append(rep.Failures, checkRecovered(seed, base)...)
	}

	if !sc.Faulty {
		rep.Failures = append(rep.Failures, checkConservation(seed, sc, base)...)

		// Data correctness: against the prefetch-off twin when a prefetch
		// placement is configured, and always against the reference file
		// model (checkData compares a run to itself when plain == base,
		// which still exercises the analytic expected-sequence check).
		plain := base
		if sc.Spec.Prefetch != nil || sc.Spec.ServerSide != nil {
			spec := sc.Spec
			spec.Prefetch = nil
			spec.ServerSide = nil
			plain = execute(sc.Cfg, spec)
		}
		rep.Failures = append(rep.Failures, checkData(seed, sc, base, plain)...)

		// Monotonicity: more computation between reads can never make the
		// job finish earlier — unless a prefetcher is installed, in which
		// case longer compute gaps are exactly what lets read-ahead overlap
		// I/O with computation (the paper's central effect), and elapsed
		// time may legitimately drop; and under chaos, shifted arrival
		// times shift which requests draw faults, moving elapsed either
		// way. Only the overlap-free healthy baseline is required to be
		// monotone.
		if sc.Spec.Prefetch == nil && sc.Spec.ServerSide == nil && !sc.Recoverable {
			spec := sc.Spec
			spec.ComputeDelay += monotoneDelayBump
			rep.Failures = append(rep.Failures, checkMonotone(seed, base, execute(sc.Cfg, spec))...)
		}
	}
	return rep
}

// ChaosReport extends a chaos seed's Report with the retries-off twin's
// outcome: the same faulty scenario run without the retry layer.
type ChaosReport struct {
	Report
	// UnprotectedErr is the error of the retries-disabled twin run. nil
	// means the twin got lucky (no fault hit a user-facing request); a
	// chaos sweep asserts that at least one seed's twin failed, proving
	// the scenarios genuinely need the protection they exercise.
	UnprotectedErr error
}

// CheckChaos force-arms the chaos profile on the seed's scenario, runs
// the full oracle set, and then replays the identical scenario with the
// retry layer disabled to observe whether the faults would have been
// fatal without it.
func CheckChaos(seed int64) ChaosReport {
	sc := GenerateChaos(seed)
	crep := ChaosReport{Report: checkScenario(sc)}
	twin := sc
	twin.Cfg.PFS.Retry = pfs.RetryPolicy{}
	crep.UnprotectedErr = execute(twin.Cfg, twin.Spec).err
	return crep
}

// CheckChaosRange is CheckRange over CheckChaos: seeds [start, start+n)
// on a worker pool, reports delivered to onReport in seed order at every
// pool width. It returns the failing reports and how many seeds' twin
// runs failed without retry protection.
func CheckChaosRange(start int64, n, workers int, stopFirst bool, onReport func(ChaosReport)) (failed []ChaosReport, unprotected int) {
	sweep.Stream(workers, n, func(i int) ChaosReport {
		return CheckChaos(start + int64(i))
	}, func(_ int, rep ChaosReport) bool {
		if onReport != nil {
			onReport(rep)
		}
		if rep.UnprotectedErr != nil {
			unprotected++
		}
		if !rep.OK() {
			failed = append(failed, rep)
			if stopFirst {
				return false
			}
		}
		return true
	})
	return failed, unprotected
}

// CrashReport extends a crash seed's Report with the failover-off
// twin's outcome: the same outage schedule run without node-down
// awareness, without the unavailable-read policy, and without parity.
type CrashReport struct {
	Report
	// UnfailoveredErr is the error of the failover-disabled twin run. nil
	// means the twin got lucky (no outage hit a user-facing request hard
	// enough); a crash sweep asserts that at least one seed's twin
	// failed, proving the scenarios genuinely need the protection.
	UnfailoveredErr error
}

// CheckCrash force-arms the crash profile on the seed's scenario, runs
// determinism, sanity, and the crash oracle set, and then replays the
// identical outage schedule with the failover stripped — no down-node
// awareness, no unavailable policy, no parity — to observe whether the
// crashes would have been fatal without the protection.
func CheckCrash(seed int64) CrashReport {
	sc := GenerateCrash(seed)
	rep := CheckCrashScenario(sc)

	twin := sc
	twin.Cfg.NoParity = true
	twin.Cfg.PFS.Retry.DownPoll = 0
	twin.Cfg.PFS.Retry.DownDeadline = 0
	twin.Spec.ContinueOnUnavailable = false
	return CrashReport{Report: rep, UnfailoveredErr: execute(twin.Cfg, twin.Spec).err}
}

// CheckCrashScenario runs determinism, sanity, and the crash oracle set
// over an explicitly-built crash scenario: the machine must carry a
// crash (or member-fail) plan with restart-aware failover armed, and the
// spec a statically-assigned access pattern with ContinueOnUnavailable
// and recorded deliveries, as GenerateCrash builds and as the
// ext-tournament experiment's crash family reuses.
func CheckCrashScenario(sc Scenario) Report {
	seed := sc.Seed
	rep := Report{Seed: seed, Scenario: sc}

	base := execute(sc.Cfg, sc.Spec)
	again := execute(sc.Cfg, sc.Spec)
	rep.Failures = append(rep.Failures, checkDeterminism(seed, base, again)...)
	rep.Failures = append(rep.Failures, checkQueueTwin(seed, sc.Cfg, sc.Spec, base)...)

	if base.err != nil {
		rep.RunErr = base.err
		rep.Failures = append(rep.Failures, Failure{Seed: seed, Oracle: "crash",
			Detail: fmt.Sprintf("crash run with failover armed must survive, run failed: %v", base.err)})
	} else {
		rep.Elapsed = base.res.Elapsed
		rep.Bandwidth = base.res.Bandwidth
		rep.ReadCalls = base.res.ReadCalls
		rep.Fingerprint = base.res.Fingerprint()
		rep.TraceDigest = base.tl.Digest()
		rep.Failures = append(rep.Failures, checkSanity(seed, sc, base)...)
		rep.Failures = append(rep.Failures, checkCrash(seed, sc, base)...)
	}
	return rep
}

// CheckCrashRange is CheckRange over CheckCrash: seeds [start, start+n)
// on a worker pool, reports delivered to onReport in seed order at every
// pool width. It returns the failing reports and how many seeds' twin
// runs failed without failover protection.
func CheckCrashRange(start int64, n, workers int, stopFirst bool, onReport func(CrashReport)) (failed []CrashReport, unprotected int) {
	sweep.Stream(workers, n, func(i int) CrashReport {
		return CheckCrash(start + int64(i))
	}, func(_ int, rep CrashReport) bool {
		if onReport != nil {
			onReport(rep)
		}
		if rep.UnfailoveredErr != nil {
			unprotected++
		}
		if !rep.OK() {
			failed = append(failed, rep)
			if stopFirst {
				return false
			}
		}
		return true
	})
	return failed, unprotected
}

// CheckScale expands the seed onto the 256×64 scale platform
// (GenerateScale) and runs the same oracle set as Check — determinism,
// conservation, data correctness against the prefetch-off twin and the
// reference model, sanity, and (for the overlap-free healthy baseline)
// monotonicity all apply to the flat large-machine layouts unchanged.
func CheckScale(seed int64) Report {
	return checkScenario(GenerateScale(seed))
}

// CheckScaleRange is CheckRange over CheckScale: seeds [start, start+n)
// on a worker pool, reports delivered in seed order at every width.
func CheckScaleRange(start int64, n, workers int, stopFirst bool, onReport func(Report)) []Report {
	var failed []Report
	sweep.Stream(workers, n, func(i int) Report {
		return CheckScale(start + int64(i))
	}, func(_ int, rep Report) bool {
		if onReport != nil {
			onReport(rep)
		}
		if !rep.OK() {
			failed = append(failed, rep)
			if stopFirst {
				return false
			}
		}
		return true
	})
	return failed
}

// CheckRange checks seeds [start, start+n) across a pool of workers
// (workers <= 1 checks serially on the calling goroutine; workers <= 0
// means one worker per CPU). Reports are delivered to onReport in seed
// order regardless of pool width — each seed's check is an independent
// simulation, so the report stream, the returned failure slice, and the
// stop-at-first-failure point are identical at every width. The failing
// reports are returned. If stopFirst is set, no report after the first
// failing seed is delivered.
func CheckRange(start int64, n, workers int, stopFirst bool, onReport func(Report)) []Report {
	var failed []Report
	sweep.Stream(workers, n, func(i int) Report {
		return Check(start + int64(i))
	}, func(_ int, rep Report) bool {
		if onReport != nil {
			onReport(rep)
		}
		if !rep.OK() {
			failed = append(failed, rep)
			if stopFirst {
				return false
			}
		}
		return true
	})
	return failed
}

// Describe writes a human-readable account of the report: the scenario,
// run evidence, and every failure with its replay command.
func (r Report) Describe(w io.Writer) {
	fmt.Fprintf(w, "seed %d: %s\n", r.Seed, r.Scenario.Label())
	if r.RunErr != nil {
		fmt.Fprintf(w, "  run error: %v\n", r.RunErr)
	} else {
		fmt.Fprintf(w, "  elapsed=%v bandwidth=%.2fMB/s reads=%d fingerprint=%016x trace=%016x\n",
			r.Elapsed, r.Bandwidth, r.ReadCalls, r.Fingerprint, r.TraceDigest)
	}
	for _, f := range r.Failures {
		fmt.Fprintf(w, "  FAIL [%s] %s\n", f.Oracle, f.Detail)
	}
	if len(r.Failures) > 0 {
		fmt.Fprintf(w, "  replay: go run ./cmd/simcheck -seed %d -v\n", r.Seed)
	}
}

// Describe writes the chaos report: the protected run's account plus the
// retries-off twin's fate.
func (r ChaosReport) Describe(w io.Writer) {
	r.Report.Describe(w)
	if r.UnprotectedErr != nil {
		fmt.Fprintf(w, "  without retries: %v\n", r.UnprotectedErr)
	} else {
		fmt.Fprintf(w, "  without retries: survived (no fault hit a user-facing request)\n")
	}
	if len(r.Failures) > 0 {
		fmt.Fprintf(w, "  replay: go run ./cmd/simcheck -chaos -seed %d -v\n", r.Seed)
	}
}

// Describe writes the crash report: the protected run's account plus the
// failover-off twin's fate.
func (r CrashReport) Describe(w io.Writer) {
	r.Report.Describe(w)
	if r.UnfailoveredErr != nil {
		fmt.Fprintf(w, "  without failover: %v\n", r.UnfailoveredErr)
	} else {
		fmt.Fprintf(w, "  without failover: survived (no outage hit a user-facing request hard enough)\n")
	}
	if len(r.Failures) > 0 {
		fmt.Fprintf(w, "  replay: go run ./cmd/simcheck -crash -seed %d -v\n", r.Seed)
	}
}
