package simcheck

import (
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// Report is the outcome of checking one seed.
type Report struct {
	Seed     int64
	Scenario Scenario
	Failures []Failure

	// Replay evidence for -v output (zero when the base run errored).
	Elapsed     sim.Time
	Bandwidth   float64
	ReadCalls   int64
	Fingerprint uint64
	TraceDigest uint64
	RunErr      error // base run's error (expected only on Faulty scenarios)
}

// OK reports whether every oracle passed.
func (r Report) OK() bool { return len(r.Failures) == 0 }

// monotoneDelayBump is added to the compute delay for the monotonicity
// rerun. It is large relative to every per-request service time in the
// model so that genuine slowdown dominates any phase effect (a slightly
// shifted arrival pattern can change disk contention either way; +50 ms
// per read cannot make a run faster unless time accounting is broken).
const monotoneDelayBump = 50 * sim.Millisecond

// Check expands the seed into a scenario and runs every applicable
// oracle over it. It simulates the scenario up to four times: twice
// identically (determinism), once without prefetching (data
// correctness), and once with a longer compute delay (monotonicity).
func Check(seed int64) Report {
	sc := Generate(seed)
	rep := Report{Seed: seed, Scenario: sc}

	base := execute(sc.Cfg, sc.Spec)
	again := execute(sc.Cfg, sc.Spec)
	rep.Failures = append(rep.Failures, checkDeterminism(seed, base, again)...)

	if base.err != nil {
		rep.RunErr = base.err
		if !sc.Faulty {
			rep.Failures = append(rep.Failures, Failure{Seed: seed, Oracle: "sanity",
				Detail: fmt.Sprintf("fault-free scenario failed: %v", base.err)})
		}
		return rep
	}
	rep.Elapsed = base.res.Elapsed
	rep.Bandwidth = base.res.Bandwidth
	rep.ReadCalls = base.res.ReadCalls
	rep.Fingerprint = base.res.Fingerprint()
	rep.TraceDigest = base.tl.Digest()

	rep.Failures = append(rep.Failures, checkSanity(seed, sc, base)...)

	if !sc.Faulty {
		rep.Failures = append(rep.Failures, checkConservation(seed, sc, base)...)

		// Data correctness: against the prefetch-off twin when a prefetch
		// placement is configured, and always against the reference file
		// model (checkData compares a run to itself when plain == base,
		// which still exercises the analytic expected-sequence check).
		plain := base
		if sc.Spec.Prefetch != nil || sc.Spec.ServerSide != nil {
			spec := sc.Spec
			spec.Prefetch = nil
			spec.ServerSide = nil
			plain = execute(sc.Cfg, spec)
		}
		rep.Failures = append(rep.Failures, checkData(seed, sc, base, plain)...)

		// Monotonicity: more computation between reads can never make the
		// job finish earlier — unless a prefetcher is installed, in which
		// case longer compute gaps are exactly what lets read-ahead overlap
		// I/O with computation (the paper's central effect), and elapsed
		// time may legitimately drop. Only the overlap-free baseline is
		// required to be monotone.
		if sc.Spec.Prefetch == nil && sc.Spec.ServerSide == nil {
			spec := sc.Spec
			spec.ComputeDelay += monotoneDelayBump
			rep.Failures = append(rep.Failures, checkMonotone(seed, base, execute(sc.Cfg, spec))...)
		}
	}
	return rep
}

// CheckRange checks seeds [start, start+n) across a pool of workers
// (workers <= 1 checks serially on the calling goroutine; workers <= 0
// means one worker per CPU). Reports are delivered to onReport in seed
// order regardless of pool width — each seed's check is an independent
// simulation, so the report stream, the returned failure slice, and the
// stop-at-first-failure point are identical at every width. The failing
// reports are returned. If stopFirst is set, no report after the first
// failing seed is delivered.
func CheckRange(start int64, n, workers int, stopFirst bool, onReport func(Report)) []Report {
	var failed []Report
	sweep.Stream(workers, n, func(i int) Report {
		return Check(start + int64(i))
	}, func(_ int, rep Report) bool {
		if onReport != nil {
			onReport(rep)
		}
		if !rep.OK() {
			failed = append(failed, rep)
			if stopFirst {
				return false
			}
		}
		return true
	})
	return failed
}

// Describe writes a human-readable account of the report: the scenario,
// run evidence, and every failure with its replay command.
func (r Report) Describe(w io.Writer) {
	fmt.Fprintf(w, "seed %d: %s\n", r.Seed, r.Scenario.Label())
	if r.RunErr != nil {
		fmt.Fprintf(w, "  run error: %v\n", r.RunErr)
	} else {
		fmt.Fprintf(w, "  elapsed=%v bandwidth=%.2fMB/s reads=%d fingerprint=%016x trace=%016x\n",
			r.Elapsed, r.Bandwidth, r.ReadCalls, r.Fingerprint, r.TraceDigest)
	}
	for _, f := range r.Failures {
		fmt.Fprintf(w, "  FAIL [%s] %s\n", f.Oracle, f.Detail)
	}
	if len(r.Failures) > 0 {
		fmt.Fprintf(w, "  replay: go run ./cmd/simcheck -seed %d -v\n", r.Seed)
	}
}
