package simcheck

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// A Failure is one oracle violation, tagged with the seed that replays it.
type Failure struct {
	Seed   int64
	Oracle string // determinism | data | conservation | sanity
	Detail string
}

func (f Failure) Error() string {
	return fmt.Sprintf("seed %d: %s oracle: %s", f.Seed, f.Oracle, f.Detail)
}

// run is one simulation execution with its trace attached.
type run struct {
	res *workload.Result
	tl  *trace.Log
	err error
}

// traceCap bounds the per-run trace log. Scenario files are a few MB at
// most, so full traces are a few thousand events; the sanity oracle
// asserts nothing was dropped.
const traceCap = 1 << 18

// Shards, when positive, runs every checked simulation on the sharded
// engine with that many workers (machine.Config.Shards). The oracles
// are engine-agnostic — determinism, conservation, and sanity must hold
// either way — so pointing the whole battery at the sharded engine is
// the cheap way to soak it across random scenarios.
var Shards int

// QueueTwin, when non-empty, re-runs every checked scenario under the
// named event-queue implementation (machine.Config.Queue, e.g.
// sim.QueueLadder) and requires a bit-identical result fingerprint and
// trace digest. Both queues realize the same (time, seq) total order,
// so any divergence is a queue bug; folding the twin into the existing
// healthy/chaos/crash/scale/qos sweeps soaks the ladder queue across
// random scenarios the same way Shards soaks the sharded engine — and
// composed with Shards, the twin runs sharded too.
var QueueTwin string

// checkQueueTwin re-executes the scenario under the QueueTwin queue and
// compares it against base, mirroring checkDeterminism (same error, or
// same fingerprint and trace digest) under the "queue" oracle.
func checkQueueTwin(seed int64, cfg machine.Config, spec workload.Spec, base run) []Failure {
	if QueueTwin == "" || cfg.Queue == QueueTwin {
		return nil
	}
	cfg.Queue = QueueTwin
	twin := execute(cfg, spec)
	var fs []Failure
	fail := func(format string, args ...any) {
		fs = append(fs, Failure{Seed: seed, Oracle: "queue", Detail: fmt.Sprintf(format, args...)})
	}
	switch {
	case (base.err == nil) != (twin.err == nil):
		fail("base error %v, %s-queue twin error %v", base.err, QueueTwin, twin.err)
	case base.err != nil:
		if base.err.Error() != twin.err.Error() {
			fail("error text differs under the %s queue:\n  base: %v\n  twin: %v",
				QueueTwin, base.err, twin.err)
		}
	default:
		if fa, fb := base.res.Fingerprint(), twin.res.Fingerprint(); fa != fb {
			fail("result fingerprint differs under the %s queue: %016x vs %016x", QueueTwin, fa, fb)
		}
		if da, db := base.tl.Digest(), twin.tl.Digest(); da != db {
			fail("trace digest differs under the %s queue: %016x vs %016x (%d vs %d events)",
				QueueTwin, da, db, len(base.tl.Events()), len(twin.tl.Events()))
		}
	}
	return fs
}

// execute builds a fresh machine for the scenario and drives it once.
// The spec may be tweaked by the caller (reference runs, delay bumps).
func execute(cfg machine.Config, spec workload.Spec) run {
	if Shards > 0 {
		cfg.Shards = Shards
	}
	tl := trace.NewLog(traceCap)
	spec.Trace = tl
	res, err := workload.Run(cfg, spec)
	return run{res: res, tl: tl, err: err}
}

// checkDeterminism compares two executions of the identical scenario.
func checkDeterminism(seed int64, a, b run) []Failure {
	var fs []Failure
	fail := func(format string, args ...any) {
		fs = append(fs, Failure{Seed: seed, Oracle: "determinism", Detail: fmt.Sprintf(format, args...)})
	}
	switch {
	case (a.err == nil) != (b.err == nil):
		fail("run 1 error %v, run 2 error %v", a.err, b.err)
	case a.err != nil:
		if a.err.Error() != b.err.Error() {
			fail("error text differs:\n  run 1: %v\n  run 2: %v", a.err, b.err)
		}
	default:
		if fa, fb := a.res.Fingerprint(), b.res.Fingerprint(); fa != fb {
			fail("result fingerprints differ: %016x vs %016x", fa, fb)
		}
		if da, db := a.tl.Digest(), b.tl.Digest(); da != db {
			fail("trace digests differ: %016x vs %016x (%d vs %d events)",
				da, db, len(a.tl.Events()), len(b.tl.Events()))
		}
	}
	return fs
}

// checkSanity asserts the basic well-formedness of one successful run.
func checkSanity(seed int64, sc Scenario, r run) []Failure {
	var fs []Failure
	fail := func(format string, args ...any) {
		fs = append(fs, Failure{Seed: seed, Oracle: "sanity", Detail: fmt.Sprintf(format, args...)})
	}
	res := r.res
	if res.Elapsed <= 0 {
		fail("elapsed %v not positive", res.Elapsed)
	}
	if res.Bandwidth <= 0 {
		fail("bandwidth %.3f not positive", res.Bandwidth)
	}
	for i, t := range res.NodeTimes {
		if t <= 0 || t > res.Elapsed {
			fail("node %d completion %v outside (0, %v]", i, t, res.Elapsed)
		}
	}
	if k := res.Machine.K; k.Live() != k.Daemons() {
		fail("%d non-daemon process(es) still live after run", k.Live()-k.Daemons())
	}
	if r.tl.Dropped() > 0 {
		fail("trace log dropped %d events (capacity %d too small for oracle use)", r.tl.Dropped(), traceCap)
	}
	if res.ReadTime.N() != int(res.ReadCalls) {
		fail("read latency histogram has %d samples for %d read calls", res.ReadTime.N(), res.ReadCalls)
	}
	if min := res.ReadTime.Min(); min < 0 {
		fail("negative read latency %v", min)
	}
	return fs
}

// checkRecovered asserts the fault-tolerance contract of a recoverable
// scenario's successful run: no retry budget ran out anywhere — not even
// on a speculative prefetch, whose give-up would have been masked by the
// fallback path — and the books of the retry layer are internally
// consistent.
func checkRecovered(seed int64, r run) []Failure {
	var fs []Failure
	fail := func(format string, args ...any) {
		fs = append(fs, Failure{Seed: seed, Oracle: "recovery", Detail: fmt.Sprintf(format, args...)})
	}
	fc := r.res.Fault
	if fc.GiveUps != 0 {
		fail("%d piece(s) exhausted the retry budget under purely transient faults", fc.GiveUps)
	}
	if fc.DiskPermanent != 0 {
		fail("%d permanent faults injected in a transient-only profile", fc.DiskPermanent)
	}
	if got := int64(r.tl.Count(trace.RetryIssue)); r.tl.Dropped() == 0 && got != fc.Retries {
		fail("trace recorded %d retry-issue events, counters say %d", got, fc.Retries)
	}
	if got := int64(r.tl.Count(trace.TimeoutFired)); r.tl.Dropped() == 0 && got != fc.Timeouts {
		fail("trace recorded %d timeout-fired events, counters say %d", got, fc.Timeouts)
	}
	return fs
}

// checkCrash is the crash-chaos oracle set: over a run with scheduled
// whole-node outages (and maybe a permanent member loss plus rebuild),
// it proves that every byte a node requested was delivered correctly,
// counted late, or counted unavailable — never silently lost — and that
// the crash-domain bookkeeping is internally consistent.
func checkCrash(seed int64, sc Scenario, r run) []Failure {
	var fs []Failure
	fail := func(format string, args ...any) {
		fs = append(fs, Failure{Seed: seed, Oracle: "crash", Detail: fmt.Sprintf(format, args...)})
	}
	res := r.res
	fc := res.Fault

	// The failover layer never burns a retry budget: the per-attempt
	// deadline is far above every healthy service time, down nodes are
	// recognized and waited out or declared unavailable, and there are no
	// injected disk faults to retry.
	if fc.GiveUps != 0 {
		fail("%d piece(s) exhausted the retry budget despite restart-aware failover", fc.GiveUps)
	}

	// Per node: the reference model says which ranges the node was owed.
	// The delivered list must be that sequence minus exactly the reads
	// counted unavailable — an order-preserving subsequence, every range
	// verbatim (content is position-defined, so matching (off,n) pairs is
	// byte-for-byte correctness).
	req := sc.Spec.RequestSize
	for i, got := range res.Deliveries {
		want := expectedDeliveries(sc.Spec, sc.Cfg.ComputeNodes, i)
		var wantBytes, gotBytes int64
		for _, d := range want {
			wantBytes += d.N
		}
		for _, d := range got {
			gotBytes += d.N
		}
		if wantBytes != gotBytes+res.NodeUnavailableBytes[i] {
			fail("node %d: owed %d bytes, delivered %d + unavailable %d",
				i, wantBytes, gotBytes, res.NodeUnavailableBytes[i])
			continue
		}
		skipped := int64(0)
		w := 0
		ok := true
		for _, d := range got {
			for w < len(want) && want[w] != d {
				skipped++
				w++
			}
			if w == len(want) {
				fail("node %d: delivered [%d,+%d) is not in the owed sequence (order or range mismatch)",
					i, d.Off, d.N)
				ok = false
				break
			}
			w++
		}
		if !ok {
			continue
		}
		skipped += int64(len(want) - w)
		if skipped*req != res.NodeUnavailableBytes[i] {
			fail("node %d: %d owed read(s) undelivered, but %d counted unavailable",
				i, skipped, res.NodeUnavailableBytes[i]/req)
		}
	}

	// Unavailable tallies cross-foot: per-node sums match the totals, and
	// every unavailable read traces back to at least one piece the
	// failover layer declared unavailable.
	var nodeUnavail int64
	for _, b := range res.NodeUnavailableBytes {
		nodeUnavail += b
	}
	if nodeUnavail != res.UnavailableBytes || res.UnavailableBytes != res.UnavailableReads*req {
		fail("unavailable accounting: node sum %d, total %d, %d reads × %d",
			nodeUnavail, res.UnavailableBytes, res.UnavailableReads, req)
	}
	if res.UnavailableReads > 0 && fc.Unavailable == 0 {
		fail("%d read(s) unavailable but no piece was declared unavailable", res.UnavailableReads)
	}

	// Delivered ranges account for every byte the applications read.
	var delivered int64
	for _, ranges := range res.Deliveries {
		for _, d := range ranges {
			delivered += d.N
		}
	}
	if delivered != res.TotalBytes {
		fail("delivery records cover %d bytes, applications read %d", delivered, res.TotalBytes)
	}

	// Bytes leaving the I/O nodes are conserved: consumed over the fast
	// path, discarded as a late reply, or served inside a read that
	// overall failed (abandoned) — nothing minted, nothing lost.
	var served int64
	for _, s := range res.Machine.Servers {
		served += s.BytesServed
	}
	if served != res.IOBytes+fc.LateBytes+fc.AbandonedBytes {
		fail("I/O nodes served %d bytes, fast path accounted %d (+%d late, +%d abandoned)",
			served, res.IOBytes, fc.LateBytes, fc.AbandonedBytes)
	}

	// The prefetcher classifies every read routed through it — including
	// the ones that came back unavailable — exactly once, and delivered
	// bytes split cleanly between buffer copies and direct reads.
	if p := res.Prefetch; p != nil {
		servedReads := p.Hits + p.HitsInWait + p.Misses + p.Fallbacks
		if want := res.ReadCalls + res.UnavailableReads; servedReads != want {
			fail("prefetch counters sum to %d (%d hit + %d wait + %d miss + %d fallback), want %d reads (%d ok + %d unavailable)",
				servedReads, p.Hits, p.HitsInWait, p.Misses, p.Fallbacks, want, res.ReadCalls, res.UnavailableReads)
		}
		if p.BytesCopied+p.BytesDirect != res.TotalBytes {
			fail("prefetcher delivered %d buffer + %d direct bytes, applications read %d",
				p.BytesCopied, p.BytesDirect, res.TotalBytes)
		}
	}

	// Lifecycle bookkeeping: the kernel drains every scheduled event, so
	// each crash has fired and each crashed node has restarted by the time
	// the run returns; the trace saw the same transitions the counters did.
	if !sc.Cfg.Crash.Enabled() {
		fail("crash scenario generated without a crash plan")
	} else if fc.NodeCrashes == 0 {
		fail("crash plan armed but no node crashed")
	}
	if fc.NodeRestarts != fc.NodeCrashes {
		fail("%d crash(es) but %d restart(s)", fc.NodeCrashes, fc.NodeRestarts)
	}
	if r.tl.Dropped() == 0 {
		for _, c := range []struct {
			kind trace.Kind
			n    int64
		}{
			{trace.NodeCrash, fc.NodeCrashes},
			{trace.NodeRestart, fc.NodeRestarts},
			{trace.DegradedRead, fc.ArrayDegraded},
			{trace.RebuildIO, fc.RebuildIOs},
			{trace.RetryIssue, fc.Retries},
			{trace.TimeoutFired, fc.Timeouts},
		} {
			if got := int64(r.tl.Count(c.kind)); got != c.n {
				fail("trace recorded %d %v events, counters say %d", got, c.kind, c.n)
			}
		}
	}

	// Member loss and rebuild: the failure fired, and an armed rebuild
	// finished before the kernel drained — the array ends healthy.
	if mf := sc.Cfg.MemberFail; mf.Enabled() {
		if fc.MemberFails != 1 {
			fail("member-fail plan armed but %d member(s) failed", fc.MemberFails)
		}
		a := res.Machine.Arrays[mf.Array]
		if sc.Cfg.Rebuild.Chunk > 0 {
			if a.RebuildDoneAt == 0 || a.Degraded() || a.Rebuilding() {
				fail("rebuild did not complete: doneAt=%v degraded=%v rebuilding=%v",
					a.RebuildDoneAt, a.Degraded(), a.Rebuilding())
			}
			if got := int64(r.tl.Count(trace.RebuildDone)); r.tl.Dropped() == 0 && got != 1 {
				fail("trace recorded %d rebuild-done events, want 1", got)
			}
		} else if !a.Degraded() {
			fail("no rebuild armed but the array is not degraded at run end")
		}
	}
	return fs
}

// checkMonotone asserts that adding compute delay never makes the run
// finish earlier. base succeeded with sc.Spec; slower is the same
// scenario with a strictly larger ComputeDelay.
func checkMonotone(seed int64, base, slower run) []Failure {
	if slower.err != nil {
		return []Failure{{Seed: seed, Oracle: "sanity",
			Detail: fmt.Sprintf("delay-bumped rerun failed: %v", slower.err)}}
	}
	if slower.res.Elapsed < base.res.Elapsed {
		return []Failure{{Seed: seed, Oracle: "sanity",
			Detail: fmt.Sprintf("elapsed decreased when compute delay increased: %v -> %v",
				base.res.Elapsed, slower.res.Elapsed)}}
	}
	return nil
}

// checkConservation cross-foots the byte and counter accounting of one
// successful, fault-free run.
func checkConservation(seed int64, sc Scenario, r run) []Failure {
	var fs []Failure
	fail := func(format string, args ...any) {
		fs = append(fs, Failure{Seed: seed, Oracle: "conservation", Detail: fmt.Sprintf(format, args...)})
	}
	res := r.res

	// Delivered ranges must account for every byte the applications read.
	var delivered int64
	for _, ranges := range res.Deliveries {
		for _, d := range ranges {
			delivered += d.N
		}
	}
	if delivered != res.TotalBytes {
		fail("delivery records cover %d bytes, applications read %d", delivered, res.TotalBytes)
	}

	// Every byte pulled over the fast path by user-facing instances left
	// an I/O node exactly once, and vice versa: nothing minted, nothing
	// double-served. (Server-side cache hints do not count as service.)
	// Under the retry layer one slack term appears: a reply that lost the
	// race against its attempt's deadline was served and paid for on the
	// mesh but discarded by the client, so served bytes may exceed the
	// fast-path account by exactly the late-reply bytes.
	var served int64
	for _, s := range res.Machine.Servers {
		served += s.BytesServed
	}
	if served != res.IOBytes+res.Fault.LateBytes {
		fail("I/O nodes served %d bytes, fast path accounted %d (+%d late)",
			served, res.IOBytes, res.Fault.LateBytes)
	}

	// The prefetcher must classify every read it served, exactly once:
	// hits + waited hits + misses + fallbacks = reads routed through it.
	if p := res.Prefetch; p != nil {
		servedReads := p.Hits + p.HitsInWait + p.Misses + p.Fallbacks
		wantReads := res.ReadCalls
		if sc.Spec.Mode == pfs.MGlobal {
			// Only the broadcast root routes through the prefetcher.
			wantReads /= int64(sc.Cfg.ComputeNodes)
		}
		if servedReads != wantReads {
			fail("prefetch counters sum to %d (%d hit + %d wait + %d miss + %d fallback), want %d reads",
				servedReads, p.Hits, p.HitsInWait, p.Misses, p.Fallbacks, wantReads)
		}
		// The trace saw the same decisions the counters did.
		if r.tl.Dropped() == 0 {
			for _, c := range []struct {
				kind trace.Kind
				n    int64
			}{
				{trace.PrefetchHit, p.Hits},
				{trace.PrefetchWait, p.HitsInWait},
				{trace.PrefetchMiss, p.Misses},
				{trace.PrefetchIssue, p.Issued},
			} {
				if got := int64(r.tl.Count(c.kind)); got != c.n {
					fail("trace recorded %d %v events, counters say %d", got, c.kind, c.n)
				}
			}
		}
		// Delivered bytes split cleanly between buffer copies and direct
		// reads (M_GLOBAL non-root broadcast deliveries are neither).
		if sc.Spec.Mode != pfs.MGlobal && p.BytesCopied+p.BytesDirect != res.TotalBytes {
			fail("prefetcher delivered %d buffer + %d direct bytes, applications read %d",
				p.BytesCopied, p.BytesDirect, res.TotalBytes)
		}
		// With the zoo armed, the registry's attribution must balance the
		// prefetcher's own books: every issued buffer was charged to
		// exactly one source, every buffer-served read was credited to
		// one, and the close-time split matches counter for counter. The
		// run has closed every file, so Totals covers all streams.
		if zoo := p.Zoo(); zoo != nil {
			var sum struct{ issued, consumed, wasted, unread int64 }
			for _, s := range zoo.Totals() {
				sum.issued += s.Issued
				sum.consumed += s.Consumed
				sum.wasted += s.Wasted
				sum.unread += s.Unread
			}
			if sum.issued != p.Issued {
				fail("zoo sources account %d issued buffers, prefetcher issued %d", sum.issued, p.Issued)
			}
			if sum.consumed != p.Hits+p.HitsInWait {
				fail("zoo sources account %d consumed buffers, prefetcher served %d from buffers",
					sum.consumed, p.Hits+p.HitsInWait)
			}
			if sum.wasted != p.Wasted {
				fail("zoo sources account %d wasted buffers, prefetcher wasted %d", sum.wasted, p.Wasted)
			}
			if sum.unread != p.UnreadAtClose {
				fail("zoo sources account %d unread-at-close buffers, prefetcher counted %d",
					sum.unread, p.UnreadAtClose)
			}
		}
	}

	// Full-pass access patterns must deliver the file exactly once — no
	// gaps, no byte delivered twice.
	switch coverageShape(sc.Spec) {
	case coverUnion:
		if d := exactCover(flatten(res.Deliveries), sc.Spec.FileSize); d != "" {
			fail("union coverage: %s", d)
		}
	case coverPerNode:
		size := sc.Spec.FileSize
		if sc.Spec.SeparateFiles {
			size /= int64(sc.Cfg.ComputeNodes)
		}
		for i, ranges := range res.Deliveries {
			if d := exactCover(append([]pfs.Delivery(nil), ranges...), size); d != "" {
				fail("node %d coverage: %s", i, d)
			}
		}
	}
	return fs
}

type coverKind int

const (
	coverNone    coverKind = iota // pattern legitimately skips or repeats bytes
	coverUnion                    // all nodes together read the file exactly once
	coverPerNode                  // every node reads its (own) file exactly once
)

// coverageShape classifies what "read the whole file exactly once" means
// for a spec, if anything.
func coverageShape(spec workload.Spec) coverKind {
	switch {
	case spec.SeparateFiles:
		return coverPerNode
	case spec.Mode == pfs.MGlobal:
		return coverPerNode // every node receives the whole file
	case spec.Mode == pfs.MAsync && (spec.Pattern == workload.Random || (spec.Pattern == workload.Strided && spec.Stride > 1)):
		return coverNone
	default:
		return coverUnion
	}
}

// flatten merges per-node delivery lists into one slice.
func flatten(per [][]pfs.Delivery) []pfs.Delivery {
	var out []pfs.Delivery
	for _, ranges := range per {
		out = append(out, ranges...)
	}
	return out
}

// exactCover checks that ranges tile [0, size) with no gap and no
// overlap, returning "" or a description of the first defect. The input
// slice is reordered.
func exactCover(ranges []pfs.Delivery, size int64) string {
	sort.Slice(ranges, func(i, j int) bool {
		if ranges[i].Off != ranges[j].Off {
			return ranges[i].Off < ranges[j].Off
		}
		return ranges[i].N < ranges[j].N
	})
	var at int64
	for _, r := range ranges {
		switch {
		case r.Off > at:
			return fmt.Sprintf("gap [%d,%d) never delivered", at, r.Off)
		case r.Off < at:
			return fmt.Sprintf("overlap: [%d,+%d) delivered after coverage reached %d", r.Off, r.N, at)
		}
		at = r.Off + r.N
	}
	if at != size {
		return fmt.Sprintf("coverage ends at %d of %d bytes", at, size)
	}
	return ""
}

// checkData is the data-correctness oracle: with a prefetch service
// installed, every node must receive byte-identical data to the plain
// fast-path run, and — where the access sequence is statically assigned —
// to the in-memory reference file model.
func checkData(seed int64, sc Scenario, fetched, plain run) []Failure {
	var fs []Failure
	fail := func(format string, args ...any) {
		fs = append(fs, Failure{Seed: seed, Oracle: "data", Detail: fmt.Sprintf(format, args...)})
	}
	if plain.err != nil {
		return []Failure{{Seed: seed, Oracle: "data",
			Detail: fmt.Sprintf("prefetch-off reference run failed: %v", plain.err)}}
	}
	if fetched.res.TotalBytes != plain.res.TotalBytes {
		fail("prefetch-on read %d bytes, prefetch-off %d", fetched.res.TotalBytes, plain.res.TotalBytes)
	}

	static := staticAssignment(sc.Spec)
	parties := sc.Cfg.ComputeNodes
	for i := range fetched.res.DeliveryDigests {
		if static {
			// Order-sensitive per-node comparison, three ways: prefetch-on
			// vs prefetch-off range digests, and both vs the reference
			// file's content over the analytically expected ranges.
			if a, b := fetched.res.DeliveryDigests[i], plain.res.DeliveryDigests[i]; a != b {
				fail("node %d: delivered ranges differ with prefetching (digest %016x vs %016x)", i, a, b)
				continue
			}
			want := expectedDeliveries(sc.Spec, parties, i)
			if got := fetched.res.Deliveries[i]; contentDigest(got) != contentDigest(want) {
				fail("node %d: delivered content differs from reference file (%d ranges, want %d): %s",
					i, len(got), len(want), firstRangeDiff(got, want))
			}
		}
	}
	if !static {
		// Unordered shared-pointer modes: region claims depend on timing,
		// so compare the union — both runs must deliver the same multiset
		// of ranges (each an exact cover, checked by conservation).
		if d := sameRangeMultiset(flatten(fetched.res.Deliveries), flatten(plain.res.Deliveries)); d != "" {
			fail("delivered range multisets differ with prefetching: %s", d)
		}
	}
	return fs
}

// firstRangeDiff describes the first position where two delivery
// sequences disagree.
func firstRangeDiff(got, want []pfs.Delivery) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return fmt.Sprintf("read %d delivered [%d,+%d), reference says [%d,+%d)",
				i, got[i].Off, got[i].N, want[i].Off, want[i].N)
		}
	}
	return fmt.Sprintf("common prefix of %d reads agrees", n)
}

// sameRangeMultiset compares two unordered collections of ranges.
func sameRangeMultiset(a, b []pfs.Delivery) string {
	key := func(rs []pfs.Delivery) map[pfs.Delivery]int {
		m := make(map[pfs.Delivery]int, len(rs))
		for _, r := range rs {
			m[r]++
		}
		return m
	}
	ma, mb := key(a), key(b)
	for r, n := range ma {
		if mb[r] != n {
			return fmt.Sprintf("[%d,+%d) delivered %d time(s) with prefetch, %d without", r.Off, r.N, n, mb[r])
		}
	}
	for r, n := range mb {
		if ma[r] != n {
			return fmt.Sprintf("[%d,+%d) delivered %d time(s) without prefetch, %d with", r.Off, r.N, n, ma[r])
		}
	}
	return ""
}
