// Package simcheck is the repository's deterministic-simulation checker:
// a seeded random scenario generator plus a set of invariant oracles run
// over every generated scenario. Each seed expands to one fully-specified
// machine + workload configuration; the oracles then run the simulation
// several times (twice identically, once without prefetching, once with a
// longer compute delay) and cross-check the runs:
//
//   - determinism: same seed ⇒ bit-identical result fingerprints and
//     trace digests;
//   - data correctness: the byte ranges delivered to every node with
//     prefetching on are exactly the ranges delivered with it off, and —
//     for the statically-assigned access patterns — exactly what a
//     trivial in-memory reference file model says they must be;
//   - conservation: bytes delivered = bytes read over the fast path =
//     bytes leaving the I/O nodes, and the prefetcher's hit/wait/miss
//     counters sum to the read count;
//   - sanity: positive elapsed time, no residual non-daemon processes,
//     monotone elapsed time in the compute delay.
//
// Any failure carries its seed; `go run ./cmd/simcheck -seed N -v`
// replays that exact scenario.
package simcheck

import (
	"fmt"
	"math/rand"

	"repro/internal/disk"
	"repro/internal/ionode"
	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Scenario is one fully-specified check case: everything needed to build
// the machine and drive the workload, derived purely from Seed.
type Scenario struct {
	Seed int64
	Cfg  machine.Config
	Spec workload.Spec

	// Faulty marks scenarios with legacy one-shot disk fault injection
	// armed and no retry protection. Faults make end-to-end success (and
	// thus the byte-accounting oracles) dependent on which requests die,
	// so only the determinism and basic sanity oracles run on them.
	Faulty bool

	// Recoverable marks chaos scenarios: purely transient disk faults at
	// a low rate with the PFS retry layer armed (and sometimes I/O-node
	// shedding and service-time jitter on top). Every fault must be
	// ridden out — a transiently faulted sector succeeds on re-read by
	// construction — so the full oracle set applies, except monotonicity
	// (shifting arrival times shifts which requests draw faults).
	Recoverable bool

	// QoS marks open-loop multi-tenant scenarios: non-nil means the run
	// is driven by workload.RunQoS over this spec (Spec is ignored), with
	// the fair scheduler armed in Cfg.Fair and the QoS oracle set —
	// determinism, engine differential, per-tenant conservation,
	// starvation-freedom, and the fairness bound — applied instead of the
	// file-workload oracles.
	QoS *workload.QoSSpec

	// Crashy marks crash-chaos scenarios: whole-I/O-node crash–restart
	// outages (and sometimes a permanent RAID member loss with an online
	// rebuild) under the restart-aware failover policy, with the workload
	// tolerating reads the failover deterministically declares
	// unavailable. The crash oracle set proves every requested byte was
	// delivered correctly, counted late, or counted unavailable — never
	// silently lost (see checkCrashScenario).
	Crashy bool
}

// Generate expands a seed into a scenario. The same seed always yields
// the same scenario; different seeds explore machine shapes, stripe
// layouts, I/O modes, access patterns, request sizes, compute delays,
// prefetch configurations, and fault injection.
func Generate(seed int64) Scenario {
	// Decorrelate neighbouring seeds without losing replayability: the
	// scenario is a pure function of the seed either way.
	rng := rand.New(rand.NewSource(seed*6364136223846793005 + 1442695040888963407))

	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = pick(rng, 1, 2, 2, 3, 4, 4, 8)
	cfg.IONodes = pick(rng, 1, 2, 2, 4, 4)
	cfg.ArrayMembers = pick(rng, 1, 2, 4)
	cfg.UFS.BlockSize = pick64(rng, 16<<10, 64<<10, 64<<10)
	cfg.UFS.Seed = seed

	req := pick64(rng, 8<<10, 16<<10, 32<<10, 64<<10)
	rounds := int64(2 + rng.Intn(7)) // reads per node in a full pass
	spec := workload.Spec{
		File:        "simcheck",
		FileSize:    int64(cfg.ComputeNodes) * req * rounds,
		RequestSize: req,
		// Divisor-friendly sizes keep every pattern an exact pass, which
		// the coverage oracle depends on.
		ComputeDelay:     pick(rng, 0, 0, sim.Time(2*sim.Millisecond), sim.Time(10*sim.Millisecond), sim.Time(40*sim.Millisecond)),
		StripeUnit:       pick64(rng, 0, 0, 8<<10, 32<<10, 128<<10),
		Seed:             seed,
		RecordDeliveries: true,
	}
	if g := rng.Intn(cfg.IONodes + 2); g <= cfg.IONodes && g > 0 {
		spec.StripeGroup = g
	}

	// Mode and pattern.
	switch rng.Intn(8) {
	case 0:
		spec.Mode = pfs.MUnix
	case 1:
		spec.Mode = pfs.MLog
	case 2:
		spec.Mode = pfs.MSync
	case 3, 4:
		spec.Mode = pfs.MRecord
	case 5:
		spec.Mode = pfs.MGlobal
	case 6:
		spec.Mode = pfs.MAsync
		spec.Pattern = workload.Pattern(rng.Intn(4))
		spec.Stride = 2 + rng.Intn(3)
	default:
		spec.Mode = pfs.MAsync
		spec.SeparateFiles = true
	}

	// Prefetch placement: the compute-node prototype most of the time,
	// occasionally the server-side hints on a buffered mount, sometimes
	// neither (the baseline still exercises determinism and conservation).
	switch r := rng.Intn(10); {
	case r < 6:
		pcfg := prefetch.DefaultConfig()
		pcfg.Depth = 1 + rng.Intn(3)
		pcfg.MaxBuffers = 2 + rng.Intn(7)
		pcfg.Adaptive = rng.Intn(5) == 0
		pcfg.FreeCopy = rng.Intn(5) == 0
		// The zoo policies and the online controller join the organic
		// population, so every oracle (including the registry's
		// attribution cross-foot in checkConservation) runs over them on
		// every sweep.
		pcfg.Policy = pick(rng, "", "", "", "mode", "sequential", "stride", "hybrid", "hybrid")
		if rng.Intn(3) == 0 {
			pcfg.Controller = prefetch.ControllerConfig{Interval: int64(2 + rng.Intn(6))}
		}
		spec.Prefetch = &pcfg
	case r < 7:
		sscfg := prefetch.DefaultServerSideConfig()
		sscfg.Depth = 1 + rng.Intn(2)
		spec.ServerSide = &sscfg
		spec.Buffered = true
	}

	sc := Scenario{Seed: seed, Cfg: cfg, Spec: spec}

	// Fault injection on ~1 in 8 seeds, reusing the machine's per-disk
	// deterministic fault streams; of the rest, ~1 in 6 becomes a chaos
	// scenario: transient faults the retry layer must fully absorb.
	if rng.Intn(8) == 0 {
		sc.Cfg.DiskFaultRate = 0.01 + 0.1*rng.Float64()
		sc.Cfg.FaultSeed = seed
		sc.Faulty = true
	} else if rng.Intn(6) == 0 {
		armChaos(&sc, rng)
	}
	return sc
}

// armChaos turns sc into a recoverable chaos scenario: a low, purely
// transient disk fault rate, the default retry policy, and sometimes
// shedding and fault-stress jitter. Recovery is guaranteed by the
// transient-fault contract, so the full oracle set (minus monotonicity)
// must hold.
func armChaos(sc *Scenario, rng *rand.Rand) {
	sc.Cfg.DiskFaultRate = 0.01 + 0.04*rng.Float64() // <= 0.05
	sc.Cfg.DiskFaultTransientFrac = 1
	sc.Cfg.FaultSeed = sc.Seed
	sc.Cfg.DiskFaultJitter = pick(rng, 0.0, 0.0, 0.2, 0.5)
	if rng.Intn(2) == 0 {
		sc.Cfg.Shed = ionode.ShedPolicy{Threshold: 3, Cooldown: 20 * sim.Millisecond}
	}
	sc.Cfg.PFS.Retry = pfs.DefaultRetryPolicy()
	if rng.Intn(3) == 0 {
		// Arm the per-attempt deadline far above any service time in the
		// model: the timer machinery runs on every piece without spurious
		// firings destabilizing recovery.
		sc.Cfg.PFS.Retry.Timeout = 10 * sim.Second
	}
	sc.Faulty = false
	sc.Recoverable = true
}

// GenerateChaos expands a seed like Generate and then force-arms the
// chaos profile, whatever fault class the organic draw chose. Chaos
// sweeps (`cmd/simcheck -chaos`) use this so every seed exercises the
// fault-tolerant I/O path.
func GenerateChaos(seed int64) Scenario {
	sc := Generate(seed)
	crng := rand.New(rand.NewSource(seed*2862933555777941757 + 3037000493))
	armChaos(&sc, crng)
	return sc
}

// armScale moves sc onto the large-machine platform: 256 compute × 64
// I/O nodes with the bounded I/O-group shard partition and (sometimes)
// tiled default striping, the layouts the 1024×256 scale model runs on.
// The organic draw's mode, pattern, prefetch placement, and fault class
// all carry over — large machines earn no oracle exemptions — but
// per-node work shrinks to 1–3 rounds of ≤32 KB requests so a sweep of
// seeds stays inside the CI race-detector budget.
func armScale(sc *Scenario, rng *rand.Rand) {
	cfg := &sc.Cfg
	spec := &sc.Spec
	cfg.ComputeNodes = 256
	cfg.IONodes = 64
	cfg.IOGroups = pick(rng, 8, 16)
	cfg.PFS.GroupWidth = pick(rng, 0, 8, 16)

	// Redraw the stripe group for the wide partition: usually the whole
	// 64-node partition (the widest declustering the indexed merge path
	// sees), sometimes a narrow explicit group.
	spec.StripeGroup = pick(rng, 0, 0, 0, 8, 16, 64)

	req := pick64(rng, 8<<10, 16<<10, 32<<10)
	rounds := int64(1 + rng.Intn(3))
	spec.RequestSize = req
	spec.FileSize = int64(cfg.ComputeNodes) * req * rounds
	if spec.Mode == pfs.MGlobal {
		// Every M_GLOBAL record is read by all 256 parties (one disk read,
		// broadcast delivery), so read calls — and trace events — are
		// parties × records. A handful of records already exercises the
		// broadcast tree at full width without blowing the oracle trace
		// budget.
		spec.FileSize = req * int64(4+rng.Intn(13))
	}
}

// GenerateScale expands a seed like Generate and then moves the
// scenario onto the 256×64 scale platform. Scale sweeps
// (`cmd/simcheck -scale`) use this so the flat layouts, bounded shard
// partition, and tiled striping face the same oracle set as the paper-
// sized machines.
func GenerateScale(seed int64) Scenario {
	sc := Generate(seed)
	srng := rand.New(rand.NewSource(seed*2862933555777941757 + 7046029254386353087))
	armScale(&sc, srng)
	return sc
}

// armCrash turns sc into a crash-chaos scenario: scheduled whole-node
// outages against the restart-aware failover policy, on a workload whose
// per-node read sequence is a pure function of the spec — so the crash
// oracles can say analytically which bytes each node was owed and check
// that every one was delivered or deliberately counted unavailable.
// About half the seeds additionally lose a RAID member for good, half of
// those with an online rebuild racing the foreground reads.
func armCrash(sc *Scenario, rng *rand.Rand) {
	cfg := &sc.Cfg
	spec := &sc.Spec

	// Crashes need someone left to serve, and member losses need parity
	// survivors to reconstruct from.
	if cfg.IONodes < 2 {
		cfg.IONodes = 2
	}
	if cfg.ArrayMembers < 2 {
		cfg.ArrayMembers = 2
	}
	// Crash purity: the organic draw may have armed disk faults or
	// shedding; both entangle the byte accounting with racing timers, and
	// the crash oracles want every lost byte attributable to an outage.
	cfg.DiskFaultRate = 0
	cfg.DiskFaultTransientFrac = 0
	cfg.DiskFaultJitter = 0
	cfg.Shed = ionode.ShedPolicy{}

	// Restart-aware failover. The per-attempt deadline is far above every
	// healthy service time in the model (a cold 64K read is ~25 ms), so a
	// timeout can only mean the request vanished into a dead node.
	cfg.PFS.Retry = pfs.RetryPolicy{
		MaxRetries:   8,
		Timeout:      2 * sim.Second,
		Backoff:      2 * sim.Millisecond,
		BackoffMax:   100 * sim.Millisecond,
		Seed:         1,
		DownPoll:     50 * sim.Millisecond,
		DownDeadline: 2500 * sim.Millisecond,
	}

	// Statically-assigned access only: skipping an unavailable read must
	// not desequence anyone else, and the reference model must be able to
	// name each node's owed ranges. (M_UNIX/M_LOG/M_SYNC/M_GLOBAL share
	// pointers or broadcasts across nodes, so one node's loss changes
	// what the others read.)
	spec.SeparateFiles = false
	spec.Stride = 0
	switch rng.Intn(4) {
	case 0:
		spec.Mode = pfs.MRecord
		spec.Pattern = workload.Interleaved
	case 1:
		spec.Mode = pfs.MAsync
		spec.Pattern = pick(rng, workload.Interleaved, workload.Partitioned)
	case 2:
		spec.Mode = pfs.MAsync
		spec.Pattern = workload.Strided
		spec.Stride = 2 + rng.Intn(3)
	default:
		spec.Mode = pfs.MAsync
		spec.SeparateFiles = true
		spec.Pattern = workload.Interleaved
	}
	spec.ContinueOnUnavailable = true

	// Long enough that the outages land mid-workload, and request-aligned
	// so an unavailable read's loss is exactly one request.
	rounds := int64(6 + rng.Intn(9))
	spec.RequestSize = pick64(rng, 16<<10, 32<<10, 64<<10)
	spec.FileSize = int64(cfg.ComputeNodes) * spec.RequestSize * rounds
	spec.ComputeDelay = pick(rng, 0, sim.Time(5*sim.Millisecond), sim.Time(20*sim.Millisecond), sim.Time(50*sim.Millisecond))

	// Compute-node prefetching on most seeds: prefetches racing into a
	// crash must retire cleanly and fall back, which is half the point.
	// The server-side placement stages through the I/O-node caches a
	// crash wipes, so its delivered-bytes bookkeeping is not crash-exact;
	// keep crash scenarios on the fast path.
	spec.ServerSide = nil
	spec.Buffered = false
	spec.Prefetch = nil
	if rng.Intn(3) > 0 {
		pcfg := prefetch.DefaultConfig()
		pcfg.Depth = 1 + rng.Intn(3)
		pcfg.MaxBuffers = 2 + rng.Intn(7)
		pcfg.FreeCopy = rng.Intn(5) == 0
		spec.Prefetch = &pcfg
	}

	// The outage schedule. Downtimes straddle the failover deadline:
	// short ones are waited out (delivered late), long ones are declared
	// unavailable without waiting.
	cfg.Crash = machine.CrashPlan{
		Count:    1 + rng.Intn(3),
		Seed:     sc.Seed*31 + 7,
		Start:    50 * sim.Millisecond,
		Window:   500 * sim.Millisecond,
		Downtime: pick(rng, 300*sim.Millisecond, 800*sim.Millisecond, 3*sim.Second),
	}

	// Half the seeds also lose a RAID member inside the stripe group
	// (outside it the array never sees a request and nothing is proved);
	// half of those rebuild onto the hot spare while the reads run.
	cfg.MemberFail = machine.MemberFailPlan{}
	cfg.Rebuild = disk.RebuildPolicy{}
	if rng.Intn(2) == 0 {
		group := spec.StripeGroup
		if group == 0 {
			group = cfg.IONodes
		}
		cfg.MemberFail = machine.MemberFailPlan{
			At:     100 * sim.Millisecond,
			Array:  rng.Intn(group),
			Member: rng.Intn(cfg.ArrayMembers),
		}
		if rng.Intn(2) == 0 {
			cfg.Rebuild = disk.RebuildPolicy{
				Chunk: pick64(rng, 64<<10, 128<<10, 256<<10),
				Gap:   pick(rng, 0, sim.Time(2*sim.Millisecond), sim.Time(10*sim.Millisecond)),
			}
		}
	}

	sc.Faulty = false
	sc.Recoverable = false
	sc.Crashy = true
}

// GenerateCrash expands a seed like Generate and then force-arms the
// crash profile. Crash sweeps (`cmd/simcheck -crash`) use this so every
// seed exercises the crash–restart fault domain.
func GenerateCrash(seed int64) Scenario {
	sc := Generate(seed)
	crng := rand.New(rand.NewSource(seed*6364136223846793005 + 1181783497276652981))
	armCrash(&sc, crng)
	return sc
}

// Label renders the scenario compactly for reports.
func (sc Scenario) Label() string {
	if q := sc.QoS; q != nil {
		l := fmt.Sprintf("%dc/%dio qos tenants=%d files=%d req=%dK gap=%v slots=%d rate=%dK burst=%dK weights=%v",
			sc.Cfg.ComputeNodes, sc.Cfg.IONodes, q.Tenants, q.Files,
			q.RequestSize>>10, q.MeanGap, sc.Cfg.Fair.Slots,
			sc.Cfg.Fair.RatePerWeight>>10, sc.Cfg.Fair.BurstBytes>>10, sc.Cfg.Fair.Weights)
		if q.Prefetch != nil && q.PrefetchEvery > 0 {
			l += fmt.Sprintf(" pf-every=%d", q.PrefetchEvery)
		}
		return l
	}
	l := fmt.Sprintf("%dc/%dio %v %s req=%dK file=%dK delay=%v",
		sc.Cfg.ComputeNodes, sc.Cfg.IONodes, sc.Spec.Mode, patternLabel(sc.Spec),
		sc.Spec.RequestSize>>10, sc.Spec.FileSize>>10, sc.Spec.ComputeDelay)
	switch {
	case sc.Spec.Prefetch != nil:
		l += fmt.Sprintf(" pf(depth=%d,buf=%d", sc.Spec.Prefetch.Depth, sc.Spec.Prefetch.MaxBuffers)
		if sc.Spec.Prefetch.Adaptive {
			l += ",adaptive"
		}
		if sc.Spec.Prefetch.FreeCopy {
			l += ",freecopy"
		}
		l += ")"
	case sc.Spec.ServerSide != nil:
		l += fmt.Sprintf(" serverside(depth=%d)", sc.Spec.ServerSide.Depth)
	}
	if sc.Faulty {
		l += fmt.Sprintf(" faults=%.3f", sc.Cfg.DiskFaultRate)
	}
	if sc.Recoverable {
		l += fmt.Sprintf(" chaos=%.3f", sc.Cfg.DiskFaultRate)
		if sc.Cfg.DiskFaultJitter > 0 {
			l += fmt.Sprintf(" jitter=%.1f", sc.Cfg.DiskFaultJitter)
		}
		if sc.Cfg.Shed.Enabled() {
			l += " shed"
		}
		if sc.Cfg.PFS.Retry.Timeout > 0 {
			l += " deadline"
		}
	}
	if sc.Crashy {
		l += fmt.Sprintf(" crash(n=%d,down=%v)", sc.Cfg.Crash.Count, sc.Cfg.Crash.Downtime)
		if sc.Cfg.MemberFail.Enabled() {
			l += fmt.Sprintf(" memberfail(a%d/m%d", sc.Cfg.MemberFail.Array, sc.Cfg.MemberFail.Member)
			if sc.Cfg.Rebuild.Chunk > 0 {
				l += fmt.Sprintf(",rebuild=%dK/%v", sc.Cfg.Rebuild.Chunk>>10, sc.Cfg.Rebuild.Gap)
			}
			l += ")"
		}
	}
	return l
}

func patternLabel(spec workload.Spec) string {
	if spec.SeparateFiles {
		return "separate-files"
	}
	if spec.Mode != pfs.MAsync {
		return "interleaved"
	}
	return spec.Pattern.String()
}

// pick returns a uniformly random element (repeats weight the draw).
func pick[T any](rng *rand.Rand, choices ...T) T {
	return choices[rng.Intn(len(choices))]
}

func pick64(rng *rand.Rand, choices ...int64) int64 { return pick(rng, choices...) }
