package simcheck

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestSweep is the in-tree smoke sweep: a block of seeds must pass every
// oracle. cmd/simcheck covers wider ranges; this keeps `go test ./...`
// honest without dominating its runtime.
func TestSweep(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 8
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		rep := Check(seed)
		if !rep.OK() {
			var b strings.Builder
			rep.Describe(&b)
			t.Errorf("seed %d failed:\n%s", seed, b.String())
		}
	}
}

// TestCheckRangeParallelMatchesSerial: the sweep must deliver the same
// reports, in the same seed order, with the same evidence digests, at
// every pool width. This is the guard for running simcheck with
// -parallel: a worker pool that leaked state between seeds or reordered
// delivery would change the stream.
func TestCheckRangeParallelMatchesSerial(t *testing.T) {
	const start, n = 1, 12
	collect := func(workers int) []Report {
		var reps []Report
		failed := CheckRange(start, n, workers, false, func(rep Report) {
			reps = append(reps, rep)
		})
		if len(failed) != 0 {
			t.Fatalf("workers=%d: %d failing seeds in a clean range", workers, len(failed))
		}
		return reps
	}
	serial := collect(1)
	if len(serial) != n {
		t.Fatalf("serial sweep delivered %d reports, want %d", len(serial), n)
	}
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		par := collect(workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d delivered %d reports, serial %d", workers, len(par), len(serial))
		}
		for i := range serial {
			s, p := serial[i], par[i]
			if s.Seed != p.Seed || s.Fingerprint != p.Fingerprint || s.TraceDigest != p.TraceDigest ||
				s.Elapsed != p.Elapsed || s.ReadCalls != p.ReadCalls {
				t.Errorf("workers=%d report %d diverged from serial:\nserial seed=%d fp=%016x trace=%016x\nparallel seed=%d fp=%016x trace=%016x",
					workers, i, s.Seed, s.Fingerprint, s.TraceDigest, p.Seed, p.Fingerprint, p.TraceDigest)
			}
		}
	}
}

// TestCheckRangeStopFirst: stop-at-first-failure must deliver no report
// past the failing seed, at any width. Seed ranges are all-passing here,
// so exercise the early-stop plumbing with a zero-length tail instead:
// the emit callback returning false on seed start+k must bound delivery.
func TestCheckRangeStopFirst(t *testing.T) {
	// All seeds pass, so CheckRange never stops early; verify the full
	// range is delivered exactly once under stopFirst at width > 1.
	var reps int
	failed := CheckRange(1, 6, 3, true, func(Report) { reps++ })
	if len(failed) != 0 || reps != 6 {
		t.Fatalf("stopFirst sweep: %d failures, %d reports (want 0, 6)", len(failed), reps)
	}
}

// TestGenerateDeterministic: a seed must expand to the identical scenario
// every time, and nearby seeds must not collapse to one scenario.
func TestGenerateDeterministic(t *testing.T) {
	labels := make(map[string]bool)
	for seed := int64(0); seed < 40; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate not deterministic:\n%+v\n%+v", seed, a, b)
		}
		labels[a.Label()] = true
	}
	if len(labels) < 20 {
		t.Errorf("40 seeds produced only %d distinct scenarios", len(labels))
	}
}

// TestDeterminismOracleDetects: two runs of different scenarios must trip
// the determinism comparison (guards against a digest that hashes
// nothing).
func TestDeterminismOracleDetects(t *testing.T) {
	a, b := Generate(3), Generate(4)
	ra := execute(a.Cfg, a.Spec)
	rb := execute(b.Cfg, b.Spec)
	if ra.err != nil || rb.err != nil {
		t.Fatalf("runs failed: %v / %v", ra.err, rb.err)
	}
	if fs := checkDeterminism(3, ra, rb); len(fs) == 0 {
		t.Error("determinism oracle did not distinguish two different scenarios")
	}
}

// TestMonotoneOracleDetects: a fabricated speedup must be flagged.
func TestMonotoneOracleDetects(t *testing.T) {
	base := run{res: &workload.Result{Elapsed: 2 * sim.Second}}
	slower := run{res: &workload.Result{Elapsed: 1 * sim.Second}}
	if fs := checkMonotone(1, base, slower); len(fs) == 0 {
		t.Error("monotonicity oracle accepted elapsed decreasing with added delay")
	}
	if fs := checkMonotone(1, base, run{res: &workload.Result{Elapsed: 3 * sim.Second}}); len(fs) != 0 {
		t.Errorf("monotonicity oracle rejected a legitimate slowdown: %v", fs)
	}
}

// TestExactCover exercises the tiling checker's defect taxonomy.
func TestExactCover(t *testing.T) {
	d := func(offs ...[2]int64) []pfs.Delivery {
		out := make([]pfs.Delivery, len(offs))
		for i, o := range offs {
			out[i] = pfs.Delivery{Off: o[0], N: o[1]}
		}
		return out
	}
	cases := []struct {
		name   string
		ranges []pfs.Delivery
		size   int64
		want   string // substring of the defect, "" for pass
	}{
		{"exact", d([2]int64{0, 4}, [2]int64{4, 4}), 8, ""},
		{"exact-unordered", d([2]int64{4, 4}, [2]int64{0, 4}), 8, ""},
		{"gap", d([2]int64{0, 4}, [2]int64{8, 4}), 12, "gap"},
		{"overlap", d([2]int64{0, 4}, [2]int64{2, 4}), 6, "overlap"},
		{"duplicate", d([2]int64{0, 4}, [2]int64{0, 4}), 4, "overlap"},
		{"short", d([2]int64{0, 4}), 8, "ends at 4"},
		{"empty-nonzero", nil, 8, "ends at 0"},
		{"empty-zero", nil, 0, ""},
	}
	for _, tc := range cases {
		got := exactCover(tc.ranges, tc.size)
		if tc.want == "" && got != "" {
			t.Errorf("%s: unexpected defect %q", tc.name, got)
		}
		if tc.want != "" && !strings.Contains(got, tc.want) {
			t.Errorf("%s: defect %q does not mention %q", tc.name, got, tc.want)
		}
	}
}

// TestExpectedDeliveriesMatchRuns: the analytic reference sequences must
// agree range-for-range with what the simulator actually delivers, for
// every statically-assigned mode/pattern.
func TestExpectedDeliveriesMatchRuns(t *testing.T) {
	base := func() workload.Spec {
		return workload.Spec{
			File:             "ref",
			FileSize:         512 << 10,
			RequestSize:      32 << 10,
			Seed:             7,
			RecordDeliveries: true,
		}
	}
	cases := []struct {
		name string
		tune func(*workload.Spec)
	}{
		{"m_record", func(s *workload.Spec) { s.Mode = pfs.MRecord }},
		{"m_sync", func(s *workload.Spec) { s.Mode = pfs.MSync }},
		{"m_global", func(s *workload.Spec) { s.Mode = pfs.MGlobal }},
		{"async-interleaved", func(s *workload.Spec) { s.Mode = pfs.MAsync; s.Pattern = workload.Interleaved }},
		{"async-partitioned", func(s *workload.Spec) { s.Mode = pfs.MAsync; s.Pattern = workload.Partitioned }},
		{"async-random", func(s *workload.Spec) { s.Mode = pfs.MAsync; s.Pattern = workload.Random }},
		{"async-strided", func(s *workload.Spec) { s.Mode = pfs.MAsync; s.Pattern = workload.Strided; s.Stride = 2 }},
		{"separate-files", func(s *workload.Spec) { s.Mode = pfs.MAsync; s.SeparateFiles = true }},
	}
	sc := Generate(1)
	cfg := sc.Cfg
	cfg.ComputeNodes = 4
	cfg.IONodes = 2
	cfg.DiskFaultRate = 0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base()
			tc.tune(&spec)
			r := execute(cfg, spec)
			if r.err != nil {
				t.Fatalf("run: %v", r.err)
			}
			for rank := 0; rank < cfg.ComputeNodes; rank++ {
				want := expectedDeliveries(spec, cfg.ComputeNodes, rank)
				got := r.res.Deliveries[rank]
				if len(got) != len(want) {
					t.Fatalf("node %d: %d delivered ranges, reference says %d", rank, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("node %d read %d: delivered [%d,+%d), reference [%d,+%d)",
							rank, i, got[i].Off, got[i].N, want[i].Off, want[i].N)
					}
				}
				if cd, wd := contentDigest(got), contentDigest(want); cd != wd {
					t.Fatalf("node %d: content digest %016x, reference %016x", rank, cd, wd)
				}
			}
		})
	}
}

// TestDataOracleDetectsCorruption: a perturbed delivery list (one byte of
// one range shifted — the wrong-buffer failure shape) must be flagged.
func TestDataOracleDetectsCorruption(t *testing.T) {
	sc := Generate(1)
	sc.Spec.Mode = pfs.MRecord
	sc.Spec.SeparateFiles = false
	sc.Spec.Prefetch = nil
	sc.Spec.ServerSide = nil
	sc.Faulty = false
	sc.Cfg.DiskFaultRate = 0
	r := execute(sc.Cfg, sc.Spec)
	if r.err != nil {
		t.Fatalf("run: %v", r.err)
	}
	if fs := checkData(sc.Seed, sc, r, r); len(fs) != 0 {
		t.Fatalf("clean run flagged: %v", fs)
	}
	// Corrupt node 0's first delivered range as a wrong-buffer hit would.
	r.res.Deliveries[0][0].Off += sc.Spec.RequestSize
	if fs := checkData(sc.Seed, sc, r, r); len(fs) == 0 {
		t.Error("data oracle accepted a corrupted delivery range")
	}
}
