package simcheck

import (
	"strings"
	"testing"
)

// TestChaosSweep is the in-tree chaos smoke sweep: every seed force-arms
// transient faults under the retry layer and must recover completely —
// the acceptance bar of the fault-tolerant I/O path.
func TestChaosSweep(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	var unprotected int
	for seed := int64(1); seed <= int64(n); seed++ {
		rep := CheckChaos(seed)
		if !rep.OK() {
			var b strings.Builder
			rep.Describe(&b)
			t.Errorf("chaos seed %d failed:\n%s", seed, b.String())
		}
		if rep.UnprotectedErr != nil {
			unprotected++
		}
	}
	// The sweep must prove the faults were real: at least one seed's
	// retries-disabled twin has to die on an unrecovered read error.
	if unprotected == 0 {
		t.Errorf("no seed of %d failed without retry protection — chaos scenarios too tame", n)
	}
}

// TestGenerateChaosDeterministic: chaos generation must be a pure
// function of the seed and must always arm the recoverable profile.
func TestGenerateChaosDeterministic(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		a, b := GenerateChaos(seed), GenerateChaos(seed)
		if a.Label() != b.Label() {
			t.Fatalf("seed %d: GenerateChaos not deterministic:\n%s\n%s", seed, a.Label(), b.Label())
		}
		if !a.Recoverable || a.Faulty {
			t.Fatalf("seed %d: chaos scenario flags Recoverable=%v Faulty=%v", seed, a.Recoverable, a.Faulty)
		}
		if a.Cfg.DiskFaultRate <= 0 || a.Cfg.DiskFaultRate > 0.05 {
			t.Fatalf("seed %d: chaos fault rate %f outside (0, 0.05]", seed, a.Cfg.DiskFaultRate)
		}
		if a.Cfg.DiskFaultTransientFrac != 1 {
			t.Fatalf("seed %d: chaos faults not purely transient", seed)
		}
		if !a.Cfg.PFS.Retry.Enabled() {
			t.Fatalf("seed %d: chaos scenario without retry protection", seed)
		}
	}
}

// TestCheckChaosRangeParallelMatchesSerial: like the plain sweep, the
// chaos sweep must deliver identical reports (and the identical
// unprotected-failure count) at every pool width.
func TestCheckChaosRangeParallelMatchesSerial(t *testing.T) {
	const start, n = 1, 8
	collect := func(workers int) ([]ChaosReport, int) {
		var reps []ChaosReport
		failed, unprotected := CheckChaosRange(start, n, workers, false, func(rep ChaosReport) {
			reps = append(reps, rep)
		})
		if len(failed) != 0 {
			t.Fatalf("workers=%d: %d failing chaos seeds in a clean range", workers, len(failed))
		}
		return reps, unprotected
	}
	serial, serialUnprot := collect(1)
	if len(serial) != n {
		t.Fatalf("serial chaos sweep delivered %d reports, want %d", len(serial), n)
	}
	for _, workers := range []int{2, 4} {
		par, parUnprot := collect(workers)
		if parUnprot != serialUnprot {
			t.Errorf("workers=%d counted %d unprotected failures, serial %d", workers, parUnprot, serialUnprot)
		}
		for i := range serial {
			s, p := par[i], serial[i]
			if s.Seed != p.Seed || s.Fingerprint != p.Fingerprint || s.TraceDigest != p.TraceDigest ||
				(s.UnprotectedErr == nil) != (p.UnprotectedErr == nil) {
				t.Errorf("workers=%d chaos report %d diverged from serial (seed %d vs %d)",
					workers, i, s.Seed, p.Seed)
			}
		}
	}
}
