package simcheck

import (
	"strings"
	"testing"
)

// TestCrashSweep is the in-tree crash smoke sweep: every seed force-arms
// whole-node outages under the restart-aware failover and must account
// for every requested byte — the acceptance bar of the crash–restart
// fault domain.
func TestCrashSweep(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	var unprotected int
	for seed := int64(1); seed <= int64(n); seed++ {
		rep := CheckCrash(seed)
		if !rep.OK() {
			var b strings.Builder
			rep.Describe(&b)
			t.Errorf("crash seed %d failed:\n%s", seed, b.String())
		}
		if rep.UnfailoveredErr != nil {
			unprotected++
		}
	}
	// The sweep must prove the outages were real: at least one seed's
	// failover-stripped twin has to die on an unrecovered error.
	if unprotected == 0 {
		t.Errorf("no seed of %d failed without failover — crash scenarios too tame", n)
	}
}

// TestGenerateCrashDeterministic: crash generation must be a pure
// function of the seed and must always arm the crash profile on a
// statically-assigned workload with failover protection.
func TestGenerateCrashDeterministic(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		a, b := GenerateCrash(seed), GenerateCrash(seed)
		if a.Label() != b.Label() {
			t.Fatalf("seed %d: GenerateCrash not deterministic:\n%s\n%s", seed, a.Label(), b.Label())
		}
		if !a.Crashy || a.Faulty || a.Recoverable {
			t.Fatalf("seed %d: crash scenario flags Crashy=%v Faulty=%v Recoverable=%v",
				seed, a.Crashy, a.Faulty, a.Recoverable)
		}
		if !a.Cfg.Crash.Enabled() {
			t.Fatalf("seed %d: crash scenario without a crash plan", seed)
		}
		if a.Cfg.PFS.Retry.DownPoll <= 0 || a.Cfg.PFS.Retry.Timeout <= 0 {
			t.Fatalf("seed %d: crash scenario without restart-aware failover: %+v", seed, a.Cfg.PFS.Retry)
		}
		if !a.Spec.ContinueOnUnavailable {
			t.Fatalf("seed %d: crash workload aborts on unavailable reads", seed)
		}
		if !staticAssignment(a.Spec) {
			t.Fatalf("seed %d: crash workload %v is not statically assigned", seed, a.Spec.Mode)
		}
		if a.Cfg.IONodes < 2 || a.Cfg.ArrayMembers < 2 {
			t.Fatalf("seed %d: crash machine too small: %dio × %d members",
				seed, a.Cfg.IONodes, a.Cfg.ArrayMembers)
		}
		if a.Cfg.DiskFaultRate != 0 {
			t.Fatalf("seed %d: crash scenario mixes in disk faults", seed)
		}
	}
}

// TestCrashSweepExercisesEveryPath: across a modest seed range the
// generator must hit each mechanism the crash domain exists for — reads
// parked on a restart, reads declared unavailable past the deadline,
// parity-reconstructed degraded reads, online rebuild I/O, and
// prefetches retired by a crash. A sweep that never produces one of
// these proves nothing about it.
func TestCrashSweepExercisesEveryPath(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the full seed range")
	}
	var downWaits, unavailable, degraded, rebuildIOs, retired int64
	for seed := int64(1); seed <= 25; seed++ {
		sc := GenerateCrash(seed)
		r := execute(sc.Cfg, sc.Spec)
		if r.err != nil {
			t.Fatalf("seed %d: %v", seed, r.err)
		}
		fc := r.res.Fault
		downWaits += fc.DownWaits
		unavailable += r.res.UnavailableReads
		degraded += fc.ArrayDegraded
		rebuildIOs += fc.RebuildIOs
		retired += fc.Retired
	}
	for _, c := range []struct {
		name string
		n    int64
	}{
		{"down-waited pieces", downWaits},
		{"unavailable reads", unavailable},
		{"degraded reads", degraded},
		{"rebuild I/Os", rebuildIOs},
		{"retired prefetches", retired},
	} {
		if c.n == 0 {
			t.Errorf("25-seed crash sweep produced no %s", c.name)
		}
	}
}
