// Package workload implements the synthetic workload programs of the
// paper's evaluation: SPMD readers that open a shared PFS file in one of
// the I/O modes and stream through it, optionally "computing" (delaying)
// between reads to form the balanced workloads of Section 4.2, and
// optionally running under the prefetching prototype.
package workload

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Pattern selects the per-node access pattern.
type Pattern int

const (
	// Interleaved reads records in node order: node i reads record
	// r*parties+i in round r. The paper's M_RECORD workload (and its
	// M_ASYNC equivalent, with application-managed pointers).
	Interleaved Pattern = iota
	// Partitioned assigns node i the contiguous i-th slice of the file.
	Partitioned
	// Random reads records at uniformly random record-aligned offsets,
	// one full file's worth. Prefetching should not help here.
	Random
	// Strided reads every Stride-th record in node order: a matrix
	// column walk.
	Strided
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Interleaved:
		return "interleaved"
	case Partitioned:
		return "partitioned"
	case Random:
		return "random"
	case Strided:
		return "strided"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Spec describes one workload run.
type Spec struct {
	File         string           // PFS path (created by Run)
	FileSize     int64            // total bytes across all nodes
	RequestSize  int64            // bytes per read call per node
	Mode         pfs.Mode         // I/O mode for the shared file
	ComputeDelay sim.Time         // simulated computation between consecutive reads
	Prefetch     *prefetch.Config // nil disables prefetching

	SeparateFiles bool    // each node opens a private file (Figure 2 baseline)
	StripeUnit    int64   // 0 = mount default
	StripeGroup   int     // 0 = all I/O nodes
	Pattern       Pattern // non-collective modes only; collective modes imply Interleaved
	Stride        int     // records skipped by Strided (≥1)
	Seed          int64   // seeds all randomized pattern choices (see Spec.rng)

	// RecordDeliveries keeps each node's full list of delivered byte
	// ranges on the Result (the digest alone is always kept). simcheck's
	// coverage oracles need the ranges; normal runs leave this off to
	// keep memory flat.
	RecordDeliveries bool

	// Buffered disables Fast Path: reads stage through the I/O node
	// buffer caches (required for server-side prefetch placement).
	Buffered bool
	// ServerSide selects the server-side prefetch placement instead of
	// the compute-node prototype. Mutually exclusive with Prefetch.
	ServerSide *prefetch.ServerSideConfig

	// Trace, when non-nil, receives the run's file system and prefetch
	// timeline.
	Trace *trace.Log

	// ContinueOnUnavailable keeps a node's read loop going when a read
	// fails with pfs.ErrUnavailable (its I/O node is dead past the
	// failover deadline): the read is counted as unavailable — requested
	// but never delivered — and the loop moves to the node's next offset.
	// Only meaningful for statically-partitioned access (M_RECORD,
	// M_ASYNC, separate files), where skipping a read cannot desequence
	// a shared pointer. Off, any read error aborts the run as before.
	ContinueOnUnavailable bool
}

// Result is what a run measured.
type Result struct {
	Spec       Spec
	Elapsed    sim.Time        // slowest node's completion of all its reads
	TotalBytes int64           // data delivered to applications
	Bandwidth  float64         // TotalBytes over Elapsed, MB/s (the paper's metric)
	NodeTimes  []sim.Time      // per-node completion times
	ReadTime   stats.Histogram // per-call blocking read latency, seconds
	Prefetch   *prefetch.Prefetcher
	ServerSide *prefetch.ServerSide
	Machine    *machine.Machine

	// Correctness accounting (see internal/simcheck).
	ReadCalls       int64            // successful read calls across all nodes
	IOBytes         int64            // bytes pulled over the stripe fast path by user-facing instances
	DeliveryDigests []uint64         // per-node digest of delivered ranges, node order
	Deliveries      [][]pfs.Delivery // per-node delivered ranges (only with Spec.RecordDeliveries)

	// Unavailable accounting (Spec.ContinueOnUnavailable under crashes):
	// reads the application requested that failed ErrUnavailable, with
	// their byte counts, total and per node.
	UnavailableReads     int64
	UnavailableBytes     int64
	NodeUnavailableBytes []int64

	// Fault summarizes the run's fault-tolerance activity (all zero on a
	// healthy machine with the retry layer disabled).
	Fault FaultCounters

	// Shared-pointer token contention (M_UNIX holds the token across the
	// whole I/O, M_LOG only across the claim; zero elsewhere). TokenOps
	// counts acquisitions, TokenWaits the ones that queued behind another
	// holder, TokenWaitTime the total simulated time spent queued — the
	// serialization cost whose collapse with client count the ext-scale
	// experiment records. Not folded into the fingerprint: the counters
	// observe existing events rather than scheduling new ones.
	TokenOps      int64
	TokenWaits    int64
	TokenWaitTime sim.Time

	// QoS is the open-loop multi-tenant ledger (RunQoS only, nil
	// elsewhere). When present it is folded into the fingerprint.
	QoS *QoSResult
}

// FaultCounters aggregates the fault-path counters of the PFS client, the
// I/O node servers, and the member disks after a run.
type FaultCounters struct {
	Retries       int64 // stripe pieces re-issued after a failure or timeout
	Timeouts      int64 // attempts whose reply deadline fired first
	GiveUps       int64 // pieces that exhausted the retry budget
	DegradedReads int64 // reads that succeeded only via >=1 retried piece
	LateReplies   int64 // replies that lost the race against their timeout
	LateBytes     int64 // read data delivered late and discarded
	Shed          int64 // requests fast-failed by shedding I/O nodes
	DiskTransient int64 // transient faults injected at the disk layer
	DiskPermanent int64 // permanent faults injected at the disk layer
	ServerFaults  int64 // requests that failed at the disk layer, server view
	Retired       int64 // failed prefetches whose buffer slots were reclaimed

	// Crash-domain counters (all zero without a crash/member-fail plan).
	NodeCrashes    int64 // whole-I/O-node crashes
	NodeRestarts   int64 // nodes that came back up
	NodeDropped    int64 // requests that vanished into down/crashing nodes
	MeshDropped    int64 // messages addressed to a down node, dropped in flight
	DownWaits      int64 // pieces parked on a crashed node's restart
	Unavailable    int64 // pieces failed ErrUnavailable (node dead past deadline)
	AbandonedBytes int64 // piece bytes served inside reads that overall failed
	MemberFails    int64 // RAID members lost for good
	ArrayDegraded  int64 // array requests served by parity reconstruction
	RebuildIOs     int64 // background rebuild passes onto hot spares
	RebuildBytes   int64 // bytes rebuilt onto hot spares
}

// collectFaults fills res.Fault from the machine and prefetcher state.
func collectFaults(res *Result, m *machine.Machine) {
	fs := m.FS
	res.Fault.Retries = fs.Retries
	res.Fault.Timeouts = fs.Timeouts
	res.Fault.GiveUps = fs.GiveUps
	res.Fault.DegradedReads = fs.DegradedReads
	res.Fault.LateReplies = fs.LateReplies
	res.Fault.LateBytes = fs.LateBytes
	for _, s := range m.Servers {
		res.Fault.Shed += s.Shed
		res.Fault.ServerFaults += s.Faults
	}
	for _, a := range m.Arrays {
		for _, d := range a.Members() {
			res.Fault.DiskTransient += d.TransientErrors
			res.Fault.DiskPermanent += d.PermanentErrors
		}
	}
	if res.Prefetch != nil {
		res.Fault.Retired = res.Prefetch.Retired
	}
	res.Fault.DownWaits = fs.DownWaits
	res.Fault.Unavailable = fs.Unavailable
	res.Fault.AbandonedBytes = fs.AbandonedBytes
	for _, s := range m.Servers {
		res.Fault.NodeCrashes += s.Crashes
		res.Fault.NodeRestarts += s.Restarts
		res.Fault.NodeDropped += s.Dropped
	}
	res.Fault.MeshDropped = m.Mesh.Dropped
	for _, a := range m.Arrays {
		res.Fault.MemberFails += a.MemberFails
		res.Fault.ArrayDegraded += a.DegradedReads
		res.Fault.RebuildIOs += a.RebuildIOs
		res.Fault.RebuildBytes += a.RebuildBytes
	}
}

// Run builds a machine from cfg, lays out the file(s), and drives one
// reader process per compute node until every node has consumed its share
// of the data.
func Run(cfg machine.Config, spec Spec) (*Result, error) {
	if err := validate(cfg, &spec); err != nil {
		return nil, err
	}
	if spec.Buffered {
		cfg.PFS.FastPath = false
	}
	m := machine.Build(cfg)
	res := &Result{Spec: spec, Machine: m, NodeTimes: make([]sim.Time, cfg.ComputeNodes)}

	group := stripeGroup(cfg, spec)
	su := spec.StripeUnit
	if su == 0 {
		su = cfg.PFS.StripeUnit
	}

	if spec.Trace != nil {
		// Machine first: in sharded mode it builds the per-group buckets,
		// and client-side producers must attach to the group-0 bucket
		// (ClientTrace), not the user's log directly.
		m.SetTrace(spec.Trace)
		m.FS.SetTrace(m.ClientTrace())
	}
	var pf *prefetch.Prefetcher
	var ss *prefetch.ServerSide
	switch {
	case spec.Prefetch != nil && spec.ServerSide != nil:
		return nil, fmt.Errorf("workload: Prefetch and ServerSide are mutually exclusive")
	case spec.Prefetch != nil:
		pcfg := *spec.Prefetch
		if spec.Trace != nil && pcfg.Trace == nil {
			pcfg.Trace = m.ClientTrace()
		}
		// Machine-level defaults fill only what the spec left open: the
		// policy when neither a Predictor nor a Policy is set, and the
		// controller when the spec's is disarmed. The struct conversion
		// fails to compile if machine.PrefetchController ever drifts from
		// prefetch.ControllerConfig.
		if pcfg.Predictor == nil && pcfg.Policy == "" {
			pcfg.Policy = cfg.Prefetch.Policy
		}
		if !pcfg.Controller.Enabled() {
			pcfg.Controller = prefetch.ControllerConfig(cfg.Prefetch.Controller)
		}
		pf = prefetch.New(m.K, pcfg)
		res.Prefetch = pf
	case spec.ServerSide != nil:
		ss = prefetch.NewServerSide(*spec.ServerSide)
		res.ServerSide = ss
	}

	nodes := cfg.ComputeNodes
	if spec.SeparateFiles {
		share := spec.FileSize / int64(nodes)
		tiled := spec.StripeUnit == 0 && spec.StripeGroup == 0 && cfg.PFS.GroupWidth > 0
		for i := 0; i < nodes; i++ {
			name := fmt.Sprintf("%s.%d", spec.File, i)
			if tiled {
				// Default attributes with a bounded GroupWidth: each
				// private file takes the next GroupWidth-wide tile of the
				// I/O partition (see pfs.Create), so the population covers
				// every I/O node while per-file declustering stays
				// O(GroupWidth) — the large-machine layout.
				if err := m.FS.Create(name, share); err != nil {
					return nil, err
				}
				continue
			}
			if err := m.FS.CreateStriped(name, share, su, group); err != nil {
				return nil, err
			}
		}
	} else {
		if err := m.FS.CreateStriped(spec.File, spec.FileSize, su, group); err != nil {
			return nil, err
		}
	}

	var og *pfs.OpenGroup
	if spec.Mode.Collective() && !spec.SeparateFiles {
		og = pfs.NewOpenGroup(m.K, nodes)
	}

	files := make([]*pfs.File, nodes) // indexed by node rank
	errs := make([]error, nodes)
	unav := make([]unavailTally, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		m.K.Go(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			name := spec.File
			mode := spec.Mode
			if spec.SeparateFiles {
				name = fmt.Sprintf("%s.%d", spec.File, i)
				mode = pfs.MAsync
			}
			f, err := m.FS.Open(name, m.Compute[i], mode, og)
			if err != nil {
				errs[i] = err
				return
			}
			if spec.RecordDeliveries {
				f.EnableDeliveryLog()
			}
			if pf != nil {
				pf.Attach(f)
			}
			if ss != nil {
				ss.Attach(f)
			}
			errs[i] = drive(p, f, spec, i, nodes, &unav[i])
			res.NodeTimes[i] = p.Now()
			files[i] = f
			if err := f.Close(); err != nil && errs[i] == nil {
				errs[i] = err
			}
		})
	}
	if err := m.Run(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("workload: node %d: %w", i, err)
		}
	}
	res.DeliveryDigests = make([]uint64, nodes)
	res.NodeUnavailableBytes = make([]int64, nodes)
	for i, u := range unav {
		res.UnavailableReads += u.reads
		res.UnavailableBytes += u.bytes
		res.NodeUnavailableBytes[i] = u.bytes
	}
	if spec.RecordDeliveries {
		res.Deliveries = make([][]pfs.Delivery, nodes)
	}
	for i, f := range files {
		if f == nil {
			continue
		}
		res.TotalBytes += f.BytesRead
		res.ReadCalls += f.ReadCalls
		res.IOBytes += f.IOBytes
		res.DeliveryDigests[i] = f.DeliveryDigest()
		if spec.RecordDeliveries {
			res.Deliveries[i] = f.Deliveries()
		}
		f.ReadTime.Each(res.ReadTime.Observe)
	}
	for _, t := range res.NodeTimes {
		if t > res.Elapsed {
			res.Elapsed = t
		}
	}
	res.Bandwidth = stats.MBps(res.TotalBytes, res.Elapsed)
	res.TokenOps = m.FS.TokenOps
	res.TokenWaits = m.FS.TokenWaits
	res.TokenWaitTime = m.FS.TokenWaitTime
	collectFaults(res, m)
	return res, nil
}

// unavailTally counts one node's reads lost to dead I/O nodes.
type unavailTally struct {
	reads int64
	bytes int64
}

// tolerate classifies a failed read under the spec's unavailable policy.
// It returns true — after counting the read as requested-but-undelivered
// at the spec's request size — when the loop should move to the next
// offset. (Crash scenarios use file sizes that divide evenly into
// requests, so the request size is the exact loss.)
func tolerate(spec Spec, err error, u *unavailTally) bool {
	if !spec.ContinueOnUnavailable || !errors.Is(err, pfs.ErrUnavailable) {
		return false
	}
	u.reads++
	u.bytes += spec.RequestSize
	return true
}

// drive runs one node's read loop per the spec's pattern.
func drive(p *sim.Proc, f *pfs.File, spec Spec, rank, parties int, u *unavailTally) error {
	req := spec.RequestSize
	delayThen := func(first *bool) {
		if *first {
			*first = false
			return
		}
		if spec.ComputeDelay > 0 {
			p.Sleep(spec.ComputeDelay)
		}
	}

	switch {
	case spec.SeparateFiles:
		first := true
		for {
			delayThen(&first)
			if _, err := f.Read(p, req); err == io.EOF {
				return nil
			} else if err != nil && !tolerate(spec, err, u) {
				return err
			}
		}

	case spec.Mode.Collective() || spec.Mode == pfs.MUnix || spec.Mode == pfs.MLog:
		// Shared-pointer and collective modes: just keep reading. A
		// tolerated unavailable read consumed its round/claim, so the
		// loop continuing stays in step with the other parties.
		first := true
		for {
			delayThen(&first)
			if _, err := f.Read(p, req); err == io.EOF {
				return nil
			} else if err != nil && !tolerate(spec, err, u) {
				return err
			}
		}

	default: // M_ASYNC: the application manages its own pointer.
		return driveAsync(p, f, spec, rank, parties, u)
	}
}

// driveAsync implements the per-pattern M_ASYNC loops.
func driveAsync(p *sim.Proc, f *pfs.File, spec Spec, rank, parties int, u *unavailTally) error {
	req := spec.RequestSize
	size := f.Size()
	readAt := func(off int64, first *bool) error {
		if !*first && spec.ComputeDelay > 0 {
			p.Sleep(spec.ComputeDelay)
		}
		*first = false
		if err := f.SeekTo(off); err != nil {
			return err
		}
		_, err := f.Read(p, req)
		if err == io.EOF {
			return nil
		}
		if err != nil && tolerate(spec, err, u) {
			return nil
		}
		return err
	}

	first := true
	switch spec.Pattern {
	case Interleaved:
		for r := int64(0); ; r++ {
			off := (r*int64(parties) + int64(rank)) * req
			if off >= size {
				return nil
			}
			if err := readAt(off, &first); err != nil {
				return err
			}
		}
	case Partitioned:
		share := size / int64(parties)
		start := int64(rank) * share
		for off := start; off < start+share; off += req {
			if err := readAt(off, &first); err != nil {
				return err
			}
		}
		return nil
	case Random:
		rng := PatternRNG(spec, rank)
		records := size / req / int64(parties)
		maxRec := size / req
		for i := int64(0); i < records; i++ {
			off := rng.Int63n(maxRec) * req
			if off+req > size {
				off = size - req
			}
			if err := readAt(off, &first); err != nil {
				return err
			}
		}
		return nil
	case Strided:
		stride := int64(spec.Stride)
		if stride < 1 {
			stride = 1
		}
		for r := int64(0); ; r++ {
			off := (r*int64(parties)*stride + int64(rank)*stride) * req
			if off >= size {
				return nil
			}
			if err := readAt(off, &first); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("workload: unknown pattern %v", spec.Pattern)
	}
}

// validate fills defaults and rejects nonsense.
func validate(cfg machine.Config, spec *Spec) error {
	if spec.File == "" {
		spec.File = "data"
	}
	if spec.FileSize <= 0 {
		return fmt.Errorf("workload: file size %d must be positive", spec.FileSize)
	}
	if spec.RequestSize <= 0 {
		return fmt.Errorf("workload: request size %d must be positive", spec.RequestSize)
	}
	if spec.SeparateFiles && spec.FileSize%int64(cfg.ComputeNodes) != 0 {
		return fmt.Errorf("workload: file size %d not divisible across %d separate files",
			spec.FileSize, cfg.ComputeNodes)
	}
	if spec.StripeGroup < 0 || spec.StripeGroup > cfg.IONodes {
		return fmt.Errorf("workload: stripe group %d outside [0,%d]", spec.StripeGroup, cfg.IONodes)
	}
	if !spec.Mode.Valid() {
		return fmt.Errorf("workload: invalid mode %d", int(spec.Mode))
	}
	return nil
}

// stripeGroup resolves the stripe group server indices.
func stripeGroup(cfg machine.Config, spec Spec) []int {
	n := spec.StripeGroup
	if n == 0 {
		n = cfg.IONodes
	}
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}
	return group
}
