package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
)

// stripeCoverage replays a run's stripe-reply events into a per-I/O-node
// interval census: how many times each local byte range was served.
type census map[int][]span

type span struct{ off, end int64 }

func collectCoverage(tl *trace.Log) census {
	c := make(census)
	for _, e := range tl.Events() {
		if e.Kind != trace.StripeReply {
			continue
		}
		c[e.Node] = append(c[e.Node], span{e.Off, e.Off + e.N})
	}
	return c
}

// servedBytes sums the extent of all replies.
func (c census) servedBytes() int64 {
	var total int64
	for _, spans := range c {
		for _, s := range spans {
			total += s.end - s.off
		}
	}
	return total
}

// overlapped reports whether any two reply spans on one node overlap.
func (c census) overlapped() bool {
	for _, spans := range c {
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.off < b.end && b.off < a.end {
					return true
				}
			}
		}
	}
	return false
}

// TestRecordScanServesEveryByteOnce is the core correctness invariant of
// the whole stack, verified from the wire: a collective M_RECORD scan
// must pull every stripe byte off the I/O nodes exactly once — no gaps,
// no duplicate disk traffic — with and without prefetching.
func TestRecordScanServesEveryByteOnce(t *testing.T) {
	for _, withPrefetch := range []bool{false, true} {
		tl := trace.NewLog(1 << 20)
		spec := Spec{
			FileSize:     4 << 20,
			RequestSize:  64 << 10,
			Mode:         pfs.MRecord,
			ComputeDelay: 10 * sim.Millisecond,
			Trace:        tl,
		}
		if withPrefetch {
			pcfg := prefetch.DefaultConfig()
			spec.Prefetch = &pcfg
		}
		res, err := Run(cfg4x4(), spec)
		if err != nil {
			t.Fatal(err)
		}
		c := collectCoverage(tl)
		if got := c.servedBytes(); got != res.TotalBytes {
			t.Fatalf("prefetch=%v: wire served %d bytes, applications read %d",
				withPrefetch, got, res.TotalBytes)
		}
		if c.overlapped() {
			t.Fatalf("prefetch=%v: overlapping stripe replies (duplicate disk traffic)", withPrefetch)
		}
	}
}

// TestPrefetchNeverDuplicatesWireTraffic: random request sizes and
// delays; whatever happens, the bytes on the wire equal the bytes the
// application read (every prefetched byte is consumed, never refetched).
func TestPrefetchNeverDuplicatesWireTraffic(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		req := int64(1+rng.Intn(8)) * 32 << 10
		rounds := int64(2 + rng.Intn(6))
		delay := sim.Time(rng.Intn(60)) * sim.Millisecond
		tl := trace.NewLog(1 << 20)
		pcfg := prefetch.DefaultConfig()
		spec := Spec{
			FileSize:     req * 4 * rounds,
			RequestSize:  req,
			Mode:         pfs.MRecord,
			ComputeDelay: delay,
			Prefetch:     &pcfg,
			Trace:        tl,
		}
		res, err := Run(cfg4x4(), spec)
		if err != nil {
			return false
		}
		c := collectCoverage(tl)
		return c.servedBytes() == res.TotalBytes && !c.overlapped()
	}, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestReadStartEndBalanced: every read call that starts also ends, for
// every mode, on the wire record.
func TestReadStartEndBalanced(t *testing.T) {
	for _, mode := range []pfs.Mode{pfs.MUnix, pfs.MLog, pfs.MSync, pfs.MRecord, pfs.MAsync} {
		tl := trace.NewLog(1 << 20)
		if _, err := Run(cfg4x4(), Spec{
			FileSize:    2 << 20,
			RequestSize: 128 << 10,
			Mode:        mode,
			Trace:       tl,
		}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if s, e := tl.Count(trace.ReadStart), tl.Count(trace.ReadEnd); s != e || s == 0 {
			t.Fatalf("%v: %d read-starts vs %d read-ends", mode, s, e)
		}
	}
}
