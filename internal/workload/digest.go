package workload

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// PatternRNG is the single point where randomness enters a workload:
// every randomized pattern choice draws from a generator seeded by the
// Spec's own Seed and the node's rank — never from the global math/rand
// source — so a Spec replays the exact same access sequence on every
// run. Exported so reference models (internal/simcheck) can regenerate a
// node's sequence without running the simulator. The rank mixing
// constant is the FNV-64 prime, keeping per-node streams decorrelated
// while staying a pure function of (Seed, rank).
func PatternRNG(s Spec, rank int) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed + int64(rank)*1099511628211))
}

// Fingerprint digests everything a run measured — timing, byte counts,
// per-node delivery digests, latency samples, stripe and prefetch
// counters, and the kernel's terminal state — into one 64-bit value. Two
// runs of the same Spec on the same machine config must fingerprint
// equal; this is the determinism oracle's whole-run comparison. (The
// trace log has its own Digest covering event-by-event history.)
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(r.Elapsed))
	put(uint64(r.TotalBytes))
	put(uint64(r.ReadCalls))
	put(uint64(r.IOBytes))
	put(math.Float64bits(r.Bandwidth))
	for _, t := range r.NodeTimes {
		put(uint64(t))
	}
	for _, d := range r.DeliveryDigests {
		put(d)
	}
	put(uint64(r.UnavailableReads))
	put(uint64(r.UnavailableBytes))
	for _, b := range r.NodeUnavailableBytes {
		put(uint64(b))
	}
	put(r.ReadTime.Fingerprint())
	if r.Machine != nil {
		put(uint64(r.Machine.FS.StripeRequests))
		for _, b := range r.Machine.IONodeBytes() {
			put(uint64(b))
		}
		for _, s := range r.Machine.Servers {
			put(uint64(s.Requests))
			put(uint64(s.Faults))
			put(uint64(s.Shed))
			put(uint64(s.Crashes))
			put(uint64(s.Restarts))
			put(uint64(s.Dropped))
		}
		fs := r.Machine.FS
		for _, v := range []int64{fs.Retries, fs.Timeouts, fs.GiveUps,
			fs.DegradedReads, fs.LateReplies, fs.LateBytes,
			fs.DownWaits, fs.Unavailable, fs.AbandonedBytes} {
			put(uint64(v))
		}
		put(uint64(r.Machine.Mesh.Dropped))
		for _, a := range r.Machine.Arrays {
			put(uint64(a.MemberFails))
			put(uint64(a.DegradedReads))
			put(uint64(a.RebuildIOs))
			put(uint64(a.RebuildBytes))
			put(uint64(a.RebuildDoneAt))
		}
		put(r.Machine.KernelFingerprint())
	}
	if p := r.Prefetch; p != nil {
		for _, v := range []int64{p.Issued, p.Hits, p.HitsInWait, p.Misses,
			p.Wasted, p.Skipped, p.Fallbacks, p.Throttled, p.Retired,
			p.BytesCopied, p.BytesDirect} {
			put(uint64(v))
		}
		put(p.WaitTime.Fingerprint())
		// The zoo/controller/close-accounting counters hash only when
		// their feature is live: the FNV fold is order- and
		// length-sensitive, so appending even a constant zero would move
		// every legacy golden digest for runs that cannot have them.
		if p.UnreadAtClose != 0 {
			put(uint64(p.UnreadAtClose))
		}
		if zoo := p.Zoo(); zoo != nil {
			for _, s := range zoo.Totals() {
				for _, v := range []int64{s.Predicted, s.Correct, s.Issued,
					s.Consumed, s.Wasted, s.Unread} {
					put(uint64(v))
				}
			}
		}
		if depth, bufs, on := p.Tuning(); on {
			put(uint64(p.Retunes))
			put(uint64(depth))
			put(uint64(bufs))
		}
	}
	if ss := r.ServerSide; ss != nil {
		put(uint64(ss.Hints))
		put(uint64(ss.Reads))
	}
	// The QoS ledger folds last and only when armed (RunQoS): legacy
	// runs never allocate it, so every pre-QoS golden digest is
	// untouched. Every per-tenant counter participates so an engine
	// that mis-routes even one request to the wrong tenant diverges.
	if q := r.QoS; q != nil {
		put(uint64(len(q.Tenants)))
		for i := range q.Tenants {
			ts := &q.Tenants[i]
			for _, v := range []int64{int64(ts.Weight), ts.Requests,
				ts.Done, ts.Throttled, ts.Overloaded, ts.Failed,
				ts.Bytes, ts.SLOMet, int64(ts.SumLatency),
				int64(ts.MaxLatency), ts.IOBytes, ts.LateBytes,
				ts.AbandonedBytes, ts.SrvArrived, ts.SrvServed,
				ts.SrvShed, ts.SrvFaulted, ts.SrvDropped, ts.SrvBytes} {
				put(uint64(v))
			}
		}
		put(q.Latency.Fingerprint())
		for _, v := range []int64{q.Arrivals, q.Throttled, q.Overloaded,
			q.Failed, q.SLOMet} {
			put(uint64(v))
		}
		put(uint64(q.SLO))
	}
	return h.Sum64()
}
