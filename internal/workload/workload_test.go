package workload

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

func cfg4x4() machine.Config {
	c := machine.DefaultConfig()
	c.ComputeNodes = 4
	c.IONodes = 4
	c.UFS.Fragmentation = 0
	return c
}

func TestValidate(t *testing.T) {
	c := cfg4x4()
	cases := []Spec{
		{FileSize: 0, RequestSize: 64 << 10, Mode: pfs.MRecord},
		{FileSize: 1 << 20, RequestSize: 0, Mode: pfs.MRecord},
		{FileSize: 1 << 20, RequestSize: 64 << 10, Mode: pfs.Mode(17)},
		{FileSize: 1 << 20, RequestSize: 64 << 10, Mode: pfs.MRecord, StripeGroup: 9},
		{FileSize: 1<<20 + 3, RequestSize: 64 << 10, Mode: pfs.MAsync, SeparateFiles: true},
	}
	for i, spec := range cases {
		if _, err := Run(c, spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestRecordRun(t *testing.T) {
	res, err := Run(cfg4x4(), Spec{
		FileSize:    4 << 20,
		RequestSize: 64 << 10,
		Mode:        pfs.MRecord,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 4<<20 {
		t.Fatalf("TotalBytes = %d, want full file", res.TotalBytes)
	}
	if res.Bandwidth <= 0 || res.Elapsed <= 0 {
		t.Fatalf("Bandwidth=%v Elapsed=%v", res.Bandwidth, res.Elapsed)
	}
	if len(res.NodeTimes) != 4 {
		t.Fatalf("NodeTimes = %d entries", len(res.NodeTimes))
	}
	if res.ReadTime.N() != 64 { // 4 MB / 64 KB = 64 read calls
		t.Fatalf("ReadTime samples = %d, want 64", res.ReadTime.N())
	}
	// Load balance: all I/O nodes served the same amount.
	bytes := res.Machine.IONodeBytes()
	for i, b := range bytes {
		if b != bytes[0] {
			t.Fatalf("I/O node %d served %d, node 0 served %d: unbalanced", i, b, bytes[0])
		}
	}
}

func TestSeparateFilesRun(t *testing.T) {
	res, err := Run(cfg4x4(), Spec{
		FileSize:      4 << 20,
		RequestSize:   256 << 10,
		Mode:          pfs.MAsync,
		SeparateFiles: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 4<<20 {
		t.Fatalf("TotalBytes = %d", res.TotalBytes)
	}
}

func TestPatterns(t *testing.T) {
	for _, pat := range []Pattern{Interleaved, Partitioned, Random, Strided} {
		spec := Spec{
			FileSize:    4 << 20,
			RequestSize: 128 << 10,
			Mode:        pfs.MAsync,
			Pattern:     pat,
			Stride:      2,
			Seed:        11,
		}
		res, err := Run(cfg4x4(), spec)
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		if res.TotalBytes == 0 {
			t.Fatalf("%v read nothing", pat)
		}
		// Interleaved and Partitioned cover the file exactly once.
		if (pat == Interleaved || pat == Partitioned) && res.TotalBytes != 4<<20 {
			t.Fatalf("%v read %d bytes, want full file", pat, res.TotalBytes)
		}
	}
}

func TestPatternNames(t *testing.T) {
	if Interleaved.String() != "interleaved" || Strided.String() != "strided" {
		t.Fatal("pattern names wrong")
	}
	if Pattern(9).String() == "" {
		t.Fatal("unknown pattern empty")
	}
}

func TestBalancedPrefetchWins(t *testing.T) {
	// The headline result: with compute between reads, prefetching lifts
	// observed bandwidth.
	base := Spec{
		FileSize:     8 << 20,
		RequestSize:  64 << 10,
		Mode:         pfs.MRecord,
		ComputeDelay: 50 * sim.Millisecond,
	}
	plain, err := Run(cfg4x4(), base)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := prefetch.DefaultConfig()
	base.Prefetch = &pcfg
	fetched, err := Run(cfg4x4(), base)
	if err != nil {
		t.Fatal(err)
	}
	if fetched.Bandwidth <= plain.Bandwidth {
		t.Fatalf("prefetch BW %.2f ≤ plain %.2f with 50ms compute", fetched.Bandwidth, plain.Bandwidth)
	}
	if fetched.Prefetch == nil || fetched.Prefetch.HitRate() == 0 {
		t.Fatal("prefetch stats missing")
	}
	if fetched.TotalBytes != plain.TotalBytes {
		t.Fatal("prefetching changed bytes read")
	}
}

func TestStripeGroupOne(t *testing.T) {
	spec := Spec{
		FileSize:    2 << 20,
		RequestSize: 64 << 10,
		Mode:        pfs.MRecord,
		StripeGroup: 1,
	}
	one, err := Run(cfg4x4(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.StripeGroup = 4
	four, err := Run(cfg4x4(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if four.Bandwidth <= one.Bandwidth {
		t.Fatalf("4-node stripe group (%.2f MB/s) not faster than 1-node (%.2f MB/s)",
			four.Bandwidth, one.Bandwidth)
	}
	// All data must have come from I/O node 0 in the 1-group run.
	bytes := one.Machine.IONodeBytes()
	if bytes[0] != 2<<20 {
		t.Fatalf("1-node group: node 0 served %d, want all %d", bytes[0], 2<<20)
	}
	for i := 1; i < len(bytes); i++ {
		if bytes[i] != 0 {
			t.Fatalf("1-node group: node %d served %d, want 0", i, bytes[i])
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	spec := Spec{
		FileSize:     4 << 20,
		RequestSize:  128 << 10,
		Mode:         pfs.MRecord,
		ComputeDelay: 10 * sim.Millisecond,
	}
	a, err := Run(cfg4x4(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg4x4(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Bandwidth != b.Bandwidth {
		t.Fatalf("non-deterministic: %v/%.4f vs %v/%.4f", a.Elapsed, a.Bandwidth, b.Elapsed, b.Bandwidth)
	}
}

func TestNodeErrorsPropagateFromRun(t *testing.T) {
	cfg := cfg4x4()
	cfg.DiskFaultRate = 1 // every disk request fails
	_, err := Run(cfg, Spec{
		FileSize:    1 << 20,
		RequestSize: 64 << 10,
		Mode:        pfs.MRecord,
	})
	if err == nil {
		t.Fatal("Run swallowed the nodes' read errors")
	}
}

func TestServerSidePlacementRun(t *testing.T) {
	scfg := prefetch.DefaultServerSideConfig()
	res, err := Run(cfg4x4(), Spec{
		FileSize:     4 << 20,
		RequestSize:  64 << 10,
		Mode:         pfs.MRecord,
		ComputeDelay: 50 * sim.Millisecond,
		Buffered:     true,
		ServerSide:   &scfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerSide == nil || res.ServerSide.Hints == 0 {
		t.Fatal("server-side service did not hint")
	}
	// The I/O node caches must have been hit.
	var hits int64
	for _, srv := range res.Machine.Servers {
		hits += srv.FS().CacheHits
	}
	if hits == 0 {
		t.Fatal("no cache hits despite hints")
	}
	// Mutually exclusive services rejected.
	pcfg := prefetch.DefaultConfig()
	if _, err := Run(cfg4x4(), Spec{
		FileSize:    1 << 20,
		RequestSize: 64 << 10,
		Mode:        pfs.MRecord,
		Prefetch:    &pcfg,
		ServerSide:  &scfg,
	}); err == nil {
		t.Fatal("both services accepted")
	}
}

func TestRandomPatternDefeatsPrefetch(t *testing.T) {
	spec := Spec{
		FileSize:     4 << 20,
		RequestSize:  64 << 10,
		Mode:         pfs.MAsync,
		Pattern:      Random,
		Seed:         3,
		ComputeDelay: 50 * sim.Millisecond,
	}
	pcfg := prefetch.DefaultConfig()
	spec.Prefetch = &pcfg
	res, err := Run(cfg4x4(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential prediction on a random stream: nearly everything misses.
	if hr := res.Prefetch.HitRate(); hr > 0.2 {
		t.Fatalf("hit rate %.2f on random access, want ≈ 0", hr)
	}
}
