package workload

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestQuickstartGoldenTrace pins the opening of the quickstart
// scenario's timeline (the M_RECORD + prefetch run of
// examples/quickstart, scaled down) against a golden canonical trace.
// Any change to event ordering, timing constants, or the canonical
// encoding shows up as a byte diff here; regenerate deliberately with
//
//	go test ./internal/workload -run QuickstartGolden -update
func TestQuickstartGoldenTrace(t *testing.T) {
	tl := trace.NewLog(120) // the opening 120 events; the rest are counted
	pcfg := prefetch.DefaultConfig()
	spec := Spec{
		File:         "quickstart",
		FileSize:     1 << 20,
		RequestSize:  64 << 10,
		Mode:         pfs.MRecord,
		ComputeDelay: 50 * sim.Millisecond,
		Prefetch:     &pcfg,
		Trace:        tl,
	}
	if _, err := Run(cfg4x4(), spec); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := tl.WriteCanonical(&got); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "quickstart.trace")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		gl, wl := bytes.Split(got.Bytes(), []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("trace diverges from golden at line %d:\n  got  %s\n  want %s\n(regenerate with -update if intended)",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("trace length %d bytes, golden %d (regenerate with -update if intended)", got.Len(), len(want))
	}
}
