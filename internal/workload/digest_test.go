package workload

import (
	"testing"

	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestRunDeterministic: two runs of the identical Spec — including the
// seeded Random pattern and a prefetcher — must produce bit-identical
// result fingerprints and trace digests. This is the per-package anchor
// of the determinism guarantee internal/simcheck sweeps at scale.
func TestRunDeterministic(t *testing.T) {
	specs := []Spec{
		{FileSize: 2 << 20, RequestSize: 64 << 10, Mode: pfs.MRecord, ComputeDelay: 5 * sim.Millisecond},
		{FileSize: 1 << 20, RequestSize: 32 << 10, Mode: pfs.MAsync, Pattern: Random, Seed: 42},
		{FileSize: 1 << 20, RequestSize: 32 << 10, Mode: pfs.MUnix},
	}
	pcfg := prefetch.DefaultConfig()
	specs[0].Prefetch = &pcfg

	for _, spec := range specs {
		once := func() (uint64, uint64) {
			s := spec
			if s.Prefetch != nil {
				p := *s.Prefetch
				s.Prefetch = &p
			}
			tl := trace.NewLog(1 << 20)
			s.Trace = tl
			res, err := Run(cfg4x4(), s)
			if err != nil {
				t.Fatalf("%v %v: %v", spec.Mode, spec.Pattern, err)
			}
			return res.Fingerprint(), tl.Digest()
		}
		f1, d1 := once()
		f2, d2 := once()
		if f1 != f2 {
			t.Errorf("%v %v: result fingerprints differ: %016x vs %016x", spec.Mode, spec.Pattern, f1, f2)
		}
		if d1 != d2 {
			t.Errorf("%v %v: trace digests differ: %016x vs %016x", spec.Mode, spec.Pattern, d1, d2)
		}
	}
}

// TestPatternRNGStability pins the Random pattern's access sequence:
// PatternRNG is pure in (Seed, rank), distinct across ranks and seeds.
func TestPatternRNGStability(t *testing.T) {
	draw := func(seed int64, rank int) [4]int64 {
		rng := PatternRNG(Spec{Seed: seed}, rank)
		var out [4]int64
		for i := range out {
			out[i] = rng.Int63n(1 << 20)
		}
		return out
	}
	if draw(1, 0) != draw(1, 0) {
		t.Error("PatternRNG not deterministic in (Seed, rank)")
	}
	if draw(1, 0) == draw(1, 1) {
		t.Error("PatternRNG streams for neighbouring ranks coincide")
	}
	if draw(1, 0) == draw(2, 0) {
		t.Error("PatternRNG streams for neighbouring seeds coincide")
	}
}
