package workload

import (
	"reflect"
	"testing"

	"repro/internal/ionode"
	"repro/internal/machine"
	"repro/internal/sim"
)

func qosTestConfig(shards int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Shards = shards
	cfg.Fair = ionode.FairPolicy{
		Weights:       []int{4, 2, 1},
		Slots:         2,
		RatePerWeight: 64 << 10, // bytes/s per weight unit
		BurstBytes:    16 << 10,
	}
	return cfg
}

func qosTestSpec(seed int64) QoSSpec {
	return QoSSpec{
		Tenants:     24,
		Files:       6,
		FileSize:    1 << 20,
		RequestSize: 16 << 10,
		Requests:    6,
		MeanGap:     2 * sim.Millisecond, // well into overload
		Seed:        seed,
		SLO:         50 * sim.Millisecond,
	}
}

// TestQoSEngineFingerprints is the workload-level determinism check.
// Whole-result fingerprints are bit-identical run-to-run within an
// engine and across sharded worker counts; legacy vs sharded differ
// only in the kernel-history fold (established engine contract), so the
// cross-engine comparison is on observables: the entire per-tenant QoS
// ledger, latency histogram, delivery digests, and elapsed time.
func TestQoSEngineFingerprints(t *testing.T) {
	legacy, err := RunQoS(qosTestConfig(0), qosTestSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	if q := legacy.QoS; q.Arrivals == 0 || q.Throttled == 0 {
		t.Fatalf("run too tame: arrivals=%d throttled=%d (admission never engaged)",
			q.Arrivals, q.Throttled)
	}
	legacy2, err := RunQoS(qosTestConfig(0), qosTestSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := legacy.Fingerprint(), legacy2.Fingerprint(); a != b {
		t.Fatalf("legacy engine not deterministic: %#x vs %#x", a, b)
	}
	var shardFP uint64
	for i, shards := range []int{1, 4} {
		res, err := RunQoS(qosTestConfig(shards), qosTestSpec(42))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if fp := res.Fingerprint(); i == 0 {
			shardFP = fp
		} else if fp != shardFP {
			t.Fatalf("shards=%d fingerprint %#x != shards=1 %#x", shards, fp, shardFP)
		}
		if !reflect.DeepEqual(res.QoS, legacy.QoS) {
			t.Fatalf("shards=%d QoS ledger diverged from legacy:\n got %+v\nwant %+v",
				shards, res.QoS, legacy.QoS)
		}
		if res.Elapsed != legacy.Elapsed || res.TotalBytes != legacy.TotalBytes {
			t.Fatalf("shards=%d observables diverged: elapsed %v/%v bytes %d/%d",
				shards, res.Elapsed, legacy.Elapsed, res.TotalBytes, legacy.TotalBytes)
		}
		if !reflect.DeepEqual(res.DeliveryDigests, legacy.DeliveryDigests) {
			t.Fatalf("shards=%d delivery digests diverged", shards)
		}
	}
}

// TestQoSConservation cross-foots the per-tenant ledgers: every arrival
// is classified exactly once on the client side, server-side requests
// balance, and served bytes equal the client's delivered+late+abandoned
// bytes.
func TestQoSConservation(t *testing.T) {
	res, err := RunQoS(qosTestConfig(4), qosTestSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	q := res.QoS
	for ti := range q.Tenants {
		ts := &q.Tenants[ti]
		if got := ts.Done + ts.Throttled + ts.Overloaded + ts.Failed; got != ts.Requests {
			t.Errorf("tenant %d: classified %d of %d arrivals", ti, got, ts.Requests)
		}
		if got := ts.SrvServed + ts.SrvShed + ts.SrvFaulted + ts.SrvDropped; got != ts.SrvArrived {
			t.Errorf("tenant %d: server ledger %d != arrived %d", ti, got, ts.SrvArrived)
		}
		if got := ts.IOBytes + ts.LateBytes + ts.AbandonedBytes; got != ts.SrvBytes {
			t.Errorf("tenant %d: client bytes %d != served bytes %d", ti, got, ts.SrvBytes)
		}
		if ts.Done > 0 && ts.Bytes == 0 {
			t.Errorf("tenant %d: %d completions but zero bytes", ti, ts.Done)
		}
	}
	if int64(q.Latency.N()) != q.Arrivals-q.Throttled-q.Overloaded-q.Failed {
		t.Errorf("latency samples %d != completions %d", q.Latency.N(),
			q.Arrivals-q.Throttled-q.Overloaded-q.Failed)
	}
}

// TestQoSFIFOSharesSchedule proves the FIFO twin sees the same offered
// load (same arrivals and per-tenant requests) while producing a
// different service order — the property the fairness oracle relies on
// when it compares the two.
func TestQoSFIFOSharesSchedule(t *testing.T) {
	wfq, err := RunQoS(qosTestConfig(0), qosTestSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	cfg := qosTestConfig(0)
	cfg.Fair.FIFO = true
	fifo, err := RunQoS(cfg, qosTestSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	if wfq.QoS.Arrivals != fifo.QoS.Arrivals {
		t.Fatalf("arrivals diverged: wfq %d fifo %d", wfq.QoS.Arrivals, fifo.QoS.Arrivals)
	}
	for ti := range wfq.QoS.Tenants {
		if w, f := wfq.QoS.Tenants[ti].Requests, fifo.QoS.Tenants[ti].Requests; w != f {
			t.Fatalf("tenant %d requests diverged: wfq %d fifo %d", ti, w, f)
		}
	}
	if fifo.QoS.Throttled != 0 {
		t.Fatalf("FIFO twin throttled %d requests; admission must be off", fifo.QoS.Throttled)
	}
}
