package workload

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ionode"
	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// QoSSpec describes one open-loop multi-tenant run: Tenants independent
// users, each with its own open file instance, issuing positioned reads
// on a heavy-tailed arrival schedule that does NOT wait for completions
// (arrivals are spawned, never blocked — the open-loop property that
// makes overload possible).
//
// Every random quantity is a pure function of (Seed, tenant, k) through
// qosRand, so the schedule is bit-identical on the legacy and sharded
// engines and needs no shared RNG state:
//
//   - per-tenant demand: the request count is Requests scaled by a
//     bounded Pareto factor in [1,8) — a few tenants are bursty whales;
//   - per-tenant file: one Zipf draw over Files (rank r has probability
//     ∝ 1/(r+1)) — popular files are shared by many tenants;
//   - interarrival gaps: bounded Pareto with shape 1.5 and scale
//     MeanGap/3 (mean ≈ MeanGap), the classic heavy-tailed arrival
//     process;
//   - offsets: wrapping-sequential within the tenant's file from a
//     hashed base, so prefetchers have something to predict.
type QoSSpec struct {
	Tenants     int
	Files       int   // file-popularity universe (each FileSize bytes)
	FileSize    int64 // bytes per file
	RequestSize int64 // bytes per positioned read
	Requests    int   // base requests per tenant (Pareto-scaled up to 8x)

	// MeanGap is the mean interarrival gap per tenant. Offered load is
	// roughly Tenants*RequestSize/MeanGap bytes/s; shrink it to push
	// the machine into overload.
	MeanGap sim.Time

	Seed int64

	// SLO, when non-zero, counts requests whose latency met it.
	SLO sim.Time

	// Prefetch attaches the client prefetcher to every PrefetchEvery-th
	// tenant (tenant 0, PrefetchEvery, ...), the interference probe:
	// does one tenant's readahead help it by hurting the others' tails?
	// nil (or PrefetchEvery <= 0) disables it.
	Prefetch      *prefetch.Config
	PrefetchEvery int

	// Trace, when non-nil, receives the run's timeline (arrivals are
	// emitted as QoSArrival events, admission sheds as QoSShed).
	Trace *trace.Log
}

// TenantStats is one tenant's ledger: the client-side view (requests,
// completions, latency, delivered bytes) and the server-side view
// (summed over I/O nodes), which the simcheck conservation oracle
// cross-foots.
type TenantStats struct {
	Weight int // scheduler weight the run used

	// Client side.
	Requests   int64 // spawned by the arrival process
	Done       int64 // completed successfully
	Throttled  int64 // failed with ionode.ErrThrottled (admission)
	Overloaded int64 // failed with ionode.ErrOverloaded (breaker)
	Failed     int64 // failed with any other error
	Bytes      int64 // bytes delivered to the tenant
	SLOMet     int64 // completions within QoSSpec.SLO
	SumLatency sim.Time
	MaxLatency sim.Time

	// Cross-stack byte accounting (client side of the conservation
	// oracle): bytes pulled over the stripe path for this tenant, and
	// its shares of late/abandoned bytes.
	IOBytes        int64
	LateBytes      int64
	AbandonedBytes int64

	// Server side, summed over all I/O nodes.
	SrvArrived int64
	SrvServed  int64
	SrvShed    int64
	SrvFaulted int64
	SrvDropped int64
	SrvBytes   int64 // bytes served; == IOBytes + LateBytes + AbandonedBytes
}

// QoSResult is the open-loop run's QoS ledger, attached to Result.QoS
// and folded into the fingerprint.
type QoSResult struct {
	Tenants []TenantStats
	Latency stats.Histogram // successful request latency, seconds

	Arrivals   int64 // total requests spawned
	Throttled  int64
	Overloaded int64
	Failed     int64
	SLO        sim.Time
	SLOMet     int64
}

// qosRand is the pure hash every QoS draw comes from: a splitmix64-style
// finalizer over (Seed, tenant, k, salt). No state, no draw order — both
// engines evaluate the same function.
func qosRand(seed int64, tenant, k int, salt uint64) uint64 {
	x := uint64(seed)*0x27BB2EE687B0B0FD + uint64(tenant)*0x9E3779B97F4A7C15 + uint64(k)*0xD6E8FEB86659FD93 + salt
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Salts decorrelate the draw families.
const (
	qosSaltCount = 0xC0DE0001
	qosSaltFile  = 0xC0DE0002
	qosSaltBase  = 0xC0DE0003
	qosSaltGap   = 0xC0DE0004
)

// u01 maps a hash to (0,1] — never exactly zero, so inverse-power draws
// stay finite.
func u01(h uint64) float64 {
	return (float64(h>>11) + 1) / (1 << 53)
}

// qosCount is tenant t's request count: Requests scaled by a bounded
// Pareto factor u^-1/2 capped at 8 — most tenants near the base, a few
// whales near 8x.
func qosCount(spec QoSSpec, t int) int {
	u := u01(qosRand(spec.Seed, t, 0, qosSaltCount))
	mult := math.Pow(u, -0.5)
	if mult > 8 {
		mult = 8
	}
	n := int(float64(spec.Requests) * mult)
	if n < 1 {
		n = 1
	}
	return n
}

// qosGap is the k-th interarrival gap of tenant t: bounded Pareto with
// shape 1.5, scale MeanGap/3 (mean ≈ MeanGap), capped at 100 scales.
func qosGap(spec QoSSpec, t, k int) sim.Time {
	if spec.MeanGap <= 0 {
		return 0
	}
	xm := float64(spec.MeanGap) / 3
	u := u01(qosRand(spec.Seed, t, k, qosSaltGap))
	g := xm * math.Pow(u, -1/1.5)
	if max := xm * 100; g > max {
		g = max
	}
	return sim.Time(g)
}

// zipfCDF builds the cumulative Zipf-1 distribution over n files (rank r
// weighted 1/(r+1)), a pure function of n.
func zipfCDF(n int) []float64 {
	cdf := make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += 1 / float64(r+1)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	return cdf
}

// qosFile is tenant t's file: one Zipf draw over the popularity CDF.
func qosFile(spec QoSSpec, t int, cdf []float64) int {
	u := u01(qosRand(spec.Seed, t, 0, qosSaltFile))
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// RunQoS builds the machine and drives one open-loop multi-tenant run.
// cfg.Fair.Tenants is forced to spec.Tenants (the scheduler and the
// workload must agree on the tenant universe); every other Fair knob —
// weights, slots, admission rate, the FIFO twin flag — is the caller's.
func RunQoS(cfg machine.Config, spec QoSSpec) (*Result, error) {
	if err := validateQoS(&spec); err != nil {
		return nil, err
	}
	cfg.Fair.Tenants = spec.Tenants
	m := machine.Build(cfg)
	res := &Result{Machine: m, NodeTimes: make([]sim.Time, cfg.ComputeNodes)}
	qr := &QoSResult{Tenants: make([]TenantStats, spec.Tenants), SLO: spec.SLO}
	res.QoS = qr

	var arrTl *trace.Log
	if spec.Trace != nil {
		m.SetTrace(spec.Trace)
		m.FS.SetTrace(m.ClientTrace())
		arrTl = m.ClientTrace()
	}

	var pf *prefetch.Prefetcher
	if spec.Prefetch != nil && spec.PrefetchEvery > 0 {
		pcfg := *spec.Prefetch
		if spec.Trace != nil && pcfg.Trace == nil {
			pcfg.Trace = m.ClientTrace()
		}
		pf = prefetch.New(m.K, pcfg)
		res.Prefetch = pf
	}

	if err := m.FS.Mkdir("qos"); err != nil {
		return nil, err
	}
	for i := 0; i < spec.Files; i++ {
		if err := m.FS.Create(fmt.Sprintf("qos/%d", i), spec.FileSize); err != nil {
			return nil, err
		}
	}

	cdf := zipfCDF(spec.Files)
	units := spec.FileSize / spec.RequestSize
	files := make([]*pfs.File, spec.Tenants)
	var openErr error
	for t := 0; t < spec.Tenants; t++ {
		node := m.Compute[t%cfg.ComputeNodes]
		f, err := m.FS.Open(fmt.Sprintf("qos/%d", qosFile(spec, t, cdf)), node, pfs.MAsync, nil)
		if err != nil {
			return nil, err
		}
		f.SetTenant(t)
		if pf != nil && t%spec.PrefetchEvery == 0 {
			pf.Attach(f)
		}
		files[t] = f
		qr.Tenants[t].Weight = cfg.Fair.Weight(t)
	}

	// The arrival processes. Each sleeps its tenant's heavy-tailed gap
	// sequence and spawns a reader per request; readers run concurrently
	// and never delay the next arrival. All procs live on the compute
	// side (kernel K / shard group 0), so their interleaving is the
	// kernel's deterministic event order on both engines.
	var elapsed sim.Time
	for t := 0; t < spec.Tenants; t++ {
		t := t
		st := &qr.Tenants[t]
		count := qosCount(spec, t)
		base := int64(qosRand(spec.Seed, t, 0, qosSaltBase) % uint64(units))
		m.K.Go(fmt.Sprintf("qos-arr%d", t), func(p *sim.Proc) {
			for k := 0; k < count; k++ {
				if g := qosGap(spec, t, k); g > 0 {
					p.Sleep(g)
				}
				off := ((base + int64(k)) % units) * spec.RequestSize
				st.Requests++
				qr.Arrivals++
				if arrTl != nil {
					arrTl.Add(trace.Event{T: p.Now(), Kind: trace.QoSArrival, Node: t, N: spec.RequestSize})
				}
				m.K.Go(fmt.Sprintf("qos-rd%d.%d", t, k), func(rp *sim.Proc) {
					start := rp.Now()
					n, err := files[t].ReadAt(rp, off, spec.RequestSize)
					lat := rp.Now() - start
					switch {
					case err == nil:
						st.Done++
						st.Bytes += n
						st.SumLatency += lat
						if lat > st.MaxLatency {
							st.MaxLatency = lat
						}
						qr.Latency.ObserveTime(lat)
						if spec.SLO > 0 && lat <= spec.SLO {
							st.SLOMet++
							qr.SLOMet++
						}
					case errors.Is(err, ionode.ErrThrottled):
						st.Throttled++
						qr.Throttled++
					case errors.Is(err, ionode.ErrOverloaded):
						st.Overloaded++
						qr.Overloaded++
					default:
						st.Failed++
						qr.Failed++
					}
					if now := rp.Now(); now > elapsed {
						elapsed = now
					}
				})
			}
		})
	}
	if err := m.Run(); err != nil {
		return nil, err
	}

	res.DeliveryDigests = make([]uint64, spec.Tenants)
	res.NodeUnavailableBytes = make([]int64, cfg.ComputeNodes)
	for t, f := range files {
		st := &qr.Tenants[t]
		st.IOBytes = f.IOBytes
		st.LateBytes = m.FS.TenantLateBytes(t)
		st.AbandonedBytes = m.FS.TenantAbandonedBytes(t)
		for _, s := range m.Servers {
			st.SrvArrived += s.TenantArrived[t]
			st.SrvServed += s.TenantServed[t]
			st.SrvShed += s.TenantShed[t]
			st.SrvFaulted += s.TenantFaulted[t]
			st.SrvDropped += s.TenantDropped[t]
			st.SrvBytes += s.TenantBytes[t]
		}
		res.TotalBytes += f.BytesRead
		res.ReadCalls += f.ReadCalls
		res.IOBytes += f.IOBytes
		res.DeliveryDigests[t] = f.DeliveryDigest()
		f.ReadTime.Each(res.ReadTime.Observe)
		if err := f.Close(); err != nil && openErr == nil {
			openErr = err
		}
	}
	if openErr != nil {
		return nil, openErr
	}
	res.Elapsed = elapsed
	res.Bandwidth = stats.MBps(res.TotalBytes, res.Elapsed)
	res.TokenOps = m.FS.TokenOps
	res.TokenWaits = m.FS.TokenWaits
	res.TokenWaitTime = m.FS.TokenWaitTime
	collectFaults(res, m)
	return res, nil
}

// validateQoS fills defaults and rejects nonsense.
func validateQoS(spec *QoSSpec) error {
	if spec.Tenants <= 0 {
		return fmt.Errorf("workload: qos needs tenants, got %d", spec.Tenants)
	}
	if spec.Files <= 0 {
		return fmt.Errorf("workload: qos needs files, got %d", spec.Files)
	}
	if spec.RequestSize <= 0 || spec.FileSize < spec.RequestSize {
		return fmt.Errorf("workload: qos request %d outside file %d", spec.RequestSize, spec.FileSize)
	}
	if spec.Requests <= 0 {
		return fmt.Errorf("workload: qos needs requests per tenant, got %d", spec.Requests)
	}
	if spec.MeanGap < 0 {
		return fmt.Errorf("workload: qos mean gap %v negative", spec.MeanGap)
	}
	return nil
}
