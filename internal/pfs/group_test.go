package pfs

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/sim"
)

// TestSyncPartialFinalRound: an M_SYNC file whose size is not a multiple
// of the round total leaves the last round ragged — low ranks get their
// slice, high ranks get less or nothing — and nobody deadlocks on the
// barrier.
func TestSyncPartialFinalRound(t *testing.T) {
	const parties = 4
	const req = 64 << 10
	// 2.5 rounds: round 0 full, round 1 full, round 2 has 2 records.
	fileSize := int64(req * parties * 2.5)
	r := newRig(t, parties, 2)
	if err := r.fsys.Create("f", fileSize); err != nil {
		t.Fatal(err)
	}
	group := NewOpenGroup(r.k, parties)
	perNode := make([]int64, parties)
	for i := 0; i < parties; i++ {
		i := i
		node := r.compute[i]
		r.k.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
			f, err := r.fsys.Open("f", node, MSync, group)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				n, err := f.Read(p, req)
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				perNode[i] += n
			}
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range perNode {
		total += n
	}
	if total != fileSize {
		t.Fatalf("total read %d, want %d", total, fileSize)
	}
	// Ranks 0 and 1 get 3 records; ranks 2 and 3 only 2.
	if perNode[0] != 3*req || perNode[3] != 2*req {
		t.Fatalf("ragged round split wrong: %v", perNode)
	}
}

// TestSyncVariableSizes: M_SYNC permits different request sizes per
// rank; offsets are the rank prefix-sum each round.
func TestSyncVariableSizes(t *testing.T) {
	const parties = 3
	sizes := []int64{32 << 10, 64 << 10, 128 << 10}
	roundTotal := int64(224 << 10)
	fileSize := roundTotal * 4
	r := newRig(t, parties, 2)
	if err := r.fsys.Create("f", fileSize); err != nil {
		t.Fatal(err)
	}
	group := NewOpenGroup(r.k, parties)
	perNode := make([]int64, parties)
	for i := 0; i < parties; i++ {
		i := i
		node := r.compute[i]
		r.k.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
			f, err := r.fsys.Open("f", node, MSync, group)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				n, err := f.Read(p, sizes[i])
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				perNode[i] += n
			}
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{4 * 32 << 10, 4 * 64 << 10, 4 * 128 << 10} {
		if perNode[i] != want {
			t.Fatalf("rank %d read %d, want %d (perNode=%v)", i, perNode[i], want, perNode)
		}
	}
}

func TestGroupOverjoinPanics(t *testing.T) {
	r := newRig(t, 2, 2)
	if err := r.fsys.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	g := NewOpenGroup(r.k, 1)
	if _, err := r.fsys.Open("f", 0, MSync, g); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("joining a full group did not panic")
		}
	}()
	r.fsys.Open("f", 1, MSync, g) //nolint:errcheck // panics before returning
}

func TestNewOpenGroupValidation(t *testing.T) {
	r := newRig(t, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-party group did not panic")
		}
	}()
	NewOpenGroup(r.k, 0)
}
