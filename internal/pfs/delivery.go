package pfs

// Delivery accounting: a canonical record of every byte range that
// actually reached an application's buffer through an open instance, in
// the order it arrived. The simulation carries no real file contents, so
// "the data the user read" is fully determined by the sequence of
// (offset, length) ranges delivered: with a deterministic reference file
// (byte i has value f(i)), hashing the ranges is equivalent to hashing
// the bytes. simcheck's data-correctness oracle compares these digests
// between prefetch-on and prefetch-off runs and against an analytic
// reference model; a prefetch hit that copies from the wrong buffer, or
// a mode that hands a node the wrong region, shows up here even though
// timing-only metrics look plausible.
//
// Recording happens at the points where data crosses into the user
// buffer — the direct Fast Path read, the prefetcher's hit/fallback
// paths (package prefetch calls RecordDelivery with the range the buffer
// actually held), and the M_GLOBAL broadcast deliveries — never for
// speculative I/O, which by definition the user has not seen.

// Delivery is one user-visible byte range, in delivery order.
type Delivery struct {
	Off, N int64
}

// DeliveryHashSeed is the initial accumulator for FoldDelivery chains
// (the FNV-64a offset basis).
const DeliveryHashSeed uint64 = 14695981039346656037

// FoldDelivery folds one delivered range into a running FNV-64a digest.
// It is exported so reference models outside this package can compute the
// digest an open instance should end up with.
func FoldDelivery(h uint64, off, n int64) uint64 {
	const prime = 1099511628211
	for _, v := range []uint64{uint64(off), uint64(n)} {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= prime
		}
	}
	return h
}

// RecordDelivery accounts n bytes at off as delivered to the user through
// this open instance. Called by the paths that put data in the user's
// buffer; exported because the prefetcher's hit path lives in package
// prefetch and must report the range the consumed buffer actually held.
func (f *File) RecordDelivery(off, n int64) {
	f.deliveryHash = FoldDelivery(f.deliveryHash, off, n)
	f.DeliveredBytes += n
	if f.logDeliveries {
		f.deliveryLog = append(f.deliveryLog, Delivery{Off: off, N: n})
	}
}

// EnableDeliveryLog keeps the full per-range delivery list (off by
// default: the digest alone needs no memory proportional to the run).
func (f *File) EnableDeliveryLog() { f.logDeliveries = true }

// Deliveries returns the recorded ranges, in delivery order (empty unless
// EnableDeliveryLog was called before reading).
func (f *File) Deliveries() []Delivery { return f.deliveryLog }

// DeliveryDigest returns the running digest over all delivered ranges.
// A fresh instance returns DeliveryHashSeed.
func (f *File) DeliveryDigest() uint64 { return f.deliveryHash }
