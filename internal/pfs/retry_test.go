package pfs

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/ionode"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// newRetryRig is newRig with an explicit mount configuration and access
// to the member disks for fault injection.
func newRetryRig(t testing.TB, computeNodes, ioNodes int, cfg Config) (*rig, []*disk.Array) {
	t.Helper()
	k := sim.NewKernel()
	total := computeNodes + ioNodes
	w := 1
	for w*w < total {
		w++
	}
	h := (total + w - 1) / w
	m := mesh.New(k, mesh.Paragon(w, h))
	var servers []*ionode.Server
	var arrays []*disk.Array
	for i := 0; i < ioNodes; i++ {
		a := disk.NewArray(k, fmt.Sprintf("raid%d", i), 4, disk.Seagate94601(), disk.SCAN, 500*sim.Microsecond)
		arrays = append(arrays, a)
		ucfg := ufs.DefaultConfig()
		ucfg.Fragmentation = 0
		ucfg.Seed = int64(i + 1)
		servers = append(servers, ionode.New(k, m, computeNodes+i, ufs.New(k, a, ucfg), 300*sim.Microsecond))
	}
	fsys := Mount(k, m, servers, cfg)
	r := &rig{k: k, m: m, fsys: fsys}
	for i := 0; i < computeNodes; i++ {
		r.compute = append(r.compute, i)
	}
	return r, arrays
}

func injectAll(arrays []*disk.Array, p disk.FaultProfile) {
	for i, a := range arrays {
		for j, d := range a.Members() {
			fp := p
			fp.Seed = p.Seed + int64(i*100+j)
			d.InjectFaultProfile(fp)
		}
	}
}

// TestRetryRecoversTransientFaults: with every fresh disk request
// soft-failing and re-reads succeeding, an armed retry policy must ride
// out every fault and mark the reads degraded.
func TestRetryRecoversTransientFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retry = DefaultRetryPolicy()
	r, arrays := newRetryRig(t, 1, 2, cfg)
	if err := r.fsys.Create("f", 256<<10); err != nil {
		t.Fatal(err)
	}
	injectAll(arrays, disk.FaultProfile{Rate: 1, TransientFrac: 1, Seed: 7})
	var reads int
	r.k.Go("reader", func(p *sim.Proc) {
		f, err := r.fsys.Open("f", 0, MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 4; i++ {
			if _, err := f.Read(p, 64<<10); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			reads++
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if reads != 4 {
		t.Fatalf("completed %d of 4 reads", reads)
	}
	if r.fsys.Retries == 0 {
		t.Error("transient fault storm survived with zero retries")
	}
	if r.fsys.GiveUps != 0 {
		t.Errorf("GiveUps = %d under purely transient faults", r.fsys.GiveUps)
	}
	if r.fsys.DegradedReads != 4 {
		t.Errorf("DegradedReads = %d, want 4 (every read needed a retry)", r.fsys.DegradedReads)
	}
}

// TestRetryBudgetExhausted: permanent faults never heal, so the retry
// loop must burn exactly its budget per piece and then surface the disk
// error.
func TestRetryBudgetExhausted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retry = RetryPolicy{MaxRetries: 2, Backoff: sim.Millisecond, BackoffMax: 4 * sim.Millisecond, Seed: 1}
	r, arrays := newRetryRig(t, 1, 1, cfg)
	if err := r.fsys.Create("f", 128<<10); err != nil {
		t.Fatal(err)
	}
	injectAll(arrays, disk.FaultProfile{Rate: 1, PermanentFrac: 1, Seed: 7})
	var readErr error
	r.k.Go("reader", func(p *sim.Proc) {
		f, err := r.fsys.Open("f", 0, MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		_, readErr = f.Read(p, 64<<10)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	var de *disk.Error
	if !errors.As(readErr, &de) {
		t.Fatalf("read error = %v, want the disk fault to surface after retries", readErr)
	}
	// One piece (64 KB on one I/O node, one UFS block): budget is
	// MaxRetries re-issues, then one give-up.
	if r.fsys.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (the full budget)", r.fsys.Retries)
	}
	if r.fsys.GiveUps != 1 {
		t.Errorf("GiveUps = %d, want 1", r.fsys.GiveUps)
	}
	if r.fsys.DegradedReads != 0 {
		t.Errorf("DegradedReads = %d for a failed read", r.fsys.DegradedReads)
	}
}

// TestTimeoutAfterReplyIsNoOp: a reply that wins the race must settle
// the attempt; the deadline firing afterwards does nothing — no timeout
// counted, no retry issued, no second completion.
func TestTimeoutAfterReplyIsNoOp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retry = RetryPolicy{MaxRetries: 3, Timeout: 10 * sim.Second, Backoff: sim.Millisecond, Seed: 1}
	r, _ := newRetryRig(t, 1, 2, cfg)
	if err := r.fsys.Create("f", 256<<10); err != nil {
		t.Fatal(err)
	}
	r.k.Go("reader", func(p *sim.Proc) {
		f, err := r.fsys.Open("f", 0, MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 4; i++ {
			if _, err := f.Read(p, 64<<10); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.fsys.Timeouts != 0 || r.fsys.Retries != 0 || r.fsys.LateReplies != 0 {
		t.Errorf("healthy run under a generous deadline counted timeouts=%d retries=%d late=%d, want all zero",
			r.fsys.Timeouts, r.fsys.Retries, r.fsys.LateReplies)
	}
}

// TestTimeoutBeforeReplyDiscardsLateReply: a deadline far below the
// service time makes every attempt time out first; the replies that
// arrive afterwards must be counted as late and discarded — exactly one
// completion per read — and the read surfaces ErrTimeout once the
// budget is gone.
func TestTimeoutBeforeReplyDiscardsLateReply(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Retry = RetryPolicy{MaxRetries: 2, Timeout: 100 * sim.Microsecond, Backoff: sim.Millisecond, Seed: 1}
	r, _ := newRetryRig(t, 1, 1, cfg)
	if err := r.fsys.Create("f", 128<<10); err != nil {
		t.Fatal(err)
	}
	var readErr error
	r.k.Go("reader", func(p *sim.Proc) {
		f, err := r.fsys.Open("f", 0, MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		_, readErr = f.Read(p, 64<<10)
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(readErr, ErrTimeout) {
		t.Fatalf("read error = %v, want ErrTimeout", readErr)
	}
	// One piece, three attempts (initial + 2 retries), each timed out.
	if r.fsys.Timeouts != 3 {
		t.Errorf("Timeouts = %d, want 3", r.fsys.Timeouts)
	}
	if r.fsys.Retries != 2 || r.fsys.GiveUps != 1 {
		t.Errorf("Retries/GiveUps = %d/%d, want 2/1", r.fsys.Retries, r.fsys.GiveUps)
	}
	// The disk served every attempt successfully; all three replies lost
	// the race and were discarded.
	if r.fsys.LateReplies != 3 {
		t.Errorf("LateReplies = %d, want 3", r.fsys.LateReplies)
	}
	if r.fsys.LateBytes != 3*(64<<10) {
		t.Errorf("LateBytes = %d, want 3 pieces' worth", r.fsys.LateBytes)
	}
}

// TestBackoffDelayDeterministic: the backoff is a pure function of
// (Seed, node, offset, attempt) — no RNG whose draw order could differ
// between runs — doubling per attempt and capped (jitter included) at
// 1.25x BackoffMax.
func TestBackoffDelayDeterministic(t *testing.T) {
	pol := DefaultRetryPolicy()
	for attempt := 0; attempt < 12; attempt++ {
		a := pol.delay(3, 1<<20, attempt)
		b := pol.delay(3, 1<<20, attempt)
		if a != b {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, a, b)
		}
		if a < pol.Backoff {
			t.Fatalf("attempt %d: delay %v below base backoff %v", attempt, a, pol.Backoff)
		}
		if max := pol.BackoffMax + pol.BackoffMax/4; a > max {
			t.Fatalf("attempt %d: delay %v above jittered cap %v", attempt, a, max)
		}
	}
	// Different request coordinates must de-synchronize (not all equal).
	distinct := map[sim.Time]bool{}
	for node := 0; node < 8; node++ {
		distinct[pol.delay(node, 0, 1)] = true
	}
	if len(distinct) < 2 {
		t.Error("jitter produced identical delays for 8 nodes")
	}
	if (RetryPolicy{}).Enabled() {
		t.Error("zero policy reports enabled")
	}
	if (RetryPolicy{}).delay(0, 0, 0) != 0 {
		t.Error("zero policy has nonzero delay")
	}
}
