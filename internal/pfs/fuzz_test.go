package pfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"testing"

	"repro/internal/sim"
)

// FuzzModeOffsets drives random multi-party read workloads through every
// I/O mode and checks the file-pointer semantics from the delivery
// record: M_ASYNC follows the application's explicit pointer exactly;
// the statically-assigned collective modes deliver each rank its
// round-robin records; M_GLOBAL hands every party the whole file; and
// the shared-pointer modes tile the file exactly once across parties.
func FuzzModeOffsets(f *testing.F) {
	f.Add(uint8(5), uint8(0), []byte{1, 2, 3})
	f.Add(uint8(3), uint8(3), []byte{4, 4, 4, 4})
	f.Add(uint8(0), uint8(1), []byte{9})
	f.Add(uint8(4), uint8(2), []byte{0x81, 0x02, 0x43})

	f.Fuzz(func(t *testing.T, modeB, partiesB uint8, script []byte) {
		mode := Mode(modeB % 6)
		parties := 1 + int(partiesB%4)
		if len(script) == 0 {
			script = []byte{1}
		}
		if len(script) > 16 {
			script = script[:16]
		}
		req := int64(1+script[0]%8) * 16 << 10
		rounds := int64(1 + len(script)%5)
		size := req * int64(parties) * rounds
		maxRec := size / req

		r := newRig(t, parties, 2)
		if err := r.fsys.Create("f", size); err != nil {
			t.Fatal(err)
		}
		var group *OpenGroup
		if mode.Collective() {
			group = NewOpenGroup(r.k, parties)
		}

		files := make([]*File, parties)
		for i := 0; i < parties; i++ {
			i := i
			r.k.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
				f, err := r.fsys.Open("f", r.compute[i], mode, group)
				if err != nil {
					t.Error(err)
					return
				}
				f.EnableDeliveryLog()
				files[i] = f
				if mode == MAsync {
					// Script-driven pointer: alternate explicit seeks and
					// sequential reads, checking Offset() after every call.
					for _, b := range script {
						if b&1 != 0 {
							want := (int64(b>>1) % maxRec) * req
							if err := f.SeekTo(want); err != nil {
								t.Errorf("seek %d: %v", want, err)
								return
							}
							if f.Offset() != want {
								t.Errorf("Offset=%d after SeekTo(%d)", f.Offset(), want)
								return
							}
						}
						before := f.Offset()
						n, err := f.Read(p, req)
						if err == io.EOF {
							if before != size {
								t.Errorf("EOF with pointer at %d of %d", before, size)
							}
							continue
						}
						if err != nil {
							t.Error(err)
							return
						}
						wantN := req
						if before+wantN > size {
							wantN = size - before
						}
						if n != wantN || f.Offset() != before+wantN {
							t.Errorf("read at %d: n=%d Offset=%d, want n=%d Offset=%d",
								before, n, f.Offset(), wantN, before+wantN)
							return
						}
					}
					return
				}
				for {
					if _, err := f.Read(p, req); err == io.EOF {
						return
					} else if err != nil && !errors.Is(err, ErrBadSize) {
						t.Error(err)
						return
					}
				}
			})
		}
		if err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		if t.Failed() {
			return
		}

		switch mode {
		case MAsync:
			// Pointer semantics were asserted inline.
		case MRecord, MSync:
			// Uniform record sizes make both assignments rank round-robin:
			// rank i's r-th record is record r*parties+i.
			for i, f := range files {
				for r, d := range f.Deliveries() {
					want := (int64(r)*int64(parties) + int64(i)) * req
					if d.Off != want || d.N != req {
						t.Fatalf("%v rank %d record %d: [%d,+%d), want [%d,+%d)",
							mode, i, r, d.Off, d.N, want, req)
					}
				}
			}
		case MGlobal:
			// Every party receives the whole file in order.
			for i, f := range files {
				ds := f.Deliveries()
				if int64(len(ds)) != maxRec {
					t.Fatalf("M_GLOBAL rank %d got %d records, want %d", i, len(ds), maxRec)
				}
				for r, d := range ds {
					if d.Off != int64(r)*req || d.N != req {
						t.Fatalf("M_GLOBAL rank %d record %d: [%d,+%d)", i, r, d.Off, d.N)
					}
				}
			}
		case MUnix, MLog:
			// Region claims are timing-dependent, but the union must tile
			// the file exactly once, and each party's own sequence must be
			// strictly increasing (the shared pointer never rewinds).
			var all []Delivery
			for i, f := range files {
				ds := f.Deliveries()
				for r := 1; r < len(ds); r++ {
					if ds[r].Off <= ds[r-1].Off {
						t.Fatalf("%v rank %d: pointer rewound %d -> %d", mode, i, ds[r-1].Off, ds[r].Off)
					}
				}
				all = append(all, ds...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i].Off < all[j].Off })
			var at int64
			for _, d := range all {
				if d.Off != at {
					t.Fatalf("%v: coverage broken at %d (next delivery [%d,+%d))", mode, at, d.Off, d.N)
				}
				at += d.N
			}
			if at != size {
				t.Fatalf("%v: %d of %d bytes delivered", mode, at, size)
			}
		}
	})
}
