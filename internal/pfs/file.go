package pfs

import (
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// PrefetchService is the hook the prefetching prototype plugs into. When
// installed on a File, every blocking read is routed through ServeRead
// instead of the plain Fast Path, exactly where the paper modified the
// PFS client. Implementations live in package prefetch; pfs itself has no
// prefetching policy.
type PrefetchService interface {
	// ServeRead satisfies the user read at [off, off+n): from the
	// prefetch buffer when possible (paying the buffer-to-user copy),
	// waiting on an in-flight prefetch when one covers the range, or by
	// performing the read directly otherwise. It blocks p until the data
	// is in the user's buffer and then issues any follow-on readahead.
	ServeRead(p *sim.Proc, f *File, off, n int64) error
	// OnClose releases the file's prefetch buffers.
	OnClose(f *File)
}

// File is one compute node's open instance of a PFS file.
type File struct {
	fsys  *FileSystem
	meta  *fileMeta
	node  int // compute node mesh address
	mode  Mode
	group *OpenGroup
	rank  int

	tenant int // owning tenant for QoS accounting (0 outside QoS runs)

	offset    int64 // individual file pointer (M_ASYNC)
	rounds    int64 // M_RECORD: operations completed by this node
	lastTotal int64 // M_SYNC: size of the last collective round
	art       *art
	pf        PrefetchService
	closed    bool
	bcastSem  *sim.Semaphore // M_GLOBAL delivery credits for non-root parties

	// Measurements.
	ReadCalls      int64
	BytesRead      int64
	IOBytes        int64           // bytes successfully pulled over the stripe fast path
	DeliveredBytes int64           // bytes recorded as delivered to the user
	ReadTime       stats.Histogram // blocking read call latency, seconds

	deliveryHash  uint64 // running FoldDelivery digest (see delivery.go)
	deliveryLog   []Delivery
	logDeliveries bool
}

// Name returns the file's PFS path.
func (f *File) Name() string { return f.meta.name }

// Size returns the file's length in bytes.
func (f *File) Size() int64 { return f.meta.size }

// Mode returns the I/O mode the file was opened in.
func (f *File) Mode() Mode { return f.mode }

// Node returns the compute node this instance belongs to.
func (f *File) Node() int { return f.node }

// Rank returns this instance's rank within its open group (0 when no
// group).
func (f *File) Rank() int { return f.rank }

// Parties returns the open group size (1 when no group).
func (f *File) Parties() int {
	if f.group == nil {
		return 1
	}
	return f.group.parties
}

// Offset returns the individual file pointer.
func (f *File) Offset() int64 { return f.offset }

// StripeUnit returns the file's stripe unit size.
func (f *File) StripeUnit() int64 { return f.meta.su }

// StripeGroup returns the size of the file's stripe group.
func (f *File) StripeGroup() int { return len(f.meta.group) }

// SetPrefetcher installs (or, with nil, removes) the prefetch service for
// this open instance.
func (f *File) SetPrefetcher(pf PrefetchService) { f.pf = pf }

// SetTenant attributes this open instance's I/O to a tenant: every
// stripe piece it issues (including prefetches on its behalf) carries
// the id to the I/O-node fair scheduler and the per-tenant accounting.
func (f *File) SetTenant(t int) { f.tenant = t }

// Tenant returns the owning tenant id.
func (f *File) Tenant() int { return f.tenant }

// SetMode changes the I/O mode mid-file, as the PFS's setiomode allowed.
// Switching into a collective mode requires the instance to have been
// opened with a group. The M_RECORD round counter restarts, so a mode
// round-trip rereads records from the shared pointer's current position.
func (f *File) SetMode(mode Mode) error {
	if f.closed {
		return ErrClosed
	}
	if !mode.Valid() {
		return fmt.Errorf("pfs: invalid mode %d", int(mode))
	}
	if mode.Collective() && f.group == nil {
		return fmt.Errorf("%w (%v)", ErrNeedGroup, mode)
	}
	f.mode = mode
	f.rounds = 0
	return nil
}

// SeekTo sets the individual file pointer (meaningful for M_ASYNC).
func (f *File) SeekTo(off int64) error {
	if f.closed {
		return ErrClosed
	}
	if off < 0 || off > f.meta.size {
		return fmt.Errorf("pfs: seek to %d outside [0,%d]", off, f.meta.size)
	}
	f.offset = off
	return nil
}

// Close releases the open instance. Prefetch buffers attached to it are
// freed (their contents discarded), matching the prototype's behaviour at
// close time.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	f.meta.opens--
	if f.pf != nil {
		f.pf.OnClose(f)
	}
	return nil
}

// lockToken acquires the shared-file pointer token, charging any
// queueing delay behind another holder to the mount's contention
// counters. The measurement only reads the clock around the Lock — it
// schedules no events — so fingerprints of existing scenarios are
// unchanged.
func (f *File) lockToken(p *sim.Proc) {
	fsys := f.fsys
	t0 := p.Now()
	f.meta.token.Lock(p)
	if w := p.Now() - t0; w > 0 {
		fsys.TokenWaits++
		fsys.TokenWaitTime += w
	}
	fsys.TokenOps++
}

// Read performs one blocking read of n bytes under the file's I/O mode,
// advancing the appropriate file pointer(s). It returns the bytes read;
// at end of file it returns 0, io.EOF. Collective modes require all
// parties of the open group to call Read for the operation to complete.
func (f *File) Read(p *sim.Proc, n int64) (int64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if n <= 0 {
		return 0, fmt.Errorf("pfs: read size %d must be positive", n)
	}
	start := p.Now()
	f.fsys.emit(trace.ReadStart, f.node, f.meta.name, f.offset, n)
	defer func() { f.fsys.emit(trace.ReadEnd, f.node, f.meta.name, f.offset, n) }()
	p.Sleep(f.fsys.cfg.ClientCall)

	var off int64
	var err error
	switch f.mode {
	case MAsync:
		off = f.offset
		n = clamp(off, n, f.meta.size)
		if n == 0 {
			return 0, io.EOF
		}
		f.offset += n
		err = f.performRead(p, off, n)

	case MUnix:
		// Token held across the entire I/O: full serialization.
		f.lockToken(p)
		p.Sleep(f.fsys.cfg.TokenClaim)
		off = f.meta.sharedOff
		n = clamp(off, n, f.meta.size)
		if n == 0 {
			f.meta.token.Unlock()
			return 0, io.EOF
		}
		f.meta.sharedOff += n
		err = f.performRead(p, off, n)
		f.meta.token.Unlock()

	case MLog:
		// Token held only while claiming the region; I/O overlaps.
		f.lockToken(p)
		p.Sleep(f.fsys.cfg.TokenClaim)
		off = f.meta.sharedOff
		n = clamp(off, n, f.meta.size)
		f.meta.sharedOff += n
		f.meta.token.Unlock()
		if n == 0 {
			return 0, io.EOF
		}
		err = f.performRead(p, off, n)

	case MRecord:
		return f.recordRead(p, n, start)

	case MSync, MGlobal:
		return f.collectiveRead(p, n, start)

	default:
		return 0, fmt.Errorf("pfs: invalid mode %d", int(f.mode))
	}
	if err != nil {
		return 0, err
	}
	f.ReadCalls++
	f.BytesRead += n
	f.ReadTime.ObserveTime(p.Now() - start)
	return n, nil
}

// recordRead implements M_RECORD. The file is a sequence of fixed-size
// records in node order, so a node's offset follows from its own
// operation count and rank alone — no token and no inter-node
// synchronization per operation, which is why the mode is fast and why
// the paper targets it. All parties must use the same record size; the
// first operation on the file fixes it.
func (f *File) recordRead(p *sim.Proc, n int64, start sim.Time) (int64, error) {
	if f.meta.recordSize == 0 {
		f.meta.recordSize = n
	} else if f.meta.recordSize != n {
		return 0, ErrBadSize
	}
	off := (f.rounds*int64(f.Parties()) + int64(f.rank)) * n
	if off >= f.meta.size {
		return 0, io.EOF
	}
	f.rounds++
	n = clamp(off, n, f.meta.size)
	// The pointer bookkeeping the OS does around a record operation.
	p.Sleep(f.fsys.cfg.CollectSync)
	if err := f.performRead(p, off, n); err != nil {
		return 0, err
	}
	f.ReadCalls++
	f.BytesRead += n
	f.ReadTime.ObserveTime(p.Now() - start)
	return n, nil
}

// collectiveRead implements the M_SYNC / M_GLOBAL paths.
func (f *File) collectiveRead(p *sim.Proc, n int64, start sim.Time) (int64, error) {
	// All parties hit EOF in the same round: the shared pointer at round
	// start is identical on every node, so no one blocks on the barrier.
	if f.meta.sharedOff >= f.meta.size {
		return 0, io.EOF
	}
	off, uniform := f.group.round(p, f.meta, f.rank, n, f.mode == MGlobal)
	if f.mode == MGlobal && !uniform {
		return 0, ErrBadSize
	}
	f.lastTotal = f.group.total
	n = clamp(off, n, f.meta.size)
	p.Sleep(f.fsys.cfg.CollectSync)
	if f.mode == MSync {
		// Requests are processed in node order: later ranks' claims
		// stagger behind earlier ones.
		p.Sleep(sim.Time(f.rank) * f.fsys.cfg.SyncStagger)
	}
	if n == 0 {
		// A partial final round can leave high ranks past EOF; they
		// participated in the round but transfer nothing.
		return 0, io.EOF
	}

	var err error
	if f.mode == MGlobal {
		err = f.globalRead(p, off, n)
	} else {
		err = f.performRead(p, off, n)
	}
	if err != nil {
		return 0, err
	}
	f.ReadCalls++
	f.BytesRead += n
	f.ReadTime.ObserveTime(p.Now() - start)
	return n, nil
}

// globalRead has rank 0 perform the I/O and broadcast the data to the
// other parties along a binomial tree: every party that holds the data
// forwards it, so the broadcast finishes in ⌈log2 P⌉ message steps
// instead of serializing P-1 sends through the root's injection port.
// Each delivery posts a credit on the receiver's semaphore, so arrival
// order and wait order cannot race.
func (f *File) globalRead(p *sim.Proc, off, n int64) error {
	if f.rank == 0 {
		// Routed through performRead so a prefetcher on the root
		// instance can serve (and read ahead for) the broadcast source.
		if err := f.performRead(p, off, n); err != nil {
			return err
		}
		f.forward(n)
		return nil
	}
	f.bcast().Acquire(p, 1)
	// The broadcast payload is this rank's copy of [off, off+n).
	f.RecordDelivery(off, n)
	return nil
}

// forward ships the broadcast payload to this rank's binomial-tree
// children; each child credits its receive semaphore and forwards on.
func (f *File) forward(n int64) {
	members := f.group.members
	parties := f.group.parties
	// Rank r received at the step where the highest set bit of r was
	// added; its children are r + 2^k for higher k.
	k := 0
	for 1<<k <= f.rank {
		k++
	}
	for ; f.rank+(1<<k) < parties; k++ {
		child := members[f.rank+(1<<k)]
		f.fsys.m.Send(f.node, child.node, n, func() {
			child.bcast().Release(1)
			child.forward(n)
		})
	}
}

// bcast lazily creates the broadcast credit semaphore for an M_GLOBAL
// party.
func (f *File) bcast() *sim.Semaphore {
	if f.bcastSem == nil {
		f.bcastSem = sim.NewSemaphore(f.fsys.k, 0)
	}
	return f.bcastSem
}

// performRead routes a positioned read through the prefetcher when one is
// installed, else straight to the striped Fast Path. The prefetch service
// owns delivery accounting for the ranges it serves (it alone knows which
// buffer a hit copied from); the direct path records here.
func (f *File) performRead(p *sim.Proc, off, n int64) error {
	if f.pf != nil {
		return f.pf.ServeRead(p, f, off, n)
	}
	if err := f.BlockingIO(p, off, n); err != nil {
		return err
	}
	f.RecordDelivery(off, n)
	return nil
}

// BlockingIO performs the raw striped read of [off, off+n), blocking p
// until the data has arrived in the caller's buffer. No file pointers are
// touched and no prefetcher is consulted: this is the primitive the modes,
// the ART, and the prefetcher all bottom out in.
func (f *File) BlockingIO(p *sim.Proc, off, n int64) error {
	if off < 0 || n <= 0 || off+n > f.meta.size {
		return fmt.Errorf("pfs: read [%d,+%d) outside %s (%d bytes)", off, n, f.meta.name, f.meta.size)
	}
	sig := f.fsys.getSig()
	f.fsys.stripeIOInto(sig, f.node, f.tenant, f.meta, off, n, false)
	err := sig.Wait(p)
	f.fsys.putSig(sig)
	if err != nil {
		return err
	}
	f.IOBytes += n
	return nil
}

// ReadAt performs one blocking positioned read of n bytes at off — the
// open-loop QoS workload's primitive: no file pointer is shared or
// advanced, so thousands of tenants can issue independent reads on
// their own open instances. The call pays the client syscall cost,
// routes through the prefetcher when one is installed, and accounts
// like Read (ReadCalls/BytesRead/ReadTime, trace read-start/read-end).
func (f *File) ReadAt(p *sim.Proc, off, n int64) (int64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if off < 0 || n <= 0 || off+n > f.meta.size {
		return 0, fmt.Errorf("pfs: read [%d,+%d) outside %s (%d bytes)", off, n, f.meta.name, f.meta.size)
	}
	start := p.Now()
	f.fsys.emit(trace.ReadStart, f.node, f.meta.name, off, n)
	defer func() { f.fsys.emit(trace.ReadEnd, f.node, f.meta.name, off, n) }()
	p.Sleep(f.fsys.cfg.ClientCall)
	if err := f.performRead(p, off, n); err != nil {
		return 0, err
	}
	f.ReadCalls++
	f.BytesRead += n
	f.ReadTime.ObserveTime(p.Now() - start)
	return n, nil
}

// HintAt asks the I/O nodes holding [off, off+n) to pull those stripe
// pieces into their buffer caches — the server-side prefetch placement.
// Only the small hint messages travel; no data returns, no completion is
// tracked, and nothing happens unless the mount runs with buffering
// enabled (FastPath off), since Fast Path reads bypass the cache anyway.
func (f *File) HintAt(off, n int64) error {
	if f.closed {
		return ErrClosed
	}
	if off < 0 || n <= 0 || off+n > f.meta.size {
		return fmt.Errorf("pfs: hint [%d,+%d) outside %s (%d bytes)", off, n, f.meta.name, f.meta.size)
	}
	for _, pc := range decluster(off, n, f.meta.su, len(f.meta.group)) {
		pc := pc
		srv := f.fsys.servers[f.meta.group[pc.server]]
		f.fsys.m.Send(f.node, srv.Node(), f.fsys.cfg.RequestBytes, func() {
			srv.Prefetch(f.meta.localName(), pc.localOff, pc.n)
		})
	}
	return nil
}

// Write performs a blocking positioned write (workloads use it to build
// input files in simulated time; the paper's evaluation reads only).
func (f *File) Write(p *sim.Proc, off, n int64) error {
	if f.closed {
		return ErrClosed
	}
	if off < 0 || n <= 0 || off+n > f.meta.size {
		return fmt.Errorf("pfs: write [%d,+%d) outside %s (%d bytes)", off, n, f.meta.name, f.meta.size)
	}
	p.Sleep(f.fsys.cfg.ClientCall)
	sig := f.fsys.getSig()
	f.fsys.stripeIOInto(sig, f.node, f.tenant, f.meta, off, n, true)
	err := sig.Wait(p)
	f.fsys.putSig(sig)
	return err
}

// NextRecordOffset predicts where this node's next read in the current
// mode will land, given that the read at [off, off+n) just completed. A
// negative result means the mode gives no per-node prediction (shared
// unordered pointers: M_UNIX, M_LOG). This is the "details about when and
// where to prefetch derived from the read request" of the paper; the
// M_SYNC and M_GLOBAL predictions extend the prototype to the other
// modes, the paper's stated future work.
func (f *File) NextRecordOffset(off, n int64) int64 {
	switch f.mode {
	case MAsync:
		return off + n
	case MRecord:
		return off + int64(f.Parties())*n
	case MGlobal:
		// Every party reads the same region; the next one follows it.
		return off + n
	case MSync:
		// Heuristic: if the coming round repeats this round's sizes, this
		// node's region starts one round-total further on.
		if f.lastTotal <= 0 {
			return -1
		}
		return off + f.lastTotal
	default:
		return -1
	}
}

// clamp limits a read of n at off to the file size, never negative.
func clamp(off, n, size int64) int64 {
	if off >= size {
		return 0
	}
	if off+n > size {
		return size - off
	}
	return n
}
