package pfs

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/sim"
)

// TestGlobalBroadcastTree runs one M_GLOBAL round with 16 parties and
// checks the binomial tree: everyone gets the data, the file is read off
// the disks once, and the fan-out does not serialize through the root
// (the spread between first and last delivery stays well under the
// serial 15-message injection bound).
func TestGlobalBroadcastTree(t *testing.T) {
	const parties = 16
	const req = 256 << 10
	r := newRig(t, parties, 4)
	if err := r.fsys.Create("f", req); err != nil {
		t.Fatal(err)
	}
	group := NewOpenGroup(r.k, parties)
	times := make([]sim.Time, parties)
	for i := 0; i < parties; i++ {
		i := i
		node := r.compute[i]
		r.k.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
			f, err := r.fsys.Open("f", node, MGlobal, group)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := f.Read(p, req); err != nil {
				t.Error(err)
				return
			}
			times[i] = p.Now()
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	var served int64
	for _, srv := range r.fsys.Servers() {
		served += srv.BytesServed
	}
	if served != req {
		t.Fatalf("I/O nodes served %d, want one file's worth %d", served, req)
	}
	minT, maxT := times[0], times[0]
	for _, ti := range times {
		if ti == 0 {
			t.Fatal("a party never completed")
		}
		if ti < minT {
			minT = ti
		}
		if ti > maxT {
			maxT = ti
		}
	}
	// Serial broadcast would push 15 × 256 KB through the root's port:
	// ≥ 15 × 1.46 ms ≈ 22 ms of spread. The tree needs 4 levels.
	serialSpread := sim.Seconds(15 * float64(req) / 175e6)
	if spread := maxT - minT; spread >= serialSpread {
		t.Fatalf("delivery spread %v not below serial bound %v: tree not effective", spread, serialSpread)
	}
}

// TestGlobalBroadcastManyRounds checks tree forwarding stays correct
// across repeated rounds (credits must not leak or double-fire).
func TestGlobalBroadcastManyRounds(t *testing.T) {
	const parties = 6 // non-power-of-two exercises ragged trees
	r := newRig(t, parties, 2)
	if err := r.fsys.Create("f", 512<<10); err != nil {
		t.Fatal(err)
	}
	group := NewOpenGroup(r.k, parties)
	var total int64
	for i := 0; i < parties; i++ {
		node := r.compute[i]
		r.k.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
			f, err := r.fsys.Open("f", node, MGlobal, group)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				n, err := f.Read(p, 64<<10)
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				total += n
			}
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := int64(parties) * 512 << 10; total != want {
		t.Fatalf("delivered %d, want %d", total, want)
	}
}
