package pfs

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrTimeout marks a stripe request whose reply deadline passed. It is
// what a read surfaces when the retry budget runs out on timeouts alone.
var ErrTimeout = errors.New("pfs: stripe request timed out")

// ErrUnavailable marks a stripe request aimed at an I/O node that is
// down and cannot be back before the request's deadline. It is
// deterministic — decided from the advertised restart time, not from
// racing timers — and is never retried: the workload layer counts these
// reads and carries on.
var ErrUnavailable = errors.New("pfs: I/O node unavailable past deadline")

// RetryPolicy is the client side of the fault-tolerant I/O path: every
// declustered piece gets a reply deadline and a bounded number of
// re-issues with exponentially growing, deterministically jittered
// delays. The zero value disables the whole layer — no timers are
// scheduled and the request flow is identical to the plain PFS client.
//
// All delays are simulated-time events on the kernel; nothing reads a
// wall clock, so runs with retries remain bit-reproducible.
type RetryPolicy struct {
	MaxRetries int      // re-issues allowed per piece after the first attempt
	Timeout    sim.Time // per-attempt reply deadline (0 = wait forever)
	Backoff    sim.Time // delay before the first re-issue; doubles each attempt
	BackoffMax sim.Time // cap on the exponential growth (0 = uncapped)
	Seed       int64    // decorrelates the jitter streams of different mounts

	// DownPoll arms node-down awareness: a piece aimed at a node known to
	// be down is parked until the node's advertised restart time (but at
	// least DownPoll from now) instead of burning the retry budget on
	// timeouts the node can never answer. Zero disables the distinction —
	// down nodes look like silent ones, as before.
	DownPoll sim.Time
	// DownDeadline bounds how long a piece will wait out a crash, measured
	// from its first issue. A piece whose node cannot restart before the
	// deadline fails immediately with ErrUnavailable (no pointless wait);
	// zero means wait for the restart however long it takes.
	DownDeadline sim.Time
}

// DefaultRetryPolicy returns the policy the degraded-mode experiments
// and chaos scenarios run under: enough budget that a transient-only
// fault storm is always ridden out (each re-read of a transiently
// faulted sector succeeds by construction), with backoff spanning any
// I/O-node shed cooldown.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries: 8,
		Backoff:    2 * sim.Millisecond,
		BackoffMax: 100 * sim.Millisecond,
		Seed:       1,
	}
}

// Enabled reports whether any part of the retry layer is armed.
func (rp RetryPolicy) Enabled() bool { return rp.MaxRetries > 0 || rp.Timeout > 0 }

// delay computes the pause before re-issuing a piece whose attempt-th
// try just failed: Backoff<<attempt capped at BackoffMax, plus a
// deterministic jitter of up to a quarter of the base delay derived by
// hashing (Seed, node, localOff, attempt). The jitter de-synchronizes
// the retry herds of many clients without a shared RNG, whose draw
// order would depend on event interleaving.
func (rp RetryPolicy) delay(node int, localOff int64, attempt int) sim.Time {
	d := rp.Backoff
	for i := 0; i < attempt && d < rp.BackoffMax; i++ {
		d <<= 1
	}
	if rp.BackoffMax > 0 && d > rp.BackoffMax {
		d = rp.BackoffMax
	}
	if d <= 0 {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{uint64(rp.Seed), uint64(node), uint64(localOff), uint64(attempt)} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return d + sim.Time(h.Sum64()%uint64(d/4+1))
}

// pieceAttempt is the pooled bookkeeping of one attempt of one
// declustered piece: what the legacy sendPiece captured in closures. Each
// attempt settles exactly once — by its reply, its timeout, or a
// down-node park — and failed settles hand the piece to a FRESH attempt
// struct: the old one must keep its settled flag so a straggling reply
// (or the losing half of the reply/timeout race) is recognized as stale,
// exactly the legacy per-attempt `settled` closure variable.
//
// refs counts the event chains holding the attempt (the request/reply
// chain, plus the timeout when armed); the attempt returns to the free
// list when both have let go. Chains severed by a crash (a dropped mesh
// delivery, a server discard) simply never release — such attempts are
// garbage collected, which only costs the pool a refill.
type pieceAttempt struct {
	fsys    *FileSystem
	op      *stripeOp
	meta    *fileMeta
	node    int // requesting compute node
	tenant  int // owning tenant; its own copy — the op recycles before late replies
	pc      piece
	write   bool
	attempt int
	first   sim.Time // first-issue time; the down deadline is measured from it
	settled bool
	refs    int
}

func (fsys *FileSystem) getAttempt() *pieceAttempt {
	if n := len(fsys.attemptFree); n > 0 {
		at := fsys.attemptFree[n-1]
		fsys.attemptFree[n-1] = nil
		fsys.attemptFree = fsys.attemptFree[:n-1]
		return at
	}
	return &pieceAttempt{fsys: fsys}
}

func (fsys *FileSystem) putAttempt(at *pieceAttempt) {
	at.op = nil
	at.meta = nil
	at.tenant = 0
	at.settled = false
	at.refs = 0
	fsys.attemptFree = append(fsys.attemptFree, at)
}

func (fsys *FileSystem) releaseAttempt(at *pieceAttempt) {
	at.refs--
	if at.refs == 0 {
		fsys.putAttempt(at)
	}
}

// cloneAttempt returns a fresh attempt for the same piece, used by retry
// and the timeout's down-node park; renumber sets the attempt counter.
func (fsys *FileSystem) cloneAttempt(at *pieceAttempt, renumber int) *pieceAttempt {
	next := fsys.getAttempt()
	next.op, next.meta, next.node, next.pc, next.write = at.op, at.meta, at.node, at.pc, at.write
	next.tenant = at.tenant
	next.attempt, next.first, next.settled = renumber, at.first, false
	return next
}

// finish surfaces the attempt's final outcome to its stripe operation.
func (at *pieceAttempt) finish(err error) {
	op := at.op
	if err == nil && !at.write {
		op.okBytes += at.pc.n
	}
	op.finishOne(err, at.attempt > 0)
}

// sendAttempt issues one attempt of a declustered piece to its I/O node
// and arms the attempt's reply deadline. The attempt arrives fresh (from
// stripeIOInto, a retry, or a restart park) with no references; the
// chains armed here hold it until they resolve.
func (fsys *FileSystem) sendAttempt(at *pieceAttempt) {
	srv := fsys.servers[at.meta.group[at.pc.server]]
	pol := fsys.cfg.Retry
	// Health is queried at the client's clock (DownAt): on a sharded
	// machine the server lives on another shard and its flags may not be
	// read from here, but the outage schedule is static and pure.
	if down, _ := srv.DownAt(fsys.k.Now()); pol.DownPoll > 0 && down {
		// Known down before anything hit the wire: park, don't send.
		fsys.deferAttempt(at)
		return
	}
	reqBytes := fsys.cfg.RequestBytes
	if at.write {
		reqBytes += at.pc.n // write data travels with the request
	}
	if at.attempt == 0 {
		fsys.emit(trace.StripeSend, srv.Node(), at.meta.name, at.pc.localOff, at.pc.n)
	}
	at.refs = 1
	if pol.Timeout > 0 {
		at.refs = 2
		fsys.k.AfterCall(pol.Timeout, attemptTimeout, at)
	}
	fsys.m.SendCall(at.node, srv.Node(), reqBytes, attemptDeliver, at)
}

// attemptDeliver runs on the I/O node when the request message arrives.
// Reads ride the fully pooled server path; writes keep the legacy server
// entry point (the paper evaluates reads — writes are cold).
func attemptDeliver(v any) {
	at := v.(*pieceAttempt)
	fsys := at.fsys
	srv := fsys.servers[at.meta.group[at.pc.server]]
	if at.write {
		srv.Write(at.node, at.meta.localName(), at.pc.localOff, at.pc.n, func(err error) {
			pieceReply(at, err)
		})
		return
	}
	srv.ReadCall(at.node, at.tenant, at.meta.handles[at.pc.server], at.pc.localOff, at.pc.n,
		fsys.cfg.FastPath, pieceReply, at)
}

// pieceReply runs on the requesting node when the attempt's reply lands.
func pieceReply(v any, err error) {
	at := v.(*pieceAttempt)
	fsys := at.fsys
	if at.settled {
		// The deadline fired first and the piece was re-issued; this
		// attempt's outcome is stale. Data that did arrive was paid for
		// at the server and on the mesh but is discarded here.
		fsys.LateReplies++
		if err == nil && !at.write {
			fsys.LateBytes += at.pc.n
			if fsys.tenants > 0 {
				fsys.tenantLate[at.tenant] += at.pc.n
			}
		}
		fsys.releaseAttempt(at)
		return
	}
	at.settled = true
	srv := fsys.servers[at.meta.group[at.pc.server]]
	fsys.emit(trace.StripeReply, srv.Node(), at.meta.name, at.pc.localOff, at.pc.n)
	fsys.settleAttempt(at, err)
	fsys.releaseAttempt(at)
}

// attemptTimeout runs when the attempt's reply deadline passes. The
// event is armed unconditionally at issue (like the legacy timer), so a
// settled attempt just drops its timeout reference.
func attemptTimeout(v any) {
	at := v.(*pieceAttempt)
	fsys := at.fsys
	if at.settled {
		fsys.releaseAttempt(at)
		return // reply won the race; the deadline is a no-op
	}
	at.settled = true
	srv := fsys.servers[at.meta.group[at.pc.server]]
	pol := fsys.cfg.Retry
	fsys.Timeouts++
	fsys.emit(trace.TimeoutFired, srv.Node(), at.meta.name, at.pc.localOff, at.pc.n)
	down, _ := srv.DownAt(fsys.k.Now())
	if pol.DownPoll > 0 && down {
		// The deadline was the discovery that the node died, not
		// evidence against a live one: the attempt does not burn retry
		// budget, the piece re-arms on the restart.
		fsys.deferAttempt(fsys.cloneAttempt(at, at.attempt))
		fsys.releaseAttempt(at)
		return
	}
	fsys.settleAttempt(at, fmt.Errorf("%w: [%d,+%d) on I/O node %d, attempt %d",
		ErrTimeout, at.pc.localOff, at.pc.n, srv.Node(), at.attempt))
	fsys.releaseAttempt(at)
}

// settleAttempt decides a settled attempt's failure: re-issue the piece
// after the backoff delay, or give up and surface the error.
func (fsys *FileSystem) settleAttempt(at *pieceAttempt, err error) {
	pol := fsys.cfg.Retry
	srv := fsys.servers[at.meta.group[at.pc.server]]
	if err != nil && !errors.Is(err, ErrUnavailable) && at.attempt < pol.MaxRetries {
		fsys.Retries++
		fsys.emit(trace.RetryIssue, srv.Node(), at.meta.name, at.pc.localOff, at.pc.n)
		next := fsys.cloneAttempt(at, at.attempt+1)
		fsys.k.AfterCall(pol.delay(at.node, at.pc.localOff, at.attempt), resendAttempt, next)
		return
	}
	if err != nil && pol.Enabled() {
		fsys.GiveUps++
		fsys.emit(trace.RetryGiveUp, srv.Node(), at.meta.name, at.pc.localOff, at.pc.n)
	}
	at.finish(err)
}

// resendAttempt re-enters sendAttempt from a backoff or restart delay.
func resendAttempt(v any) {
	at := v.(*pieceAttempt)
	at.fsys.sendAttempt(at)
}

// deferAttempt parks a piece aimed at a node known to be down. If the
// node's advertised restart leaves no room before the piece's deadline
// the piece fails now with ErrUnavailable — deterministically, without
// waiting out the crash. Otherwise the piece re-arms at the restart time
// (but no sooner than DownPoll from now) with its attempt budget intact.
// The attempt passed in carries no references.
func (fsys *FileSystem) deferAttempt(at *pieceAttempt) {
	srv := fsys.servers[at.meta.group[at.pc.server]]
	pol := fsys.cfg.Retry
	now := fsys.k.Now()
	_, restart := srv.DownAt(now)
	if pol.DownDeadline > 0 {
		deadline := at.first + pol.DownDeadline
		if now >= deadline || restart > deadline {
			fsys.Unavailable++
			at.finish(fmt.Errorf("%w: [%d,+%d) on I/O node %d (restart %v, deadline %v)",
				ErrUnavailable, at.pc.localOff, at.pc.n, srv.Node(), restart, deadline))
			fsys.putAttempt(at)
			return
		}
	}
	fsys.DownWaits++
	wait := pol.DownPoll
	if restart > now && restart-now > wait {
		wait = restart - now
	}
	fsys.k.AfterCall(wait, resendAttempt, at)
}
