package pfs

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrTimeout marks a stripe request whose reply deadline passed. It is
// what a read surfaces when the retry budget runs out on timeouts alone.
var ErrTimeout = errors.New("pfs: stripe request timed out")

// ErrUnavailable marks a stripe request aimed at an I/O node that is
// down and cannot be back before the request's deadline. It is
// deterministic — decided from the advertised restart time, not from
// racing timers — and is never retried: the workload layer counts these
// reads and carries on.
var ErrUnavailable = errors.New("pfs: I/O node unavailable past deadline")

// RetryPolicy is the client side of the fault-tolerant I/O path: every
// declustered piece gets a reply deadline and a bounded number of
// re-issues with exponentially growing, deterministically jittered
// delays. The zero value disables the whole layer — no timers are
// scheduled and the request flow is identical to the plain PFS client.
//
// All delays are simulated-time events on the kernel; nothing reads a
// wall clock, so runs with retries remain bit-reproducible.
type RetryPolicy struct {
	MaxRetries int      // re-issues allowed per piece after the first attempt
	Timeout    sim.Time // per-attempt reply deadline (0 = wait forever)
	Backoff    sim.Time // delay before the first re-issue; doubles each attempt
	BackoffMax sim.Time // cap on the exponential growth (0 = uncapped)
	Seed       int64    // decorrelates the jitter streams of different mounts

	// DownPoll arms node-down awareness: a piece aimed at a node known to
	// be down is parked until the node's advertised restart time (but at
	// least DownPoll from now) instead of burning the retry budget on
	// timeouts the node can never answer. Zero disables the distinction —
	// down nodes look like silent ones, as before.
	DownPoll sim.Time
	// DownDeadline bounds how long a piece will wait out a crash, measured
	// from its first issue. A piece whose node cannot restart before the
	// deadline fails immediately with ErrUnavailable (no pointless wait);
	// zero means wait for the restart however long it takes.
	DownDeadline sim.Time
}

// DefaultRetryPolicy returns the policy the degraded-mode experiments
// and chaos scenarios run under: enough budget that a transient-only
// fault storm is always ridden out (each re-read of a transiently
// faulted sector succeeds by construction), with backoff spanning any
// I/O-node shed cooldown.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries: 8,
		Backoff:    2 * sim.Millisecond,
		BackoffMax: 100 * sim.Millisecond,
		Seed:       1,
	}
}

// Enabled reports whether any part of the retry layer is armed.
func (rp RetryPolicy) Enabled() bool { return rp.MaxRetries > 0 || rp.Timeout > 0 }

// delay computes the pause before re-issuing a piece whose attempt-th
// try just failed: Backoff<<attempt capped at BackoffMax, plus a
// deterministic jitter of up to a quarter of the base delay derived by
// hashing (Seed, node, localOff, attempt). The jitter de-synchronizes
// the retry herds of many clients without a shared RNG, whose draw
// order would depend on event interleaving.
func (rp RetryPolicy) delay(node int, localOff int64, attempt int) sim.Time {
	d := rp.Backoff
	for i := 0; i < attempt && d < rp.BackoffMax; i++ {
		d <<= 1
	}
	if rp.BackoffMax > 0 && d > rp.BackoffMax {
		d = rp.BackoffMax
	}
	if d <= 0 {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{uint64(rp.Seed), uint64(node), uint64(localOff), uint64(attempt)} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return d + sim.Time(h.Sum64()%uint64(d/4+1))
}

// sendPiece issues one attempt of a declustered piece to its I/O node
// and arms the attempt's reply deadline. Exactly one of three things
// settles the attempt — the reply, the timeout, or nothing (a reply
// arriving after the timeout already settled it is counted and
// dropped) — and a settled failure either re-issues the piece after the
// backoff delay or gives up and surfaces the error to finish.
//
// first is the time the piece's very first attempt was issued; the
// down-node deadline is measured from it across all re-issues.
func (fsys *FileSystem) sendPiece(node int, meta *fileMeta, pc piece, write bool, attempt int, first sim.Time, finish func(err error, retried bool)) {
	srv := fsys.servers[meta.group[pc.server]]
	pol := fsys.cfg.Retry
	if pol.DownPoll > 0 && srv.Down() {
		// Known down before anything hit the wire: park, don't send.
		fsys.deferToRestart(node, meta, pc, write, attempt, first, finish)
		return
	}
	reqBytes := fsys.cfg.RequestBytes
	if write {
		reqBytes += pc.n // write data travels with the request
	}
	if attempt == 0 {
		fsys.emit(trace.StripeSend, srv.Node(), meta.name, pc.localOff, pc.n)
	}

	settled := false
	settle := func(err error) {
		if err != nil && !errors.Is(err, ErrUnavailable) && attempt < pol.MaxRetries {
			fsys.Retries++
			fsys.emit(trace.RetryIssue, srv.Node(), meta.name, pc.localOff, pc.n)
			fsys.k.After(pol.delay(node, pc.localOff, attempt), func() {
				fsys.sendPiece(node, meta, pc, write, attempt+1, first, finish)
			})
			return
		}
		if err != nil && pol.Enabled() {
			fsys.GiveUps++
			fsys.emit(trace.RetryGiveUp, srv.Node(), meta.name, pc.localOff, pc.n)
		}
		finish(err, attempt > 0)
	}
	reply := func(err error) {
		if settled {
			// The deadline fired first and the piece was re-issued; this
			// attempt's outcome is stale. Data that did arrive was paid
			// for at the server and on the mesh but is discarded here.
			fsys.LateReplies++
			if err == nil && !write {
				fsys.LateBytes += pc.n
			}
			return
		}
		settled = true
		fsys.emit(trace.StripeReply, srv.Node(), meta.name, pc.localOff, pc.n)
		settle(err)
	}
	if pol.Timeout > 0 {
		fsys.k.After(pol.Timeout, func() {
			if settled {
				return // reply won the race; the deadline is a no-op
			}
			settled = true
			fsys.Timeouts++
			fsys.emit(trace.TimeoutFired, srv.Node(), meta.name, pc.localOff, pc.n)
			if pol.DownPoll > 0 && srv.Down() {
				// The deadline was the discovery that the node died, not
				// evidence against a live one: the attempt does not burn
				// retry budget, the piece re-arms on the restart.
				fsys.deferToRestart(node, meta, pc, write, attempt, first, finish)
				return
			}
			settle(fmt.Errorf("%w: [%d,+%d) on I/O node %d, attempt %d",
				ErrTimeout, pc.localOff, pc.n, srv.Node(), attempt))
		})
	}
	fsys.m.Send(node, srv.Node(), reqBytes, func() {
		if write {
			srv.Write(node, meta.localName(), pc.localOff, pc.n, reply)
		} else {
			srv.Read(node, meta.localName(), pc.localOff, pc.n, fsys.cfg.FastPath, reply)
		}
	})
}

// deferToRestart parks a piece aimed at a node known to be down. If the
// node's advertised restart leaves no room before the piece's deadline
// the piece fails now with ErrUnavailable — deterministically, without
// waiting out the crash. Otherwise the piece re-arms at the restart time
// (but no sooner than DownPoll from now) with its attempt budget intact.
func (fsys *FileSystem) deferToRestart(node int, meta *fileMeta, pc piece, write bool, attempt int, first sim.Time, finish func(err error, retried bool)) {
	srv := fsys.servers[meta.group[pc.server]]
	pol := fsys.cfg.Retry
	now := fsys.k.Now()
	restart := srv.DownUntil()
	if pol.DownDeadline > 0 {
		deadline := first + pol.DownDeadline
		if now >= deadline || restart > deadline {
			fsys.Unavailable++
			finish(fmt.Errorf("%w: [%d,+%d) on I/O node %d (restart %v, deadline %v)",
				ErrUnavailable, pc.localOff, pc.n, srv.Node(), restart, deadline), attempt > 0)
			return
		}
	}
	fsys.DownWaits++
	wait := pol.DownPoll
	if restart > now && restart-now > wait {
		wait = restart - now
	}
	fsys.k.After(wait, func() {
		fsys.sendPiece(node, meta, pc, write, attempt, first, finish)
	})
}
