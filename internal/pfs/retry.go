package pfs

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrTimeout marks a stripe request whose reply deadline passed. It is
// what a read surfaces when the retry budget runs out on timeouts alone.
var ErrTimeout = errors.New("pfs: stripe request timed out")

// RetryPolicy is the client side of the fault-tolerant I/O path: every
// declustered piece gets a reply deadline and a bounded number of
// re-issues with exponentially growing, deterministically jittered
// delays. The zero value disables the whole layer — no timers are
// scheduled and the request flow is identical to the plain PFS client.
//
// All delays are simulated-time events on the kernel; nothing reads a
// wall clock, so runs with retries remain bit-reproducible.
type RetryPolicy struct {
	MaxRetries int      // re-issues allowed per piece after the first attempt
	Timeout    sim.Time // per-attempt reply deadline (0 = wait forever)
	Backoff    sim.Time // delay before the first re-issue; doubles each attempt
	BackoffMax sim.Time // cap on the exponential growth (0 = uncapped)
	Seed       int64    // decorrelates the jitter streams of different mounts
}

// DefaultRetryPolicy returns the policy the degraded-mode experiments
// and chaos scenarios run under: enough budget that a transient-only
// fault storm is always ridden out (each re-read of a transiently
// faulted sector succeeds by construction), with backoff spanning any
// I/O-node shed cooldown.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries: 8,
		Backoff:    2 * sim.Millisecond,
		BackoffMax: 100 * sim.Millisecond,
		Seed:       1,
	}
}

// Enabled reports whether any part of the retry layer is armed.
func (rp RetryPolicy) Enabled() bool { return rp.MaxRetries > 0 || rp.Timeout > 0 }

// delay computes the pause before re-issuing a piece whose attempt-th
// try just failed: Backoff<<attempt capped at BackoffMax, plus a
// deterministic jitter of up to a quarter of the base delay derived by
// hashing (Seed, node, localOff, attempt). The jitter de-synchronizes
// the retry herds of many clients without a shared RNG, whose draw
// order would depend on event interleaving.
func (rp RetryPolicy) delay(node int, localOff int64, attempt int) sim.Time {
	d := rp.Backoff
	for i := 0; i < attempt && d < rp.BackoffMax; i++ {
		d <<= 1
	}
	if rp.BackoffMax > 0 && d > rp.BackoffMax {
		d = rp.BackoffMax
	}
	if d <= 0 {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range []uint64{uint64(rp.Seed), uint64(node), uint64(localOff), uint64(attempt)} {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return d + sim.Time(h.Sum64()%uint64(d/4+1))
}

// sendPiece issues one attempt of a declustered piece to its I/O node
// and arms the attempt's reply deadline. Exactly one of three things
// settles the attempt — the reply, the timeout, or nothing (a reply
// arriving after the timeout already settled it is counted and
// dropped) — and a settled failure either re-issues the piece after the
// backoff delay or gives up and surfaces the error to finish.
func (fsys *FileSystem) sendPiece(node int, meta *fileMeta, pc piece, write bool, attempt int, finish func(err error, retried bool)) {
	srv := fsys.servers[meta.group[pc.server]]
	reqBytes := fsys.cfg.RequestBytes
	if write {
		reqBytes += pc.n // write data travels with the request
	}
	if attempt == 0 {
		fsys.emit(trace.StripeSend, srv.Node(), meta.name, pc.localOff, pc.n)
	} else {
		fsys.emit(trace.RetryIssue, srv.Node(), meta.name, pc.localOff, pc.n)
	}

	pol := fsys.cfg.Retry
	settled := false
	settle := func(err error) {
		if err != nil && attempt < pol.MaxRetries {
			fsys.Retries++
			fsys.k.After(pol.delay(node, pc.localOff, attempt), func() {
				fsys.sendPiece(node, meta, pc, write, attempt+1, finish)
			})
			return
		}
		if err != nil && pol.Enabled() {
			fsys.GiveUps++
			fsys.emit(trace.RetryGiveUp, srv.Node(), meta.name, pc.localOff, pc.n)
		}
		finish(err, attempt > 0)
	}
	reply := func(err error) {
		if settled {
			// The deadline fired first and the piece was re-issued; this
			// attempt's outcome is stale. Data that did arrive was paid
			// for at the server and on the mesh but is discarded here.
			fsys.LateReplies++
			if err == nil && !write {
				fsys.LateBytes += pc.n
			}
			return
		}
		settled = true
		fsys.emit(trace.StripeReply, srv.Node(), meta.name, pc.localOff, pc.n)
		settle(err)
	}
	if pol.Timeout > 0 {
		fsys.k.After(pol.Timeout, func() {
			if settled {
				return // reply won the race; the deadline is a no-op
			}
			settled = true
			fsys.Timeouts++
			fsys.emit(trace.TimeoutFired, srv.Node(), meta.name, pc.localOff, pc.n)
			settle(fmt.Errorf("%w: [%d,+%d) on I/O node %d, attempt %d",
				ErrTimeout, pc.localOff, pc.n, srv.Node(), attempt))
		})
	}
	fsys.m.Send(node, srv.Node(), reqBytes, func() {
		if write {
			srv.Write(node, meta.localName(), pc.localOff, pc.n, reply)
		} else {
			srv.Read(node, meta.localName(), pc.localOff, pc.n, fsys.cfg.FastPath, reply)
		}
	})
}
