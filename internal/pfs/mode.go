package pfs

import "fmt"

// Mode is a PFS I/O sharing mode: the application's hint about how
// multiple processes will access a shared file. Numbering follows the
// Paragon OSF/1 nx library.
type Mode int

const (
	// MUnix (mode 0) gives standard Unix semantics on a shared file
	// pointer: every read is atomic and the pointer token is held for the
	// whole I/O, so concurrent accesses fully serialize. Slowest shared
	// mode.
	MUnix Mode = 0
	// MLog (mode 1) shares the file pointer with atomicity but without
	// ordering: a node claims its region (token round-trip), then the
	// I/O itself proceeds in parallel with other nodes'.
	MLog Mode = 1
	// MSync (mode 2) processes requests in node order with varying
	// request sizes: each operation is collective, offsets are assigned
	// by rank prefix-sum, and claims stagger in rank order.
	MSync Mode = 2
	// MRecord (mode 3) treats the file as fixed-size records in node
	// order: each collective operation must present the same size on
	// every node, offsets are disjoint by construction, and no token is
	// needed. The mode the paper's prefetching prototype targets.
	MRecord Mode = 3
	// MGlobal (mode 4) has every node read the same data: one node
	// performs the I/O and the data is broadcast.
	MGlobal Mode = 4
	// MAsync (mode 5) gives each node its own file pointer with no
	// atomicity or coordination: the fastest shared-file mode.
	MAsync Mode = 5
)

// String returns the nx-style name of the mode.
func (m Mode) String() string {
	switch m {
	case MUnix:
		return "M_UNIX"
	case MLog:
		return "M_LOG"
	case MSync:
		return "M_SYNC"
	case MRecord:
		return "M_RECORD"
	case MGlobal:
		return "M_GLOBAL"
	case MAsync:
		return "M_ASYNC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Collective reports whether every operation in this mode must be issued
// by all parties of the open group.
func (m Mode) Collective() bool {
	return m == MSync || m == MRecord || m == MGlobal
}

// SharedPointer reports whether the mode reads through the shared file
// pointer (as opposed to per-node pointers).
func (m Mode) SharedPointer() bool { return m != MAsync }

// Valid reports whether m is one of the defined modes.
func (m Mode) Valid() bool { return m >= MUnix && m <= MAsync }
