package pfs

import (
	"io"
	"testing"

	"repro/internal/sim"
)

// BenchmarkDecluster measures the striping arithmetic on the hot path.
func BenchmarkDecluster(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		decluster(int64(i)*64<<10, 1<<20, 64<<10, 8)
	}
}

// BenchmarkClientSteadyRead pins the client steady-state read path —
// decluster, per-piece request fan-out over the mesh, I/O node service,
// and completion delivery — at 0 allocs/op. One warm-up pass fills every
// pool (events, signals, stripe ops, piece attempts, server ops, ufs read
// ops, disk requests) and the histogram sample storage; after that a
// blocking stripe read must not allocate. detgate runs this with
// -benchtime=100x as part of the allocation gate.
func BenchmarkClientSteadyRead(b *testing.B) {
	r := newRig(b, 1, 4)
	const su = 64 << 10
	if err := r.fsys.Create("bench", 1<<20); err != nil {
		b.Fatal(err)
	}
	f, err := r.fsys.Open("bench", 0, MUnix, nil)
	if err != nil {
		b.Fatal(err)
	}
	run := func(reads int) {
		r.k.Go("reader", func(p *sim.Proc) {
			for i := 0; i < reads; i++ {
				if err := f.BlockingIO(p, int64(i%16)*su, su); err != nil {
					b.Error(err)
					return
				}
			}
		})
		if err := r.k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	run(512) // warm the pools and sample storage
	b.ReportAllocs()
	b.ResetTimer()
	run(b.N)
}

// BenchmarkCollectiveRead measures an end-to-end M_RECORD whole-file scan
// on a small machine: the cost of simulating one evaluation data point.
func BenchmarkCollectiveRead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRig(b, 4, 4)
		if err := r.fsys.Create("f", 4<<20); err != nil {
			b.Fatal(err)
		}
		group := NewOpenGroup(r.k, 4)
		for n := 0; n < 4; n++ {
			node := n
			r.k.Go("reader", func(p *sim.Proc) {
				f, err := r.fsys.Open("f", node, MRecord, group)
				if err != nil {
					b.Error(err)
					return
				}
				for {
					if _, err := f.Read(p, 64<<10); err == io.EOF {
						return
					} else if err != nil {
						b.Error(err)
						return
					}
				}
			})
		}
		if err := r.k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
