package pfs

import (
	"io"
	"testing"

	"repro/internal/sim"
)

// BenchmarkDecluster measures the striping arithmetic on the hot path.
func BenchmarkDecluster(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		decluster(int64(i)*64<<10, 1<<20, 64<<10, 8)
	}
}

// BenchmarkCollectiveRead measures an end-to-end M_RECORD whole-file scan
// on a small machine: the cost of simulating one evaluation data point.
func BenchmarkCollectiveRead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRig(b, 4, 4)
		if err := r.fsys.Create("f", 4<<20); err != nil {
			b.Fatal(err)
		}
		group := NewOpenGroup(r.k, 4)
		for n := 0; n < 4; n++ {
			node := n
			r.k.Go("reader", func(p *sim.Proc) {
				f, err := r.fsys.Open("f", node, MRecord, group)
				if err != nil {
					b.Error(err)
					return
				}
				for {
					if _, err := f.Read(p, 64<<10); err == io.EOF {
						return
					} else if err != nil {
						b.Error(err)
						return
					}
				}
			})
		}
		if err := r.k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
