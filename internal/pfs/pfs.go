// Package pfs implements the Paragon Parallel File System model: files
// striped in fixed-size stripe units across a group of I/O nodes, the six
// nx I/O sharing modes, Fast Path I/O, and the asynchronous request
// machinery (ART) that the prefetching prototype builds on.
//
// The package is the client half of the file system — the code that ran
// on compute nodes inside the Paragon OS server. The server half is
// package ionode; package prefetch plugs in through the PrefetchService
// hook exactly where the paper modified the PFS client.
package pfs

import (
	"errors"
	"fmt"
	"path"

	"repro/internal/ionode"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/ufs"
)

// Config holds the software costs and striping defaults of a PFS mount.
type Config struct {
	StripeUnit   int64    // default stripe unit size in bytes
	ClientCall   sim.Time // compute-node CPU per read/write system call
	TokenClaim   sim.Time // shared-pointer token round-trip (M_UNIX, M_LOG)
	SyncStagger  sim.Time // per-rank claim stagger in M_SYNC
	CollectSync  sim.Time // collective coordination cost per M_RECORD/M_GLOBAL op
	RequestBytes int64    // control message size on the mesh
	ARTSetup     sim.Time // async request setup + posting cost in the ART
	FastPath     bool     // bypass I/O-node buffer caches (PFS "buffering off")

	// GroupWidth bounds the stripe group of files created with default
	// attributes (Create): instead of striping over the whole I/O
	// partition, each file stripes over a tile of GroupWidth consecutive
	// I/O nodes, and successive files take successive tiles (wrapping
	// around the partition), so declustering and per-file metadata stay
	// O(GroupWidth) no matter how many I/O nodes the machine has. 0 (or
	// a width covering the partition) keeps the legacy whole-partition
	// stripe. CreateStriped callers pass explicit groups either way.
	GroupWidth int

	// Retry is the fault-tolerant I/O path: per-stripe-request timeouts
	// and bounded, deterministically backed-off re-issues. The zero
	// value disables it (the paper's client: any stripe failure surfaces
	// directly).
	Retry RetryPolicy
}

// DefaultConfig returns the mount parameters used throughout the paper's
// evaluation: 64 KB stripe units and Fast Path enabled.
func DefaultConfig() Config {
	return Config{
		StripeUnit:   64 << 10,
		ClientCall:   1000 * sim.Microsecond,
		TokenClaim:   5 * sim.Millisecond,
		SyncStagger:  400 * sim.Microsecond,
		CollectSync:  250 * sim.Microsecond,
		RequestBytes: 128,
		ARTSetup:     300 * sim.Microsecond,
		FastPath:     true,
	}
}

// Errors returned by file operations.
var (
	ErrClosed    = errors.New("pfs: file is closed")
	ErrExists    = errors.New("pfs: file exists")
	ErrNotExist  = errors.New("pfs: file does not exist")
	ErrBadSize   = errors.New("pfs: M_RECORD requires equal sizes on all nodes")
	ErrNeedGroup = errors.New("pfs: collective mode requires an open group")
)

// fileMeta is the OS-server-side state of one PFS file, shared by every
// open instance.
type fileMeta struct {
	name    string
	size    int64
	su      int64        // stripe unit
	group   []int        // indices into FileSystem.servers
	handles []ufs.Handle // per group member: stripe file handle, resolved at create

	sharedOff  int64      // the shared file pointer
	token      *sim.Mutex // pointer token for M_UNIX / M_LOG
	recordSize int64      // fixed by the first M_RECORD operation
	opens      int
}

func (m *fileMeta) localName() string { return "pfs:" + m.name }

// FileSystem is a mounted PFS: a stripe group of I/O nodes plus striping
// attributes.
type FileSystem struct {
	k       *sim.Kernel
	m       *mesh.Mesh
	servers []*ionode.Server
	cfg     Config
	files   map[string]*fileMeta
	dirs    map[string]bool // namespace directories; "/" always exists
	created int             // files created; drives stripe-base rotation
	tr      *trace.Log      // optional event timeline

	// Free lists and scratch for the allocation-free stripe path.
	pieceBuf    []piece         // decluster scratch, one op at a time
	sigFree     []*sim.Signal   // pooled signals for blocking stripe ops
	stripeFree  []*stripeOp     // pooled per-op bookkeeping
	attemptFree []*pieceAttempt // pooled per-attempt bookkeeping

	// Generation-stamped per-server merge index for declusterInto: slot
	// s holds the index in pieceBuf of server s's latest piece when its
	// stamp matches declusterGen, so the merge probe is O(1) per stripe
	// unit instead of a backward scan over the pieces so far (quadratic
	// in the stripe width for wide spanning requests).
	lastPiece    []int32
	lastPieceGen []uint32
	declusterGen uint32

	// Measurements.
	StripeRequests int64 // per-I/O-node requests issued (after declustering)

	// Shared-pointer token contention (M_UNIX holds the token across the
	// whole I/O, M_LOG only across the claim). TokenOps counts every
	// acquisition, TokenWaits the ones that queued behind another
	// holder, TokenWaitTime the total simulated time spent queued — the
	// serialization cost that collapses as client counts grow (the
	// ext-scale experiment records it per machine size).
	TokenOps      int64
	TokenWaits    int64
	TokenWaitTime sim.Time

	// Fault-tolerance measurements (all zero while Config.Retry is the
	// zero policy).
	Retries       int64 // pieces re-issued after a failure or timeout
	Timeouts      int64 // attempts whose reply deadline fired first
	GiveUps       int64 // pieces that exhausted the retry budget
	DegradedReads int64 // read ops that succeeded only via >=1 retried piece
	LateReplies   int64 // replies that arrived after their attempt timed out
	LateBytes     int64 // read data delivered by late replies and discarded

	// Crash-failover measurements (all zero unless RetryPolicy.DownPoll
	// is armed and a node actually goes down).
	DownWaits      int64 // pieces parked awaiting a crashed node's restart
	Unavailable    int64 // pieces failed with ErrUnavailable (node dead past deadline)
	AbandonedBytes int64 // read bytes whose pieces succeeded inside ops that overall failed

	// Per-tenant splits of LateBytes and AbandonedBytes, armed by
	// SetTenants (nil otherwise). Together with the servers' per-tenant
	// served bytes they cross-foot the QoS conservation oracle: every
	// byte a server served for tenant t is delivered to t, late for t,
	// or abandoned by t.
	tenants         int
	tenantLate      []int64
	tenantAbandoned []int64
}

// Mount creates a PFS over the given I/O node servers.
func Mount(k *sim.Kernel, m *mesh.Mesh, servers []*ionode.Server, cfg Config) *FileSystem {
	if len(servers) == 0 {
		panic("pfs: mount needs at least one I/O node")
	}
	if cfg.StripeUnit <= 0 {
		panic("pfs: stripe unit must be positive")
	}
	return &FileSystem{
		k:       k,
		m:       m,
		servers: servers,
		cfg:     cfg,
		files:   make(map[string]*fileMeta),
		dirs:    map[string]bool{"/": true},
	}
}

// Config returns the mount configuration.
func (fsys *FileSystem) Config() Config { return fsys.cfg }

// SetTrace attaches (or with nil detaches) an event timeline covering
// read calls and stripe traffic on this mount.
func (fsys *FileSystem) SetTrace(l *trace.Log) { fsys.tr = l }

// Trace returns the attached timeline, if any.
func (fsys *FileSystem) Trace() *trace.Log { return fsys.tr }

// emit records a trace event when tracing is enabled.
func (fsys *FileSystem) emit(kind trace.Kind, node int, file string, off, n int64) {
	if fsys.tr != nil {
		fsys.tr.Add(trace.Event{T: fsys.k.Now(), Kind: kind, Node: node, File: file, Off: off, N: n})
	}
}

// Servers returns the mount's I/O node servers.
func (fsys *FileSystem) Servers() []*ionode.Server { return fsys.servers }

// SetTenants arms per-tenant late/abandoned byte accounting for n
// tenants (n <= 0 disarms it). Files are attributed by File.SetTenant;
// out-of-range ids fold onto tenant 0.
func (fsys *FileSystem) SetTenants(n int) {
	if n <= 0 {
		fsys.tenants, fsys.tenantLate, fsys.tenantAbandoned = 0, nil, nil
		return
	}
	fsys.tenants = n
	fsys.tenantLate = make([]int64, n)
	fsys.tenantAbandoned = make([]int64, n)
}

// clampTenant folds out-of-range tenant ids onto 0 (matching the
// ionode scheduler's clamp), and is only called with tenants armed.
func (fsys *FileSystem) clampTenant(t int) int {
	if t < 0 || t >= fsys.tenants {
		return 0
	}
	return t
}

// TenantLateBytes returns tenant t's share of LateBytes (0 when
// per-tenant accounting is off).
func (fsys *FileSystem) TenantLateBytes(t int) int64 {
	if t < 0 || t >= len(fsys.tenantLate) {
		return 0
	}
	return fsys.tenantLate[t]
}

// TenantAbandonedBytes returns tenant t's share of AbandonedBytes.
func (fsys *FileSystem) TenantAbandonedBytes(t int) int64 {
	if t < 0 || t >= len(fsys.tenantAbandoned) {
		return 0
	}
	return fsys.tenantAbandoned[t]
}

// Create allocates a PFS file of size bytes with the mount's default
// stripe attributes: unit size from Config, and a stripe group that is
// either the whole I/O partition (GroupWidth 0, the legacy layout) or
// the next GroupWidth-wide tile of it. Tiles advance with each created
// file and wrap around the partition, so a population of files spreads
// over every I/O node while each individual file's declustering stays
// O(GroupWidth).
func (fsys *FileSystem) Create(name string, size int64) error {
	n := len(fsys.servers)
	w := fsys.cfg.GroupWidth
	if w <= 0 || w > n {
		w = n
	}
	base := 0
	if w < n {
		base = (fsys.created * w) % n
	}
	group := make([]int, w)
	for i := range group {
		group[i] = (base + i) % n
	}
	return fsys.CreateStriped(name, size, fsys.cfg.StripeUnit, group)
}

// CreateStriped allocates a PFS file with explicit stripe attributes:
// unit size su and a stripe group given as indices into the mount's
// server list. This is how the paper's stripe-unit and stripe-group
// experiments vary layout per file.
func (fsys *FileSystem) CreateStriped(name string, size, su int64, group []int) error {
	name = clean(name)
	if _, ok := fsys.files[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	if fsys.dirs[name] {
		return fmt.Errorf("%w: %s is a directory", ErrExists, name)
	}
	if parent := path.Dir(name); !fsys.dirs[parent] {
		return fmt.Errorf("%w: %s", ErrNotExist, parent)
	}
	if size <= 0 {
		return fmt.Errorf("pfs: file size must be positive, got %d", size)
	}
	if su <= 0 {
		return fmt.Errorf("pfs: stripe unit must be positive, got %d", su)
	}
	if len(group) == 0 {
		return fmt.Errorf("pfs: empty stripe group")
	}
	for _, s := range group {
		if s < 0 || s >= len(fsys.servers) {
			return fmt.Errorf("pfs: stripe group member %d outside %d servers", s, len(fsys.servers))
		}
	}
	// Rotate the stripe base: like the real PFS, successive files start
	// their first stripe unit on successive group members, spreading
	// concurrently-read files across the I/O nodes.
	rot := fsys.created % len(group)
	fsys.created++
	rotated := append(append([]int(nil), group[rot:]...), group[:rot]...)
	meta := &fileMeta{
		name:  name,
		size:  size,
		su:    su,
		group: rotated,
		token: sim.NewMutex(fsys.k),
	}
	// Create the per-I/O-node stripe files, resolving each one's UFS
	// handle so the read path never repeats the name lookup. Members
	// assigned no stripe units keep a zero handle; declustering never
	// targets them.
	g := int64(len(rotated))
	units := (size + su - 1) / su
	lastLen := size - (units-1)*su
	meta.handles = make([]ufs.Handle, g)
	for j := int64(0); j < g; j++ {
		cnt := (units - j + g - 1) / g // units assigned to group member j
		if cnt <= 0 {
			continue
		}
		local := cnt * su
		if (units-1)%g == j {
			local = (cnt-1)*su + lastLen
		}
		srv := fsys.servers[rotated[j]]
		if err := srv.FS().Create(meta.localName(), local); err != nil {
			return fmt.Errorf("pfs: creating stripe on I/O node %d: %w", rotated[j], err)
		}
		if h, err := srv.FS().Lookup(meta.localName()); err == nil {
			meta.handles[j] = h
		}
	}
	fsys.files[name] = meta
	return nil
}

// Size reports a file's length.
func (fsys *FileSystem) Size(name string) (int64, error) {
	meta, ok := fsys.files[clean(name)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return meta.size, nil
}

// Open opens a PFS file from compute node node in the given mode.
// Collective modes (M_SYNC, M_RECORD, M_GLOBAL) require an OpenGroup
// shared by all participating nodes; the group assigns ranks in open
// order. Non-collective modes accept a nil group.
func (fsys *FileSystem) Open(name string, node int, mode Mode, group *OpenGroup) (*File, error) {
	meta, ok := fsys.files[clean(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if !mode.Valid() {
		return nil, fmt.Errorf("pfs: invalid mode %d", int(mode))
	}
	if mode.Collective() && group == nil {
		return nil, fmt.Errorf("%w (%v)", ErrNeedGroup, mode)
	}
	f := &File{fsys: fsys, meta: meta, node: node, mode: mode, group: group, deliveryHash: DeliveryHashSeed}
	if group != nil {
		f.rank = group.join(f)
	}
	meta.opens++
	return f, nil
}

// piece is one I/O node's share of a declustered request.
type piece struct {
	server   int // index into the file's stripe group
	localOff int64
	n        int64
}

// decluster splits the global byte range [off, off+n) of a file striped
// with unit su over g group members into per-member pieces, merging the
// pieces each member receives into contiguous local runs (for a
// contiguous global range each member's share is one contiguous local
// range).
func decluster(off, n, su int64, g int) []piece {
	return declusterAppend(nil, off, n, su, g)
}

// declusterInto is decluster into the mount's scratch buffer. The buffer
// is valid until the next stripe operation on this mount; stripeIOInto
// consumes it before anything can re-enter. Unlike the pure decluster it
// merges through the generation-stamped per-server index, so the probe
// for "this member's most recent piece" is O(1) per stripe unit rather
// than a backward scan — the scan is quadratic in the stripe width for
// requests spanning a wide group, which is exactly the large-machine
// regime. The merge semantics are identical to declusterAppend
// (TestDeclusterIntoMatchesReference pins that).
func (fsys *FileSystem) declusterInto(off, n, su int64, g int) []piece {
	if len(fsys.lastPiece) < g {
		fsys.lastPiece = make([]int32, g)
		fsys.lastPieceGen = make([]uint32, g)
		fsys.declusterGen = 0
	}
	fsys.declusterGen++
	if fsys.declusterGen == 0 { // uint32 wrap: clear stale stamps
		for i := range fsys.lastPieceGen {
			fsys.lastPieceGen[i] = 0
		}
		fsys.declusterGen = 1
	}
	gen := fsys.declusterGen
	last, lastGen := fsys.lastPiece, fsys.lastPieceGen
	out := fsys.pieceBuf[:0]
	end := off + n
	for cur := off; cur < end; {
		u := cur / su
		within := cur % su
		take := su - within
		if rem := end - cur; rem < take {
			take = rem
		}
		srv := int(u % int64(g))
		local := (u/int64(g))*su + within
		if lastGen[srv] == gen {
			if i := last[srv]; out[i].localOff+out[i].n == local {
				out[i].n += take
				cur += take
				continue
			}
		}
		last[srv] = int32(len(out))
		lastGen[srv] = gen
		out = append(out, piece{server: srv, localOff: local, n: take})
		cur += take
	}
	fsys.pieceBuf = out
	return out
}

func declusterAppend(out []piece, off, n, su int64, g int) []piece {
	end := off + n
	for cur := off; cur < end; {
		u := cur / su
		within := cur % su
		take := su - within
		if rem := end - cur; rem < take {
			take = rem
		}
		srv := int(u % int64(g))
		local := (u/int64(g))*su + within
		// Merge with this member's most recent piece when locally
		// contiguous (consecutive units land g units apart globally but
		// adjacent locally).
		merged := false
		for i := len(out) - 1; i >= 0; i-- {
			if out[i].server == srv {
				if out[i].localOff+out[i].n == local {
					out[i].n += take
					merged = true
				}
				break
			}
		}
		if !merged {
			out = append(out, piece{server: srv, localOff: local, n: take})
		}
		cur += take
	}
	return out
}

// getSig borrows a signal for a blocking stripe operation. The borrower
// must hold it until after it fires (a blocked Wait reads the error after
// the waking event), then return it with putSig.
func (fsys *FileSystem) getSig() *sim.Signal {
	if n := len(fsys.sigFree); n > 0 {
		s := fsys.sigFree[n-1]
		fsys.sigFree[n-1] = nil
		fsys.sigFree = fsys.sigFree[:n-1]
		s.Reset(fsys.k)
		return s
	}
	return sim.NewSignal(fsys.k)
}

func (fsys *FileSystem) putSig(s *sim.Signal) {
	fsys.sigFree = append(fsys.sigFree, s)
}

// stripeOp is the pooled bookkeeping of one stripe operation: the
// countdown over declustered pieces, the first error, and the
// degraded/abandoned accounting the legacy stripeIO kept in closures.
// The op returns to the free list the instant the countdown reaches
// zero; settled late attempts never touch their op again.
type stripeOp struct {
	fsys      *FileSystem
	remaining int
	tenant    int // owning tenant (0 outside QoS runs)
	firstErr  error
	recovered bool
	okBytes   int64 // read bytes of pieces that individually succeeded
	write     bool
	done      *sim.Signal // caller-owned; fired, never recycled here
}

func (fsys *FileSystem) getStripeOp() *stripeOp {
	if n := len(fsys.stripeFree); n > 0 {
		op := fsys.stripeFree[n-1]
		fsys.stripeFree[n-1] = nil
		fsys.stripeFree = fsys.stripeFree[:n-1]
		return op
	}
	return &stripeOp{fsys: fsys}
}

func (fsys *FileSystem) putStripeOp(op *stripeOp) {
	op.remaining = 0
	op.tenant = 0
	op.firstErr = nil
	op.recovered = false
	op.okBytes = 0
	op.write = false
	op.done = nil
	fsys.stripeFree = append(fsys.stripeFree, op)
}

// finishOne retires one piece of the operation. The last piece settles
// the whole op: degraded/abandoned accounting, then the caller's signal.
func (op *stripeOp) finishOne(err error, retried bool) {
	if err != nil && op.firstErr == nil {
		op.firstErr = err
	}
	op.recovered = op.recovered || retried
	op.remaining--
	if op.remaining > 0 {
		return
	}
	fsys := op.fsys
	if op.firstErr == nil && op.recovered && !op.write {
		fsys.DegradedReads++
	}
	if op.firstErr != nil && !op.write {
		// The op fails as a whole, but some pieces were served: the
		// server paid for those bytes, the application never sees them.
		// Account them so no byte goes missing.
		fsys.AbandonedBytes += op.okBytes
		if fsys.tenants > 0 {
			fsys.tenantAbandoned[op.tenant] += op.okBytes
		}
	}
	done, firstErr := op.done, op.firstErr
	fsys.putStripeOp(op)
	done.Fire(firstErr)
}

// stripeIOInto declusters [off, off+n) and issues the per-I/O-node
// requests over the mesh, firing done when every piece has been served
// and delivered back to (or acknowledged for) compute node node. Each
// piece rides the retry machinery (sendAttempt); with the zero
// RetryPolicy that machinery degenerates to the plain one-shot issue.
// tenant attributes the pieces for QoS accounting and the server-side
// fair scheduler (0 outside QoS runs). The caller owns done (typically
// a pooled signal) and must keep it until it fires.
func (fsys *FileSystem) stripeIOInto(done *sim.Signal, node, tenant int, meta *fileMeta, off, n int64, write bool) {
	if fsys.tenants > 0 {
		tenant = fsys.clampTenant(tenant)
	}
	pieces := fsys.declusterInto(off, n, meta.su, len(meta.group))
	fsys.StripeRequests += int64(len(pieces))
	op := fsys.getStripeOp()
	op.remaining = len(pieces)
	op.tenant = tenant
	op.write = write
	op.done = done
	first := fsys.k.Now()
	for i := range pieces {
		at := fsys.getAttempt()
		at.op, at.meta, at.node, at.pc, at.write = op, meta, node, pieces[i], write
		at.tenant = tenant
		at.attempt, at.first, at.settled = 0, first, false
		fsys.sendAttempt(at)
	}
}
