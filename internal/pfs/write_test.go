package pfs

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
)

func TestFileWrite(t *testing.T) {
	r := newRig(t, 1, 2)
	if err := r.fsys.Create("f", 512<<10); err != nil {
		t.Fatal(err)
	}
	r.k.Go("writer", func(p *sim.Proc) {
		f, _ := r.fsys.Open("f", 0, MAsync, nil)
		if err := f.Write(p, 0, 128<<10); err != nil {
			t.Error(err)
		}
		if err := f.Write(p, 512<<10, 1); err == nil {
			t.Error("write past EOF accepted")
		}
		if err := f.Write(p, -1, 10); err == nil {
			t.Error("negative offset accepted")
		}
		f.Close()
		if err := f.Write(p, 0, 10); !errors.Is(err, ErrClosed) {
			t.Errorf("write after close: %v", err)
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIWriteAt(t *testing.T) {
	r := newRig(t, 1, 2)
	if err := r.fsys.Create("f", 512<<10); err != nil {
		t.Fatal(err)
	}
	r.k.Go("writer", func(p *sim.Proc) {
		f, _ := r.fsys.Open("f", 0, MAsync, nil)
		a := f.IWriteAt(0, 128<<10)
		if !a.Write {
			t.Error("IWriteAt request not marked as write")
		}
		if err := a.Done.Wait(p); err != nil {
			t.Error(err)
		}
		bad := f.IWriteAt(512<<10, 64<<10)
		if err := bad.Done.Wait(p); err == nil {
			t.Error("out-of-range async write reported success")
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	var served int64
	for _, srv := range r.fsys.Servers() {
		served += srv.BytesServed
	}
	if served != 128<<10 {
		t.Fatalf("I/O nodes absorbed %d write bytes, want 128KiB", served)
	}
}

func TestGlobalModeSizeMismatch(t *testing.T) {
	r := newRig(t, 2, 2)
	if err := r.fsys.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	group := NewOpenGroup(r.k, 2)
	sawErr := 0
	for i := 0; i < 2; i++ {
		i := i
		node := r.compute[i]
		r.k.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
			f, _ := r.fsys.Open("f", node, MGlobal, group)
			size := int64(64 << 10)
			if i == 1 {
				size = 128 << 10
			}
			if _, err := f.Read(p, size); errors.Is(err, ErrBadSize) {
				sawErr++
			}
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if sawErr != 2 {
		t.Fatalf("%d parties saw ErrBadSize, want 2 (M_GLOBAL requires uniform sizes)", sawErr)
	}
}

func TestHintAtValidation(t *testing.T) {
	r := newRig(t, 1, 2)
	if err := r.fsys.Create("f", 256<<10); err != nil {
		t.Fatal(err)
	}
	f, err := r.fsys.Open("f", 0, MAsync, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.HintAt(256<<10, 1); err == nil {
		t.Fatal("out-of-range hint accepted")
	}
	if err := f.HintAt(0, 64<<10); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.HintAt(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("hint after close: %v", err)
	}
}
