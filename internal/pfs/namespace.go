package pfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
)

// ErrNotEmpty reports an attempt to remove a non-empty directory.
var ErrNotEmpty = errors.New("pfs: directory not empty")

// ErrBusy reports an attempt to remove an open file.
var ErrBusy = errors.New("pfs: file is open")

// clean canonicalizes a PFS path: absolute, no trailing slash (except
// root), "." and ".." resolved.
func clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// Info describes a namespace entry.
type Info struct {
	Path        string
	IsDir       bool
	Size        int64
	StripeUnit  int64
	StripeGroup int
}

// Mkdir creates a directory. The parent must exist and the name must be
// free.
func (fsys *FileSystem) Mkdir(p string) error {
	p = clean(p)
	if p == "/" {
		return fmt.Errorf("%w: /", ErrExists)
	}
	if fsys.dirs[p] {
		return fmt.Errorf("%w: %s", ErrExists, p)
	}
	if _, ok := fsys.files[p]; ok {
		return fmt.Errorf("%w: %s", ErrExists, p)
	}
	if parent := path.Dir(p); !fsys.dirs[parent] {
		return fmt.Errorf("%w: %s", ErrNotExist, parent)
	}
	fsys.dirs[p] = true
	return nil
}

// Stat describes a file or directory.
func (fsys *FileSystem) Stat(p string) (Info, error) {
	p = clean(p)
	if fsys.dirs[p] {
		return Info{Path: p, IsDir: true}, nil
	}
	meta, ok := fsys.files[p]
	if !ok {
		return Info{}, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	return Info{
		Path:        p,
		Size:        meta.size,
		StripeUnit:  meta.su,
		StripeGroup: len(meta.group),
	}, nil
}

// Remove deletes a file (reclaiming its stripe space on every I/O node)
// or an empty directory. Removing an open file fails with ErrBusy, as in
// the PFS, whose server refused to unlink busy vnodes.
func (fsys *FileSystem) Remove(p string) error {
	p = clean(p)
	if fsys.dirs[p] {
		if p == "/" {
			return fmt.Errorf("pfs: cannot remove /")
		}
		entries, err := fsys.List(p)
		if err != nil {
			return err
		}
		if len(entries) > 0 {
			return fmt.Errorf("%w: %s", ErrNotEmpty, p)
		}
		delete(fsys.dirs, p)
		return nil
	}
	meta, ok := fsys.files[p]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if meta.opens > 0 {
		return fmt.Errorf("%w: %s (%d opens)", ErrBusy, p, meta.opens)
	}
	for _, srvIdx := range meta.group {
		srv := fsys.servers[srvIdx]
		// Small files may not have a stripe on every member.
		if _, err := srv.FS().Size(meta.localName()); err == nil {
			if err := srv.FS().Remove(meta.localName()); err != nil {
				return fmt.Errorf("pfs: removing stripe on I/O node %d: %w", srvIdx, err)
			}
		}
	}
	delete(fsys.files, p)
	return nil
}

// List returns the names (not full paths) of the entries directly inside
// directory p, sorted.
func (fsys *FileSystem) List(p string) ([]string, error) {
	p = clean(p)
	if !fsys.dirs[p] {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	var out []string
	contains := func(full string) (string, bool) {
		if path.Dir(full) != p {
			return "", false
		}
		return path.Base(full), true
	}
	for full := range fsys.files {
		if name, ok := contains(full); ok {
			out = append(out, name)
		}
	}
	for full := range fsys.dirs {
		if full == "/" {
			continue
		}
		if name, ok := contains(full); ok {
			out = append(out, name+"/")
		}
	}
	sort.Strings(out)
	return out, nil
}
