package pfs

import (
	"io"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestTraceRecordsReadsAndStripes(t *testing.T) {
	r := newRig(t, 1, 4)
	tl := trace.NewLog(1024)
	r.fsys.SetTrace(tl)
	if r.fsys.Trace() != tl {
		t.Fatal("Trace accessor broken")
	}
	if err := r.fsys.Create("f", 512<<10); err != nil {
		t.Fatal(err)
	}
	r.k.Go("reader", func(p *sim.Proc) {
		f, _ := r.fsys.Open("f", 0, MAsync, nil)
		for {
			if _, err := f.Read(p, 128<<10); err == io.EOF {
				return
			} else if err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 reads of 128 KB, and the EOF probe also records a start/end pair.
	if got := tl.Count(trace.ReadStart); got != 5 {
		t.Fatalf("ReadStart = %d, want 5", got)
	}
	if tl.Count(trace.ReadEnd) != tl.Count(trace.ReadStart) {
		t.Fatal("unbalanced read start/end")
	}
	// Each 128 KB read declusters into 2 pieces: 8 sends, 8 replies.
	if got := tl.Count(trace.StripeSend); got != 8 {
		t.Fatalf("StripeSend = %d, want 8", got)
	}
	if tl.Count(trace.StripeReply) != 8 {
		t.Fatalf("StripeReply = %d, want 8", tl.Count(trace.StripeReply))
	}
	// Timeline must be in nondecreasing time order.
	evs := tl.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatal("trace not time-ordered")
		}
	}
}

func TestNoTraceNoOverhead(t *testing.T) {
	// Without a log attached, emit must be a no-op (nil check only).
	r := newRig(t, 1, 2)
	if err := r.fsys.Create("f", 128<<10); err != nil {
		t.Fatal(err)
	}
	r.k.Go("reader", func(p *sim.Proc) {
		f, _ := r.fsys.Open("f", 0, MAsync, nil)
		if _, err := f.Read(p, 64<<10); err != nil {
			t.Error(err)
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.fsys.Trace() != nil {
		t.Fatal("trace attached unexpectedly")
	}
}
