package pfs

import (
	"errors"
	"io"
	"testing"

	"repro/internal/sim"
)

func TestMkdirStatList(t *testing.T) {
	r := newRig(t, 1, 2)
	if err := r.fsys.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	if err := r.fsys.Mkdir("/data"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	if err := r.fsys.Mkdir("/no/parent"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("mkdir without parent: %v", err)
	}
	if err := r.fsys.Mkdir("/data/run1"); err != nil {
		t.Fatal(err)
	}
	if err := r.fsys.CreateStriped("/data/run1/matrix", 1<<20, 64<<10, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.fsys.Create("/data/notes", 64<<10); err != nil {
		t.Fatal(err)
	}

	info, err := r.fsys.Stat("/data/run1/matrix")
	if err != nil {
		t.Fatal(err)
	}
	if info.IsDir || info.Size != 1<<20 || info.StripeUnit != 64<<10 || info.StripeGroup != 2 {
		t.Fatalf("Stat = %+v", info)
	}
	if info, err := r.fsys.Stat("/data"); err != nil || !info.IsDir {
		t.Fatalf("Stat dir = %+v, %v", info, err)
	}
	if _, err := r.fsys.Stat("/ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Stat missing: %v", err)
	}

	entries, err := r.fsys.List("/data")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0] != "notes" || entries[1] != "run1/" {
		t.Fatalf("List(/data) = %v", entries)
	}
	if _, err := r.fsys.List("/data/notes"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("List of a file: %v", err)
	}
	// Files created under the legacy bare-name convention live in root.
	root, err := r.fsys.List("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != 1 || root[0] != "data/" {
		t.Fatalf("List(/) = %v", root)
	}
}

func TestRemoveSemantics(t *testing.T) {
	r := newRig(t, 1, 2)
	if err := r.fsys.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := r.fsys.Create("/d/f", 256<<10); err != nil {
		t.Fatal(err)
	}
	// Non-empty directory refuses.
	if err := r.fsys.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty dir: %v", err)
	}
	// Open file refuses.
	f, err := r.fsys.Open("/d/f", 0, MAsync, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.fsys.Remove("/d/f"); !errors.Is(err, ErrBusy) {
		t.Fatalf("remove open file: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Now both go, in order.
	if err := r.fsys.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := r.fsys.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fsys.Stat("/d"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("removed dir still stats: %v", err)
	}
	if err := r.fsys.Remove("/"); err == nil {
		t.Fatal("removing / succeeded")
	}
	if err := r.fsys.Remove("/ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("remove missing: %v", err)
	}
}

// TestRemoveReclaimsSpace fills most of the volume, removes, and fills
// again: the second allocation must succeed only because Remove returned
// the blocks.
func TestRemoveReclaimsSpace(t *testing.T) {
	r := newRig(t, 1, 1) // one I/O node: its UFS bounds the volume
	cap := r.fsys.Servers()[0].FS()
	_ = cap
	big := int64(6) << 30 // ~6 GB of the ~7 GB volume... size depends on geometry
	// Find a size that fits once but not twice.
	size := big
	for r.fsys.CreateStriped("probe", size, 64<<10, []int{0}) != nil {
		size /= 2
	}
	if err := r.fsys.Remove("probe"); err != nil {
		t.Fatal(err)
	}
	// Without reclamation this second pair could not fit.
	if err := r.fsys.CreateStriped("a", size, 64<<10, []int{0}); err != nil {
		t.Fatalf("recreate after remove: %v", err)
	}
	if err := r.fsys.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.fsys.CreateStriped("b", size, 64<<10, []int{0}); err != nil {
		t.Fatalf("third create after removals: %v", err)
	}
}

// TestRecreateAfterRemoveIsReadable: the full cycle create-write-remove-
// recreate-read, exercising stripe file removal on the I/O nodes.
func TestRecreateAfterRemoveIsReadable(t *testing.T) {
	r := newRig(t, 1, 4)
	if err := r.fsys.Create("f", 512<<10); err != nil {
		t.Fatal(err)
	}
	if err := r.fsys.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if err := r.fsys.Create("f", 1<<20); err != nil {
		t.Fatalf("recreate: %v", err)
	}
	var total int64
	r.k.Go("reader", func(p *sim.Proc) {
		f, err := r.fsys.Open("f", 0, MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			n, err := f.Read(p, 256<<10)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			total += n
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 1<<20 {
		t.Fatalf("read %d after recreate, want 1MiB", total)
	}
}
