package pfs

import (
	"fmt"

	"repro/internal/sim"
)

// OpenGroup coordinates the compute nodes that share a collective open
// (M_SYNC, M_RECORD, M_GLOBAL). It assigns ranks in open order, carries
// the per-operation barrier, and runs the round protocol that the Paragon
// OS used to set the individual file pointers before a collective
// operation: every party registers its request size, all synchronize, and
// offsets come out as the rank prefix-sum over the shared pointer (or the
// shared pointer itself for M_GLOBAL).
type OpenGroup struct {
	k       *sim.Kernel
	parties int
	barrier *sim.Barrier
	nextRnk int
	members []*File

	// Round state. The simulator runs one process at a time, so plain
	// fields suffice.
	sizes    []int64
	computed bool
	base     int64
	prefix   []int64
	total    int64
	uniform  bool
	pickedUp int
}

// NewOpenGroup creates a group for a known number of parties.
func NewOpenGroup(k *sim.Kernel, parties int) *OpenGroup {
	if parties <= 0 {
		panic("pfs: open group needs at least one party")
	}
	return &OpenGroup{
		k:       k,
		parties: parties,
		barrier: sim.NewBarrier(k, parties),
		sizes:   make([]int64, parties),
		prefix:  make([]int64, parties),
	}
}

// Parties reports the group size.
func (g *OpenGroup) Parties() int { return g.parties }

// join registers an open instance and returns its rank.
func (g *OpenGroup) join(f *File) int {
	if g.nextRnk >= g.parties {
		panic(fmt.Sprintf("pfs: open group of %d parties joined %d times", g.parties, g.nextRnk+1))
	}
	r := g.nextRnk
	g.nextRnk++
	g.members = append(g.members, f)
	return r
}

// round runs one collective round for the calling party: register size,
// synchronize, and collect the assigned offset. For M_GLOBAL every party
// receives the same offset and the shared pointer advances by one request;
// otherwise offsets are the rank prefix-sum and the pointer advances by
// the round total. uniform reports whether all parties presented equal
// sizes (a requirement the caller enforces for M_RECORD and M_GLOBAL).
func (g *OpenGroup) round(p *sim.Proc, meta *fileMeta, rank int, size int64, global bool) (off int64, uniform bool) {
	g.sizes[rank] = size
	g.barrier.Wait(p)
	if !g.computed {
		g.base = meta.sharedOff
		g.total = 0
		g.uniform = true
		for i, s := range g.sizes {
			g.prefix[i] = g.total
			g.total += s
			if s != g.sizes[0] {
				g.uniform = false
			}
		}
		if global {
			meta.sharedOff = g.base + g.sizes[0]
		} else {
			meta.sharedOff = g.base + g.total
		}
		g.computed = true
	}
	if global {
		off = g.base
	} else {
		off = g.base + g.prefix[rank]
	}
	uniform = g.uniform
	g.pickedUp++
	if g.pickedUp == g.parties {
		g.pickedUp = 0
		g.computed = false
	}
	return off, uniform
}
