package pfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/ionode"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// rig is a miniature Paragon: compute nodes on row 0, I/O nodes on row 1.
type rig struct {
	k       *sim.Kernel
	m       *mesh.Mesh
	fsys    *FileSystem
	compute []int // mesh addresses of compute nodes
}

func newRig(t testing.TB, computeNodes, ioNodes int) *rig {
	t.Helper()
	k := sim.NewKernel()
	// Near-square mesh: compute nodes first, I/O nodes after.
	total := computeNodes + ioNodes
	w := 1
	for w*w < total {
		w++
	}
	h := (total + w - 1) / w
	m := mesh.New(k, mesh.Paragon(w, h))
	var servers []*ionode.Server
	for i := 0; i < ioNodes; i++ {
		a := disk.NewArray(k, fmt.Sprintf("raid%d", i), 4, disk.Seagate94601(), disk.SCAN, 500*sim.Microsecond)
		cfg := ufs.DefaultConfig()
		cfg.Fragmentation = 0
		cfg.Seed = int64(i + 1)
		servers = append(servers, ionode.New(k, m, computeNodes+i, ufs.New(k, a, cfg), 300*sim.Microsecond))
	}
	fsys := Mount(k, m, servers, DefaultConfig())
	r := &rig{k: k, m: m, fsys: fsys}
	for i := 0; i < computeNodes; i++ {
		r.compute = append(r.compute, i)
	}
	return r
}

func TestDecluster(t *testing.T) {
	const su = 64 << 10
	cases := []struct {
		name   string
		off, n int64
		g      int
		want   []piece
	}{
		{"one unit", 0, su, 8, []piece{{0, 0, su}}},
		{"second unit", su, su, 8, []piece{{1, 0, su}}},
		{"wraps group", 8 * su, su, 8, []piece{{0, su, su}}},
		{"two units two servers", 0, 2 * su, 8, []piece{{0, 0, su}, {1, 0, su}}},
		{"sub-unit", 1024, 512, 8, []piece{{0, 1024, 512}}},
		{"spans boundary", su - 512, 1024, 8, []piece{{0, su - 512, 512}, {1, 0, 512}}},
		{"single server group", 0, 3 * su, 1, []piece{{0, 0, 3 * su}}},
		{"full round merges", 0, 16 * su, 8, []piece{
			{0, 0, 2 * su}, {1, 0, 2 * su}, {2, 0, 2 * su}, {3, 0, 2 * su},
			{4, 0, 2 * su}, {5, 0, 2 * su}, {6, 0, 2 * su}, {7, 0, 2 * su},
		}},
	}
	for _, c := range cases {
		got := decluster(c.off, c.n, su, c.g)
		if len(got) != len(c.want) {
			t.Errorf("%s: %d pieces, want %d (%v)", c.name, len(got), len(c.want), got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: piece %d = %+v, want %+v", c.name, i, got[i], c.want[i])
			}
		}
	}
}

// Property: declustered pieces cover exactly n bytes, land on valid
// servers, and each server gets at most one piece for a contiguous range.
func TestDeclusterProperties(t *testing.T) {
	if err := quick.Check(func(offRaw, nRaw uint32, suExp, gRaw uint8) bool {
		su := int64(1) << (10 + suExp%8) // 1 KB .. 128 KB
		g := int(gRaw%8) + 1
		off := int64(offRaw % (1 << 24))
		n := int64(nRaw%(1<<22)) + 1
		pieces := decluster(off, n, su, g)
		var total int64
		seen := make(map[int]bool)
		for _, pc := range pieces {
			if pc.server < 0 || pc.server >= g || pc.n <= 0 || pc.localOff < 0 {
				return false
			}
			if seen[pc.server] {
				return false // contiguous range must merge per server
			}
			seen[pc.server] = true
			total += pc.n
		}
		return total == n
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The indexed scratch-buffer decluster must produce byte-identical
// pieces to the naive reference across offsets, sizes, units, and group
// widths — including the wide-group regime the index exists for.
func TestDeclusterIntoMatchesReference(t *testing.T) {
	r := newRig(t, 1, 1)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		su := int64(1) << (10 + rng.Intn(8))
		g := 1 + rng.Intn(256)
		off := rng.Int63n(1 << 30)
		n := 1 + rng.Int63n(int64(g)*su*3)
		want := decluster(off, n, su, g)
		got := r.fsys.declusterInto(off, n, su, g)
		if len(got) != len(want) {
			t.Fatalf("case %d (off=%d n=%d su=%d g=%d): %d pieces, want %d",
				i, off, n, su, g, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("case %d (off=%d n=%d su=%d g=%d): piece %d = %+v, want %+v",
					i, off, n, su, g, j, got[j], want[j])
			}
		}
	}
}

// Create with GroupWidth set tiles successive files over successive
// GroupWidth-wide windows of the I/O partition, wrapping around.
func TestCreateGroupWidthTiling(t *testing.T) {
	r := newRig(t, 2, 6)
	r.fsys.cfg.GroupWidth = 4
	for i := 0; i < 4; i++ {
		if err := r.fsys.Create(fmt.Sprintf("f%d", i), 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	// Tile i covers servers {(4i+j) % 6}; CreateStriped then applies the
	// legacy stripe-base rotation (created % width) within the tile.
	want := [][]int{
		{0, 1, 2, 3},
		{5, 0, 1, 4},
		{4, 5, 2, 3},
		{3, 0, 1, 2},
	}
	for i, w := range want {
		meta := r.fsys.files[clean(fmt.Sprintf("f%d", i))]
		if meta == nil {
			t.Fatalf("f%d missing", i)
		}
		if len(meta.group) != len(w) {
			t.Fatalf("f%d group %v, want %v", i, meta.group, w)
		}
		for j := range w {
			if meta.group[j] != w[j] {
				t.Fatalf("f%d group %v, want %v", i, meta.group, w)
			}
		}
	}
}

func TestCreateValidation(t *testing.T) {
	r := newRig(t, 2, 4)
	if err := r.fsys.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := r.fsys.Create("f", 1<<20); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := r.fsys.Create("bad", 0); err == nil {
		t.Fatal("zero-size create succeeded")
	}
	if err := r.fsys.CreateStriped("bad2", 1<<20, 0, []int{0}); err == nil {
		t.Fatal("zero stripe unit succeeded")
	}
	if err := r.fsys.CreateStriped("bad3", 1<<20, 64<<10, []int{9}); err == nil {
		t.Fatal("out-of-range group member succeeded")
	}
	if err := r.fsys.CreateStriped("bad4", 1<<20, 64<<10, nil); err == nil {
		t.Fatal("empty group succeeded")
	}
	if sz, err := r.fsys.Size("f"); err != nil || sz != 1<<20 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	if _, err := r.fsys.Size("ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Size(ghost): %v", err)
	}
}

func TestStripeFilesBalanced(t *testing.T) {
	r := newRig(t, 1, 4)
	// 16 units of 64 KB over 4 I/O nodes: 4 units (256 KB) each.
	if err := r.fsys.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	for i, srv := range r.fsys.Servers() {
		sz, err := srv.FS().Size("pfs:/f")
		if err != nil || sz != 256<<10 {
			t.Fatalf("I/O node %d stripe size = %d, %v; want 256KiB", i, sz, err)
		}
	}
	// Uneven: 5 units over 4 nodes. This is the second file created, so
	// the stripe base rotates to I/O node 1, which receives units 0 and 4.
	if err := r.fsys.Create("g", 5*64<<10); err != nil {
		t.Fatal(err)
	}
	want := []int64{64 << 10, 2 * 64 << 10, 64 << 10, 64 << 10}
	for i, srv := range r.fsys.Servers() {
		sz, _ := srv.FS().Size("pfs:/g")
		if sz != want[i] {
			t.Fatalf("I/O node %d stripe of g = %d, want %d", i, sz, want[i])
		}
	}
}

func TestOpenValidation(t *testing.T) {
	r := newRig(t, 2, 2)
	if err := r.fsys.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fsys.Open("ghost", 0, MAsync, nil); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	if _, err := r.fsys.Open("f", 0, Mode(9), nil); err == nil {
		t.Fatal("invalid mode accepted")
	}
	if _, err := r.fsys.Open("f", 0, MRecord, nil); !errors.Is(err, ErrNeedGroup) {
		t.Fatalf("collective без group: %v", err)
	}
	f, err := r.fsys.Open("f", 0, MAsync, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestAsyncSequentialRead(t *testing.T) {
	r := newRig(t, 1, 4)
	const size = 1 << 20
	if err := r.fsys.Create("f", size); err != nil {
		t.Fatal(err)
	}
	var total int64
	var calls int
	r.k.Go("reader", func(p *sim.Proc) {
		f, err := r.fsys.Open("f", 0, MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		defer f.Close()
		for {
			n, err := f.Read(p, 256<<10)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
			total += n
			calls++
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if total != size || calls != 4 {
		t.Fatalf("read %d bytes in %d calls, want %d in 4", total, calls, size)
	}
	// Everything came off the I/O nodes exactly once.
	var served int64
	for _, srv := range r.fsys.Servers() {
		served += srv.BytesServed
	}
	if served != size {
		t.Fatalf("I/O nodes served %d bytes, want %d", served, size)
	}
}

func TestSeek(t *testing.T) {
	r := newRig(t, 1, 2)
	if err := r.fsys.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	r.k.Go("reader", func(p *sim.Proc) {
		f, _ := r.fsys.Open("f", 0, MAsync, nil)
		if err := f.SeekTo(-1); err == nil {
			t.Error("negative seek succeeded")
		}
		if err := f.SeekTo(2 << 20); err == nil {
			t.Error("seek past EOF succeeded")
		}
		if err := f.SeekTo(512 << 10); err != nil {
			t.Error(err)
		}
		n, err := f.Read(p, 1<<20) // clamped to remaining half
		if err != nil || n != 512<<10 {
			t.Errorf("read after seek = %d, %v", n, err)
		}
		if _, err := f.Read(p, 1); err != io.EOF {
			t.Errorf("read at EOF = %v, want io.EOF", err)
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}

// runCollective drives nodes parties through a whole-file read in the
// given mode and returns total bytes read and the finish time.
func runCollective(t *testing.T, mode Mode, parties int, reqSize, fileSize int64) (int64, sim.Time) {
	t.Helper()
	r := newRig(t, parties, 8)
	if err := r.fsys.Create("f", fileSize); err != nil {
		t.Fatal(err)
	}
	var group *OpenGroup
	if mode.Collective() {
		group = NewOpenGroup(r.k, parties)
	}
	var total int64
	for i := 0; i < parties; i++ {
		i := i
		node := r.compute[i]
		r.k.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
			f, err := r.fsys.Open("f", node, mode, group)
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			// With individual pointers there is no implicit partitioning:
			// the benchmark walks the same interleaved record pattern as
			// M_RECORD, with the application managing its own pointer.
			if mode == MAsync {
				for round := int64(0); ; round++ {
					off := (round*int64(parties) + int64(i)) * reqSize
					if off >= fileSize {
						return
					}
					if err := f.SeekTo(off); err != nil {
						t.Error(err)
						return
					}
					n, err := f.Read(p, reqSize)
					if err == io.EOF {
						return
					}
					if err != nil {
						t.Error(err)
						return
					}
					total += n
				}
			}
			for {
				n, err := f.Read(p, reqSize)
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				total += n
			}
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	return total, r.k.Now()
}

func TestRecordModeCoversFile(t *testing.T) {
	total, _ := runCollective(t, MRecord, 4, 64<<10, 1<<20)
	if total != 1<<20 {
		t.Fatalf("M_RECORD read %d bytes, want %d (disjoint full coverage)", total, 1<<20)
	}
}

func TestSyncModeCoversFile(t *testing.T) {
	total, _ := runCollective(t, MSync, 4, 64<<10, 1<<20)
	if total != 1<<20 {
		t.Fatalf("M_SYNC read %d bytes, want %d", total, 1<<20)
	}
}

func TestUnixAndLogModesCoverFile(t *testing.T) {
	for _, mode := range []Mode{MUnix, MLog} {
		total, _ := runCollective(t, mode, 4, 64<<10, 1<<20)
		if total != 1<<20 {
			t.Fatalf("%v read %d bytes, want %d", mode, total, 1<<20)
		}
	}
}

func TestGlobalModeBroadcasts(t *testing.T) {
	// 4 parties × whole file: each read call returns the same region, so
	// total bytes = parties × file size, but the I/O nodes serve the file
	// only once.
	parties := 4
	fileSize := int64(512 << 10)
	r := newRig(t, parties, 8)
	if err := r.fsys.Create("f", fileSize); err != nil {
		t.Fatal(err)
	}
	group := NewOpenGroup(r.k, parties)
	var total int64
	for i := 0; i < parties; i++ {
		node := r.compute[i]
		r.k.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
			f, err := r.fsys.Open("f", node, MGlobal, group)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				n, err := f.Read(p, 64<<10)
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				total += n
			}
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if total != int64(parties)*fileSize {
		t.Fatalf("M_GLOBAL total = %d, want %d", total, int64(parties)*fileSize)
	}
	var served int64
	for _, srv := range r.fsys.Servers() {
		served += srv.BytesServed
	}
	if served != fileSize {
		t.Fatalf("I/O nodes served %d, want %d (data read once, then broadcast)", served, fileSize)
	}
}

func TestModePerformanceOrdering(t *testing.T) {
	// The Figure 2 shape: M_UNIX slowest, M_LOG faster, M_RECORD and
	// M_ASYNC fastest.
	const parties, req, size = 4, 64 << 10, 1 << 20
	times := make(map[Mode]sim.Time)
	for _, mode := range []Mode{MUnix, MLog, MSync, MRecord, MAsync} {
		_, elapsed := runCollective(t, mode, parties, req, size)
		times[mode] = elapsed
	}
	if !(times[MUnix] > times[MLog]) {
		t.Errorf("M_UNIX (%v) not slower than M_LOG (%v)", times[MUnix], times[MLog])
	}
	if !(times[MLog] > times[MRecord]) {
		t.Errorf("M_LOG (%v) not slower than M_RECORD (%v)", times[MLog], times[MRecord])
	}
	if !(times[MSync] > times[MRecord]) {
		t.Errorf("M_SYNC (%v) not slower than M_RECORD (%v)", times[MSync], times[MRecord])
	}
	if !(times[MRecord] >= times[MAsync]) {
		t.Errorf("M_RECORD (%v) faster than M_ASYNC (%v)", times[MRecord], times[MAsync])
	}
}

func TestRecordModeRequiresUniformSizes(t *testing.T) {
	r := newRig(t, 2, 2)
	if err := r.fsys.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	group := NewOpenGroup(r.k, 2)
	sawErr := 0
	for i := 0; i < 2; i++ {
		i := i
		node := r.compute[i]
		r.k.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
			f, _ := r.fsys.Open("f", node, MRecord, group)
			size := int64(64 << 10)
			if i == 1 {
				size = 128 << 10
			}
			if _, err := f.Read(p, size); errors.Is(err, ErrBadSize) {
				sawErr++
			}
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	// The first operation on the file fixes the record size; the party
	// presenting a different size gets the error.
	if sawErr != 1 {
		t.Fatalf("%d parties saw ErrBadSize, want 1", sawErr)
	}
}

func TestARTFIFOAndCompletion(t *testing.T) {
	r := newRig(t, 1, 4)
	if err := r.fsys.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	var order []int
	r.k.Go("issuer", func(p *sim.Proc) {
		f, _ := r.fsys.Open("f", 0, MAsync, nil)
		var reqs []*Async
		for i := 0; i < 4; i++ {
			i := i
			a := f.IReadAt(int64(i)*256<<10, 256<<10)
			a.Done.OnFire(func(error) { order = append(order, i) })
			reqs = append(reqs, a)
		}
		if f.AsyncIssued() != 4 {
			t.Errorf("AsyncIssued = %d", f.AsyncIssued())
		}
		for _, a := range reqs {
			if err := a.Done.Wait(p); err != nil {
				t.Errorf("async err: %v", err)
			}
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("ART completion order %v, want FIFO", order)
		}
	}
}

func TestARTBadRequestFailsAsync(t *testing.T) {
	r := newRig(t, 1, 2)
	if err := r.fsys.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	r.k.Go("issuer", func(p *sim.Proc) {
		f, _ := r.fsys.Open("f", 0, MAsync, nil)
		a := f.IReadAt(1<<20, 64<<10) // past EOF
		if err := a.Done.Wait(p); err == nil {
			t.Error("out-of-range async read reported success")
		}
		f.Close()
		b := f.IReadAt(0, 1024)
		if err := b.Done.Wait(p); !errors.Is(err, ErrClosed) {
			t.Errorf("async after close: %v", err)
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNextRecordOffset(t *testing.T) {
	r := newRig(t, 4, 2)
	if err := r.fsys.Create("f", 4<<20); err != nil {
		t.Fatal(err)
	}
	group := NewOpenGroup(r.k, 4)
	fr, err := r.fsys.Open("f", 0, MRecord, group)
	if err != nil {
		t.Fatal(err)
	}
	if got := fr.NextRecordOffset(64<<10, 64<<10); got != 64<<10+4*64<<10 {
		t.Fatalf("M_RECORD next = %d", got)
	}
	fa, err := r.fsys.Open("f", 1, MAsync, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := fa.NextRecordOffset(0, 64<<10); got != 64<<10 {
		t.Fatalf("M_ASYNC next = %d", got)
	}
	fu, err := r.fsys.Open("f", 2, MUnix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := fu.NextRecordOffset(0, 64<<10); got >= 0 {
		t.Fatalf("M_UNIX should not predict, got %d", got)
	}
}

func TestModeStringsAndPredicates(t *testing.T) {
	if MUnix.String() != "M_UNIX" || MRecord.String() != "M_RECORD" || MAsync.String() != "M_ASYNC" {
		t.Fatal("mode names wrong")
	}
	if Mode(42).String() == "" {
		t.Fatal("unknown mode has empty name")
	}
	if !MRecord.Collective() || MAsync.Collective() {
		t.Fatal("Collective predicate wrong")
	}
	if MAsync.SharedPointer() || !MUnix.SharedPointer() {
		t.Fatal("SharedPointer predicate wrong")
	}
	if Mode(-1).Valid() || Mode(6).Valid() || !MGlobal.Valid() {
		t.Fatal("Valid predicate wrong")
	}
}

func TestLargerRequestsHigherBandwidth(t *testing.T) {
	// Figure 2's dominant trend: bandwidth rises with request size.
	bw := func(req int64) float64 {
		total, elapsed := runCollective(t, MRecord, 4, req, 4<<20)
		return float64(total) / elapsed.Seconds()
	}
	small, large := bw(64<<10), bw(1<<20)
	if large <= small {
		t.Fatalf("1MB-request bandwidth (%.0f B/s) not above 64KB (%.0f B/s)", large, small)
	}
}

func TestReadStatsAccumulate(t *testing.T) {
	r := newRig(t, 1, 2)
	if err := r.fsys.Create("f", 512<<10); err != nil {
		t.Fatal(err)
	}
	var f *File
	r.k.Go("reader", func(p *sim.Proc) {
		f, _ = r.fsys.Open("f", 0, MAsync, nil)
		for {
			if _, err := f.Read(p, 128<<10); err != nil {
				return
			}
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if f.ReadCalls != 4 || f.BytesRead != 512<<10 {
		t.Fatalf("ReadCalls=%d BytesRead=%d", f.ReadCalls, f.BytesRead)
	}
	if f.ReadTime.N() != 4 || f.ReadTime.Mean() <= 0 {
		t.Fatalf("ReadTime: N=%d mean=%v", f.ReadTime.N(), f.ReadTime.Mean())
	}
}

// Property: for random request sizes, an M_ASYNC scan reads the whole
// file exactly once.
func TestAsyncScanAlwaysCoversFile(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		req := int64(1+rng.Intn(64)) * 16 << 10
		size := int64(1+rng.Intn(16)) * 128 << 10
		r := newRig(t, 1, 4)
		if err := r.fsys.Create("f", size); err != nil {
			t.Fatal(err)
		}
		var total int64
		r.k.Go("reader", func(p *sim.Proc) {
			f, _ := r.fsys.Open("f", 0, MAsync, nil)
			for {
				n, err := f.Read(p, req)
				if err != nil {
					return
				}
				total += n
			}
		})
		if err := r.k.Run(); err != nil {
			return false
		}
		return total == size
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
