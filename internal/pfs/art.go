package pfs

import (
	"fmt"

	"repro/internal/sim"
)

// Async is one asynchronous request: the internal structure the Paragon
// OS allocates in the setup phase and tracks on the active list. Done
// fires when the data is available (reads) or durable (writes); the ART
// itself moves no user-visible pointers.
type Async struct {
	Off, N int64
	Write  bool
	Done   *sim.Signal
}

// art is the asynchronous request thread machinery for one open
// instance: requests queue FIFO on the active list and a dedicated
// thread posts and processes them one at a time via Fast Path, exactly
// the structure Section 3 of the paper describes.
type art struct {
	active *sim.Queue[*Async]
	issued int64
}

// IReadAt queues an asynchronous read of [off, off+n) and returns its
// tracking structure immediately (the setup phase). The request is
// processed FIFO by the file's asynchronous request thread. An
// out-of-range request fails the returned signal rather than erroring
// synchronously, matching how the asynchronous path reports errors at
// wait time.
func (f *File) IReadAt(off, n int64) *Async {
	return f.enqueue(&Async{Off: off, N: n})
}

// IWriteAt queues an asynchronous write of [off, off+n), the write-side
// twin of IReadAt (used by the write-behind extension).
func (f *File) IWriteAt(off, n int64) *Async {
	return f.enqueue(&Async{Off: off, N: n, Write: true})
}

// IReadAtReusing is IReadAt with caller-managed request storage: req
// (nil on the first call) is reset and requeued, so a steady stream of
// asynchronous reads — the prefetcher's issue loop — allocates no Async
// and no Signal. The caller must not requeue req until its Done has
// fired and every consumer is finished with it.
func (f *File) IReadAtReusing(req *Async, off, n int64) *Async {
	if req == nil {
		req = &Async{}
	}
	req.Off, req.N, req.Write = off, n, false
	return f.enqueue(req)
}

func (f *File) enqueue(req *Async) *Async {
	if req.Done == nil {
		req.Done = sim.NewSignal(f.fsys.k)
	} else {
		req.Done.Reset(f.fsys.k)
	}
	op := "read"
	if req.Write {
		op = "write"
	}
	if f.closed {
		f.fsys.k.After(0, func() { req.Done.Fire(ErrClosed) })
		return req
	}
	if req.Off < 0 || req.N <= 0 || req.Off+req.N > f.meta.size {
		err := fmt.Errorf("pfs: async %s [%d,+%d) outside %s (%d bytes)",
			op, req.Off, req.N, f.meta.name, f.meta.size)
		f.fsys.k.After(0, func() { req.Done.Fire(err) })
		return req
	}
	if f.art == nil {
		f.art = &art{active: sim.NewQueue[*Async](f.fsys.k)}
		f.fsys.k.GoDaemon(fmt.Sprintf("art/%s@%d", f.meta.name, f.node), f.artLoop)
	}
	f.art.issued++
	f.art.active.Put(req)
	return req
}

// artLoop is the asynchronous request thread: it pulls requests off the
// active list in FIFO order, pays the posting cost, performs the read via
// Fast Path, and fires the completion.
func (f *File) artLoop(p *sim.Proc) {
	for {
		req := f.art.active.Get(p)
		p.Sleep(f.fsys.cfg.ARTSetup)
		var err error
		if req.Write {
			sig := f.fsys.getSig()
			f.fsys.stripeIOInto(sig, f.node, f.tenant, f.meta, req.Off, req.N, true)
			err = sig.Wait(p)
			f.fsys.putSig(sig)
		} else {
			err = f.BlockingIO(p, req.Off, req.N)
		}
		req.Done.Fire(err)
	}
}

// AsyncIssued reports how many asynchronous requests this open instance
// has queued (for tests and stats).
func (f *File) AsyncIssued() int64 {
	if f.art == nil {
		return 0
	}
	return f.art.issued
}
