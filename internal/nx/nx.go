// Package nx is a compatibility veneer shaped after the Paragon OSF/1 nx
// I/O interface the paper's workloads were written against: gopen /
// setiomode / cread / iread / iowait / iodone / lseek / close, with file
// descriptors instead of handles. It makes ports of historical Paragon
// programs read like the originals; new code should use internal/core or
// internal/pfs directly.
//
// A Process binds one compute node's simulated process to the machine;
// all calls must run on that process's goroutine.
package nx

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Whence values for Lseek, matching the classic constants.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// ErrBadFD reports an unknown or closed file descriptor.
var ErrBadFD = errors.New("nx: bad file descriptor")

// Process is one node's nx context.
type Process struct {
	p      *sim.Proc
	m      *machine.Machine
	node   int
	fds    map[int]*pfs.File
	nextFD int
}

// Attach binds simulated process p, running on compute node node, to
// machine m.
func Attach(p *sim.Proc, m *machine.Machine, node int) *Process {
	return &Process{p: p, m: m, node: node, fds: make(map[int]*pfs.File), nextFD: 3}
}

// Gopen opens a PFS file in the given I/O mode and returns a descriptor.
// Collective modes need the group shared by all parties (the "global"
// in gopen).
func (px *Process) Gopen(path string, mode pfs.Mode, group *pfs.OpenGroup) (int, error) {
	f, err := px.m.FS.Open(path, px.node, mode, group)
	if err != nil {
		return -1, err
	}
	fd := px.nextFD
	px.nextFD++
	px.fds[fd] = f
	return fd, nil
}

// file resolves a descriptor.
func (px *Process) file(fd int) (*pfs.File, error) {
	f, ok := px.fds[fd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return f, nil
}

// File exposes the underlying open instance (to attach a prefetcher or
// read statistics).
func (px *Process) File(fd int) (*pfs.File, error) { return px.file(fd) }

// Setiomode changes the descriptor's I/O mode mid-file.
func (px *Process) Setiomode(fd int, mode pfs.Mode) error {
	f, err := px.file(fd)
	if err != nil {
		return err
	}
	return f.SetMode(mode)
}

// Iomode reports the descriptor's current I/O mode.
func (px *Process) Iomode(fd int) (pfs.Mode, error) {
	f, err := px.file(fd)
	if err != nil {
		return 0, err
	}
	return f.Mode(), nil
}

// Cread is the synchronous read: it blocks until n bytes (or the EOF
// remainder) are in the caller's buffer and returns the count, 0 at EOF
// (the historical call returned -1; Go idiom keeps the error channel
// separate).
func (px *Process) Cread(fd int, n int64) (int64, error) {
	f, err := px.file(fd)
	if err != nil {
		return 0, err
	}
	got, err := f.Read(px.p, n)
	if errors.Is(err, io.EOF) {
		return 0, nil
	}
	return got, err
}

// Cwrite is the synchronous write at the individual pointer.
func (px *Process) Cwrite(fd int, n int64) (int64, error) {
	f, err := px.file(fd)
	if err != nil {
		return 0, err
	}
	off := f.Offset()
	if off+n > f.Size() {
		n = f.Size() - off
	}
	if n <= 0 {
		return 0, nil
	}
	if err := f.Write(px.p, off, n); err != nil {
		return 0, err
	}
	if err := f.SeekTo(off + n); err != nil {
		return 0, err
	}
	return n, nil
}

// Request tracks an asynchronous operation, the return of Iread.
type Request struct {
	async *pfs.Async
}

// Iread posts an asynchronous read of n bytes at the individual file
// pointer and advances the pointer immediately, as the historical iread
// did. Only M_ASYNC descriptors may use it (shared-pointer modes cannot
// pre-advance safely).
func (px *Process) Iread(fd int, n int64) (*Request, error) {
	f, err := px.file(fd)
	if err != nil {
		return nil, err
	}
	if f.Mode() != pfs.MAsync {
		return nil, fmt.Errorf("nx: iread requires M_ASYNC, fd %d is %v", fd, f.Mode())
	}
	off := f.Offset()
	if off >= f.Size() {
		return nil, fmt.Errorf("nx: iread at EOF")
	}
	if off+n > f.Size() {
		n = f.Size() - off
	}
	req := f.IReadAt(off, n)
	if err := f.SeekTo(off + n); err != nil {
		return nil, err
	}
	return &Request{async: req}, nil
}

// Iowait blocks until the request completes and returns its error.
func (px *Process) Iowait(r *Request) error {
	if r == nil || r.async == nil {
		return errors.New("nx: iowait on nil request")
	}
	return r.async.Done.Wait(px.p)
}

// Iodone reports whether the request has completed, without blocking.
func (px *Process) Iodone(r *Request) bool {
	return r != nil && r.async != nil && r.async.Done.Fired()
}

// Lseek moves the individual file pointer and returns the new offset.
func (px *Process) Lseek(fd int, off int64, whence int) (int64, error) {
	f, err := px.file(fd)
	if err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = f.Offset()
	case SeekEnd:
		base = f.Size()
	default:
		return 0, fmt.Errorf("nx: bad whence %d", whence)
	}
	if err := f.SeekTo(base + off); err != nil {
		return 0, err
	}
	return f.Offset(), nil
}

// Eseof reports whether the individual pointer sits at end of file.
func (px *Process) Eseof(fd int) (bool, error) {
	f, err := px.file(fd)
	if err != nil {
		return false, err
	}
	return f.Offset() >= f.Size(), nil
}

// Mkdir creates a PFS directory.
func (px *Process) Mkdir(path string) error { return px.m.FS.Mkdir(path) }

// Unlink removes a PFS file or empty directory.
func (px *Process) Unlink(path string) error { return px.m.FS.Remove(path) }

// Stat describes a PFS path.
func (px *Process) Stat(path string) (pfs.Info, error) { return px.m.FS.Stat(path) }

// Close releases the descriptor.
func (px *Process) Close(fd int) error {
	f, err := px.file(fd)
	if err != nil {
		return err
	}
	delete(px.fds, fd)
	return f.Close()
}
