package nx_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/nx"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

func testMachine() *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 2
	cfg.IONodes = 2
	cfg.UFS.Fragmentation = 0
	return machine.Build(cfg)
}

// onNode runs fn as a simulated process attached to node 0 and fails the
// test on simulation error.
func onNode(t *testing.T, m *machine.Machine, fn func(px *nx.Process)) {
	t.Helper()
	m.K.Go("nxproc", func(p *sim.Proc) {
		fn(nx.Attach(p, m, 0))
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGopenCreadClose(t *testing.T) {
	m := testMachine()
	if err := m.FS.Create("f", 256<<10); err != nil {
		t.Fatal(err)
	}
	onNode(t, m, func(px *nx.Process) {
		fd, err := px.Gopen("f", pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		var total int64
		for {
			n, err := px.Cread(fd, 64<<10)
			if err != nil {
				t.Error(err)
				return
			}
			if n == 0 {
				break // EOF, classic style
			}
			total += n
		}
		if total != 256<<10 {
			t.Errorf("read %d, want 256KiB", total)
		}
		if err := px.Close(fd); err != nil {
			t.Error(err)
		}
		if _, err := px.Cread(fd, 1); !errors.Is(err, nx.ErrBadFD) {
			t.Errorf("read after close: %v", err)
		}
	})
}

func TestLseekWhence(t *testing.T) {
	m := testMachine()
	if err := m.FS.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	onNode(t, m, func(px *nx.Process) {
		fd, _ := px.Gopen("f", pfs.MAsync, nil)
		if off, err := px.Lseek(fd, 100, nx.SeekSet); err != nil || off != 100 {
			t.Errorf("SeekSet -> %d, %v", off, err)
		}
		if off, err := px.Lseek(fd, 50, nx.SeekCur); err != nil || off != 150 {
			t.Errorf("SeekCur -> %d, %v", off, err)
		}
		if off, err := px.Lseek(fd, -20, nx.SeekEnd); err != nil || off != 1<<20-20 {
			t.Errorf("SeekEnd -> %d, %v", off, err)
		}
		if _, err := px.Lseek(fd, 0, 9); err == nil {
			t.Error("bad whence accepted")
		}
		if eof, err := px.Eseof(fd); err != nil || eof {
			t.Errorf("Eseof = %v, %v before end", eof, err)
		}
		if _, err := px.Lseek(fd, 0, nx.SeekEnd); err != nil {
			t.Error(err)
		}
		if eof, _ := px.Eseof(fd); !eof {
			t.Error("Eseof false at end")
		}
	})
}

func TestIreadIowaitIodone(t *testing.T) {
	m := testMachine()
	if err := m.FS.Create("f", 512<<10); err != nil {
		t.Fatal(err)
	}
	onNode(t, m, func(px *nx.Process) {
		fd, _ := px.Gopen("f", pfs.MAsync, nil)
		r1, err := px.Iread(fd, 128<<10)
		if err != nil {
			t.Error(err)
			return
		}
		// The pointer advanced immediately; a second iread targets the
		// next region.
		r2, err := px.Iread(fd, 128<<10)
		if err != nil {
			t.Error(err)
			return
		}
		if px.Iodone(r1) {
			t.Error("request done before any simulated time passed")
		}
		if err := px.Iowait(r1); err != nil {
			t.Error(err)
		}
		if err := px.Iowait(r2); err != nil {
			t.Error(err)
		}
		if !px.Iodone(r2) {
			t.Error("Iodone false after Iowait")
		}
		if off, _ := px.Lseek(fd, 0, nx.SeekCur); off != 256<<10 {
			t.Errorf("pointer at %d after two ireads", off)
		}
	})
}

func TestIreadRequiresAsyncMode(t *testing.T) {
	m := testMachine()
	if err := m.FS.Create("f", 256<<10); err != nil {
		t.Fatal(err)
	}
	onNode(t, m, func(px *nx.Process) {
		fd, _ := px.Gopen("f", pfs.MUnix, nil)
		if _, err := px.Iread(fd, 64<<10); err == nil {
			t.Error("iread on M_UNIX accepted")
		}
		if err := px.Iowait(nil); err == nil {
			t.Error("iowait(nil) accepted")
		}
	})
}

func TestSetiomodeMidFile(t *testing.T) {
	m := testMachine()
	if err := m.FS.Create("f", 512<<10); err != nil {
		t.Fatal(err)
	}
	onNode(t, m, func(px *nx.Process) {
		fd, _ := px.Gopen("f", pfs.MUnix, nil)
		if mode, _ := px.Iomode(fd); mode != pfs.MUnix {
			t.Errorf("mode = %v", mode)
		}
		if _, err := px.Cread(fd, 64<<10); err != nil {
			t.Error(err)
		}
		if err := px.Setiomode(fd, pfs.MAsync); err != nil {
			t.Error(err)
		}
		if mode, _ := px.Iomode(fd); mode != pfs.MAsync {
			t.Errorf("mode after setiomode = %v", mode)
		}
		// Collective modes need a group: this open had none.
		if err := px.Setiomode(fd, pfs.MRecord); err == nil {
			t.Error("setiomode to collective without group accepted")
		}
	})
}

func TestCwrite(t *testing.T) {
	m := testMachine()
	if err := m.FS.Create("f", 256<<10); err != nil {
		t.Fatal(err)
	}
	onNode(t, m, func(px *nx.Process) {
		fd, _ := px.Gopen("f", pfs.MAsync, nil)
		n, err := px.Cwrite(fd, 128<<10)
		if err != nil || n != 128<<10 {
			t.Errorf("Cwrite = %d, %v", n, err)
		}
		if off, _ := px.Lseek(fd, 0, nx.SeekCur); off != 128<<10 {
			t.Errorf("pointer = %d after write", off)
		}
		// Writing past EOF clamps, then returns 0 at the end.
		if _, err := px.Lseek(fd, 0, nx.SeekEnd); err != nil {
			t.Error(err)
		}
		if n, err := px.Cwrite(fd, 64<<10); err != nil || n != 0 {
			t.Errorf("Cwrite at EOF = %d, %v", n, err)
		}
	})
}

// TestNXCollectiveProgram ports the paper's workload shape to the nx
// veneer: all nodes gopen in M_RECORD and cread until EOF, with a
// prefetcher attached through File().
func TestNXCollectiveProgram(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 4
	cfg.IONodes = 4
	m := machine.Build(cfg)
	if err := m.FS.Create("f", 2<<20); err != nil {
		t.Fatal(err)
	}
	pf := prefetch.New(m.K, prefetch.DefaultConfig())
	group := pfs.NewOpenGroup(m.K, 4)
	var total int64
	for i := 0; i < 4; i++ {
		node := i
		m.K.Go(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			px := nx.Attach(p, m, node)
			fd, err := px.Gopen("f", pfs.MRecord, group)
			if err != nil {
				t.Error(err)
				return
			}
			f, _ := px.File(fd)
			pf.Attach(f)
			for {
				n, err := px.Cread(fd, 64<<10)
				if err != nil {
					t.Error(err)
					return
				}
				if n == 0 {
					break
				}
				total += n
				p.Sleep(40 * sim.Millisecond)
			}
			if err := px.Close(fd); err != nil {
				t.Error(err)
			}
		})
	}
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 2<<20 {
		t.Fatalf("collective nx program read %d, want 2MiB", total)
	}
	if pf.HitRate() < 0.5 {
		t.Fatalf("hit rate %.2f with 40ms compute", pf.HitRate())
	}
}

func TestNamespaceWrappers(t *testing.T) {
	m := testMachine()
	onNode(t, m, func(px *nx.Process) {
		if err := px.Mkdir("/runs"); err != nil {
			t.Error(err)
		}
		if info, err := px.Stat("/runs"); err != nil || !info.IsDir {
			t.Errorf("Stat(/runs) = %+v, %v", info, err)
		}
		if err := px.Unlink("/runs"); err != nil {
			t.Error(err)
		}
		if _, err := px.Stat("/runs"); err == nil {
			t.Error("stat after unlink succeeded")
		}
	})
}

func TestBadDescriptorEverywhere(t *testing.T) {
	m := testMachine()
	onNode(t, m, func(px *nx.Process) {
		if _, err := px.Gopen("ghost", pfs.MAsync, nil); err == nil {
			t.Error("gopen of missing file accepted")
		}
		for _, err := range []error{
			func() error { _, e := px.Cread(7, 1); return e }(),
			func() error { _, e := px.Cwrite(7, 1); return e }(),
			func() error { _, e := px.Iread(7, 1); return e }(),
			func() error { _, e := px.Lseek(7, 0, nx.SeekSet); return e }(),
			func() error { _, e := px.Iomode(7); return e }(),
			func() error { _, e := px.Eseof(7); return e }(),
			px.Setiomode(7, pfs.MAsync),
			px.Close(7),
		} {
			if !errors.Is(err, nx.ErrBadFD) {
				t.Errorf("want ErrBadFD, got %v", err)
			}
		}
	})
}
