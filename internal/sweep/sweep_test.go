package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/workload"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 16, 100} {
		got := Map(workers, 50, func(i int) int { return i * i })
		if len(got) != 50 {
			t.Fatalf("workers=%d: got %d results, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0 returned %v, want nil", got)
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	// Jobs 3 and 7 fail; the reported error must be job 3's at every
	// worker count (serial loops meet 3 first; the pool must agree).
	for _, workers := range []int{1, 2, 8} {
		_, err := MapErr(workers, 10, func(i int) (int, error) {
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 3 failed" {
			t.Fatalf("workers=%d: err = %v, want cell 3 failed", workers, err)
		}
	}
}

func TestMapErrNoError(t *testing.T) {
	got, err := MapErr(4, 10, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("result[%d] = %d, want %d", i, v, i+1)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
			}()
			Map(workers, 8, func(i int) int {
				if i == 5 {
					panic(errors.New("boom"))
				}
				return i
			})
		}()
	}
}

func TestStreamEmitsInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 32} {
		var seen []int
		Stream(workers, 40, func(i int) int { return i }, func(i, v int) bool {
			if i != v {
				t.Fatalf("workers=%d: emit(%d, %d) disagrees", workers, i, v)
			}
			seen = append(seen, i)
			return true
		})
		if len(seen) != 40 {
			t.Fatalf("workers=%d: emitted %d jobs, want 40", workers, len(seen))
		}
		for i, v := range seen {
			if v != i {
				t.Fatalf("workers=%d: emission order %v not ascending", workers, seen)
			}
		}
	}
}

func TestStreamStopsOnFalse(t *testing.T) {
	for _, workers := range []int{1, 4} {
		emitted := 0
		Stream(workers, 1000, func(i int) int { return i }, func(i, v int) bool {
			emitted++
			return i < 4 // stop after emitting job 4
		})
		if emitted != 5 {
			t.Fatalf("workers=%d: emitted %d jobs after stop, want 5", workers, emitted)
		}
	}
}

func TestStreamStopStartsNoNewJobs(t *testing.T) {
	// After emit returns false, the dispatch counter must freeze: with the
	// stop at job 0 and a single worker, exactly one job runs.
	var ran atomic.Int64
	Stream(1, 1000, func(i int) int { ran.Add(1); return i }, func(i, v int) bool {
		return false
	})
	if got := ran.Load(); got != 1 {
		t.Fatalf("ran %d jobs after immediate stop, want 1", got)
	}
}

// sweepSpec is a small but real simulation cell: the determinism tests
// and benchmarks below run the actual simulator, not a stand-in.
func sweepSpec(i int) (machine.Config, workload.Spec) {
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 2
	cfg.IONodes = 2
	req := int64(16 << 10)
	return cfg, workload.Spec{
		FileSize:    req * 2 * 4,
		RequestSize: req,
		Mode:        pfs.MRecord,
		Seed:        int64(i),
	}
}

func TestParallelSimulationsMatchSerial(t *testing.T) {
	// The engine's whole contract: a sweep of real simulations yields
	// bit-identical per-cell fingerprints at any worker count.
	const n = 8
	run := func(workers int) []uint64 {
		return Map(workers, n, func(i int) uint64 {
			cfg, spec := sweepSpec(i)
			res, err := workload.Run(cfg, spec)
			if err != nil {
				t.Errorf("cell %d: %v", i, err)
				return 0
			}
			return res.Fingerprint()
		})
	}
	serial := run(1)
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		got := run(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: cell %d fingerprint %016x != serial %016x",
					workers, i, got[i], serial[i])
			}
		}
	}
}

// BenchmarkSweepSerial and BenchmarkSweepParallel time the same bundle of
// independent simulations through the pool at width 1 and width
// GOMAXPROCS; their ratio is the sweep engine's wall-clock speedup on
// this machine.
func benchSweep(b *testing.B, workers int) {
	const cells = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Map(workers, cells, func(c int) float64 {
			cfg, spec := sweepSpec(c)
			res, err := workload.Run(cfg, spec)
			if err != nil {
				b.Error(err)
				return 0
			}
			return res.Bandwidth
		})
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, runtime.NumCPU()) }

// Regression: the pool must never be wider than the job count. A sweep of
// 3 cells at workers=64 used to spawn 64 goroutines, 61 of which spun the
// shared counter for nothing; clampWorkers caps the pool at n.
func TestClampWorkers(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{0, 10, runtime.NumCPU()},  // "use every CPU"
		{-3, 10, runtime.NumCPU()}, // negative means the same
		{4, 10, 4},
		{10, 10, 10},
		{64, 3, 3}, // the regression: capped at the job count
		{64, 1, 1},
		{0, 1, 1},
	}
	for _, c := range cases {
		if c.want > c.n {
			c.want = c.n // NumCPU may exceed small n
		}
		if got := clampWorkers(c.workers, c.n); got != c.want {
			t.Errorf("clampWorkers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// Compose caps the outer sweep width so outer×inner parallelism stays
// within the CPUs, while never starving the sweep entirely.
func TestCompose(t *testing.T) {
	ncpu := runtime.NumCPU()
	// inner ≤ 1 leaves the request untouched, sentinels included.
	for _, w := range []int{8, 1, 0, -2} {
		for _, inner := range []int{1, 0, -1} {
			if got := Compose(w, inner); got != w {
				t.Errorf("Compose(%d, %d) = %d, want %d", w, inner, got, w)
			}
		}
	}
	// inner > 1: the result is min(request-or-NumCPU, NumCPU/inner),
	// floored at one outer worker.
	for _, c := range []struct{ workers, inner int }{
		{0, 4}, {-1, 4}, {1, 1 << 20}, {ncpu, 2}, {1, 2}, {64, 3},
	} {
		want := c.workers
		if want <= 0 {
			want = ncpu
		}
		if m := ncpu / c.inner; want > m {
			want = m
		}
		if want < 1 {
			want = 1
		}
		got := Compose(c.workers, c.inner)
		if got != want {
			t.Errorf("Compose(%d, %d) = %d, want %d (NumCPU=%d)", c.workers, c.inner, got, want, ncpu)
		}
		if got*c.inner > ncpu && got > 1 {
			t.Errorf("Compose(%d, %d) = %d oversubscribes %d CPUs at inner=%d", c.workers, c.inner, got, ncpu, c.inner)
		}
	}
}

// Regression: with workers far above the job count, observed concurrency
// (a proxy for goroutines actually running jobs) must not exceed the job
// count, and every job must still run exactly once.
func TestMapWorkerCapConcurrency(t *testing.T) {
	const n = 3
	var inFlight, peak, ran atomic.Int64
	Map(64, n, func(i int) int {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		ran.Add(1)
		inFlight.Add(-1)
		return i
	})
	if ran.Load() != n {
		t.Fatalf("ran %d jobs, want %d", ran.Load(), n)
	}
	if peak.Load() > n {
		t.Fatalf("observed concurrency %d exceeds job count %d", peak.Load(), n)
	}
}

// MapErr with one job must degenerate to a plain call on the caller's
// goroutine — no pool at all.
func TestMapErrSingleJobSerial(t *testing.T) {
	baseline := runtime.NumGoroutine()
	out, err := MapErr(32, 1, func(i int) (int, error) {
		if g := runtime.NumGoroutine(); g > baseline {
			return 0, fmt.Errorf("single job spawned goroutines: %d > %d", g, baseline)
		}
		return 41 + i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 41 {
		t.Fatalf("out = %v, want [41]", out)
	}
}
