// Package sweep is the repository's parallel sweep engine: a worker pool
// that executes many independent simulations (experiment grid cells,
// simcheck seeds) concurrently across GOMAXPROCS.
//
// Every simulation in this repository is a pure function of its inputs —
// workload.Run builds a private kernel, machine, and file system per call
// — so jobs never share mutable state and can run on any OS thread.
// Determinism is preserved by construction: results are always collected
// and delivered in job-index order, never completion order, so a sweep at
// any worker count produces bit-identical digests and tables to a serial
// run. The only thing parallelism may change is wall-clock time.
//
// Workers pull job indices from a shared atomic counter (work stealing by
// subtraction: the slow jobs end up spread across the pool without any
// up-front partitioning). A worker count of one — or a job count of one —
// degenerates to a plain loop on the calling goroutine, with no
// goroutines spawned, so the serial path stays trivially identical.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// clampWorkers resolves a requested pool width against the job count.
// Zero or negative means "use every CPU".
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Compose resolves an outer sweep width when each job is itself inner-way
// parallel (a sharded simulation running inner workers): the outer pool
// is capped so outer×inner never oversubscribes the CPUs. workers ≤ 0
// means "use every CPU" as in Map; inner ≤ 1 leaves the request
// untouched. At least one outer worker always survives the cap.
func Compose(workers, inner int) int {
	if inner <= 1 {
		return workers
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if max := runtime.NumCPU() / inner; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map evaluates fn(i) for every i in [0, n) across a pool of workers
// goroutines and returns the results in index order. A panic in any job
// is captured and re-raised on the calling goroutine after the pool has
// drained, as a serial loop would raise it.
func Map[T any](workers, n int, fn func(int) T) []T {
	out, _ := MapErr(workers, n, func(i int) (T, error) { return fn(i), nil })
	return out
}

// MapErr is Map for jobs that can fail. Every job runs regardless of
// other jobs' failures (grid cells are independent; there is no partial
// result to protect), and the error returned is the failing job with the
// lowest index — the same error a serial in-order loop would have
// returned first — so error text is deterministic at any worker count.
func MapErr[T any](workers, n int, fn func(int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
			if errs[i] != nil {
				// Serial semantics: stop at the first failure.
				return nil, errs[i]
			}
		}
		return out, nil
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	panics := make(chan any, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					select {
					case panics <- r:
					default:
					}
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Stream evaluates fn(i) for i in [0, n) across the pool and calls emit
// exactly once per completed job, always in index order, as soon as the
// contiguous prefix of results allows — job 3's report is never shown
// before job 2's, but the pool keeps computing ahead of the emission
// point. emit runs on the calling goroutine. Returning false from emit
// stops the sweep: no new jobs are started (jobs already in flight
// finish and are discarded) and Stream returns after the pool drains.
// With one worker this is exactly the classic serial loop: compute, emit,
// maybe stop, compute the next.
func Stream[T any](workers, n int, fn func(int) T, emit func(int, T) bool) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if !emit(i, fn(i)) {
				return
			}
		}
		return
	}

	type result struct {
		i int
		v T
	}
	results := make(chan result, workers)
	var next atomic.Int64
	var stopped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results <- result{i, fn(i)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder completion-ordered results into index order before emitting.
	pending := make(map[int]T)
	emitAt := 0
	live := true
	for r := range results {
		if !live {
			continue // drain without emitting after a stop
		}
		pending[r.i] = r.v
		for {
			v, ok := pending[emitAt]
			if !ok {
				break
			}
			delete(pending, emitAt)
			emitAt++
			if !emit(emitAt-1, v) {
				stopped.Store(true)
				live = false
				break
			}
		}
	}
}
