package ionode

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// rig builds a 2x2 mesh with one server at node 3 and returns the pieces.
func rig(t *testing.T) (*sim.Kernel, *mesh.Mesh, *Server) {
	t.Helper()
	k := sim.NewKernel()
	m := mesh.New(k, mesh.Paragon(2, 2))
	a := disk.NewArray(k, "raid", 4, disk.Seagate94601(), disk.FIFO, 500*sim.Microsecond)
	cfg := ufs.DefaultConfig()
	cfg.Fragmentation = 0
	fs := ufs.New(k, a, cfg)
	if err := fs.Create("stripe", 8<<20); err != nil {
		t.Fatal(err)
	}
	return k, m, New(k, m, 3, fs, 300*sim.Microsecond)
}

func TestReadRoundTrip(t *testing.T) {
	k, m, s := rig(t)
	var done bool
	var when sim.Time
	// Simulate a client at node 0 sending a request, then the server
	// replying.
	m.Send(0, 3, 128, func() {
		s.Read(0, "stripe", 0, 64<<10, true, func(err error) {
			if err != nil {
				t.Errorf("reply err: %v", err)
			}
			done = true
			when = k.Now()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("reply never arrived")
	}
	// Sanity: a 64 KB read off a cold array takes ~10-30 ms in this model.
	if when < 5*sim.Millisecond || when > 100*sim.Millisecond {
		t.Fatalf("round trip %v outside plausible window", when)
	}
	if s.Requests != 1 || s.BytesServed != 64<<10 {
		t.Fatalf("Requests=%d BytesServed=%d", s.Requests, s.BytesServed)
	}
	if s.Service.N() != 1 {
		t.Fatalf("service samples = %d", s.Service.N())
	}
}

func TestReadErrorReply(t *testing.T) {
	k, _, s := rig(t)
	var got error
	k.At(0, func() {
		s.Read(0, "missing", 0, 64<<10, true, func(err error) { got = err })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("expected error reply for missing file")
	}
	if s.BytesServed != 0 {
		t.Fatal("error reply should serve no bytes")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	k, _, s := rig(t)
	var done bool
	k.At(0, func() {
		s.Write(0, "stripe", 0, 64<<10, func(err error) {
			if err != nil {
				t.Errorf("write reply err: %v", err)
			}
			done = true
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("write reply never arrived")
	}
}

func TestDispatchSerializes(t *testing.T) {
	k, _, s := rig(t)
	var completions []sim.Time
	k.At(0, func() {
		for i := 0; i < 4; i++ {
			off := int64(i) * (64 << 10)
			s.Read(0, "stripe", off, 64<<10, true, func(err error) {
				if err != nil {
					t.Errorf("reply err: %v", err)
				}
				completions = append(completions, k.Now())
			})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(completions) != 4 {
		t.Fatalf("%d completions, want 4", len(completions))
	}
	for i := 1; i < len(completions); i++ {
		if completions[i] <= completions[i-1] {
			t.Fatalf("completions not strictly ordered: %v", completions)
		}
	}
}

func TestConcurrentRequestsShareDisk(t *testing.T) {
	// Four sequential 64 KB reads back-to-back should take much less than
	// 4x a cold single read because the disk stays on-track.
	k, _, s := rig(t)
	var last sim.Time
	k.At(0, func() {
		for i := 0; i < 4; i++ {
			off := int64(i) * (64 << 10)
			s.Read(0, "stripe", off, 64<<10, true, func(err error) { last = k.Now() })
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	single := coldSingleReadTime(t)
	if last >= 4*single {
		t.Fatalf("4 sequential reads took %v, want < 4x cold single (%v)", last, 4*single)
	}
}

func TestPrefetchHintWarmsCache(t *testing.T) {
	k, _, s := rig(t)
	s.Prefetch("stripe", 0, 64<<10)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.PrefetchHints != 1 {
		t.Fatalf("PrefetchHints = %d", s.PrefetchHints)
	}
	// A buffered read of the hinted range now hits the cache.
	var when sim.Time
	k.At(k.Now(), func() {
		s.Read(0, "stripe", 0, 64<<10, false, func(err error) {
			if err != nil {
				t.Errorf("reply err: %v", err)
			}
			when = k.Now()
		})
	})
	warmStart := k.Now()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.FS().CacheHits != 1 {
		t.Fatalf("CacheHits = %d after hint", s.FS().CacheHits)
	}
	// Cache-hit service is orders of magnitude under a disk read.
	if when-warmStart > 10*sim.Millisecond {
		t.Fatalf("warm read took %v", when-warmStart)
	}
}

func TestPrefetchHintBadRangeIsDropped(t *testing.T) {
	k, _, s := rig(t)
	s.Prefetch("ghost", 0, 64<<10)  // missing file
	s.Prefetch("stripe", 1<<30, 64) // out of range
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Fire-and-forget: counted, no crash, no replies.
	if s.PrefetchHints != 2 {
		t.Fatalf("PrefetchHints = %d", s.PrefetchHints)
	}
}

func coldSingleReadTime(t *testing.T) sim.Time {
	k, _, s := rig(t)
	var when sim.Time
	k.At(0, func() {
		s.Read(0, "stripe", 0, 64<<10, true, func(error) { when = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return when
}
