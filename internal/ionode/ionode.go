// Package ionode models the Paragon I/O node daemon: the server half of
// the PFS. Each I/O node owns a UFS over a RAID array and serves stripe
// requests arriving over the mesh, replying with the data (reads) or an
// acknowledgement (writes).
//
// Request handling is event-driven: decode/dispatch costs CPU serialized
// on the node's processor, the file system and disk layers below provide
// the queuing, and the reply rides the mesh back to the requester.
//
// A server can crash (Crash) and later restart (Restart). While down it
// drops every arriving request without a reply — clients discover the
// loss by timeout — and work already in flight when the node died is
// discarded via an epoch check: completions belonging to a previous
// incarnation never produce a reply or touch the counters. A restart
// comes up cold: the UFS buffer cache is wiped and the breaker closed.
package ionode

import (
	"errors"
	"sync"

	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/ufs"
)

// ErrOverloaded is the control reply of a server that is shedding load:
// its disk reported repeated faults and the node fast-fails requests for
// a cooldown window instead of queueing them onto failing hardware. The
// PFS client's retry layer treats it like any other failure — back off
// and re-issue, by which time the node has usually recovered.
var ErrOverloaded = errors.New("ionode: shedding load after repeated disk faults")

// ShedPolicy tells a server when to stop trusting its disk. After
// Threshold consecutive disk-layer faults the server sheds every request
// for Cooldown of simulated time; the first request after the cooldown
// is admitted as a probe — its success closes the breaker, its failure
// re-opens it for another cooldown. The zero value disables shedding:
// requests always reach the disk, as before.
type ShedPolicy struct {
	Threshold int      // consecutive faults that trip the breaker (0 = never)
	Cooldown  sim.Time // how long to shed before probing again
}

// Enabled reports whether the policy can ever trip.
func (sp ShedPolicy) Enabled() bool { return sp.Threshold > 0 }

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	bClosed   breakerState = iota // requests flow; consecutive faults counted
	bOpen                         // shedding until the cooldown deadline
	bHalfOpen                     // one probe in flight; everything else shed
)

// Server is one I/O node daemon.
type Server struct {
	k    *sim.Kernel
	m    *mesh.Mesh
	node int // mesh address
	fs   *ufs.FS

	dispatch sim.Time // CPU cost to decode and dispatch one request
	cpuFree  sim.Time // server CPU clock

	shed        ShedPolicy
	breaker     breakerState
	consecFault int      // disk faults since the last success (closed state)
	shedUntil   sim.Time // open-state cooldown deadline

	fair FairPolicy // per-tenant fair scheduler; zero = legacy arrival order
	fq   *fairQueue // scheduler state, nil unless fair.Enabled()

	down      bool
	downUntil sim.Time // advertised restart time while down (0 when up)
	epoch     uint64   // incarnation counter; bumped by every crash
	outages   []Outage // static outage schedule (sharded mode); nil = use the flags
	tr        *trace.Log
	opFree    []*srvOp   // pooled ReadCall bookkeeping
	opMu      sync.Mutex // guards opFree: ops are recycled by the reply
	// delivery, which in a sharded run executes on the requester's
	// shard while this node keeps serving. The pool's order is
	// semantically inert (every field is overwritten before use), so a
	// lock here costs nanoseconds and trades no determinism away.

	// replyClock is the kernel whose clock reply-delivery callbacks read:
	// the requesting side's kernel. In a single-kernel machine it is the
	// server's own kernel; in a sharded machine it is the client group's,
	// because replies execute there and must not touch this group's clock.
	replyClock *sim.Kernel

	// Measurements.
	Requests      int64
	BytesServed   int64
	Faults        int64 // requests that failed at the disk layer
	Shed          int64 // requests fast-failed while the breaker was open
	Throttled     int64 // requests shed by per-tenant token-bucket admission
	Probes        int64 // half-open probe requests the breaker granted
	PrefetchHints int64 // server-side cache-warming hints received
	Crashes       int64
	Restarts      int64
	Dropped       int64           // requests that vanished into a down/crashing node
	Service       stats.Histogram // request residency at this node, seconds

	// Per-tenant accounting, armed by SetFairPolicy (nil otherwise).
	// For every tenant, arrived == served + shed + faulted + dropped
	// once the run drains — the per-server half of the QoS conservation
	// oracle (dropped is nonzero only when the node crashed).
	TenantArrived []int64
	TenantServed  []int64
	TenantShed    []int64 // breaker sheds plus admission throttles
	TenantFaulted []int64
	TenantDropped []int64
	TenantBytes   []int64 // bytes served per tenant
}

// New creates a server for mesh address node over fs.
func New(k *sim.Kernel, m *mesh.Mesh, node int, fs *ufs.FS, dispatch sim.Time) *Server {
	return &Server{k: k, m: m, node: node, fs: fs, dispatch: dispatch, replyClock: k}
}

// Outage is one scheduled [At, Until) node outage.
type Outage struct{ At, Until sim.Time }

// SetOutageSchedule fixes the node's whole crash–restart history up
// front (sorted, non-overlapping intervals). With a schedule installed,
// DownAt answers from it as a pure function of time, so clients on
// other shards can query node health without reading this group's
// mutable state. The Crash/Restart events themselves still run on the
// server's kernel at the scheduled times.
func (s *Server) SetOutageSchedule(list []Outage) { s.outages = list }

// SetReplyClock directs reply-delivery timestamps (service-time
// accounting) at the requesting side's kernel; see replyClock.
func (s *Server) SetReplyClock(k *sim.Kernel) { s.replyClock = k }

// Node reports the server's mesh address.
func (s *Server) Node() int { return s.node }

// FS exposes the node's local file system (the PFS layer creates the
// stripe files through it).
func (s *Server) FS() *ufs.FS { return s.fs }

// SetShedPolicy installs (or with the zero policy removes) the node's
// fault breaker.
func (s *Server) SetShedPolicy(p ShedPolicy) { s.shed = p }

// SetTrace attaches a trace log for crash/restart lifecycle events.
func (s *Server) SetTrace(tl *trace.Log) { s.tr = tl }

func (s *Server) emit(kind trace.Kind, n int64) {
	if s.tr != nil {
		s.tr.Add(trace.Event{T: s.k.Now(), Kind: kind, Node: s.node, N: n})
	}
}

// Crash takes the node down until the given restart time: every queued
// and future request is dropped without a reply, work in flight is
// discarded when it completes (the epoch moved on), and the UFS cache is
// wiped. The mesh must separately be told to drop deliveries
// (mesh.SetDown); the machine layer does both.
func (s *Server) Crash(until sim.Time) {
	s.Crashes++
	s.down = true
	s.downUntil = until
	s.epoch++
	if s.fq != nil {
		// Queued fair-scheduler requests die with the node: no reply
		// (clients time out, as with any drop into a down node).
		s.fq.drain(func(op *srvOp) {
			s.Dropped++
			s.TenantDropped[op.tenant]++
			s.putOp(op)
		})
	}
	s.fs.CrashReset()
	s.emit(trace.NodeCrash, int64(until-s.k.Now()))
}

// Restart brings a crashed node back up, cold: CPU clock reset, breaker
// closed, cache already wiped by the crash.
func (s *Server) Restart() {
	if !s.down {
		return
	}
	s.down = false
	s.downUntil = 0
	s.cpuFree = s.k.Now()
	s.breaker = bClosed
	s.consecFault = 0
	s.shedUntil = 0
	s.Restarts++
	s.emit(trace.NodeRestart, 0)
}

// Down reports whether the node is currently crashed.
func (s *Server) Down() bool { return s.down }

// DownUntil returns the advertised restart time while down (zero when
// up). The retry layer uses it for restart-aware backoff — the real PFS
// daemons exchanged heartbeats; here the schedule is known.
func (s *Server) DownUntil() sim.Time { return s.downUntil }

// DownAt reports whether the node is down at time now, and its
// advertised restart time if so. This is the client-facing health
// query: with a static outage schedule installed it reads no mutable
// server state at all, so a retry layer running on another shard can
// call it with its own clock; without one it reads the legacy flags,
// bit-identical to Down/DownUntil.
func (s *Server) DownAt(now sim.Time) (down bool, until sim.Time) {
	if s.outages != nil {
		for _, o := range s.outages {
			if now >= o.At && now < o.Until {
				return true, o.Until
			}
		}
		return false, 0
	}
	return s.down, s.downUntil
}

// Shedding reports whether the breaker would shed a request arriving at
// time now (the half-open probe slot counts as not shedding).
func (s *Server) Shedding(now sim.Time) bool {
	if !s.shed.Enabled() {
		return false
	}
	switch s.breaker {
	case bOpen:
		return now < s.shedUntil
	case bHalfOpen:
		return true
	default:
		return false
	}
}

// admit runs the breaker's admission decision for one request. probe is
// true for the single half-open probe request; exactly one is granted
// per cooldown expiry.
func (s *Server) admit() (shed, probe bool) {
	if !s.shed.Enabled() {
		return false, false
	}
	switch s.breaker {
	case bOpen:
		if s.k.Now() >= s.shedUntil {
			s.breaker = bHalfOpen
			s.Probes++
			return false, true
		}
		return true, false
	case bHalfOpen:
		return true, false
	default:
		return false, false
	}
}

// probeAbort releases the half-open probe slot when the probe request
// died before producing a disk verdict (bad request, crash): the breaker
// returns to open with the cooldown already expired, so the next request
// becomes the new probe.
func (s *Server) probeAbort() {
	if s.breaker == bHalfOpen {
		s.breaker = bOpen
	}
}

// noteDisk feeds the breaker one disk-layer outcome. A probe outcome is
// decisive: success closes the breaker, failure re-opens it for a fresh
// cooldown. Non-probe outcomes count consecutive faults only while the
// breaker is closed — stragglers admitted before the trip must not
// double-trip it.
func (s *Server) noteDisk(failed, probe bool) {
	if probe {
		if failed {
			s.breaker = bOpen
			s.shedUntil = s.k.Now() + s.shed.Cooldown
		} else {
			s.breaker = bClosed
		}
		s.consecFault = 0
		return
	}
	if !failed {
		s.consecFault = 0
		return
	}
	s.consecFault++
	if s.shed.Enabled() && s.breaker == bClosed && s.consecFault >= s.shed.Threshold {
		s.breaker = bOpen
		s.shedUntil = s.k.Now() + s.shed.Cooldown
		s.consecFault = 0
	}
}

// maybeShed fast-fails the request with ErrOverloaded while the breaker
// is open. Must run on the server CPU (inside onCPU).
func (s *Server) maybeShed(from int, reply func(error)) (shed, probe bool) {
	shed, probe = s.admit()
	if shed {
		s.Shed++
		s.m.Send(s.node, from, 64, func() { reply(ErrOverloaded) })
	}
	return shed, probe
}

// Read serves a stripe read: n bytes at off of local file name, on behalf
// of compute node from. reply runs on the requester when the data has
// been delivered (or immediately-ish with an error for a bad request).
// Must be called in simulation context at this node — normally from a
// mesh delivery callback.
func (s *Server) Read(from int, name string, off, n int64, fastPath bool, reply func(error)) {
	if s.down {
		s.Dropped++
		return
	}
	s.Requests++
	start := s.k.Now()
	epoch := s.epoch
	s.onCPU(func() {
		if s.epoch != epoch {
			s.Dropped++
			return
		}
		shed, probe := s.maybeShed(from, reply)
		if shed {
			return
		}
		sig, err := s.fs.Read(name, off, n, ufs.ReadOptions{FastPath: fastPath})
		if err != nil {
			if probe {
				s.probeAbort()
			}
			// Error replies are small control messages.
			s.m.Send(s.node, from, 64, func() { reply(err) })
			return
		}
		sig.OnFire(func(ioErr error) {
			if s.epoch != epoch {
				// The node crashed while the disk worked. The data (or
				// error) belongs to a dead incarnation: no reply, no
				// accounting.
				s.Dropped++
				return
			}
			s.noteDisk(ioErr != nil, probe)
			if ioErr != nil {
				s.Faults++
				s.m.Send(s.node, from, 64, func() { reply(ioErr) })
				return
			}
			s.BytesServed += n
			s.m.Send(s.node, from, n, func() {
				s.Service.ObserveTime(s.replyClock.Now() - start)
				reply(nil)
			})
		})
	})
}

// srvOp is the pooled bookkeeping of one ReadCall: everything the legacy
// Read captured in closures. An op travels the whole request chain —
// dispatch CPU, disk completion, reply delivery — as the arg of
// pooled-args events, and returns to the free list when the reply runs
// (or when an epoch check discards the request). Ops whose reply message
// is dropped by the mesh are simply garbage collected; the pool is an
// optimization, not an accounting mechanism.
type srvOp struct {
	s        *Server
	from     int
	tenant   int // owning tenant (fair scheduler; 0 outside QoS runs)
	h        ufs.Handle
	off, n   int64
	fastPath bool
	probe    bool
	queued   bool   // went through the fair queue: holds a service slot
	tag      uint64 // SCFQ finish tag (fair scheduler)
	fseq     uint64 // arrival sequence number, the dispatch tie-break
	start    sim.Time
	epoch    uint64
	err      error // carried to the error-reply delivery
	reply    func(any, error)
	replyArg any
}

func (s *Server) getOp() *srvOp {
	s.opMu.Lock()
	if n := len(s.opFree); n > 0 {
		op := s.opFree[n-1]
		s.opFree[n-1] = nil
		s.opFree = s.opFree[:n-1]
		s.opMu.Unlock()
		return op
	}
	s.opMu.Unlock()
	return &srvOp{s: s}
}

func (s *Server) putOp(op *srvOp) {
	op.h = ufs.Handle{}
	op.probe = false
	op.queued = false
	op.tenant = 0
	op.err = nil
	op.reply = nil
	op.replyArg = nil
	s.opMu.Lock()
	s.opFree = append(s.opFree, op)
	s.opMu.Unlock()
}

// ReadCall is the pooled-args form of Read, for the steady-state stripe
// path: the file arrives as a resolved ufs.Handle and the reply as a
// callback-plus-arg pair, so serving the request constructs no closures.
// Dispatch, shedding, epoch discard, accounting, and reply timing are
// identical to Read. tenant attributes the request for the fair
// scheduler; it is ignored (pass 0) when no FairPolicy is armed.
func (s *Server) ReadCall(from, tenant int, h ufs.Handle, off, n int64, fastPath bool, reply func(any, error), arg any) {
	if s.down {
		s.Dropped++
		return
	}
	s.Requests++
	op := s.getOp()
	op.from, op.tenant, op.h, op.off, op.n, op.fastPath = from, tenant, h, off, n, fastPath
	op.reply, op.replyArg = reply, arg
	op.start = s.k.Now()
	op.epoch = s.epoch
	s.onCPUCall(srvReadCPU, op)
}

// srvReadCPU runs on the server CPU: breaker admission, then — with a
// fair policy armed — token-bucket admission and the weighted fair
// queue; without one, straight to the disk in arrival order.
func srvReadCPU(v any) {
	op := v.(*srvOp)
	s := op.s
	if s.epoch != op.epoch {
		s.Dropped++
		s.putOp(op)
		return
	}
	if s.fq != nil {
		op.tenant = s.fq.clampTenant(op.tenant)
		s.TenantArrived[op.tenant]++
	}
	shed, probe := s.admit()
	if shed {
		s.Shed++
		if s.fq != nil {
			s.TenantShed[op.tenant]++
		}
		op.err = ErrOverloaded
		s.m.SendCall(s.node, op.from, 64, srvReplyErr, op)
		return
	}
	op.probe = probe
	if s.fq == nil || probe {
		// The half-open probe is the breaker's health check, not tenant
		// work: it bypasses the queue so an idle-but-suspect disk gets
		// probed immediately.
		s.startDisk(op)
		return
	}
	if !s.fq.admitBytes(op.tenant, op.n, s.k.Now()) {
		s.Throttled++
		s.TenantShed[op.tenant]++
		s.emit(trace.QoSShed, op.n)
		op.err = ErrThrottled
		s.m.SendCall(s.node, op.from, 64, srvReplyErr, op)
		return
	}
	s.fq.push(op)
	s.pumpFair()
}

// startDisk issues op's read at the file system. A synchronous error
// (bad handle or range) releases op's service slot, so a pumping caller
// keeps dispatching.
func (s *Server) startDisk(op *srvOp) {
	opt := ufs.ReadOptions{FastPath: op.fastPath}
	if err := s.fs.ReadCall(op.h, op.off, op.n, opt, srvDiskDone, op); err != nil {
		if op.probe {
			s.probeAbort()
		}
		if op.queued && s.fq != nil {
			s.fq.inService--
		}
		if s.fq != nil {
			s.TenantFaulted[op.tenant]++
		}
		// Error replies are small control messages.
		op.err = err
		s.m.SendCall(s.node, op.from, 64, srvReplyErr, op)
	}
}

// srvDiskDone runs when the disk (or cache) has the data at the I/O node.
func srvDiskDone(v any, ioErr error) {
	op := v.(*srvOp)
	s := op.s
	if s.epoch != op.epoch {
		// The node crashed while the disk worked. The data (or error)
		// belongs to a dead incarnation: no reply, no accounting (the
		// crash already zeroed the fair queue's in-service count).
		s.Dropped++
		if s.fq != nil {
			s.TenantDropped[op.tenant]++
		}
		s.putOp(op)
		return
	}
	s.noteDisk(ioErr != nil, op.probe)
	wasQueued := op.queued
	if s.fq != nil {
		if wasQueued {
			s.fq.inService--
		}
		if ioErr != nil {
			s.TenantFaulted[op.tenant]++
		} else {
			s.TenantServed[op.tenant]++
			s.TenantBytes[op.tenant] += op.n
		}
	}
	if ioErr != nil {
		s.Faults++
		op.err = ioErr
		s.m.SendCall(s.node, op.from, 64, srvReplyErr, op)
	} else {
		s.BytesServed += op.n
		s.m.SendCall(s.node, op.from, op.n, srvReplyData, op)
	}
	if wasQueued {
		s.pumpFair()
	}
}

// srvReplyErr delivers an error reply on the requester.
func srvReplyErr(v any) {
	op := v.(*srvOp)
	reply, arg, err := op.reply, op.replyArg, op.err
	op.s.putOp(op)
	reply(arg, err)
}

// srvReplyData delivers the data reply on the requester and closes out
// the service-time measurement.
func srvReplyData(v any) {
	op := v.(*srvOp)
	s := op.s
	s.Service.ObserveTime(s.replyClock.Now() - op.start)
	reply, arg := op.reply, op.replyArg
	s.putOp(op)
	reply(arg, nil)
}

// Prefetch warms the node's buffer cache with [off, off+n) of local file
// name without shipping data anywhere: the server-side prefetch
// placement. Fire-and-forget — errors on a speculative read are dropped.
func (s *Server) Prefetch(name string, off, n int64) {
	if s.down {
		s.Dropped++
		return
	}
	s.PrefetchHints++
	epoch := s.epoch
	s.onCPU(func() {
		if s.epoch != epoch {
			s.Dropped++
			return
		}
		if s.Shedding(s.k.Now()) {
			s.Shed++
			return // no reply to drop: hints are one-way
		}
		sig, err := s.fs.Read(name, off, n, ufs.ReadOptions{FastPath: false})
		if err != nil {
			return
		}
		// Even a speculative read's outcome is evidence about disk health.
		sig.OnFire(func(ioErr error) {
			if s.epoch != epoch {
				return
			}
			s.noteDisk(ioErr != nil, false)
		})
	})
}

// Write serves a stripe write of n bytes at off of local file name. The
// data travelled with the request (the caller charged the mesh for it);
// the reply is a small acknowledgement.
func (s *Server) Write(from int, name string, off, n int64, reply func(error)) {
	if s.down {
		s.Dropped++
		return
	}
	s.Requests++
	start := s.k.Now()
	epoch := s.epoch
	s.onCPU(func() {
		if s.epoch != epoch {
			s.Dropped++
			return
		}
		shed, probe := s.maybeShed(from, reply)
		if shed {
			return
		}
		sig, err := s.fs.Write(name, off, n)
		if err != nil {
			if probe {
				s.probeAbort()
			}
			s.m.Send(s.node, from, 64, func() { reply(err) })
			return
		}
		sig.OnFire(func(ioErr error) {
			if s.epoch != epoch {
				s.Dropped++
				return
			}
			s.noteDisk(ioErr != nil, probe)
			if ioErr != nil {
				s.Faults++
				s.m.Send(s.node, from, 64, func() { reply(ioErr) })
				return
			}
			s.BytesServed += n
			s.m.Send(s.node, from, 64, func() {
				s.Service.ObserveTime(s.replyClock.Now() - start)
				reply(nil)
			})
		})
	})
}

// onCPU serializes fn behind the server's dispatch CPU clock.
func (s *Server) onCPU(fn func()) {
	start := s.k.Now()
	if s.cpuFree > start {
		start = s.cpuFree
	}
	s.cpuFree = start + s.dispatch
	s.k.At(s.cpuFree, fn)
}

// onCPUCall is onCPU for pooled-args callbacks.
func (s *Server) onCPUCall(fn func(any), arg any) {
	start := s.k.Now()
	if s.cpuFree > start {
		start = s.cpuFree
	}
	s.cpuFree = start + s.dispatch
	s.k.AtCall(s.cpuFree, fn, arg)
}
