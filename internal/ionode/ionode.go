// Package ionode models the Paragon I/O node daemon: the server half of
// the PFS. Each I/O node owns a UFS over a RAID array and serves stripe
// requests arriving over the mesh, replying with the data (reads) or an
// acknowledgement (writes).
//
// Request handling is event-driven: decode/dispatch costs CPU serialized
// on the node's processor, the file system and disk layers below provide
// the queuing, and the reply rides the mesh back to the requester.
package ionode

import (
	"errors"

	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/ufs"
)

// ErrOverloaded is the control reply of a server that is shedding load:
// its disk reported repeated faults and the node fast-fails requests for
// a cooldown window instead of queueing them onto failing hardware. The
// PFS client's retry layer treats it like any other failure — back off
// and re-issue, by which time the node has usually recovered.
var ErrOverloaded = errors.New("ionode: shedding load after repeated disk faults")

// ShedPolicy tells a server when to stop trusting its disk. After
// Threshold consecutive disk-layer faults the server sheds every request
// for Cooldown of simulated time, then probes again. The zero value
// disables shedding: requests always reach the disk, as before.
type ShedPolicy struct {
	Threshold int      // consecutive faults that trip the breaker (0 = never)
	Cooldown  sim.Time // how long to shed before letting requests through
}

// Enabled reports whether the policy can ever trip.
func (sp ShedPolicy) Enabled() bool { return sp.Threshold > 0 }

// Server is one I/O node daemon.
type Server struct {
	k    *sim.Kernel
	m    *mesh.Mesh
	node int // mesh address
	fs   *ufs.FS

	dispatch sim.Time // CPU cost to decode and dispatch one request
	cpuFree  sim.Time // server CPU clock

	shed        ShedPolicy
	consecFault int      // disk faults since the last success
	shedUntil   sim.Time // shedding while now < shedUntil

	// Measurements.
	Requests      int64
	BytesServed   int64
	Faults        int64           // requests that failed at the disk layer
	Shed          int64           // requests fast-failed while the breaker was open
	PrefetchHints int64           // server-side cache-warming hints received
	Service       stats.Histogram // request residency at this node, seconds
}

// New creates a server for mesh address node over fs.
func New(k *sim.Kernel, m *mesh.Mesh, node int, fs *ufs.FS, dispatch sim.Time) *Server {
	return &Server{k: k, m: m, node: node, fs: fs, dispatch: dispatch}
}

// Node reports the server's mesh address.
func (s *Server) Node() int { return s.node }

// FS exposes the node's local file system (the PFS layer creates the
// stripe files through it).
func (s *Server) FS() *ufs.FS { return s.fs }

// SetShedPolicy installs (or with the zero policy removes) the node's
// fault breaker.
func (s *Server) SetShedPolicy(p ShedPolicy) { s.shed = p }

// Shedding reports whether the breaker is open at time now.
func (s *Server) Shedding(now sim.Time) bool { return now < s.shedUntil }

// noteDisk feeds the breaker one disk-layer outcome: a success closes
// it, Threshold consecutive faults open it for Cooldown.
func (s *Server) noteDisk(failed bool) {
	if !failed {
		s.consecFault = 0
		return
	}
	s.consecFault++
	if s.shed.Enabled() && s.consecFault >= s.shed.Threshold {
		s.shedUntil = s.k.Now() + s.shed.Cooldown
		s.consecFault = 0
	}
}

// maybeShed fast-fails the request with ErrOverloaded while the breaker
// is open. Must run on the server CPU (inside onCPU).
func (s *Server) maybeShed(from int, reply func(error)) bool {
	if !s.Shedding(s.k.Now()) {
		return false
	}
	s.Shed++
	s.m.Send(s.node, from, 64, func() { reply(ErrOverloaded) })
	return true
}

// Read serves a stripe read: n bytes at off of local file name, on behalf
// of compute node from. reply runs on the requester when the data has
// been delivered (or immediately-ish with an error for a bad request).
// Must be called in simulation context at this node — normally from a
// mesh delivery callback.
func (s *Server) Read(from int, name string, off, n int64, fastPath bool, reply func(error)) {
	s.Requests++
	start := s.k.Now()
	s.onCPU(func() {
		if s.maybeShed(from, reply) {
			return
		}
		sig, err := s.fs.Read(name, off, n, ufs.ReadOptions{FastPath: fastPath})
		if err != nil {
			// Error replies are small control messages.
			s.m.Send(s.node, from, 64, func() { reply(err) })
			return
		}
		sig.OnFire(func(ioErr error) {
			s.noteDisk(ioErr != nil)
			if ioErr != nil {
				s.Faults++
				s.m.Send(s.node, from, 64, func() { reply(ioErr) })
				return
			}
			s.BytesServed += n
			s.m.Send(s.node, from, n, func() {
				s.Service.ObserveTime(s.k.Now() - start)
				reply(nil)
			})
		})
	})
}

// Prefetch warms the node's buffer cache with [off, off+n) of local file
// name without shipping data anywhere: the server-side prefetch
// placement. Fire-and-forget — errors on a speculative read are dropped.
func (s *Server) Prefetch(name string, off, n int64) {
	s.PrefetchHints++
	s.onCPU(func() {
		if s.Shedding(s.k.Now()) {
			s.Shed++
			return // no reply to drop: hints are one-way
		}
		sig, err := s.fs.Read(name, off, n, ufs.ReadOptions{FastPath: false})
		if err != nil {
			return
		}
		// Even a speculative read's outcome is evidence about disk health.
		sig.OnFire(func(ioErr error) { s.noteDisk(ioErr != nil) })
	})
}

// Write serves a stripe write of n bytes at off of local file name. The
// data travelled with the request (the caller charged the mesh for it);
// the reply is a small acknowledgement.
func (s *Server) Write(from int, name string, off, n int64, reply func(error)) {
	s.Requests++
	start := s.k.Now()
	s.onCPU(func() {
		if s.maybeShed(from, reply) {
			return
		}
		sig, err := s.fs.Write(name, off, n)
		if err != nil {
			s.m.Send(s.node, from, 64, func() { reply(err) })
			return
		}
		sig.OnFire(func(ioErr error) {
			s.noteDisk(ioErr != nil)
			if ioErr != nil {
				s.Faults++
				s.m.Send(s.node, from, 64, func() { reply(ioErr) })
				return
			}
			s.BytesServed += n
			s.m.Send(s.node, from, 64, func() {
				s.Service.ObserveTime(s.k.Now() - start)
				reply(nil)
			})
		})
	})
}

// onCPU serializes fn behind the server's dispatch CPU clock.
func (s *Server) onCPU(fn func()) {
	start := s.k.Now()
	if s.cpuFree > start {
		start = s.cpuFree
	}
	s.cpuFree = start + s.dispatch
	s.k.At(s.cpuFree, fn)
}
