// Package ionode models the Paragon I/O node daemon: the server half of
// the PFS. Each I/O node owns a UFS over a RAID array and serves stripe
// requests arriving over the mesh, replying with the data (reads) or an
// acknowledgement (writes).
//
// Request handling is event-driven: decode/dispatch costs CPU serialized
// on the node's processor, the file system and disk layers below provide
// the queuing, and the reply rides the mesh back to the requester.
package ionode

import (
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/ufs"
)

// Server is one I/O node daemon.
type Server struct {
	k    *sim.Kernel
	m    *mesh.Mesh
	node int // mesh address
	fs   *ufs.FS

	dispatch sim.Time // CPU cost to decode and dispatch one request
	cpuFree  sim.Time // server CPU clock

	// Measurements.
	Requests      int64
	BytesServed   int64
	Faults        int64           // requests that failed at the disk layer
	PrefetchHints int64           // server-side cache-warming hints received
	Service       stats.Histogram // request residency at this node, seconds
}

// New creates a server for mesh address node over fs.
func New(k *sim.Kernel, m *mesh.Mesh, node int, fs *ufs.FS, dispatch sim.Time) *Server {
	return &Server{k: k, m: m, node: node, fs: fs, dispatch: dispatch}
}

// Node reports the server's mesh address.
func (s *Server) Node() int { return s.node }

// FS exposes the node's local file system (the PFS layer creates the
// stripe files through it).
func (s *Server) FS() *ufs.FS { return s.fs }

// Read serves a stripe read: n bytes at off of local file name, on behalf
// of compute node from. reply runs on the requester when the data has
// been delivered (or immediately-ish with an error for a bad request).
// Must be called in simulation context at this node — normally from a
// mesh delivery callback.
func (s *Server) Read(from int, name string, off, n int64, fastPath bool, reply func(error)) {
	s.Requests++
	start := s.k.Now()
	s.onCPU(func() {
		sig, err := s.fs.Read(name, off, n, ufs.ReadOptions{FastPath: fastPath})
		if err != nil {
			// Error replies are small control messages.
			s.m.Send(s.node, from, 64, func() { reply(err) })
			return
		}
		sig.OnFire(func(ioErr error) {
			if ioErr != nil {
				s.Faults++
				s.m.Send(s.node, from, 64, func() { reply(ioErr) })
				return
			}
			s.BytesServed += n
			s.m.Send(s.node, from, n, func() {
				s.Service.ObserveTime(s.k.Now() - start)
				reply(nil)
			})
		})
	})
}

// Prefetch warms the node's buffer cache with [off, off+n) of local file
// name without shipping data anywhere: the server-side prefetch
// placement. Fire-and-forget — errors on a speculative read are dropped.
func (s *Server) Prefetch(name string, off, n int64) {
	s.PrefetchHints++
	s.onCPU(func() {
		sig, err := s.fs.Read(name, off, n, ufs.ReadOptions{FastPath: false})
		if err != nil {
			return
		}
		sig.OnFire(func(error) {})
	})
}

// Write serves a stripe write of n bytes at off of local file name. The
// data travelled with the request (the caller charged the mesh for it);
// the reply is a small acknowledgement.
func (s *Server) Write(from int, name string, off, n int64, reply func(error)) {
	s.Requests++
	start := s.k.Now()
	s.onCPU(func() {
		sig, err := s.fs.Write(name, off, n)
		if err != nil {
			s.m.Send(s.node, from, 64, func() { reply(err) })
			return
		}
		sig.OnFire(func(ioErr error) {
			if ioErr != nil {
				s.Faults++
				s.m.Send(s.node, from, 64, func() { reply(ioErr) })
				return
			}
			s.BytesServed += n
			s.m.Send(s.node, from, 64, func() {
				s.Service.ObserveTime(s.k.Now() - start)
				reply(nil)
			})
		})
	})
}

// onCPU serializes fn behind the server's dispatch CPU clock.
func (s *Server) onCPU(fn func()) {
	start := s.k.Now()
	if s.cpuFree > start {
		start = s.cpuFree
	}
	s.cpuFree = start + s.dispatch
	s.k.At(s.cpuFree, fn)
}
