// Fair queueing and per-tenant admission for the I/O node: the QoS layer
// that keeps one tenant's burst from starving everyone else when the node
// is overloaded.
//
// The scheduler is self-clocked weighted fair queueing (SCFQ): every
// request gets an integer finish tag
//
//	tag = max(V, lastFinish[tenant]) + n*fairScale/weight(tenant)
//
// where V is the virtual time (the tag of the most recently dispatched
// request) and n the request's byte length. Dispatch order is the strict
// total order (tag, tenant, seq) — seq is the per-server arrival sequence
// number — so the schedule is a pure function of the arrival schedule,
// independent of engine, shard count, or map iteration. Up to Slots
// requests are in service at the disk concurrently; each completion
// dispatches the next queued request.
//
// Admission is a per-tenant token bucket: rate RatePerWeight*weight(t)
// bytes of simulated time per second, burst BurstBytes*weight(t). A
// request that finds the bucket dry is shed with ErrThrottled — per
// tenant, by weight, never by arrival luck.
//
// The FIFO flag turns the same machinery into the deliberately unfair
// twin for the simcheck fairness oracle: tags become arrival sequence
// numbers (pure FIFO dispatch) and admission is disabled, while all the
// fairness instrumentation keeps running so the twin is scored by the
// exact metric the real scheduler is.
package ionode

import (
	"errors"

	"repro/internal/sim"
)

// ErrThrottled is the control reply for a request that found its
// tenant's token bucket dry: the tenant is over its admitted rate and
// the excess is shed at admission instead of queueing behind everyone.
var ErrThrottled = errors.New("ionode: tenant over admitted rate")

// fairScale is the fixed-point scale of SCFQ tags: one byte of service
// at weight 1 advances a tenant's finish tag by fairScale. 2^20 keeps
// integer division exact enough that tenants at different weights
// interleave smoothly while total tags stay far below overflow.
const fairScale = 1 << 20

// FairPolicy configures the per-tenant fair scheduler on a server. The
// zero value disables it entirely: requests go straight to the disk in
// arrival order, byte-identical to the pre-QoS server.
type FairPolicy struct {
	Tenants int // number of tenants (0 disables the scheduler)

	// Weights are cycled over tenants: weight(t) = Weights[t%len].
	// Empty means every tenant has weight 1. Cycling keeps the config
	// (and its JSON mirror) small with thousands of tenants.
	Weights []int

	// Slots is how many requests may be in service at the disk at once;
	// the rest wait in the fair queue. <=0 means 1.
	Slots int

	// RatePerWeight and BurstBytes set the per-tenant token bucket:
	// tenant t refills at RatePerWeight*weight(t) bytes per simulated
	// second and holds at most BurstBytes*weight(t). RatePerWeight <= 0
	// disables admission (every request is queued).
	RatePerWeight int64
	BurstBytes    int64

	// FIFO selects the unfair twin: dispatch in arrival order, no
	// admission, same instrumentation.
	FIFO bool
}

// Enabled reports whether the policy arms the scheduler.
func (p FairPolicy) Enabled() bool { return p.Tenants > 0 }

// slots returns the effective concurrency.
func (p FairPolicy) slots() int {
	if p.Slots <= 0 {
		return 1
	}
	return p.Slots
}

// Weight returns tenant t's weight under the cycled Weights list.
func (p FairPolicy) Weight(t int) int {
	if len(p.Weights) == 0 {
		return 1
	}
	w := p.Weights[t%len(p.Weights)]
	if w <= 0 {
		return 1
	}
	return w
}

// fairQueue is the per-server scheduler state. It is touched only from
// events on the server's own kernel, so it needs no locking and stays
// deterministic on both engines.
type fairQueue struct {
	pol     FairPolicy
	weights []int // weight(t), precomputed

	heap      []*srvOp // min-heap by (tag, tenant, seq)
	seq       uint64   // arrival sequence number
	v         uint64   // virtual time: tag of the last dispatched request
	lastF     []uint64 // per-tenant last finish tag
	pending   []int    // per-tenant queued (not yet dispatched) count
	inService int      // dispatched, disk outcome not yet seen

	tokens   []int64    // token-bucket fill, bytes
	lastFill []sim.Time // last refill instant

	// Fairness instrumentation, all O(1) per dispatch. norm[t] is the
	// normalized service tenant t has been credited (cost = n*fairScale/
	// weight); maxNorm its running max over tenants; maxLag the largest
	// (maxNorm - norm[t]) observed at the instant one of t's requests
	// was dispatched — how far behind the front-runner a backlogged
	// tenant ever fell. maxWeighted is the largest single-request cost,
	// the natural unit of the fairness bound. A tenant re-entering from
	// idle has norm[t] raised to maxNorm first: time with no demand is
	// not lag.
	norm        []uint64
	maxNorm     uint64
	maxLag      uint64
	maxWeighted uint64
	minTagViol  int64 // dispatches whose tag was below virtual time (never, if the heap is correct)
}

func newFairQueue(p FairPolicy) *fairQueue {
	q := &fairQueue{
		pol:      p,
		weights:  make([]int, p.Tenants),
		lastF:    make([]uint64, p.Tenants),
		pending:  make([]int, p.Tenants),
		tokens:   make([]int64, p.Tenants),
		lastFill: make([]sim.Time, p.Tenants),
		norm:     make([]uint64, p.Tenants),
	}
	for t := 0; t < p.Tenants; t++ {
		q.weights[t] = p.Weight(t)
		q.tokens[t] = p.BurstBytes * int64(q.weights[t]) // buckets start full
	}
	return q
}

// clampTenant folds out-of-range tenant ids (a caller that never called
// SetTenant) onto tenant 0 so the scheduler stays memory-safe.
func (q *fairQueue) clampTenant(t int) int {
	if t < 0 || t >= len(q.weights) {
		return 0
	}
	return t
}

// admitBytes runs the token bucket for one n-byte request at time now.
// Refill is lazy and split to avoid overflow on long idle gaps.
func (q *fairQueue) admitBytes(t int, n int64, now sim.Time) bool {
	if q.pol.FIFO || q.pol.RatePerWeight <= 0 {
		return true
	}
	rate := q.pol.RatePerWeight * int64(q.weights[t])
	dt := now - q.lastFill[t]
	q.lastFill[t] = now
	add := int64(dt/sim.Second)*rate + int64(dt%sim.Second)*rate/int64(sim.Second)
	burst := q.pol.BurstBytes * int64(q.weights[t])
	q.tokens[t] += add
	if q.tokens[t] > burst {
		q.tokens[t] = burst
	}
	if q.tokens[t] < n {
		return false
	}
	q.tokens[t] -= n
	return true
}

// push tags op and enqueues it.
func (q *fairQueue) push(op *srvOp) {
	t := q.clampTenant(op.tenant)
	op.tenant = t
	cost := uint64(op.n) * fairScale / uint64(q.weights[t])
	if cost > q.maxWeighted {
		q.maxWeighted = cost
	}
	if q.pending[t] == 0 && q.norm[t] < q.maxNorm {
		// Idle tenant re-entering the backlog: service it missed while
		// it had nothing queued is not unfairness.
		q.norm[t] = q.maxNorm
	}
	q.seq++
	op.fseq = q.seq
	if q.pol.FIFO {
		op.tag = q.seq
	} else {
		start := q.v
		if q.lastF[t] > start {
			start = q.lastF[t]
		}
		op.tag = start + cost
		q.lastF[t] = op.tag
	}
	op.queued = true
	q.pending[t]++
	q.heapPush(op)
}

// pop dispatches the minimum-(tag, tenant, seq) request, advances the
// virtual time, and samples the dispatching tenant's lag.
func (q *fairQueue) pop() *srvOp {
	if len(q.heap) == 0 {
		return nil
	}
	op := q.heapPop()
	if op.tag < q.v {
		q.minTagViol++
	} else {
		q.v = op.tag
	}
	t := op.tenant
	q.pending[t]--
	if lag := q.maxNorm - q.norm[t]; lag > q.maxLag {
		q.maxLag = lag
	}
	q.norm[t] += uint64(op.n) * fairScale / uint64(q.weights[t])
	if q.norm[t] > q.maxNorm {
		q.maxNorm = q.norm[t]
	}
	return op
}

// drain empties the queue without crediting service — the crash path.
// Scheduling state (virtual time, finish tags, norms) is left alone;
// tags only ever grow, so post-restart arrivals order correctly.
func (q *fairQueue) drain(each func(*srvOp)) int {
	n := len(q.heap)
	for _, op := range q.heap {
		q.pending[op.tenant]--
		each(op)
	}
	q.heap = q.heap[:0]
	q.inService = 0
	return n
}

func fairLess(a, b *srvOp) bool {
	if a.tag != b.tag {
		return a.tag < b.tag
	}
	if a.tenant != b.tenant {
		return a.tenant < b.tenant
	}
	return a.fseq < b.fseq
}

func (q *fairQueue) heapPush(op *srvOp) {
	q.heap = append(q.heap, op)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !fairLess(q.heap[i], q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *fairQueue) heapPop() *srvOp {
	h := q.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	q.heap = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && fairLess(q.heap[l], q.heap[small]) {
			small = l
		}
		if r < last && fairLess(q.heap[r], q.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		q.heap[i], q.heap[small] = q.heap[small], q.heap[i]
		i = small
	}
	return top
}

// FairSnapshot is the scheduler's oracle-facing state: everything the
// simcheck starvation-freedom and fairness oracles need, read after the
// run has drained.
type FairSnapshot struct {
	Slots            int      // effective service concurrency
	QueueLen         int      // requests still queued (drain check: 0)
	InService        int      // requests still at the disk (drain check: 0)
	MaxLag           uint64   // worst backlogged normalized-service lag
	MaxWeightedCost  uint64   // largest single-request normalized cost
	MinTagViolations int64    // dispatches below virtual time (invariant: 0)
	Norm             []uint64 // per-tenant normalized service credited
}

// FairSnapshot returns the scheduler's instrumentation, or nil when no
// fair policy is armed.
func (s *Server) FairSnapshot() *FairSnapshot {
	if s.fq == nil {
		return nil
	}
	q := s.fq
	return &FairSnapshot{
		Slots:            q.pol.slots(),
		QueueLen:         len(q.heap),
		InService:        q.inService,
		MaxLag:           q.maxLag,
		MaxWeightedCost:  q.maxWeighted,
		MinTagViolations: q.minTagViol,
		Norm:             append([]uint64(nil), q.norm...),
	}
}

// SetFairPolicy installs (or with the zero policy removes) the node's
// fair scheduler and arms the per-tenant counters. Must be called before
// the run starts; the machine layer does it at build time.
func (s *Server) SetFairPolicy(p FairPolicy) {
	if !p.Enabled() {
		s.fair = FairPolicy{}
		s.fq = nil
		s.TenantArrived, s.TenantServed, s.TenantShed = nil, nil, nil
		s.TenantFaulted, s.TenantDropped, s.TenantBytes = nil, nil, nil
		return
	}
	s.fair = p
	s.fq = newFairQueue(p)
	s.TenantArrived = make([]int64, p.Tenants)
	s.TenantServed = make([]int64, p.Tenants)
	s.TenantShed = make([]int64, p.Tenants)
	s.TenantFaulted = make([]int64, p.Tenants)
	s.TenantDropped = make([]int64, p.Tenants)
	s.TenantBytes = make([]int64, p.Tenants)
}

// pumpFair dispatches queued requests into free service slots. A
// synchronous failure inside startDisk releases the slot before
// returning, so the loop keeps pumping until the slots are full or the
// queue is empty.
func (s *Server) pumpFair() {
	if s.fq == nil {
		return
	}
	slots := s.fair.slots()
	for s.fq.inService < slots {
		op := s.fq.pop()
		if op == nil {
			return
		}
		s.fq.inService++
		s.startDisk(op)
	}
}
