package ionode

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// benchChain drives one request at a time through the service path: each
// reply immediately issues the next read, so the server stays in steady
// state with exactly one outstanding operation.
type benchChain struct {
	s    *Server
	h    ufs.Handle
	left int
	err  error
}

func benchChainReply(a any, err error) {
	c := a.(*benchChain)
	if err != nil && c.err == nil {
		c.err = err
	}
	c.left--
	if c.left > 0 {
		c.s.ReadCall(0, 0, c.h, int64(c.left%64)*(8<<10), 8<<10, true, benchChainReply, c)
	}
}

// BenchmarkServicePath pins the I/O node request service path — admission,
// CPU charge, the ufs fast-path read, disk service, and the mesh reply —
// at 0 allocs/op. A warm-up chain fills the operation pools and histogram
// storage first. detgate runs this with -benchtime=100x as part of the
// allocation gate.
func BenchmarkServicePath(b *testing.B) {
	k := sim.NewKernel()
	m := mesh.New(k, mesh.Paragon(2, 2))
	a := disk.NewArray(k, "raid", 4, disk.Seagate94601(), disk.SCAN, 500*sim.Microsecond)
	cfg := ufs.DefaultConfig()
	cfg.Fragmentation = 0
	fs := ufs.New(k, a, cfg)
	if err := fs.Create("stripe", 8<<20); err != nil {
		b.Fatal(err)
	}
	h, err := fs.Lookup("stripe")
	if err != nil {
		b.Fatal(err)
	}
	s := New(k, m, 3, fs, 300*sim.Microsecond)
	run := func(reads int) {
		c := &benchChain{s: s, h: h, left: reads}
		c.s.ReadCall(0, 0, c.h, 0, 8<<10, true, benchChainReply, c)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		if c.err != nil {
			b.Fatal(c.err)
		}
	}
	run(400) // warm the pools and sample storage
	b.ReportAllocs()
	b.ResetTimer()
	run(b.N)
}
