package ionode

import (
	"bytes"
	"fmt"
	"testing"
)

// fairReplay decodes data into a fair-queue policy plus an interleaved
// push/pop schedule, drives a standalone fairQueue through it, and
// returns the dispatch order as a printable transcript. The transcript
// is everything observable about the scheduler: (tenant, seq, tag) per
// dispatch plus the end-of-run instrumentation.
func fairReplay(data []byte) string {
	if len(data) < 4 {
		return ""
	}
	pol := FairPolicy{
		Tenants: 1 + int(data[0]%8),
		Slots:   1 + int(data[1]%4),
		FIFO:    data[2]&1 == 1,
	}
	// Weights from the header byte: empty (all 1) or a short cycle.
	switch data[2] % 3 {
	case 1:
		pol.Weights = []int{4, 2, 1}
	case 2:
		pol.Weights = []int{1 + int(data[3]%8), 1}
	}
	q := newFairQueue(pol)

	var out bytes.Buffer
	queued := 0
	for i := 4; i+1 < len(data); i += 2 {
		b, c := data[i], data[i+1]
		if b%4 == 0 && queued > 0 {
			op := q.pop()
			if op == nil {
				fmt.Fprintf(&out, "pop nil with %d queued\n", queued)
				continue
			}
			queued--
			fmt.Fprintf(&out, "pop t=%d seq=%d tag=%d\n", op.tenant, op.fseq, op.tag)
			continue
		}
		op := &srvOp{
			tenant: int(b) % pol.Tenants,
			n:      1 + int64(c)<<8,
		}
		q.push(op)
		queued++
		fmt.Fprintf(&out, "push t=%d seq=%d tag=%d\n", op.tenant, op.fseq, op.tag)
	}
	for {
		op := q.pop()
		if op == nil {
			break
		}
		queued--
		fmt.Fprintf(&out, "drain t=%d seq=%d tag=%d\n", op.tenant, op.fseq, op.tag)
	}
	fmt.Fprintf(&out, "end queued=%d v=%d viol=%d maxlag=%d maxcost=%d norm=%v\n",
		queued, q.v, q.minTagViol, q.maxLag, q.maxWeighted, q.norm)
	return out.String()
}

// FuzzFairOrder proves the WFQ dispatch order is a pure function of the
// arrival schedule: replaying any byte-derived schedule twice yields an
// identical transcript, every queued request is eventually dispatched,
// and no dispatch ever goes below the virtual time (tags are monotone).
func FuzzFairOrder(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 200, 9, 100, 0, 0, 17, 50, 0, 0})
	f.Add([]byte{3, 1, 1, 5, 7, 255, 7, 255, 7, 1, 0, 0, 2, 9})
	f.Add([]byte{7, 2, 2, 9, 1, 1, 2, 2, 3, 3, 4, 4, 0, 0, 5, 5, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := fairReplay(data)
		b := fairReplay(data)
		if a != b {
			t.Fatalf("dispatch order is not a pure function of the schedule:\n--- first\n%s--- second\n%s", a, b)
		}
		if bytes.Contains([]byte(a), []byte("pop nil")) {
			t.Fatalf("pop returned nil with requests queued:\n%s", a)
		}
		if bytes.Contains([]byte(a), []byte("viol=")) && !bytes.Contains([]byte(a), []byte(" viol=0 ")) {
			t.Fatalf("min-tag invariant violated:\n%s", a)
		}
		if a != "" && !bytes.Contains([]byte(a), []byte("end queued=0 ")) {
			t.Fatalf("requests left queued after full drain (starvation):\n%s", a)
		}
	})
}
