package ionode

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// TestCrashDropsInFlightAndRestartServes: work in flight when the node
// dies must produce no reply and no accounting; a request arriving while
// down is swallowed; after Restart the node serves again, cold.
func TestCrashDropsInFlightAndRestartServes(t *testing.T) {
	k, _, s := rig(t)
	inFlightReplied := false
	duringDownReplied := false
	var afterErr error = errors.New("never replied")
	k.At(0, func() {
		s.Read(0, "stripe", 0, 64<<10, true, func(error) { inFlightReplied = true })
	})
	k.At(sim.Millisecond, func() { s.Crash(50 * sim.Millisecond) })
	k.At(10*sim.Millisecond, func() {
		if !s.Down() {
			t.Error("Down() = false mid-crash")
		}
		if s.DownUntil() != 50*sim.Millisecond {
			t.Errorf("DownUntil = %v, want 50ms", s.DownUntil())
		}
		s.Read(0, "stripe", 0, 64<<10, true, func(error) { duringDownReplied = true })
	})
	k.At(50*sim.Millisecond, func() { s.Restart() })
	k.At(60*sim.Millisecond, func() {
		s.Read(0, "stripe", 0, 64<<10, true, func(err error) { afterErr = err })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if inFlightReplied {
		t.Error("in-flight request replied across a crash")
	}
	if duringDownReplied {
		t.Error("request to a down node replied")
	}
	if afterErr != nil {
		t.Errorf("read after restart: %v", afterErr)
	}
	if s.Crashes != 1 || s.Restarts != 1 {
		t.Errorf("Crashes=%d Restarts=%d, want 1/1", s.Crashes, s.Restarts)
	}
	// The arrival drop and the in-flight drop (at disk completion).
	if s.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", s.Dropped)
	}
	// Only the post-restart read counts as served bytes.
	if s.BytesServed != 64<<10 {
		t.Errorf("BytesServed = %d, want %d", s.BytesServed, 64<<10)
	}
}

// tripBreaker arms the shed policy, makes every disk request fail, and
// runs two reads far enough apart to complete, tripping the breaker.
// Returns the collected reply errors (appended as replies arrive).
func tripBreaker(t *testing.T, k *sim.Kernel, s *Server) *[]error {
	t.Helper()
	s.SetShedPolicy(ShedPolicy{Threshold: 2, Cooldown: 100 * sim.Millisecond})
	for _, d := range s.FS().Array().Members() {
		d.InjectFaults(1, 1)
	}
	errs := &[]error{}
	read := func(at sim.Time) {
		k.At(at, func() {
			s.Read(0, "stripe", 0, 64<<10, true, func(err error) { *errs = append(*errs, err) })
		})
	}
	read(0)
	read(200 * sim.Millisecond) // sequential: consecutive faults accumulate
	return errs
}

// TestBreakerHalfOpenProbeSuccessCloses: after the cooldown exactly one
// probe is admitted; while it is in flight everything else is shed; its
// success closes the breaker and traffic flows again.
func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	k, _, s := rig(t)
	errs := tripBreaker(t, k, s)
	var shedErr, probeErr, secondErr, afterErr error
	shedErr = errors.New("no reply")
	probeErr = errors.New("no reply")
	secondErr = errors.New("no reply")
	afterErr = errors.New("no reply")
	// Inside the cooldown (breaker opened ≈220 ms, deadline ≈320 ms).
	k.At(250*sim.Millisecond, func() {
		s.Read(0, "stripe", 0, 64<<10, true, func(err error) { shedErr = err })
	})
	// Heal the disks so the probe can succeed.
	k.At(300*sim.Millisecond, func() {
		for _, d := range s.FS().Array().Members() {
			d.InjectFaults(0, 0)
		}
	})
	// Past the deadline: this request is the probe...
	k.At(500*sim.Millisecond, func() {
		s.Read(0, "stripe", 0, 64<<10, true, func(err error) { probeErr = err })
	})
	// ...and while it is in flight the breaker stays shut to everyone else.
	k.At(501*sim.Millisecond, func() {
		if s.breaker != bHalfOpen {
			t.Errorf("breaker = %v at probe time, want half-open", s.breaker)
		}
		s.Read(0, "stripe", 0, 64<<10, true, func(err error) { secondErr = err })
	})
	k.At(800*sim.Millisecond, func() {
		if s.breaker != bClosed {
			t.Errorf("breaker = %v after successful probe, want closed", s.breaker)
		}
		s.Read(0, "stripe", 0, 64<<10, true, func(err error) { afterErr = err })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, e := range *errs {
		if e == nil || errors.Is(e, ErrOverloaded) {
			t.Errorf("tripping read %d error = %v, want a disk error", i, e)
		}
	}
	if !errors.Is(shedErr, ErrOverloaded) {
		t.Errorf("in-cooldown read error = %v, want ErrOverloaded", shedErr)
	}
	if probeErr != nil {
		t.Errorf("probe read error = %v, want success", probeErr)
	}
	if !errors.Is(secondErr, ErrOverloaded) {
		t.Errorf("read during probe error = %v, want ErrOverloaded", secondErr)
	}
	if afterErr != nil {
		t.Errorf("read after close error = %v, want success", afterErr)
	}
	if s.Shed != 2 {
		t.Errorf("Shed = %d, want 2", s.Shed)
	}
}

// TestBreakerHalfOpenProbeFailureReopens: a failed probe re-opens the
// breaker for a fresh cooldown — one request per cooldown hits the disk,
// everything else fast-fails.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	k, _, s := rig(t)
	tripBreaker(t, k, s) // disks stay faulty: the probe will fail too
	var probeErr, shedErr error
	k.At(500*sim.Millisecond, func() {
		s.Read(0, "stripe", 0, 64<<10, true, func(err error) { probeErr = err })
	})
	// The probe fails ≈520 ms, re-opening until ≈620 ms.
	k.At(560*sim.Millisecond, func() {
		s.Read(0, "stripe", 0, 64<<10, true, func(err error) { shedErr = err })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if probeErr == nil || errors.Is(probeErr, ErrOverloaded) {
		t.Errorf("probe error = %v, want a disk error", probeErr)
	}
	if !errors.Is(shedErr, ErrOverloaded) {
		t.Errorf("post-probe read error = %v, want ErrOverloaded", shedErr)
	}
	if s.breaker != bOpen {
		t.Errorf("breaker = %v after failed probe, want open", s.breaker)
	}
}

// TestBreakerProbeAbortReleasesSlot: a probe that dies before reaching
// the disk (bad request) must release the half-open slot so the next
// request becomes the new probe instead of deadlocking the breaker.
func TestBreakerProbeAbortReleasesSlot(t *testing.T) {
	k, _, s := rig(t)
	tripBreaker(t, k, s)
	k.At(300*sim.Millisecond, func() {
		for _, d := range s.FS().Array().Members() {
			d.InjectFaults(0, 0)
		}
	})
	var badErr, retryErr error
	retryErr = errors.New("no reply")
	// The probe slot goes to a request for a missing file: no disk verdict.
	k.At(500*sim.Millisecond, func() {
		s.Read(0, "ghost", 0, 64<<10, true, func(err error) { badErr = err })
	})
	// The slot must be free again: this read probes and closes the breaker.
	k.At(600*sim.Millisecond, func() {
		s.Read(0, "stripe", 0, 64<<10, true, func(err error) { retryErr = err })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if badErr == nil || errors.Is(badErr, ErrOverloaded) {
		t.Errorf("bad probe error = %v, want a file error", badErr)
	}
	if retryErr != nil {
		t.Errorf("follow-up probe error = %v, want success", retryErr)
	}
	if s.breaker != bClosed {
		t.Errorf("breaker = %v, want closed after recovered probe", s.breaker)
	}
}

// TestCrashClosesBreaker: a restart comes up with a closed breaker — the
// new incarnation has no evidence against its disk.
func TestCrashClosesBreaker(t *testing.T) {
	k, _, s := rig(t)
	tripBreaker(t, k, s)
	k.At(250*sim.Millisecond, func() {
		if s.breaker != bOpen {
			t.Errorf("breaker = %v before crash, want open", s.breaker)
		}
		s.Crash(300 * sim.Millisecond)
	})
	k.At(300*sim.Millisecond, func() {
		s.Restart()
		if s.breaker != bClosed {
			t.Errorf("breaker = %v after restart, want closed", s.breaker)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
