package twophase

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func build(t *testing.T, fileSize int64) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 4
	cfg.IONodes = 4
	cfg.UFS.Fragmentation = 0
	m := machine.Build(cfg)
	if err := m.FS.Create("f", fileSize); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReadCompletes(t *testing.T) {
	m := build(t, 8<<20)
	res, err := Read(m, "f", 16<<10, 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 8<<20 {
		t.Fatalf("TotalBytes = %d", res.TotalBytes)
	}
	if !(0 < res.Phase1 && res.Phase1 <= res.Elapsed) {
		t.Fatalf("phase1 %v, elapsed %v", res.Phase1, res.Elapsed)
	}
	// Every byte came off the I/O nodes exactly once.
	var served int64
	for _, b := range m.IONodeBytes() {
		served += b
	}
	if served != 8<<20 {
		t.Fatalf("I/O nodes served %d", served)
	}
	// The exchange moved 3/4 of the data over the mesh.
	if m.Mesh.Bytes < 6<<20 {
		t.Fatalf("mesh moved %d bytes, want ≥ 6MiB of redistribution", m.Mesh.Bytes)
	}
}

func TestValidation(t *testing.T) {
	m := build(t, 8<<20)
	if _, err := Read(m, "ghost", 16<<10, 4, DefaultConfig()); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := Read(m, "f", 16<<10, 9, DefaultConfig()); err == nil {
		t.Fatal("too many parties accepted")
	}
	if _, err := Read(m, "f", 3<<10, 4, DefaultConfig()); err == nil {
		t.Fatal("non-divisible record size accepted")
	}
}

func TestBeatsDirectSmallStridedReads(t *testing.T) {
	// The motivating case: 4 KB interleaved records. Direct access makes
	// thousands of sub-block strided requests; two-phase reads 1 MB
	// chunks and redistributes.
	const fileSize, record = 8 << 20, 4 << 10

	direct, err := workload.Run(func() machine.Config {
		cfg := machine.DefaultConfig()
		cfg.ComputeNodes = 4
		cfg.IONodes = 4
		cfg.UFS.Fragmentation = 0
		return cfg
	}(), workload.Spec{
		FileSize:    fileSize,
		RequestSize: record,
		Mode:        pfs.MRecord,
	})
	if err != nil {
		t.Fatal(err)
	}

	m := build(t, fileSize)
	tp, err := Read(m, "f", record, 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tp.Elapsed >= direct.Elapsed/2 {
		t.Fatalf("two-phase %v not at least 2x faster than direct %v for 4KB records",
			tp.Elapsed, direct.Elapsed)
	}
}

func TestDeterministic(t *testing.T) {
	once := func() sim.Time {
		m := build(t, 4<<20)
		res, err := Read(m, "f", 16<<10, 4, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if a, b := once(), once(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
