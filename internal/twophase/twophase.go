// Package twophase implements the two-phase collective read strategy of
// del Rosario, Bordawekar and Choudhary (reference [1] of the paper):
// decouple the storage distribution from the computation's data
// distribution. Phase one reads the file in large, stripe-conforming
// contiguous chunks — each node takes the 1/P slice of the file it is
// "closest" to; phase two redistributes the records over the mesh to
// whoever actually owns them.
//
// When the target distribution would otherwise generate many small
// strided requests (small interleaved records), two-phase trades those
// for big sequential I/O plus an all-to-all message exchange — usually a
// large win, which is the comparison ExtTwoPhase quantifies against both
// the direct read and the paper's prefetching.
package twophase

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Config tunes the strategy.
type Config struct {
	// ChunkSize is the phase-one I/O request size (large, stripe
	// aligned). Default 1 MB.
	ChunkSize int64
	// MemBandwidth prices the local copy of records already in place,
	// and the reassembly of received records. Default 45 MB/s.
	MemBandwidth float64
}

// DefaultConfig returns the usual parameters.
func DefaultConfig() Config {
	return Config{ChunkSize: 1 << 20, MemBandwidth: 45e6}
}

// Result reports a collective two-phase read.
type Result struct {
	Elapsed    sim.Time // completion of the slowest node
	Phase1     sim.Time // when the last node finished its contiguous read
	TotalBytes int64
}

// Read performs a collective two-phase read of the whole PFS file by
// parties compute nodes, targeting an interleaved distribution of
// recordSize records (record j belongs to node j mod parties). It builds
// the node processes itself and runs the machine's kernel until the
// exchange completes.
func Read(m *machine.Machine, file string, recordSize int64, parties int, cfg Config) (*Result, error) {
	size, err := m.FS.Size(file)
	if err != nil {
		return nil, err
	}
	if parties <= 0 || parties > len(m.Compute) {
		return nil, fmt.Errorf("twophase: %d parties on a %d-node machine", parties, len(m.Compute))
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 1 << 20
	}
	if cfg.MemBandwidth <= 0 {
		cfg.MemBandwidth = 45e6
	}
	share := size / int64(parties)
	if share*int64(parties) != size || share%recordSize != 0 {
		return nil, fmt.Errorf("twophase: size %d not divisible into %d record-aligned shares", size, parties)
	}

	res := &Result{TotalBytes: size}
	k := m.K
	barrier := sim.NewBarrier(k, parties)
	// Per-node byte credits for the receive side of the exchange.
	recv := make([]*sim.Semaphore, parties)
	for i := range recv {
		recv[i] = sim.NewSemaphore(k, 0)
	}
	errs := make([]error, parties)
	var phase1End, end sim.Time

	for rank := 0; rank < parties; rank++ {
		rank := rank
		k.Go(fmt.Sprintf("twophase%d", rank), func(p *sim.Proc) {
			errs[rank] = func() error {
				f, err := m.FS.Open(file, m.Compute[rank], pfs.MAsync, nil)
				if err != nil {
					return err
				}
				defer f.Close()

				// Phase 1: large contiguous reads of this node's slice.
				start := int64(rank) * share
				for off := start; off < start+share; off += cfg.ChunkSize {
					n := cfg.ChunkSize
					if off+n > start+share {
						n = start + share - off
					}
					if err := f.BlockingIO(p, off, n); err != nil {
						return err
					}
				}
				if p.Now() > phase1End {
					phase1End = p.Now()
				}
				barrier.Wait(p)

				// Phase 2: all-to-all. Of my share, records belonging to
				// target t amount to share/parties bytes (uniform
				// interleaving); my own records just pay a local copy.
				per := share / int64(parties)
				for t := 0; t < parties; t++ {
					if t == rank {
						p.Sleep(sim.Time(float64(per) / cfg.MemBandwidth * float64(sim.Second)))
						continue
					}
					dst := recv[t]
					m.Mesh.Send(m.Compute[rank], m.Compute[t], per, func() {
						dst.Release(per)
					})
				}
				// Wait for everyone else's records for me, then pay the
				// reassembly copy.
				recv[rank].Acquire(p, per*int64(parties-1))
				p.Sleep(sim.Time(float64(per*int64(parties-1)) / cfg.MemBandwidth * float64(sim.Second)))
				if p.Now() > end {
					end = p.Now()
				}
				return nil
			}()
		})
	}
	if err := k.Run(); err != nil {
		return nil, err
	}
	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("twophase: node %d: %w", rank, err)
		}
	}
	res.Phase1 = phase1End
	res.Elapsed = end
	return res, nil
}
