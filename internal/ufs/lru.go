package ufs

import "container/list"

// lru is a fixed-capacity LRU set used as the buffer cache's residency
// index. The simulator never stores data bytes — residency is all that
// affects timing.
type lru struct {
	cap   int
	order *list.List                 // front = most recent
	items map[blockKey]*list.Element // key -> element whose Value is the key
}

func newLRU(capacity int) *lru {
	if capacity <= 0 {
		panic("ufs: lru capacity must be positive")
	}
	return &lru{cap: capacity, order: list.New(), items: make(map[blockKey]*list.Element)}
}

// get reports whether key is resident and, if so, marks it most recent.
func (c *lru) get(key blockKey) bool {
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.MoveToFront(e)
	return true
}

// put inserts key as most recent, evicting the least recent entry if the
// cache is full. Re-putting an existing key just refreshes it.
func (c *lru) put(key blockKey) {
	if e, ok := c.items[key]; ok {
		c.order.MoveToFront(e)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(blockKey))
	}
	c.items[key] = c.order.PushFront(key)
}

// remove evicts key if resident.
func (c *lru) remove(key blockKey) {
	if e, ok := c.items[key]; ok {
		c.order.Remove(e)
		delete(c.items, key)
	}
}

// len reports the number of resident entries.
func (c *lru) len() int { return c.order.Len() }
