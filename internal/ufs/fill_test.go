package ufs

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/sim"
)

// TestConcurrentReadsShareOneFill: two buffered reads of the same cold
// block, the second issued while the first's fill is in flight, must
// produce exactly one disk operation — and the second read must not
// complete before the data actually exists.
func TestConcurrentReadsShareOneFill(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	s1, err := fs.Read("f", 0, 64<<10, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var s2 *sim.Signal
	// Issue the second read 1 ms in — well inside the first fill.
	k.After(sim.Millisecond, func() {
		var err error
		s2, err = fs.Read("f", 0, 64<<10, ReadOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.DiskOps != 1 {
		t.Fatalf("DiskOps = %d, want 1 (shared fill)", fs.DiskOps)
	}
	if fs.FillWaits != 1 || fs.CacheMisses != 1 || fs.CacheHits != 0 {
		t.Fatalf("waits=%d misses=%d hits=%d, want 1/1/0", fs.FillWaits, fs.CacheMisses, fs.CacheHits)
	}
	// The waiter cannot finish before the fill itself.
	if s2.FiredAt() < s1.FiredAt() {
		t.Fatalf("waiter finished at %v, before the fill at %v", s2.FiredAt(), s1.FiredAt())
	}
}

// TestResidencyOnlyAfterFill: a read issued during another's fill, for a
// DIFFERENT block, must not see phantom residency.
func TestResidencyOnlyAfterFill(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("f", 0, 64<<10, ReadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Block 0 is resident only now that its fill completed.
	s, err := fs.Read("f", 0, 64<<10, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Fired() || fs.CacheHits != 1 {
		t.Fatalf("re-read after fill: hits=%d", fs.CacheHits)
	}
}

// TestFailedFillLeavesNoResidue: a fill that dies at the disk must not
// leave the block marked resident, and its waiters see the error too.
func TestFailedFillLeavesNoResidue(t *testing.T) {
	k := sim.NewKernel()
	a := disk.NewArray(k, "raid", 4, disk.Seagate94601(), disk.FIFO, 500*sim.Microsecond)
	cfg := DefaultConfig()
	cfg.Fragmentation = 0
	fs := New(k, a, cfg)
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	for i, d := range a.Members() {
		d.InjectFaults(1, int64(i))
	}
	s1, err := fs.Read("f", 0, 64<<10, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var s2 *sim.Signal
	k.After(sim.Millisecond, func() {
		s2, _ = fs.Read("f", 0, 64<<10, ReadOptions{})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s1.Err() == nil || s2.Err() == nil {
		t.Fatalf("fill error not propagated: %v / %v", s1.Err(), s2.Err())
	}
	// Heal the disks; the block must be re-read from disk, not served
	// from a phantom cache entry.
	for _, d := range a.Members() {
		d.InjectFaults(0, 0)
	}
	opsBefore := fs.DiskOps
	s3, err := fs.Read("f", 0, 64<<10, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s3.Err() != nil {
		t.Fatalf("read after heal failed: %v", s3.Err())
	}
	if fs.DiskOps != opsBefore+1 {
		t.Fatalf("healed read issued %d ops, want 1 (no phantom residency)", fs.DiskOps-opsBefore)
	}
}

// TestWriteInvalidatesCache: write-through must evict overlapping cached
// blocks so later reads fetch fresh data.
func TestWriteInvalidatesCache(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("f", 0, 64<<10, ReadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write("f", 0, 64<<10); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	opsBefore := fs.DiskOps
	if _, err := fs.Read("f", 0, 64<<10, ReadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.DiskOps != opsBefore+1 {
		t.Fatalf("read after write hit stale cache (ops +%d, want +1)", fs.DiskOps-opsBefore)
	}
}
