package ufs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/sim"
)

func testFS(k *sim.Kernel, cfg Config) *FS {
	a := disk.NewArray(k, "raid", 4, disk.Seagate94601(), disk.FIFO, 500*sim.Microsecond)
	return New(k, a, cfg)
}

func noFragConfig() Config {
	cfg := DefaultConfig()
	cfg.Fragmentation = 0
	return cfg
}

func TestCreateAndSize(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("f", 1); err == nil {
		t.Fatal("duplicate Create succeeded")
	}
	sz, err := fs.Size("f")
	if err != nil || sz != 1<<20 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	if _, err := fs.Size("nope"); err == nil {
		t.Fatal("Size of missing file succeeded")
	}
}

func TestReadValidation(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("f", 128<<10); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ off, n int64 }{
		{-1, 10}, {0, 0}, {0, -4}, {128 << 10, 1}, {100 << 10, 100 << 10},
	}
	for _, c := range cases {
		if _, err := fs.Read("f", c.off, c.n, ReadOptions{}); err == nil {
			t.Errorf("Read(%d,%d) succeeded, want error", c.off, c.n)
		}
	}
	if _, err := fs.Read("ghost", 0, 1, ReadOptions{}); err == nil {
		t.Error("Read of missing file succeeded")
	}
}

func TestContiguousReadCoalesces(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	// 8 blocks, contiguous on disk (no fragmentation): one array request.
	sig, err := fs.Read("f", 0, 512<<10, ReadOptions{FastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !sig.Fired() {
		t.Fatal("read never completed")
	}
	if fs.DiskOps != 1 {
		t.Fatalf("DiskOps = %d, want 1 (coalesced)", fs.DiskOps)
	}
}

func TestFragmentationSplitsRuns(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Fragmentation = 1 // every block discontiguous
	fs := testFS(k, cfg)
	if err := fs.Create("f", 512<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("f", 0, 512<<10, ReadOptions{FastPath: true}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.DiskOps != 8 {
		t.Fatalf("DiskOps = %d, want 8 (fully fragmented)", fs.DiskOps)
	}
}

func TestCacheHitAvoidsDisk(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	s1, err := fs.Read("f", 0, 64<<10, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	t1 := s1.FiredAt()
	opsAfterFirst := fs.DiskOps
	s2, err := fs.Read("f", 0, 64<<10, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.DiskOps != opsAfterFirst {
		t.Fatalf("cached re-read issued %d extra disk ops", fs.DiskOps-opsAfterFirst)
	}
	if fs.CacheHits != 1 || fs.CacheMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", fs.CacheHits, fs.CacheMisses)
	}
	if hitTime := s2.FiredAt() - t1; hitTime >= t1 {
		t.Fatalf("cache hit (%v) not faster than miss (%v)", hitTime, t1)
	}
	if fs.CacheHitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", fs.CacheHitRate())
	}
}

func TestFastPathBypassesCache(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := fs.Read("f", 0, 64<<10, ReadOptions{FastPath: true}); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if fs.CacheHits != 0 || fs.CacheMisses != 0 {
		t.Fatalf("fast path touched the cache: hits=%d misses=%d", fs.CacheHits, fs.CacheMisses)
	}
	if fs.DiskOps != 2 {
		t.Fatalf("DiskOps = %d, want 2 (no caching)", fs.DiskOps)
	}
}

func TestCacheEviction(t *testing.T) {
	k := sim.NewKernel()
	cfg := noFragConfig()
	cfg.CacheBlocks = 2
	fs := testFS(k, cfg)
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	read := func(block int64) {
		if _, err := fs.Read("f", block*64<<10, 64<<10, ReadOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	read(0)
	read(1)
	read(2) // evicts block 0
	read(0) // must miss again
	if fs.CacheMisses != 4 || fs.CacheHits != 0 {
		t.Fatalf("hits=%d misses=%d, want 0/4 with LRU eviction", fs.CacheHits, fs.CacheMisses)
	}
}

func TestPartialBlockCostsMore(t *testing.T) {
	g := func(off, n int64) sim.Time {
		k := sim.NewKernel()
		fs := testFS(k, noFragConfig())
		if err := fs.Create("f", 1<<20); err != nil {
			t.Fatal(err)
		}
		sig, err := fs.Read("f", off, n, ReadOptions{FastPath: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return sig.FiredAt()
	}
	aligned := g(0, 64<<10)
	unaligned := g(1<<10, 64<<10) // same size, crosses a block boundary
	if unaligned <= aligned {
		t.Fatalf("unaligned read (%v) not slower than aligned (%v)", unaligned, aligned)
	}
}

func TestWrite(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	sig, err := fs.Write("f", 0, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !sig.Fired() {
		t.Fatal("write never completed")
	}
	if _, err := fs.Write("f", 1<<20, 1); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	if _, err := fs.Write("ghost", 0, 1); err == nil {
		t.Fatal("write to missing file succeeded")
	}
}

func TestVolumeFull(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("huge", 1<<40); err == nil {
		t.Fatal("creating a 1 TB file on a ~7 GB array succeeded")
	}
}

func TestCoalesce(t *testing.T) {
	cases := []struct {
		in   []int64
		want int
	}{
		{nil, 0},
		{[]int64{5}, 1},
		{[]int64{1, 2, 3}, 1},
		{[]int64{1, 2, 4}, 2},
		{[]int64{1, 3, 5}, 3},
		{[]int64{3, 2, 1}, 3},    // reverse order does not merge
		{[]int64{1, 2, 2, 3}, 2}, // duplicate restarts a run, then merges forward
	}
	for _, c := range cases {
		if got := coalesce(c.in); len(got) != c.want {
			t.Errorf("coalesce(%v) = %d runs, want %d", c.in, len(got), c.want)
		}
	}
}

// Property: coalesced runs cover exactly the input blocks, in order.
func TestCoalesceCoversInput(t *testing.T) {
	if err := quick.Check(func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 64)
		blocks := make([]int64, n)
		cur := int64(rng.Intn(100))
		for i := range blocks {
			if rng.Float64() < 0.3 {
				cur += int64(1 + rng.Intn(10))
			}
			blocks[i] = cur
			cur++
		}
		var flat []int64
		for _, r := range coalesce(blocks) {
			for i := int64(0); i < r.count; i++ {
				flat = append(flat, r.start+i)
			}
		}
		if len(flat) != len(blocks) {
			return false
		}
		for i := range flat {
			if flat[i] != blocks[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: LRU never exceeds capacity and get-after-put within capacity
// always hits.
func TestLRUProperties(t *testing.T) {
	if err := quick.Check(func(keys []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		c := newLRU(capacity)
		for _, kk := range keys {
			c.put(blockKey{string(rune('a' + kk%26)), 0})
			if c.len() > capacity {
				return false
			}
		}
		c.put(blockKey{"fresh", 0})
		return c.get(blockKey{"fresh", 0})
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadDeterminism(t *testing.T) {
	runOnce := func() sim.Time {
		k := sim.NewKernel()
		cfg := DefaultConfig()
		cfg.Fragmentation = 0.3
		cfg.Seed = 99
		fs := testFS(k, cfg)
		if err := fs.Create("f", 4<<20); err != nil {
			t.Fatal(err)
		}
		var last *sim.Signal
		k.Go("reader", func(p *sim.Proc) {
			for off := int64(0); off < 4<<20; off += 256 << 10 {
				sig, err := fs.Read("f", off, 256<<10, ReadOptions{FastPath: true})
				if err != nil {
					t.Error(err)
					return
				}
				sig.Wait(p)
				last = sig
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return last.FiredAt()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
