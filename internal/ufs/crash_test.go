package ufs

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// TestCrashResetFailsInFlightFills: a crash while a fill is in flight must
// error every read WAITING on that fill with ErrCrashed, and the block
// must NOT become resident when the orphaned disk operation later
// completes. (The read that issued the fill settles from the disk
// completion itself; its reply is dropped one layer up, by the I/O-node
// server's crash epoch guard.)
func TestCrashResetFailsInFlightFills(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("f", 0, 64<<10, ReadOptions{}); err != nil {
		t.Fatal(err)
	}
	var waiter *sim.Signal
	k.After(500*sim.Microsecond, func() { // piggybacks on the fill in flight
		var err error
		waiter, err = fs.Read("f", 0, 64<<10, ReadOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	k.After(sim.Millisecond, func() { fs.CrashReset() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fs.FillWaits != 1 {
		t.Fatalf("FillWaits = %d, want 1", fs.FillWaits)
	}
	if !waiter.Fired() {
		t.Fatal("fill waiter not failed by CrashReset")
	}
	if !errors.Is(waiter.Err(), ErrCrashed) {
		t.Fatalf("waiter error = %v, want ErrCrashed", waiter.Err())
	}
	// The orphaned disk completion must not have cached the block: the
	// re-read goes to disk again.
	opsBefore := fs.DiskOps
	s2, err := fs.Read("f", 0, 64<<10, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s2.Err() != nil {
		t.Fatalf("read after restart failed: %v", s2.Err())
	}
	if fs.DiskOps != opsBefore+1 {
		t.Fatalf("post-crash read issued %d ops, want 1 (no phantom residency)", fs.DiskOps-opsBefore)
	}
}

// TestCrashResetDropsCache: a restart comes up cold — blocks resident
// before the crash must be re-read from disk.
func TestCrashResetDropsCache(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("f", 0, 64<<10, ReadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	fs.CrashReset()
	opsBefore := fs.DiskOps
	s, err := fs.Read("f", 0, 64<<10, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Err() != nil {
		t.Fatalf("read after restart failed: %v", s.Err())
	}
	if fs.DiskOps != opsBefore+1 {
		t.Fatalf("cold-cache read issued %d ops, want 1", fs.DiskOps-opsBefore)
	}
}

// TestCrashResetStaleFillDoesNotCorruptNewFill: a fill re-issued after
// the crash for the same block must not be settled early by the
// pre-crash disk completion — the identity guard compares signal
// pointers, not keys.
func TestCrashResetStaleFillDoesNotCorruptNewFill(t *testing.T) {
	k := sim.NewKernel()
	fs := testFS(k, noFragConfig())
	if err := fs.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("f", 0, 64<<10, ReadOptions{}); err != nil {
		t.Fatal(err)
	}
	var s2 *sim.Signal
	k.After(sim.Millisecond, func() {
		fs.CrashReset()
		// Immediately re-read the same block: a fresh fill for the key the
		// orphaned completion will soon try to settle.
		var err error
		s2, err = fs.Read("f", 0, 64<<10, ReadOptions{})
		if err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s2 == nil || !s2.Fired() || s2.Err() != nil {
		t.Fatal("post-crash read did not complete cleanly")
	}
	if fs.DiskOps != 2 {
		t.Fatalf("DiskOps = %d, want 2 (orphaned fill + fresh fill)", fs.DiskOps)
	}
	// And the fresh fill really did populate the cache.
	s3, err := fs.Read("f", 0, 64<<10, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s3.Err() != nil || fs.DiskOps != 2 {
		t.Fatalf("re-read after fresh fill: err=%v ops=%d, want cache hit", s3.Err(), fs.DiskOps)
	}
}
