// Package ufs models the OSF/1 Unix File Systems that each Paragon I/O
// node layered over its RAID array. A PFS file is striped across many of
// these; each I/O node sees only its own stripe units, stored as a regular
// file here.
//
// The pieces that matter to the paper are modeled faithfully:
//
//   - a block map with a fragmentation knob: files are allocated in mostly
//     contiguous extents, and contiguity is what block coalescing exploits;
//   - a buffer cache (LRU over file-system blocks) used on the buffered
//     path, charged a memory-copy cost per block;
//   - Fast Path I/O: cache and copy are bypassed and data moves "directly"
//     between disk and the requester's buffer;
//   - block coalescing: a multi-block request whose blocks are contiguous
//     on disk becomes one array request;
//   - partial-block penalty: requests not aligned to file-system blocks
//     stage through temporary buffers, costing extra CPU per partial block
//     (why the paper's request sizes are block multiples).
package ufs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/disk"
	"repro/internal/sim"
)

// ErrCrashed is the error in-flight cache fills fail with when the I/O
// node goes down mid-read.
var ErrCrashed = errors.New("ufs: I/O node crashed during fill")

// Config describes one I/O node's file system.
type Config struct {
	BlockSize     int64    // file system block size in bytes (Paragon default 64 KB)
	CacheBlocks   int      // buffer cache capacity in blocks (0 disables)
	Fragmentation float64  // probability an allocation run breaks contiguity
	Seed          int64    // allocator randomness
	MemBandwidth  float64  // I/O-node memory copy bandwidth, bytes/sec
	PartialStage  sim.Time // extra CPU per partial (unaligned) block staged
}

// DefaultConfig returns Paragon-flavored parameters: 64 KB blocks, a 2 MB
// buffer cache, light fragmentation, and i860-era copy bandwidth.
func DefaultConfig() Config {
	return Config{
		BlockSize:     64 << 10,
		CacheBlocks:   32,
		Fragmentation: 0.05,
		Seed:          1,
		MemBandwidth:  45e6,
		PartialStage:  200 * sim.Microsecond,
	}
}

// vnode is one file's metadata: the disk block address backing each file
// block.
type vnode struct {
	name   string
	size   int64
	blocks []int64 // disk block number per file block
}

// FS is one I/O node's file system instance.
type FS struct {
	k     *sim.Kernel
	array *disk.Array
	cfg   Config
	rng   *rand.Rand

	files    map[string]*vnode
	nextBlk  int64   // allocation cursor, in disk blocks
	totalBlk int64   // capacity in blocks
	freeBlks []int64 // blocks returned by Remove, reused first
	cache    *lru
	fills    map[string]*sim.Signal // cache blocks with a disk fill in flight
	cpuFree  sim.Time               // I/O-node CPU clock for copy/staging costs

	// Measurements.
	Reads       int64
	BytesRead   int64
	CacheHits   int64
	CacheMisses int64
	FillWaits   int64 // reads that waited on an in-flight cache fill
	DiskOps     int64 // array requests issued (after coalescing)
}

// New builds a file system over array. It panics on a non-positive block
// size or memory bandwidth.
func New(k *sim.Kernel, array *disk.Array, cfg Config) *FS {
	if cfg.BlockSize <= 0 {
		panic("ufs: block size must be positive")
	}
	if cfg.MemBandwidth <= 0 {
		panic("ufs: memory bandwidth must be positive")
	}
	fs := &FS{
		k:        k,
		array:    array,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		files:    make(map[string]*vnode),
		fills:    make(map[string]*sim.Signal),
		totalBlk: array.Capacity() / cfg.BlockSize,
	}
	if cfg.CacheBlocks > 0 {
		fs.cache = newLRU(cfg.CacheBlocks)
	}
	return fs
}

// BlockSize reports the file system block size.
func (fs *FS) BlockSize() int64 { return fs.cfg.BlockSize }

// Array exposes the disk array beneath the file system (for stats
// reporting and fault injection in tests).
func (fs *FS) Array() *disk.Array { return fs.array }

// Create allocates a file of size bytes. Allocation walks a cursor across
// the volume, breaking contiguity with probability Fragmentation per
// block, which reproduces the aging of a real UFS. Creating over an
// existing name or beyond the volume is an error.
func (fs *FS) Create(name string, size int64) error {
	if _, ok := fs.files[name]; ok {
		return fmt.Errorf("ufs: %s exists", name)
	}
	if size < 0 {
		return fmt.Errorf("ufs: negative size %d", size)
	}
	nblocks := (size + fs.cfg.BlockSize - 1) / fs.cfg.BlockSize
	if fs.nextBlk+nblocks-int64(len(fs.freeBlks))+64 > fs.totalBlk {
		return fmt.Errorf("ufs: volume full allocating %s (%d blocks)", name, nblocks)
	}
	v := &vnode{name: name, size: size, blocks: make([]int64, nblocks)}
	for i := int64(0); i < nblocks; i++ {
		// Freed blocks are reused first, like a real allocator — which is
		// exactly how volumes fragment as they age.
		if len(fs.freeBlks) > 0 {
			v.blocks[i] = fs.freeBlks[len(fs.freeBlks)-1]
			fs.freeBlks = fs.freeBlks[:len(fs.freeBlks)-1]
			continue
		}
		if i > 0 && fs.rng.Float64() < fs.cfg.Fragmentation {
			// Skip ahead a few blocks: a hole left by another file.
			fs.nextBlk += 1 + int64(fs.rng.Intn(8))
		}
		v.blocks[i] = fs.nextBlk
		fs.nextBlk++
	}
	fs.files[name] = v
	return nil
}

// Remove deletes a file, returning its blocks to the allocator and
// evicting any cached copies.
func (fs *FS) Remove(name string) error {
	v, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("ufs: %s does not exist", name)
	}
	for b := range v.blocks {
		key := cacheKey(name, int64(b))
		if fs.cache != nil {
			fs.cache.remove(key)
		}
		if fill, ok := fs.fills[key]; ok {
			// Readers waiting on an in-flight fill must not hang; they
			// get the unlink as an error.
			delete(fs.fills, key)
			fill.Fire(fmt.Errorf("ufs: %s removed during read", name))
		}
	}
	fs.freeBlks = append(fs.freeBlks, v.blocks...)
	delete(fs.files, name)
	return nil
}

// CrashReset models the node's operating system going down: the buffer
// cache vanishes and every read waiting on an in-flight cache fill fails
// with ErrCrashed. Disk contents survive — only volatile state is lost;
// the file table and allocator are on-disk metadata and persist. Fills
// are failed in sorted key order so the crash is deterministic.
func (fs *FS) CrashReset() {
	if fs.cache != nil {
		fs.cache = newLRU(fs.cfg.CacheBlocks)
	}
	keys := make([]string, 0, len(fs.fills))
	for key := range fs.fills {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fill := fs.fills[key]
		delete(fs.fills, key)
		fill.Fire(ErrCrashed)
	}
	fs.cpuFree = fs.k.Now()
}

// Size reports a file's length, or an error if it does not exist.
func (fs *FS) Size(name string) (int64, error) {
	v, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("ufs: %s does not exist", name)
	}
	return v.size, nil
}

// ReadOptions selects the I/O path.
type ReadOptions struct {
	// FastPath bypasses the buffer cache: data moves from the array to
	// the requester without a staging copy. This is the PFS
	// buffering-disabled mode the prefetching paper runs under.
	FastPath bool
}

// Read starts a read of n bytes at offset off from file name and returns
// a signal fired when the data is available at the I/O node (transfer to
// the requesting compute node is the caller's business). Reads past EOF
// are an error, as in the real PFS where file sizes were established at
// write time.
func (fs *FS) Read(name string, off, n int64, opt ReadOptions) (*sim.Signal, error) {
	v, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("ufs: %s does not exist", name)
	}
	if off < 0 || n <= 0 || off+n > v.size {
		return nil, fmt.Errorf("ufs: read [%d,+%d) outside %s (%d bytes)", off, n, name, v.size)
	}
	fs.Reads++
	fs.BytesRead += n

	bs := fs.cfg.BlockSize
	first := off / bs
	last := (off + n - 1) / bs

	// Partial-block staging cost: head and tail blocks that are not fully
	// covered pay PartialStage CPU each.
	var staging sim.Time
	if off%bs != 0 {
		staging += fs.cfg.PartialStage
	}
	if (off+n)%bs != 0 && last != first || (off+n)%bs != 0 && off%bs == 0 {
		staging += fs.cfg.PartialStage
	}

	// Classify blocks. A cached block needs no disk I/O; a block whose
	// fill is already in flight (another reader, or a prefetch hint) is
	// waited on rather than read twice; the rest miss and are read from
	// the array, coalesced into contiguous runs. Blocks become resident
	// only when their fill completes — never at issue time.
	var missBlocks []int64     // disk block numbers to fetch
	var missFiles []int64      // the file blocks those correspond to
	var missSigs []*sim.Signal // the fill signal we created for each, identity-checked at completion
	var pending []*sim.Signal  // fills in flight we must wait for
	copyBytes := int64(0)      // bytes staged through the cache
	for b := first; b <= last; b++ {
		dblk := v.blocks[b]
		if !opt.FastPath && fs.cache != nil {
			key := cacheKey(name, b)
			if fs.cache.get(key) {
				fs.CacheHits++
				copyBytes += bs
				continue
			}
			if sig, ok := fs.fills[key]; ok {
				fs.FillWaits++
				copyBytes += bs
				pending = append(pending, sig)
				continue
			}
			fs.CacheMisses++
			sig := sim.NewSignal(fs.k)
			fs.fills[key] = sig
			copyBytes += bs
			missFiles = append(missFiles, b)
			missSigs = append(missSigs, sig)
		}
		missBlocks = append(missBlocks, dblk)
	}

	done := sim.NewSignal(fs.k)
	finish := func(err error) {
		// Staging/copy costs serialize on the I/O node CPU.
		var cpu sim.Time = staging
		if copyBytes > 0 {
			cpu += sim.Time(float64(copyBytes) / fs.cfg.MemBandwidth * float64(sim.Second))
		}
		start := fs.k.Now()
		if fs.cpuFree > start {
			start = fs.cpuFree
		}
		fs.cpuFree = start + cpu
		fs.k.At(fs.cpuFree, func() { done.Fire(err) })
	}

	if len(missBlocks) == 0 && len(pending) == 0 {
		// Fully cached.
		fs.k.After(0, func() { finish(nil) })
		return done, nil
	}

	runs := coalesce(missBlocks)
	fs.DiskOps += int64(len(runs))
	remaining := len(runs) + len(pending)
	var firstErr error
	oneDone := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 {
			finish(firstErr)
		}
	}
	for _, sig := range pending {
		sig.OnFire(oneDone)
	}
	// missFiles parallels missBlocks, and coalesce preserves order, so
	// each run covers the next run.count entries of missFiles.
	fileIdx := 0
	for _, r := range runs {
		var filled []int64
		var filledSigs []*sim.Signal
		if len(missFiles) > 0 {
			filled = missFiles[fileIdx : fileIdx+int(r.count)]
			filledSigs = missSigs[fileIdx : fileIdx+int(r.count)]
			fileIdx += int(r.count)
		}
		sig := fs.array.Read(r.start*bs, r.count*bs)
		sig.OnFire(func(err error) {
			// The blocks are resident (or abandoned, on error) only now.
			// The fill must still be the one this read created: a crash
			// (CrashReset) fails and removes fills, and a read issued
			// after the restart may have registered a fresh fill under
			// the same key — a stale disk completion must not touch it.
			for i, b := range filled {
				key := cacheKey(name, b)
				if fill, ok := fs.fills[key]; ok && fill == filledSigs[i] {
					if err == nil {
						fs.cache.put(key)
					}
					delete(fs.fills, key)
					fill.Fire(err)
				}
			}
			oneDone(err)
		})
	}
	return done, nil
}

// Write starts a write of n bytes at offset off. The model is
// write-through (the paper evaluates reads only; writes exist so that
// workloads can build their input files in simulated time when desired).
func (fs *FS) Write(name string, off, n int64) (*sim.Signal, error) {
	v, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("ufs: %s does not exist", name)
	}
	if off < 0 || n <= 0 || off+n > v.size {
		return nil, fmt.Errorf("ufs: write [%d,+%d) outside %s (%d bytes)", off, n, name, v.size)
	}
	bs := fs.cfg.BlockSize
	first := off / bs
	last := (off + n - 1) / bs
	var blocks []int64
	for b := first; b <= last; b++ {
		blocks = append(blocks, v.blocks[b])
		// Write-through invalidation: a stale cached copy must not serve
		// later reads.
		if fs.cache != nil {
			fs.cache.remove(cacheKey(name, b))
		}
	}
	runs := coalesce(blocks)
	fs.DiskOps += int64(len(runs))
	done := sim.NewSignal(fs.k)
	remaining := len(runs)
	var firstErr error
	for _, r := range runs {
		sig := fs.array.Write(r.start*bs, r.count*bs)
		sig.OnFire(func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 {
				done.Fire(firstErr)
			}
		})
	}
	return done, nil
}

// run is a contiguous extent of disk blocks.
type run struct {
	start int64 // first disk block
	count int64
}

// coalesce merges an ordered list of disk block numbers into contiguous
// runs. Input order is preserved (file order), so only adjacent
// contiguity merges — matching what a real block-coalescing read path can
// do while streaming.
func coalesce(blocks []int64) []run {
	var runs []run
	for _, b := range blocks {
		if len(runs) > 0 && runs[len(runs)-1].start+runs[len(runs)-1].count == b {
			runs[len(runs)-1].count++
			continue
		}
		runs = append(runs, run{start: b, count: 1})
	}
	return runs
}

func cacheKey(name string, block int64) string {
	return fmt.Sprintf("%s#%d", name, block)
}

// CacheHitRate reports the buffer cache hit fraction (0 with no lookups).
func (fs *FS) CacheHitRate() float64 {
	total := fs.CacheHits + fs.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(fs.CacheHits) / float64(total)
}
