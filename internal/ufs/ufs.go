// Package ufs models the OSF/1 Unix File Systems that each Paragon I/O
// node layered over its RAID array. A PFS file is striped across many of
// these; each I/O node sees only its own stripe units, stored as a regular
// file here.
//
// The pieces that matter to the paper are modeled faithfully:
//
//   - a block map with a fragmentation knob: files are allocated in mostly
//     contiguous extents, and contiguity is what block coalescing exploits;
//   - a buffer cache (LRU over file-system blocks) used on the buffered
//     path, charged a memory-copy cost per block;
//   - Fast Path I/O: cache and copy are bypassed and data moves "directly"
//     between disk and the requester's buffer;
//   - block coalescing: a multi-block request whose blocks are contiguous
//     on disk becomes one array request;
//   - partial-block penalty: requests not aligned to file-system blocks
//     stage through temporary buffers, costing extra CPU per partial block
//     (why the paper's request sizes are block multiples).
package ufs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/disk"
	"repro/internal/sim"
)

// ErrCrashed is the error in-flight cache fills fail with when the I/O
// node goes down mid-read.
var ErrCrashed = errors.New("ufs: I/O node crashed during fill")

// Config describes one I/O node's file system.
type Config struct {
	BlockSize     int64    // file system block size in bytes (Paragon default 64 KB)
	CacheBlocks   int      // buffer cache capacity in blocks (0 disables)
	Fragmentation float64  // probability an allocation run breaks contiguity
	Seed          int64    // allocator randomness
	MemBandwidth  float64  // I/O-node memory copy bandwidth, bytes/sec
	PartialStage  sim.Time // extra CPU per partial (unaligned) block staged
}

// DefaultConfig returns Paragon-flavored parameters: 64 KB blocks, a 2 MB
// buffer cache, light fragmentation, and i860-era copy bandwidth.
func DefaultConfig() Config {
	return Config{
		BlockSize:     64 << 10,
		CacheBlocks:   32,
		Fragmentation: 0.05,
		Seed:          1,
		MemBandwidth:  45e6,
		PartialStage:  200 * sim.Microsecond,
	}
}

// vnode is one file's metadata: the disk block address backing each file
// block.
type vnode struct {
	name   string
	size   int64
	blocks []int64 // disk block number per file block
}

// Handle is a resolved reference to a file: the name lookup done once, at
// open time, so the per-read path touches no map. A handle stays valid
// until the file is removed; using one after Remove reads stale metadata,
// exactly like holding a vnode reference across an unlink.
type Handle struct {
	v *vnode
}

// Valid reports whether the handle references a file.
func (h Handle) Valid() bool { return h.v != nil }

// Size reports the referenced file's length.
func (h Handle) Size() int64 {
	if h.v == nil {
		return 0
	}
	return h.v.size
}

// FS is one I/O node's file system instance.
type FS struct {
	k     *sim.Kernel
	array *disk.Array
	cfg   Config
	rng   *rand.Rand // lazily seeded: fragmentation-free volumes never draw

	files    map[string]*vnode
	nextBlk  int64   // allocation cursor, in disk blocks
	totalBlk int64   // capacity in blocks
	freeBlks []int64 // blocks returned by Remove, reused first
	cache    *lru
	fills    map[blockKey]*sim.Signal // cache blocks with a disk fill in flight
	cpuFree  sim.Time                 // I/O-node CPU clock for copy/staging costs
	opFree   []*readOp                // readOp free list

	// Measurements.
	Reads       int64
	BytesRead   int64
	CacheHits   int64
	CacheMisses int64
	FillWaits   int64 // reads that waited on an in-flight cache fill
	DiskOps     int64 // array requests issued (after coalescing)
}

// New builds a file system over array. It panics on a non-positive block
// size or memory bandwidth.
func New(k *sim.Kernel, array *disk.Array, cfg Config) *FS {
	if cfg.BlockSize <= 0 {
		panic("ufs: block size must be positive")
	}
	if cfg.MemBandwidth <= 0 {
		panic("ufs: memory bandwidth must be positive")
	}
	fs := &FS{
		k:        k,
		array:    array,
		cfg:      cfg,
		files:    make(map[string]*vnode),
		fills:    make(map[blockKey]*sim.Signal),
		totalBlk: array.Capacity() / cfg.BlockSize,
	}
	if cfg.CacheBlocks > 0 {
		fs.cache = newLRU(cfg.CacheBlocks)
	}
	return fs
}

// BlockSize reports the file system block size.
func (fs *FS) BlockSize() int64 { return fs.cfg.BlockSize }

// Array exposes the disk array beneath the file system (for stats
// reporting and fault injection in tests).
func (fs *FS) Array() *disk.Array { return fs.array }

// rand returns the allocator RNG, seeding it on first use. Deferring the
// seeding keeps FS construction cheap for the common Fragmentation == 0
// configuration, which never draws.
func (fs *FS) rand() *rand.Rand {
	if fs.rng == nil {
		fs.rng = rand.New(rand.NewSource(fs.cfg.Seed))
	}
	return fs.rng
}

// Create allocates a file of size bytes. Allocation walks a cursor across
// the volume, breaking contiguity with probability Fragmentation per
// block, which reproduces the aging of a real UFS. Creating over an
// existing name or beyond the volume is an error.
func (fs *FS) Create(name string, size int64) error {
	if _, ok := fs.files[name]; ok {
		return fmt.Errorf("ufs: %s exists", name)
	}
	if size < 0 {
		return fmt.Errorf("ufs: negative size %d", size)
	}
	nblocks := (size + fs.cfg.BlockSize - 1) / fs.cfg.BlockSize
	if fs.nextBlk+nblocks-int64(len(fs.freeBlks))+64 > fs.totalBlk {
		return fmt.Errorf("ufs: volume full allocating %s (%d blocks)", name, nblocks)
	}
	v := &vnode{name: name, size: size, blocks: make([]int64, nblocks)}
	for i := int64(0); i < nblocks; i++ {
		// Freed blocks are reused first, like a real allocator — which is
		// exactly how volumes fragment as they age.
		if len(fs.freeBlks) > 0 {
			v.blocks[i] = fs.freeBlks[len(fs.freeBlks)-1]
			fs.freeBlks = fs.freeBlks[:len(fs.freeBlks)-1]
			continue
		}
		if i > 0 && fs.cfg.Fragmentation > 0 && fs.rand().Float64() < fs.cfg.Fragmentation {
			// Skip ahead a few blocks: a hole left by another file.
			fs.nextBlk += 1 + int64(fs.rand().Intn(8))
		}
		v.blocks[i] = fs.nextBlk
		fs.nextBlk++
	}
	fs.files[name] = v
	return nil
}

// Lookup resolves name to a Handle, the once-per-open half of the read
// path. The handle is valid until the file is removed.
func (fs *FS) Lookup(name string) (Handle, error) {
	v, ok := fs.files[name]
	if !ok {
		return Handle{}, fmt.Errorf("ufs: %s does not exist", name)
	}
	return Handle{v: v}, nil
}

// Remove deletes a file, returning its blocks to the allocator and
// evicting any cached copies.
func (fs *FS) Remove(name string) error {
	v, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("ufs: %s does not exist", name)
	}
	for b := range v.blocks {
		key := blockKey{name, int64(b)}
		if fs.cache != nil {
			fs.cache.remove(key)
		}
		if fill, ok := fs.fills[key]; ok {
			// Readers waiting on an in-flight fill must not hang; they
			// get the unlink as an error.
			delete(fs.fills, key)
			fill.Fire(fmt.Errorf("ufs: %s removed during read", name))
		}
	}
	fs.freeBlks = append(fs.freeBlks, v.blocks...)
	delete(fs.files, name)
	return nil
}

// CrashReset models the node's operating system going down: the buffer
// cache vanishes and every read waiting on an in-flight cache fill fails
// with ErrCrashed. Disk contents survive — only volatile state is lost;
// the file table and allocator are on-disk metadata and persist. Fills
// are failed in sorted key order so the crash is deterministic; the sort
// is over the formatted "name#block" strings, which keeps the firing
// order identical to what the pre-blockKey implementation produced.
func (fs *FS) CrashReset() {
	if fs.cache != nil {
		fs.cache = newLRU(fs.cfg.CacheBlocks)
	}
	type sortedFill struct {
		s   string
		key blockKey
	}
	keys := make([]sortedFill, 0, len(fs.fills))
	for key := range fs.fills {
		keys = append(keys, sortedFill{fmt.Sprintf("%s#%d", key.name, key.block), key})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].s < keys[j].s })
	for _, sf := range keys {
		fill := fs.fills[sf.key]
		delete(fs.fills, sf.key)
		fill.Fire(ErrCrashed)
	}
	fs.cpuFree = fs.k.Now()
}

// Size reports a file's length, or an error if it does not exist.
func (fs *FS) Size(name string) (int64, error) {
	v, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("ufs: %s does not exist", name)
	}
	return v.size, nil
}

// ReadOptions selects the I/O path.
type ReadOptions struct {
	// FastPath bypasses the buffer cache: data moves from the array to
	// the requester without a staging copy. This is the PFS
	// buffering-disabled mode the prefetching paper runs under.
	FastPath bool
}

// readOp is the pooled bookkeeping of one read: what the legacy
// implementation captured in closures (staging cost, copy bytes, the
// countdown over disk runs and pending fills) lives here instead, so the
// steady-state read path schedules only pooled-args events. Completion is
// dual-mode: ops from the legacy Read carry sig and fire it directly at
// the delivery instant (one event, exactly like the old closure chain);
// ops from ReadCall carry fn/arg and schedule the callback as its own
// event (also one event — the callback takes the place of the signal's
// single consumer).
type readOp struct {
	fs        *FS
	v         *vnode
	staging   sim.Time
	copyBytes int64
	remaining int
	firstErr  error

	sig *sim.Signal      // legacy Read: fired at delivery
	fn  func(any, error) // ReadCall: scheduled at delivery
	arg any

	// Scratch storage reused across ops.
	missBlocks []int64       // disk block numbers to fetch
	missFiles  []int64       // the file blocks those correspond to
	missSigs   []*sim.Signal // fill signals created for each, identity-checked at completion
	pending    []*sim.Signal // fills in flight we must wait for
	runs       []run
	runStates  []runState
}

// runState ties one coalesced disk run back to its readOp and the slice
// of missFiles/missSigs the run covers. The states live in the op's
// runStates array, which is sized before any request is issued so the
// structs never move while a request holds a pointer to one.
type runState struct {
	op        *readOp
	fileStart int
	fileCount int
}

func (fs *FS) getReadOp() *readOp {
	if n := len(fs.opFree); n > 0 {
		op := fs.opFree[n-1]
		fs.opFree[n-1] = nil
		fs.opFree = fs.opFree[:n-1]
		return op
	}
	return &readOp{fs: fs}
}

func (fs *FS) putReadOp(op *readOp) {
	op.v = nil
	op.staging = 0
	op.copyBytes = 0
	op.remaining = 0
	op.firstErr = nil
	op.sig = nil
	op.fn = nil
	op.arg = nil
	op.missBlocks = op.missBlocks[:0]
	op.missFiles = op.missFiles[:0]
	for i := range op.missSigs {
		op.missSigs[i] = nil
	}
	op.missSigs = op.missSigs[:0]
	for i := range op.pending {
		op.pending[i] = nil
	}
	op.pending = op.pending[:0]
	op.runs = op.runs[:0]
	op.runStates = op.runStates[:0]
	fs.opFree = append(fs.opFree, op)
}

// Read starts a read of n bytes at offset off from file name and returns
// a signal fired when the data is available at the I/O node (transfer to
// the requesting compute node is the caller's business). Reads past EOF
// are an error, as in the real PFS where file sizes were established at
// write time.
func (fs *FS) Read(name string, off, n int64, opt ReadOptions) (*sim.Signal, error) {
	h, err := fs.Lookup(name)
	if err != nil {
		return nil, err
	}
	op := fs.getReadOp()
	op.v = h.v
	op.sig = sim.NewSignal(fs.k)
	done := op.sig
	if err := fs.read(op, off, n, opt); err != nil {
		fs.putReadOp(op)
		return nil, err
	}
	return done, nil
}

// ReadCall is the callback form of Read on a resolved handle: fn(arg,
// err) runs (as its own event, at the delivery instant) when the data is
// available at the I/O node. No signal, closure, or name lookup is
// constructed on the path. A non-nil return reports a synchronous
// validation failure; fn does not run.
func (fs *FS) ReadCall(h Handle, off, n int64, opt ReadOptions, fn func(any, error), arg any) error {
	if h.v == nil {
		return errors.New("ufs: read through invalid handle")
	}
	op := fs.getReadOp()
	op.v = h.v
	op.fn = fn
	op.arg = arg
	if err := fs.read(op, off, n, opt); err != nil {
		fs.putReadOp(op)
		return err
	}
	return nil
}

// read is the shared body of Read and ReadCall: validate, charge staging,
// classify blocks against the cache, and issue the coalesced disk runs.
// On error the caller recycles op; otherwise the op is consumed by its
// completion events.
func (fs *FS) read(op *readOp, off, n int64, opt ReadOptions) error {
	v := op.v
	if off < 0 || n <= 0 || off+n > v.size {
		return fmt.Errorf("ufs: read [%d,+%d) outside %s (%d bytes)", off, n, v.name, v.size)
	}
	fs.Reads++
	fs.BytesRead += n

	bs := fs.cfg.BlockSize
	first := off / bs
	last := (off + n - 1) / bs

	// Partial-block staging cost: head and tail blocks that are not fully
	// covered pay PartialStage CPU each.
	var staging sim.Time
	if off%bs != 0 {
		staging += fs.cfg.PartialStage
	}
	if (off+n)%bs != 0 && last != first || (off+n)%bs != 0 && off%bs == 0 {
		staging += fs.cfg.PartialStage
	}
	op.staging = staging

	// Classify blocks. A cached block needs no disk I/O; a block whose
	// fill is already in flight (another reader, or a prefetch hint) is
	// waited on rather than read twice; the rest miss and are read from
	// the array, coalesced into contiguous runs. Blocks become resident
	// only when their fill completes — never at issue time.
	copyBytes := int64(0) // bytes staged through the cache
	for b := first; b <= last; b++ {
		dblk := v.blocks[b]
		if !opt.FastPath && fs.cache != nil {
			key := blockKey{v.name, b}
			if fs.cache.get(key) {
				fs.CacheHits++
				copyBytes += bs
				continue
			}
			if sig, ok := fs.fills[key]; ok {
				fs.FillWaits++
				copyBytes += bs
				op.pending = append(op.pending, sig)
				continue
			}
			fs.CacheMisses++
			sig := sim.NewSignal(fs.k)
			fs.fills[key] = sig
			copyBytes += bs
			op.missFiles = append(op.missFiles, b)
			op.missSigs = append(op.missSigs, sig)
		}
		op.missBlocks = append(op.missBlocks, dblk)
	}
	op.copyBytes = copyBytes

	if len(op.missBlocks) == 0 && len(op.pending) == 0 {
		// Fully cached.
		fs.k.AfterCallErr(0, readOpFinish, op, nil)
		return nil
	}

	op.runs = coalesceInto(op.runs[:0], op.missBlocks)
	fs.DiskOps += int64(len(op.runs))
	op.remaining = len(op.runs) + len(op.pending)
	for _, sig := range op.pending {
		sig.OnFireCall(readOpOneDone, op)
	}
	// missFiles parallels missBlocks, and coalesce preserves order, so
	// each run covers the next run.count entries of missFiles. Size the
	// runState array up front: append growth after the first request is
	// issued would move states out from under the request's pointer.
	if cap(op.runStates) < len(op.runs) {
		op.runStates = make([]runState, len(op.runs))
	}
	op.runStates = op.runStates[:len(op.runs)]
	fileIdx := 0
	for i, r := range op.runs {
		rs := &op.runStates[i]
		rs.op = op
		rs.fileStart, rs.fileCount = fileIdx, 0
		if len(op.missFiles) > 0 {
			rs.fileCount = int(r.count)
			fileIdx += int(r.count)
		}
		fs.array.ReadCall(r.start*bs, r.count*bs, readOpRunDone, rs)
	}
	return nil
}

// readOpRunDone completes one coalesced disk run: the blocks it covered
// become resident (or their fills abandoned, on error) only now.
func readOpRunDone(v any, err error) {
	rs := v.(*runState)
	op := rs.op
	fs := op.fs
	for i := 0; i < rs.fileCount; i++ {
		b := op.missFiles[rs.fileStart+i]
		key := blockKey{op.v.name, b}
		// The fill must still be the one this read created: a crash
		// (CrashReset) fails and removes fills, and a read issued after
		// the restart may have registered a fresh fill under the same
		// key — a stale disk completion must not touch it.
		if fill, ok := fs.fills[key]; ok && fill == op.missSigs[rs.fileStart+i] {
			if err == nil {
				fs.cache.put(key)
			}
			delete(fs.fills, key)
			fill.Fire(err)
		}
	}
	op.oneDone(err)
}

// readOpOneDone is the OnFireCall form of oneDone, for pending fills.
func readOpOneDone(v any, err error) { v.(*readOp).oneDone(err) }

func (op *readOp) oneDone(err error) {
	if err != nil && op.firstErr == nil {
		op.firstErr = err
	}
	op.remaining--
	if op.remaining == 0 {
		op.finish(op.firstErr)
	}
}

// readOpFinish is the event form of finish, for the fully-cached path.
func readOpFinish(v any, err error) { v.(*readOp).finish(err) }

// finish charges the staging/copy CPU, which serializes on the I/O node
// CPU clock, and schedules the delivery at the instant the CPU is done.
func (op *readOp) finish(err error) {
	fs := op.fs
	cpu := op.staging
	if op.copyBytes > 0 {
		cpu += sim.Time(float64(op.copyBytes) / fs.cfg.MemBandwidth * float64(sim.Second))
	}
	start := fs.k.Now()
	if fs.cpuFree > start {
		start = fs.cpuFree
	}
	fs.cpuFree = start + cpu
	fs.k.AfterCallErr(fs.cpuFree-fs.k.Now(), readOpDeliver, op, err)
}

// readOpDeliver runs at the delivery instant and hands the result to the
// op's consumer: the signal is fired in place (its consumers schedule
// from there, exactly like the legacy closure), or the ReadCall callback
// is scheduled as its own event.
func readOpDeliver(v any, err error) {
	op := v.(*readOp)
	fs := op.fs
	if op.sig != nil {
		sig := op.sig
		fs.putReadOp(op)
		sig.Fire(err)
		return
	}
	fn, arg := op.fn, op.arg
	fs.putReadOp(op)
	fs.k.AfterCallErr(0, fn, arg, err)
}

// Write starts a write of n bytes at offset off. The model is
// write-through (the paper evaluates reads only; writes exist so that
// workloads can build their input files in simulated time when desired).
func (fs *FS) Write(name string, off, n int64) (*sim.Signal, error) {
	v, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("ufs: %s does not exist", name)
	}
	if off < 0 || n <= 0 || off+n > v.size {
		return nil, fmt.Errorf("ufs: write [%d,+%d) outside %s (%d bytes)", off, n, name, v.size)
	}
	bs := fs.cfg.BlockSize
	first := off / bs
	last := (off + n - 1) / bs
	var blocks []int64
	for b := first; b <= last; b++ {
		blocks = append(blocks, v.blocks[b])
		// Write-through invalidation: a stale cached copy must not serve
		// later reads.
		if fs.cache != nil {
			fs.cache.remove(blockKey{name, b})
		}
	}
	runs := coalesce(blocks)
	fs.DiskOps += int64(len(runs))
	done := sim.NewSignal(fs.k)
	remaining := len(runs)
	var firstErr error
	for _, r := range runs {
		sig := fs.array.Write(r.start*bs, r.count*bs)
		sig.OnFire(func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 {
				done.Fire(firstErr)
			}
		})
	}
	return done, nil
}

// run is a contiguous extent of disk blocks.
type run struct {
	start int64 // first disk block
	count int64
}

// coalesce merges an ordered list of disk block numbers into contiguous
// runs. Input order is preserved (file order), so only adjacent
// contiguity merges — matching what a real block-coalescing read path can
// do while streaming.
func coalesce(blocks []int64) []run {
	return coalesceInto(nil, blocks)
}

// coalesceInto is coalesce appending into caller-provided storage, so the
// hot read path reuses one runs slice per operation.
func coalesceInto(runs []run, blocks []int64) []run {
	for _, b := range blocks {
		if len(runs) > 0 && runs[len(runs)-1].start+runs[len(runs)-1].count == b {
			runs[len(runs)-1].count++
			continue
		}
		runs = append(runs, run{start: b, count: 1})
	}
	return runs
}

// blockKey identifies one file-system block for the cache and fill maps.
// A comparable struct instead of a formatted string: the buffered path
// used to pay a fmt.Sprintf per block per read.
type blockKey struct {
	name  string
	block int64
}

// CacheHitRate reports the buffer cache hit fraction (0 with no lookups).
func (fs *FS) CacheHitRate() float64 {
	total := fs.CacheHits + fs.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(fs.CacheHits) / float64(total)
}
