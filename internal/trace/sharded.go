package trace

// Sharded is a family of per-shard trace buckets for parallel (sharded)
// simulations. A single Log must only be appended to from one execution
// context, so a sharded machine hands every node group its own bucket —
// an ordinary *Log the group's components attach as usual — and merges
// them into one timeline after the run.
//
// The merge order is canonical: (time, bucket, intra-bucket index).
// Each bucket's events are nondecreasing in time (its group's clock
// only moves forward), so the merge is a plain k-way head comparison,
// and the merged timeline — and therefore its Digest — is a pure
// function of the simulation's data, bit-identical at every worker
// count. It intentionally differs from a single-kernel run's log, which
// interleaves groups in global event order; sharded runs have their own
// golden digests.
type Sharded struct {
	buckets []*Log
}

// NewSharded returns buckets independent logs of the given capacity
// each. Capacity bounds are per bucket, so retention (and the drop
// counts folded into the digest) depends only on the fixed group
// partition, never on the worker count.
func NewSharded(buckets, capacity int) *Sharded {
	s := &Sharded{buckets: make([]*Log, buckets)}
	for i := range s.buckets {
		s.buckets[i] = NewLog(capacity)
	}
	return s
}

// Bucket returns shard group g's log.
func (s *Sharded) Bucket(g int) *Log { return s.buckets[g] }

// MergeInto appends all bucket events to dst in (time, bucket) order
// and folds the buckets' drop counts into dst's. Events beyond dst's
// capacity are dropped by dst as usual, which is equally canonical.
func (s *Sharded) MergeInto(dst *Log) {
	idx := make([]int, len(s.buckets))
	for {
		best := -1
		var bt int64
		for b, l := range s.buckets {
			if idx[b] < len(l.events) {
				if t := int64(l.events[idx[b]].T); best < 0 || t < bt {
					best, bt = b, t
				}
			}
		}
		if best < 0 {
			break
		}
		dst.Add(s.buckets[best].events[idx[best]])
		idx[best]++
	}
	for _, l := range s.buckets {
		dst.dropped += l.dropped
	}
}
