package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestKindStrings(t *testing.T) {
	cases := []struct {
		kind Kind
		want string
	}{
		{ReadStart, "read-start"},
		{ReadEnd, "read-end"},
		{StripeSend, "stripe-send"},
		{StripeReply, "stripe-reply"},
		{PrefetchIssue, "prefetch-issue"},
		{PrefetchHit, "prefetch-hit"},
		{PrefetchWait, "prefetch-wait"},
		{PrefetchMiss, "prefetch-miss"},
		{RetryIssue, "retry-issue"},
		{RetryGiveUp, "retry-giveup"},
		{TimeoutFired, "timeout-fired"},
		{Kind(99), "Kind(99)"},
		{Kind(-1), "Kind(-1)"},
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(c.kind), got, c.want)
		}
	}
	// The canonical format writes kinds by number; a renamed or renumbered
	// kind must be a conscious change here, not an accident.
	if PrefetchMiss != 7 {
		t.Errorf("PrefetchMiss = %d, want 7 (canonical trace encoding)", int(PrefetchMiss))
	}
}

func TestWriteCanonicalAndDigest(t *testing.T) {
	build := func() *Log {
		l := NewLog(4)
		l.Add(Event{T: sim.Millisecond, Kind: ReadStart, Node: 1, File: "data", Off: 0, N: 65536})
		l.Add(Event{T: 2 * sim.Millisecond, Kind: ReadEnd, Node: 1, File: "data", Off: 0, N: 65536})
		return l
	}
	var sb strings.Builder
	if err := build().WriteCanonical(&sb); err != nil {
		t.Fatal(err)
	}
	want := "1000000\t0\t1\tdata\t0\t65536\n2000000\t1\t1\tdata\t0\t65536\ndropped\t0\n"
	if sb.String() != want {
		t.Fatalf("canonical form:\n%q\nwant:\n%q", sb.String(), want)
	}
	if build().Digest() != build().Digest() {
		t.Fatal("identical logs digest differently")
	}
	mutated := build()
	mutated.Add(Event{T: 3 * sim.Millisecond, Kind: PrefetchHit})
	if mutated.Digest() == build().Digest() {
		t.Fatal("digest blind to an extra event")
	}
}

func TestDigestCoversDrops(t *testing.T) {
	// Two logs retaining identical events but with different drop counts
	// must not digest equal: a truncated trace is not the same history.
	a, b := NewLog(1), NewLog(1)
	a.Add(Event{Kind: ReadStart})
	b.Add(Event{Kind: ReadStart})
	b.Add(Event{Kind: ReadEnd}) // dropped
	if a.Digest() == b.Digest() {
		t.Fatal("digest blind to dropped events")
	}
}

func TestLogAppendsAndCounts(t *testing.T) {
	l := NewLog(8)
	for i := 0; i < 3; i++ {
		l.Add(Event{T: sim.Time(i), Kind: ReadStart, Node: i})
	}
	l.Add(Event{Kind: PrefetchHit})
	if len(l.Events()) != 4 {
		t.Fatalf("events = %d", len(l.Events()))
	}
	if l.Count(ReadStart) != 3 || l.Count(PrefetchHit) != 1 || l.Count(ReadEnd) != 0 {
		t.Fatal("Count wrong")
	}
}

func TestLogBounded(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Add(Event{T: sim.Time(i)})
	}
	if len(l.Events()) != 2 || l.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d", len(l.Events()), l.Dropped())
	}
	var sb strings.Builder
	if err := l.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3 further events dropped") {
		t.Fatalf("drop notice missing:\n%s", sb.String())
	}
}

func TestWriteText(t *testing.T) {
	l := NewLog(4)
	l.Add(Event{T: sim.Millisecond, Kind: PrefetchIssue, Node: 3, File: "data", Off: 65536, N: 65536})
	var sb strings.Builder
	if err := l.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"prefetch-issue", "node=3", "data", "[65536,+65536)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLog(0) did not panic")
		}
	}()
	NewLog(0)
}
