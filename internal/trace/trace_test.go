package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestKindStrings(t *testing.T) {
	for k := ReadStart; k <= PrefetchMiss; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind formatting wrong")
	}
}

func TestLogAppendsAndCounts(t *testing.T) {
	l := NewLog(8)
	for i := 0; i < 3; i++ {
		l.Add(Event{T: sim.Time(i), Kind: ReadStart, Node: i})
	}
	l.Add(Event{Kind: PrefetchHit})
	if len(l.Events()) != 4 {
		t.Fatalf("events = %d", len(l.Events()))
	}
	if l.Count(ReadStart) != 3 || l.Count(PrefetchHit) != 1 || l.Count(ReadEnd) != 0 {
		t.Fatal("Count wrong")
	}
}

func TestLogBounded(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Add(Event{T: sim.Time(i)})
	}
	if len(l.Events()) != 2 || l.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d", len(l.Events()), l.Dropped())
	}
	var sb strings.Builder
	if err := l.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3 further events dropped") {
		t.Fatalf("drop notice missing:\n%s", sb.String())
	}
}

func TestWriteText(t *testing.T) {
	l := NewLog(4)
	l.Add(Event{T: sim.Millisecond, Kind: PrefetchIssue, Node: 3, File: "data", Off: 65536, N: 65536})
	var sb strings.Builder
	if err := l.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"prefetch-issue", "node=3", "data", "[65536,+65536)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLog(0) did not panic")
		}
	}()
	NewLog(0)
}
