// Package trace records a timeline of file system events — read calls,
// stripe requests, prefetch decisions — for debugging models and
// explaining performance. Tracing is off unless a Log is attached
// (pfs.FileSystem.SetTrace, prefetch.Config.Trace), and a bounded log
// keeps memory use flat on long runs.
package trace

import (
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/sim"
)

// Kind classifies an event.
type Kind int

const (
	ReadStart      Kind = iota // application read call entered
	ReadEnd                    // application read call returned
	StripeSend                 // a declustered piece sent to an I/O node
	StripeReply                // a piece's data arrived back
	PrefetchIssue              // read-ahead queued on the ART
	PrefetchHit                // read served from a completed buffer
	PrefetchWait               // read waited on an in-flight prefetch
	PrefetchMiss               // no buffer matched; direct read
	RetryIssue                 // a failed/timed-out piece re-sent to its I/O node
	RetryGiveUp                // retry budget exhausted; the error surfaces
	TimeoutFired               // a piece's reply deadline passed with no reply
	NodeCrash                  // an I/O node crashed; in-flight work vanishes
	NodeRestart                // a crashed I/O node came back up, cache cold
	DegradedRead               // array read reconstructed from parity (member dead)
	RebuildIO                  // one background rebuild copy onto the hot spare
	RebuildDone                // hot spare promoted; the array is healthy again
	PrefetchRetune             // controller moved Depth/MaxBuffers (Off=depth, N=cap)
	QoSArrival                 // open-loop tenant request spawned (Node=tenant, N=bytes)
	QoSShed                    // server shed a request at tenant admission (token bucket)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ReadStart:
		return "read-start"
	case ReadEnd:
		return "read-end"
	case StripeSend:
		return "stripe-send"
	case StripeReply:
		return "stripe-reply"
	case PrefetchIssue:
		return "prefetch-issue"
	case PrefetchHit:
		return "prefetch-hit"
	case PrefetchWait:
		return "prefetch-wait"
	case PrefetchMiss:
		return "prefetch-miss"
	case RetryIssue:
		return "retry-issue"
	case RetryGiveUp:
		return "retry-giveup"
	case TimeoutFired:
		return "timeout-fired"
	case NodeCrash:
		return "node-crash"
	case NodeRestart:
		return "node-restart"
	case DegradedRead:
		return "degraded-read"
	case RebuildIO:
		return "rebuild-io"
	case RebuildDone:
		return "rebuild-done"
	case PrefetchRetune:
		return "prefetch-retune"
	case QoSArrival:
		return "qos-arrival"
	case QoSShed:
		return "qos-shed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one timeline entry.
type Event struct {
	T    sim.Time
	Kind Kind
	Node int    // compute or I/O node involved
	File string // PFS path
	Off  int64
	N    int64
}

// Log is a bounded append-only event log. Not safe for use outside the
// simulation's single-threaded discipline (which is where all producers
// live).
type Log struct {
	events  []Event
	cap     int
	dropped int64
}

// NewLog returns a log that retains at most capacity events; later events
// are counted but dropped.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	// Preallocate the ring up front (bounded: huge caps start at 1024 and
	// grow amortized) so steady-state Add is a plain append with no
	// per-event garbage.
	pre := capacity
	if pre > 1024 {
		pre = 1024
	}
	return &Log{events: make([]Event, 0, pre), cap: capacity}
}

// Reset forgets all events but keeps the storage, so one Log can be
// reused across runs without reallocating the ring.
func (l *Log) Reset() {
	l.events = l.events[:0]
	l.dropped = 0
}

// Add appends an event (dropping it if the log is full).
func (l *Log) Add(e Event) {
	if len(l.events) >= l.cap {
		l.dropped++
		return
	}
	l.events = append(l.events, e)
}

// Events returns the retained events in order.
func (l *Log) Events() []Event { return l.events }

// Cap reports the log's retention capacity.
func (l *Log) Cap() int { return l.cap }

// Dropped reports how many events did not fit.
func (l *Log) Dropped() int64 { return l.dropped }

// Count returns how many events of kind k were retained.
func (l *Log) Count(k Kind) int {
	n := 0
	for _, e := range l.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// WriteCanonical renders the timeline in the canonical replay format:
// one event per line as tab-separated raw fields (nanosecond time, kind
// number, node, file, offset, length), terminated by a "dropped" footer.
// Unlike WriteText the encoding has no adaptive units or column padding,
// so it is stable across formatting changes — two runs of a simulation
// are byte-identical here if and only if they traced the same events.
func (l *Log) WriteCanonical(w io.Writer) error {
	for _, e := range l.events {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%d\t%d\n",
			int64(e.T), int(e.Kind), e.Node, e.File, e.Off, e.N); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "dropped\t%d\n", l.dropped)
	return err
}

// Digest hashes the canonical serialization (FNV-64a). Equal digests mean
// the logs retained identical event sequences and drop counts; this is
// the replayable fingerprint simcheck compares across runs of one seed.
func (l *Log) Digest() uint64 {
	h := fnv.New64a()
	// WriteCanonical cannot fail on a hash.Hash.
	l.WriteCanonical(h) //nolint:errcheck
	return h.Sum64()
}

// WriteText renders the timeline, one event per line.
func (l *Log) WriteText(w io.Writer) error {
	for _, e := range l.events {
		if _, err := fmt.Fprintf(w, "%12v  %-14s node=%-3d %s [%d,+%d)\n",
			e.T, e.Kind, e.Node, e.File, e.Off, e.N); err != nil {
			return err
		}
	}
	if l.dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d further events dropped)\n", l.dropped); err != nil {
			return err
		}
	}
	return nil
}
