// Package scenarios defines the three golden scenarios — healthy
// quickstart, chaos, and crash — shared by the determinism gate
// (cmd/detgate) and the end-to-end benchmark harness (cmd/runbench).
// Both tools must run literally the same machine configuration and
// workload spec: detgate pins the event history of these runs with
// committed digests, and runbench quotes throughput numbers for them, so
// a drift between the two would benchmark something the gate no longer
// guarantees.
package scenarios

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/ionode"
	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scenario is one golden run: a machine configuration plus an optional
// spec adjustment on top of the shared quickstart workload.
type Scenario struct {
	Name   string
	Config func() machine.Config
	Tweak  func(*workload.Spec) // optional; applied to Spec before Run
}

// QuickstartMachine is the gate platform: 4 compute and 4 I/O nodes,
// fragmentation off (matching internal/workload's golden-trace test).
func QuickstartMachine() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 4
	cfg.IONodes = 4
	cfg.UFS.Fragmentation = 0
	return cfg
}

// QuickstartSpec is the shared workload: M_RECORD readers with
// prefetching and 50 ms of computation between reads.
func QuickstartSpec(tl *trace.Log) workload.Spec {
	pcfg := prefetch.DefaultConfig()
	return workload.Spec{
		File:         "quickstart",
		FileSize:     1 << 20,
		RequestSize:  64 << 10,
		Mode:         pfs.MRecord,
		ComputeDelay: 50 * sim.Millisecond,
		Prefetch:     &pcfg,
		Trace:        tl,
	}
}

// ChaosMachine arms the full fault-tolerance stack on the gate platform.
func ChaosMachine() machine.Config {
	cfg := QuickstartMachine()
	cfg.DiskFaultRate = 0.03
	cfg.DiskFaultTransientFrac = 1
	cfg.DiskFaultJitter = 0.2
	cfg.FaultSeed = 42
	cfg.Shed = ionode.ShedPolicy{Threshold: 3, Cooldown: 20 * sim.Millisecond}
	cfg.PFS.Retry = pfs.DefaultRetryPolicy()
	return cfg
}

// CrashMachine arms the crash–restart fault domain on the gate platform:
// two whole-node outages the restart-aware failover rides out, plus a
// permanent member loss with the online rebuild racing the reads.
func CrashMachine() machine.Config {
	cfg := QuickstartMachine()
	cfg.PFS.Retry = pfs.RetryPolicy{
		MaxRetries:   8,
		Timeout:      2 * sim.Second,
		Backoff:      2 * sim.Millisecond,
		BackoffMax:   100 * sim.Millisecond,
		Seed:         1,
		DownPoll:     50 * sim.Millisecond,
		DownDeadline: 2500 * sim.Millisecond,
	}
	cfg.Crash = machine.CrashPlan{
		Count:    2,
		Seed:     5,
		Start:    50 * sim.Millisecond,
		Window:   400 * sim.Millisecond,
		Downtime: 800 * sim.Millisecond,
	}
	cfg.MemberFail = machine.MemberFailPlan{At: 100 * sim.Millisecond, Array: 0, Member: 1}
	cfg.Rebuild = disk.RebuildPolicy{Chunk: 128 << 10, Gap: 2 * sim.Millisecond}
	return cfg
}

// TournamentTweak arms the prefetcher-zoo stack on a spec: the hybrid
// policy (mode, sequential, and stride sources racing under per-stream
// accuracy grading) with the online controller retuning Depth and
// MaxBuffers every 4 reads. Shared by the golden scenario below and the
// ext-tournament experiment's simcheck twin, so the gated configuration
// is literally the one the experiment verifies.
func TournamentTweak(spec *workload.Spec) {
	spec.Prefetch.Policy = "hybrid"
	spec.Prefetch.Controller = prefetch.ControllerConfig{Interval: 4}
}

// ScaleMachine is the large-configuration platform: 1024 compute and
// 256 I/O nodes on a 36×36 mesh, the I/O side partitioned into 16 shard
// groups (a 1024×256 machine on 257 kernels would spend every ~20µs
// lookahead round on barriers instead of events), and files striping
// over 16-node tiles of the I/O partition so declustering stays
// O(stripe width).
func ScaleMachine() machine.Config {
	cfg := QuickstartMachine()
	cfg.ComputeNodes = 1024
	cfg.IONodes = 256
	cfg.IOGroups = 16
	cfg.PFS.GroupWidth = 16
	return cfg
}

// ScaleTweak sizes the quickstart spec for the scale platform: every
// compute node streams a private 128 KB file (two 64 KB reads) created
// with the tiled default attributes, so the 1024-file population covers
// all 256 I/O nodes.
func ScaleTweak(spec *workload.Spec) {
	spec.SeparateFiles = true
	spec.FileSize = 1024 * (128 << 10)
}

// Scale returns the 1024×256 scenario. It is deliberately not part of
// Golden() — the detgate golden set stays small and fast — and is
// instead covered by the scale shard-differential test and reachable by
// name (runbench -scenario scale).
func Scale() Scenario {
	return Scenario{Name: "scale", Config: ScaleMachine, Tweak: ScaleTweak}
}

// Golden returns the gated scenarios in golden-file line order.
func Golden() []Scenario {
	return []Scenario{
		{Name: "quickstart", Config: QuickstartMachine},
		{Name: "chaos", Config: ChaosMachine},
		{Name: "crash", Config: CrashMachine,
			Tweak: func(spec *workload.Spec) { spec.ContinueOnUnavailable = true }},
		{Name: "tournament", Config: QuickstartMachine, Tweak: TournamentTweak},
	}
}

// WithShards returns sc reconfigured for the sharded engine with the
// given worker count (n ≥ 1), renamed "<name>@shards=<n>". The fixed
// group partition makes results bit-identical at every n, so detgate
// records one sharded digest per scenario and asserts the others equal.
func WithShards(sc Scenario, n int) Scenario {
	base := sc.Config
	return Scenario{
		Name: fmt.Sprintf("%s@shards=%d", sc.Name, n),
		Config: func() machine.Config {
			cfg := base()
			cfg.Shards = n
			return cfg
		},
		Tweak: sc.Tweak,
	}
}

// WithQueue returns sc reconfigured to run its kernels on the named
// event-queue implementation (sim.QueueHeap / sim.QueueLadder),
// renamed "<name>@queue=<q>". Both queues realize the identical
// (time, seq) total order, so detgate asserts the renamed run's
// digests equal the original's rather than recording new goldens.
func WithQueue(sc Scenario, queue string) Scenario {
	base := sc.Config
	return Scenario{
		Name: fmt.Sprintf("%s@queue=%s", sc.Name, queue),
		Config: func() machine.Config {
			cfg := base()
			cfg.Queue = queue
			return cfg
		},
		Tweak: sc.Tweak,
	}
}

// ByName returns the golden scenario with the given name — or the scale
// scenario, which is addressable by name without being golden — or
// false.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Golden() {
		if sc.Name == name {
			return sc, true
		}
	}
	if sc := Scale(); sc.Name == name {
		return sc, true
	}
	return Scenario{}, false
}
