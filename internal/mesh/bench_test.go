package mesh

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkSend measures the analytic cost of routing and scheduling one
// message across the mesh.
func BenchmarkSend(b *testing.B) {
	k := sim.NewKernel()
	m := New(k, Paragon(8, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(i%8, 8+(i%8), 64<<10, nil)
		if k.Pending() > 4096 {
			b.StopTimer()
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRoute isolates the XY path computation.
func BenchmarkRoute(b *testing.B) {
	k := sim.NewKernel()
	m := New(k, Paragon(16, 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.route(i%256, (i*73)%256)
	}
}
