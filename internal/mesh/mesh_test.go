package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testConfig() Config {
	return Config{
		Width:         4,
		Height:        4,
		HopLatency:    100 * sim.Nanosecond,
		LinkBandwidth: 100e6,
		NICBandwidth:  100e6,
		SendOverhead:  10 * sim.Microsecond,
		RecvOverhead:  5 * sim.Microsecond,
	}
}

func TestHops(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testConfig())
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 3, 3},  // same row
		{0, 12, 3}, // same column
		{0, 15, 6}, // opposite corner
		{5, 10, 2}, // one x, one y
		{15, 0, 6}, // reverse of corner
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestRouteLengthMatchesHops(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testConfig())
	if err := quick.Check(func(a, b uint8) bool {
		src, dst := int(a)%16, int(b)%16
		return len(m.route(src, dst)) == m.Hops(src, dst)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUncontendedLatency(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	m := New(k, cfg)
	const size = 1 << 20 // 1 MiB
	var deliveredAt sim.Time
	got := m.Send(0, 15, size, func() { deliveredAt = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if deliveredAt != got {
		t.Fatalf("callback at %v, Send returned %v", deliveredAt, got)
	}
	// Cut-through: overhead + (6 link + 1 ejection) hop latencies + ONE
	// serialization of the message (the pipeline overlaps the rest) +
	// receive overhead.
	xfer := bytesTime(size, cfg.LinkBandwidth)
	want := cfg.SendOverhead + 7*cfg.HopLatency + xfer + cfg.RecvOverhead
	if got != want {
		t.Fatalf("delivery = %v, want %v", got, want)
	}
}

func TestLocalDelivery(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testConfig())
	fired := false
	m.Send(3, 3, 4096, func() { fired = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("local message never delivered")
	}
}

func TestInjectionSerializes(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	m := New(k, cfg)
	const size = 1 << 20
	t1 := m.Send(0, 1, size, nil)
	t2 := m.Send(0, 2, size, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	xfer := bytesTime(size, cfg.NICBandwidth)
	if t2-t1 < xfer {
		t.Fatalf("second message delivered %v after first, want ≥ %v (injection port serialization)", t2-t1, xfer)
	}
}

func TestEjectionSerializes(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	m := New(k, cfg)
	const size = 1 << 20
	// Two different senders, same destination, disjoint paths (row 0 and
	// row 1 into column 3 would share the final link; instead use nodes in
	// the same column as dst so paths share only the destination).
	t1 := m.Send(3, 15, size, nil)  // column 3 downward
	t2 := m.Send(12, 15, size, nil) // row 3 rightward
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	d := t2 - t1
	if d < 0 {
		d = -d
	}
	xfer := bytesTime(size, cfg.NICBandwidth)
	if d < xfer/2 {
		t.Fatalf("deliveries %v apart, want ejection-port spacing ≥ %v", d, xfer/2)
	}
}

func TestLinkContention(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	m := New(k, cfg)
	const size = 1 << 20
	// 0->1 and 0->2 share link 0->east... both also share node 0's
	// injection port. To isolate a link, send 0->2 and 1->2: they share
	// link 1->east only.
	t1 := m.Send(0, 2, size, nil)
	t2 := m.Send(1, 2, size, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	xfer := bytesTime(size, cfg.LinkBandwidth)
	if t2-t1 < xfer/2 {
		t.Fatalf("contending deliveries %v apart, want ≥ %v", t2-t1, xfer/2)
	}
}

func TestTransferBlocksSender(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	m := New(k, cfg)
	var sendReturned, delivered sim.Time
	k.Go("sender", func(p *sim.Proc) {
		s := m.Transfer(p, 0, 5, 64<<10)
		sendReturned = p.Now()
		if err := s.Wait(p); err != nil {
			t.Errorf("Wait: %v", err)
		}
		delivered = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sendReturned != cfg.SendOverhead {
		t.Fatalf("Transfer returned at %v, want %v", sendReturned, cfg.SendOverhead)
	}
	if delivered <= sendReturned {
		t.Fatalf("delivery %v not after initiation %v", delivered, sendReturned)
	}
	if m.cfg.SendOverhead != cfg.SendOverhead {
		t.Fatal("Transfer corrupted SendOverhead")
	}
}

func TestStatsAccumulate(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testConfig())
	for i := 0; i < 5; i++ {
		m.Send(0, 15, 1000, nil)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Messages != 5 || m.Bytes != 5000 {
		t.Fatalf("Messages=%d Bytes=%d", m.Messages, m.Bytes)
	}
	if m.Latency.N() != 5 {
		t.Fatalf("latency samples = %d", m.Latency.N())
	}
}

func TestBadArgumentsPanic(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testConfig())
	for _, fn := range []func(){
		func() { m.Send(-1, 0, 10, nil) },
		func() { m.Send(0, 99, 10, nil) },
		func() { m.Send(0, 1, -5, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Send did not panic")
				}
			}()
			fn()
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad geometry did not panic")
			}
		}()
		New(k, Config{Width: 0, Height: 2, LinkBandwidth: 1, NICBandwidth: 1})
	}()
}

// Property: delivery time is monotone in message size on a quiet mesh.
func TestDeliveryMonotoneInSize(t *testing.T) {
	if err := quick.Check(func(a, b uint32) bool {
		if a > b {
			a, b = b, a
		}
		timeFor := func(size int64) sim.Time {
			k := sim.NewKernel()
			m := New(k, testConfig())
			at := m.Send(0, 15, size, nil)
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			return at
		}
		return timeFor(int64(a)) <= timeFor(int64(b))
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: with random traffic, every callback fires and delivery times
// are at least the uncontended minimum.
func TestRandomTrafficDelivers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := sim.NewKernel()
	cfg := testConfig()
	m := New(k, cfg)
	const msgs = 200
	var delivered int
	for i := 0; i < msgs; i++ {
		src, dst := rng.Intn(16), rng.Intn(16)
		size := int64(rng.Intn(1 << 18))
		minTime := k.Now() + cfg.SendOverhead + cfg.RecvOverhead +
			sim.Time(m.Hops(src, dst)+1)*cfg.HopLatency
		at := m.Send(src, dst, size, func() { delivered++ })
		if at < minTime {
			t.Fatalf("delivery %v below physical minimum %v", at, minTime)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != msgs {
		t.Fatalf("delivered %d of %d", delivered, msgs)
	}
}

func TestDownNodeDropsTraffic(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testConfig())
	m.SetDown(5, true)
	delivered := false
	m.Send(0, 5, 4096, func() { delivered = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("message delivered to a down node")
	}
	if m.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", m.Dropped)
	}
	// The sender still paid for the attempt: stats and link clocks moved.
	if m.Messages != 1 || m.Bytes != 4096 {
		t.Fatalf("Messages=%d Bytes=%d, want 1/4096", m.Messages, m.Bytes)
	}
	// Back up: traffic flows again.
	m.SetDown(5, false)
	m.Send(0, 5, 4096, func() { delivered = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("message to a restarted node not delivered")
	}
	if m.Dropped != 1 {
		t.Fatalf("Dropped = %d after restart, want still 1", m.Dropped)
	}
}

func TestSetDownBoundsPanic(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("SetDown out of range did not panic")
		}
	}()
	m.SetDown(99, true)
}
