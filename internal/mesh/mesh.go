// Package mesh models the Intel Paragon's 2-D mesh interconnect.
//
// Messages are routed XY (all X hops, then all Y hops), the deadlock-free
// dimension-order routing the Paragon used. Each unidirectional link and
// each node's injection/ejection port is a serially reusable resource: a
// message occupies it for size/bandwidth. The head of a message advances
// one hop per HopLatency (virtual cut-through), so an uncontended
// transfer costs
//
//	SoftwareOverhead + hops·HopLatency + size/LinkBandwidth
//
// and contention appears as queueing delay on whichever link or port is
// busiest. Occupancy is resolved analytically at send time with per-link
// free-at clocks, which is deterministic and accurate for the traffic
// levels in this repository (the Paragon's 175 MB/s links are never the
// bottleneck against mid-90s SCSI RAID arrays; disks are).
package mesh

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Config describes the interconnect hardware.
type Config struct {
	Width, Height int      // mesh dimensions; Width*Height node slots
	HopLatency    sim.Time // per-hop header latency
	LinkBandwidth float64  // bytes per second per link
	NICBandwidth  float64  // bytes per second through a node's network port
	SendOverhead  sim.Time // software cost to initiate a message (sender CPU)
	RecvOverhead  sim.Time // software cost to accept a message (receiver CPU)
}

// Paragon returns a configuration with Intel Paragon XP/S-era parameters:
// 175 MB/s links, ~40 ns per hop in hardware, and OSF/1 message-passing
// software overheads in the tens of microseconds.
func Paragon(width, height int) Config {
	return Config{
		Width:         width,
		Height:        height,
		HopLatency:    40 * sim.Nanosecond,
		LinkBandwidth: 175e6,
		NICBandwidth:  175e6,
		SendOverhead:  30 * sim.Microsecond,
		RecvOverhead:  20 * sim.Microsecond,
	}
}

// direction of a unidirectional link leaving a node.
type direction uint8

const (
	east direction = iota
	west
	north
	south
)

// linkKey identifies one unidirectional link by its origin node and
// direction. The occupancy clocks themselves live in a flat slice
// indexed by node*4+dir (see Mesh.linkFree): every hop of every message
// touches a link clock, and a map lookup there costs a hash per hop
// where the slice costs an add and a bounds check.
type linkKey struct {
	node int
	dir  direction
}

// linkIndex is the linkFree slot for the link leaving node in dir.
func linkIndex(node int, dir direction) int { return node*4 + int(dir) }

// Mesh is the interconnect instance. All methods must be called from
// simulation context (events or processes of the owning kernel — or, in
// sharded mode, of the kernel owning the sending node's group).
type Mesh struct {
	k   *sim.Kernel
	cfg Config

	linkFree   []sim.Time // per-link clock, indexed linkIndex(node, dir): earliest next use
	injectFree []sim.Time // per-node injection port clock
	ejectFree  []sim.Time // per-node ejection port clock
	down       []bool     // nodes whose deliveries are dropped (crashed)

	// Sharded mode (BindShards): sends are deferred into per-group
	// outboxes and resolved at round barriers; see Resolve. The link and
	// port clocks above stay global — they are only ever advanced from
	// Resolve, which runs single-threaded in canonical order.
	shards  *sim.ShardSet
	groupOf []int      // node -> shard group
	outages [][]outage // per-node static down intervals (replaces SetDown)

	// Measurements.
	Messages int64
	Bytes    int64
	Dropped  int64           // messages addressed to a down node
	Latency  stats.Histogram // end-to-end message latency, seconds
}

// outage is one closed-open [at, until) interval during which a node
// drops deliveries. Sharded runs use a static schedule instead of the
// SetDown flag because the flag would be read from other groups'
// execution contexts; the machine layer knows every outage at build
// time, so the lookup can be a pure function of the send time.
type outage struct{ at, until sim.Time }

// New builds a mesh on kernel k. It panics on a non-positive geometry or
// bandwidth, which would make every transfer time undefined.
func New(k *sim.Kernel, cfg Config) *Mesh {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("mesh: bad geometry %dx%d", cfg.Width, cfg.Height))
	}
	if cfg.LinkBandwidth <= 0 || cfg.NICBandwidth <= 0 {
		panic("mesh: bandwidth must be positive")
	}
	n := cfg.Width * cfg.Height
	return &Mesh{
		k:          k,
		cfg:        cfg,
		linkFree:   make([]sim.Time, n*4),
		injectFree: make([]sim.Time, n),
		ejectFree:  make([]sim.Time, n),
		down:       make([]bool, n),
	}
}

// SetDown marks a node slot down (or back up). Messages addressed to a
// down node traverse the mesh — the links do not know the destination
// died — but the delivery callback never runs: the NIC has no host to
// hand the message to. Senders see nothing, exactly like the real
// machine, and discover the loss by timeout.
func (m *Mesh) SetDown(node int, down bool) {
	if m.shards != nil {
		panic("mesh: SetDown is a legacy-mode control; sharded runs use the static AddOutage schedule")
	}
	if node < 0 || node >= m.Nodes() {
		panic(fmt.Sprintf("mesh: node %d outside %d-node mesh", node, m.Nodes()))
	}
	m.down[node] = down
}

// Nodes reports the number of node slots in the mesh.
func (m *Mesh) Nodes() int { return m.cfg.Width * m.cfg.Height }

// MinLookahead returns a lower bound on the delivery latency of any
// message: HopLatency + RecvOverhead. Even a zero-byte self-send pays
// one hop of ejection-stage latency plus the receive software cost, and
// the bound must hold for Transfer too, whose sender overhead is paid
// by the sleeping process before the message is injected — so
// SendOverhead cannot be part of the bound. This is the safe lookahead
// window for conservative parallel execution (sim.ShardSet).
func (m *Mesh) MinLookahead() sim.Time { return m.cfg.HopLatency + m.cfg.RecvOverhead }

// BindShards switches the mesh into sharded mode: sends from a node are
// appended to its group's outbox and resolved at round barriers in the
// canonical (time, shard, seq) order, instead of advancing the link
// clocks inline. groupOf maps every mesh node slot to its shard group.
// The shard set's lookahead must not exceed MinLookahead — otherwise a
// message could arrive inside the window that was executed assuming no
// input, and the conservative protocol would be unsound.
func (m *Mesh) BindShards(ss *sim.ShardSet, groupOf []int) {
	if len(groupOf) != m.Nodes() {
		panic(fmt.Sprintf("mesh: groupOf covers %d of %d nodes", len(groupOf), m.Nodes()))
	}
	for n, g := range groupOf {
		if g < 0 || g >= ss.Groups() {
			panic(fmt.Sprintf("mesh: node %d assigned to group %d outside %d groups", n, g, ss.Groups()))
		}
	}
	if la := ss.Lookahead(); la > m.MinLookahead() {
		panic(fmt.Sprintf("mesh: shard lookahead %v exceeds the mesh minimum latency %v", la, m.MinLookahead()))
	}
	m.shards = ss
	m.groupOf = append([]int(nil), groupOf...)
	m.outages = make([][]outage, m.Nodes())
	ss.SetResolver(m)
}

// AddOutage schedules a static delivery outage for node over [at,
// until): sharded mode's replacement for runtime SetDown calls. Must be
// called before the simulation runs; intervals of one node must be
// added in nondecreasing, non-overlapping order (the machine layer
// merges them).
func (m *Mesh) AddOutage(node int, at, until sim.Time) {
	if m.shards == nil {
		panic("mesh: AddOutage requires sharded mode (BindShards)")
	}
	if node < 0 || node >= m.Nodes() {
		panic(fmt.Sprintf("mesh: node %d outside %d-node mesh", node, m.Nodes()))
	}
	if until <= at {
		panic(fmt.Sprintf("mesh: empty outage [%v, %v)", at, until))
	}
	m.outages[node] = append(m.outages[node], outage{at: at, until: until})
}

// downAt reports whether node drops deliveries for a message sent at t:
// the static schedule in sharded mode, the SetDown flag otherwise (both
// are evaluated at send time, like the legacy path).
func (m *Mesh) downAt(node int, t sim.Time) bool {
	if m.shards != nil {
		// AddOutage requires sorted, non-overlapping intervals per node,
		// so a binary search for the first interval ending after t
		// replaces the linear scan (chaos schedules at large node counts
		// put many outages on the hot delivery path).
		list := m.outages[node]
		lo, hi := 0, len(list)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if list[mid].until <= t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(list) && t >= list[lo].at
	}
	return m.down[node]
}

// coord maps a node id to mesh coordinates.
func (m *Mesh) coord(id int) (x, y int) { return id % m.cfg.Width, id / m.cfg.Width }

// route returns the XY path from src to dst as a sequence of links.
func (m *Mesh) route(src, dst int) []linkKey {
	x, y := m.coord(src)
	dx, dy := m.coord(dst)
	var path []linkKey
	cur := src
	for x != dx {
		if x < dx {
			path = append(path, linkKey{cur, east})
			x++
		} else {
			path = append(path, linkKey{cur, west})
			x--
		}
		cur = y*m.cfg.Width + x
	}
	for y != dy {
		if y < dy {
			path = append(path, linkKey{cur, north})
			y++
		} else {
			path = append(path, linkKey{cur, south})
			y--
		}
		cur = y*m.cfg.Width + x
	}
	return path
}

// Hops reports the XY hop count between two nodes.
func (m *Mesh) Hops(src, dst int) int {
	x, y := m.coord(src)
	dx, dy := m.coord(dst)
	abs := func(v int) int {
		if v < 0 {
			return -v
		}
		return v
	}
	return abs(x-dx) + abs(y-dy)
}

// occupy advances a resource clock: the transfer starts at
// max(arrival, free) and holds the resource for dur. It returns the start
// time.
func occupy(free *sim.Time, arrival sim.Time, dur sim.Time) sim.Time {
	start := arrival
	if *free > start {
		start = *free
	}
	*free = start + dur
	return start
}

// Send transmits size bytes from node src to node dst, invoking deliver on
// the destination when the tail of the message (and the receiver software
// overhead) has arrived. It returns the delivery time. Send itself does
// not consume sender CPU time; callers that model a blocking sender should
// sleep SendOverhead around the call (see Transfer).
//
// In sharded mode the message is outboxed and resolved at the round
// barrier instead, and Send returns 0: the delivery time is not known
// at send time. No non-test caller uses the return value.
func (m *Mesh) Send(src, dst int, size int64, deliver func()) sim.Time {
	if m.shards != nil {
		m.post(src, dst, size, false).Fn = deliver
		return 0
	}
	deliveredAt, delivered := m.transitAt(m.k.Now(), m.cfg.SendOverhead, src, dst, size)
	if delivered && deliver != nil {
		m.k.At(deliveredAt, deliver)
	}
	return deliveredAt
}

// SendCall is Send with a pooled-args delivery callback (see
// sim.Kernel.AtCall): deliver(arg) runs at the destination with no
// closure constructed, making the whole send allocation-free. Routing,
// timing, accounting, and drop behavior are identical to Send.
func (m *Mesh) SendCall(src, dst int, size int64, deliver func(any), arg any) sim.Time {
	if m.shards != nil {
		p := m.post(src, dst, size, false)
		p.CFn, p.Arg = deliver, arg
		return 0
	}
	deliveredAt, delivered := m.transitAt(m.k.Now(), m.cfg.SendOverhead, src, dst, size)
	if delivered && deliver != nil {
		m.k.AtCall(deliveredAt, deliver, arg)
	}
	return deliveredAt
}

// post books a sharded send into the source group's outbox. The send's
// group is derived from src — model code always sends from the node it
// is executing on, so src's group is the executing group.
func (m *Mesh) post(src, dst int, size int64, noSendOH bool) *sim.Post {
	if src < 0 || src >= m.Nodes() || dst < 0 || dst >= m.Nodes() {
		panic(fmt.Sprintf("mesh: send %d->%d outside %d-node mesh", src, dst, m.Nodes()))
	}
	if size < 0 {
		panic("mesh: negative message size")
	}
	p := m.shards.Post(m.groupOf[src])
	p.Src, p.Dst, p.Size, p.NoSendOverhead = src, dst, size, noSendOH
	return p
}

// Resolve implements sim.Resolver: it routes an outboxed post exactly
// like an inline transit would have at its send time, advancing the
// global link and port clocks. Called single-threaded at round
// barriers in canonical (time, shard, seq) order, which keeps the
// shared clocks deterministic at every worker count.
func (m *Mesh) Resolve(p *sim.Post) (group int, at sim.Time, deliver bool) {
	oh := m.cfg.SendOverhead
	if p.NoSendOverhead {
		oh = 0
	}
	at, deliver = m.transitAt(p.T, oh, p.Src, p.Dst, p.Size)
	return m.groupOf[p.Dst], at, deliver
}

// transitAt routes a message sent at now, advances the port and link
// clocks, and records the measurement. delivered is false when the
// destination is down and the delivery callback must not run. sendOH is
// the sender software overhead to charge (zero when the sender already
// paid it, see Transfer).
func (m *Mesh) transitAt(now sim.Time, sendOH sim.Time, src, dst int, size int64) (deliveredAt sim.Time, delivered bool) {
	if src < 0 || src >= m.Nodes() || dst < 0 || dst >= m.Nodes() {
		panic(fmt.Sprintf("mesh: send %d->%d outside %d-node mesh", src, dst, m.Nodes()))
	}
	if size < 0 {
		panic("mesh: negative message size")
	}
	m.Messages++
	m.Bytes += size

	xfer := bytesTime(size, m.cfg.LinkBandwidth)
	nicXfer := bytesTime(size, m.cfg.NICBandwidth)

	// Software initiation, then the injection port.
	headAt := now + sendOH
	start := occupy(&m.injectFree[src], headAt, nicXfer)

	// The head advances one hop per HopLatency; each link is held for the
	// serialization time of the whole message from the moment the head
	// claims it. The XY walk is inlined (rather than materializing the
	// route) so the per-message path costs no allocation.
	arrival := start
	x, y := m.coord(src)
	dx, dy := m.coord(dst)
	cur := src
	for x != dx {
		var dir direction
		if x < dx {
			dir, x = east, x+1
		} else {
			dir, x = west, x-1
		}
		arrival = occupy(&m.linkFree[linkIndex(cur, dir)], arrival+m.cfg.HopLatency, xfer)
		cur = y*m.cfg.Width + x
	}
	for y != dy {
		var dir direction
		if y < dy {
			dir, y = north, y+1
		} else {
			dir, y = south, y-1
		}
		arrival = occupy(&m.linkFree[linkIndex(cur, dir)], arrival+m.cfg.HopLatency, xfer)
		cur = y*m.cfg.Width + x
	}

	// Ejection port at the destination, then the tail (serialization time)
	// and receive-side software.
	ejStart := occupy(&m.ejectFree[dst], arrival+m.cfg.HopLatency, nicXfer)
	deliveredAt = ejStart + nicXfer + m.cfg.RecvOverhead

	m.Latency.Observe((deliveredAt - now).Seconds())
	if m.downAt(dst, now) {
		m.Dropped++
		return deliveredAt, false
	}
	return deliveredAt, true
}

// Transfer is the blocking-process form of Send: the calling process pays
// the sender software overhead, the message is injected, and a Signal is
// returned that fires at delivery on the destination. The overhead was
// already paid by the sleeping process, so the transit charges none.
// Transfer is a client-side primitive: in sharded mode the signal lives
// on the mesh's home kernel, so only processes of that group may use it.
func (m *Mesh) Transfer(p *sim.Proc, src, dst int, size int64) *sim.Signal {
	p.Sleep(m.cfg.SendOverhead)
	done := sim.NewSignal(m.k)
	if m.shards != nil {
		m.post(src, dst, size, true).Fn = func() { done.Fire(nil) }
		return done
	}
	deliveredAt, delivered := m.transitAt(m.k.Now(), 0, src, dst, size)
	if delivered {
		m.k.At(deliveredAt, func() { done.Fire(nil) })
	}
	return done
}

// bytesTime converts a byte count at a bandwidth to a duration.
func bytesTime(size int64, bw float64) sim.Time {
	return sim.Time(float64(size) / bw * float64(sim.Second))
}
