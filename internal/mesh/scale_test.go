package mesh

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// scaleConfig returns a mesh the size of the large simulated machines
// (1024 compute + 256 I/O nodes needs a 36x36 grid; the non-square
// variants stress the Width!=Height index arithmetic).
func scaleConfig(w, h int) Config {
	cfg := Paragon(w, h)
	return cfg
}

// naiveHops is an independent hop-count reference: decompose both ids
// with explicit division and count unit steps one at a time.
func naiveHops(width, src, dst int) int {
	sx, sy := src%width, src/width
	dx, dy := dst%width, dst/width
	hops := 0
	for sx != dx {
		if sx < dx {
			sx++
		} else {
			sx--
		}
		hops++
	}
	for sy != dy {
		if sy < dy {
			sy++
		} else {
			sy--
		}
		hops++
	}
	return hops
}

// Routing on large non-square meshes: the XY walk must agree with a
// naive unit-step reference on hop count, and the materialized route
// must be step-contiguous (each link leaves the node the previous link
// arrived at) with all X movement before any Y movement.
func TestLargeMeshRoutingMatchesNaive(t *testing.T) {
	for _, geo := range []struct{ w, h int }{{32, 40}, {64, 64}, {36, 36}} {
		k := sim.NewKernel()
		m := New(k, scaleConfig(geo.w, geo.h))
		n := m.Nodes()
		rng := rand.New(rand.NewSource(int64(geo.w*1000 + geo.h)))
		// Corners and random interior pairs: corner-to-corner paths hug
		// the mesh boundary where a bad index would walk off the grid.
		corners := []int{0, geo.w - 1, n - geo.w, n - 1}
		var pairs [][2]int
		for _, a := range corners {
			for _, b := range corners {
				pairs = append(pairs, [2]int{a, b})
			}
		}
		for i := 0; i < 200; i++ {
			pairs = append(pairs, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		for _, pr := range pairs {
			src, dst := pr[0], pr[1]
			want := naiveHops(geo.w, src, dst)
			if got := m.Hops(src, dst); got != want {
				t.Fatalf("%dx%d: Hops(%d,%d) = %d, want %d", geo.w, geo.h, src, dst, got, want)
			}
			path := m.route(src, dst)
			if len(path) != want {
				t.Fatalf("%dx%d: route(%d,%d) has %d links, want %d", geo.w, geo.h, src, dst, len(path), want)
			}
			cur := src
			sawY := false
			for _, lk := range path {
				if lk.node != cur {
					t.Fatalf("%dx%d: route(%d,%d) link leaves %d, head is at %d", geo.w, geo.h, src, dst, lk.node, cur)
				}
				switch lk.dir {
				case east:
					cur++
				case west:
					cur--
				case north:
					cur += geo.w
				case south:
					cur -= geo.w
				}
				if lk.dir == north || lk.dir == south {
					sawY = true
				} else if sawY {
					t.Fatalf("%dx%d: route(%d,%d) moves in X after Y (not dimension-ordered)", geo.w, geo.h, src, dst)
				}
				if cur < 0 || cur >= n {
					t.Fatalf("%dx%d: route(%d,%d) walks to node %d outside the mesh", geo.w, geo.h, src, dst, cur)
				}
			}
			if cur != dst {
				t.Fatalf("%dx%d: route(%d,%d) ends at %d", geo.w, geo.h, src, dst, cur)
			}
		}
	}
}

// Per-link clock indexing on a non-square mesh: a boundary-hugging send
// must advance exactly the link clocks of its XY route — no neighbor's
// clock, no out-of-range slot. The inlined walk in transitAt and the
// materialized route must agree on which slots those are.
func TestLargeMeshLinkClockIndexing(t *testing.T) {
	const w, h = 32, 40
	cases := [][2]int{
		{0, w - 1},           // top row, pure east
		{w - 1, 0},           // top row, pure west
		{0, (h - 1) * w},     // left column, pure north
		{(h - 1) * w, 0},     // left column, pure south
		{w - 1, w*h - 1},     // right column
		{w*h - 1, 0},         // corner to corner
		{w - 1, (h - 1) * w}, // anti-diagonal
		{17*w + 5, 3*w + 29}, // interior, west then south
	}
	for _, c := range cases {
		src, dst := c[0], c[1]
		k := sim.NewKernel()
		m := New(k, scaleConfig(w, h))
		m.Send(src, dst, 4096, nil)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		want := make(map[int]bool)
		for _, lk := range m.route(src, dst) {
			want[linkIndex(lk.node, lk.dir)] = true
		}
		for i, free := range m.linkFree {
			if free > 0 != want[i] {
				t.Fatalf("send %d->%d: link slot %d (node %d dir %d) advanced=%v, on route=%v",
					src, dst, i, i/4, i%4, free > 0, want[i])
			}
		}
		if m.injectFree[src] == 0 || m.ejectFree[dst] == 0 {
			t.Fatalf("send %d->%d: port clocks not advanced", src, dst)
		}
	}
}

// The binary-search outage lookup must agree with a naive linear scan
// at every probe, including the interval boundaries (closed-open
// [at, until)) and times before, between, and after all intervals.
func TestOutageLookupMatchesLinearScan(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, scaleConfig(32, 40))
	ss := sim.NewShardSet(2, m.MinLookahead())
	m.BindShards(ss, make([]int, m.Nodes()))

	const node = 777
	rng := rand.New(rand.NewSource(99))
	var ref []outage
	at := sim.Time(0)
	for i := 0; i < 64; i++ {
		at += sim.Time(1 + rng.Intn(1000))
		until := at + sim.Time(1+rng.Intn(500))
		m.AddOutage(node, at, until)
		ref = append(ref, outage{at: at, until: until})
		at = until
	}
	linear := func(t sim.Time) bool {
		for _, o := range ref {
			if t >= o.at && t < o.until {
				return true
			}
		}
		return false
	}
	var probes []sim.Time
	for _, o := range ref {
		probes = append(probes, o.at-1, o.at, o.at+1, o.until-1, o.until, o.until+1)
	}
	for i := 0; i < 2000; i++ {
		probes = append(probes, sim.Time(rng.Intn(int(at)+5000)))
	}
	for _, p := range probes {
		if got, want := m.downAt(node, p), linear(p); got != want {
			t.Fatalf("downAt(%d, %v) = %v, linear reference says %v", node, p, got, want)
		}
	}
	// A node with no schedule is never down.
	if m.downAt(3, 12345) {
		t.Fatal("outage-free node reported down")
	}
}
