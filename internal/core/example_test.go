package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The simulation is deterministic, so examples assert exact output.

// ExampleRun reproduces the repository's headline result in a few lines:
// with computation between reads, the prototype lifts observed bandwidth.
func ExampleRun() {
	machine := core.DefaultMachine()
	machine.ComputeNodes = 4
	machine.IONodes = 4

	w := core.Workload{
		FileSize:     8 << 20,
		RequestSize:  64 << 10,
		Mode:         core.MRecord,
		ComputeDelay: core.Seconds(0.05),
	}
	plain, err := core.Run(machine, w)
	if err != nil {
		panic(err)
	}
	w.Prefetch = true
	fetched, err := core.Run(machine, w)
	if err != nil {
		panic(err)
	}
	fmt.Printf("plain:    %.2f MB/s\n", plain.Bandwidth)
	fmt.Printf("prefetch: %.2f MB/s\n", fetched.Bandwidth)
	fmt.Printf("hit rate: %.0f%%\n", 100*fetched.Prefetch.HitRate())
	// Output:
	// plain:    3.03 MB/s
	// prefetch: 4.64 MB/s
	// hit rate: 97%
}
