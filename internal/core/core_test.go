package core

import (
	"testing"

	"repro/internal/prefetch"
)

func quickMachine() MachineConfig {
	cfg := DefaultMachine()
	cfg.ComputeNodes = 4
	cfg.IONodes = 4
	return cfg
}

func TestRunPlain(t *testing.T) {
	res, err := Run(quickMachine(), Workload{
		FileSize:    4 << 20,
		RequestSize: 64 << 10,
		Mode:        MRecord,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 4<<20 || res.Bandwidth <= 0 {
		t.Fatalf("TotalBytes=%d Bandwidth=%v", res.TotalBytes, res.Bandwidth)
	}
	if res.Prefetch != nil {
		t.Fatal("plain run attached a prefetcher")
	}
}

func TestRunPrefetch(t *testing.T) {
	res, err := Run(quickMachine(), Workload{
		FileSize:     4 << 20,
		RequestSize:  64 << 10,
		Mode:         MRecord,
		ComputeDelay: Seconds(0.05),
		Prefetch:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefetch == nil || res.Prefetch.HitRate() == 0 {
		t.Fatal("prefetch run did not prefetch")
	}
}

func TestRunPrefetchOverride(t *testing.T) {
	pcfg := prefetch.DefaultConfig()
	pcfg.Depth = 4
	res, err := Run(quickMachine(), Workload{
		FileSize:     4 << 20,
		RequestSize:  64 << 10,
		Mode:         MRecord,
		ComputeDelay: Seconds(0.05),
		PrefetchCfg:  &pcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefetch == nil || res.Prefetch.Issued == 0 {
		t.Fatal("override config ignored")
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	if _, err := Run(quickMachine(), Workload{FileSize: -1, RequestSize: 64 << 10, Mode: MRecord}); err == nil {
		t.Fatal("negative file size accepted")
	}
}

func TestHeadlineResult(t *testing.T) {
	// The reproduction's one-line summary: with compute to overlap,
	// prefetching lifts observed bandwidth; without it, it does not.
	base := Workload{FileSize: 8 << 20, RequestSize: 64 << 10, Mode: MRecord, ComputeDelay: Seconds(0.05)}
	plain, err := Run(quickMachine(), base)
	if err != nil {
		t.Fatal(err)
	}
	base.Prefetch = true
	fetched, err := Run(quickMachine(), base)
	if err != nil {
		t.Fatal(err)
	}
	if fetched.Bandwidth <= plain.Bandwidth*1.1 {
		t.Fatalf("prefetch %.2f MB/s vs plain %.2f MB/s: want >10%% gain with overlap",
			fetched.Bandwidth, plain.Bandwidth)
	}

	ioBound := Workload{FileSize: 8 << 20, RequestSize: 64 << 10, Mode: MRecord}
	plainIO, err := Run(quickMachine(), ioBound)
	if err != nil {
		t.Fatal(err)
	}
	ioBound.Prefetch = true
	fetchedIO, err := Run(quickMachine(), ioBound)
	if err != nil {
		t.Fatal(err)
	}
	if fetchedIO.Bandwidth > plainIO.Bandwidth*1.05 {
		t.Fatalf("prefetch %.2f MB/s vs plain %.2f MB/s at zero delay: should not win",
			fetchedIO.Bandwidth, plainIO.Bandwidth)
	}
}
