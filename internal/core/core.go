// Package core is the public face of the reproduction: a small façade
// over the simulation stack that builds a Paragon, runs a workload under
// a chosen PFS I/O mode with or without the prefetching prototype, and
// returns the measurements the paper reports.
//
// The layers underneath, bottom-up:
//
//	sim        deterministic discrete-event kernel
//	mesh       2-D wormhole mesh interconnect
//	disk       SCSI disks and RAID-3 arrays
//	ufs        per-I/O-node Unix file systems
//	ionode     I/O node daemons
//	pfs        the Parallel File System client (modes, striping, ART)
//	prefetch   the paper's prefetching prototype
//	machine    whole-machine assembly
//	workload   the evaluation's synthetic workload programs
//	experiments  generators for every table and figure
//
// Most users need only this package:
//
//	res, err := core.Run(core.DefaultMachine(), core.Workload{
//	    FileSize:     128 << 20,
//	    RequestSize:  64 << 10,
//	    Mode:         core.MRecord,
//	    ComputeDelay: core.Seconds(0.05),
//	    Prefetch:     true,
//	})
//	fmt.Printf("%.2f MB/s\n", res.Bandwidth)
package core

import (
	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Re-exported I/O modes (see pfs.Mode for semantics).
const (
	MUnix   = pfs.MUnix
	MLog    = pfs.MLog
	MSync   = pfs.MSync
	MRecord = pfs.MRecord
	MGlobal = pfs.MGlobal
	MAsync  = pfs.MAsync
)

// Mode is a PFS I/O sharing mode.
type Mode = pfs.Mode

// MachineConfig describes the simulated hardware and system software.
type MachineConfig = machine.Config

// Result carries a run's measurements.
type Result = workload.Result

// Seconds converts seconds to simulated time.
func Seconds(s float64) sim.Time { return sim.Seconds(s) }

// DefaultMachine returns the paper's platform: 8 compute nodes, 8 I/O
// nodes with RAID arrays, 64 KB blocks and stripe units.
func DefaultMachine() MachineConfig { return machine.DefaultConfig() }

// Workload describes a run at the level of the paper's experiments.
type Workload struct {
	FileSize     int64            // total bytes read across all nodes
	RequestSize  int64            // bytes per read call per node
	Mode         Mode             // I/O sharing mode
	ComputeDelay sim.Time         // computation simulated between reads
	Prefetch     bool             // run under the prefetching prototype
	PrefetchCfg  *prefetch.Config // optional override (implies Prefetch)

	SeparateFiles bool  // per-node private files instead of one shared file
	StripeUnit    int64 // 0 = machine default (64 KB)
	StripeGroup   int   // 0 = all I/O nodes
}

// Run executes the workload on a freshly built machine and returns its
// measurements. Runs are deterministic: same inputs, same outputs.
func Run(cfg MachineConfig, w Workload) (*Result, error) {
	spec := workload.Spec{
		FileSize:      w.FileSize,
		RequestSize:   w.RequestSize,
		Mode:          w.Mode,
		ComputeDelay:  w.ComputeDelay,
		SeparateFiles: w.SeparateFiles,
		StripeUnit:    w.StripeUnit,
		StripeGroup:   w.StripeGroup,
	}
	if w.PrefetchCfg != nil {
		spec.Prefetch = w.PrefetchCfg
	} else if w.Prefetch {
		pcfg := prefetch.DefaultConfig()
		spec.Prefetch = &pcfg
	}
	return workload.Run(cfg, spec)
}
