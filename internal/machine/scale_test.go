package machine

import (
	"testing"
)

// scaleConfig is the full-size machine of the scale experiments: 1024
// compute + 256 I/O nodes on the sharded engine with a bounded
// I/O-group partition and tiled stripe groups.
func scaleConfig() Config {
	cfg := DefaultConfig()
	cfg.ComputeNodes = 1024
	cfg.IONodes = 256
	cfg.Shards = 4
	cfg.IOGroups = 16
	cfg.PFS.GroupWidth = 16
	return cfg
}

func TestBuildScaleShape(t *testing.T) {
	m := Build(scaleConfig())
	if len(m.Compute) != 1024 || len(m.Servers) != 256 || len(m.Arrays) != 256 {
		t.Fatalf("built %d compute / %d servers / %d arrays", len(m.Compute), len(m.Servers), len(m.Arrays))
	}
	// 1280 nodes fit a 36x36 near-square grid.
	if got := m.Config().Mesh; got.Width != 36 || got.Height != 36 {
		t.Fatalf("mesh %dx%d, want 36x36", got.Width, got.Height)
	}
	// The I/O-group partition: 16 contiguous, non-decreasing tiles of 16
	// servers each, numbered 1..16 after the compute side's group 0.
	if g := m.ioGroups(); g != 16 {
		t.Fatalf("ioGroups = %d, want 16", g)
	}
	counts := make(map[int]int)
	prev := 1
	for i := 0; i < 256; i++ {
		g := m.ioGroup(i)
		if g < prev {
			t.Fatalf("ioGroup(%d) = %d below ioGroup(%d) = %d: tiles not contiguous", i, g, i-1, prev)
		}
		prev = g
		counts[g]++
	}
	if len(counts) != 16 {
		t.Fatalf("servers landed in %d groups, want 16", len(counts))
	}
	for g, c := range counts {
		if c != 16 {
			t.Fatalf("group %d holds %d servers, want 16", g, c)
		}
	}
}

// Assembling the 1024x256 machine must stay cheap: the scale
// experiments build one machine per grid cell, so a quadratic or
// per-node-heavy Build would dominate the sweep. The budget is a fixed
// ceiling (~16 allocations per node slot) with headroom over the ~13.5k
// measured at the time of writing; breaching it means an accidental
// per-node blowup, not noise.
func TestBuildScaleAllocBudget(t *testing.T) {
	cfg := scaleConfig()
	allocs := testing.AllocsPerRun(3, func() { Build(cfg) })
	const budget = 20000
	if allocs > budget {
		t.Fatalf("Build(1024x256) costs %.0f allocations, budget %d", allocs, budget)
	}
}
