// Package machine assembles a complete simulated Intel Paragon: a 2-D
// mesh with compute nodes on one row and I/O nodes (each with a RAID
// array and a UFS) on another, plus a mounted PFS. This is the object
// workloads and experiments program against.
package machine

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/ionode"
	"repro/internal/mesh"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// Config describes the machine to build. Zero values are filled from
// DefaultConfig by Build, so callers can override selectively.
type Config struct {
	ComputeNodes int
	IONodes      int

	Mesh          mesh.Config // geometry fields are set by Build
	DiskGeometry  disk.Geometry
	DiskSched     disk.Sched
	ArrayMembers  int      // disks per I/O node RAID array
	ArrayOverhead sim.Time // RAID controller overhead per request
	Dispatch      sim.Time // I/O node daemon per-request CPU
	UFS           ufs.Config
	PFS           pfs.Config

	// DiskFaultRate arms per-request fault injection on every member
	// disk (0 disables). Faults surface as read errors at the
	// application, with the prefetcher falling back to direct reads.
	DiskFaultRate float64
	FaultSeed     int64

	// DiskFaultTransientFrac and DiskFaultPermanentFrac classify faults
	// (see disk.FaultProfile): a transient fault succeeds on re-read, a
	// permanent one pins its sector dead. Both zero keeps the legacy
	// one-shot fault behaviour bit-for-bit.
	DiskFaultTransientFrac float64
	DiskFaultPermanentFrac float64
	// DiskFaultJitter stretches per-request service times by up to this
	// fraction while fault injection is armed (0 disables).
	DiskFaultJitter float64

	// Shed installs the I/O-node fault breaker on every server: after
	// Threshold consecutive disk faults a node fast-fails requests for
	// Cooldown. The zero policy disables shedding.
	Shed ionode.ShedPolicy
}

// DefaultConfig returns the paper's evaluation platform: 8 compute nodes
// and 8 I/O nodes with SCSI RAID arrays, 64 KB file system blocks, and a
// 64 KB default stripe unit across all 8 I/O nodes.
func DefaultConfig() Config {
	return Config{
		ComputeNodes:  8,
		IONodes:       8,
		Mesh:          mesh.Paragon(8, 2),
		DiskGeometry:  disk.Seagate94601(),
		DiskSched:     disk.SCAN,
		ArrayMembers:  4,
		ArrayOverhead: 2 * sim.Millisecond,
		Dispatch:      1 * sim.Millisecond,
		UFS:           ufs.DefaultConfig(),
		PFS:           pfs.DefaultConfig(),
	}
}

// Machine is a built simulation instance.
type Machine struct {
	K       *sim.Kernel
	Mesh    *mesh.Mesh
	Servers []*ionode.Server
	Arrays  []*disk.Array
	FS      *pfs.FileSystem
	Compute []int // mesh addresses of the compute nodes
	cfg     Config
}

// Build constructs the machine on a near-square mesh (the Paragon's
// meshes were roughly square, which is what gives broadcasts and
// all-to-alls their bisection bandwidth): compute nodes fill the grid
// row-major from the origin, I/O nodes take the following slots.
func Build(cfg Config) *Machine {
	if cfg.ComputeNodes <= 0 || cfg.IONodes <= 0 {
		panic(fmt.Sprintf("machine: need compute and I/O nodes, got %d/%d", cfg.ComputeNodes, cfg.IONodes))
	}
	if cfg.ArrayMembers <= 0 {
		cfg.ArrayMembers = 4
	}
	total := cfg.ComputeNodes + cfg.IONodes
	w := 1
	for w*w < total {
		w++
	}
	h := (total + w - 1) / w
	cfg.Mesh.Width = w
	cfg.Mesh.Height = h

	k := sim.NewKernel()
	m := mesh.New(k, cfg.Mesh)
	mach := &Machine{K: k, Mesh: m, cfg: cfg}
	for i := 0; i < cfg.ComputeNodes; i++ {
		mach.Compute = append(mach.Compute, i)
	}
	for i := 0; i < cfg.IONodes; i++ {
		array := disk.NewArray(k, fmt.Sprintf("raid%d", i), cfg.ArrayMembers,
			cfg.DiskGeometry, cfg.DiskSched, cfg.ArrayOverhead)
		mach.Arrays = append(mach.Arrays, array)
		if cfg.DiskFaultRate > 0 {
			for j, d := range array.Members() {
				d.InjectFaultProfile(disk.FaultProfile{
					Rate:          cfg.DiskFaultRate,
					TransientFrac: cfg.DiskFaultTransientFrac,
					PermanentFrac: cfg.DiskFaultPermanentFrac,
					Jitter:        cfg.DiskFaultJitter,
					Seed:          cfg.FaultSeed + int64(i*100+j),
				})
			}
		}
		ucfg := cfg.UFS
		ucfg.Seed = cfg.UFS.Seed + int64(i)*7919 // distinct, deterministic layouts
		fs := ufs.New(k, array, ucfg)
		srv := ionode.New(k, m, cfg.ComputeNodes+i, fs, cfg.Dispatch)
		srv.SetShedPolicy(cfg.Shed)
		mach.Servers = append(mach.Servers, srv)
	}
	mach.FS = pfs.Mount(k, m, mach.Servers, cfg.PFS)
	return mach
}

// Config returns the configuration the machine was built with (geometry
// fields filled in).
func (m *Machine) Config() Config { return m.cfg }

// IONodeBytes reports the bytes served by each I/O node so far.
func (m *Machine) IONodeBytes() []int64 {
	out := make([]int64, len(m.Servers))
	for i, s := range m.Servers {
		out[i] = s.BytesServed
	}
	return out
}

// DiskUtilization reports the mean busy fraction across all member disks
// at the current simulated time.
func (m *Machine) DiskUtilization() float64 {
	now := m.K.Now()
	if now == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, a := range m.Arrays {
		for _, d := range a.Members() {
			sum += d.Busy.Fraction(now)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
