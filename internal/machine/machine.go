// Package machine assembles a complete simulated Intel Paragon: a 2-D
// mesh with compute nodes on one row and I/O nodes (each with a RAID
// array and a UFS) on another, plus a mounted PFS. This is the object
// workloads and experiments program against.
package machine

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/disk"
	"repro/internal/ionode"
	"repro/internal/mesh"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/ufs"
)

// CrashPlan schedules whole-I/O-node crashes: Count nodes (drawn with a
// seeded generator, possibly the same node twice) crash at times drawn
// uniformly from (Start, Start+Window] and restart Downtime later. The
// zero plan disables crashes. Overlapping intervals on one node merge
// into a single longer outage.
type CrashPlan struct {
	Count    int      // crashes to schedule (0 disables)
	Seed     int64    // draws the victims and crash times
	Start    sim.Time // earliest crash time
	Window   sim.Time // crash times fall in (Start, Start+Window]
	Downtime sim.Time // outage length per crash
}

// Enabled reports whether the plan schedules any crash.
func (cp CrashPlan) Enabled() bool { return cp.Count > 0 }

// MemberFailPlan kills one RAID member permanently at time At (0
// disables): the array runs degraded from then on, rebuilding onto a hot
// spare if Config.Rebuild is armed.
type MemberFailPlan struct {
	At     sim.Time // when the drive dies (0 disables)
	Array  int      // which I/O node's array
	Member int      // which member disk
}

// Enabled reports whether a member failure is scheduled.
func (mp MemberFailPlan) Enabled() bool { return mp.At > 0 }

// PrefetchOptions carries machine-level defaults for the client
// prefetcher: a predictor policy name and an online controller
// configuration. workload.Run applies them to any Spec that enables
// prefetching without choosing its own; the zero value changes nothing.
//
// The structs mirror prefetch.Config's Policy/ControllerConfig fields
// instead of importing them — machine models hardware, prefetch is
// client software policy, and the prefetch package's own tests build
// machines. The field-for-field struct conversion in workload keeps the
// mirror honest at compile time.
type PrefetchOptions struct {
	// Policy names the predictor: "", "mode", "sequential", "stride", or
	// "hybrid" (see prefetch.NewPolicy).
	Policy string
	// Controller arms the online Depth/MaxBuffers controller when its
	// Interval is non-zero (see prefetch.ControllerConfig).
	Controller PrefetchController
}

// PrefetchController mirrors prefetch.ControllerConfig field for field
// (workload converts between the two), so it survives the machine
// config's JSON round-trip without an interface in sight.
type PrefetchController struct {
	Interval     int64
	MinDepth     int
	MaxDepth     int
	MinBuffers   int
	MaxBuffers   int
	Step         int
	LowHit       float64
	HighHit      float64
	ServiceSlack float64
}

// Config describes the machine to build. Zero values are filled from
// DefaultConfig by Build, so callers can override selectively.
type Config struct {
	ComputeNodes int
	IONodes      int

	Mesh          mesh.Config // geometry fields are set by Build
	DiskGeometry  disk.Geometry
	DiskSched     disk.Sched
	ArrayMembers  int      // disks per I/O node RAID array
	ArrayOverhead sim.Time // RAID controller overhead per request
	Dispatch      sim.Time // I/O node daemon per-request CPU
	UFS           ufs.Config
	PFS           pfs.Config

	// Shards selects the execution engine. 0 runs the classic
	// single-kernel event loop — bit-for-bit the legacy behaviour, with
	// the legacy golden digests. n ≥ 1 runs the sharded
	// conservative-lookahead engine (sim.ShardSet) with n workers over a
	// fixed node-group partition: group 0 holds the compute side (every
	// compute node, the PFS client, workloads, prefetching), and each
	// I/O node's server/UFS/array/disks form their own group. Because
	// the partition is fixed and cross-group traffic is merged in the
	// canonical (time, shard, seq) order, results are bit-identical at
	// every n ≥ 1; shards=1 is the serial baseline the parallel runs
	// are measured against.
	Shards int

	// IOGroups bounds the number of I/O-side shard groups in sharded
	// mode. 0 keeps the legacy partition — one group per I/O node —
	// which is bit-identical to the pinned goldens but scales the
	// per-round barrier cost of the conservative engine with the node
	// count (every ~20µs lookahead window visits every group). n ≥ 1
	// tiles the I/O partition into n contiguous groups of near-equal
	// size, so a 1024×256 machine runs on 1+n kernels instead of 257.
	// All nodes of a group share one kernel; the partition is fixed at
	// build time, so results stay bit-identical at every worker count.
	// Ignored in legacy mode (Shards == 0).
	IOGroups int

	// Queue selects the kernel's event-queue implementation:
	// sim.QueueHeap (binary min-heap), sim.QueueLadder (amortized-O(1)
	// ladder queue), or "" for the default (heap). Both realize the
	// identical (time, seq) total order, so the choice changes
	// per-event cost only — fingerprints and trace digests are
	// bit-identical, and detgate pins that on the golden scenarios.
	Queue string

	// DiskFaultRate arms per-request fault injection on every member
	// disk (0 disables). Faults surface as read errors at the
	// application, with the prefetcher falling back to direct reads.
	DiskFaultRate float64
	FaultSeed     int64

	// DiskFaultTransientFrac and DiskFaultPermanentFrac classify faults
	// (see disk.FaultProfile): a transient fault succeeds on re-read, a
	// permanent one pins its sector dead. Both zero keeps the legacy
	// one-shot fault behaviour bit-for-bit.
	DiskFaultTransientFrac float64
	DiskFaultPermanentFrac float64
	// DiskFaultJitter stretches per-request service times by up to this
	// fraction while fault injection is armed (0 disables).
	DiskFaultJitter float64

	// Prefetch supplies machine-level prefetcher defaults (policy name
	// and online controller) that workload.Run layers under any Spec
	// that enables prefetching without choosing its own.
	Prefetch PrefetchOptions

	// Shed installs the I/O-node fault breaker on every server: after
	// Threshold consecutive disk faults a node fast-fails requests for
	// Cooldown. The zero policy disables shedding.
	Shed ionode.ShedPolicy

	// Fair installs the per-tenant weighted fair scheduler and
	// token-bucket admission on every server. The zero policy disables
	// it — requests reach the disk in arrival order, byte-identical to
	// the pre-QoS machine.
	Fair ionode.FairPolicy

	// Crash schedules whole-I/O-node crash–restart cycles.
	Crash CrashPlan
	// MemberFail kills one RAID member for good at a fixed time.
	MemberFail MemberFailPlan
	// Rebuild, when its Chunk is non-zero, starts the online rebuild onto
	// a hot spare as soon as the member fails (ignored with NoParity).
	Rebuild disk.RebuildPolicy
	// NoParity strips the arrays of their parity: a dead member makes
	// every request touching the array fail instead of running degraded.
	// This is the failover-off twin configuration simcheck uses to prove
	// the parity path matters.
	NoParity bool
}

// DefaultConfig returns the paper's evaluation platform: 8 compute nodes
// and 8 I/O nodes with SCSI RAID arrays, 64 KB file system blocks, and a
// 64 KB default stripe unit across all 8 I/O nodes.
func DefaultConfig() Config {
	return Config{
		ComputeNodes:  8,
		IONodes:       8,
		Mesh:          mesh.Paragon(8, 2),
		DiskGeometry:  disk.Seagate94601(),
		DiskSched:     disk.SCAN,
		ArrayMembers:  4,
		ArrayOverhead: 2 * sim.Millisecond,
		Dispatch:      1 * sim.Millisecond,
		UFS:           ufs.DefaultConfig(),
		PFS:           pfs.DefaultConfig(),
	}
}

// Machine is a built simulation instance. K is the compute-side kernel:
// the single global kernel in legacy mode, shard group 0's kernel in
// sharded mode (workload processes always spawn there).
type Machine struct {
	K       *sim.Kernel
	Mesh    *mesh.Mesh
	Servers []*ionode.Server
	Arrays  []*disk.Array
	FS      *pfs.FileSystem
	Compute []int // mesh addresses of the compute nodes
	cfg     Config

	ss         *sim.ShardSet  // nil in legacy mode
	userTrace  *trace.Log     // the log handed to SetTrace
	shardTrace *trace.Sharded // per-group buckets, merged after Run
}

// Build constructs the machine on a near-square mesh (the Paragon's
// meshes were roughly square, which is what gives broadcasts and
// all-to-alls their bisection bandwidth): compute nodes fill the grid
// row-major from the origin, I/O nodes take the following slots.
func Build(cfg Config) *Machine {
	if cfg.ComputeNodes <= 0 || cfg.IONodes <= 0 {
		panic(fmt.Sprintf("machine: need compute and I/O nodes, got %d/%d", cfg.ComputeNodes, cfg.IONodes))
	}
	if cfg.ArrayMembers <= 0 {
		cfg.ArrayMembers = 4
	}
	total := cfg.ComputeNodes + cfg.IONodes
	w := 1
	for w*w < total {
		w++
	}
	h := (total + w - 1) / w
	cfg.Mesh.Width = w
	cfg.Mesh.Height = h

	var ss *sim.ShardSet
	var k *sim.Kernel
	if cfg.Shards > 0 {
		// The compute-side group 0 plus the I/O-side groups (one per
		// I/O node by default, IOGroups contiguous tiles when bounded).
		// The lookahead is the mesh's minimum cross-node latency, the
		// largest window that is still conservative (see
		// mesh.MinLookahead).
		groups := cfg.IONodes
		if cfg.IOGroups > 0 && cfg.IOGroups < groups {
			groups = cfg.IOGroups
		}
		ss = sim.NewShardSetQueue(1+groups, cfg.Mesh.HopLatency+cfg.Mesh.RecvOverhead, cfg.Queue)
		k = ss.Kernel(0)
	} else {
		k = sim.NewKernelQueue(cfg.Queue)
	}
	m := mesh.New(k, cfg.Mesh)
	mach := &Machine{K: k, Mesh: m, cfg: cfg, ss: ss}
	for i := 0; i < cfg.ComputeNodes; i++ {
		mach.Compute = append(mach.Compute, i)
	}
	for i := 0; i < cfg.IONodes; i++ {
		ki := k
		if ss != nil {
			ki = ss.Kernel(mach.ioGroup(i))
		}
		array := disk.NewArray(ki, fmt.Sprintf("raid%d", i), cfg.ArrayMembers,
			cfg.DiskGeometry, cfg.DiskSched, cfg.ArrayOverhead)
		mach.Arrays = append(mach.Arrays, array)
		if cfg.DiskFaultRate > 0 {
			for j, d := range array.Members() {
				d.InjectFaultProfile(disk.FaultProfile{
					Rate:          cfg.DiskFaultRate,
					TransientFrac: cfg.DiskFaultTransientFrac,
					PermanentFrac: cfg.DiskFaultPermanentFrac,
					Jitter:        cfg.DiskFaultJitter,
					Seed:          cfg.FaultSeed + int64(i*100+j),
				})
			}
		}
		if cfg.NoParity {
			array.SetParity(false)
		}
		ucfg := cfg.UFS
		ucfg.Seed = cfg.UFS.Seed + int64(i)*7919 // distinct, deterministic layouts
		fs := ufs.New(ki, array, ucfg)
		srv := ionode.New(ki, m, cfg.ComputeNodes+i, fs, cfg.Dispatch)
		srv.SetShedPolicy(cfg.Shed)
		srv.SetFairPolicy(cfg.Fair)
		if ss != nil {
			// Reply-delivery callbacks run on the requesters' shard;
			// service-time observation must read that clock.
			srv.SetReplyClock(k)
		}
		mach.Servers = append(mach.Servers, srv)
	}
	mach.FS = pfs.Mount(k, m, mach.Servers, cfg.PFS)
	if cfg.Fair.Enabled() {
		mach.FS.SetTenants(cfg.Fair.Tenants)
	}
	if ss != nil {
		groupOf := make([]int, m.Nodes()) // compute + grid-slack slots → group 0
		for i := 0; i < cfg.IONodes; i++ {
			groupOf[cfg.ComputeNodes+i] = mach.ioGroup(i)
		}
		m.BindShards(ss, groupOf)
	}
	mach.scheduleCrashes(cfg.Crash)
	mach.scheduleMemberFail(cfg)
	return mach
}

// ioGroups reports the number of I/O-side shard groups: IONodes by
// default, Config.IOGroups when it bounds the partition.
func (m *Machine) ioGroups() int {
	g := m.cfg.IOGroups
	if g <= 0 || g > m.cfg.IONodes {
		return m.cfg.IONodes
	}
	return g
}

// ioGroup maps I/O node i to its shard-group index (group 0 is the
// compute side). Tiles are contiguous and near-equal: node i lands in
// tile i*groups/IONodes.
func (m *Machine) ioGroup(i int) int {
	return 1 + i*m.ioGroups()/m.cfg.IONodes
}

// scheduleCrashes pre-plans the whole-node outages: victims and crash
// times come from the plan's own generator at build time, so the
// schedule is fixed before the first event runs and identical across
// runs. Overlapping outages of one node merge.
func (m *Machine) scheduleCrashes(plan CrashPlan) {
	if !plan.Enabled() {
		return
	}
	if plan.Window <= 0 || plan.Downtime <= 0 {
		panic(fmt.Sprintf("machine: crash plan needs positive Window and Downtime, got %v/%v",
			plan.Window, plan.Downtime))
	}
	rng := rand.New(rand.NewSource(plan.Seed))
	type outage struct{ at, until sim.Time }
	perNode := make([][]outage, len(m.Servers))
	for c := 0; c < plan.Count; c++ {
		node := rng.Intn(len(m.Servers))
		at := plan.Start + sim.Time(1+rng.Int63n(int64(plan.Window)))
		perNode[node] = append(perNode[node], outage{at: at, until: at + plan.Downtime})
	}
	for i, list := range perNode {
		if len(list) == 0 {
			continue
		}
		sort.Slice(list, func(a, b int) bool { return list[a].at < list[b].at })
		merged := []outage{list[0]}
		for _, o := range list[1:] {
			if last := &merged[len(merged)-1]; o.at <= last.until {
				if o.until > last.until {
					last.until = o.until
				}
			} else {
				merged = append(merged, o)
			}
		}
		srv := m.Servers[i]
		if m.ss != nil {
			// Sharded mode: the crash/restart events run on the victim's
			// own shard, and cross-shard health queries (mesh delivery,
			// client down-polling) consult the static schedule instead of
			// runtime flags — same send-time semantics, no shared state.
			ki := m.ss.Kernel(m.ioGroup(i))
			sched := make([]ionode.Outage, 0, len(merged))
			for _, o := range merged {
				o := o
				ki.At(o.at, func() { srv.Crash(o.until) })
				ki.At(o.until, func() { srv.Restart() })
				m.Mesh.AddOutage(srv.Node(), o.at, o.until)
				sched = append(sched, ionode.Outage{At: o.at, Until: o.until})
			}
			srv.SetOutageSchedule(sched)
			continue
		}
		for _, o := range merged {
			o := o
			m.K.At(o.at, func() {
				m.Mesh.SetDown(srv.Node(), true)
				srv.Crash(o.until)
			})
			m.K.At(o.until, func() {
				m.Mesh.SetDown(srv.Node(), false)
				srv.Restart()
			})
		}
	}
}

// scheduleMemberFail arms the RAID member death (and, when configured,
// the online rebuild that follows it).
func (m *Machine) scheduleMemberFail(cfg Config) {
	if !cfg.MemberFail.Enabled() {
		return
	}
	ai, mi := cfg.MemberFail.Array, cfg.MemberFail.Member
	if ai < 0 || ai >= len(m.Arrays) {
		panic(fmt.Sprintf("machine: member-fail array %d outside %d arrays", ai, len(m.Arrays)))
	}
	if mi < 0 || mi >= len(m.Arrays[ai].Members()) {
		panic(fmt.Sprintf("machine: member-fail member %d outside array of %d", mi, len(m.Arrays[ai].Members())))
	}
	array := m.Arrays[ai]
	rebuild := cfg.Rebuild
	noParity := cfg.NoParity
	ka := m.K
	if m.ss != nil {
		ka = m.ss.Kernel(m.ioGroup(ai)) // the member death fires on its array's shard
	}
	ka.At(cfg.MemberFail.At, func() {
		array.FailMember(mi)
		if rebuild.Chunk > 0 && !noParity {
			array.StartRebuild(rebuild)
		}
	})
}

// SetTrace attaches tl to every server and array so node crashes,
// degraded reads, and rebuild progress appear on the workload timeline
// alongside the PFS events. In sharded mode each node group writes to
// its own bucket (a Log is single-context) and Run merges the buckets
// into tl canonically; client-side producers must use ClientTrace.
func (m *Machine) SetTrace(tl *trace.Log) {
	m.userTrace = tl
	if m.ss != nil {
		// One bucket per shard group: servers sharing a group share a
		// kernel (single context), so they can share a Log too.
		m.shardTrace = trace.NewSharded(1+m.ioGroups(), tl.Cap())
		for i, s := range m.Servers {
			b := m.shardTrace.Bucket(m.ioGroup(i))
			s.SetTrace(b)
			m.Arrays[i].SetTrace(b, s.Node())
		}
		return
	}
	for i, s := range m.Servers {
		s.SetTrace(tl)
		m.Arrays[i].SetTrace(tl, s.Node())
	}
}

// ClientTrace returns the log compute-side producers (the PFS client,
// prefetching, workloads) should append to: shard group 0's bucket in
// sharded mode, the SetTrace log otherwise. Nil until SetTrace is
// called.
func (m *Machine) ClientTrace() *trace.Log {
	if m.shardTrace != nil {
		return m.shardTrace.Bucket(0)
	}
	return m.userTrace
}

// Run executes the simulation to completion: the sharded engine with
// Config.Shards workers when sharding is enabled, the single kernel
// otherwise. Sharded trace buckets are merged into the SetTrace log
// before returning (even on error, so partial timelines are visible).
func (m *Machine) Run() error {
	if m.ss != nil {
		err := m.ss.Run(m.cfg.Shards)
		if m.shardTrace != nil && m.userTrace != nil {
			m.shardTrace.MergeInto(m.userTrace)
			m.shardTrace = nil // ClientTrace now resolves to the merged log
		}
		return err
	}
	return m.K.Run()
}

// Executed reports the events executed so far across all kernels.
func (m *Machine) Executed() uint64 {
	if m.ss != nil {
		return m.ss.Executed()
	}
	return m.K.Executed()
}

// PerGroupExecuted reports per-shard-group event counts in sharded mode
// (nil otherwise) — the load-balance evidence benchmarks record.
func (m *Machine) PerGroupExecuted() []uint64 {
	if m.ss != nil {
		return m.ss.PerGroupExecuted()
	}
	return nil
}

// QueueName reports which event-queue implementation the machine's
// kernels run on (resolving the config default).
func (m *Machine) QueueName() string {
	if m.ss != nil {
		return m.ss.QueueName()
	}
	return m.K.QueueName()
}

// MaxQueueDepth reports the deepest any kernel's event queue ever got —
// a deterministic property of the schedule (runbench records it as
// max_queue_depth).
func (m *Machine) MaxQueueDepth() int {
	if m.ss != nil {
		return m.ss.MaxPending()
	}
	return m.K.MaxPending()
}

// BarrierDrainWall reports cumulative wall-clock time spent in the
// sharded engine's single-threaded barrier drain (zero in legacy mode)
// — the serial fraction bounding parallel speedup.
func (m *Machine) BarrierDrainWall() time.Duration {
	if m.ss != nil {
		return m.ss.DrainWall()
	}
	return 0
}

// KernelFingerprint hashes the execution history: the kernel's own
// fingerprint in legacy mode (identical bits to K.Fingerprint), the
// shard set's combined per-group fingerprint in sharded mode.
func (m *Machine) KernelFingerprint() uint64 {
	if m.ss != nil {
		return m.ss.Fingerprint()
	}
	return m.K.Fingerprint()
}

// Config returns the configuration the machine was built with (geometry
// fields filled in).
func (m *Machine) Config() Config { return m.cfg }

// IONodeBytes reports the bytes served by each I/O node so far.
func (m *Machine) IONodeBytes() []int64 {
	out := make([]int64, len(m.Servers))
	for i, s := range m.Servers {
		out[i] = s.BytesServed
	}
	return out
}

// DiskUtilization reports the mean busy fraction across all member disks
// at the current simulated time.
func (m *Machine) DiskUtilization() float64 {
	now := m.K.Now()
	if now == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, a := range m.Arrays {
		for _, d := range a.Members() {
			sum += d.Busy.Fraction(now)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
