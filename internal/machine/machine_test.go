package machine

import (
	"io"
	"testing"

	"repro/internal/pfs"
	"repro/internal/sim"
)

func TestBuildDefault(t *testing.T) {
	m := Build(DefaultConfig())
	if len(m.Compute) != 8 || len(m.Servers) != 8 || len(m.Arrays) != 8 {
		t.Fatalf("built %d compute / %d servers / %d arrays", len(m.Compute), len(m.Servers), len(m.Arrays))
	}
	if m.Mesh.Nodes() != 16 {
		t.Fatalf("mesh has %d slots, want 16", m.Mesh.Nodes())
	}
	// Compute and I/O node addresses must not collide.
	seen := make(map[int]bool)
	for _, c := range m.Compute {
		seen[c] = true
	}
	for _, s := range m.Servers {
		if seen[s.Node()] {
			t.Fatalf("I/O node shares mesh address %d with a compute node", s.Node())
		}
	}
}

func TestBuildAsymmetric(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ComputeNodes = 3
	cfg.IONodes = 5
	m := Build(cfg)
	// 8 nodes fit a 3x3 near-square grid.
	if got := m.Config().Mesh; got.Width != 3 || got.Height != 3 {
		t.Fatalf("mesh %dx%d, want 3x3", got.Width, got.Height)
	}
	if m.Mesh.Nodes() < 8 {
		t.Fatalf("mesh has %d slots for 8 nodes", m.Mesh.Nodes())
	}
	cfg.ComputeNodes = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero compute nodes did not panic")
			}
		}()
		Build(cfg)
	}()
}

func TestEndToEndReadAndStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ComputeNodes = 2
	cfg.IONodes = 2
	cfg.UFS.Fragmentation = 0
	m := Build(cfg)
	if err := m.FS.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			if _, err := f.Read(p, 128<<10); err == io.EOF {
				return
			} else if err != nil {
				t.Error(err)
				return
			}
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, b := range m.IONodeBytes() {
		total += b
	}
	if total != 1<<20 {
		t.Fatalf("I/O nodes served %d, want 1MiB", total)
	}
	if u := m.DiskUtilization(); u <= 0 || u > 1 {
		t.Fatalf("DiskUtilization = %v", u)
	}
}

func TestDistinctUFSLayouts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UFS.Fragmentation = 0.5
	m := Build(cfg)
	if err := m.FS.Create("f", 8<<20); err != nil {
		t.Fatal(err)
	}
	// With per-node seeds, fragmentation patterns differ; just ensure the
	// build wired distinct UFS instances (same pointer would be a bug).
	if m.Servers[0].FS() == m.Servers[1].FS() {
		t.Fatal("I/O nodes share a UFS instance")
	}
}
