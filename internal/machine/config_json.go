package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// SaveConfig writes cfg to path as indented JSON, so an experiment's
// exact machine can be archived and replayed.
func SaveConfig(path string, cfg Config) error {
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("machine: encoding config: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("machine: writing config: %w", err)
	}
	return nil
}

// LoadConfig reads a JSON config written by SaveConfig. Fields absent
// from the file keep the zero value, so start from DefaultConfig when
// writing configs by hand. Unknown fields are rejected — silently
// ignoring a typo in an experiment config corrupts results.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("machine: reading config: %w", err)
	}
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("machine: parsing %s: %w", path, err)
	}
	return cfg, nil
}
