package machine

import (
	"errors"
	"io"
	"testing"

	"repro/internal/disk"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// TestFaultPropagatesToApplication checks the whole error path:
// disk -> array -> ufs -> ionode -> mesh reply -> pfs -> Read.
func TestFaultPropagatesToApplication(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ComputeNodes = 1
	cfg.IONodes = 2
	cfg.DiskFaultRate = 1
	m := Build(cfg)
	if err := m.FS.Create("f", 512<<10); err != nil {
		t.Fatal(err)
	}
	var readErr error
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		_, readErr = f.Read(p, 128<<10)
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	var de *disk.Error
	if !errors.As(readErr, &de) {
		t.Fatalf("application saw %v, want *disk.Error", readErr)
	}
	var faults int64
	for _, s := range m.Servers {
		faults += s.Faults
	}
	if faults == 0 {
		t.Fatal("no I/O node recorded the fault")
	}
}

// TestFaultySystemStillCompletes runs a whole workload at a moderate
// fault rate: individual reads fail, but the simulation neither panics
// nor deadlocks, and successful reads still move data.
func TestFaultySystemStillCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ComputeNodes = 4
	cfg.IONodes = 4
	cfg.DiskFaultRate = 0.05
	cfg.FaultSeed = 42
	m := Build(cfg)
	if err := m.FS.Create("f", 8<<20); err != nil {
		t.Fatal(err)
	}
	okReads, badReads := 0, 0
	for i := 0; i < 4; i++ {
		node := i
		m.K.Go("reader", func(p *sim.Proc) {
			f, err := m.FS.Open("f", node, pfs.MAsync, nil)
			if err != nil {
				t.Error(err)
				return
			}
			share := int64(2 << 20)
			if err := f.SeekTo(int64(node) * share); err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < 32; r++ {
				_, err := f.Read(p, 64<<10)
				switch {
				case err == io.EOF:
					return
				case err != nil:
					badReads++
				default:
					okReads++
				}
			}
		})
	}
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if badReads == 0 {
		t.Fatal("5% fault rate produced no failed reads")
	}
	if okReads == 0 {
		t.Fatal("no read survived a 5% fault rate")
	}
}
