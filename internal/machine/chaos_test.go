package machine

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

// TestChaos throws randomized mixes of applications at one machine —
// different modes, files, request sizes, compute delays, prefetching on
// or off, occasional disk faults — and checks the global invariants:
// the simulation terminates (no deadlock), every successful byte is
// accounted for, and the whole mess is deterministic.
func TestChaos(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		a := chaosRun(t, seed)
		b := chaosRun(t, seed)
		if a != b {
			t.Logf("seed %d: non-deterministic: %+v vs %+v", seed, a, b)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

type chaosOutcome struct {
	End      sim.Time
	OKBytes  int64
	ErrReads int
}

func chaosRun(t *testing.T, seed int64) chaosOutcome {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := DefaultConfig()
	cfg.ComputeNodes = 4 + rng.Intn(5)
	cfg.IONodes = 2 + rng.Intn(7)
	if rng.Intn(3) == 0 {
		cfg.DiskFaultRate = 0.02
		cfg.FaultSeed = seed
	}
	m := Build(cfg)

	var out chaosOutcome
	pf := prefetch.New(m.K, prefetch.DefaultConfig())
	apps := 1 + rng.Intn(3)
	node := 0
	for app := 0; app < apps && node < cfg.ComputeNodes; app++ {
		name := fmt.Sprintf("f%d", app)
		req := int64(1+rng.Intn(8)) * 32 << 10
		rounds := int64(2 + rng.Intn(6))
		parties := 1 + rng.Intn(cfg.ComputeNodes-node)
		mode := []pfs.Mode{pfs.MAsync, pfs.MRecord, pfs.MLog, pfs.MUnix, pfs.MSync}[rng.Intn(5)]
		delay := sim.Time(rng.Intn(40)) * sim.Millisecond
		usePF := rng.Intn(2) == 0
		fileSize := req * int64(parties) * rounds
		if err := m.FS.Create(name, fileSize); err != nil {
			t.Fatal(err)
		}
		var group *pfs.OpenGroup
		if mode.Collective() {
			group = pfs.NewOpenGroup(m.K, parties)
		}
		for r := 0; r < parties; r++ {
			myNode := m.Compute[node]
			node++
			m.K.Go(fmt.Sprintf("chaos%d.%d", app, r), func(p *sim.Proc) {
				f, err := m.FS.Open(name, myNode, mode, group)
				if err != nil {
					t.Error(err)
					return
				}
				defer f.Close()
				if usePF {
					pf.Attach(f)
				}
				for {
					n, err := f.Read(p, req)
					switch {
					case err == io.EOF:
						if p.Now() > out.End {
							out.End = p.Now()
						}
						return
					case err != nil:
						out.ErrReads++
					default:
						out.OKBytes += n
					}
					if delay > 0 {
						p.Sleep(delay)
					}
				}
			})
		}
	}
	if err := m.K.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return out
}
