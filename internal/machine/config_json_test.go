package machine

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/disk"
	"repro/internal/ionode"
	"repro/internal/sim"
)

func TestConfigRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "machine.json")
	orig := DefaultConfig()
	orig.ComputeNodes = 16
	orig.DiskFaultRate = 0.01
	// Every crash-domain knob gets a non-zero value so a dropped or
	// renamed JSON field fails the comparison below.
	orig.Crash = CrashPlan{Count: 2, Seed: 7, Start: sim.Second,
		Window: 2 * sim.Second, Downtime: 500 * sim.Millisecond}
	orig.MemberFail = MemberFailPlan{At: 3 * sim.Second, Array: 1, Member: 2}
	orig.Rebuild = disk.RebuildPolicy{Chunk: 128 << 10, Gap: 5 * sim.Millisecond}
	orig.NoParity = true
	orig.Shards = 4              // engine selection must survive the round trip too
	orig.Queue = sim.QueueLadder // and so must the event-queue selection
	// Same for the prefetcher-zoo knobs: every controller field non-zero.
	orig.Prefetch = PrefetchOptions{
		Policy: "hybrid",
		Controller: PrefetchController{Interval: 8, MinDepth: 1, MaxDepth: 6,
			MinBuffers: 2, MaxBuffers: 24, Step: 2,
			LowHit: 0.25, HighHit: 0.75, ServiceSlack: 3},
	}
	// QoS knobs: every fair-scheduler field non-zero, including the
	// cycled weights slice (Config is no longer ==-comparable).
	orig.Fair = ionode.FairPolicy{
		Tenants: 12, Weights: []int{4, 2, 1}, Slots: 3,
		RatePerWeight: 1 << 20, BurstBytes: 256 << 10, FIFO: true,
	}
	if err := SaveConfig(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatalf("round trip changed config:\n got %+v\nwant %+v", got, orig)
	}
	// The loaded config must actually build.
	m := Build(got)
	if len(m.Compute) != 16 {
		t.Fatalf("built %d compute nodes", len(m.Compute))
	}
}

func TestLoadConfigErrors(t *testing.T) {
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"ComputeNodes": 4, "NoSuchKnob": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Fatal("unknown field accepted")
	}
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(garbage); err == nil {
		t.Fatal("garbage accepted")
	}
}
