package machine

import (
	"io"
	"testing"

	"repro/internal/disk"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// TestCrashPlanLifecycle: a scheduled whole-node crash takes one I/O node
// down mid-workload; with restart-aware retries armed the reader rides it
// out and every byte is still delivered after the node returns.
func TestCrashPlanLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ComputeNodes = 1
	cfg.IONodes = 2
	cfg.UFS.Fragmentation = 0
	cfg.PFS.Retry = pfs.RetryPolicy{
		MaxRetries: 8,
		Timeout:    200 * sim.Millisecond,
		Backoff:    2 * sim.Millisecond,
		BackoffMax: 50 * sim.Millisecond,
		Seed:       1,
		DownPoll:   10 * sim.Millisecond,
		// DownDeadline zero: wait out the crash however long it takes.
	}
	cfg.Crash = CrashPlan{
		Count:    1,
		Seed:     3,
		Start:    10 * sim.Millisecond,
		Window:   10 * sim.Millisecond,
		Downtime: 150 * sim.Millisecond,
	}
	m := Build(cfg)
	if err := m.FS.Create("f", 1<<20); err != nil {
		t.Fatal(err)
	}
	var got int64
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			n, err := f.Read(p, 64<<10)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got += n
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1<<20 {
		t.Fatalf("delivered %d bytes, want %d", got, 1<<20)
	}
	var crashes, restarts int64
	for _, s := range m.Servers {
		crashes += s.Crashes
		restarts += s.Restarts
	}
	if crashes != 1 || restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", crashes, restarts)
	}
	// The outage was observed by the client one way or the other.
	if m.FS.DownWaits == 0 && m.FS.Timeouts == 0 {
		t.Fatal("crash left no trace on the retry layer")
	}
}

// TestMemberFailDegradedAndRebuild: a RAID member dies mid-workload; the
// array serves degraded reads and the online rebuild promotes the spare.
func TestMemberFailDegradedAndRebuild(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ComputeNodes = 1
	cfg.IONodes = 2
	cfg.UFS.Fragmentation = 0
	cfg.MemberFail = MemberFailPlan{At: 50 * sim.Millisecond, Array: 0, Member: 1}
	cfg.Rebuild = disk.RebuildPolicy{Chunk: 64 << 10, Gap: sim.Millisecond}
	m := Build(cfg)
	if err := m.FS.Create("f", 2<<20); err != nil {
		t.Fatal(err)
	}
	m.K.Go("reader", func(p *sim.Proc) {
		f, err := m.FS.Open("f", 0, pfs.MAsync, nil)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			if _, err := f.Read(p, 64<<10); err == io.EOF {
				return
			} else if err != nil {
				t.Errorf("read: %v", err)
				return
			}
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	a := m.Arrays[0]
	if a.MemberFails != 1 {
		t.Fatalf("MemberFails = %d, want 1", a.MemberFails)
	}
	if a.DegradedReads == 0 {
		t.Fatal("no read ran degraded between failure and rebuild")
	}
	if a.RebuildDoneAt == 0 || a.Degraded() || a.Rebuilding() {
		t.Fatalf("rebuild did not complete: doneAt=%v degraded=%v rebuilding=%v",
			a.RebuildDoneAt, a.Degraded(), a.Rebuilding())
	}
	if a.RebuildBytes == 0 {
		t.Fatal("rebuild copied no bytes")
	}
}

// TestCrashPlanValidation: an armed plan with a zero window or downtime
// is a configuration bug and must panic at build time.
func TestCrashPlanValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Crash = CrashPlan{Count: 1, Window: 0, Downtime: sim.Second}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-window crash plan did not panic")
		}
	}()
	Build(cfg)
}
