// Package repro reproduces "Implementation and Evaluation of Prefetching
// in the Intel Paragon Parallel File System" (Arunachalam, Choudhary,
// Rullman; IPPS 1996) as a deterministic discrete-event simulation.
//
// Start with internal/core for the programming API, cmd/experiments to
// regenerate the paper's tables and figures, and DESIGN.md for the system
// inventory. The benchmarks in this package (bench_test.go) time one
// regeneration of each table and figure:
//
//	go test -bench=. -benchmem
package repro
