// Command pfsbench is the general parameter-sweep harness: it crosses
// I/O modes, request sizes, stripe units, stripe groups, compute delays
// and prefetching on/off on a simulated Paragon and prints one row per
// combination.
//
// Examples:
//
//	pfsbench -modes M_RECORD,M_ASYNC -requests 64,256,1024 -prefetch both
//	pfsbench -requests 64 -delays 0,0.05,0.1 -csv
//	pfsbench -compute 16 -io 8 -requests 64,128 -sunits 64,256
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		computeN     = flag.Int("compute", 8, "compute nodes")
		ioN          = flag.Int("io", 8, "I/O nodes")
		modes        = flag.String("modes", "M_RECORD", "comma-separated I/O modes (M_UNIX,M_LOG,M_SYNC,M_RECORD,M_GLOBAL,M_ASYNC,SEPARATE)")
		requests     = flag.String("requests", "64,128,256,512,1024", "request sizes in KB")
		sunits       = flag.String("sunits", "64", "stripe unit sizes in KB")
		sgroups      = flag.String("sgroups", "0", "stripe group sizes (0 = all I/O nodes)")
		delays       = flag.String("delays", "0", "compute delays between reads, in seconds")
		prefetchFlag = flag.String("prefetch", "off", "prefetching: off, on, or both")
		depth        = flag.Int("depth", 1, "prefetch depth when enabled")
		fileMB       = flag.Int64("file", 0, "file size in MB (0 = 16 rounds per node)")
		csv          = flag.Bool("csv", false, "CSV output")
	)
	flag.Parse()

	mcfgBase := machine.DefaultConfig()
	mcfgBase.ComputeNodes = *computeN
	mcfgBase.IONodes = *ioN

	table := stats.NewTable("pfsbench sweep",
		"Mode", "Request (KB)", "SU (KB)", "SGroup", "Delay (s)", "Prefetch",
		"BW (MB/s)", "Mean read (s)", "Hit rate")

	prefetchStates, err := prefetchStates(*prefetchFlag)
	check(err)
	modeList, err := parseModes(*modes)
	check(err)
	reqList, err := parseInts(*requests)
	check(err)
	suList, err := parseInts(*sunits)
	check(err)
	sgList, err := parseInts(*sgroups)
	check(err)
	delayList, err := parseFloats(*delays)
	check(err)

	for _, mode := range modeList {
		for _, reqKB := range reqList {
			for _, suKB := range suList {
				for _, sg := range sgList {
					for _, delay := range delayList {
						for _, pfOn := range prefetchStates {
							spec := workload.Spec{
								FileSize:      *fileMB << 20,
								RequestSize:   reqKB << 10,
								Mode:          mode.mode,
								SeparateFiles: mode.separate,
								StripeUnit:    suKB << 10,
								StripeGroup:   int(sg),
								ComputeDelay:  sim.Seconds(delay),
							}
							if spec.FileSize == 0 {
								spec.FileSize = spec.RequestSize * int64(*computeN) * 16
							}
							if pfOn {
								pcfg := prefetch.DefaultConfig()
								pcfg.Depth = *depth
								pcfg.MaxBuffers = 2 * *depth
								if pcfg.MaxBuffers < 16 {
									pcfg.MaxBuffers = 16
								}
								spec.Prefetch = &pcfg
							}
							res, err := workload.Run(mcfgBase, spec)
							check(err)
							hit := "-"
							if res.Prefetch != nil {
								hit = fmt.Sprintf("%.2f", res.Prefetch.HitRate())
							}
							table.AddRow(mode.name, reqKB, suKB, sg, delay,
								onOff(pfOn), res.Bandwidth, res.ReadTime.Mean(), hit)
						}
					}
				}
			}
		}
	}

	if *csv {
		check(table.RenderCSV(os.Stdout))
	} else {
		check(table.Render(os.Stdout))
	}
}

type modeSpec struct {
	name     string
	mode     pfs.Mode
	separate bool
}

func parseModes(s string) ([]modeSpec, error) {
	byName := map[string]modeSpec{
		"M_UNIX":   {"M_UNIX", pfs.MUnix, false},
		"M_LOG":    {"M_LOG", pfs.MLog, false},
		"M_SYNC":   {"M_SYNC", pfs.MSync, false},
		"M_RECORD": {"M_RECORD", pfs.MRecord, false},
		"M_GLOBAL": {"M_GLOBAL", pfs.MGlobal, false},
		"M_ASYNC":  {"M_ASYNC", pfs.MAsync, false},
		"SEPARATE": {"SEPARATE", pfs.MAsync, true},
	}
	var out []modeSpec
	for _, name := range strings.Split(s, ",") {
		m, ok := byName[strings.ToUpper(strings.TrimSpace(name))]
		if !ok {
			return nil, fmt.Errorf("unknown mode %q", name)
		}
		out = append(out, m)
	}
	return out, nil
}

func parseInts(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func prefetchStates(s string) ([]bool, error) {
	switch s {
	case "off":
		return []bool{false}, nil
	case "on":
		return []bool{true}, nil
	case "both":
		return []bool{false, true}, nil
	}
	return nil, fmt.Errorf("-prefetch must be off, on, or both; got %q", s)
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
