// Command benchsweep measures the two performance claims this codebase
// makes — the parallel sweep engine's wall-clock speedup over a serial
// sweep, and the allocation behaviour of the DES hot paths — and writes
// the results as machine-readable JSON (BENCH_sweep.json at the repo
// root is the committed copy; regenerate it with `make bench`).
//
// The sweep measurement times the same bundle of independent simulation
// cells through internal/sweep at width 1 and width GOMAXPROCS. Cells
// are real simulator runs (a 2-compute/2-I/O-node M_RECORD scan), so the
// ratio is what `experiments -parallel` and `simcheck -parallel` see.
// The micro measurements re-run the package benchmarks for the kernel
// event loop and the mesh hot path via testing.Benchmark.
//
// Numbers depend on the machine; the JSON records num_cpu and
// gomaxprocs so a reader can judge the speedup against the cores that
// were available (1 core can not beat 1x).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/mesh"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// micro is one testing.Benchmark result.
type micro struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	NumCPU      int              `json:"num_cpu"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	SweepCells  int              `json:"sweep_cells"`
	Workers     int              `json:"sweep_workers"`
	SerialSec   float64          `json:"sweep_serial_sec"`
	ParallelSec float64          `json:"sweep_parallel_sec"`
	Speedup     float64          `json:"sweep_speedup"`
	Caveat      string           `json:"caveat,omitempty"`
	Micro       map[string]micro `json:"micro"`
}

// cellSpec is one independent simulation cell, varied by seed so the
// cells are distinct work rather than one memoizable run.
func cellSpec(i int) (machine.Config, workload.Spec) {
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 2
	cfg.IONodes = 2
	req := int64(64 << 10)
	return cfg, workload.Spec{
		FileSize:    req * 2 * 24,
		RequestSize: req,
		Mode:        pfs.MRecord,
		Seed:        int64(i),
	}
}

// timeSweep runs the cell bundle through the pool at the given width,
// repeats times, and returns the fastest wall-clock pass (minimum, the
// standard way to strip scheduling noise from a wall-clock measurement).
func timeSweep(workers, cells, repeats int) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		_, err := sweep.MapErr(workers, cells, func(i int) (float64, error) {
			cfg, spec := cellSpec(i)
			res, err := workload.Run(cfg, spec)
			if err != nil {
				return 0, err
			}
			return res.Bandwidth, nil
		})
		if err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// microBench adapts a testing.Benchmark result for the report.
func microBench(fn func(b *testing.B)) micro {
	r := testing.Benchmark(fn)
	return micro{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchKernelSchedule mirrors internal/sim's BenchmarkSchedule: the
// At + dispatch cycle in the steady state, where every event struct
// comes off the kernel free list. allocs_per_op is the headline: 0 once
// the pool is warm.
func benchKernelSchedule(b *testing.B) {
	k := sim.NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.At(k.Now(), fn)
		if k.Pending() >= 1024 {
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchKernelThroughput mirrors BenchmarkEventThroughput: a self-refiring
// event chain, the kernel's retire rate.
func benchKernelThroughput(b *testing.B) {
	k := sim.NewKernel()
	b.ReportAllocs()
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			k.After(1, fire)
		}
	}
	b.ResetTimer()
	k.After(1, fire)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchMeshSend mirrors internal/mesh's BenchmarkSend: one 64 KB message
// across the wormhole-routed mesh, link clocks in the flat array.
func benchMeshSend(b *testing.B) {
	k := sim.NewKernel()
	m := mesh.New(k, mesh.Paragon(8, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(i%8, 8+(i%8), 64<<10, nil)
		if k.Pending() > 4096 {
			b.StopTimer()
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func main() {
	var (
		out     = flag.String("o", "BENCH_sweep.json", "output JSON path (- for stdout)")
		cells   = flag.Int("cells", 64, "independent simulation cells per sweep pass")
		repeats = flag.Int("repeats", 3, "sweep passes per width; fastest wins")
		workers = flag.Int("parallel", runtime.GOMAXPROCS(0), "parallel sweep width")
		short   = flag.Bool("short", false, "CI smoke mode: fewer cells, one pass")
	)
	flag.Parse()
	if *short {
		*cells, *repeats = 16, 1
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SweepCells: *cells,
		Workers:    *workers,
		Micro:      map[string]micro{},
	}

	serial, err := timeSweep(1, *cells, *repeats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep: serial sweep:", err)
		os.Exit(1)
	}
	parallel, err := timeSweep(*workers, *cells, *repeats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep: parallel sweep:", err)
		os.Exit(1)
	}
	rep.SerialSec = serial.Seconds()
	rep.ParallelSec = parallel.Seconds()
	rep.Speedup = serial.Seconds() / parallel.Seconds()

	// A sweep speedup near 1x on a 1-core box (or with GOMAXPROCS=1) is
	// the expected ceiling, not a parallelism regression; stamp the JSON
	// so readers comparing committed files across machines don't misread
	// it. Compare speedups only against num_cpu/gomaxprocs in the same
	// file.
	if rep.NumCPU == 1 || rep.GOMAXPROCS == 1 || *workers == 1 {
		rep.Caveat = fmt.Sprintf(
			"sweep ran at width %d with num_cpu=%d gomaxprocs=%d; ~1x speedup is the hardware ceiling here, not a regression",
			*workers, rep.NumCPU, rep.GOMAXPROCS)
	}

	rep.Micro["kernel_schedule"] = microBench(benchKernelSchedule)
	rep.Micro["kernel_event_throughput"] = microBench(benchKernelThroughput)
	rep.Micro["mesh_send"] = microBench(benchMeshSend)

	fmt.Printf("sweep: %d cells, serial %v, parallel(%d) %v, speedup %.2fx on %d CPU(s)\n",
		*cells, serial.Round(time.Millisecond), *workers,
		parallel.Round(time.Millisecond), rep.Speedup, rep.NumCPU)
	if rep.Caveat != "" {
		fmt.Println("note:", rep.Caveat)
	}
	for name, m := range rep.Micro {
		fmt.Printf("%-24s %10.1f ns/op %6d B/op %4d allocs/op\n",
			name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
