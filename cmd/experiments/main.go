// Command experiments regenerates the tables and figures of the paper's
// evaluation on the simulated Paragon.
//
// Usage:
//
//	experiments [-run id1,id2,...] [-quick] [-csv] [-list] [-parallel N]
//
// With no -run flag every experiment runs, in paper order. -quick uses a
// scaled-down machine for a fast smoke pass; -csv emits CSV instead of
// aligned tables. -parallel evaluates each experiment's independent grid
// cells across N workers (default: all CPUs); tables are bit-identical
// at any width, only wall-clock time changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "use the scaled-down quick configuration")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	plot := flag.Bool("plot", false, "also draw ASCII charts for the figures")
	outDir := flag.String("o", "", "also write each experiment's table as CSV into this directory")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker-pool width for grid cells (1 = serial)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := experiments.PaperScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	scale.Parallel = *parallel

	var todo []experiments.Experiment
	if *runIDs == "" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := experiments.Find(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		start := time.Now()
		table, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", e.ID)
		if *csv {
			if err := table.RenderCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			if err := table.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*outDir, e.ID+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := table.RenderCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *plot {
			if chart, ok := experiments.Chart(e.ID, table); ok {
				fmt.Println()
				if err := chart.Render(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s wall)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
