// Command runbench is the end-to-end benchmark harness: it runs the
// three golden scenarios (healthy quickstart, chaos, crash) — the exact
// runs cmd/detgate digests — and reports how fast the simulator gets
// through them: events per wall-second, simulated seconds per
// wall-second, and heap allocations per simulated read. Results land in
// BENCH_run.json next to BENCH_sweep.json (regenerate both with
// `make bench`).
//
// Profile capture: -cpuprofile and -memprofile write standard pprof
// files covering the measurement runs, for `go tool pprof`.
//
// Speedup tracking: -baseline takes a previous BENCH_run.json from the
// SAME machine and records the healthy-scenario speedup against it.
// Numbers are wall-clock and machine-dependent — the JSON records
// num_cpu and gomaxprocs, and comparing files from different hardware
// measures the hardware, not the code.
//
// Sharded engine: -shards takes a comma-separated list of worker counts
// (e.g. -shards 1,2,4,8) and additionally measures the healthy scenario
// on the sharded multi-core engine at each count, recording the
// aggregate events/sec and the parallel speedup of the widest count
// against shards=1 (the sharded engine's own serial baseline). The
// event schedules are bit-identical across counts — detgate proves that
// — so the ratio is a pure scheduling speedup. On machines with fewer
// CPUs than the widest count the speedup is bounded by the hardware and
// the JSON carries an explicit caveat.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/machine"
	"repro/internal/runbench"
	"repro/internal/scenarios"
)

type report struct {
	GoVersion  string                          `json:"go_version"`
	GOOS       string                          `json:"goos"`
	GOARCH     string                          `json:"goarch"`
	NumCPU     int                             `json:"num_cpu"`
	GOMAXPROCS int                             `json:"gomaxprocs"`
	Iterations int                             `json:"iterations"`
	Scenarios  map[string]runbench.Measurement `json:"scenarios"`

	// Baseline comparison (present only with -baseline): the healthy
	// scenario's events/sec ratio against the given earlier report. The
	// two runs cover identical event schedules (detgate pins them), so
	// the events/sec ratio is exactly the end-to-end wall-clock speedup.
	BaselinePath         string  `json:"baseline_path,omitempty"`
	BaselineEventsPerSec float64 `json:"baseline_events_per_sec,omitempty"`
	SpeedupHealthy       float64 `json:"speedup_healthy,omitempty"`

	// Regression gate (present only with -baseline -tolerance): every
	// scenario measured by both reports must retire at least
	// tolerance × the baseline's events/sec, or the run exits non-zero
	// (after writing the JSON, so the regressed numbers are inspectable).
	// BaselineCaveat records the one legitimate skip: the baseline came
	// from a host with a different CPU count, so the wall-clock ratio
	// would measure hardware, not code.
	Tolerance      float64 `json:"tolerance,omitempty"`
	BaselineCaveat string  `json:"baseline_caveat,omitempty"`

	// Sharded-engine measurements (present only with -shards): the
	// healthy scenario at each worker count, in the order given, plus
	// the widest count's events/sec ratio against shards=1. ShardCaveat
	// flags runs where the host had fewer CPUs than the widest count,
	// which bounds the achievable speedup regardless of the engine.
	Sharded       []runbench.Measurement `json:"sharded,omitempty"`
	SpeedupShards float64                `json:"speedup_shards,omitempty"`
	ShardCaveat   string                 `json:"shard_caveat,omitempty"`
}

func main() {
	var (
		out        = flag.String("o", "BENCH_run.json", "output JSON path (- for stdout)")
		iters      = flag.Int("iterations", 5, "runs per scenario; fastest wall-clock pass wins")
		short      = flag.Bool("short", false, "CI smoke mode: one run per scenario")
		only       = flag.String("scenario", "", "run only this golden scenario (quickstart, chaos, crash)")
		baseline   = flag.String("baseline", "", "earlier BENCH_run.json from this machine to compute speedup against")
		tolerance  = flag.Float64("tolerance", 0, "with -baseline: fail when a shared scenario's events/s drops below tolerance x baseline (0 disables; skipped with a caveat when the CPU counts differ)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measurement runs")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the measurement runs")
		shardsList = flag.String("shards", "", "comma-separated sharded-engine worker counts to also measure (e.g. 1,2,4,8)")
		queue      = flag.String("queue", "", "event-queue implementation for every measured scenario (heap, ladder; default: the config default). Scenario names are kept unchanged so -baseline comparisons still line up — each measurement records its queue in the JSON")
	)
	flag.Parse()
	// applyQueue overrides the event queue without renaming the
	// scenario: the ladder run gates directly against the committed
	// heap baseline's scenario entries.
	applyQueue := func(sc scenarios.Scenario) scenarios.Scenario {
		if *queue == "" {
			return sc
		}
		base := sc.Config
		sc.Config = func() machine.Config {
			cfg := base()
			cfg.Queue = *queue
			return cfg
		}
		return sc
	}
	opt := runbench.Options{Iterations: *iters}
	if *short {
		opt.Iterations = 1
		opt.MinWall = 50 * time.Millisecond
	}

	scs := scenarios.Golden()
	if *only != "" {
		sc, ok := scenarios.ByName(*only)
		if !ok {
			fatal(fmt.Sprintf("unknown scenario %q", *only))
		}
		scs = []scenarios.Scenario{sc}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err.Error())
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err.Error())
		}
		defer pprof.StopCPUProfile()
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Iterations: opt.Iterations,
		Scenarios:  map[string]runbench.Measurement{},
	}
	for _, sc := range scs {
		m, err := runbench.Measure(applyQueue(sc), opt)
		if err != nil {
			fatal(err.Error())
		}
		rep.Scenarios[sc.Name] = m
		fmt.Printf("%-10s %8.3fs wall  %7.1f sim-s/wall-s  %11.0f events/s  %6.1f allocs/read\n",
			sc.Name, m.WallSec, m.SimPerWall, m.EventsPerSec, m.AllocsPerRead)
	}

	if *shardsList != "" {
		counts, err := parseShards(*shardsList)
		if err != nil {
			fatal(err.Error())
		}
		// The matrix runs on the selected scenario (-scenario scale gives
		// the 1024×256 matrix), defaulting to the healthy quickstart.
		matrix := scenarios.Golden()[0]
		if *only != "" {
			matrix = scs[0]
		}
		var serial, widest runbench.Measurement
		widestN := 0
		for _, n := range counts {
			m, err := runbench.Measure(applyQueue(scenarios.WithShards(matrix, n)), opt)
			if err != nil {
				fatal(err.Error())
			}
			rep.Sharded = append(rep.Sharded, m)
			fmt.Printf("%-18s %8.3fs wall  %7.1f sim-s/wall-s  %11.0f events/s  %6.1f allocs/read\n",
				m.Scenario, m.WallSec, m.SimPerWall, m.EventsPerSec, m.AllocsPerRead)
			if n == 1 {
				serial = m
			}
			if n > widestN {
				widestN, widest = n, m
			}
		}
		if serial.EventsPerSec > 0 && widestN > 1 {
			rep.SpeedupShards = widest.EventsPerSec / serial.EventsPerSec
			fmt.Printf("sharded speedup at %d workers vs shards=1: %.2fx\n", widestN, rep.SpeedupShards)
		}
		if runtime.NumCPU() < widestN {
			rep.ShardCaveat = fmt.Sprintf(
				"host has %d CPU(s), fewer than the widest shard count %d: parallel speedup is hardware-bound and not representative",
				runtime.NumCPU(), widestN)
			fmt.Println("caveat:", rep.ShardCaveat)
		}
	}

	var regressions []string
	if *baseline != "" {
		buf, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err.Error())
		}
		var base report
		if err := json.Unmarshal(buf, &base); err != nil {
			fatal(fmt.Sprintf("parsing %s: %v", *baseline, err))
		}
		rep.BaselinePath = *baseline
		bq, okB := base.Scenarios["quickstart"]
		nq, okN := rep.Scenarios["quickstart"]
		if okB && okN && bq.EventsPerSec > 0 {
			rep.BaselineEventsPerSec = bq.EventsPerSec
			rep.SpeedupHealthy = nq.EventsPerSec / bq.EventsPerSec
			fmt.Printf("healthy speedup vs %s: %.2fx\n", *baseline, rep.SpeedupHealthy)
		}
		if *tolerance > 0 {
			rep.Tolerance = *tolerance
			if base.NumCPU != rep.NumCPU {
				rep.BaselineCaveat = fmt.Sprintf(
					"baseline measured on %d CPU(s), this host has %d: regression gate skipped (the events/s ratio would measure hardware, not code)",
					base.NumCPU, rep.NumCPU)
				fmt.Println("caveat:", rep.BaselineCaveat)
			} else {
				names := make([]string, 0, len(base.Scenarios))
				for name := range base.Scenarios {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					bm := base.Scenarios[name]
					nm, ok := rep.Scenarios[name]
					if !ok || bm.EventsPerSec <= 0 {
						continue
					}
					ratio := nm.EventsPerSec / bm.EventsPerSec
					fmt.Printf("gate %-10s %.2fx of baseline events/s\n", name, ratio)
					if ratio < *tolerance {
						regressions = append(regressions, fmt.Sprintf(
							"%s: %.0f events/s is %.2fx of the baseline's %.0f (tolerance %.2f)",
							name, nm.EventsPerSec, ratio, bm.EventsPerSec, *tolerance))
					}
				}
			}
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err.Error())
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err.Error())
		}
		f.Close()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err.Error())
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err.Error())
	} else {
		fmt.Println("wrote", *out)
	}
	// The report is written even on failure: the JSON is the evidence a
	// human (or a CI artifact download) needs to see what regressed.
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "runbench: regression: "+r)
		}
		os.Exit(1)
	}
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-shards wants positive worker counts, got %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "runbench: "+msg)
	os.Exit(1)
}
