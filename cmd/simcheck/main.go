// Command simcheck runs the deterministic-simulation checker: every seed
// expands to one random machine + workload scenario, which is simulated
// several times under invariant oracles (determinism, data correctness,
// conservation, sanity/monotonicity — see internal/simcheck).
//
// Sweep a seed range:
//
//	simcheck -seeds 100
//
// Seeds are independent, so the sweep fans out across -parallel workers
// (default: all CPUs); output and exit status are identical at any
// width. Any failure prints the offending seed and oracle; replay
// exactly that scenario, with full evidence, via:
//
//	simcheck -seed N -v
//
// Chaos mode force-arms transient disk faults with the retry layer on
// every seed and asserts full recovery, then replays each scenario with
// retries disabled to prove the faults were genuinely fatal without the
// protection:
//
//	simcheck -chaos -seeds 25
//
// Crash mode force-arms scheduled whole-I/O-node outages (and sometimes
// a permanent RAID member loss with an online rebuild) with restart-aware
// failover on every seed and asserts that every requested byte is
// delivered, counted late, or counted unavailable — never silently
// lost — then replays each outage schedule with failover and parity
// stripped to prove the crashes were genuinely fatal without them:
//
//	simcheck -crash -seeds 25
//
// Scale mode moves every seed's scenario onto the 256×64 large-machine
// platform — bounded I/O-group shard partition, tiled stripe groups,
// wide declustering — under the unchanged oracle set:
//
//	simcheck -scale -seeds 10 -shards 4
//
// QoS mode expands every seed into an open-loop multi-tenant overload
// scenario — heavy-tailed arrivals from dozens-to-hundreds of weighted
// tenants against the I/O-node fair scheduler and per-tenant admission —
// and checks determinism, the legacy-vs-sharded engine differential,
// per-tenant request and byte conservation, starvation-freedom, and the
// SCFQ fairness bound; each seed's deliberately unfair FIFO twin must
// violate that bound somewhere in the sweep or the sweep fails as too
// tame:
//
//	simcheck -qos -seeds 25
//
// The -shards N flag points the whole battery at the sharded multi-core
// engine (N workers per simulation) instead of the legacy single-kernel
// loop; the oracles are engine-agnostic, so this soaks the conservative
// parallel scheduler across random scenarios. The sweep pool is shrunk
// automatically so sweep-level and shard-level parallelism never
// oversubscribe the CPUs:
//
//	simcheck -seeds 25 -parallel 4 -shards 4
//
// The -queue NAME flag arms the queue differential twin: every checked
// scenario is re-run with machine.Config.Queue set to NAME (e.g. the
// amortized-O(1) "ladder" queue) and must reproduce the base run's
// result fingerprint and trace digest bit for bit — the two queue
// implementations realize the identical (time, seq) total order, so any
// divergence is a queue bug. Composes with every mode and with -shards
// (the twin then runs sharded too):
//
//	simcheck -seeds 25 -shards 4 -queue ladder
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/simcheck"
	"repro/internal/sweep"
)

func main() {
	var (
		seeds     = flag.Int("seeds", 50, "number of consecutive seeds to check")
		start     = flag.Int64("start", 1, "first seed of the sweep")
		seed      = flag.Int64("seed", -1, "check exactly this one seed (replay mode)")
		chaos     = flag.Bool("chaos", false, "force transient faults + retries on every seed (recovery sweep)")
		crash     = flag.Bool("crash", false, "force whole-node outages + failover on every seed (crash sweep)")
		scale     = flag.Bool("scale", false, "move every seed's scenario onto the 256x64 scale platform")
		qos       = flag.Bool("qos", false, "open-loop multi-tenant overload scenarios with the fair scheduler (QoS sweep)")
		verbose   = flag.Bool("v", false, "describe every checked scenario, not just failures")
		keepGoing = flag.Bool("keep-going", false, "sweep past the first failing seed")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "worker-pool width for the sweep (1 = serial)")
		shards    = flag.Int("shards", 0, "run every scenario on the sharded engine with this many workers (0 = legacy single-kernel)")
		queue     = flag.String("queue", "", "re-run every checked scenario under this event-queue implementation (e.g. ladder) and require bit-identical fingerprints and trace digests (the queue differential twin)")
	)
	flag.Parse()

	if *seed < 0 && *seeds <= 0 {
		fmt.Fprintln(os.Stderr, "simcheck: -seeds must be positive")
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "simcheck: -shards must be non-negative")
		os.Exit(2)
	}
	simcheck.Shards = *shards
	simcheck.QueueTwin = *queue
	// Sharded runs are themselves parallel; shrink the outer sweep pool so
	// outer×inner stays within the CPUs.
	*parallel = sweep.Compose(*parallel, *shards)
	modes := 0
	for _, on := range []bool{*chaos, *crash, *scale, *qos} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "simcheck: -chaos, -crash, -scale, and -qos are mutually exclusive")
		os.Exit(2)
	}
	if *seed >= 0 {
		switch {
		case *qos:
			rep := simcheck.CheckQoS(*seed)
			rep.Describe(os.Stdout)
			if !rep.OK() {
				os.Exit(1)
			}
		case *scale:
			rep := simcheck.CheckScale(*seed)
			rep.Describe(os.Stdout)
			if !rep.OK() {
				os.Exit(1)
			}
		case *chaos:
			rep := simcheck.CheckChaos(*seed)
			rep.Describe(os.Stdout)
			if !rep.OK() {
				os.Exit(1)
			}
		case *crash:
			rep := simcheck.CheckCrash(*seed)
			rep.Describe(os.Stdout)
			if !rep.OK() {
				os.Exit(1)
			}
		default:
			rep := simcheck.Check(*seed)
			rep.Describe(os.Stdout)
			if !rep.OK() {
				os.Exit(1)
			}
		}
		fmt.Println("ok")
		return
	}

	if *qos {
		failed, unfair, throttled := simcheck.CheckQoSRange(*start, *seeds, *parallel, !*keepGoing, func(rep simcheck.QoSReport) {
			if *verbose || !rep.OK() {
				rep.Describe(os.Stdout)
			}
		})
		if len(failed) > 0 {
			fmt.Printf("simcheck: %d failing qos seed(s) (replay with -qos -seed N -v)\n", len(failed))
			os.Exit(1)
		}
		fmt.Printf("simcheck: %d qos seeds ok (start=%d); %d throttled under overload, %d FIFO twins unfair\n",
			*seeds, *start, throttled, unfair)
		// A QoS sweep whose FIFO twins all stayed inside the fairness bound
		// proves nothing about the scheduler: either the load was too tame
		// to create contention or the oracle cannot detect unfairness. Any
		// reasonable width hits unfair twins; tiny replay sweeps are exempt.
		if unfair == 0 && *seeds >= 10 {
			fmt.Println("simcheck: qos sweep produced no unfair FIFO twin — scenarios too tame")
			os.Exit(1)
		}
		return
	}

	if *crash {
		failed, unprotected := simcheck.CheckCrashRange(*start, *seeds, *parallel, !*keepGoing, func(rep simcheck.CrashReport) {
			if *verbose || !rep.OK() {
				rep.Describe(os.Stdout)
			}
		})
		if len(failed) > 0 {
			fmt.Printf("simcheck: %d failing crash seed(s)\n", len(failed))
			os.Exit(1)
		}
		fmt.Printf("simcheck: %d crash seeds survived with failover (start=%d); %d would have failed without it\n",
			*seeds, *start, unprotected)
		// A crash sweep whose outages were all survivable without the
		// failover layer proves nothing about it. Any reasonable width
		// hits unprotected failures; tiny replay-style sweeps are exempt.
		if unprotected == 0 && *seeds >= 10 {
			fmt.Println("simcheck: crash sweep exercised no fatal outage — scenarios too tame")
			os.Exit(1)
		}
		return
	}

	if *chaos {
		failed, unprotected := simcheck.CheckChaosRange(*start, *seeds, *parallel, !*keepGoing, func(rep simcheck.ChaosReport) {
			if *verbose || !rep.OK() {
				rep.Describe(os.Stdout)
			}
		})
		if len(failed) > 0 {
			fmt.Printf("simcheck: %d failing chaos seed(s)\n", len(failed))
			os.Exit(1)
		}
		fmt.Printf("simcheck: %d chaos seeds recovered (start=%d); %d would have failed without retries\n",
			*seeds, *start, unprotected)
		// A chaos sweep that never needed its retries proves nothing about
		// the fault path. Any reasonable width hits unprotected failures;
		// tiny replay-style sweeps are exempt.
		if unprotected == 0 && *seeds >= 10 {
			fmt.Println("simcheck: chaos sweep exercised no fatal fault — scenarios too tame")
			os.Exit(1)
		}
		return
	}

	if *scale {
		failed := simcheck.CheckScaleRange(*start, *seeds, *parallel, !*keepGoing, func(rep simcheck.Report) {
			if *verbose || !rep.OK() {
				rep.Describe(os.Stdout)
			}
		})
		if len(failed) > 0 {
			fmt.Printf("simcheck: %d failing scale seed(s) (replay with -scale -seed N -v)\n", len(failed))
			os.Exit(1)
		}
		fmt.Printf("simcheck: %d scale seeds ok on 256x64 (start=%d)\n", *seeds, *start)
		return
	}

	failed := simcheck.CheckRange(*start, *seeds, *parallel, !*keepGoing, func(rep simcheck.Report) {
		if *verbose || !rep.OK() {
			rep.Describe(os.Stdout)
		}
	})
	if len(failed) > 0 {
		fmt.Printf("simcheck: %d failing seed(s)\n", len(failed))
		os.Exit(1)
	}
	fmt.Printf("simcheck: %d seeds ok (start=%d)\n", *seeds, *start)
}
