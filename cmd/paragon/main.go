// Command paragon runs a single workload on the simulated machine and
// dumps a detailed report: bandwidth, per-node completion times, read
// latency distribution, I/O-node load balance, disk utilization, and the
// prefetcher's internal counters.
//
// Example:
//
//	paragon -mode M_RECORD -request 64 -file 128 -delay 0.05 -prefetch
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		computeN  = flag.Int("compute", 8, "compute nodes")
		ioN       = flag.Int("io", 8, "I/O nodes")
		mode      = flag.String("mode", "M_RECORD", "I/O mode")
		requestKB = flag.Int64("request", 64, "request size in KB")
		fileMB    = flag.Int64("file", 128, "file size in MB")
		delay     = flag.Float64("delay", 0, "compute delay between reads, seconds")
		pf        = flag.Bool("prefetch", false, "enable the prefetching prototype")
		depth     = flag.Int("depth", 1, "prefetch depth")
		suKB      = flag.Int64("sunit", 64, "stripe unit in KB")
		sgroup    = flag.Int("sgroup", 0, "stripe group size (0 = all I/O nodes)")
		traceN    = flag.Int("trace", 0, "print the first N file system events")
		confPath  = flag.String("config", "", "load machine config from JSON (overrides -compute/-io)")
		saveConf  = flag.String("save-config", "", "write the effective machine config to JSON and exit")
	)
	flag.Parse()

	m, ok := map[string]pfs.Mode{
		"M_UNIX": pfs.MUnix, "M_LOG": pfs.MLog, "M_SYNC": pfs.MSync,
		"M_RECORD": pfs.MRecord, "M_GLOBAL": pfs.MGlobal, "M_ASYNC": pfs.MAsync,
	}[strings.ToUpper(*mode)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = *computeN
	cfg.IONodes = *ioN
	if *confPath != "" {
		loaded, err := machine.LoadConfig(*confPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg = loaded
	}
	if *saveConf != "" {
		if err := machine.SaveConfig(*saveConf, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *saveConf)
		return
	}

	spec := workload.Spec{
		FileSize:     *fileMB << 20,
		RequestSize:  *requestKB << 10,
		Mode:         m,
		ComputeDelay: sim.Seconds(*delay),
		StripeUnit:   *suKB << 10,
		StripeGroup:  *sgroup,
	}
	if *pf {
		pcfg := prefetch.DefaultConfig()
		pcfg.Depth = *depth
		spec.Prefetch = &pcfg
	}
	if *traceN > 0 {
		spec.Trace = trace.NewLog(*traceN)
	}

	res, err := workload.Run(cfg, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("machine: %d compute + %d I/O nodes, %d-disk arrays, %s blocks\n",
		*computeN, *ioN, cfg.ArrayMembers, kb(cfg.UFS.BlockSize))
	fmt.Printf("workload: %s, %s requests, %s file, delay %.3fs, prefetch %v (depth %d)\n",
		m, kb(spec.RequestSize), mb(spec.FileSize), *delay, *pf, *depth)
	fmt.Printf("stripe: unit %s, group %d\n\n", kb(*suKB<<10), len(stripeList(cfg, spec)))

	fmt.Printf("elapsed          %v\n", res.Elapsed)
	fmt.Printf("data read        %s\n", mb(res.TotalBytes))
	fmt.Printf("read bandwidth   %.2f MB/s (aggregate, the paper's metric)\n", res.Bandwidth)
	fmt.Printf("read latency     min %.4fs  p50 %.4fs  mean %.4fs  p90 %.4fs  max %.4fs\n",
		res.ReadTime.Min(), res.ReadTime.Quantile(0.5), res.ReadTime.Mean(),
		res.ReadTime.Quantile(0.9), res.ReadTime.Max())
	fmt.Printf("disk utilization %.1f%%\n\n", 100*res.Machine.DiskUtilization())

	fmt.Println("per compute node completion:")
	for i, t := range res.NodeTimes {
		fmt.Printf("  node %-2d %v\n", i, t)
	}
	fmt.Println("\nper I/O node bytes served:")
	for i, b := range res.Machine.IONodeBytes() {
		fmt.Printf("  ionode %-2d %s\n", i, mb(b))
	}

	if spec.Trace != nil {
		fmt.Printf("\ntimeline (first %d events):\n", *traceN)
		if err := spec.Trace.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if res.Prefetch != nil {
		p := res.Prefetch
		fmt.Println("\nprefetcher:")
		fmt.Printf("  issued        %d\n", p.Issued)
		fmt.Printf("  hits          %d (completed buffers)\n", p.Hits)
		fmt.Printf("  waited hits   %d (caught in flight; mean wait %.4fs)\n", p.HitsInWait, p.WaitTime.Mean())
		fmt.Printf("  misses        %d\n", p.Misses)
		fmt.Printf("  hit rate      %.1f%%\n", 100*p.HitRate())
		fmt.Printf("  wasted        %d buffers freed unused at close\n", p.Wasted)
		fmt.Printf("  skipped       %d issues suppressed by the buffer cap\n", p.Skipped)
	}
}

func kb(b int64) string { return fmt.Sprintf("%dKB", b>>10) }
func mb(b int64) string { return fmt.Sprintf("%dMB", b>>20) }

func stripeList(cfg machine.Config, spec workload.Spec) []int {
	n := spec.StripeGroup
	if n == 0 {
		n = cfg.IONodes
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
