// Command detgate is the CI determinism and allocation gate.
//
// Determinism: it runs the quickstart scenario (plus a chaos variant
// with transient faults, shedding, and the retry layer armed, and a
// crash variant with whole-node outages, a RAID member loss, and the
// online rebuild under restart-aware failover) twice each,
// requires bit-identical result fingerprints and trace digests between
// the runs, and then diffs the digests against a committed golden file —
// so a change that silently moves the simulation's event history fails
// CI until the golden file is deliberately regenerated:
//
//	go run ./cmd/detgate -update
//
// Allocation: with -allocs it shells out to `go test -bench` and asserts
// that the zero-allocation hot paths of the DES kernel and the mesh
// (BenchmarkEventThroughput, BenchmarkSend) still report 0 allocs/op.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/disk"
	"repro/internal/ionode"
	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// gateMachine is the quickstart platform: 4 compute and 4 I/O nodes,
// fragmentation off (matching internal/workload's golden-trace test).
func gateMachine() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.ComputeNodes = 4
	cfg.IONodes = 4
	cfg.UFS.Fragmentation = 0
	return cfg
}

// gateSpec is the quickstart workload: M_RECORD readers with prefetching
// and 50 ms of computation between reads.
func gateSpec(tl *trace.Log) workload.Spec {
	pcfg := prefetch.DefaultConfig()
	return workload.Spec{
		File:         "quickstart",
		FileSize:     1 << 20,
		RequestSize:  64 << 10,
		Mode:         pfs.MRecord,
		ComputeDelay: 50 * sim.Millisecond,
		Prefetch:     &pcfg,
		Trace:        tl,
	}
}

// chaosMachine arms the full fault-tolerance stack on the gate platform.
func chaosMachine() machine.Config {
	cfg := gateMachine()
	cfg.DiskFaultRate = 0.03
	cfg.DiskFaultTransientFrac = 1
	cfg.DiskFaultJitter = 0.2
	cfg.FaultSeed = 42
	cfg.Shed = ionode.ShedPolicy{Threshold: 3, Cooldown: 20 * sim.Millisecond}
	cfg.PFS.Retry = pfs.DefaultRetryPolicy()
	return cfg
}

// crashMachine arms the crash–restart fault domain on the gate platform:
// two whole-node outages the restart-aware failover rides out, plus a
// permanent member loss with the online rebuild racing the reads. The
// digest pins the crash-domain accounting (crash/restart/drop counters,
// degraded reads, rebuild progress, unavailable bytes) along with the
// event history.
func crashMachine() machine.Config {
	cfg := gateMachine()
	cfg.PFS.Retry = pfs.RetryPolicy{
		MaxRetries:   8,
		Timeout:      2 * sim.Second,
		Backoff:      2 * sim.Millisecond,
		BackoffMax:   100 * sim.Millisecond,
		Seed:         1,
		DownPoll:     50 * sim.Millisecond,
		DownDeadline: 2500 * sim.Millisecond,
	}
	cfg.Crash = machine.CrashPlan{
		Count:    2,
		Seed:     5,
		Start:    50 * sim.Millisecond,
		Window:   400 * sim.Millisecond,
		Downtime: 800 * sim.Millisecond,
	}
	cfg.MemberFail = machine.MemberFailPlan{At: 100 * sim.Millisecond, Array: 0, Member: 1}
	cfg.Rebuild = disk.RebuildPolicy{Chunk: 128 << 10, Gap: 2 * sim.Millisecond}
	return cfg
}

// digests runs the scenario once and returns (fingerprint, traceDigest).
func digests(sc scenario) (uint64, uint64, error) {
	tl := trace.NewLog(1 << 18)
	spec := gateSpec(tl)
	if sc.tweak != nil {
		sc.tweak(&spec)
	}
	res, err := workload.Run(sc.cfg(), spec)
	if err != nil {
		return 0, 0, fmt.Errorf("%s run failed: %w", sc.name, err)
	}
	if res.Fault.GiveUps != 0 {
		return 0, 0, fmt.Errorf("%s run exhausted %d retry budget(s) under transient faults", sc.name, res.Fault.GiveUps)
	}
	return res.Fingerprint(), tl.Digest(), nil
}

type scenario struct {
	name  string
	cfg   func() machine.Config
	tweak func(*workload.Spec)
}

// scenarios are the gated runs, in golden-file line order.
var scenarios = []scenario{
	{"quickstart", gateMachine, nil},
	{"chaos", chaosMachine, nil},
	{"crash", crashMachine, func(spec *workload.Spec) { spec.ContinueOnUnavailable = true }},
}

func main() {
	var (
		golden = flag.String("golden", "cmd/detgate/golden.digest", "committed digest file to diff against")
		update = flag.Bool("update", false, "rewrite the golden file from this build's digests")
		allocs = flag.Bool("allocs", false, "also gate the zero-allocation hot-path benchmarks")
	)
	flag.Parse()

	var lines []string
	for _, sc := range scenarios {
		fp1, td1, err := digests(sc)
		if err != nil {
			fatal(err.Error())
		}
		fp2, td2, err := digests(sc)
		if err != nil {
			fatal(err.Error())
		}
		if fp1 != fp2 || td1 != td2 {
			fatal(fmt.Sprintf("%s: two identical runs diverged: fingerprint %016x vs %016x, trace %016x vs %016x",
				sc.name, fp1, fp2, td1, td2))
		}
		lines = append(lines,
			fmt.Sprintf("%s fingerprint %016x", sc.name, fp1),
			fmt.Sprintf("%s trace %016x", sc.name, td1))
	}
	got := strings.Join(lines, "\n") + "\n"

	if *update {
		if err := os.WriteFile(*golden, []byte(got), 0o644); err != nil {
			fatal(err.Error())
		}
		fmt.Printf("detgate: wrote %s\n%s", *golden, got)
	} else {
		want, err := os.ReadFile(*golden)
		if err != nil {
			fatal(fmt.Sprintf("%v (regenerate with -update)", err))
		}
		if string(want) != got {
			fatal(fmt.Sprintf("digests diverged from %s:\n--- committed\n%s--- this build\n%s"+
				"the simulation's event history changed; if intended, regenerate with: go run ./cmd/detgate -update",
				*golden, want, got))
		}
		fmt.Printf("detgate: digests match %s\n", *golden)
	}

	if *allocs {
		gateAllocs()
	}
}

// zeroAllocBenches are the hot paths pinned at 0 allocs/op. Names are
// matched as the benchmark-name prefix of `go test -bench` output lines
// (which append -N for GOMAXPROCS).
var zeroAllocBenches = map[string]bool{
	"BenchmarkEventThroughput": true, // sim.Kernel event dispatch
	"BenchmarkSend":            true, // mesh message delivery
}

func gateAllocs() {
	cmd := exec.Command("go", "test", "-run=^$",
		"-bench=BenchmarkEventThroughput$|BenchmarkSend$",
		"-benchtime=100x", "-benchmem", "./internal/sim/", "./internal/mesh/")
	out, err := cmd.CombinedOutput()
	if err != nil {
		fatal(fmt.Sprintf("alloc gate: benchmarks failed: %v\n%s", err, out))
	}
	seen := 0
	for _, line := range strings.Split(string(out), "\n") {
		f := strings.Fields(line)
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := strings.SplitN(f[0], "-", 2)[0]
		if !zeroAllocBenches[name] {
			continue
		}
		seen++
		if f[len(f)-1] != "allocs/op" || f[len(f)-2] != "0" {
			fatal(fmt.Sprintf("alloc gate: %s is no longer allocation-free:\n%s", name, line))
		}
	}
	if seen != len(zeroAllocBenches) {
		fatal(fmt.Sprintf("alloc gate: matched %d of %d gated benchmarks in output:\n%s",
			seen, len(zeroAllocBenches), out))
	}
	fmt.Println("detgate: hot paths still 0 allocs/op")
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "detgate: "+msg)
	os.Exit(1)
}
