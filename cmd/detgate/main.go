// Command detgate is the CI determinism and allocation gate.
//
// Determinism: it runs the golden scenarios from internal/scenarios
// (healthy quickstart; a chaos variant with transient faults, shedding,
// and the retry layer armed; and a crash variant with whole-node
// outages, a RAID member loss, and the online rebuild under
// restart-aware failover) twice each, requires bit-identical result
// fingerprints and trace digests between the runs, and then diffs the
// digests against a committed golden file — so a change that silently
// moves the simulation's event history fails CI until the golden file is
// deliberately regenerated:
//
//	go run ./cmd/detgate -update
//
// Sharded engine: each golden scenario is additionally run on the
// sharded multi-core engine at worker counts 1, 2, 4, and 8. The
// shards=1 digests are recorded in the golden file (the sharded engine
// interleaves trace buckets differently from the legacy single kernel,
// so it has its own golden lines); the wider counts must be
// bit-identical to shards=1 — that equality is the determinism proof of
// the conservative-lookahead parallel scheduler, gated on every CI run.
//
// Ladder queue: every golden scenario is also run with the kernels on
// the amortized-O(1) ladder event queue (machine.Config.Queue) — on the
// legacy engine and on the sharded engine at every worker count in the
// matrix. The ladder realizes the identical (time, seq) total order, so
// these runs must reproduce the heap digests bit for bit; there are no
// separate ladder golden lines, the equality IS the gate.
//
// Allocation: with -allocs it shells out to `go test -bench` and asserts
// that the zero-allocation hot paths — the DES kernel and mesh micros,
// the event-queue hold-model benches (heap and ladder), the cross-shard
// post/drain path, plus the pfs client steady-state read and ionode
// service paths — still report 0 allocs/op.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/scenarios"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// digests runs the scenario once and returns (fingerprint, traceDigest).
func digests(sc scenarios.Scenario) (uint64, uint64, error) {
	tl := trace.NewLog(1 << 18)
	spec := scenarios.QuickstartSpec(tl)
	if sc.Tweak != nil {
		sc.Tweak(&spec)
	}
	res, err := workload.Run(sc.Config(), spec)
	if err != nil {
		return 0, 0, fmt.Errorf("%s run failed: %w", sc.Name, err)
	}
	if res.Fault.GiveUps != 0 {
		return 0, 0, fmt.Errorf("%s run exhausted %d retry budget(s) under transient faults", sc.Name, res.Fault.GiveUps)
	}
	return res.Fingerprint(), tl.Digest(), nil
}

func main() {
	var (
		golden = flag.String("golden", "cmd/detgate/golden.digest", "committed digest file to diff against")
		update = flag.Bool("update", false, "rewrite the golden file from this build's digests")
		allocs = flag.Bool("allocs", false, "also gate the zero-allocation hot-path benchmarks")
	)
	flag.Parse()

	var lines []string
	for _, sc := range scenarios.Golden() {
		fp1, td1, err := digests(sc)
		if err != nil {
			fatal(err.Error())
		}
		fp2, td2, err := digests(sc)
		if err != nil {
			fatal(err.Error())
		}
		if fp1 != fp2 || td1 != td2 {
			fatal(fmt.Sprintf("%s: two identical runs diverged: fingerprint %016x vs %016x, trace %016x vs %016x",
				sc.Name, fp1, fp2, td1, td2))
		}
		lines = append(lines,
			fmt.Sprintf("%s fingerprint %016x", sc.Name, fp1),
			fmt.Sprintf("%s trace %016x", sc.Name, td1))

		// Ladder-queue twin on the legacy engine: same total order, so
		// the heap digests must be reproduced exactly — the equality is
		// the gate, no separate golden lines.
		lfp, ltd, err := digests(scenarios.WithQueue(sc, sim.QueueLadder))
		if err != nil {
			fatal(err.Error())
		}
		if lfp != fp1 || ltd != td1 {
			fatal(fmt.Sprintf("%s: ladder-queue run diverged from the heap: fingerprint %016x vs %016x, trace %016x vs %016x",
				sc.Name, lfp, fp1, ltd, td1))
		}

		// Sharded matrix: shards=1 is golden; 2, 4, and 8 workers must
		// reproduce it bit for bit — and so must the ladder queue at
		// every worker count.
		sfp, std, err := digests(scenarios.WithShards(sc, 1))
		if err != nil {
			fatal(err.Error())
		}
		for _, n := range []int{1, 2, 4, 8} {
			if n > 1 {
				nfp, ntd, err := digests(scenarios.WithShards(sc, n))
				if err != nil {
					fatal(err.Error())
				}
				if nfp != sfp || ntd != std {
					fatal(fmt.Sprintf("%s: sharded run at %d workers diverged from shards=1: fingerprint %016x vs %016x, trace %016x vs %016x",
						sc.Name, n, nfp, sfp, ntd, std))
				}
			}
			qfp, qtd, err := digests(scenarios.WithQueue(scenarios.WithShards(sc, n), sim.QueueLadder))
			if err != nil {
				fatal(err.Error())
			}
			if qfp != sfp || qtd != std {
				fatal(fmt.Sprintf("%s: ladder-queue sharded run at %d workers diverged: fingerprint %016x vs %016x, trace %016x vs %016x",
					sc.Name, n, qfp, sfp, qtd, std))
			}
		}
		lines = append(lines,
			fmt.Sprintf("%s-sharded fingerprint %016x", sc.Name, sfp),
			fmt.Sprintf("%s-sharded trace %016x", sc.Name, std))
	}
	got := strings.Join(lines, "\n") + "\n"

	if *update {
		if err := os.WriteFile(*golden, []byte(got), 0o644); err != nil {
			fatal(err.Error())
		}
		fmt.Printf("detgate: wrote %s\n%s", *golden, got)
	} else {
		want, err := os.ReadFile(*golden)
		if err != nil {
			fatal(fmt.Sprintf("%v (regenerate with -update)", err))
		}
		if string(want) != got {
			fatal(fmt.Sprintf("digests diverged from %s:\n--- committed\n%s--- this build\n%s"+
				"the simulation's event history changed; if intended, regenerate with: go run ./cmd/detgate -update",
				*golden, want, got))
		}
		fmt.Printf("detgate: digests match %s\n", *golden)
	}

	if *allocs {
		gateAllocs()
	}
}

// allocGatePackages lists each gated package with its benchmark filter.
// Splitting per package keeps the -bench regexps anchored so unrelated
// benchmarks in the same package can't sneak into the gate.
var allocGatePackages = []struct {
	pkg   string
	bench string
}{
	{"./internal/sim/", "BenchmarkEventThroughput$|BenchmarkShardPostDrain$|BenchmarkQueuePushPop/(heap|ladder)/depth=(1k|100k)$"},
	{"./internal/mesh/", "BenchmarkSend$"},
	{"./internal/pfs/", "BenchmarkClientSteadyRead$"},
	{"./internal/ionode/", "BenchmarkServicePath$"},
}

// zeroAllocBenches are the hot paths pinned at 0 allocs/op. Names are
// matched as the benchmark-name prefix of `go test -bench` output lines
// (which append -N for GOMAXPROCS).
var zeroAllocBenches = map[string]bool{
	"BenchmarkEventThroughput":                true, // sim.Kernel event dispatch
	"BenchmarkShardPostDrain":                 true, // cross-shard post/drain round trip
	"BenchmarkQueuePushPop/heap/depth=1k":     true, // heap queue hold model, shallow
	"BenchmarkQueuePushPop/heap/depth=100k":   true, // heap queue hold model, deep
	"BenchmarkQueuePushPop/ladder/depth=1k":   true, // ladder queue hold model, shallow
	"BenchmarkQueuePushPop/ladder/depth=100k": true, // ladder queue hold model, deep
	"BenchmarkSend":                           true, // mesh message delivery
	"BenchmarkClientSteadyRead":               true, // pfs client steady-state read path
	"BenchmarkServicePath":                    true, // ionode request service path
}

func gateAllocs() {
	// One `go test` per package: -bench regexps are slash-split into
	// per-level patterns (sub-benchmark paths like
	// QueuePushPop/ladder/depth=1k), so filters from different packages
	// cannot be joined with | without scrambling the levels.
	seen := 0
	for _, g := range allocGatePackages {
		cmd := exec.Command("go", "test", "-run=^$", "-benchtime=100x", "-benchmem",
			"-bench="+g.bench, g.pkg)
		out, err := cmd.CombinedOutput()
		if err != nil {
			fatal(fmt.Sprintf("alloc gate: benchmarks failed in %s: %v\n%s", g.pkg, err, out))
		}
		for _, line := range strings.Split(string(out), "\n") {
			f := strings.Fields(line)
			if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
				continue
			}
			name := strings.SplitN(f[0], "-", 2)[0]
			if !zeroAllocBenches[name] {
				continue
			}
			seen++
			if f[len(f)-1] != "allocs/op" || f[len(f)-2] != "0" {
				fatal(fmt.Sprintf("alloc gate: %s is no longer allocation-free:\n%s", name, line))
			}
		}
	}
	if seen != len(zeroAllocBenches) {
		fatal(fmt.Sprintf("alloc gate: matched %d of %d gated benchmarks across packages",
			seen, len(zeroAllocBenches)))
	}
	fmt.Println("detgate: hot paths still 0 allocs/op")
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "detgate: "+msg)
	os.Exit(1)
}
