package repro

import (
	"flag"
	"testing"

	"repro/internal/experiments"
	"repro/internal/stats"
)

// -paperscale runs the benchmarks at the paper's full scale (8+8 nodes,
// 128 MB files). The default quick scale preserves every shape at a
// fraction of the wall time.
var paperScale = flag.Bool("paperscale", false, "benchmark at the paper's full scale")

func benchScale() experiments.Scale {
	if *paperScale {
		return experiments.PaperScale()
	}
	return experiments.QuickScale()
}

// benchExperiment times regenerating one of the paper's artifacts
// end-to-end: machine build, file layout, workload, measurement.
func benchExperiment(b *testing.B, id string) {
	e, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	scale := benchScale()
	var last *stats.Table
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.Run(scale)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.StopTimer()
	if last == nil || last.NumRows() == 0 {
		b.Fatal("experiment produced no rows")
	}
	b.ReportMetric(float64(last.NumRows()), "rows")
}

// One benchmark per table and figure in the paper's evaluation.

func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "table4") }

// Extension benchmarks: the paper's stated future work and beyond.

func BenchmarkExtModes(b *testing.B)        { benchExperiment(b, "ext-modes") }
func BenchmarkExtScale(b *testing.B)        { benchExperiment(b, "ext-scale") }
func BenchmarkExtTwoPhase(b *testing.B)     { benchExperiment(b, "ext-twophase") }
func BenchmarkExtWriteBehind(b *testing.B)  { benchExperiment(b, "ext-writebehind") }
func BenchmarkExtInterference(b *testing.B) { benchExperiment(b, "ext-interference") }
func BenchmarkExtAdaptive(b *testing.B)     { benchExperiment(b, "ext-adaptive") }
func BenchmarkExtSensitivity(b *testing.B)  { benchExperiment(b, "ext-sensitivity") }
func BenchmarkExtRatio(b *testing.B)        { benchExperiment(b, "ext-ratio") }

// Ablation benchmarks for the design choices called out in DESIGN.md.

func BenchmarkAblationDepth(b *testing.B)     { benchExperiment(b, "ablation-depth") }
func BenchmarkAblationCopy(b *testing.B)      { benchExperiment(b, "ablation-copy") }
func BenchmarkAblationPlacement(b *testing.B) { benchExperiment(b, "ablation-placement") }
func BenchmarkAblationPattern(b *testing.B)   { benchExperiment(b, "ablation-pattern") }
func BenchmarkAblationPredictor(b *testing.B) { benchExperiment(b, "ablation-predictor") }
func BenchmarkAblationSched(b *testing.B)     { benchExperiment(b, "ablation-sched") }
func BenchmarkAblationFrag(b *testing.B)      { benchExperiment(b, "ablation-frag") }
func BenchmarkAblationBlockSize(b *testing.B) { benchExperiment(b, "ablation-blocksize") }
