// I/O modes: the Figure 2 scenario. Eight compute nodes read one shared
// file under each PFS sharing mode; the coordination each mode buys has a
// price, and this prints it.
//
//	go run ./examples/iomodes
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	machine := core.DefaultMachine()

	modes := []struct {
		name string
		mode core.Mode
		note string
	}{
		{"M_UNIX", core.MUnix, "shared pointer, atomic: fully serialized"},
		{"M_LOG", core.MLog, "shared pointer, unordered: serialized claims"},
		{"M_SYNC", core.MSync, "node order, variable sizes: per-op barrier"},
		{"M_RECORD", core.MRecord, "fixed records in node order: no per-op sync"},
		{"M_ASYNC", core.MAsync, "individual pointers: no coordination at all"},
	}

	fmt.Println("PFS I/O mode comparison, 8 compute + 8 I/O nodes, 64 KB requests")
	for _, m := range modes {
		res, err := core.Run(machine, core.Workload{
			FileSize:    32 << 20,
			RequestSize: 64 << 10,
			Mode:        m.mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %7.2f MB/s   %s\n", m.name, res.Bandwidth, m.note)
	}

	sep, err := core.Run(machine, core.Workload{
		FileSize:      32 << 20,
		RequestSize:   64 << 10,
		Mode:          core.MAsync,
		SeparateFiles: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-9s %7.2f MB/s   %s\n", "separate", sep.Bandwidth,
		"one private file per node (no sharing)")

	glob, err := core.Run(machine, core.Workload{
		FileSize:    32 << 20,
		RequestSize: 64 << 10,
		Mode:        core.MGlobal,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-9s %7.2f MB/s   %s\n", "M_GLOBAL", glob.Bandwidth,
		"all nodes get the same data: read once, broadcast")
}
