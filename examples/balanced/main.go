// Balanced workloads: sweep the compute-to-I/O ratio the way Section 4.2
// of the paper does. For each request size, vary the computation time
// between reads and watch where prefetching starts to pay: once the
// compute delay covers the read access time, the next record is already
// resident when the application asks for it.
//
//	go run ./examples/balanced
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	machine := core.DefaultMachine()
	delays := []float64{0, 0.025, 0.05, 0.1, 0.2}
	requests := []int64{64 << 10, 256 << 10, 1024 << 10}

	fmt.Println("Balanced workloads: bandwidth (MB/s) vs compute delay")
	fmt.Println("(speedup > 1 means prefetching hid I/O behind computation)")
	for _, req := range requests {
		fmt.Printf("\n%d KB requests:\n", req>>10)
		fmt.Printf("  %-10s %-14s %-14s %s\n", "delay (s)", "no prefetch", "prefetch", "speedup")
		for _, d := range delays {
			w := core.Workload{
				FileSize:     64 << 20,
				RequestSize:  req,
				Mode:         core.MRecord,
				ComputeDelay: core.Seconds(d),
			}
			plain, err := core.Run(machine, w)
			if err != nil {
				log.Fatal(err)
			}
			w.Prefetch = true
			fetched, err := core.Run(machine, w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10.3f %-14.2f %-14.2f %.2fx\n",
				d, plain.Bandwidth, fetched.Bandwidth, fetched.Bandwidth/plain.Bandwidth)
		}
	}
	fmt.Println("\nNote the crossover: 64 KB reads overlap fully at 0.05 s of compute;")
	fmt.Println("1 MB reads take ~0.33 s, so no delay in this range can hide them.")
}
