// Quickstart: build the paper's 8+8-node Paragon, read a 64 MB shared
// file in M_RECORD mode with and without the prefetching prototype, and
// compare the bandwidth the application observes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	machine := core.DefaultMachine()

	workload := core.Workload{
		FileSize:     64 << 20, // 64 MB shared file
		RequestSize:  64 << 10, // 64 KB per read per node
		Mode:         core.MRecord,
		ComputeDelay: core.Seconds(0.05), // a balanced application: compute between reads
	}

	plain, err := core.Run(machine, workload)
	if err != nil {
		log.Fatal(err)
	}

	workload.Prefetch = true
	fetched, err := core.Run(machine, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Paragon PFS prefetching, quickstart")
	fmt.Printf("  without prefetching: %6.2f MB/s  (elapsed %v)\n", plain.Bandwidth, plain.Elapsed)
	fmt.Printf("  with prefetching:    %6.2f MB/s  (elapsed %v)\n", fetched.Bandwidth, fetched.Elapsed)
	fmt.Printf("  speedup:             %6.2fx\n", fetched.Bandwidth/plain.Bandwidth)
	fmt.Printf("  prefetch hit rate:   %6.1f%%  (%d hits, %d waited, %d misses)\n",
		100*fetched.Prefetch.HitRate(), fetched.Prefetch.Hits,
		fetched.Prefetch.HitsInWait, fetched.Prefetch.Misses)
}
