// Checkpoint: an iterative SPMD solver that periodically checkpoints its
// state to the PFS — the write-heavy counterpart of the paper's read
// workloads, written against the historical nx-style interface.
//
// Each iteration computes for a while; every few iterations the solver
// dumps its partition of the state. Synchronous checkpoints stall the
// computation for the full write; write-behind staging (the write-side
// mirror of the paper's prefetching prototype) hides the I/O behind the
// next compute phase.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"

	"repro/internal/machine"
	"repro/internal/nx"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

const (
	parties    = 8
	stateMB    = 4                     // per-node state
	iterations = 12                    // compute iterations
	ckptEvery  = 3                     // checkpoint cadence
	computeT   = 500 * sim.Millisecond // per iteration
	chunk      = int64(256 << 10)      // checkpoint write granularity
)

func main() {
	fmt.Printf("SPMD solver: %d nodes x %d MB state, checkpoint every %d of %d iterations\n",
		parties, stateMB, ckptEvery, iterations)
	for _, behind := range []bool{false, true} {
		label := "synchronous checkpoints"
		if behind {
			label = "write-behind checkpoints"
		}
		fmt.Printf("  %-25s %v\n", label+":", run(behind))
	}
	fmt.Println("\nWrite-behind hides each checkpoint behind the following compute phase;")
	fmt.Println("only the final flush (and any buffer-pool stalls) remain on the critical path.")
}

func run(behind bool) sim.Time {
	m := machine.Build(machine.DefaultConfig())
	perNode := int64(stateMB) << 20
	if err := m.FS.Create("ckpt", int64(parties)*perNode); err != nil {
		log.Fatal(err)
	}
	var wb *prefetch.WriteBehind
	if behind {
		wb = prefetch.NewWriteBehind(m.K, prefetch.DefaultWriteBehindConfig())
	}
	for i := 0; i < parties; i++ {
		i := i
		m.K.Go(fmt.Sprintf("solver%d", i), func(p *sim.Proc) {
			px := nx.Attach(p, m, m.Compute[i])
			fd, err := px.Gopen("ckpt", pfs.MAsync, nil)
			if err != nil {
				log.Fatal(err)
			}
			f, _ := px.File(fd)
			base := int64(i) * perNode
			for iter := 1; iter <= iterations; iter++ {
				p.Sleep(computeT) // the science happens here
				if iter%ckptEvery != 0 {
					continue
				}
				for off := base; off < base+perNode; off += chunk {
					if behind {
						if err := wb.Write(p, f, off, chunk); err != nil {
							log.Fatal(err)
						}
					} else {
						if err := f.Write(p, off, chunk); err != nil {
							log.Fatal(err)
						}
					}
				}
			}
			if behind {
				if err := wb.Flush(p, f); err != nil {
					log.Fatal(err)
				}
			}
			if err := px.Close(fd); err != nil {
				log.Fatal(err)
			}
		})
	}
	if err := m.K.Run(); err != nil {
		log.Fatal(err)
	}
	return m.K.Now()
}
