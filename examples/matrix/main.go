// Matrix: the collective-I/O pattern from the paper's introduction. A
// dense matrix of 64-bit values is stored row-major in one PFS file;
// each of the 8 compute nodes owns a block of columns, so reading the
// matrix means every node takes its slice of every row — which is
// exactly an M_RECORD scan with one record per node per row.
//
// After each row arrives the nodes "compute" on it (a delay), which is
// the window the prefetcher uses to fetch each node's slice of the next
// row.
//
//	go run ./examples/matrix
package main

import (
	"fmt"
	"io"
	"log"

	"repro/internal/machine"
	"repro/internal/pfs"
	"repro/internal/prefetch"
	"repro/internal/sim"
)

const (
	matrixDim  = 2048 // 2048 x 2048 matrix
	elemSize   = 8    // float64 values
	rowBytes   = matrixDim * elemSize
	computePer = 20 * sim.Millisecond // per-row computation per node
)

func main() {
	fmt.Printf("Distributing a %dx%d matrix (%d MB) across 8 compute nodes, column blocks\n",
		matrixDim, matrixDim, matrixDim*rowBytes>>20)

	for _, withPrefetch := range []bool{false, true} {
		elapsed, hitRate := run(withPrefetch)
		label := "without prefetching"
		if withPrefetch {
			label = "with prefetching   "
		}
		fmt.Printf("  %s: %v", label, elapsed)
		if withPrefetch {
			fmt.Printf("   (hit rate %.1f%%)", 100*hitRate)
		}
		fmt.Println()
	}
}

// run loads the matrix once and returns the elapsed simulated time.
func run(withPrefetch bool) (sim.Time, float64) {
	m := machine.Build(machine.DefaultConfig())
	const parties = 8
	if err := m.FS.Create("matrix", matrixDim*rowBytes); err != nil {
		log.Fatal(err)
	}

	var pf *prefetch.Prefetcher
	if withPrefetch {
		pf = prefetch.New(m.K, prefetch.DefaultConfig())
	}

	group := pfs.NewOpenGroup(m.K, parties)
	slice := int64(rowBytes / parties) // each node's share of one row
	for i := 0; i < parties; i++ {
		node := m.Compute[i]
		m.K.Go(fmt.Sprintf("solver%d", i), func(p *sim.Proc) {
			f, err := m.FS.Open("matrix", node, pfs.MRecord, group)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if pf != nil {
				pf.Attach(f)
			}
			for row := 0; ; row++ {
				if _, err := f.Read(p, slice); err == io.EOF {
					return
				} else if err != nil {
					log.Fatal(err)
				}
				p.Sleep(computePer) // work on the row slice
			}
		})
	}
	if err := m.K.Run(); err != nil {
		log.Fatal(err)
	}
	hr := 0.0
	if pf != nil {
		hr = pf.HitRate()
	}
	return m.K.Now(), hr
}
